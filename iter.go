package repro

// Go 1.23 range-over-func accessors, derived from Dictionary.Range.

import (
	"iter"

	"repro/internal/core"
)

// All returns an iterator over every key/value pair of d in ascending
// key order:
//
//	for k, v := range repro.All(d) { ... }
//
// Breaking out of the loop stops the underlying Range scan early.
func All(d Dictionary) iter.Seq2[uint64, uint64] { return core.All(d) }

// Ascend returns an iterator over the key/value pairs of d with
// lo <= key <= hi in ascending key order.
func Ascend(d Dictionary, lo, hi uint64) iter.Seq2[uint64, uint64] {
	return core.Ascend(d, lo, hi)
}

// Elements returns an iterator over the Elements of d with
// lo <= key <= hi, for callers that want the paired form (e.g. to feed
// another structure's InsertBatch).
func Elements(d Dictionary, lo, hi uint64) iter.Seq[Element] {
	return core.Elements(d, lo, hi)
}
