package repro

// Ablation benches for the design choices DESIGN.md calls out: the
// g-COLA's pointer density and growth factor, the shuttle tree's layout
// rebuild cadence and fanout, and the B-tree's block size. Each sweep
// holds the workload fixed and varies one knob, reporting transfers/op
// so the effect is deterministic.

import (
	"fmt"
	"testing"

	"repro/internal/workload"
)

// BenchmarkAblationPointerDensity sweeps the g-COLA's pointer density p:
// p = 0 is the basic COLA (binary-search every level), the paper uses
// p = 0.1, and p = 0.5 doubles the redundant space for narrower search
// windows. Measures cold searches after a random load.
func BenchmarkAblationPointerDensity(b *testing.B) {
	for _, p := range []float64{0, 0.05, 0.1, 0.25, 0.5} {
		b.Run(fmt.Sprintf("p=%.2f", p), func(b *testing.B) {
			store := NewStore(benchBlockBytes, 1<<17)
			d := MustBuild("gcola", WithGrowthFactor(2), WithPointerDensity(p), WithSpace(store.Space("cola")))
			seq := workload.NewRandomUnique(21)
			for i := 0; i < benchPreload; i++ {
				k := seq.Next()
				d.Insert(k, k)
			}
			store.DropCache()
			store.ResetCounters()
			probe := workload.NewRandomUnique(21)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Search(probe.Next())
			}
			b.StopTimer()
			b.ReportMetric(float64(store.Transfers())/float64(b.N), "transfers/op")
		})
	}
}

// BenchmarkAblationGrowthFactor sweeps g beyond the paper's {2,4,8}:
// larger g means fewer levels (cheaper searches) but each level is
// merged into more often (costlier inserts).
func BenchmarkAblationGrowthFactor(b *testing.B) {
	for _, g := range []int{2, 3, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			store := NewStore(benchBlockBytes, benchCacheBytes)
			d := MustBuild("gcola", WithGrowthFactor(g), WithPointerDensity(0.1), WithSpace(store.Space("cola")))
			seq := workload.NewRandomUnique(22)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := seq.Next()
				d.Insert(k, k)
			}
			b.StopTimer()
			b.ReportMetric(float64(store.Transfers())/float64(b.N), "transfers/op")
		})
	}
}

// BenchmarkAblationShuttleRelayout sweeps the vEB layout rebuild cadence:
// never (-1), every 256 splits, every 4096 splits. The tradeoff is
// rebuild cost against layout drift (drifted layouts cluster worse, so
// searches touch more blocks).
func BenchmarkAblationShuttleRelayout(b *testing.B) {
	for _, every := range []int{-1, 256, 1024, 4096} {
		b.Run(fmt.Sprintf("every=%d", every), func(b *testing.B) {
			store := NewStore(benchBlockBytes, 1<<17)
			d := MustBuild("shuttle", WithFanout(8), WithRelayoutEvery(every), WithSpace(store.Space("shuttle")))
			seq := workload.NewRandomUnique(23)
			for i := 0; i < benchPreload/2; i++ {
				k := seq.Next()
				d.Insert(k, k)
			}
			store.DropCache()
			store.ResetCounters()
			probe := workload.NewRandomUnique(23)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Search(probe.Next())
			}
			b.StopTimer()
			b.ReportMetric(float64(store.Transfers())/float64(b.N), "transfers/op")
		})
	}
}

// BenchmarkAblationShuttleFanout sweeps the SWBST balance parameter c.
func BenchmarkAblationShuttleFanout(b *testing.B) {
	for _, c := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("c=%d", c), func(b *testing.B) {
			store := NewStore(benchBlockBytes, benchCacheBytes)
			d := MustBuild("shuttle", WithFanout(c), WithSpace(store.Space("shuttle")))
			seq := workload.NewRandomUnique(24)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := seq.Next()
				d.Insert(k, k)
			}
			b.StopTimer()
			b.ReportMetric(float64(store.Transfers())/float64(b.N), "transfers/op")
		})
	}
}

// BenchmarkAblationBTreeBlock sweeps the B-tree node size; bigger blocks
// mean shallower trees but coarser transfers.
func BenchmarkAblationBTreeBlock(b *testing.B) {
	for _, bb := range []int64{512, 1024, 4096, 16384} {
		b.Run(fmt.Sprintf("block=%d", bb), func(b *testing.B) {
			store := NewStore(bb, benchCacheBytes)
			d := MustBuild("btree", WithBlockBytes(bb), WithSpace(store.Space("btree")))
			seq := workload.NewRandomUnique(25)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := seq.Next()
				d.Insert(k, k)
			}
			b.StopTimer()
			b.ReportMetric(float64(store.Transfers())/float64(b.N), "transfers/op")
		})
	}
}

// BenchmarkBulkLoadVsIncremental quantifies the BulkLoad extension.
func BenchmarkBulkLoadVsIncremental(b *testing.B) {
	const n = 1 << 15
	mkElems := func() []Element {
		seq := workload.NewRandomUnique(26)
		elems := make([]Element, n)
		for i := range elems {
			k := seq.Next()
			elems[i] = Element{Key: k, Value: k}
		}
		return elems
	}
	b.Run("bulk", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			elems := mkElems()
			d := MustBuild("cola").(*COLA)
			b.StartTimer()
			d.BulkLoad(elems)
		}
	})
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			elems := mkElems()
			d := MustBuild("cola").(*COLA)
			b.StartTimer()
			for _, e := range elems {
				d.Insert(e.Key, e.Value)
			}
		}
	})
}

// BenchmarkDAMStore measures the simulator's own overhead: one touch.
func BenchmarkDAMStore(b *testing.B) {
	store := NewStore(4096, 1<<20)
	sp := store.Space("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Read(int64(i%(1<<24)), 32)
	}
}

// BenchmarkSynchronizedOverhead measures the mutex wrapper's cost.
func BenchmarkSynchronizedOverhead(b *testing.B) {
	b.Run("bare", func(b *testing.B) {
		d := MustBuild("cola").(*COLA)
		seq := workload.NewRandomUnique(27)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := seq.Next()
			d.Insert(k, k)
		}
	})
	b.Run("synchronized", func(b *testing.B) {
		d := Synchronized(MustBuild("cola"))
		seq := workload.NewRandomUnique(27)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := seq.Next()
			d.Insert(k, k)
		}
	})
}
