package repro

// Integration tests across the public facade: every structure behind the
// one Dictionary interface, cross-checked on identical workloads.

import (
	"testing"

	"repro/internal/workload"
)

// allDictionaries builds one of everything through the public API.
func allDictionaries(store *Store) map[string]Dictionary {
	sp := func(name string) *Space {
		if store == nil {
			return nil
		}
		return store.Space(name)
	}
	return map[string]Dictionary{
		"cola":           MustBuild("cola", WithSpace(sp("cola"))),
		"basic-cola":     MustBuild("basic-cola", WithSpace(sp("basic"))),
		"4-cola":         MustBuild("gcola", WithGrowthFactor(4), WithPointerDensity(0.1), WithSpace(sp("4cola"))),
		"deam-cola":      MustBuild("deamortized", WithSpace(sp("deam"))),
		"deam-la-cola":   MustBuild("deamortized-la", WithSpace(sp("deamla"))),
		"btree":          MustBuild("btree", WithSpace(sp("btree"))),
		"brt":            MustBuild("brt", WithSpace(sp("brt"))),
		"shuttle":        MustBuild("shuttle", WithFanout(8), WithSpace(sp("shuttle"))),
		"swbst":          MustBuild("swbst", WithFanout(8)),
		"lookahead-eps5": MustBuild("la", WithBlockBytes(128*ElementBytes), WithEpsilon(0.5), WithSpace(sp("la"))),
	}
}

// TestEveryStructureAgrees drives all structures through one random
// insert workload and verifies identical search results everywhere.
func TestEveryStructureAgrees(t *testing.T) {
	dicts := allDictionaries(nil)
	const n = 1 << 12
	seq := workload.NewRandomUnique(1234)
	keys := workload.Take(seq, n)
	for _, d := range dicts {
		for _, k := range keys {
			d.Insert(k, k^0xABCD)
		}
	}
	probes := append(append([]uint64{}, keys[:256]...), workload.Take(workload.NewRandomUnique(5678), 256)...)
	for _, p := range probes {
		var wantV uint64
		var wantOK, first = false, true
		for name, d := range dicts {
			v, ok := d.Search(p)
			if first {
				wantV, wantOK, first = v, ok, false
				continue
			}
			if ok != wantOK || (ok && v != wantV) {
				t.Fatalf("%s: Search(%d) = (%d,%v), others say (%d,%v)", name, p, v, ok, wantV, wantOK)
			}
		}
	}
	for name, d := range dicts {
		if d.Len() != n {
			t.Errorf("%s: Len = %d, want %d", name, d.Len(), n)
		}
	}
}

// TestEveryStructureRangeAgrees verifies Range output is identical
// across every structure.
func TestEveryStructureRangeAgrees(t *testing.T) {
	dicts := allDictionaries(nil)
	const n = 4096
	for _, d := range dicts {
		for i := uint64(0); i < n; i += 3 {
			d.Insert(i, i*7)
		}
	}
	collect := func(d Dictionary, lo, hi uint64) []Element {
		var out []Element
		d.Range(lo, hi, func(e Element) bool { out = append(out, e); return true })
		return out
	}
	var want []Element
	first := true
	for name, d := range dicts {
		got := collect(d, 100, 1000)
		if first {
			want = got
			first = false
			if len(want) == 0 {
				t.Fatal("empty reference range")
			}
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s: range size %d, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: range[%d] = %v, want %v", name, i, got[i], want[i])
			}
		}
	}
}

// TestDeletersAgree exercises the Deleter extension on the structures
// that support it.
func TestDeletersAgree(t *testing.T) {
	dicts := map[string]Dictionary{
		"cola":  MustBuild("cola"),
		"btree": MustBuild("btree"),
		"brt":   MustBuild("brt"),
	}
	const n = 2048
	for name, d := range dicts {
		del, ok := d.(Deleter)
		if !ok {
			t.Fatalf("%s does not implement Deleter", name)
		}
		for i := uint64(0); i < n; i++ {
			d.Insert(i, i)
		}
		for i := uint64(0); i < n; i += 2 {
			if !del.Delete(i) {
				t.Fatalf("%s: Delete(%d) failed", name, i)
			}
		}
		for i := uint64(0); i < n; i++ {
			_, found := d.Search(i)
			if (i%2 == 0) == found {
				t.Fatalf("%s: Search(%d) = %v after deletions", name, i, found)
			}
		}
		if d.Len() != n/2 {
			t.Fatalf("%s: Len = %d, want %d", name, d.Len(), n/2)
		}
	}
}

// TestSharedStoreCharges verifies structures sharing one store charge
// disjoint spaces and the counters accumulate.
func TestSharedStoreCharges(t *testing.T) {
	store := NewStore(4096, 1<<16)
	dicts := allDictionaries(store)
	seq := workload.NewRandomUnique(9)
	for i := 0; i < 1<<12; i++ {
		k := seq.Next()
		for _, d := range dicts {
			d.Insert(k, k)
		}
	}
	if store.Transfers() == 0 {
		t.Fatal("no transfers recorded across a shared store")
	}
}

// TestStatsersExposeCounters spot-checks the Statser implementations.
func TestStatsersExposeCounters(t *testing.T) {
	for name, d := range map[string]Dictionary{
		"cola":    MustBuild("cola"),
		"btree":   MustBuild("btree"),
		"brt":     MustBuild("brt"),
		"shuttle": MustBuild("shuttle", WithFanout(8)),
	} {
		s, ok := d.(Statser)
		if !ok {
			t.Fatalf("%s does not implement Statser", name)
		}
		for i := uint64(0); i < 100; i++ {
			d.Insert(i, i)
		}
		d.Search(5)
		st := s.Stats()
		if st.Inserts != 100 {
			t.Errorf("%s: Inserts = %d, want 100", name, st.Inserts)
		}
		if st.Searches == 0 {
			t.Errorf("%s: Searches = 0", name)
		}
	}
}

// TestMixedWorkloadLarge is a heavier soak: interleaved inserts, updates,
// searches, and scans on every structure against one oracle.
func TestMixedWorkloadLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	dicts := allDictionaries(nil)
	ref := make(map[uint64]uint64)
	rng := workload.NewRNG(777)
	const keyspace = 1 << 14
	for i := 0; i < 30000; i++ {
		k := rng.Uint64() % keyspace
		switch rng.Uint64() % 5 {
		case 0, 1, 2: // insert/update
			v := rng.Uint64()
			ref[k] = v
			for _, d := range dicts {
				d.Insert(k, v)
			}
		case 3: // point check on one random structure
			for name, d := range dicts {
				wv, wok := ref[k]
				gv, gok := d.Search(k)
				if gok != wok || (gok && gv != wv) {
					t.Fatalf("%s at op %d: Search(%d) = (%d,%v), want (%d,%v)",
						name, i, k, gv, gok, wv, wok)
				}
				break // one structure per round keeps the soak fast
			}
		case 4: // narrow scan on the cola
			lo := k &^ 63
			d := dicts["cola"]
			d.Range(lo, lo+63, func(e Element) bool {
				if ref[e.Key] != e.Value {
					t.Fatalf("scan value mismatch at %d", e.Key)
				}
				return true
			})
		}
	}
}
