package repro

// Concurrent-throughput benchmarks: the sharded map at 1/2/4/8 shards ×
// goroutines against the global-mutex SynchronizedDictionary on the
// same workload (DESIGN.md E10). Aggregate ops/second is wall-clock, so
// the sharded map's advantage scales with available cores; on a
// GOMAXPROCS=1 host only the reduced-contention and smaller-per-shard-
// structure effects remain visible.
//
//	go test -bench 'BenchmarkSharded' -cpu 8

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/workload"
)

// concurrentDict is the surface both contenders share.
type concurrentDict interface {
	Insert(key, value uint64)
	Search(key uint64) (uint64, bool)
}

// runParallelOps splits b.N operations across g goroutines and waits
// for all of them.
func runParallelOps(b *testing.B, g int, op func(worker, i int)) {
	b.Helper()
	per := b.N / g
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := per
			if w == 0 {
				n += b.N % g // worker 0 absorbs the remainder
			}
			for i := 0; i < n; i++ {
				op(w, i)
			}
		}(w)
	}
	wg.Wait()
}

func benchParallelInserts(b *testing.B, d concurrentDict, g int) {
	b.Helper()
	seqs := make([]*workload.RandomUnique, g)
	for w := range seqs {
		seqs[w] = workload.NewRandomUnique(uint64(w) + 1)
	}
	runParallelOps(b, g, func(w, _ int) {
		k := seqs[w].Next()
		d.Insert(k, k)
	})
}

func benchParallelSearches(b *testing.B, d concurrentDict, g int) {
	b.Helper()
	const preload = 1 << 16
	for i := uint64(0); i < preload; i++ {
		d.Insert(i, i)
	}
	probes := make([]*workload.RNG, g)
	for w := range probes {
		probes[w] = workload.NewRNG(uint64(w) + 7)
	}
	runParallelOps(b, g, func(w, _ int) {
		d.Search(probes[w].Uint64() % preload)
	})
}

// BenchmarkShardedInsert measures aggregate insert throughput at
// shards = goroutines = 1/2/4/8, with the SynchronizedDictionary under
// 8 goroutines as the global-lock baseline the acceptance claim
// compares against.
func BenchmarkShardedInsert(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", g), func(b *testing.B) {
			benchParallelInserts(b, MustBuild("sharded", WithShards(g)), g)
		})
	}
	b.Run("global-mutex", func(b *testing.B) {
		benchParallelInserts(b, Synchronized(MustBuild("cola")), 8)
	})
}

// BenchmarkShardedSearch is the read-side counterpart: random probes
// over a preloaded keyspace.
func BenchmarkShardedSearch(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", g), func(b *testing.B) {
			benchParallelSearches(b, MustBuild("sharded", WithShards(g)), g)
		})
	}
	b.Run("global-mutex", func(b *testing.B) {
		benchParallelSearches(b, Synchronized(MustBuild("cola")), 8)
	})
}

// exclusiveDict hides a dictionary's SharedReader methods so the
// concurrency wrappers fall back to exclusive locking: the honest
// pre-shared-read baseline, on the same structure.
type exclusiveDict struct {
	Dictionary
}

// benchReadMostly drives the E12 mix: preload, then b.N operations at
// 95% searches / 5% fresh-key inserts across g goroutines.
func benchReadMostly(b *testing.B, d concurrentDict, g int) {
	b.Helper()
	const preload = 1 << 16
	keys := make([]uint64, preload)
	for i := range keys {
		keys[i] = uint64(i)*0x9E3779B97F4A7C15 + 1
		d.Insert(keys[i], keys[i])
	}
	rngs := make([]*workload.RNG, g)
	fresh := make([]*workload.RandomUnique, g)
	for w := 0; w < g; w++ {
		rngs[w] = workload.NewRNG(uint64(w) + 13)
		fresh[w] = workload.NewRandomUnique(uint64(w)<<32 + 0xE12)
	}
	runParallelOps(b, g, func(w, _ int) {
		if rngs[w].Uint64()%20 == 0 {
			k := fresh[w].Next()
			d.Insert(k, k)
		} else {
			d.Search(keys[rngs[w].Uint64()%preload])
		}
	})
}

// BenchmarkShardedReadMostly measures the E12 mix on the sharded map at
// shards = goroutines = 1/2/4/8 with the shared-read fast path, plus
// the exclusive-lock baseline at 8 — the pair the acceptance claim
// (shared >= 2x exclusive at 8 goroutines on >= 4 cores) compares.
func BenchmarkShardedReadMostly(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shared/shards=%d", g), func(b *testing.B) {
			benchReadMostly(b, MustBuild("sharded", WithShards(g)), g)
		})
	}
	b.Run("exclusive/shards=8", func(b *testing.B) {
		m := MustBuild("sharded", WithShards(8), WithDictionary(func(_ int, sp *Space) Dictionary {
			return exclusiveDict{MustBuild("cola", WithSpace(sp))}
		}))
		benchReadMostly(b, m, 8)
	})
}

// BenchmarkSyncReadMostly is the single-structure counterpart: one
// SynchronizedDictionary under 8 goroutines, RLock shared searches vs
// the exclusive-lock baseline.
func BenchmarkSyncReadMostly(b *testing.B) {
	b.Run("shared", func(b *testing.B) {
		benchReadMostly(b, Synchronized(MustBuild("cola")), 8)
	})
	b.Run("exclusive", func(b *testing.B) {
		benchReadMostly(b, Synchronized(exclusiveDict{MustBuild("cola")}), 8)
	})
}

// BenchmarkSyncSharedSearch is the pure shared-read search hot path
// through the synchronized wrapper (RLock + bracket + COLA search) —
// the benchmark CI pins to zero allocations alongside ShardedSearch.
func BenchmarkSyncSharedSearch(b *testing.B) {
	benchParallelSearches(b, Synchronized(MustBuild("cola")), 8)
}

// BenchmarkShardedBatchIngest compares the three write paths at 8
// shards: per-key Insert, grouped ApplyBatch, and the channel-fed
// Loader, quantifying what batching buys in lock traffic.
func BenchmarkShardedBatchIngest(b *testing.B) {
	const batch = 512
	b.Run("insert", func(b *testing.B) {
		m := MustBuild("sharded", WithShards(8)).(*ShardedMap)
		seq := workload.NewRandomUnique(3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := seq.Next()
			m.Insert(k, k)
		}
	})
	b.Run("applybatch", func(b *testing.B) {
		m := MustBuild("sharded", WithShards(8)).(*ShardedMap)
		seq := workload.NewRandomUnique(3)
		buf := make([]Element, 0, batch)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := seq.Next()
			buf = append(buf, Element{Key: k, Value: k})
			if len(buf) == batch {
				m.ApplyBatch(buf)
				buf = buf[:0]
			}
		}
		m.ApplyBatch(buf)
	})
	b.Run("loader", func(b *testing.B) {
		m := MustBuild("sharded", WithShards(8), WithBatchSize(batch)).(*ShardedMap)
		seq := workload.NewRandomUnique(3)
		b.ResetTimer()
		l := m.NewLoader()
		for i := 0; i < b.N; i++ {
			k := seq.Next()
			l.C() <- Element{Key: k, Value: k}
		}
		l.Close()
	})
}
