// Package repro is a from-scratch Go implementation of "Cache-Oblivious
// Streaming B-trees" (Bender, Farach-Colton, Fineman, Fogel, Kuszmaul,
// Nelson — SPAA 2007): the cache-oblivious lookahead array (COLA) family,
// the shuttle tree, and the baselines the paper compares against, all
// instrumented for the Disk Access Machine cost model.
//
// This file is the public facade: it re-exports the element format, the
// dictionary interfaces, and constructors for every structure, so a
// downstream user needs only this package.
//
//	store := repro.NewStore(4096, 64<<20)            // B = 4 KiB, M = 64 MiB
//	d, err := repro.Build("cola",                    // any registered kind
//	    repro.WithSpace(store.Space("cola")))
//	if err != nil { ... }
//	d.Insert(42, 1)
//	v, ok := d.Search(42)
//	fmt.Println(v, ok, store.Transfers())
//
// Build (registry.go) is the v2 construction surface: one named-builder
// registry over every structure, a unified option set (options.go), and
// Kinds/Register for enumeration and external kinds. The typed v1
// constructors below (NewCOLA, NewBTree, …) are deprecated veneers that
// forward to Build and will be removed in v3; README's migration
// appendix maps each one to its Build spelling and states the removal
// schedule.
//
// Pass a nil space to any constructor to disable cost accounting and
// benchmark pure wall-clock behaviour.
package repro

import (
	"repro/internal/brt"
	"repro/internal/btree"
	"repro/internal/cola"
	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/la"
	"repro/internal/shard"
	"repro/internal/shuttle"
	"repro/internal/swbst"
)

// Element is a 64-bit key/value pair (padded to 32 bytes in the cost
// model, matching the paper's experiments).
type Element = core.Element

// ElementBytes is the padded element size charged by the DAM model.
const ElementBytes = core.ElementBytes

// Dictionary is the interface implemented by every structure here.
type Dictionary = core.Dictionary

// Deleter is implemented by the structures supporting deletion (the
// COLA family via tombstones, the B-tree and BRT natively).
type Deleter = core.Deleter

// Stats carries per-structure operation counters.
type Stats = core.Stats

// Statser exposes Stats.
type Statser = core.Statser

// SharedReader is implemented by dictionaries whose Search/Range are
// safe for concurrent use inside Begin/EndSharedReads brackets with
// mutations excluded; the concurrency wrappers (sharded, synchronized,
// durable) consult it to serve reads under their RWMutex's read side.
// Probe with SharedReads, not a type assertion: wrappers and
// conditionally-safe structures implement the interface unconditionally
// and answer honestly through the probe.
type SharedReader = core.SharedReader

// CapsOf reports the capability sheet of a built dictionary — the one
// public capability probe, replacing scattered type assertions and the
// wrappers' former 5-value Supports methods. Wrappers answer for the
// structure they actually wrap: a sharded map around a B-tree reports
// no batch-native inner path beyond its own, a durable wrapper reports
// WAL but never Snapshot, and SharedReads reflects the concrete inner.
func CapsOf(d Dictionary) Caps { return core.CapsOf(d) }

// SharedReads reports whether d genuinely supports shared reads.
//
// Deprecated: use CapsOf(d).SharedReads — one probe for all six
// capabilities.
func SharedReads(d Dictionary) bool { return core.CapsOf(d).SharedReads }

// Store simulates a two-level DAM memory (block size B, cache size M)
// and counts block transfers.
type Store = dam.Store

// Space is a disjoint region of a Store's address space; structures
// charge their memory traffic to one.
type Space = dam.Space

// NewStore creates a DAM-model memory with the given block and cache
// sizes in bytes.
func NewStore(blockBytes, cacheBytes int64) *Store {
	return dam.NewStore(blockBytes, cacheBytes)
}

// DefaultBlockBytes is the paper's 4 KiB block size.
const DefaultBlockBytes = dam.DefaultBlockBytes

// COLA is the growth-factor-parametrized lookahead array (Section 3/4 of
// the paper); g = 2 is the cache-oblivious COLA.
type COLA = cola.GCOLA

// COLAOptions configures NewGCOLA.
type COLAOptions = cola.Options

// DefaultPointerDensity is the paper's experimental pointer density.
const DefaultPointerDensity = cola.DefaultPointerDensity

// NewCOLA returns the 2-COLA with the paper's default pointer density.
//
// Deprecated: use Build("cola", WithSpace(space)).
func NewCOLA(space *Space) *COLA { return MustBuild("cola", WithSpace(space)).(*COLA) }

// NewBasicCOLA returns the pointerless basic COLA (O(log^2 N) search).
//
// Deprecated: use Build("basic-cola", WithSpace(space)).
func NewBasicCOLA(space *Space) *COLA { return MustBuild("basic-cola", WithSpace(space)).(*COLA) }

// NewGCOLA returns a lookahead array with explicit growth factor and
// pointer density (the paper's g-COLA). It panics where Build would
// return an error, matching the v1 contract.
//
// Deprecated: use Build("gcola", WithGrowthFactor(g),
// WithPointerDensity(p), WithSpace(space)).
func NewGCOLA(opt COLAOptions) *COLA {
	return MustBuild("gcola",
		WithGrowthFactor(opt.Growth),
		WithPointerDensity(opt.PointerDensity),
		WithSpace(opt.Space)).(*COLA)
}

// DeamortizedCOLA is the basic deamortized COLA of Theorem 22: O(log N)
// worst-case moves per insert.
type DeamortizedCOLA = cola.Deamortized

// NewDeamortizedCOLA returns an empty deamortized basic COLA.
//
// Deprecated: use Build("deamortized", WithSpace(space)).
func NewDeamortizedCOLA(space *Space) *DeamortizedCOLA {
	return MustBuild("deamortized", WithSpace(space)).(*DeamortizedCOLA)
}

// DeamortizedLookaheadCOLA is the fully deamortized COLA of Theorem 24
// (shadow/visible arrays, lookahead pointers).
type DeamortizedLookaheadCOLA = cola.DeamortizedLookahead

// NewDeamortizedLookaheadCOLA returns an empty deamortized COLA with
// lookahead pointers.
//
// Deprecated: use Build("deamortized-la", WithSpace(space)).
func NewDeamortizedLookaheadCOLA(space *Space) *DeamortizedLookaheadCOLA {
	return MustBuild("deamortized-la", WithSpace(space)).(*DeamortizedLookaheadCOLA)
}

// ShuttleTree is the paper's main theoretical structure (Section 2).
type ShuttleTree = shuttle.Tree

// ShuttleOptions configures NewShuttleTree.
type ShuttleOptions = shuttle.Options

// NewShuttleTree returns an empty shuttle tree. It panics where Build
// would return an error, matching the v1 contract.
//
// Deprecated: use Build("shuttle", WithFanout(c), WithSpace(space)).
// A custom HFunc has no unified option; the two registered buffer
// schedules are "shuttle" (ScaledH) and "cobtree" (no buffers).
func NewShuttleTree(opt ShuttleOptions) *ShuttleTree {
	if opt.HFunc != nil {
		return shuttle.New(opt)
	}
	return MustBuild("shuttle",
		WithFanout(opt.Fanout),
		WithRelayoutEvery(opt.RelayoutEvery),
		WithSpace(opt.Space)).(*ShuttleTree)
}

// BTree is the B+-tree baseline of the paper's Section 4 experiments.
type BTree = btree.Tree

// BTreeOptions configures NewBTree.
type BTreeOptions = btree.Options

// NewBTree returns an empty B+-tree (4 KiB blocks by default). Zero
// fields keep their v1 defaults (Build derives the same ones).
//
// Deprecated: use Build("btree", WithBlockBytes(b), WithSpace(space)).
func NewBTree(opt BTreeOptions) *BTree {
	opts := []Option{WithSpace(opt.Space)}
	if opt.BlockBytes != 0 {
		opts = append(opts, WithBlockBytes(opt.BlockBytes))
	}
	if opt.LeafCapacity != 0 {
		opts = append(opts, WithLeafCapacity(opt.LeafCapacity))
	}
	if opt.Fanout != 0 {
		opts = append(opts, WithFanout(opt.Fanout))
	}
	return MustBuild("btree", opts...).(*BTree)
}

// BRT is the buffered repository tree, the cache-aware write-optimized
// comparator referenced throughout the paper.
type BRT = brt.Tree

// BRTOptions configures NewBRT.
type BRTOptions = brt.Options

// NewBRT returns an empty buffered repository tree.
//
// Deprecated: use Build("brt", WithBlockBytes(b), WithSpace(space)).
func NewBRT(opt BRTOptions) *BRT {
	opts := []Option{WithSpace(opt.Space)}
	if opt.BlockBytes != 0 {
		opts = append(opts, WithBlockBytes(opt.BlockBytes))
	}
	return MustBuild("brt", opts...).(*BRT)
}

// LookaheadArray is the cache-aware lookahead array with growth factor
// B^epsilon, matching the Be-tree tradeoff.
type LookaheadArray = la.Array

// LookaheadArrayOptions configures NewLookaheadArray.
type LookaheadArrayOptions = la.Options

// NewLookaheadArray returns a cache-aware lookahead array positioned at
// epsilon on the insert/search tradeoff curve. It panics where Build
// would return an error, matching the v1 contract.
//
// Deprecated: use Build("la", WithEpsilon(e), WithBlockBytes(b),
// WithSpace(space)).
func NewLookaheadArray(opt LookaheadArrayOptions) *LookaheadArray {
	return MustBuild("la",
		WithBlockBytes(int64(opt.BlockElems)*ElementBytes),
		WithEpsilon(opt.Epsilon),
		WithSpace(opt.Space)).(*LookaheadArray)
}

// SWBST is the strongly weight-balanced search tree substrate (the
// shuttle tree's skeleton), exposed for direct use.
type SWBST = swbst.Tree

// SWBSTOptions configures NewSWBST.
type SWBSTOptions = swbst.Options

// NewSWBST returns an empty strongly weight-balanced search tree.
//
// Deprecated: use Build("swbst", WithFanout(c)).
func NewSWBST(opt SWBSTOptions) *SWBST { return MustBuild("swbst", WithFanout(opt.Fanout)).(*SWBST) }

// NewCOBTree returns the cache-oblivious B-tree baseline (Bender,
// Demaine, Farach-Colton): the shuttle machinery with buffering
// disabled — a strongly weight-balanced tree in a van Emde Boas layout
// embedded in a packed-memory array. Searches cost O(log_{B+1} N)
// transfers like the shuttle tree's; inserts pay the full leaf-path
// cost the shuttle tree's buffers amortize away.
//
// Deprecated: use Build("cobtree", WithFanout(fanout),
// WithSpace(space)).
func NewCOBTree(fanout int, space *Space) *ShuttleTree {
	return MustBuild("cobtree", WithFanout(fanout), WithSpace(space)).(*ShuttleTree)
}

// ShardedMap is the hash-partitioned concurrent dictionary: N
// single-threaded structures behind per-shard locks, so operations on
// different shards run in parallel and a merge in one shard never
// blocks the others. It implements Dictionary, Deleter, and Statser.
type ShardedMap = shard.Map

// ShardOption is the former option type of NewShardedMap; the sharded
// map now shares the unified Option set of Build.
//
// Deprecated: use Option.
type ShardOption = Option

// ShardFactory builds the dictionary for one shard; the space is the
// shard's private DAM space (nil when accounting is disabled). Used
// with WithDictionary for structures outside the registry; prefer
// WithInner(kind) for registered ones.
type ShardFactory = shard.Factory

// ShardLoader is the channel-fed asynchronous ingestion path of a
// ShardedMap; see ShardedMap.NewLoader.
type ShardLoader = shard.Loader

// NewShardedMap builds a sharded concurrent dictionary. With no options
// it partitions a 2-COLA per shard across the next power of two >=
// GOMAXPROCS shards, with DAM accounting disabled:
//
//	m := repro.NewShardedMap(
//		repro.WithShards(8),
//		repro.WithInner("btree"),
//		repro.WithBatchSize(512),
//	)
//
// It takes the same unified options as Build("sharded", ...) and panics
// where Build would return an error.
//
// Deprecated: use Build("sharded", ...).
func NewShardedMap(opts ...Option) *ShardedMap {
	d := MustBuild("sharded", opts...)
	return d.(*ShardedMap)
}
