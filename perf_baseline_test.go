package repro

// Validates the committed benchmark baseline BENCH_0.json: CI's bench
// lane compares every push against it (cmd/perfgate), so a corrupt or
// hand-edited baseline must fail the ordinary test lane, not surface
// as a confusing gate error.

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/perf"
)

const baselinePath = "BENCH_0.json"

func readBaseline(t *testing.T) *perf.Report {
	t.Helper()
	rep, err := perf.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	return rep
}

func TestBaselineRoundTrips(t *testing.T) {
	rep := readBaseline(t)
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatalf("re-encoding baseline: %v", err)
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatal(err)
	}
	// Write sorts records by key; the committed file must already be in
	// that canonical form so regenerating the baseline produces clean
	// diffs.
	if !bytes.Equal(bytes.TrimSpace(raw), bytes.TrimSpace(buf.Bytes())) {
		t.Fatal("BENCH_0.json is not in canonical form; regenerate it with streambench -json (see README \"Performance\")")
	}
}

func TestBaselineCoversTheFigures(t *testing.T) {
	rep := readBaseline(t)
	if len(rep.Results) == 0 {
		t.Fatal("baseline has no records")
	}
	if !strings.Contains(rep.Label, "streambench") {
		t.Fatalf("baseline label %q does not identify its producer", rep.Label)
	}
	var wallClock, transfers int
	ops := map[string]bool{}
	for _, r := range rep.Results {
		ops[r.Op] = true
		if r.NsPerOp > 0 {
			wallClock++
		}
		if r.TransfersPerOp > 0 {
			transfers++
		}
	}
	if wallClock == 0 || transfers == 0 {
		t.Fatalf("baseline must carry both wall-clock and transfer records (have %d / %d)", wallClock, transfers)
	}
	// The deterministic DAM-transfer figures are the gate's backbone;
	// their ops must be present for the CI comparison to bite.
	for _, op := range []string{
		"figure-2t-cola-vs-b-tree-random-inserts-dam-transfers",
		"figure-4t-random-searches-dam-transfers",
	} {
		if !ops[op] {
			t.Errorf("baseline is missing op %q", op)
		}
	}
}

// TestBaselineComparesCleanlyAgainstItself guards the comparator wiring
// end to end: a report must never regress against itself.
func TestBaselineComparesCleanlyAgainstItself(t *testing.T) {
	rep := readBaseline(t)
	c := perf.Compare(rep, rep, perf.DefaultThresholds())
	if !c.SameHost {
		t.Fatal("a report must fingerprint-match itself")
	}
	if regs := c.Regressions(); len(regs) != 0 {
		t.Fatalf("self-comparison regressed: %+v", regs)
	}
	if len(c.OnlyBase) != 0 || len(c.OnlyNew) != 0 {
		t.Fatal("self-comparison left unmatched records")
	}
}
