package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/hypothesis"
)

// runHypothesis measures one experiment bundle and exits with the
// verdict: 0 confirmed (or advisory — a wall-clock bundle measured
// below its CPU floor reports rather than gates), 1 falsified, 2 usage
// error. When jsonPath is
// set the verdict document is written on BOTH outcomes (a falsification
// is a result, not a failure to produce one) via a sibling temp file
// renamed over the target, so a usage or build error never truncates an
// existing verdict.
func runHypothesis(name string, cfg harness.Config, jsonPath string) {
	if _, ok := hypothesis.Get(name); !ok {
		fmt.Fprintf(os.Stderr, "unknown hypothesis bundle %q; registered: %s\n",
			name, strings.Join(hypothesis.Names(), ", "))
		os.Exit(2)
	}
	var jsonTmp *os.File
	if jsonPath != "" {
		f, err := os.Create(jsonPath + ".tmp")
		if err != nil {
			fmt.Fprintf(os.Stderr, "-json: %v\n", err)
			os.Exit(2)
		}
		jsonTmp = f
	}

	v, err := hypothesis.Run(name, cfg)
	if err != nil {
		if jsonTmp != nil {
			jsonTmp.Close()
			os.Remove(jsonTmp.Name())
		}
		fmt.Fprintf(os.Stderr, "-hypothesis: %v\n", err)
		os.Exit(1)
	}

	printVerdict(os.Stdout, v)

	if jsonTmp != nil {
		enc := json.NewEncoder(jsonTmp)
		enc.SetIndent("", "  ")
		err := enc.Encode(v)
		if cerr := jsonTmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(jsonTmp.Name(), jsonPath)
		}
		if err != nil {
			os.Remove(jsonTmp.Name())
			fmt.Fprintf(os.Stderr, "-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote verdict to %s\n", jsonPath)
	}
	if !v.Confirmed && !v.Advisory {
		os.Exit(1)
	}
}

// printVerdict renders one verdict for a human.
func printVerdict(w *os.File, v hypothesis.Verdict) {
	fmt.Fprintf(w, "hypothesis %s — %s\n", v.Name, v.Title)
	fmt.Fprintf(w, "  claim:     %s\n", v.Claim)
	fmt.Fprintf(w, "  mechanism: %s\n", v.Mechanism)
	fmt.Fprintf(w, "  geometry:  N=2^%d, cache=%d B, seed=%d, metric %s\n", v.LogN, v.CacheBytes, v.Seed, v.Metric)
	for _, r := range []hypothesis.RatioResult{v.Experiment, v.Control} {
		fmt.Fprintf(w, "  %-11s %s = %.4f / %.4f = %.3f\n",
			r.Label+":", v.Metric, r.Num.Value, r.Den.Value, r.Observed)
	}
	fmt.Fprintf(w, "  prediction: experiment >= %.3f and control <= %.3f (tolerance %.0f%%)\n",
		v.Prediction.MinRatio*(1-v.Prediction.Tolerance),
		v.Prediction.ControlMax*(1+v.Prediction.Tolerance),
		v.Prediction.Tolerance*100)
	verdict := "CONFIRMED"
	if !v.Confirmed {
		verdict = "FALSIFIED"
	}
	if v.Advisory {
		verdict += " (advisory)"
	}
	fmt.Fprintf(w, "  verdict: %s\n", verdict)
	for _, r := range v.Reasons {
		fmt.Fprintf(w, "    - %s\n", r)
	}
	if v.Advisory {
		fmt.Fprintf(w, "    - %s\n", v.AdvisoryReason)
	}
}
