// Command streambench regenerates the evaluation of "Cache-Oblivious
// Streaming B-trees" (SPAA 2007): Figures 2-5, the headline ratios, and
// the asymptotic-claim experiments indexed in DESIGN.md.
//
// Usage:
//
//	streambench -fig all                  # everything (DESIGN.md E1-E10)
//	streambench -fig 2 -logn 20           # Figure 2 at N = 2^20
//	streambench -fig transfers -csv       # E6 as CSV
//	streambench -fig readmostly           # E12: shared-read vs exclusive-lock searches
//	streambench -fig outofcore            # E15: spilled gcola, predicted vs actual transfers
//	streambench -fig durability           # E11: snapshot save/load bandwidth
//	streambench -fig scenarios            # E13: the default skew × arrival × mix grid
//	streambench -scenario zipf1.2+bursty+95r5w,uniform+steady+60w40d
//	streambench -hypothesis cola-insert-advantage -json verdict.json
//	streambench -list                     # registered dictionary kinds + capabilities
//	streambench -dict cola,btree,sharded  # Figure 2 over any kinds
//	streambench -fig 4 -dict brt,shuttle  # Figure 4 over a custom lineup
//	streambench -fig all -json out.json   # also emit perf records (CI baseline)
//
// Durability subsystem (snapshots and write-ahead logging):
//
//	streambench -save img.snap -dict gcola -logn 20   # ingest, persist a warm image
//	streambench -load img.snap -searches 8192         # reopen it, measure warm searches
//	streambench -recover-ingest -wal d.wal -dict gcola -logn 24 -wal-batch 512
//	streambench -recover-verify -wal d.wal -wal-batch 512 -recover-min 1
//
// -recover-ingest feeds a deterministic keyed workload through a
// "durable" dictionary in acknowledged batches; kill it at any point
// (the CI recovery lane uses SIGKILL mid-ingest) and -recover-verify
// reopens the log and proves the recovered state is exactly a whole
// number of acknowledged batches with the right contents.
//
// -scenario drives composable workloads (key-skew + arrival + op-mix,
// e.g. "zipf1.2+bursty+95r5w"; see internal/workload) over the -dict
// lineup. -hypothesis runs one registered experiment bundle — claim,
// quantitative prediction, control arm — and exits 0 when the claim is
// confirmed, 1 when it is falsified (writing the JSON verdict either
// way if -json is given), 2 on usage errors.
//
// -dict takes registered kinds (see -list) and the figures' display
// names ("2-COLA", "B-tree", ...) interchangeably; with -fig left at
// its default it runs the Figure 2 experiment over the chosen lineup.
// Flags scale the experiments; the defaults finish in a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/perf"
	"repro/internal/registry"
	"repro/internal/snap"
	"repro/internal/workload"
)

// logN bounds accepted by -logn: below 2^8 every checkpoint window is
// empty (LogNStart defaults to 10 and clamps down), above 2^28 a sweep
// allocates tens of GiB and would OOM mid-run rather than fail fast.
const (
	minLogN = 8
	maxLogN = 28
)

func main() {
	var (
		fig        = flag.String("fig", "all", "which figure to regenerate: 2, 3, 4, 5, ratios, transfers, deamortized, scans, shuttle, concurrent, readmostly, durability, scenarios, serve, outofcore, all")
		dict       = flag.String("dict", "", "comma-separated structure lineup for -fig 2/3/4/scenarios (registered kinds or figure names; see -list)")
		scenario   = flag.String("scenario", "", "comma-separated scenario specs (skew+arrival+mix, e.g. zipf1.2+bursty+95r5w) for -fig scenarios; implies it when -fig is unset")
		hyp        = flag.String("hypothesis", "", "run one experiment bundle by name and exit 0 confirmed / 1 falsified (see internal/hypothesis)")
		list       = flag.Bool("list", false, "list the registered dictionary kinds with their options and exit")
		logn       = flag.Int("logn", 18, "log2 of the largest workload size")
		lognStart  = flag.Int("logn-start", 10, "log2 of the first measured checkpoint")
		blockBytes = flag.Int64("block", 4096, "DAM block size B in bytes")
		cacheBytes = flag.Int64("cache", 1<<20, "DAM cache size M in bytes")
		seed       = flag.Uint64("seed", 42, "workload seed")
		searches   = flag.Int("searches", 1<<13, "number of searches for Figure 4")
		csv        = flag.Bool("csv", false, "emit CSV instead of tables")
		jsonPath   = flag.String("json", "", "also write the run as perf records (internal/perf schema) to this file")

		savePath   = flag.String("save", "", "ingest 2^logn elements into the single -dict kind and save a warm snapshot image to this path")
		loadPath   = flag.String("load", "", "load a warm snapshot image and measure warm searches over its contents")
		walPath    = flag.String("wal", "", "write-ahead log path for the -recover-* modes")
		recIngest  = flag.Bool("recover-ingest", false, "ingest 2^logn elements through a durable dictionary at -wal in acknowledged batches (kill it mid-run to test recovery)")
		recVerify  = flag.Bool("recover-verify", false, "reopen -wal and verify the recovered state is an exact acknowledged-batch prefix")
		walBatch   = flag.Int("wal-batch", 512, "elements per acknowledged batch in the -recover-* modes")
		ckptEvery  = flag.Int("ckpt-every", 0, "checkpoint the durable dictionary every N batches during -recover-ingest (0 = never)")
		recoverMin = flag.Int("recover-min", 0, "-recover-verify fails unless at least this many elements were recovered")
	)
	flag.Parse()
	if *logn < minLogN || *logn > maxLogN {
		fmt.Fprintf(os.Stderr, "-logn %d out of range [%d, %d]\n", *logn, minLogN, maxLogN)
		os.Exit(2)
	}
	figExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fig" {
			figExplicit = true
		}
	})

	if *list {
		printKinds(os.Stdout)
		return
	}

	// Hypothesis mode runs instead of a figure: the bundle pins its own
	// arms and geometry, so the figure-selection flags do not compose
	// with it.
	if *hyp != "" {
		if *recIngest || *recVerify || *savePath != "" || *loadPath != "" {
			fmt.Fprintln(os.Stderr, "-hypothesis and the durability modes are mutually exclusive")
			os.Exit(2)
		}
		if *dict != "" || *scenario != "" || figExplicit {
			fmt.Fprintln(os.Stderr, "-hypothesis runs its bundle's own pinned arms; -fig, -dict and -scenario do not apply")
			os.Exit(2)
		}
		runHypothesis(*hyp, harness.Config{BlockBytes: *blockBytes, Seed: *seed}, *jsonPath)
		return
	}

	// Durability modes run instead of a figure; each validates its own
	// flag subset and exits non-zero on failure.
	switch {
	case *recIngest && *recVerify:
		fmt.Fprintln(os.Stderr, "-recover-ingest and -recover-verify are mutually exclusive")
		os.Exit(2)
	case *recIngest:
		runRecoverIngest(*walPath, *dict, *logn, *walBatch, *ckptEvery)
		return
	case *recVerify:
		runRecoverVerify(*walPath, *dict, *walBatch, *recoverMin)
		return
	case *savePath != "" && *loadPath != "":
		fmt.Fprintln(os.Stderr, "-save and -load are mutually exclusive")
		os.Exit(2)
	case *savePath != "":
		runSaveImage(*savePath, *dict, *logn, *seed)
		return
	case *loadPath != "":
		runLoadImage(*loadPath, *seed, *searches)
		return
	}

	cfg := harness.Config{
		LogN:       *logn,
		LogNStart:  *lognStart,
		BlockBytes: *blockBytes,
		CacheBytes: *cacheBytes,
		Seed:       *seed,
		Searches:   *searches,
	}

	figName := strings.ToLower(*fig)

	// Scenario specs validate before any work, like every other flag; an
	// unknown spec must exit 2 without touching the -json target.
	var scenarioSpecs []string
	if *scenario != "" {
		for _, tok := range strings.Split(*scenario, ",") {
			if tok = strings.TrimSpace(tok); tok != "" {
				scenarioSpecs = append(scenarioSpecs, tok)
			}
		}
		if len(scenarioSpecs) == 0 {
			fmt.Fprintf(os.Stderr, "-scenario %q names no scenarios\n", *scenario)
			os.Exit(2)
		}
		for _, spec := range scenarioSpecs {
			if _, err := workload.Parse(spec); err != nil {
				fmt.Fprintf(os.Stderr, "-scenario: %v\n", err)
				os.Exit(2)
			}
		}
		if !figExplicit {
			figName = "scenarios"
		} else if figName != "scenarios" {
			fmt.Fprintf(os.Stderr, "-scenario applies to -fig scenarios only (got -fig %q)\n", *fig)
			os.Exit(2)
		}
	}

	var lineup []string
	if *dict != "" {
		for _, tok := range strings.Split(*dict, ",") {
			if tok = strings.TrimSpace(tok); tok != "" {
				lineup = append(lineup, tok)
			}
		}
		if len(lineup) == 0 {
			fmt.Fprintf(os.Stderr, "-dict %q names no structures (see -list)\n", *dict)
			os.Exit(2)
		}
		if err := harness.ValidateLineup(lineup); err != nil {
			fmt.Fprintf(os.Stderr, "-dict: %v\n", err)
			os.Exit(2)
		}
		if figName == "all" && !figExplicit {
			figName = "2" // default experiment for a custom lineup
		}
		switch figName {
		case "2", "3", "4", "scenarios":
		default:
			fmt.Fprintf(os.Stderr, "-dict applies to -fig 2/3/4/scenarios only (got -fig %q)\n", *fig)
			os.Exit(2)
		}
	}
	switch figName {
	case "2", "3", "4", "5", "ratios", "transfers", "deamortized", "scans", "shuttle", "concurrent", "readmostly", "durability", "scenarios", "serve", "outofcore", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	// Open the perf output only now — after every flag has validated —
	// and as a sibling temp file that is renamed over the target once
	// the report is written: an unwritable path still fails before the
	// sweep, and a failed or interrupted run can never truncate an
	// existing report (the committed baseline in particular).
	var jsonTmp *os.File
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath + ".tmp")
		if err != nil {
			fmt.Fprintf(os.Stderr, "-json: %v\n", err)
			os.Exit(2)
		}
		jsonTmp = f
	}

	var results []harness.Result
	switch figName {
	case "2":
		if lineup != nil {
			results = cfg.Figure2For(lineup)
		} else {
			results = cfg.Figure2()
		}
	case "3":
		if lineup != nil {
			results = cfg.Figure3For(lineup)
		} else {
			results = cfg.Figure3()
		}
	case "4":
		if lineup != nil {
			results = cfg.Figure4For(lineup)
		} else {
			results = cfg.Figure4()
		}
	case "5":
		results = cfg.Figure5()
	case "ratios":
		results = []harness.Result{cfg.Ratios()}
	case "transfers":
		results = []harness.Result{cfg.Transfers()}
	case "deamortized":
		results = []harness.Result{cfg.Deamortized()}
	case "scans":
		results = []harness.Result{cfg.RangeScans()}
	case "shuttle":
		results = []harness.Result{cfg.Shuttle()}
	case "concurrent":
		results = []harness.Result{cfg.Concurrent()}
	case "readmostly":
		results = []harness.Result{cfg.ReadMostly()}
	case "durability":
		results = []harness.Result{cfg.Durability()}
	case "scenarios":
		specs := scenarioSpecs
		if specs == nil {
			specs = harness.DefaultScenarioGrid()
		}
		names := lineup
		if names == nil {
			names = harness.DefaultScenarioLineup()
		}
		var err error
		results, err = cfg.ScenariosFor(names, specs)
		if err != nil {
			// Specs and lineup validated above, so this is a structural
			// mismatch (e.g. a delete-bearing mix over a structure with no
			// Deleter) — a usage error, caught before any report is written.
			if jsonTmp != nil {
				jsonTmp.Close()
				os.Remove(jsonTmp.Name())
			}
			fmt.Fprintf(os.Stderr, "-fig scenarios: %v\n", err)
			os.Exit(2)
		}
	case "outofcore":
		var err error
		results, err = cfg.OutOfCore()
		if err != nil {
			if jsonTmp != nil {
				jsonTmp.Close()
				os.Remove(jsonTmp.Name())
			}
			fmt.Fprintf(os.Stderr, "-fig outofcore: %v\n", err)
			os.Exit(1)
		}
	case "serve":
		r, err := cfg.Serve()
		if err != nil {
			if jsonTmp != nil {
				jsonTmp.Close()
				os.Remove(jsonTmp.Name())
			}
			fmt.Fprintf(os.Stderr, "-fig serve: %v\n", err)
			os.Exit(1)
		}
		results = []harness.Result{r}
	case "all":
		results = cfg.All()
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
	for _, r := range results {
		if *csv {
			harness.CSV(os.Stdout, r)
		} else {
			harness.Print(os.Stdout, r)
		}
	}

	if jsonTmp != nil {
		rep := perf.NewReport(fmt.Sprintf(
			"streambench -fig %s -logn %d -logn-start %d -block %d -cache %d -seed %d -searches %d -dict %q",
			figName, *logn, *lognStart, *blockBytes, *cacheBytes, *seed, *searches, *dict))
		rep.Add(harness.PerfRecords(results)...)
		err := rep.Write(jsonTmp)
		if cerr := jsonTmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(jsonTmp.Name(), *jsonPath)
		}
		if err != nil {
			os.Remove(jsonTmp.Name())
			fmt.Fprintf(os.Stderr, "-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d perf records to %s\n", len(rep.Results), *jsonPath)
	}
}

// printKinds renders the registry: every kind, its one-line doc, the
// options it accepts, and its capability flags.
func printKinds(w *os.File) {
	fmt.Fprintln(w, "registered dictionary kinds (build with -dict, or repro.Build in code):")
	for _, kind := range registry.Kinds() {
		info, _ := registry.Info(kind)
		fmt.Fprintf(w, "\n  %-15s %s\n", kind, info.Doc)
		if len(info.Options) > 0 {
			fmt.Fprintf(w, "  %-15s options: %s\n", "", strings.Join(info.Options, ", "))
		}
		fmt.Fprintf(w, "  %-15s capabilities: %s\n", "", info.Caps)
	}
	fmt.Fprintf(w, "\nfigure display names also accepted by -dict: %s\n",
		strings.Join(harness.LegacyNames(), ", "))
}

// fail prints an error and exits with the CLI-usage status.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

// singleKind resolves -dict for the durability modes: exactly one
// registered kind (not a figure display name — these modes build
// through the registry directly).
func singleKind(dict, def string) string {
	if dict == "" {
		return def
	}
	if strings.Contains(dict, ",") {
		fail("-dict must name exactly one registered kind here (got %q)", dict)
	}
	if _, ok := registry.Info(dict); !ok {
		fail("unknown kind %q (see -list)", dict)
	}
	return dict
}

// checkLogN mirrors the main figure path's -logn validation.
func checkLogN(logn int) {
	if logn < minLogN || logn > maxLogN {
		fail("-logn %d out of range [%d, %d]", logn, minLogN, maxLogN)
	}
}

// runSaveImage ingests a deterministic random workload into one kind
// and persists it as a warm on-disk image, so later runs (or the -load
// mode) can start from a populated structure instead of a cold ingest.
func runSaveImage(path, dict string, logn int, seed uint64) {
	checkLogN(logn)
	kind := singleKind(dict, "gcola")
	if info, _ := registry.Info(kind); !info.Caps.Snapshot {
		fail("kind %q does not support snapshots (see -list)", kind)
	}
	n := 1 << logn
	d, err := registry.Build(kind)
	if err != nil {
		fail("build %q: %v", kind, err)
	}
	elems := make([]core.Element, n)
	seq := workload.NewRandomUnique(seed)
	for i := range elems {
		k := seq.Next()
		elems[i] = core.Element{Key: k, Value: k ^ 0xD1C7}
	}
	start := time.Now()
	core.InsertBatch(d, elems)
	ingest := time.Since(start)
	start = time.Now()
	if err := repro.SaveFile(path, kind, d); err != nil {
		fail("-save: %v", err)
	}
	saveDur := time.Since(start)
	fi, _ := os.Stat(path)
	fmt.Printf("saved %s image of %d elements to %s: %d bytes, ingest %.2fs, save %.3fs (%.0f MB/s)\n",
		kind, n, path, fi.Size(), ingest.Seconds(), saveDur.Seconds(),
		float64(fi.Size())/1e6/saveDur.Seconds())
}

// runLoadImage restores a -save image — the container header says what
// to build — and measures warm searches over the recorded workload.
func runLoadImage(path string, seed uint64, searches int) {
	f, err := os.Open(path)
	if err != nil {
		fail("-load: %v", err)
	}
	// Header only — what kind is this image? — without reading (and
	// checksumming) the payload twice; LoadFile below does the real work.
	spec, err := snap.DecodeHeader(f)
	f.Close()
	if err != nil {
		fail("-load: %v", err)
	}
	start := time.Now()
	d, err := repro.LoadFile(path)
	if err != nil {
		fail("-load: %v", err)
	}
	loadDur := time.Since(start)
	n := d.Len()
	fmt.Printf("loaded %s image from %s: %d elements in %.3fs\n", spec.Kind, path, n, loadDur.Seconds())
	if n == 0 || searches <= 0 {
		return
	}
	// The image's keys are the deterministic random-unique stream of
	// -save with the same -seed; regenerate and probe.
	keys := workload.Take(workload.NewRandomUnique(seed), n)
	probe := workload.NewRNG(seed + 7)
	start = time.Now()
	for i := 0; i < searches; i++ {
		k := keys[probe.Intn(len(keys))]
		if v, ok := d.Search(k); !ok || v != k^0xD1C7 {
			fail("warm image is wrong: Search(%d) = (%d,%v)", k, v, ok)
		}
	}
	dur := time.Since(start)
	fmt.Printf("warm searches: %d in %.3fs (%.0f/s)\n", searches, dur.Seconds(), float64(searches)/dur.Seconds())
}

// recoveryMult spreads the recovery workload's sequential index over
// the key space (fibonacci multiplier: odd, so i -> key is injective).
const recoveryMult = 0x9E3779B97F4A7C15

func recoveryKey(i int) uint64 { return uint64(i+1) * recoveryMult }

// runRecoverIngest streams batches through a durable dictionary. Every
// batch is acknowledged (write-ahead logged) before the next starts, so
// killing this process at ANY point must lose nothing but the final
// in-flight batch — which -recover-verify checks.
func runRecoverIngest(path, dict string, logn, batch, ckptEvery int) {
	if path == "" {
		fail("-recover-ingest requires -wal")
	}
	checkLogN(logn)
	if batch <= 0 {
		fail("-wal-batch must be positive")
	}
	if (1<<logn)%batch != 0 {
		// -recover-verify proves the recovered count is a whole number
		// of batches; a short final batch from a non-dividing size would
		// make a COMPLETED run indistinguishable from a leaked
		// un-acknowledged tail and fail verification falsely.
		fail("-wal-batch %d does not divide the 2^%d-element workload; pick a power of two so every acknowledged batch is full-size", batch, logn)
	}
	kind := singleKind(dict, "gcola")
	opts := []repro.Option{repro.WithInner(kind)}
	if ckptEvery > 0 {
		opts = append(opts, repro.WithCheckpointEvery(ckptEvery))
	}
	d, err := repro.Open(path, opts...)
	if err != nil {
		fail("-recover-ingest: %v", err)
	}
	defer d.Close()
	n := 1 << logn
	if d.Len() != 0 {
		fail("-recover-ingest: %s already holds %d elements; use a fresh -wal path", path, d.Len())
	}
	elems := make([]core.Element, 0, batch)
	start := time.Now()
	for i := 0; i < n; i += batch {
		elems = elems[:0]
		for j := i; j < i+batch && j < n; j++ {
			elems = append(elems, core.Element{Key: recoveryKey(j), Value: uint64(j)})
		}
		d.InsertBatch(elems) // acknowledged on return
		if (i/batch)%256 == 0 {
			fmt.Printf("acked %d elements (%d batches)\n", i+len(elems), i/batch+1)
		}
	}
	dur := time.Since(start)
	fmt.Printf("ingest complete: %d elements in %.2fs (%.0f/s), %d records in log\n",
		n, dur.Seconds(), float64(n)/dur.Seconds(), d.Records())
}

// runRecoverVerify reopens the log and proves the recovered dictionary
// is exactly the acknowledged prefix of the -recover-ingest workload: a
// whole number of batches, every recovered index present with its
// value, and the next key absent.
func runRecoverVerify(path, dict string, batch, minElems int) {
	if path == "" {
		fail("-recover-verify requires -wal")
	}
	if batch <= 0 {
		fail("-wal-batch must be positive")
	}
	var opts []repro.Option
	if dict != "" {
		opts = append(opts, repro.WithInner(singleKind(dict, "")))
	}
	d, err := repro.Open(path, opts...)
	if err != nil {
		fail("-recover-verify: %v", err)
	}
	defer d.Close()
	n := d.Len()
	if n%batch != 0 {
		fail("recovered %d elements, not a whole number of %d-element batches: an un-acknowledged tail leaked in", n, batch)
	}
	for i := 0; i < n; i++ {
		if v, ok := d.Search(recoveryKey(i)); !ok || v != uint64(i) {
			fail("recovered state wrong at index %d: Search = (%d, %v), want %d", i, v, ok, uint64(i))
		}
	}
	if _, ok := d.Search(recoveryKey(n)); ok {
		fail("key beyond the acknowledged prefix is present")
	}
	if n < minElems {
		fail("recovered %d elements, -recover-min demands at least %d", n, minElems)
	}
	fmt.Printf("recovery verified: %d elements (%d acknowledged batches), prefix exact\n", n, n/batch)
}
