// Command streambench regenerates the evaluation of "Cache-Oblivious
// Streaming B-trees" (SPAA 2007): Figures 2-5, the headline ratios, and
// the asymptotic-claim experiments indexed in DESIGN.md.
//
// Usage:
//
//	streambench -fig all                  # everything (DESIGN.md E1-E10)
//	streambench -fig 2 -logn 20           # Figure 2 at N = 2^20
//	streambench -fig transfers -csv       # E6 as CSV
//	streambench -list                     # registered dictionary kinds
//	streambench -dict cola,btree,sharded  # Figure 2 over any kinds
//	streambench -fig 4 -dict brt,shuttle  # Figure 4 over a custom lineup
//	streambench -fig all -json out.json   # also emit perf records (CI baseline)
//
// -dict takes registered kinds (see -list) and the figures' display
// names ("2-COLA", "B-tree", ...) interchangeably; with -fig left at
// its default it runs the Figure 2 experiment over the chosen lineup.
// Flags scale the experiments; the defaults finish in a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/perf"
	"repro/internal/registry"
)

// logN bounds accepted by -logn: below 2^8 every checkpoint window is
// empty (LogNStart defaults to 10 and clamps down), above 2^28 a sweep
// allocates tens of GiB and would OOM mid-run rather than fail fast.
const (
	minLogN = 8
	maxLogN = 28
)

func main() {
	var (
		fig        = flag.String("fig", "all", "which figure to regenerate: 2, 3, 4, 5, ratios, transfers, deamortized, scans, shuttle, concurrent, all")
		dict       = flag.String("dict", "", "comma-separated structure lineup for -fig 2/3/4 (registered kinds or figure names; see -list)")
		list       = flag.Bool("list", false, "list the registered dictionary kinds with their options and exit")
		logn       = flag.Int("logn", 18, "log2 of the largest workload size")
		lognStart  = flag.Int("logn-start", 10, "log2 of the first measured checkpoint")
		blockBytes = flag.Int64("block", 4096, "DAM block size B in bytes")
		cacheBytes = flag.Int64("cache", 1<<20, "DAM cache size M in bytes")
		seed       = flag.Uint64("seed", 42, "workload seed")
		searches   = flag.Int("searches", 1<<13, "number of searches for Figure 4")
		csv        = flag.Bool("csv", false, "emit CSV instead of tables")
		jsonPath   = flag.String("json", "", "also write the run as perf records (internal/perf schema) to this file")
	)
	flag.Parse()
	if *logn < minLogN || *logn > maxLogN {
		fmt.Fprintf(os.Stderr, "-logn %d out of range [%d, %d]\n", *logn, minLogN, maxLogN)
		os.Exit(2)
	}
	figExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "fig" {
			figExplicit = true
		}
	})

	if *list {
		printKinds(os.Stdout)
		return
	}

	cfg := harness.Config{
		LogN:       *logn,
		LogNStart:  *lognStart,
		BlockBytes: *blockBytes,
		CacheBytes: *cacheBytes,
		Seed:       *seed,
		Searches:   *searches,
	}

	figName := strings.ToLower(*fig)
	var lineup []string
	if *dict != "" {
		for _, tok := range strings.Split(*dict, ",") {
			if tok = strings.TrimSpace(tok); tok != "" {
				lineup = append(lineup, tok)
			}
		}
		if len(lineup) == 0 {
			fmt.Fprintf(os.Stderr, "-dict %q names no structures (see -list)\n", *dict)
			os.Exit(2)
		}
		if err := harness.ValidateLineup(lineup); err != nil {
			fmt.Fprintf(os.Stderr, "-dict: %v\n", err)
			os.Exit(2)
		}
		if figName == "all" && !figExplicit {
			figName = "2" // default experiment for a custom lineup
		}
		switch figName {
		case "2", "3", "4":
		default:
			fmt.Fprintf(os.Stderr, "-dict applies to -fig 2/3/4 only (got -fig %q)\n", *fig)
			os.Exit(2)
		}
	}
	switch figName {
	case "2", "3", "4", "5", "ratios", "transfers", "deamortized", "scans", "shuttle", "concurrent", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	// Open the perf output only now — after every flag has validated —
	// and as a sibling temp file that is renamed over the target once
	// the report is written: an unwritable path still fails before the
	// sweep, and a failed or interrupted run can never truncate an
	// existing report (the committed baseline in particular).
	var jsonTmp *os.File
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath + ".tmp")
		if err != nil {
			fmt.Fprintf(os.Stderr, "-json: %v\n", err)
			os.Exit(2)
		}
		jsonTmp = f
	}

	var results []harness.Result
	switch figName {
	case "2":
		if lineup != nil {
			results = cfg.Figure2For(lineup)
		} else {
			results = cfg.Figure2()
		}
	case "3":
		if lineup != nil {
			results = cfg.Figure3For(lineup)
		} else {
			results = cfg.Figure3()
		}
	case "4":
		if lineup != nil {
			results = cfg.Figure4For(lineup)
		} else {
			results = cfg.Figure4()
		}
	case "5":
		results = cfg.Figure5()
	case "ratios":
		results = []harness.Result{cfg.Ratios()}
	case "transfers":
		results = []harness.Result{cfg.Transfers()}
	case "deamortized":
		results = []harness.Result{cfg.Deamortized()}
	case "scans":
		results = []harness.Result{cfg.RangeScans()}
	case "shuttle":
		results = []harness.Result{cfg.Shuttle()}
	case "concurrent":
		results = []harness.Result{cfg.Concurrent()}
	case "all":
		results = cfg.All()
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}
	for _, r := range results {
		if *csv {
			harness.CSV(os.Stdout, r)
		} else {
			harness.Print(os.Stdout, r)
		}
	}

	if jsonTmp != nil {
		rep := perf.NewReport(fmt.Sprintf(
			"streambench -fig %s -logn %d -logn-start %d -block %d -cache %d -seed %d -searches %d -dict %q",
			figName, *logn, *lognStart, *blockBytes, *cacheBytes, *seed, *searches, *dict))
		rep.Add(harness.PerfRecords(results)...)
		err := rep.Write(jsonTmp)
		if cerr := jsonTmp.Close(); err == nil {
			err = cerr
		}
		if err == nil {
			err = os.Rename(jsonTmp.Name(), *jsonPath)
		}
		if err != nil {
			os.Remove(jsonTmp.Name())
			fmt.Fprintf(os.Stderr, "-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d perf records to %s\n", len(rep.Results), *jsonPath)
	}
}

// printKinds renders the registry: every kind, its one-line doc, and
// the options it accepts.
func printKinds(w *os.File) {
	fmt.Fprintln(w, "registered dictionary kinds (build with -dict, or repro.Build in code):")
	for _, kind := range registry.Kinds() {
		info, _ := registry.Info(kind)
		fmt.Fprintf(w, "\n  %-15s %s\n", kind, info.Doc)
		if len(info.Options) > 0 {
			fmt.Fprintf(w, "  %-15s options: %s\n", "", strings.Join(info.Options, ", "))
		}
	}
	fmt.Fprintf(w, "\nfigure display names also accepted by -dict: %s\n",
		strings.Join(harness.LegacyNames(), ", "))
}
