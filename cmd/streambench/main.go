// Command streambench regenerates the evaluation of "Cache-Oblivious
// Streaming B-trees" (SPAA 2007): Figures 2-5, the headline ratios, and
// the asymptotic-claim experiments indexed in DESIGN.md.
//
// Usage:
//
//	streambench -fig all                  # everything (DESIGN.md E1-E10)
//	streambench -fig 2 -logn 20           # Figure 2 at N = 2^20
//	streambench -fig transfers -csv       # E6 as CSV
//
// Flags scale the experiments; the defaults finish in a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	var (
		fig        = flag.String("fig", "all", "which figure to regenerate: 2, 3, 4, 5, ratios, transfers, deamortized, scans, shuttle, concurrent, all")
		logn       = flag.Int("logn", 18, "log2 of the largest workload size")
		lognStart  = flag.Int("logn-start", 10, "log2 of the first measured checkpoint")
		blockBytes = flag.Int64("block", 4096, "DAM block size B in bytes")
		cacheBytes = flag.Int64("cache", 1<<20, "DAM cache size M in bytes")
		seed       = flag.Uint64("seed", 42, "workload seed")
		searches   = flag.Int("searches", 1<<13, "number of searches for Figure 4")
		csv        = flag.Bool("csv", false, "emit CSV instead of tables")
	)
	flag.Parse()

	cfg := harness.Config{
		LogN:       *logn,
		LogNStart:  *lognStart,
		BlockBytes: *blockBytes,
		CacheBytes: *cacheBytes,
		Seed:       *seed,
		Searches:   *searches,
	}

	var results []harness.Result
	switch strings.ToLower(*fig) {
	case "2":
		results = cfg.Figure2()
	case "3":
		results = cfg.Figure3()
	case "4":
		results = cfg.Figure4()
	case "5":
		results = cfg.Figure5()
	case "ratios":
		results = []harness.Result{cfg.Ratios()}
	case "transfers":
		results = []harness.Result{cfg.Transfers()}
	case "deamortized":
		results = []harness.Result{cfg.Deamortized()}
	case "scans":
		results = []harness.Result{cfg.RangeScans()}
	case "shuttle":
		results = []harness.Result{cfg.Shuttle()}
	case "concurrent":
		results = []harness.Result{cfg.Concurrent()}
	case "all":
		results = cfg.All()
	default:
		fmt.Fprintf(os.Stderr, "unknown -fig %q\n", *fig)
		flag.Usage()
		os.Exit(2)
	}

	for _, r := range results {
		if *csv {
			harness.CSV(os.Stdout, r)
		} else {
			harness.Print(os.Stdout, r)
		}
	}
}
