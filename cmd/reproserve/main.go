// Command reproserve serves a registry-built dictionary over the wire
// protocol in internal/server.
//
// The default composition is a shard map over durable gcola shards when
// -wal names a directory, volatile otherwise. The listener address is
// printed as "listening on <addr>" once the socket is bound (use
// -addr 127.0.0.1:0 and parse that line to serve on an ephemeral port),
// and SIGINT/SIGTERM drain gracefully: the listener closes, in-flight
// requests finish, write-ahead logs sync, and the process exits 0.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "listen address (port 0 picks an ephemeral port)")
		kind       = flag.String("kind", "gcola", "inner registry kind per shard")
		shards     = flag.Int("shards", 0, "shard count, rounded to a power of two (0 = one per CPU)")
		walDir     = flag.String("wal", "", "write-ahead-log directory; empty serves volatile")
		ckptEvery  = flag.Int("checkpoint-every", 0, "per-shard auto-checkpoint cadence in records (0 = off)")
		drainAfter = flag.Duration("drain-timeout", 10*time.Second, "how long to wait for in-flight requests on shutdown")
	)
	flag.Parse()

	h, err := server.Open(server.Spec{
		Kind:            *kind,
		Shards:          *shards,
		WALDir:          *walDir,
		CheckpointEvery: *ckptEvery,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproserve:", err)
		os.Exit(1)
	}

	srv := server.New(h.Dict)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproserve:", err)
		os.Exit(1)
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	fmt.Printf("serving %s x%d caps=%s durable=%v\n",
		h.Spec.Kind, h.Spec.Shards, capsString(srv.Caps()), h.Spec.WALDir != "")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	var exit int
	select {
	case s := <-sig:
		fmt.Printf("signal %v: draining\n", s)
		if err := srv.Shutdown(*drainAfter); err != nil {
			fmt.Fprintln(os.Stderr, "reproserve: drain:", err)
			exit = 1
		}
		<-done
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "reproserve: serve:", err)
			exit = 1
		}
	}

	if err := h.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "reproserve: close:", err)
		exit = 1
	}
	for class := 0; class < server.NumClasses; class++ {
		lat := srv.Latency(class)
		if lat.Count() == 0 {
			continue
		}
		fmt.Printf("%-5s count=%d p50=%dns p99=%dns p999=%dns\n",
			server.ClassName(class), lat.Count(),
			lat.Quantile(0.5), lat.Quantile(0.99), lat.Quantile(0.999))
	}
	fmt.Println("drained clean")
	os.Exit(exit)
}

func capsString(c core.Caps) string { return c.String() }
