// Command perfgate compares a candidate benchmark run against a
// committed baseline (BENCH_*.json, internal/perf schema) and exits
// non-zero when a gated metric regressed. CI's bench lane runs it on
// every push; it is equally usable locally:
//
//	streambench -fig all -logn 16 -json new.json
//	go test -bench . -benchtime 100x -benchmem -run NONE ./... | tee bench.txt
//	perfgate -baseline BENCH_0.json -candidate new.json -gobench bench.txt
//
// Gating rules (see internal/perf):
//
//   - ns/op may grow at most -max-ns (fraction; default 0.25). Wall
//     clock is host-dependent, so this gate only applies when baseline
//     and candidate share a host fingerprint (GOOS/GOARCH/core count)
//     — pass -strict-ns to force it across hosts — and only to records
//     averaging at least -min-samples operations: one-shot figure
//     checkpoint windows jitter well past 25% run to run, so they stay
//     informational (their gate is the deterministic transfer count).
//   - allocs/op may grow at most -max-allocs (absolute; default 0: any
//     new steady-state allocation fails). Only records carrying
//     allocation data on both sides are gated — a baseline recorded by
//     streambench has none, so for cross-host CI use
//     -assert-zero-allocs instead: it fails any matching gobench
//     record of THIS run reporting allocs/op > 0, no baseline needed.
//     The repo's testing.AllocsPerRun tests independently pin the hot
//     paths to zero in the ordinary test lane.
//   - DAM transfers/op may grow at most -max-transfers (fraction;
//     default 0.01). Transfer counts are deterministic for a fixed
//     workload, so this gate bites on every host.
//
// Records present on only one side are listed but never fail the gate:
// lineups grow across PRs, and a missing baseline entry means "no
// expectation yet". Exit status: 0 clean, 1 regression, 2 usage error.
//
// Hypothesis verdicts (streambench -hypothesis -json) gate through
// -hypotheses, a comma-separated list of verdict files or globs: any
// falsified verdict fails the gate, exactly like a perf regression.
// With only -hypotheses given, -baseline is not required. -summary
// appends markdown delta and verdict tables to the named file (CI
// passes $GITHUB_STEP_SUMMARY).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"repro/internal/hypothesis"
	"repro/internal/perf"
)

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func main() {
	var (
		baseline  = flag.String("baseline", "", "committed baseline report (required)")
		candidate = flag.String("candidate", "", "candidate report to gate (e.g. from streambench -json)")
		gobench   = flag.String("gobench", "", "`go test -bench` output to parse and merge into the candidate")
		out       = flag.String("out", "", "write the merged candidate report here (workflow artifact)")
		maxNs     = flag.Float64("max-ns", 0.25, "allowed fractional ns/op growth; negative disables")
		maxAllocs = flag.Float64("max-allocs", 0, "allowed absolute allocs/op growth; negative disables")
		maxTrans  = flag.Float64("max-transfers", 0.01, "allowed fractional transfers/op growth; negative disables")
		minNs     = flag.Float64("min-ns", 50, "noise floor: ignore ns/op regressions when both sides are faster than this")
		minSamp   = flag.Int("min-samples", 50000, "gate ns/op only for records averaging at least this many operations")
		strictNs  = flag.Bool("strict-ns", false, "gate ns/op even when baseline and candidate hosts differ")
		zeroAlloc = flag.String("assert-zero-allocs", "", "fail if any candidate gobench record whose kind matches this `regexp` reports allocs/op > 0")
		hyps      = flag.String("hypotheses", "", "comma-separated hypothesis verdict files or globs (streambench -hypothesis -json); a falsified verdict fails the gate")
		summary   = flag.String("summary", "", "append markdown delta/verdict tables to this file (CI passes $GITHUB_STEP_SUMMARY)")
		verbose   = flag.Bool("v", false, "print all deltas, not just regressions")
	)
	flag.Parse()
	if *baseline == "" && *hyps == "" {
		fatalUsage("perfgate: -baseline is required (or -hypotheses alone)")
	}
	if *baseline != "" && *candidate == "" && *gobench == "" {
		fatalUsage("perfgate: need -candidate and/or -gobench with -baseline")
	}
	if *baseline == "" && (*candidate != "" || *gobench != "" || *zeroAlloc != "") {
		fatalUsage("perfgate: -candidate/-gobench/-assert-zero-allocs need -baseline")
	}

	verdicts := readVerdicts(*hyps)

	var summaryFile *os.File
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fatalUsage("perfgate: -summary: %v", err)
		}
		defer f.Close()
		summaryFile = f
	}

	failed := false
	if len(verdicts) > 0 {
		failed = reportVerdicts(os.Stdout, verdicts) || failed
		if summaryFile != nil {
			if err := hypothesis.WriteMarkdown(summaryFile, verdicts); err != nil {
				fatalUsage("perfgate: -summary: %v", err)
			}
		}
	}
	if *baseline == "" {
		if failed {
			fmt.Fprintln(os.Stderr, "perfgate: falsified hypothesis verdict(s)")
			os.Exit(1)
		}
		fmt.Println("perfgate: all hypotheses confirmed")
		return
	}

	base, err := perf.ReadFile(*baseline)
	if err != nil {
		fatalUsage("perfgate: baseline: %v", err)
	}

	var cand *perf.Report
	if *candidate != "" {
		cand, err = perf.ReadFile(*candidate)
		if err != nil {
			fatalUsage("perfgate: candidate: %v", err)
		}
	} else {
		cand = perf.NewReport("perfgate -gobench " + *gobench)
	}
	if *gobench != "" {
		f, err := os.Open(*gobench)
		if err != nil {
			fatalUsage("perfgate: %v", err)
		}
		recs, err := perf.ParseGoBench(f)
		f.Close()
		if err != nil {
			fatalUsage("perfgate: %v", err)
		}
		if len(recs) == 0 {
			fatalUsage("perfgate: %s contains no benchmark lines", *gobench)
		}
		cand.Add(recs...)
	}
	if *out != "" {
		if err := cand.WriteFile(*out); err != nil {
			fatalUsage("perfgate: -out: %v", err)
		}
	}

	th := perf.Thresholds{
		NsPerOp:        *maxNs,
		MinNsPerOp:     *minNs,
		MinSamples:     *minSamp,
		StrictNs:       *strictNs,
		AllocsPerOp:    *maxAllocs,
		TransfersPerOp: *maxTrans,
	}
	// The zero-alloc assertion is absolute — measured on this run, no
	// baseline needed — so it gates allocation regressions even when
	// the committed baseline was recorded on a different host and
	// carries no allocation data.
	if *zeroAlloc != "" {
		re, err := regexp.Compile(*zeroAlloc)
		if err != nil {
			fatalUsage("perfgate: -assert-zero-allocs: %v", err)
		}
		matched := 0
		for _, r := range cand.Results {
			if r.Op != "gobench" || !re.MatchString(r.Kind) || r.AllocsPerOp == nil {
				continue
			}
			matched++
			if *r.AllocsPerOp > 0 {
				fmt.Printf("%-60s %-14s %14s %14.4g %8s ZERO-ALLOC VIOLATION\n",
					r.Key(), "allocs/op", "0 (asserted)", *r.AllocsPerOp, "")
				failed = true
			}
		}
		if matched == 0 {
			// A regexp matching nothing means the gate silently rotted.
			fatalUsage("perfgate: -assert-zero-allocs %q matched no gobench records with allocation data", *zeroAlloc)
		}
	}

	c := perf.Compare(base, cand, th)
	c.Format(os.Stdout, *verbose)
	if summaryFile != nil {
		if err := c.Markdown(summaryFile, *verbose); err != nil {
			fatalUsage("perfgate: -summary: %v", err)
		}
	}
	if regs := c.Regressions(); len(regs) > 0 || failed {
		fmt.Fprintf(os.Stderr, "perfgate: %d regression(s) against %s\n", len(regs), *baseline)
		os.Exit(1)
	}
	fmt.Println("perfgate: no regressions")
}

// readVerdicts expands the -hypotheses list (comma-separated paths or
// globs) and loads every verdict. A token matching no file is a usage
// error: a glob that silently rots would wave falsifications through.
func readVerdicts(spec string) []hypothesis.Verdict {
	if spec == "" {
		return nil
	}
	var out []hypothesis.Verdict
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		paths, err := filepath.Glob(tok)
		if err != nil {
			fatalUsage("perfgate: -hypotheses %q: %v", tok, err)
		}
		if len(paths) == 0 {
			fatalUsage("perfgate: -hypotheses %q matched no files", tok)
		}
		for _, path := range paths {
			v, err := hypothesis.ReadVerdict(path)
			if err != nil {
				fatalUsage("perfgate: -hypotheses: %v", err)
			}
			out = append(out, v)
		}
	}
	if len(out) == 0 {
		fatalUsage("perfgate: -hypotheses %q named no verdict files", spec)
	}
	return out
}

// reportVerdicts prints each verdict and returns whether any gateable
// one falsified. An advisory verdict (a wall-clock bundle measured
// below its CPU floor) is printed either way but never fails the gate.
func reportVerdicts(w io.Writer, verdicts []hypothesis.Verdict) bool {
	failed := false
	for _, v := range verdicts {
		status := "CONFIRMED"
		if !v.Confirmed {
			status = "FALSIFIED"
			if !v.Advisory {
				failed = true
			}
		}
		if v.Advisory {
			status += "*"
		}
		fmt.Fprintf(w, "%-28s %-9s experiment %.3f (>= %.3f)  control %.3f (<= %.3f)\n",
			v.Name, status, v.Experiment.Observed, v.Prediction.MinRatio*(1-v.Prediction.Tolerance),
			v.Control.Observed, v.Prediction.ControlMax*(1+v.Prediction.Tolerance))
		for _, r := range v.Reasons {
			fmt.Fprintf(w, "    - %s\n", r)
		}
		if v.Advisory {
			fmt.Fprintf(w, "    * advisory: %s\n", v.AdvisoryReason)
		}
	}
	return failed
}
