package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// This file implements reprolint's -summary / -json reporting mode:
// run the go vet driver with JSON diagnostics, fold the per-package
// output into one findings list, scan the tree's //repro: directives
// so the report shows which invariants are waived where, and write a
// machine-readable summary plus a markdown table for
// $GITHUB_STEP_SUMMARY.
//
// Reason-less and stale waivers need no special casing here: both are
// reprodirective findings, so they appear in the findings list and
// fail the run like any other diagnostic.

// finding is one diagnostic from any analyzer in the suite.
type finding struct {
	Pos      string `json:"pos"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// waiver is one //repro:allow directive found in the tree.
type waiver struct {
	Pos      string `json:"pos"`
	Analyzer string `json:"analyzer"`
	Reason   string `json:"reason"`
}

// lintSummary is the machine-readable report -json writes.
type lintSummary struct {
	Pass       bool           `json:"pass"`
	Findings   []finding      `json:"findings"`
	Waivers    []waiver       `json:"waivers"`
	Directives map[string]int `json:"directives"` // //repro: verb -> count
}

// runWithSummary runs go vet -json under the hood, writes the
// requested reports, and returns the process exit code.
func runWithSummary(exe string, patterns []string, summaryPath, jsonPath string) int {
	findings, vetErr := runVetJSON(exe, patterns)
	waivers, directives, scanErr := scanDirectives(".")
	if scanErr != nil {
		fmt.Fprintln(os.Stderr, "reprolint: directive scan:", scanErr)
	}

	sum := lintSummary{
		Pass:       len(findings) == 0 && vetErr == nil,
		Findings:   findings,
		Waivers:    waivers,
		Directives: directives,
	}

	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if vetErr != nil && len(findings) == 0 {
		// Driver failure with no diagnostics: a build error, not lint
		// findings.
		fmt.Fprintln(os.Stderr, "reprolint:", vetErr)
	}

	if jsonPath != "" {
		if err := writeJSONSummary(jsonPath, sum); err != nil {
			fmt.Fprintln(os.Stderr, "reprolint: -json:", err)
			return 2
		}
	}
	if summaryPath != "" {
		if err := appendMarkdownSummary(summaryPath, sum); err != nil {
			fmt.Fprintln(os.Stderr, "reprolint: -summary:", err)
			return 2
		}
	}
	if !sum.Pass {
		return 1
	}
	return 0
}

// runVetJSON invokes go vet -json and parses the diagnostic objects it
// streams (one per package, on stderr, between "# pkg" comment lines).
func runVetJSON(exe string, patterns []string) ([]finding, error) {
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe, "-json"}, patterns...)...)
	var errBuf bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &errBuf
	vetErr := cmd.Run()
	findings, perr := parseVetJSON(&errBuf)
	if perr != nil && vetErr == nil {
		vetErr = perr
	}
	return findings, vetErr
}

// parseVetJSON decodes the concatenated JSON objects in the vet
// driver's output, skipping the "# package" comment lines. Each object
// maps package ID -> analyzer -> diagnostics.
func parseVetJSON(r io.Reader) ([]finding, error) {
	var jsonText bytes.Buffer
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		jsonText.WriteString(line)
		jsonText.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	type diag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var findings []finding
	dec := json.NewDecoder(&jsonText)
	for {
		var obj map[string]map[string][]diag
		if err := dec.Decode(&obj); err == io.EOF {
			break
		} else if err != nil {
			// Non-JSON driver output (a build error, a panic): surface it
			// verbatim rather than losing it.
			rest, _ := io.ReadAll(io.MultiReader(dec.Buffered(), &jsonText))
			return findings, fmt.Errorf("unparseable vet output: %s", strings.TrimSpace(string(rest)))
		}
		for _, byAnalyzer := range obj {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					findings = append(findings, finding{Pos: d.Posn, Analyzer: analyzer, Message: d.Message})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// scanDirectives walks the tree collecting //repro: directives: waiver
// details plus a count per verb. Files are parsed, and a directive is
// a comment whose text starts exactly with //repro: — the same rule
// the analyzers apply — so prose that merely mentions the syntax, and
// string literals inside the lint package itself, do not count.
// vendor (third-party), testdata (the linttest fixtures deliberately
// contain findings), and dot-dirs are skipped.
func scanDirectives(root string) ([]waiver, map[string]int, error) {
	waivers := []waiver{}
	directives := map[string]int{}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "vendor" || name == "testdata" || name == "bin" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, found := strings.CutPrefix(c.Text, "//repro:")
				if !found {
					continue
				}
				verb, args, _ := strings.Cut(rest, " ")
				directives[verb]++
				if verb == "allow" {
					name, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
					pos := fset.Position(c.Pos())
					waivers = append(waivers, waiver{
						Pos:      fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
						Analyzer: name,
						Reason:   strings.TrimSpace(reason),
					})
				}
			}
		}
		return nil
	})
	return waivers, directives, err
}

func writeJSONSummary(path string, sum lintSummary) error {
	data, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// appendMarkdownSummary appends the human-readable report (perfgate
// -summary's file conventions: append, create if absent).
func appendMarkdownSummary(path string, sum lintSummary) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()

	var b strings.Builder
	b.WriteString("### reprolint — invariant analyzers\n\n")
	if sum.Pass {
		fmt.Fprintf(&b, "**PASS** — no findings; %d waiver(s), all reasoned and live.\n\n", len(sum.Waivers))
	} else {
		fmt.Fprintf(&b, "**FAIL** — %d finding(s).\n\n", len(sum.Findings))
		b.WriteString("| position | analyzer | message |\n|---|---|---|\n")
		for _, fd := range sum.Findings {
			fmt.Fprintf(&b, "| `%s` | %s | %s |\n", fd.Pos, fd.Analyzer, mdEscape(fd.Message))
		}
		b.WriteString("\n")
	}

	if len(sum.Waivers) > 0 {
		b.WriteString("<details><summary>Waivers in force</summary>\n\n")
		b.WriteString("| position | analyzer | reason |\n|---|---|---|\n")
		for _, w := range sum.Waivers {
			fmt.Fprintf(&b, "| `%s` | %s | %s |\n", w.Pos, w.Analyzer, mdEscape(w.Reason))
		}
		b.WriteString("\n</details>\n\n")
	}

	if len(sum.Directives) > 0 {
		verbs := make([]string, 0, len(sum.Directives))
		for v := range sum.Directives {
			verbs = append(verbs, v)
		}
		sort.Strings(verbs)
		parts := make([]string, 0, len(verbs))
		for _, v := range verbs {
			parts = append(parts, fmt.Sprintf("%s %d", v, sum.Directives[v]))
		}
		fmt.Fprintf(&b, "Directive coverage: %s.\n", strings.Join(parts, " · "))
	}

	_, err = io.WriteString(f, b.String())
	return err
}

// mdEscape keeps analyzer messages from breaking the table layout.
func mdEscape(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}
