// Command reprolint runs the repo's invariant analyzers (package
// repro/internal/lint: damcharge, chargeamount, rlockpure,
// bracketbalance, bracketflow, scratchescape, durerr, reprodirective)
// together with the full standard vet battery — a superset of the
// abbreviated subset `go test` runs by default.
//
// It speaks the `go vet -vettool` unitchecker protocol, so the usual
// invocation is simply
//
//	go build -o bin/reprolint ./cmd/reprolint
//	go vet -vettool=bin/reprolint ./...
//
// and as a convenience, invoking it with package patterns re-execs
// itself through go vet:
//
//	bin/reprolint ./...
//
// With -summary and/or -json, the re-exec mode additionally runs the
// driver with JSON diagnostics, scans the tree's //repro: directives,
// and emits a findings/waivers report: -json writes a machine-readable
// summary, -summary appends a markdown table (CI passes
// $GITHUB_STEP_SUMMARY, mirroring perfgate -summary):
//
//	bin/reprolint -summary "$GITHUB_STEP_SUMMARY" -json lint-summary.json ./...
//
// The nilness and unusedwrite passes are intentionally absent: they
// need golang.org/x/tools/go/ssa, which the vendored (GOROOT-sourced)
// x/tools subset does not carry. See DESIGN.md "Machine-checked
// invariants".
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/appends"
	"golang.org/x/tools/go/analysis/passes/asmdecl"
	"golang.org/x/tools/go/analysis/passes/assign"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/buildtag"
	"golang.org/x/tools/go/analysis/passes/composite"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/defers"
	"golang.org/x/tools/go/analysis/passes/directive"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/framepointer"
	"golang.org/x/tools/go/analysis/passes/httpresponse"
	"golang.org/x/tools/go/analysis/passes/ifaceassert"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/printf"
	"golang.org/x/tools/go/analysis/passes/shift"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/slog"
	"golang.org/x/tools/go/analysis/passes/stdmethods"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/structtag"
	"golang.org/x/tools/go/analysis/passes/testinggoroutine"
	"golang.org/x/tools/go/analysis/passes/tests"
	"golang.org/x/tools/go/analysis/passes/timeformat"
	"golang.org/x/tools/go/analysis/passes/unmarshal"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unsafeptr"
	"golang.org/x/tools/go/analysis/passes/unusedresult"
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

// vetPasses is the standard vet battery (minus cgocall, which is
// irrelevant to a pure-Go tree, and minus the go/ssa-based nilness and
// unusedwrite — see the package comment).
func vetPasses() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		appends.Analyzer,
		asmdecl.Analyzer,
		assign.Analyzer,
		atomic.Analyzer,
		bools.Analyzer,
		buildtag.Analyzer,
		composite.Analyzer,
		copylock.Analyzer,
		defers.Analyzer,
		directive.Analyzer,
		errorsas.Analyzer,
		framepointer.Analyzer,
		httpresponse.Analyzer,
		ifaceassert.Analyzer,
		loopclosure.Analyzer,
		lostcancel.Analyzer,
		nilfunc.Analyzer,
		printf.Analyzer,
		shift.Analyzer,
		sigchanyzer.Analyzer,
		slog.Analyzer,
		stdmethods.Analyzer,
		stringintconv.Analyzer,
		structtag.Analyzer,
		testinggoroutine.Analyzer,
		tests.Analyzer,
		timeformat.Analyzer,
		unmarshal.Analyzer,
		unreachable.Analyzer,
		unsafeptr.Analyzer,
		unusedresult.Analyzer,
	}
}

func main() {
	// The go vet driver probes with -V=full and -flags, then hands the
	// tool one JSON .cfg per package (possibly preceded by analyzer
	// flags such as -json); anything else is a human typing package
	// patterns.
	if len(os.Args) >= 2 {
		first, last := os.Args[1], os.Args[len(os.Args)-1]
		if strings.HasPrefix(first, "-V") || first == "-flags" || strings.HasSuffix(last, ".cfg") {
			unitchecker.Main(append(lint.Suite(), vetPasses()...)...) // does not return
		}
	}

	fs := flag.NewFlagSet("reprolint", flag.ExitOnError)
	summary := fs.String("summary", "", "append a markdown findings/waivers table to this file (CI passes $GITHUB_STEP_SUMMARY)")
	jsonOut := fs.String("json", "", "write a machine-readable findings/waivers summary to this file")
	fs.Parse(os.Args[1:])
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}

	if *summary != "" || *jsonOut != "" {
		os.Exit(runWithSummary(exe, patterns, *summary, *jsonOut))
	}

	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
}
