// Command reprolint runs the repo's invariant analyzers (package
// repro/internal/lint: damcharge, rlockpure, bracketbalance,
// scratchalias, durerr, reprodirective) together with the full
// standard vet battery — a superset of the abbreviated subset `go
// test` runs by default.
//
// It speaks the `go vet -vettool` unitchecker protocol, so the usual
// invocation is simply
//
//	go build -o bin/reprolint ./cmd/reprolint
//	go vet -vettool=bin/reprolint ./...
//
// and as a convenience, invoking it with package patterns re-execs
// itself through go vet:
//
//	bin/reprolint ./...
//
// The nilness and unusedwrite passes are intentionally absent: they
// need golang.org/x/tools/go/ssa, which the vendored (GOROOT-sourced)
// x/tools subset does not carry. See DESIGN.md "Machine-checked
// invariants".
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/appends"
	"golang.org/x/tools/go/analysis/passes/asmdecl"
	"golang.org/x/tools/go/analysis/passes/assign"
	"golang.org/x/tools/go/analysis/passes/atomic"
	"golang.org/x/tools/go/analysis/passes/bools"
	"golang.org/x/tools/go/analysis/passes/buildtag"
	"golang.org/x/tools/go/analysis/passes/composite"
	"golang.org/x/tools/go/analysis/passes/copylock"
	"golang.org/x/tools/go/analysis/passes/defers"
	"golang.org/x/tools/go/analysis/passes/directive"
	"golang.org/x/tools/go/analysis/passes/errorsas"
	"golang.org/x/tools/go/analysis/passes/framepointer"
	"golang.org/x/tools/go/analysis/passes/httpresponse"
	"golang.org/x/tools/go/analysis/passes/ifaceassert"
	"golang.org/x/tools/go/analysis/passes/loopclosure"
	"golang.org/x/tools/go/analysis/passes/lostcancel"
	"golang.org/x/tools/go/analysis/passes/nilfunc"
	"golang.org/x/tools/go/analysis/passes/printf"
	"golang.org/x/tools/go/analysis/passes/shift"
	"golang.org/x/tools/go/analysis/passes/sigchanyzer"
	"golang.org/x/tools/go/analysis/passes/slog"
	"golang.org/x/tools/go/analysis/passes/stdmethods"
	"golang.org/x/tools/go/analysis/passes/stringintconv"
	"golang.org/x/tools/go/analysis/passes/structtag"
	"golang.org/x/tools/go/analysis/passes/testinggoroutine"
	"golang.org/x/tools/go/analysis/passes/tests"
	"golang.org/x/tools/go/analysis/passes/timeformat"
	"golang.org/x/tools/go/analysis/passes/unmarshal"
	"golang.org/x/tools/go/analysis/passes/unreachable"
	"golang.org/x/tools/go/analysis/passes/unsafeptr"
	"golang.org/x/tools/go/analysis/passes/unusedresult"
	"golang.org/x/tools/go/analysis/unitchecker"

	"repro/internal/lint"
)

// vetPasses is the standard vet battery (minus cgocall, which is
// irrelevant to a pure-Go tree, and minus the go/ssa-based nilness and
// unusedwrite — see the package comment).
func vetPasses() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		appends.Analyzer,
		asmdecl.Analyzer,
		assign.Analyzer,
		atomic.Analyzer,
		bools.Analyzer,
		buildtag.Analyzer,
		composite.Analyzer,
		copylock.Analyzer,
		defers.Analyzer,
		directive.Analyzer,
		errorsas.Analyzer,
		framepointer.Analyzer,
		httpresponse.Analyzer,
		ifaceassert.Analyzer,
		loopclosure.Analyzer,
		lostcancel.Analyzer,
		nilfunc.Analyzer,
		printf.Analyzer,
		shift.Analyzer,
		sigchanyzer.Analyzer,
		slog.Analyzer,
		stdmethods.Analyzer,
		stringintconv.Analyzer,
		structtag.Analyzer,
		testinggoroutine.Analyzer,
		tests.Analyzer,
		timeformat.Analyzer,
		unmarshal.Analyzer,
		unreachable.Analyzer,
		unsafeptr.Analyzer,
		unusedresult.Analyzer,
	}
}

func main() {
	// The go vet driver probes with -V=full and -flags, then hands the
	// tool one JSON .cfg per package; anything else is a human typing
	// package patterns.
	if len(os.Args) >= 2 {
		arg := os.Args[1]
		if strings.HasPrefix(arg, "-V") || arg == "-flags" || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(append(lint.Suite(), vetPasses()...)...) // does not return
		}
	}
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, patterns...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintln(os.Stderr, "reprolint:", err)
		os.Exit(2)
	}
}
