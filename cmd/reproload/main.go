// Command reproload drives a reproserve instance with a workload
// scenario over real TCP connections and reports client-observed
// latency (P50/P99/P999 per op class) and aggregate throughput.
//
// The scenario grammar is internal/workload's skew+arrival+mix spec
// ("uniform+steady+95r5w", "zipf1.2+bursty+100r", ...), the same grid
// streambench -fig scenarios sweeps in-process — here it runs over the
// wire, with -conns concurrent connections, an optional -pipeline
// window, open-loop arrival via -rate, and connection churn via
// -churn-every. -json writes the run as schema-1 perf records.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/loadgen"
	"repro/internal/perf"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7070", "server address")
		scenario   = flag.String("scenario", "uniform+steady+95r5w", "workload scenario spec (skew+arrival+mix)")
		conns      = flag.Int("conns", 4, "concurrent connections")
		ops        = flag.Int("ops", 100000, "total operations across all connections")
		pipeline   = flag.Int("pipeline", 1, "per-connection in-flight request window")
		rate       = flag.Float64("rate", 0, "aggregate ops/sec for open-loop arrival (0 = closed loop)")
		churnEvery = flag.Int("churn-every", 0, "reconnect each connection after this many ops (0 = never)")
		preload    = flag.Int("preload", 0, "sequential keys to batch-insert before the measured phase")
		logn       = flag.Int("logn", 20, "log2 of the key space")
		seed       = flag.Uint64("seed", 42, "workload seed")
		timeout    = flag.Duration("timeout", 30*time.Second, "dial timeout")
		jsonPath   = flag.String("json", "", "write the run as perf records (internal/perf schema) to this file")
	)
	flag.Parse()

	sc, err := workload.Parse(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproload:", err)
		os.Exit(2)
	}
	sc.KeySpace = uint64(1) << uint(*logn)
	sc.Seed = *seed

	cfg := loadgen.Config{
		Addr:       *addr,
		Scenario:   sc,
		Conns:      *conns,
		Ops:        *ops,
		Pipeline:   *pipeline,
		RatePerSec: *rate,
		ChurnEvery: *churnEvery,
		Preload:    *preload,
		Timeout:    *timeout,
	}
	sum, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reproload:", err)
		os.Exit(1)
	}

	mode := "closed loop"
	if *rate > 0 {
		mode = fmt.Sprintf("open loop %.0f ops/s target", *rate)
	}
	fmt.Printf("scenario %s  conns=%d pipeline=%d %s\n", sc.Name(), sum.Conns, cfg.Pipeline, mode)
	fmt.Printf("ops=%d errors=%d elapsed=%s throughput=%.0f ops/s\n",
		sum.Ops, sum.Errors, sum.Elapsed.Round(time.Millisecond), sum.OpsPerSec())
	for class := 0; class < server.NumClasses; class++ {
		h := &sum.Lat[class]
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("%-5s count=%-8d p50=%s p99=%s p999=%s\n",
			server.ClassName(class), h.Count(),
			time.Duration(h.Quantile(0.5)), time.Duration(h.Quantile(0.99)), time.Duration(h.Quantile(0.999)))
	}

	if *jsonPath != "" {
		rep := perf.NewReport(fmt.Sprintf(
			"reproload -scenario %s -conns %d -ops %d -pipeline %d -rate %g -logn %d -seed %d",
			sc.Name(), *conns, *ops, *pipeline, *rate, *logn, *seed))
		rep.Add(loadgen.PerfRecords(cfg, sum, *logn)...)
		tmp := *jsonPath + ".tmp"
		if err := rep.WriteFile(tmp); err != nil {
			fmt.Fprintln(os.Stderr, "reproload: -json:", err)
			os.Exit(1)
		}
		if err := os.Rename(tmp, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "reproload: -json:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote perf records to %s\n", *jsonPath)
	}
}
