package repro

// The durability surface: save any snapshot-capable dictionary as a
// self-describing container, load one back without knowing what was
// saved, and open crash-recoverable WAL-backed dictionaries.
//
//	// Persist a warm structure and restore it later.
//	err := repro.SaveFile("index.snap", "gcola", d, repro.WithGrowthFactor(4))
//	d2, err := repro.LoadFile("index.snap")
//
//	// A dictionary that survives crashes: every batch is write-ahead
//	// logged before it is applied, a checkpoint runs every 1024
//	// batches, and reopening the same path recovers everything that
//	// was acknowledged.
//	d, err := repro.Open("index.wal",
//	    repro.WithInner("btree"), repro.WithCheckpointEvery(1024))
//	defer d.Close()
//
// Container and record formats are documented in DESIGN.md; KindCaps
// reports which kinds can snapshot themselves.

import (
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/registry"
)

// Snapshotter is the persistence capability: WriteTo emits the
// structure's payload, ReadFrom restores it into an empty structure
// built with the same options. Save/Load wrap these payloads in a
// checksummed container that also records the kind and options.
type Snapshotter = core.Snapshotter

// Typed decode failures, matched with errors.Is against anything the
// persistence stack returns.
var (
	// ErrBadMagic: the stream is not a snapshot (or reached the wrong
	// structure).
	ErrBadMagic = core.ErrBadMagic
	// ErrBadVersion: written by a format (or option lineup) newer than
	// this build.
	ErrBadVersion = core.ErrBadVersion
	// ErrCorrupt: truncated or checksum-inconsistent data.
	ErrCorrupt = core.ErrCorrupt
)

// Save writes d as one self-describing snapshot container: a header
// recording kind and options (so Load can rebuild without being told),
// then the structure's own payload, both CRC32-checked. kind and opts
// must be what d was built with — Save validates them against the
// registry and d's concrete type, and rejects kinds without the
// snapshot capability (see KindCaps). WithSpace is not recorded;
// re-attach accounting via Load's options.
func Save(w io.Writer, kind string, d Dictionary, opts ...Option) error {
	return registry.Save(w, kind, d, opts...)
}

// Load reads one Save container and returns the rebuilt, restored
// dictionary. Extra options apply after the recorded ones —
// WithSpace(store.Space("x")) re-attaches DAM accounting that Save
// deliberately dropped. Corruption anywhere fails with a typed error
// before any structure decoder runs.
func Load(r io.Reader, extra ...Option) (Dictionary, error) {
	return registry.Load(r, extra...)
}

// SaveFile is Save to a file, written crash-safely (temp sibling,
// fsync, rename, directory fsync — the same protocol durable
// checkpoints use), so an interrupted save never clobbers an existing
// snapshot.
func SaveFile(path, kind string, d Dictionary, opts ...Option) error {
	if err := durable.WriteCheckpointFile(path, func(w io.Writer) error {
		return Save(w, kind, d, opts...)
	}); err != nil {
		return fmt.Errorf("repro: SaveFile: %w", err)
	}
	return nil
}

// LoadFile is Load from a file.
func LoadFile(path string, extra ...Option) (Dictionary, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("repro: LoadFile: %w", err)
	}
	defer f.Close() //repro:allow durerr read-only handle; Close cannot lose acknowledged writes
	return Load(f, extra...)
}

// DurableDictionary is the WAL-backed wrapper behind Build("durable")
// and Open: mutations are logged (batches as single records) before
// they apply, Checkpoint captures a snapshot and empties the log, and
// reopening the same path recovers every acknowledged write. See the
// package docs of internal/durable for the exact guarantees.
type DurableDictionary = durable.Dict

// Open builds (or reopens) a durable dictionary whose write-ahead log
// lives at path and whose checkpoints live at path + ".ckpt":
//
//	d, err := repro.Open("users.wal", repro.WithInner("gcola",
//	    repro.WithGrowthFactor(4)), repro.WithCheckpointEvery(1024))
//
// On reopen an existing checkpoint's recorded kind wins (WithInner may
// be omitted); the log tail then replays on top. It is
// Build("durable", WithWALPath(path), opts...) with the concrete return
// type, so Checkpoint/Sync/Close are in reach.
func Open(path string, opts ...Option) (*DurableDictionary, error) {
	d, err := Build("durable", append([]Option{WithWALPath(path)}, opts...)...)
	if err != nil {
		return nil, err
	}
	return d.(*DurableDictionary), nil
}
