package repro

// API-level durability tests: the Save/Load/Open surface, checkpoint
// behaviour, crash-shaped WAL damage, and the error taxonomy. The
// format-level corpus lives with the codecs (internal/snap,
// internal/wal, internal/cola).

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.snap")
	d := MustBuild("btree")
	for i := uint64(0); i < 2000; i++ {
		d.Insert(i, i*i)
	}
	if err := SaveFile(path, "btree", d); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	d2, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("Len = %d, want %d", d2.Len(), d.Len())
	}
	if v, ok := d2.Search(1234); !ok || v != 1234*1234 {
		t.Fatalf("Search(1234) = %d,%v", v, ok)
	}
	if _, ok := d2.(*BTree); !ok {
		t.Fatalf("LoadFile built %T, want *BTree", d2)
	}
}

func TestSaveFileNeverClobbersOnFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.snap")
	d := MustBuild("gcola", WithGrowthFactor(4))
	d.Insert(1, 1)
	if err := SaveFile(path, "gcola", d, WithGrowthFactor(4)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A save that fails validation (wrong kind for the dictionary) must
	// leave the existing file byte-identical.
	if err := SaveFile(path, "btree", d); err == nil {
		t.Fatal("SaveFile accepted a mismatched kind")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed SaveFile clobbered the existing snapshot")
	}
}

func TestSaveErrorTaxonomy(t *testing.T) {
	d := MustBuild("cola")
	var buf bytes.Buffer
	if err := Save(&buf, "no-such-kind", d); err == nil || !strings.Contains(err.Error(), "unknown dictionary kind") {
		t.Fatalf("unknown kind: %v", err)
	}
	durableDict, err := Open(filepath.Join(t.TempDir(), "x.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer durableDict.Close()
	if err := Save(&buf, "durable", durableDict); err == nil || !strings.Contains(err.Error(), "does not support snapshots") {
		t.Fatalf("durable save: %v", err)
	}
	if err := Save(&buf, "btree", d); err == nil || !strings.Contains(err.Error(), "pass the kind it was built as") {
		t.Fatalf("type mismatch: %v", err)
	}
	// A sharded map over a factory cannot be described by name.
	fd := MustBuild("sharded", WithShards(2), WithDictionary(func(int, *Space) Dictionary {
		return MustBuild("cola")
	}))
	if err := Save(&buf, "sharded", fd, WithShards(2), WithDictionary(func(int, *Space) Dictionary {
		return MustBuild("cola")
	})); err == nil || !strings.Contains(err.Error(), "WithDictionary") {
		t.Fatalf("factory save: %v", err)
	}
}

func TestLoadErrorTaxonomy(t *testing.T) {
	if _, err := Load(strings.NewReader("not a container")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage: %v", err)
	}
	d := MustBuild("cola")
	d.Insert(1, 1)
	var buf bytes.Buffer
	if err := Save(&buf, "cola", d); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 5, len(data) / 2, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: %v", cut, err)
		}
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-7] ^= 0x10
	if _, err := Load(bytes.NewReader(flipped)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: %v", err)
	}
}

// TestLoadRejectsUnknownRecordedOption treats a header naming an option
// this build does not know as a version problem, not silent data loss.
func TestLoadRejectsUnknownRecordedOption(t *testing.T) {
	// Craft the container via a registered custom kind name: simpler to
	// corrupt a real header's option name in place.
	d := MustBuild("gcola", WithGrowthFactor(4))
	d.Insert(1, 1)
	var buf bytes.Buffer
	if err := Save(&buf, "gcola", d, WithGrowthFactor(4)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	i := bytes.Index(data, []byte("WithGrowthFactor"))
	if i < 0 {
		t.Fatal("header does not contain the option name")
	}
	copy(data[i:], "WithFutureOption")
	// The header CRC now mismatches, which is fine for this test as long
	// as SOME typed error comes back; recompute is overkill. Corrupt is
	// acceptable, silent success is not.
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("Load accepted a header with an unknown option name")
	}
}

func TestOpenRecoversAcknowledgedState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.wal")
	d, err := Open(path, WithInner("gcola", WithGrowthFactor(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		d.Insert(i, i+1)
	}
	batch := make([]Element, 200)
	for i := range batch {
		batch[i] = Element{Key: uint64(1000 + i), Value: uint64(i)}
	}
	d.InsertBatch(batch)
	d.Delete(7)
	if d.Records() != 302 {
		t.Fatalf("Records = %d, want 302 (300 inserts + 1 batch + 1 delete)", d.Records())
	}
	// No Close, no checkpoint: simulate a crash by just reopening the
	// files (the OS page cache stands in for the disk either way).
	d.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 499 {
		t.Fatalf("recovered Len = %d, want 499", r.Len())
	}
	if _, ok := r.Search(7); ok {
		t.Fatal("deleted key recovered")
	}
	if v, ok := r.Search(1100); !ok || v != 100 {
		t.Fatalf("batch element: Search(1100) = %d,%v", v, ok)
	}
	// The recovered inner must really be the recorded gcola config —
	// growth 4 was in the WAL-fresh build path, not a checkpoint.
	if g, ok := r.Unwrap().(*COLA); !ok || g.Growth() != 4 {
		t.Fatalf("recovered inner %T growth mismatch", r.Unwrap())
	}
}

func TestCheckpointTruncatesAndReopensFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.wal")
	d, err := Open(path, WithInner("btree"))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		d.Insert(i, i)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if d.Records() != 0 {
		t.Fatalf("Records after checkpoint = %d", d.Records())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL not truncated: %v bytes (%v)", fi.Size(), err)
	}
	if _, err := os.Stat(path + ".ckpt"); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	// Tail after the checkpoint.
	d.Insert(9000, 1)
	d.Close()

	// Reopen without WithInner: the checkpoint header says what to build.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 501 {
		t.Fatalf("recovered Len = %d, want 501", r.Len())
	}
	if _, ok := r.Unwrap().(*BTree); !ok {
		t.Fatalf("checkpoint rebuilt %T, want *BTree", r.Unwrap())
	}
	if v, ok := r.Search(9000); !ok || v != 1 {
		t.Fatal("post-checkpoint tail lost")
	}
}

func TestAutomaticCheckpointing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	d, err := Open(path, WithCheckpointEvery(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 25; i++ {
		d.Insert(i, i)
	}
	// 25 records with a period of 10: two automatic checkpoints, 5 tail
	// records.
	if d.Records() != 5 {
		t.Fatalf("Records = %d, want 5", d.Records())
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	d.Close()
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 25 {
		t.Fatalf("recovered Len = %d", r.Len())
	}
}

// TestOpenSurvivesTornTail drops garbage at the end of the WAL (a crash
// mid-append) and expects recovery of exactly the intact prefix.
func TestOpenSurvivesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		d.Insert(i, i)
	}
	d.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x15, 0x00, 0x00, 0x00, 0xDE, 0xAD}) // torn record
	f.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != 100 {
		t.Fatalf("recovered Len = %d, want 100", r.Len())
	}
}

func TestOpenConfigMismatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.wal")
	d, err := Open(path, WithInner("btree"))
	if err != nil {
		t.Fatal(err)
	}
	d.Insert(1, 1)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := Open(path, WithInner("gcola")); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("inner-kind conflict with checkpoint: %v", err)
	}
	if _, err := Open(filepath.Join(dir, "x.wal"), WithInner("durable")); err == nil {
		t.Fatal("durable-in-durable accepted")
	}
	if _, err := Build("durable"); err == nil || !strings.Contains(err.Error(), "WithWALPath") {
		t.Fatalf("missing WAL path: %v", err)
	}
	if _, err := Open(filepath.Join(dir, "y.wal"), WithInner("gcola", WithSpace(nil))); err == nil {
		t.Fatal("inner WithSpace accepted on a durable inner")
	}
}

// TestDurableConcurrentUse exercises the wrapper's own lock under the
// race detector.
func TestDurableConcurrentUse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	d, err := Open(path, WithInner("sharded", WithShards(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < 400; i++ {
			d.Insert(i, i)
		}
	}()
	for i := uint64(0); i < 400; i++ {
		d.Search(i)
		if i%100 == 0 {
			d.Len()
		}
	}
	<-done
	if d.Len() != 400 {
		t.Fatalf("Len = %d", d.Len())
	}
}
