package repro

// API-level durability tests: the Save/Load/Open surface, checkpoint
// behaviour, crash-shaped WAL damage, and the error taxonomy. The
// format-level corpus lives with the codecs (internal/snap,
// internal/wal, internal/cola).

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.snap")
	d := MustBuild("btree")
	for i := uint64(0); i < 2000; i++ {
		d.Insert(i, i*i)
	}
	if err := SaveFile(path, "btree", d); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	d2, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if d2.Len() != d.Len() {
		t.Fatalf("Len = %d, want %d", d2.Len(), d.Len())
	}
	if v, ok := d2.Search(1234); !ok || v != 1234*1234 {
		t.Fatalf("Search(1234) = %d,%v", v, ok)
	}
	if _, ok := d2.(*BTree); !ok {
		t.Fatalf("LoadFile built %T, want *BTree", d2)
	}
}

func TestSaveFileNeverClobbersOnFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.snap")
	d := MustBuild("gcola", WithGrowthFactor(4))
	d.Insert(1, 1)
	if err := SaveFile(path, "gcola", d, WithGrowthFactor(4)); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A save that fails validation (wrong kind for the dictionary) must
	// leave the existing file byte-identical.
	if err := SaveFile(path, "btree", d); err == nil {
		t.Fatal("SaveFile accepted a mismatched kind")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed SaveFile clobbered the existing snapshot")
	}
}

func TestSaveErrorTaxonomy(t *testing.T) {
	d := MustBuild("cola")
	var buf bytes.Buffer
	if err := Save(&buf, "no-such-kind", d); err == nil || !strings.Contains(err.Error(), "unknown dictionary kind") {
		t.Fatalf("unknown kind: %v", err)
	}
	durableDict, err := Open(filepath.Join(t.TempDir(), "x.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, durableDict)
	if err := Save(&buf, "durable", durableDict); err == nil || !strings.Contains(err.Error(), "does not support snapshots") {
		t.Fatalf("durable save: %v", err)
	}
	if err := Save(&buf, "btree", d); err == nil || !strings.Contains(err.Error(), "pass the kind it was built as") {
		t.Fatalf("type mismatch: %v", err)
	}
	// Wrapper kinds need the inner layers checked too: the top-level
	// concrete type of a sharded map is *shard.Map whatever its shards
	// hold, so a forgotten (or wrong) WithInner must fail here rather
	// than record a header that contradicts the payload.
	sd := MustBuild("sharded", WithShards(4), WithInner("btree"))
	sd.Insert(1, 1)
	if err := Save(&buf, "sharded", sd, WithShards(4)); err == nil || !strings.Contains(err.Error(), "WithInner") {
		t.Fatalf("forgotten WithInner: %v", err)
	}
	if err := Save(&buf, "sharded", sd, WithShards(4), WithInner("shuttle")); err == nil || !strings.Contains(err.Error(), "WithInner") {
		t.Fatalf("wrong WithInner: %v", err)
	}
	buf.Reset()
	if err := Save(&buf, "sharded", sd, WithShards(4), WithInner("btree")); err != nil {
		t.Fatalf("correct WithInner: %v", err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("round-trip after inner check: %v", err)
	}
	buf.Reset()
	// Same through a second wrapper layer.
	yd := MustBuild("synchronized", WithInner("sharded", WithShards(2), WithInner("btree")))
	if err := Save(&buf, "synchronized", yd, WithInner("sharded", WithShards(2), WithInner("gcola"))); err == nil || !strings.Contains(err.Error(), "WithInner") {
		t.Fatalf("nested wrong WithInner: %v", err)
	}
	buf.Reset()
	// A nested sharded map saved without its WithShards must record the
	// LIVE partition count, not this host's GOMAXPROCS-derived default —
	// the count is part of the payload's hash routing, so anything else
	// writes a container that can never load.
	yd.Insert(42, 7)
	if err := Save(&buf, "synchronized", yd, WithInner("sharded", WithInner("btree"))); err != nil {
		t.Fatalf("nested save without WithShards: %v", err)
	}
	if ld, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("loading nested default-shards container: %v", err)
	} else if v, ok := ld.Search(42); !ok || v != 7 {
		t.Fatal("nested round-trip contents wrong")
	}
	buf.Reset()
	// An explicitly claimed count that contradicts the live map is a
	// mislabeled save and fails here, at any wrapper depth.
	if err := Save(&buf, "sharded", sd, WithShards(8), WithInner("btree")); err == nil || !strings.Contains(err.Error(), "partitions") {
		t.Fatalf("wrong top-level WithShards: %v", err)
	}
	if err := Save(&buf, "synchronized", yd, WithInner("sharded", WithShards(8), WithInner("btree"))); err == nil || !strings.Contains(err.Error(), "partitions") {
		t.Fatalf("wrong nested WithShards: %v", err)
	}
	buf.Reset()
	// A sharded map over a factory cannot be described by name.
	fd := MustBuild("sharded", WithShards(2), WithDictionary(func(int, *Space) Dictionary {
		return MustBuild("cola")
	}))
	if err := Save(&buf, "sharded", fd, WithShards(2), WithDictionary(func(int, *Space) Dictionary {
		return MustBuild("cola")
	})); err == nil || !strings.Contains(err.Error(), "WithDictionary") {
		t.Fatalf("factory save: %v", err)
	}
}

func TestLoadErrorTaxonomy(t *testing.T) {
	if _, err := Load(strings.NewReader("not a container")); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("garbage: %v", err)
	}
	d := MustBuild("cola")
	d.Insert(1, 1)
	var buf bytes.Buffer
	if err := Save(&buf, "cola", d); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncated to nothing there is no magic prefix left, so the stream
	// reads as "not a container" rather than a damaged one.
	if _, err := Load(bytes.NewReader(data[:0])); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("truncated to empty: %v", err)
	}
	for _, cut := range []int{5, len(data) / 2, len(data) - 1} {
		if _, err := Load(bytes.NewReader(data[:cut])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated at %d: %v", cut, err)
		}
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-7] ^= 0x10
	if _, err := Load(bytes.NewReader(flipped)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit flip: %v", err)
	}
}

// TestLoadRejectsUnknownRecordedOption treats a header naming an option
// this build does not know as a version problem, not silent data loss.
func TestLoadRejectsUnknownRecordedOption(t *testing.T) {
	// Craft the container via a registered custom kind name: simpler to
	// corrupt a real header's option name in place.
	d := MustBuild("gcola", WithGrowthFactor(4))
	d.Insert(1, 1)
	var buf bytes.Buffer
	if err := Save(&buf, "gcola", d, WithGrowthFactor(4)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	i := bytes.Index(data, []byte("WithGrowthFactor"))
	if i < 0 {
		t.Fatal("header does not contain the option name")
	}
	copy(data[i:], "WithFutureOption")
	// The header CRC now mismatches, which is fine for this test as long
	// as SOME typed error comes back; recompute is overkill. Corrupt is
	// acceptable, silent success is not.
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("Load accepted a header with an unknown option name")
	}
}

func TestOpenRecoversAcknowledgedState(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.wal")
	d, err := Open(path, WithInner("gcola", WithGrowthFactor(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		d.Insert(i, i+1)
	}
	batch := make([]Element, 200)
	for i := range batch {
		batch[i] = Element{Key: uint64(1000 + i), Value: uint64(i)}
	}
	d.InsertBatch(batch)
	d.Delete(7)
	if d.Records() != 302 {
		t.Fatalf("Records = %d, want 302 (300 inserts + 1 batch + 1 delete)", d.Records())
	}
	// No Close, no checkpoint: simulate a crash by just reopening the
	// files (the OS page cache stands in for the disk either way).
	mustClose(t, d)

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, r)
	if r.Len() != 499 {
		t.Fatalf("recovered Len = %d, want 499", r.Len())
	}
	if _, ok := r.Search(7); ok {
		t.Fatal("deleted key recovered")
	}
	if v, ok := r.Search(1100); !ok || v != 100 {
		t.Fatalf("batch element: Search(1100) = %d,%v", v, ok)
	}
	// The recovered inner must really be the recorded gcola config —
	// growth 4 was in the WAL-fresh build path, not a checkpoint.
	if g, ok := r.Unwrap().(*COLA); !ok || g.Growth() != 4 {
		t.Fatalf("recovered inner %T growth mismatch", r.Unwrap())
	}
}

func TestCheckpointTruncatesAndReopensFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.wal")
	d, err := Open(path, WithInner("btree"))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		d.Insert(i, i)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if d.Records() != 0 {
		t.Fatalf("Records after checkpoint = %d", d.Records())
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("WAL not truncated: %v bytes (%v)", fi.Size(), err)
	}
	if _, err := os.Stat(path + ".ckpt"); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}
	// Tail after the checkpoint.
	d.Insert(9000, 1)
	mustClose(t, d)

	// Reopen without WithInner: the checkpoint header says what to build.
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, r)
	if r.Len() != 501 {
		t.Fatalf("recovered Len = %d, want 501", r.Len())
	}
	if _, ok := r.Unwrap().(*BTree); !ok {
		t.Fatalf("checkpoint rebuilt %T, want *BTree", r.Unwrap())
	}
	if v, ok := r.Search(9000); !ok || v != 1 {
		t.Fatal("post-checkpoint tail lost")
	}
}

func TestAutomaticCheckpointing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	d, err := Open(path, WithCheckpointEvery(10))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 25; i++ {
		d.Insert(i, i)
	}
	// 25 records with a period of 10: two automatic checkpoints, 5 tail
	// records.
	if d.Records() != 5 {
		t.Fatalf("Records = %d, want 5", d.Records())
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	mustClose(t, d)
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, r)
	if r.Len() != 25 {
		t.Fatalf("recovered Len = %d", r.Len())
	}
}

// TestOpenSurvivesTornTail drops garbage at the end of the WAL (a crash
// mid-append) and expects recovery of exactly the intact prefix.
func TestOpenSurvivesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	d, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		d.Insert(i, i)
	}
	mustClose(t, d)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x15, 0x00, 0x00, 0x00, 0xDE, 0xAD}); err != nil {
		t.Fatal(err) // the torn record is the point of the test setup
	}
	mustClose(t, f)

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, r)
	if r.Len() != 100 {
		t.Fatalf("recovered Len = %d, want 100", r.Len())
	}
}

func TestOpenConfigMismatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "d.wal")
	d, err := Open(path, WithInner("btree"))
	if err != nil {
		t.Fatal(err)
	}
	d.Insert(1, 1)
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustClose(t, d)
	if _, err := Open(path, WithInner("gcola")); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("inner-kind conflict with checkpoint: %v", err)
	}

	// Inner OPTIONS that contradict the checkpoint's recorded spec are a
	// configuration error too, not a silent fall-back to the recorded
	// values; matching or omitted options reopen fine.
	gpath := filepath.Join(dir, "g.wal")
	g, err := Open(gpath, WithInner("gcola", WithGrowthFactor(4)))
	if err != nil {
		t.Fatal(err)
	}
	g.Insert(1, 1)
	if err := g.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustClose(t, g)
	if _, err := Open(gpath, WithInner("gcola", WithGrowthFactor(3))); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("inner-option conflict with checkpoint: %v", err)
	}
	// An option the creating Open left to its default is not recorded,
	// so a later explicit value — even the true default — cannot be
	// verified and is rejected with a pointer at the remedy.
	if _, err := Open(path, WithInner("btree", WithFanout(8))); err == nil || !strings.Contains(err.Error(), "was not set when the checkpoint was created") {
		t.Fatalf("unrecorded inner option: %v", err)
	}
	for _, opts := range [][]Option{
		{WithInner("gcola", WithGrowthFactor(4))}, // exact match
		{WithInner("gcola")},                      // options left to the recorded spec
		nil,                                       // kind left to the recorded spec too
	} {
		g, err := Open(gpath, opts...)
		if err != nil {
			t.Fatalf("reopen with %d options: %v", len(opts), err)
		}
		if v, ok := g.Search(1); !ok || v != 1 {
			t.Fatal("contents wrong after reopen")
		}
		mustClose(t, g)
	}
	if _, err := Open(filepath.Join(dir, "x.wal"), WithInner("durable")); err == nil {
		t.Fatal("durable-in-durable accepted")
	}
	if _, err := Build("durable"); err == nil || !strings.Contains(err.Error(), "WithWALPath") {
		t.Fatalf("missing WAL path: %v", err)
	}
	if _, err := Open(filepath.Join(dir, "y.wal"), WithInner("gcola", WithSpace(nil))); err == nil {
		t.Fatal("inner WithSpace accepted on a durable inner")
	}
	// A space buried one wrapper deeper is just as unpersistable.
	if _, err := Open(filepath.Join(dir, "z.wal"), WithInner("synchronized", WithInner("cola", WithSpace(nil)))); err == nil {
		t.Fatal("nested inner WithSpace accepted on a durable inner")
	}
}

// TestDurableConcurrentUse exercises the wrapper's own lock under the
// race detector.
func TestDurableConcurrentUse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	d, err := Open(path, WithInner("sharded", WithShards(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer mustClose(t, d)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := uint64(0); i < 400; i++ {
			d.Insert(i, i)
		}
	}()
	for i := uint64(0); i < 400; i++ {
		d.Search(i)
		if i%100 == 0 {
			d.Len()
		}
	}
	<-done
	if d.Len() != 400 {
		t.Fatalf("Len = %d", d.Len())
	}
}
