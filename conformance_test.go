package repro

// Cross-structure conformance suite: one model-based property test —
// interleaved inserts, updates, searches, deletes, and range/iterator
// scans checked against a map oracle — run against EVERY registered
// dictionary kind via Kinds(), plus a handful of option variants
// (multi-shard sharded maps, wrapper kinds with non-default inners).
// Per-package copies of this style of test can migrate here over time:
// a structure that registers itself is conformance-tested for free.

import (
	"bytes"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/workload"
)

// strongDeleters names the kinds whose Delete must report true for a
// present key (wrapper kinds qualify when their default inner does).
// Kinds absent from this set either lack a Deleter (shuttle, cobtree,
// the deamortized COLAs) or are external registrations the suite knows
// nothing about; their delete steps are skipped.
var strongDeleters = map[string]bool{
	"cola": true, "basic-cola": true, "gcola": true, "la": true,
	"btree": true, "brt": true, "swbst": true,
	"sharded": true, "synchronized": true, "durable": true,
}

// conformanceCase is one structure configuration under test.
type conformanceCase struct {
	name string
	kind string
	opts []Option
}

func conformanceCases(t *testing.T) []conformanceCase {
	t.Helper()
	var cases []conformanceCase
	for _, kind := range Kinds() {
		c := conformanceCase{name: kind, kind: kind}
		if kind == "durable" {
			// The durable wrapper needs somewhere to log; every case gets
			// a private path so suites never replay each other's WALs.
			c.opts = []Option{WithWALPath(filepath.Join(t.TempDir(), "durable.wal"))}
		}
		cases = append(cases, c)
	}
	// Option variants: exercise the wiring the plain defaults miss.
	cases = append(cases,
		conformanceCase{name: "sharded/4xbtree", kind: "sharded",
			opts: []Option{WithShards(4), WithInner("btree")}},
		conformanceCase{name: "sharded/dam", kind: "sharded",
			opts: []Option{WithShards(2), WithShardDAM(DefaultBlockBytes, 1<<16)}},
		conformanceCase{name: "synchronized/swbst", kind: "synchronized",
			opts: []Option{WithInner("swbst", WithFanout(4))}},
		conformanceCase{name: "gcola/g4", kind: "gcola",
			opts: []Option{WithGrowthFactor(4), WithPointerDensity(0.2)}},
		conformanceCase{name: "gcola/spill", kind: "gcola",
			opts: []Option{WithSpillDir(t.TempDir()), WithSpillDepth(2), WithSpillCacheBytes(1 << 14)}},
		conformanceCase{name: "la/eps1", kind: "la",
			opts: []Option{WithEpsilon(1)}},
		conformanceCase{name: "durable/btree+ckpt", kind: "durable",
			opts: []Option{
				WithWALPath(filepath.Join(t.TempDir(), "durable-btree.wal")),
				WithInner("btree"), WithCheckpointEvery(64),
			}},
	)
	return cases
}

// TestConformanceAllKinds drives every registered kind through the
// model-based property test.
func TestConformanceAllKinds(t *testing.T) {
	ops := 6000
	if testing.Short() {
		ops = 1500
	}
	for _, tc := range conformanceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Build(tc.kind, tc.opts...)
			if err != nil {
				t.Fatalf("Build(%q): %v", tc.kind, err)
			}
			runConformance(t, tc, d, ops)
			// Release held resources (WALs, spill directories).
			if cl, ok := d.(interface{ Close() error }); ok {
				mustClose(t, cl)
			}
		})
	}
}

func runConformance(t *testing.T, tc conformanceCase, d Dictionary, ops int) {
	t.Helper()
	oracle := make(map[uint64]uint64)
	rng := workload.NewRNG(0xC0FFEE)
	const keyspace = 1 << 12
	deleter, hasDeleter := d.(Deleter)
	checkDeletes := hasDeleter && strongDeleters[tc.kind]

	for i := 0; i < ops; i++ {
		k := rng.Uint64() % keyspace
		switch rng.Uint64() % 8 {
		case 0, 1, 2, 3: // insert / update
			v := rng.Uint64()
			d.Insert(k, v)
			oracle[k] = v
		case 4, 5: // point search
			wantV, wantOK := oracle[k]
			gotV, gotOK := d.Search(k)
			if gotOK != wantOK || (gotOK && gotV != wantV) {
				t.Fatalf("op %d: Search(%d) = (%d,%v), oracle (%d,%v)",
					i, k, gotV, gotOK, wantV, wantOK)
			}
		case 6: // delete
			if !checkDeletes {
				continue
			}
			_, present := oracle[k]
			if got := deleter.Delete(k); got != present {
				t.Fatalf("op %d: Delete(%d) = %v, oracle present=%v", i, k, got, present)
			}
			delete(oracle, k)
		case 7: // windowed iterator scan
			lo := k &^ 255
			hi := lo + 255
			var prev uint64
			first := true
			count := 0
			for key, v := range Ascend(d, lo, hi) {
				if key < lo || key > hi {
					t.Fatalf("op %d: Ascend yielded %d outside [%d, %d]", i, key, lo, hi)
				}
				if !first && key <= prev {
					t.Fatalf("op %d: Ascend not strictly ascending: %d after %d", i, key, prev)
				}
				prev, first = key, false
				want, ok := oracle[key]
				if !ok || want != v {
					t.Fatalf("op %d: Ascend yielded (%d,%d), oracle (%d,%v)", i, key, v, want, ok)
				}
				count++
			}
			wantCount := 0
			for key := range oracle {
				if key >= lo && key <= hi {
					wantCount++
				}
			}
			if count != wantCount {
				t.Fatalf("op %d: Ascend([%d,%d]) yielded %d keys, oracle has %d",
					i, lo, hi, count, wantCount)
			}
		}
	}

	// Final state: a full scan must reproduce the oracle exactly.
	got := make(map[uint64]uint64, len(oracle))
	var keys []uint64
	for k, v := range All(d) {
		if _, dup := got[k]; dup {
			t.Fatalf("full scan yielded key %d twice", k)
		}
		got[k] = v
		keys = append(keys, k)
	}
	if len(got) != len(oracle) {
		t.Fatalf("full scan: %d keys, oracle has %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if got[k] != v {
			t.Fatalf("full scan: key %d = %d, oracle %d", k, got[k], v)
		}
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatal("full scan not in ascending key order")
	}

	// Early break through the iterator must stop the scan.
	if len(oracle) > 3 {
		seen := 0
		for range All(d) {
			seen++
			if seen == 3 {
				break
			}
		}
		if seen != 3 {
			t.Fatalf("early break: visited %d", seen)
		}
	}

	// Len exactness: the COLA family reconciles its live count during
	// merges and guarantees exactness after compaction (and after any
	// bottom-reaching merge — pinned by internal/cola's own tests); when
	// every leaf under d exposes Compact, compact them all and demand
	// the oracle's count. This used to be exempt entirely ("compare Len
	// only after compaction" with no conformance check at all).
	if compactLeaves(d) {
		if got := d.Len(); got != len(oracle) {
			t.Fatalf("Len after Compact = %d, oracle has %d", got, len(oracle))
		}
	}
}

// compacter is the COLA family's anytime reconciliation hook.
type compacter interface{ Compact() }

// compactLeaves walks the wrapper kinds down to their leaf structures
// and compacts every one of them, reporting whether ALL leaves were
// compactable (only then is an exact-Len assertion justified for the
// whole composite).
func compactLeaves(d Dictionary) bool {
	switch x := d.(type) {
	case *SynchronizedDictionary:
		return compactLeaves(x.Unwrap())
	case *DurableDictionary:
		return compactLeaves(x.Unwrap())
	case *ShardedMap:
		all := true
		for i := 0; i < x.NumShards(); i++ {
			if !compactLeaves(x.InnerAt(i)) {
				all = false
			}
		}
		return all
	}
	if c, ok := d.(compacter); ok {
		c.Compact()
		return true
	}
	return false
}

// TestConformanceSnapshotRoundTrip drives every snapshot-capable kind
// through save → load → verify → save → load ("reopen") against the
// model oracle: after a mixed insert/update/delete workload, the loaded
// copy — rebuilt purely from the container's self-describing header —
// must reproduce the oracle exactly, twice.
func TestConformanceSnapshotRoundTrip(t *testing.T) {
	ops := 4000
	if testing.Short() {
		ops = 1000
	}
	for _, tc := range conformanceCases(t) {
		if !KindCaps(tc.kind).Snapshot {
			continue // the durable wrapper persists via its WAL instead
		}
		t.Run(tc.name, func(t *testing.T) {
			d, err := Build(tc.kind, tc.opts...)
			if err != nil {
				t.Fatalf("Build(%q): %v", tc.kind, err)
			}
			oracle := make(map[uint64]uint64)
			rng := workload.NewRNG(0x5A7E)
			deleter, hasDeleter := d.(Deleter)
			for i := 0; i < ops; i++ {
				k := rng.Uint64() % (1 << 12)
				if rng.Uint64()%8 == 0 && hasDeleter && strongDeleters[tc.kind] {
					deleter.Delete(k)
					delete(oracle, k)
					continue
				}
				v := rng.Uint64()
				d.Insert(k, v)
				oracle[k] = v
			}

			verify := func(stage string, d Dictionary) {
				t.Helper()
				got := 0
				for k, v := range All(d) {
					if want, ok := oracle[k]; !ok || want != v {
						t.Fatalf("%s: key %d = %d, oracle (%d,%v)", stage, k, v, oracle[k], ok)
					}
					got++
				}
				if got != len(oracle) {
					t.Fatalf("%s: scan yielded %d keys, oracle has %d", stage, got, len(oracle))
				}
			}

			var buf bytes.Buffer
			if err := Save(&buf, tc.kind, d, tc.opts...); err != nil {
				t.Fatalf("Save: %v", err)
			}
			loaded, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			verify("load", loaded)

			// Reopen: the loaded copy must itself save and load cleanly.
			var buf2 bytes.Buffer
			if err := Save(&buf2, tc.kind, loaded, tc.opts...); err != nil {
				t.Fatalf("re-Save: %v", err)
			}
			reopened, err := Load(bytes.NewReader(buf2.Bytes()))
			if err != nil {
				t.Fatalf("re-Load: %v", err)
			}
			verify("reopen", reopened)

			// The restored structure stays writable.
			reopened.Insert(1<<60, 7)
			if v, ok := reopened.Search(1 << 60); !ok || v != 7 {
				t.Fatal("restored structure rejects inserts")
			}
			for _, dict := range []Dictionary{d, loaded, reopened} {
				if cl, ok := dict.(interface{ Close() error }); ok {
					mustClose(t, cl)
				}
			}
		})
	}
}

// TestConformanceSnapshotTransferEquality enforces the GCOLA physical
// codec's promise through the public Save/Load surface: a snapshot
// restored with a fresh DAM space (re-attached via Load's extra
// options) charges exactly the transfers of the original for an
// identical subsequent workload.
func TestConformanceSnapshotTransferEquality(t *testing.T) {
	storeA := NewStore(DefaultBlockBytes, 1<<17)
	a := MustBuild("gcola", WithGrowthFactor(2), WithSpace(storeA.Space("a")))
	keys := workload.Take(workload.NewRandomUnique(123), 1<<13)
	for _, k := range keys {
		a.Insert(k, k)
	}

	var buf bytes.Buffer
	if err := Save(&buf, "gcola", a, WithGrowthFactor(2)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	storeB := NewStore(DefaultBlockBytes, 1<<17)
	b, err := Load(bytes.NewReader(buf.Bytes()), WithSpace(storeB.Space("b")))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	storeA.DropCache()
	storeA.ResetCounters()
	storeB.DropCache()
	storeB.ResetCounters()
	rng := workload.NewRNG(9)
	for i := 0; i < 2048; i++ {
		k := keys[rng.Intn(len(keys))]
		a.Search(k)
		b.Search(k)
	}
	for i := uint64(0); i < 512; i++ {
		a.Insert(1<<61+i, i)
		b.Insert(1<<61+i, i)
	}
	if storeA.Transfers() != storeB.Transfers() {
		t.Fatalf("transfer counts diverge after restore: original %d, restored %d",
			storeA.Transfers(), storeB.Transfers())
	}
}

// TestConformanceBatchIngest rebuilds every kind from one InsertBatch
// call — duplicates included, later entries winning — and checks the
// result matches element-at-a-time ingestion semantics.
func TestConformanceBatchIngest(t *testing.T) {
	n := 4096
	if testing.Short() {
		n = 512
	}
	rng := workload.NewRNG(0xBEEF)
	batch := make([]Element, 0, n+n/4)
	oracle := make(map[uint64]uint64)
	for i := 0; i < n; i++ {
		k := rng.Uint64() % uint64(n)
		v := rng.Uint64()
		batch = append(batch, Element{Key: k, Value: v})
		oracle[k] = v
	}
	for _, tc := range conformanceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Build(tc.kind, tc.opts...)
			if err != nil {
				t.Fatalf("Build(%q): %v", tc.kind, err)
			}
			InsertBatch(d, batch)
			// The full scan below is the exact content check; Len is
			// asserted after compaction for the COLA family (exact by the
			// merge-reconciliation guarantee) and left unasserted only for
			// structures that document approximation and expose no
			// compaction hook (BRT, shuttle).
			if compactLeaves(d) {
				if got := d.Len(); got != len(oracle) {
					t.Fatalf("Len after Compact = %d, oracle has %d", got, len(oracle))
				}
			}
			count := 0
			for k, v := range All(d) {
				if oracle[k] != v {
					t.Fatalf("key %d = %d, oracle %d", k, v, oracle[k])
				}
				count++
			}
			if count != len(oracle) {
				t.Fatalf("scan yielded %d keys, oracle has %d", count, len(oracle))
			}
		})
	}
}
