// Copyright 2013 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package buildtag defines an Analyzer that checks build tags.
package buildtag

import (
	"go/ast"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"strings"
	"unicode"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
)

const Doc = "check //go:build and // +build directives"

var Analyzer = &analysis.Analyzer{
	Name: "buildtag",
	Doc:  Doc,
	URL:  "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/buildtag",
	Run:  runBuildTag,
}

func runBuildTag(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		checkGoFile(pass, f)
	}
	for _, name := range pass.OtherFiles {
		if err := checkOtherFile(pass, name); err != nil {
			return nil, err
		}
	}
	for _, name := range pass.IgnoredFiles {
		if strings.HasSuffix(name, ".go") {
			f, err := parser.ParseFile(pass.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				// Not valid Go source code - not our job to diagnose, so ignore.
				return nil, nil
			}
			checkGoFile(pass, f)
		} else {
			if err := checkOtherFile(pass, name); err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

func checkGoFile(pass *analysis.Pass, f *ast.File) {
	var check checker
	check.init(pass)
	defer check.finish()

	for _, group := range f.Comments {
		// A +build comment is ignored after or adjoining the package declaration.
		if group.End()+1 >= f.Package {
			check.plusBuildOK = false
		}
		// A //go:build comment is ignored after the package declaration
		// (but adjoining it is OK, in contrast to +build comments).
		if group.Pos() >= f.Package {
			check.goBuildOK = false
		}

		// Check each line of a //-comment.
		for _, c := range group.List {
			// "+build" is ignored within or after a /*...*/ comment.
			if !strings.HasPrefix(c.Text, "//") {
				check.plusBuildOK = false
			}
			check.comment(c.Slash, c.Text)
		}
	}
}

func checkOtherFile(pass *analysis.Pass, filename string) error {
	var check checker
	check.init(pass)
	defer check.finish()

	// We cannot use the Go parser, since this may not be a Go source file.
	// Read the raw bytes instead.
	content, tf, err := analysisutil.ReadFile(pass, filename)
	if err != nil {
		return err
	}

	check.file(token.Pos(tf.Base()), string(content))
	return nil
}

type checker struct {
	pass         *analysis.Pass
	plusBuildOK  bool            // "+build" lines still OK
	goBuildOK    bool            // "go:build" lines still OK
	crossCheck   bool            // cross-check go:build and +build lines when done reading file
	inStar       bool            // currently in a /* */ comment
	goBuildPos   token.Pos       // position of first go:build line found
	plusBuildPos token.Pos       // position of first "+build" line found
	goBuild      constraint.Expr // go:build constraint found
	plusBuild    constraint.Expr // AND of +build constraints found
}

func (check *checker) init(pass *analysis.Pass) {
	check.pass = pass
	check.goBuildOK = true
	check.plusBuildOK = true
	check.crossCheck = true
}

func (check *checker) file(pos token.Pos, text string) {
	// Determine cutpoint where +build comments are no longer valid.
	// They are valid in leading // comments in the file followed by
	// a blank line.
	//
	// This must be done as a separate pass because of the
	// requirement that the comment be followed by a blank line.
	var plusBuildCutoff int
	fullText := text
	for text != "" {
		i := strings.Index(text, "\n")
		if i < 0 {
			i = len(text)
		} else {
			i++
		}
		offset := len(fullText) - len(text)
		line := text[:i]
		text = text[i:]
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "//") && line != "" {
			break
		}
		if line == "" {
			plusBuildCutoff = offset
		}
	}

	// Process each line.
	// Must stop once we hit goBuildOK == false
	text = fullText
	check.inStar = false
	for text != "" {
		i := strings.Index(text, "\n")
		if i < 0 {
			i = len(text)
		} else {
			i++
		}
		offset := len(fullText) - len(text)
		line := text[:i]
		text = text[i:]
		check.plusBuildOK = offset < plusBuildCutoff

		if strings.HasPrefix(line, "//") {
			check.comment(pos+token.Pos(offset), line)
			continue
		}

		// Keep looking for the point at which //go:build comments
		// stop being allowed. Skip over, cut out any /* */ comments.
		for {
			line = strings.TrimSpace(line)
			if check.inStar {
				i := strings.Index(line, "*/")
				if i < 0 {
					line = ""
					break
				}
				line = line[i+len("*/"):]
				check.inStar = false
				continue
			}
			if strings.HasPrefix(line, "/*") {
				check.inStar = true
				line = line[len("/*"):]
				continue
			}
			break
		}
		if line != "" {
			// Found non-comment non-blank line.
			// Ends space for valid //go:build comments,
			// but also ends the fraction of the file we can
			// reliably parse. From this point on we might
			// incorrectly flag "comments" inside multiline
			// string constants or anything else (this might
			// not even be a Go program). So stop.
			break
		}
	}
}

func (check *checker) comment(pos token.Pos, text string) {
	if strings.HasPrefix(text, "//") {
		if strings.Contains(text, "+build") {
			check.plusBuildLine(pos, text)
		}
		if strings.Contains(text, "//go:build") {
			check.goBuildLine(pos, text)
		}
	}
	if strings.HasPrefix(text, "/*") {
		if i := strings.Index(text, "\n"); i >= 0 {
			// multiline /* */ comment - process interior lines
			check.inStar = true
			i++
			pos += token.Pos(i)
			text = text[i:]
			for text != "" {
				i := strings.Index(text, "\n")
				if i < 0 {
					i = len(text)
				} else {
					i++
				}
				line := text[:i]
				if strings.HasPrefix(line, "//") {
					check.comment(pos, line)
				}
				pos += token.Pos(i)
				text = text[i:]
			}
			check.inStar = false
		}
	}
}

func (check *checker) goBuildLine(pos token.Pos, line string) {
	if !constraint.IsGoBuild(line) {
		if !strings.HasPrefix(line, "//go:build") && constraint.IsGoBuild("//"+strings.TrimSpace(line[len("//"):])) {
			check.pass.Reportf(pos, "malformed //go:build line (space between // and go:build)")
		}
		return
	}
	if !check.goBuildOK || check.inStar {
		check.pass.Reportf(pos, "misplaced //go:build comment")
		check.crossCheck = false
		return
	}

	if check.goBuildPos == token.NoPos {
		check.goBuildPos = pos
	} else {
		check.pass.Reportf(pos, "unexpected extra //go:build line")
		check.crossCheck = false
	}

	// testing hack: stop at // ERROR
	if i := strings.Index(line, " // ERROR "); i >= 0 {
		line = line[:i]
	}

	x, err := constraint.Parse(line)
	if err != nil {
		check.pass.Reportf(pos, "%v", err)
		check.crossCheck = false
		return
	}

	check.tags(pos, x)

	if check.goBuild == nil {
		check.goBuild = x
	}
}

func (check *checker) plusBuildLine(pos token.Pos, line string) {
	line = strings.TrimSpace(line)
	if !constraint.IsPlusBuild(line) {
		// Comment with +build but not at beginning.
		// Only report early in file.
		if check.plusBuildOK && !strings.HasPrefix(line, "// want") {
			check.pass.Reportf(pos, "possible malformed +build comment")
		}
		return
	}
	if !check.plusBuildOK { // inStar implies !plusBuildOK
		check.pass.Reportf(pos, "misplaced +build comment")
		check.crossCheck = false
	}

	if check.plusBuildPos == token.NoPos {
		check.plusBuildPos = pos
	}

	// testing hack: stop at // ERROR
	if i := strings.Index(line, " // ERROR "); i >= 0 {
		line = line[:i]
	}

	fields := strings.Fields(line[len("//"):])
	// IsPlusBuildConstraint check above implies fields[0] == "+build"
	for _, arg := range fields[1:] {
		for _, elem := range strings.Split(arg, ",") {
			if strings.HasPrefix(elem, "!!") {
				check.pass.Reportf(pos, "invalid double negative in build constraint: %s", arg)
				check.crossCheck = false
				continue
			}
			elem = strings.TrimPrefix(elem, "!")
			for _, c := range elem {
				if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' && c != '.' {
					check.pass.Reportf(pos, "invalid non-alphanumeric build constraint: %s", arg)
					check.crossCheck = false
					break
				}
			}
		}
	}

	if check.crossCheck {
		y, err := constraint.Parse(line)
		if err != nil {
			// Should never happen - constraint.Parse never rejects a // +build line.
			// Also, we just checked the syntax above.
			// Even so, report.
			check.pass.Reportf(pos, "%v", err)
			check.crossCheck = false
			return
		}
		check.tags(pos, y)

		if check.plusBuild == nil {
			check.plusBuild = y
		} else {
			check.plusBuild = &constraint.AndExpr{X: check.plusBuild, Y: y}
		}
	}
}

func (check *checker) finish() {
	if !check.crossCheck || check.plusBuildPos == token.NoPos || check.goBuildPos == token.NoPos {
		return
	}

	// Have both //go:build and // +build,
	// with no errors found (crossCheck still true).
	// Check they match.
	var want constraint.Expr
	lines, err := constraint.PlusBuildLines(check.goBuild)
	if err != nil {
		check.pass.Reportf(check.goBuildPos, "%v", err)
		return
	}
	for _, line := range lines {
		y, err := constraint.Parse(line)
		if err != nil {
			// Definitely should not happen, but not the user's fault.
			// Do not report.
			return
		}
		if want == nil {
			want = y
		} else {
			want = &constraint.AndExpr{X: want, Y: y}
		}
	}
	if want.String() != check.plusBuild.String() {
		check.pass.Reportf(check.plusBuildPos, "+build lines do not match //go:build condition")
		return
	}
}

// tags reports issues in go versions in tags within the expression e.
func (check *checker) tags(pos token.Pos, e constraint.Expr) {
	// Use Eval to visit each tag.
	_ = e.Eval(func(tag string) bool {
		if malformedGoTag(tag) {
			check.pass.Reportf(pos, "invalid go version %q in build constraint", tag)
		}
		return false // result is immaterial as Eval does not short-circuit
	})
}

// malformedGoTag returns true if a tag is likely to be a malformed
// go version constraint.
func malformedGoTag(tag string) bool {
	// Not a go version?
	if !strings.HasPrefix(tag, "go1") {
		// Check for close misspellings of the "go1." prefix.
		for _, pre := range []string{"go.", "g1.", "go"} {
			suffix := strings.TrimPrefix(tag, pre)
			if suffix != tag && validGoVersion("go1."+suffix) {
				return true
			}
		}
		return false
	}

	// The tag starts with "go1" so it is almost certainly a GoVersion.
	// Report it if it is not a valid build constraint.
	return !validGoVersion(tag)
}

// validGoVersion reports when a tag is a valid go version.
func validGoVersion(tag string) bool {
	return constraint.GoVersion(&constraint.TagExpr{Tag: tag}) != ""
}
