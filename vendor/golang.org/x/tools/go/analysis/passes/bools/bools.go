// Copyright 2014 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package bools defines an Analyzer that detects common mistakes
// involving boolean operators.
package bools

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
)

const Doc = "check for common mistakes involving boolean operators"

var Analyzer = &analysis.Analyzer{
	Name:     "bools",
	Doc:      Doc,
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/bools",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.BinaryExpr)(nil),
	}
	seen := make(map[*ast.BinaryExpr]bool)
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		e := n.(*ast.BinaryExpr)
		if seen[e] {
			// Already processed as a subexpression of an earlier node.
			return
		}

		var op boolOp
		switch e.Op {
		case token.LOR:
			op = or
		case token.LAND:
			op = and
		default:
			return
		}

		comm := op.commutativeSets(pass.TypesInfo, e, seen)
		for _, exprs := range comm {
			op.checkRedundant(pass, exprs)
			op.checkSuspect(pass, exprs)
		}
	})
	return nil, nil
}

type boolOp struct {
	name  string
	tok   token.Token // token corresponding to this operator
	badEq token.Token // token corresponding to the equality test that should not be used with this operator
}

var (
	or  = boolOp{"or", token.LOR, token.NEQ}
	and = boolOp{"and", token.LAND, token.EQL}
)

// commutativeSets returns all side effect free sets of
// expressions in e that are connected by op.
// For example, given 'a || b || f() || c || d' with the or op,
// commutativeSets returns {{b, a}, {d, c}}.
// commutativeSets adds any expanded BinaryExprs to seen.
func (op boolOp) commutativeSets(info *types.Info, e *ast.BinaryExpr, seen map[*ast.BinaryExpr]bool) [][]ast.Expr {
	exprs := op.split(e, seen)

	// Partition the slice of expressions into commutative sets.
	i := 0
	var sets [][]ast.Expr
	for j := 0; j <= len(exprs); j++ {
		if j == len(exprs) || analysisutil.HasSideEffects(info, exprs[j]) {
			if i < j {
				sets = append(sets, exprs[i:j])
			}
			i = j + 1
		}
	}

	return sets
}

// checkRedundant checks for expressions of the form
//
//	e && e
//	e || e
//
// Exprs must contain only side effect free expressions.
func (op boolOp) checkRedundant(pass *analysis.Pass, exprs []ast.Expr) {
	seen := make(map[string]bool)
	for _, e := range exprs {
		efmt := analysisutil.Format(pass.Fset, e)
		if seen[efmt] {
			pass.ReportRangef(e, "redundant %s: %s %s %s", op.name, efmt, op.tok, efmt)
		} else {
			seen[efmt] = true
		}
	}
}

// checkSuspect checks for expressions of the form
//
//	x != c1 || x != c2
//	x == c1 && x == c2
//
// where c1 and c2 are constant expressions.
// If c1 and c2 are the same then it's redundant;
// if c1 and c2 are different then it's always true or always false.
// Exprs must contain only side effect free expressions.
func (op boolOp) checkSuspect(pass *analysis.Pass, exprs []ast.Expr) {
	// seen maps from expressions 'x' to equality expressions 'x != c'.
	seen := make(map[string]string)

	for _, e := range exprs {
		bin, ok := e.(*ast.BinaryExpr)
		if !ok || bin.Op != op.badEq {
			continue
		}

		// In order to avoid false positives, restrict to cases
		// in which one of the operands is constant. We're then
		// interested in the other operand.
		// In the rare case in which both operands are constant
		// (e.g. runtime.GOOS and "windows"), we'll only catch
		// mistakes if the LHS is repeated, which is how most
		// code is written.
		var x ast.Expr
		switch {
		case pass.TypesInfo.Types[bin.Y].Value != nil:
			x = bin.X
		case pass.TypesInfo.Types[bin.X].Value != nil:
			x = bin.Y
		default:
			continue
		}

		// e is of the form 'x != c' or 'x == c'.
		xfmt := analysisutil.Format(pass.Fset, x)
		efmt := analysisutil.Format(pass.Fset, e)
		if prev, found := seen[xfmt]; found {
			// checkRedundant handles the case in which efmt == prev.
			if efmt != prev {
				pass.ReportRangef(e, "suspect %s: %s %s %s", op.name, efmt, op.tok, prev)
			}
		} else {
			seen[xfmt] = efmt
		}
	}
}

// split returns a slice of all subexpressions in e that are connected by op.
// For example, given 'a || (b || c) || d' with the or op,
// split returns []{d, c, b, a}.
// seen[e] is already true; any newly processed exprs are added to seen.
func (op boolOp) split(e ast.Expr, seen map[*ast.BinaryExpr]bool) (exprs []ast.Expr) {
	for {
		e = ast.Unparen(e)
		if b, ok := e.(*ast.BinaryExpr); ok && b.Op == op.tok {
			seen[b] = true
			exprs = append(exprs, op.split(b.Y, seen)...)
			e = b.X
		} else {
			exprs = append(exprs, e)
			break
		}
	}
	return
}
