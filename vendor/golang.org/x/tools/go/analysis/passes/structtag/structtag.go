// Copyright 2010 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package structtag defines an Analyzer that checks struct field tags
// are well formed.
package structtag

import (
	"errors"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

const Doc = `check that struct field tags conform to reflect.StructTag.Get

Also report certain struct tags (json, xml) used with unexported fields.`

var Analyzer = &analysis.Analyzer{
	Name:             "structtag",
	Doc:              Doc,
	URL:              "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/structtag",
	Requires:         []*analysis.Analyzer{inspect.Analyzer},
	RunDespiteErrors: true,
	Run:              run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.StructType)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		styp, ok := pass.TypesInfo.Types[n.(*ast.StructType)].Type.(*types.Struct)
		// Type information may be incomplete.
		if !ok {
			return
		}
		var seen namesSeen
		for i := 0; i < styp.NumFields(); i++ {
			field := styp.Field(i)
			tag := styp.Tag(i)
			checkCanonicalFieldTag(pass, field, tag, &seen)
		}
	})
	return nil, nil
}

// namesSeen keeps track of encoding tags by their key, name, and nested level
// from the initial struct. The level is taken into account because equal
// encoding key names only conflict when at the same level; otherwise, the lower
// level shadows the higher level.
type namesSeen map[uniqueName]token.Pos

type uniqueName struct {
	key   string // "xml" or "json"
	name  string // the encoding name
	level int    // anonymous struct nesting level
}

func (s *namesSeen) Get(key, name string, level int) (token.Pos, bool) {
	if *s == nil {
		*s = make(map[uniqueName]token.Pos)
	}
	pos, ok := (*s)[uniqueName{key, name, level}]
	return pos, ok
}

func (s *namesSeen) Set(key, name string, level int, pos token.Pos) {
	if *s == nil {
		*s = make(map[uniqueName]token.Pos)
	}
	(*s)[uniqueName{key, name, level}] = pos
}

var checkTagDups = []string{"json", "xml"}
var checkTagSpaces = map[string]bool{"json": true, "xml": true, "asn1": true}

// checkCanonicalFieldTag checks a single struct field tag.
func checkCanonicalFieldTag(pass *analysis.Pass, field *types.Var, tag string, seen *namesSeen) {
	switch pass.Pkg.Path() {
	case "encoding/json", "encoding/xml":
		// These packages know how to use their own APIs.
		// Sometimes they are testing what happens to incorrect programs.
		return
	}

	for _, key := range checkTagDups {
		checkTagDuplicates(pass, tag, key, field, field, seen, 1)
	}

	if err := validateStructTag(tag); err != nil {
		pass.Reportf(field.Pos(), "struct field tag %#q not compatible with reflect.StructTag.Get: %s", tag, err)
	}

	// Check for use of json or xml tags with unexported fields.

	// Embedded struct. Nothing to do for now, but that
	// may change, depending on what happens with issue 7363.
	// TODO(adonovan): investigate, now that that issue is fixed.
	if field.Anonymous() {
		return
	}

	if field.Exported() {
		return
	}

	for _, enc := range [...]string{"json", "xml"} {
		switch reflect.StructTag(tag).Get(enc) {
		// Ignore warning if the field not exported and the tag is marked as
		// ignored.
		case "", "-":
		default:
			pass.Reportf(field.Pos(), "struct field %s has %s tag but is not exported", field.Name(), enc)
			return
		}
	}
}

// checkTagDuplicates checks a single struct field tag to see if any tags are
// duplicated. nearest is the field that's closest to the field being checked,
// while still being part of the top-level struct type.
func checkTagDuplicates(pass *analysis.Pass, tag, key string, nearest, field *types.Var, seen *namesSeen, level int) {
	val := reflect.StructTag(tag).Get(key)
	if val == "-" {
		// Ignored, even if the field is anonymous.
		return
	}
	if val == "" || val[0] == ',' {
		if !field.Anonymous() {
			// Ignored if the field isn't anonymous.
			return
		}
		typ, ok := field.Type().Underlying().(*types.Struct)
		if !ok {
			return
		}
		for i := 0; i < typ.NumFields(); i++ {
			field := typ.Field(i)
			if !field.Exported() {
				continue
			}
			tag := typ.Tag(i)
			checkTagDuplicates(pass, tag, key, nearest, field, seen, level+1)
		}
		return
	}
	if key == "xml" && field.Name() == "XMLName" {
		// XMLName defines the XML element name of the struct being
		// checked. That name cannot collide with element or attribute
		// names defined on other fields of the struct. Vet does not have a
		// check for untagged fields of type struct defining their own name
		// by containing a field named XMLName; see issue 18256.
		return
	}
	if i := strings.Index(val, ","); i >= 0 {
		if key == "xml" {
			// Use a separate namespace for XML attributes.
			for _, opt := range strings.Split(val[i:], ",") {
				if opt == "attr" {
					key += " attribute" // Key is part of the error message.
					break
				}
			}
		}
		val = val[:i]
	}
	if pos, ok := seen.Get(key, val, level); ok {
		alsoPos := pass.Fset.Position(pos)
		alsoPos.Column = 0

		// Make the "also at" position relative to the current position,
		// to ensure that all warnings are unambiguous and correct. For
		// example, via anonymous struct fields, it's possible for the
		// two fields to be in different packages and directories.
		thisPos := pass.Fset.Position(field.Pos())
		rel, err := filepath.Rel(filepath.Dir(thisPos.Filename), alsoPos.Filename)
		if err != nil {
			// Possibly because the paths are relative; leave the
			// filename alone.
		} else {
			alsoPos.Filename = rel
		}

		pass.Reportf(nearest.Pos(), "struct field %s repeats %s tag %q also at %s", field.Name(), key, val, alsoPos)
	} else {
		seen.Set(key, val, level, field.Pos())
	}
}

var (
	errTagSyntax      = errors.New("bad syntax for struct tag pair")
	errTagKeySyntax   = errors.New("bad syntax for struct tag key")
	errTagValueSyntax = errors.New("bad syntax for struct tag value")
	errTagValueSpace  = errors.New("suspicious space in struct tag value")
	errTagSpace       = errors.New("key:\"value\" pairs not separated by spaces")
)

// validateStructTag parses the struct tag and returns an error if it is not
// in the canonical format, which is a space-separated list of key:"value"
// settings. The value may contain spaces.
func validateStructTag(tag string) error {
	// This code is based on the StructTag.Get code in package reflect.

	n := 0
	for ; tag != ""; n++ {
		if n > 0 && tag != "" && tag[0] != ' ' {
			// More restrictive than reflect, but catches likely mistakes
			// like `x:"foo",y:"bar"`, which parses as `x:"foo" ,y:"bar"` with second key ",y".
			return errTagSpace
		}
		// Skip leading space.
		i := 0
		for i < len(tag) && tag[i] == ' ' {
			i++
		}
		tag = tag[i:]
		if tag == "" {
			break
		}

		// Scan to colon. A space, a quote or a control character is a syntax error.
		// Strictly speaking, control chars include the range [0x7f, 0x9f], not just
		// [0x00, 0x1f], but in practice, we ignore the multi-byte control characters
		// as it is simpler to inspect the tag's bytes than the tag's runes.
		i = 0
		for i < len(tag) && tag[i] > ' ' && tag[i] != ':' && tag[i] != '"' && tag[i] != 0x7f {
			i++
		}
		if i == 0 {
			return errTagKeySyntax
		}
		if i+1 >= len(tag) || tag[i] != ':' {
			return errTagSyntax
		}
		if tag[i+1] != '"' {
			return errTagValueSyntax
		}
		key := tag[:i]
		tag = tag[i+1:]

		// Scan quoted string to find value.
		i = 1
		for i < len(tag) && tag[i] != '"' {
			if tag[i] == '\\' {
				i++
			}
			i++
		}
		if i >= len(tag) {
			return errTagValueSyntax
		}
		qvalue := tag[:i+1]
		tag = tag[i+1:]

		value, err := strconv.Unquote(qvalue)
		if err != nil {
			return errTagValueSyntax
		}

		if !checkTagSpaces[key] {
			continue
		}

		switch key {
		case "xml":
			// If the first or last character in the XML tag is a space, it is
			// suspicious.
			if strings.Trim(value, " ") != value {
				return errTagValueSpace
			}

			// If there are multiple spaces, they are suspicious.
			if strings.Count(value, " ") > 1 {
				return errTagValueSpace
			}

			// If there is no comma, skip the rest of the checks.
			comma := strings.IndexRune(value, ',')
			if comma < 0 {
				continue
			}

			// If the character before a comma is a space, this is suspicious.
			if comma > 0 && value[comma-1] == ' ' {
				return errTagValueSpace
			}
			value = value[comma+1:]
		case "json":
			// JSON allows using spaces in the name, so skip it.
			comma := strings.IndexRune(value, ',')
			if comma < 0 {
				continue
			}
			value = value[comma+1:]
		}

		if strings.IndexByte(value, ' ') >= 0 {
			return errTagValueSpace
		}
	}
	return nil
}
