// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package directive defines an Analyzer that checks known Go toolchain directives.
package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"unicode"
	"unicode/utf8"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
)

const Doc = `check Go toolchain directives such as //go:debug

This analyzer checks for problems with known Go toolchain directives
in all Go source files in a package directory, even those excluded by
//go:build constraints, and all non-Go source files too.

For //go:debug (see https://go.dev/doc/godebug), the analyzer checks
that the directives are placed only in Go source files, only above the
package comment, and only in package main or *_test.go files.

Support for other known directives may be added in the future.

This analyzer does not check //go:build, which is handled by the
buildtag analyzer.
`

var Analyzer = &analysis.Analyzer{
	Name: "directive",
	Doc:  Doc,
	URL:  "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/directive",
	Run:  runDirective,
}

func runDirective(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		checkGoFile(pass, f)
	}
	for _, name := range pass.OtherFiles {
		if err := checkOtherFile(pass, name); err != nil {
			return nil, err
		}
	}
	for _, name := range pass.IgnoredFiles {
		if strings.HasSuffix(name, ".go") {
			f, err := parser.ParseFile(pass.Fset, name, nil, parser.ParseComments)
			if err != nil {
				// Not valid Go source code - not our job to diagnose, so ignore.
				continue
			}
			checkGoFile(pass, f)
		} else {
			if err := checkOtherFile(pass, name); err != nil {
				return nil, err
			}
		}
	}
	return nil, nil
}

func checkGoFile(pass *analysis.Pass, f *ast.File) {
	check := newChecker(pass, pass.Fset.File(f.Package).Name(), f)

	for _, group := range f.Comments {
		// A //go:build or a //go:debug comment is ignored after the package declaration
		// (but adjoining it is OK, in contrast to +build comments).
		if group.Pos() >= f.Package {
			check.inHeader = false
		}

		// Check each line of a //-comment.
		for _, c := range group.List {
			check.comment(c.Slash, c.Text)
		}
	}
}

func checkOtherFile(pass *analysis.Pass, filename string) error {
	// We cannot use the Go parser, since is not a Go source file.
	// Read the raw bytes instead.
	content, tf, err := analysisutil.ReadFile(pass, filename)
	if err != nil {
		return err
	}

	check := newChecker(pass, filename, nil)
	check.nonGoFile(token.Pos(tf.Base()), string(content))
	return nil
}

type checker struct {
	pass     *analysis.Pass
	filename string
	file     *ast.File // nil for non-Go file
	inHeader bool      // in file header (before or adjoining package declaration)
}

func newChecker(pass *analysis.Pass, filename string, file *ast.File) *checker {
	return &checker{
		pass:     pass,
		filename: filename,
		file:     file,
		inHeader: true,
	}
}

func (check *checker) nonGoFile(pos token.Pos, fullText string) {
	// Process each line.
	text := fullText
	inStar := false
	for text != "" {
		offset := len(fullText) - len(text)
		var line string
		line, text, _ = strings.Cut(text, "\n")

		if !inStar && strings.HasPrefix(line, "//") {
			check.comment(pos+token.Pos(offset), line)
			continue
		}

		// Skip over, cut out any /* */ comments,
		// to avoid being confused by a commented-out // comment.
		for {
			line = strings.TrimSpace(line)
			if inStar {
				var ok bool
				_, line, ok = strings.Cut(line, "*/")
				if !ok {
					break
				}
				inStar = false
				continue
			}
			line, inStar = stringsCutPrefix(line, "/*")
			if !inStar {
				break
			}
		}
		if line != "" {
			// Found non-comment non-blank line.
			// Ends space for valid //go:build comments,
			// but also ends the fraction of the file we can
			// reliably parse. From this point on we might
			// incorrectly flag "comments" inside multiline
			// string constants or anything else (this might
			// not even be a Go program). So stop.
			break
		}
	}
}

func (check *checker) comment(pos token.Pos, line string) {
	if !strings.HasPrefix(line, "//go:") {
		return
	}
	// testing hack: stop at // ERROR
	if i := strings.Index(line, " // ERROR "); i >= 0 {
		line = line[:i]
	}

	verb := line
	if i := strings.IndexFunc(verb, unicode.IsSpace); i >= 0 {
		verb = verb[:i]
		if line[i] != ' ' && line[i] != '\t' && line[i] != '\n' {
			r, _ := utf8.DecodeRuneInString(line[i:])
			check.pass.Reportf(pos, "invalid space %#q in %s directive", r, verb)
		}
	}

	switch verb {
	default:
		// TODO: Use the go language version for the file.
		// If that version is not newer than us, then we can
		// report unknown directives.

	case "//go:build":
		// Ignore. The buildtag analyzer reports misplaced comments.

	case "//go:debug":
		if check.file == nil {
			check.pass.Reportf(pos, "//go:debug directive only valid in Go source files")
		} else if check.file.Name.Name != "main" && !strings.HasSuffix(check.filename, "_test.go") {
			check.pass.Reportf(pos, "//go:debug directive only valid in package main or test")
		} else if !check.inHeader {
			check.pass.Reportf(pos, "//go:debug directive only valid before package declaration")
		}
	}
}

// Go 1.20 strings.CutPrefix.
func stringsCutPrefix(s, prefix string) (after string, found bool) {
	if !strings.HasPrefix(s, prefix) {
		return s, false
	}
	return s[len(prefix):], true
}
