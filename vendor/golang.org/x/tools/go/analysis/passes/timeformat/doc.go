// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package timeformat defines an Analyzer that checks for the use
// of time.Format or time.Parse calls with a bad format.
//
// # Analyzer timeformat
//
// timeformat: check for calls of (time.Time).Format or time.Parse with 2006-02-01
//
// The timeformat checker looks for time formats with the 2006-02-01 (yyyy-dd-mm)
// format. Internationally, "yyyy-dd-mm" does not occur in common calendar date
// standards, and so it is more likely that 2006-01-02 (yyyy-mm-dd) was intended.
package timeformat
