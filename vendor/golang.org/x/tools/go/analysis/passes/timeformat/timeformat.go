// Copyright 2022 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package timeformat defines an Analyzer that checks for the use
// of time.Format or time.Parse calls with a bad format.
package timeformat

import (
	_ "embed"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

const badFormat = "2006-02-01"
const goodFormat = "2006-01-02"

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "timeformat",
	Doc:      analysisutil.MustExtractDoc(doc, "timeformat"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/timeformat",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Note: (time.Time).Format is a method and can be a typeutil.Callee
	// without directly importing "time". So we cannot just skip this package
	// when !analysisutil.Imports(pass.Pkg, "time").
	// TODO(taking): Consider using a prepass to collect typeutil.Callees.

	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.CallExpr)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return
		}
		if !isTimeDotFormat(fn) && !isTimeDotParse(fn) {
			return
		}
		if len(call.Args) > 0 {
			arg := call.Args[0]
			badAt := badFormatAt(pass.TypesInfo, arg)

			if badAt > -1 {
				// Check if it's a literal string, otherwise we can't suggest a fix.
				if _, ok := arg.(*ast.BasicLit); ok {
					pos := int(arg.Pos()) + badAt + 1 // +1 to skip the " or `
					end := pos + len(badFormat)

					pass.Report(analysis.Diagnostic{
						Pos:     token.Pos(pos),
						End:     token.Pos(end),
						Message: badFormat + " should be " + goodFormat,
						SuggestedFixes: []analysis.SuggestedFix{{
							Message: "Replace " + badFormat + " with " + goodFormat,
							TextEdits: []analysis.TextEdit{{
								Pos:     token.Pos(pos),
								End:     token.Pos(end),
								NewText: []byte(goodFormat),
							}},
						}},
					})
				} else {
					pass.Reportf(arg.Pos(), badFormat+" should be "+goodFormat)
				}
			}
		}
	})
	return nil, nil
}

func isTimeDotFormat(f *types.Func) bool {
	if f.Name() != "Format" || f.Pkg() == nil || f.Pkg().Path() != "time" {
		return false
	}
	// Verify that the receiver is time.Time.
	recv := f.Type().(*types.Signature).Recv()
	return recv != nil && analysisutil.IsNamedType(recv.Type(), "time", "Time")
}

func isTimeDotParse(f *types.Func) bool {
	return analysisutil.IsFunctionNamed(f, "time", "Parse")
}

// badFormatAt return the start of a bad format in e or -1 if no bad format is found.
func badFormatAt(info *types.Info, e ast.Expr) int {
	tv, ok := info.Types[e]
	if !ok { // no type info, assume good
		return -1
	}

	t, ok := tv.Type.(*types.Basic) // sic, no unalias
	if !ok || t.Info()&types.IsString == 0 {
		return -1
	}

	if tv.Value == nil {
		return -1
	}

	return strings.Index(constant.StringVal(tv.Value), badFormat)
}
