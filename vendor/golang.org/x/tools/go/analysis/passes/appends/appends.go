// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package appends defines an Analyzer that detects
// if there is only one variable in append.
package appends

import (
	_ "embed"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "appends",
	Doc:      analysisutil.MustExtractDoc(doc, "appends"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/appends",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.CallExpr)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		b, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Builtin)
		if ok && b.Name() == "append" && len(call.Args) == 1 {
			pass.ReportRangef(call, "append with no values")
		}
	})

	return nil, nil
}
