// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package appends defines an Analyzer that detects
// if there is only one variable in append.
//
// # Analyzer appends
//
// appends: check for missing values after append
//
// This checker reports calls to append that pass
// no values to be appended to the slice.
//
//	s := []string{"a", "b", "c"}
//	_ = append(s)
//
// Such calls are always no-ops and often indicate an
// underlying mistake.
package appends
