// Copyright 2016 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package httpresponse defines an Analyzer that checks for mistakes
// using HTTP responses.
package httpresponse

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/internal/typesinternal"
)

const Doc = `check for mistakes using HTTP responses

A common mistake when using the net/http package is to defer a function
call to close the http.Response Body before checking the error that
determines whether the response is valid:

	resp, err := http.Head(url)
	defer resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	// (defer statement belongs here)

This checker helps uncover latent nil dereference bugs by reporting a
diagnostic for such mistakes.`

var Analyzer = &analysis.Analyzer{
	Name:     "httpresponse",
	Doc:      Doc,
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/httpresponse",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Fast path: if the package doesn't import net/http,
	// skip the traversal.
	if !analysisutil.Imports(pass.Pkg, "net/http") {
		return nil, nil
	}

	nodeFilter := []ast.Node{
		(*ast.CallExpr)(nil),
	}
	inspect.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		if !isHTTPFuncOrMethodOnClient(pass.TypesInfo, call) {
			return true // the function call is not related to this check.
		}

		// Find the innermost containing block, and get the list
		// of statements starting with the one containing call.
		stmts, ncalls := restOfBlock(stack)
		if len(stmts) < 2 {
			// The call to the http function is the last statement of the block.
			return true
		}

		// Skip cases in which the call is wrapped by another (#52661).
		// Example:  resp, err := checkError(http.Get(url))
		if ncalls > 1 {
			return true
		}

		asg, ok := stmts[0].(*ast.AssignStmt)
		if !ok {
			return true // the first statement is not assignment.
		}

		resp := rootIdent(asg.Lhs[0])
		if resp == nil {
			return true // could not find the http.Response in the assignment.
		}

		def, ok := stmts[1].(*ast.DeferStmt)
		if !ok {
			return true // the following statement is not a defer.
		}
		root := rootIdent(def.Call.Fun)
		if root == nil {
			return true // could not find the receiver of the defer call.
		}

		if resp.Obj == root.Obj {
			pass.ReportRangef(root, "using %s before checking for errors", resp.Name)
		}
		return true
	})
	return nil, nil
}

// isHTTPFuncOrMethodOnClient checks whether the given call expression is on
// either a function of the net/http package or a method of http.Client that
// returns (*http.Response, error).
func isHTTPFuncOrMethodOnClient(info *types.Info, expr *ast.CallExpr) bool {
	fun, _ := expr.Fun.(*ast.SelectorExpr)
	sig, _ := info.Types[fun].Type.(*types.Signature)
	if sig == nil {
		return false // the call is not of the form x.f()
	}

	res := sig.Results()
	if res.Len() != 2 {
		return false // the function called does not return two values.
	}
	isPtr, named := typesinternal.ReceiverNamed(res.At(0))
	if !isPtr || named == nil || !analysisutil.IsNamedType(named, "net/http", "Response") {
		return false // the first return type is not *http.Response.
	}

	errorType := types.Universe.Lookup("error").Type()
	if !types.Identical(res.At(1).Type(), errorType) {
		return false // the second return type is not error
	}

	typ := info.Types[fun.X].Type
	if typ == nil {
		id, ok := fun.X.(*ast.Ident)
		return ok && id.Name == "http" // function in net/http package.
	}

	if analysisutil.IsNamedType(typ, "net/http", "Client") {
		return true // method on http.Client.
	}
	ptr, ok := types.Unalias(typ).(*types.Pointer)
	return ok && analysisutil.IsNamedType(ptr.Elem(), "net/http", "Client") // method on *http.Client.
}

// restOfBlock, given a traversal stack, finds the innermost containing
// block and returns the suffix of its statements starting with the current
// node, along with the number of call expressions encountered.
func restOfBlock(stack []ast.Node) ([]ast.Stmt, int) {
	var ncalls int
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			for j, v := range b.List {
				if v == stack[i+1] {
					return b.List[j:], ncalls
				}
			}
			break
		}

		if _, ok := stack[i].(*ast.CallExpr); ok {
			ncalls++
		}
	}
	return nil, 0
}

// rootIdent finds the root identifier x in a chain of selections x.y.z, or nil if not found.
func rootIdent(n ast.Node) *ast.Ident {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		return rootIdent(n.X)
	case *ast.Ident:
		return n
	default:
		return nil
	}
}
