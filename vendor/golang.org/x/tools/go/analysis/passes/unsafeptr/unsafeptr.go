// Copyright 2014 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package unsafeptr defines an Analyzer that checks for invalid
// conversions of uintptr to unsafe.Pointer.
package unsafeptr

import (
	_ "embed"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "unsafeptr",
	Doc:      analysisutil.MustExtractDoc(doc, "unsafeptr"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/unsafeptr",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.CallExpr)(nil),
		(*ast.StarExpr)(nil),
		(*ast.UnaryExpr)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		switch x := n.(type) {
		case *ast.CallExpr:
			if len(x.Args) == 1 &&
				hasBasicType(pass.TypesInfo, x.Fun, types.UnsafePointer) &&
				hasBasicType(pass.TypesInfo, x.Args[0], types.Uintptr) &&
				!isSafeUintptr(pass.TypesInfo, x.Args[0]) {
				pass.ReportRangef(x, "possible misuse of unsafe.Pointer")
			}
		case *ast.StarExpr:
			if t := pass.TypesInfo.Types[x].Type; isReflectHeader(t) {
				pass.ReportRangef(x, "possible misuse of %s", t)
			}
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return
			}
			if t := pass.TypesInfo.Types[x.X].Type; isReflectHeader(t) {
				pass.ReportRangef(x, "possible misuse of %s", t)
			}
		}
	})
	return nil, nil
}

// isSafeUintptr reports whether x - already known to be a uintptr -
// is safe to convert to unsafe.Pointer.
func isSafeUintptr(info *types.Info, x ast.Expr) bool {
	// Check unsafe.Pointer safety rules according to
	// https://golang.org/pkg/unsafe/#Pointer.

	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		// "(6) Conversion of a reflect.SliceHeader or
		// reflect.StringHeader Data field to or from Pointer."
		if x.Sel.Name != "Data" {
			break
		}
		// reflect.SliceHeader and reflect.StringHeader are okay,
		// but only if they are pointing at a real slice or string.
		// It's not okay to do:
		//	var x SliceHeader
		//	x.Data = uintptr(unsafe.Pointer(...))
		//	... use x ...
		//	p := unsafe.Pointer(x.Data)
		// because in the middle the garbage collector doesn't
		// see x.Data as a pointer and so x.Data may be dangling
		// by the time we get to the conversion at the end.
		// For now approximate by saying that *Header is okay
		// but Header is not.
		pt, ok := types.Unalias(info.Types[x.X].Type).(*types.Pointer)
		if ok && isReflectHeader(pt.Elem()) {
			return true
		}

	case *ast.CallExpr:
		// "(5) Conversion of the result of reflect.Value.Pointer or
		// reflect.Value.UnsafeAddr from uintptr to Pointer."
		if len(x.Args) != 0 {
			break
		}
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok {
			break
		}
		switch sel.Sel.Name {
		case "Pointer", "UnsafeAddr":
			if analysisutil.IsNamedType(info.Types[sel.X].Type, "reflect", "Value") {
				return true
			}
		}
	}

	// "(3) Conversion of a Pointer to a uintptr and back, with arithmetic."
	return isSafeArith(info, x)
}

// isSafeArith reports whether x is a pointer arithmetic expression that is safe
// to convert to unsafe.Pointer.
func isSafeArith(info *types.Info, x ast.Expr) bool {
	switch x := ast.Unparen(x).(type) {
	case *ast.CallExpr:
		// Base case: initial conversion from unsafe.Pointer to uintptr.
		return len(x.Args) == 1 &&
			hasBasicType(info, x.Fun, types.Uintptr) &&
			hasBasicType(info, x.Args[0], types.UnsafePointer)

	case *ast.BinaryExpr:
		// "It is valid both to add and to subtract offsets from a
		// pointer in this way. It is also valid to use &^ to round
		// pointers, usually for alignment."
		switch x.Op {
		case token.ADD, token.SUB, token.AND_NOT:
			// TODO(mdempsky): Match compiler
			// semantics. ADD allows a pointer on either
			// side; SUB and AND_NOT don't care about RHS.
			return isSafeArith(info, x.X) && !isSafeArith(info, x.Y)
		}
	}

	return false
}

// hasBasicType reports whether x's type is a types.Basic with the given kind.
func hasBasicType(info *types.Info, x ast.Expr, kind types.BasicKind) bool {
	t := info.Types[x].Type
	if t != nil {
		t = t.Underlying()
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == kind
}

// isReflectHeader reports whether t is reflect.SliceHeader or reflect.StringHeader.
func isReflectHeader(t types.Type) bool {
	return analysisutil.IsNamedType(t, "reflect", "SliceHeader", "StringHeader")
}
