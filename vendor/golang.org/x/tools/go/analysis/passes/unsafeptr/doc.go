// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package unsafeptr defines an Analyzer that checks for invalid
// conversions of uintptr to unsafe.Pointer.
//
// # Analyzer unsafeptr
//
// unsafeptr: check for invalid conversions of uintptr to unsafe.Pointer
//
// The unsafeptr analyzer reports likely incorrect uses of unsafe.Pointer
// to convert integers to pointers. A conversion from uintptr to
// unsafe.Pointer is invalid if it implies that there is a uintptr-typed
// word in memory that holds a pointer value, because that word will be
// invisible to stack copying and to the garbage collector.
package unsafeptr
