// Copyright 2018 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// The errorsas package defines an Analyzer that checks that the second argument to
// errors.As is a pointer to a type implementing error.
package errorsas

import (
	"errors"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

const Doc = `report passing non-pointer or non-error values to errors.As

The errorsas analysis reports calls to errors.As where the type
of the second argument is not a pointer to a type implementing error.`

var Analyzer = &analysis.Analyzer{
	Name:     "errorsas",
	Doc:      Doc,
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/errorsas",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	switch pass.Pkg.Path() {
	case "errors", "errors_test":
		// These packages know how to use their own APIs.
		// Sometimes they are testing what happens to incorrect programs.
		return nil, nil
	}

	if !analysisutil.Imports(pass.Pkg, "errors") {
		return nil, nil // doesn't directly import errors
	}

	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.CallExpr)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if !analysisutil.IsFunctionNamed(fn, "errors", "As") {
			return
		}
		if len(call.Args) < 2 {
			return // not enough arguments, e.g. called with return values of another function
		}
		if err := checkAsTarget(pass, call.Args[1]); err != nil {
			pass.ReportRangef(call, "%v", err)
		}
	})
	return nil, nil
}

var errorType = types.Universe.Lookup("error").Type()

// checkAsTarget reports an error if the second argument to errors.As is invalid.
func checkAsTarget(pass *analysis.Pass, e ast.Expr) error {
	t := pass.TypesInfo.Types[e].Type
	if it, ok := t.Underlying().(*types.Interface); ok && it.NumMethods() == 0 {
		// A target of interface{} is always allowed, since it often indicates
		// a value forwarded from another source.
		return nil
	}
	pt, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return errors.New("second argument to errors.As must be a non-nil pointer to either a type that implements error, or to any interface type")
	}
	if pt.Elem() == errorType {
		return errors.New("second argument to errors.As should not be *error")
	}
	_, ok = pt.Elem().Underlying().(*types.Interface)
	if ok || types.Implements(pt.Elem(), errorType.Underlying().(*types.Interface)) {
		return nil
	}
	return errors.New("second argument to errors.As must be a non-nil pointer to either a type that implements error, or to any interface type")
}
