// Copyright 2013 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package assign

// TODO(adonovan): check also for assignments to struct fields inside
// methods that are on T instead of *T.

import (
	_ "embed"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "assign",
	Doc:      analysisutil.MustExtractDoc(doc, "assign"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/assign",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.AssignStmt)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		stmt := n.(*ast.AssignStmt)
		if stmt.Tok != token.ASSIGN {
			return // ignore :=
		}
		if len(stmt.Lhs) != len(stmt.Rhs) {
			// If LHS and RHS have different cardinality, they can't be the same.
			return
		}
		for i, lhs := range stmt.Lhs {
			rhs := stmt.Rhs[i]
			if analysisutil.HasSideEffects(pass.TypesInfo, lhs) ||
				analysisutil.HasSideEffects(pass.TypesInfo, rhs) ||
				isMapIndex(pass.TypesInfo, lhs) {
				continue // expressions may not be equal
			}
			if reflect.TypeOf(lhs) != reflect.TypeOf(rhs) {
				continue // short-circuit the heavy-weight gofmt check
			}
			le := analysisutil.Format(pass.Fset, lhs)
			re := analysisutil.Format(pass.Fset, rhs)
			if le == re {
				pass.Report(analysis.Diagnostic{
					Pos: stmt.Pos(), Message: fmt.Sprintf("self-assignment of %s to %s", re, le),
					SuggestedFixes: []analysis.SuggestedFix{
						{Message: "Remove", TextEdits: []analysis.TextEdit{
							{Pos: stmt.Pos(), End: stmt.End(), NewText: []byte{}},
						}},
					},
				})
			}
		}
	})

	return nil, nil
}

// isMapIndex returns true if e is a map index expression.
func isMapIndex(info *types.Info, e ast.Expr) bool {
	if idx, ok := ast.Unparen(e).(*ast.IndexExpr); ok {
		if typ := info.Types[idx.X].Type; typ != nil {
			_, ok := typ.Underlying().(*types.Map)
			return ok
		}
	}
	return false
}
