// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package assign defines an Analyzer that detects useless assignments.
//
// # Analyzer assign
//
// assign: check for useless assignments
//
// This checker reports assignments of the form x = x or a[i] = a[i].
// These are almost always useless, and even when they aren't they are
// usually a mistake.
package assign
