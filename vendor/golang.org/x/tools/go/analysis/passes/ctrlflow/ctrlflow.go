// Copyright 2018 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package ctrlflow is an analysis that provides a syntactic
// control-flow graph (CFG) for the body of a function.
// It records whether a function cannot return.
// By itself, it does not report any diagnostics.
package ctrlflow

import (
	"go/ast"
	"go/types"
	"log"
	"reflect"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"
)

var Analyzer = &analysis.Analyzer{
	Name:       "ctrlflow",
	Doc:        "build a control-flow graph",
	URL:        "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/ctrlflow",
	Run:        run,
	ResultType: reflect.TypeOf(new(CFGs)),
	FactTypes:  []analysis.Fact{new(noReturn)},
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
}

// noReturn is a fact indicating that a function does not return.
type noReturn struct{}

func (*noReturn) AFact() {}

func (*noReturn) String() string { return "noReturn" }

// A CFGs holds the control-flow graphs
// for all the functions of the current package.
type CFGs struct {
	defs      map[*ast.Ident]types.Object // from Pass.TypesInfo.Defs
	funcDecls map[*types.Func]*declInfo
	funcLits  map[*ast.FuncLit]*litInfo
	pass      *analysis.Pass // transient; nil after construction
}

// CFGs has two maps: funcDecls for named functions and funcLits for
// unnamed ones. Unlike funcLits, the funcDecls map is not keyed by its
// syntax node, *ast.FuncDecl, because callMayReturn needs to do a
// look-up by *types.Func, and you can get from an *ast.FuncDecl to a
// *types.Func but not the other way.

type declInfo struct {
	decl     *ast.FuncDecl
	cfg      *cfg.CFG // iff decl.Body != nil
	started  bool     // to break cycles
	noReturn bool
}

type litInfo struct {
	cfg      *cfg.CFG
	noReturn bool
}

// FuncDecl returns the control-flow graph for a named function.
// It returns nil if decl.Body==nil.
func (c *CFGs) FuncDecl(decl *ast.FuncDecl) *cfg.CFG {
	if decl.Body == nil {
		return nil
	}
	fn := c.defs[decl.Name].(*types.Func)
	return c.funcDecls[fn].cfg
}

// FuncLit returns the control-flow graph for a literal function.
func (c *CFGs) FuncLit(lit *ast.FuncLit) *cfg.CFG {
	return c.funcLits[lit].cfg
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Because CFG construction consumes and produces noReturn
	// facts, CFGs for exported FuncDecls must be built before 'run'
	// returns; we cannot construct them lazily.
	// (We could build CFGs for FuncLits lazily,
	// but the benefit is marginal.)

	// Pass 1. Map types.Funcs to ast.FuncDecls in this package.
	funcDecls := make(map[*types.Func]*declInfo) // functions and methods
	funcLits := make(map[*ast.FuncLit]*litInfo)

	var decls []*types.Func // keys(funcDecls), in order
	var lits []*ast.FuncLit // keys(funcLits), in order

	nodeFilter := []ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			// Type information may be incomplete.
			if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
				funcDecls[fn] = &declInfo{decl: n}
				decls = append(decls, fn)
			}
		case *ast.FuncLit:
			funcLits[n] = new(litInfo)
			lits = append(lits, n)
		}
	})

	c := &CFGs{
		defs:      pass.TypesInfo.Defs,
		funcDecls: funcDecls,
		funcLits:  funcLits,
		pass:      pass,
	}

	// Pass 2. Build CFGs.

	// Build CFGs for named functions.
	// Cycles in the static call graph are broken
	// arbitrarily but deterministically.
	// We create noReturn facts as discovered.
	for _, fn := range decls {
		c.buildDecl(fn, funcDecls[fn])
	}

	// Build CFGs for literal functions.
	// These aren't relevant to facts (since they aren't named)
	// but are required for the CFGs.FuncLit API.
	for _, lit := range lits {
		li := funcLits[lit]
		if li.cfg == nil {
			li.cfg = cfg.New(lit.Body, c.callMayReturn)
			if !hasReachableReturn(li.cfg) {
				li.noReturn = true
			}
		}
	}

	// All CFGs are now built.
	c.pass = nil

	return c, nil
}

// di.cfg may be nil on return.
func (c *CFGs) buildDecl(fn *types.Func, di *declInfo) {
	// buildDecl may call itself recursively for the same function,
	// because cfg.New is passed the callMayReturn method, which
	// builds the CFG of the callee, leading to recursion.
	// The buildDecl call tree thus resembles the static call graph.
	// We mark each node when we start working on it to break cycles.

	if !di.started { // break cycle
		di.started = true

		if isIntrinsicNoReturn(fn) {
			di.noReturn = true
		}
		if di.decl.Body != nil {
			di.cfg = cfg.New(di.decl.Body, c.callMayReturn)
			if !hasReachableReturn(di.cfg) {
				di.noReturn = true
			}
		}
		if di.noReturn {
			c.pass.ExportObjectFact(fn, new(noReturn))
		}

		// debugging
		if false {
			log.Printf("CFG for %s:\n%s (noreturn=%t)\n", fn, di.cfg.Format(c.pass.Fset), di.noReturn)
		}
	}
}

// callMayReturn reports whether the called function may return.
// It is passed to the CFG builder.
func (c *CFGs) callMayReturn(call *ast.CallExpr) (r bool) {
	if id, ok := call.Fun.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == panicBuiltin {
		return false // panic never returns
	}

	// Is this a static call? Also includes static functions
	// parameterized by a type. Such functions may or may not
	// return depending on the parameter type, but in some
	// cases the answer is definite. We let ctrlflow figure
	// that out.
	fn := typeutil.StaticCallee(c.pass.TypesInfo, call)
	if fn == nil {
		return true // callee not statically known; be conservative
	}

	// Function or method declared in this package?
	if di, ok := c.funcDecls[fn]; ok {
		c.buildDecl(fn, di)
		return !di.noReturn
	}

	// Not declared in this package.
	// Is there a fact from another package?
	return !c.pass.ImportObjectFact(fn, new(noReturn))
}

var panicBuiltin = types.Universe.Lookup("panic").(*types.Builtin)

func hasReachableReturn(g *cfg.CFG) bool {
	for _, b := range g.Blocks {
		if b.Live && b.Return() != nil {
			return true
		}
	}
	return false
}

// isIntrinsicNoReturn reports whether a function intrinsically never
// returns because it stops execution of the calling thread.
// It is the base case in the recursion.
func isIntrinsicNoReturn(fn *types.Func) bool {
	// Add functions here as the need arises, but don't allocate memory.
	path, name := fn.Pkg().Path(), fn.Name()
	return path == "syscall" && (name == "Exit" || name == "ExitProcess" || name == "ExitThread") ||
		path == "runtime" && name == "Goexit"
}
