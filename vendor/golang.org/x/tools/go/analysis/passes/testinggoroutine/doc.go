// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package testinggoroutine defines an Analyzerfor detecting calls to
// Fatal from a test goroutine.
//
// # Analyzer testinggoroutine
//
// testinggoroutine: report calls to (*testing.T).Fatal from goroutines started by a test
//
// Functions that abruptly terminate a test, such as the Fatal, Fatalf, FailNow, and
// Skip{,f,Now} methods of *testing.T, must be called from the test goroutine itself.
// This checker detects calls to these functions that occur within a goroutine
// started by the test. For example:
//
//	func TestFoo(t *testing.T) {
//	    go func() {
//	        t.Fatal("oops") // error: (*T).Fatal called from non-test goroutine
//	    }()
//	}
package testinggoroutine
