// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package testinggoroutine

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/internal/typeparams"
)

// AST and types utilities that not specific to testinggoroutines.

// localFunctionDecls returns a mapping from *types.Func to *ast.FuncDecl in files.
func localFunctionDecls(info *types.Info, files []*ast.File) func(*types.Func) *ast.FuncDecl {
	var fnDecls map[*types.Func]*ast.FuncDecl // computed lazily
	return func(f *types.Func) *ast.FuncDecl {
		if f != nil && fnDecls == nil {
			fnDecls = make(map[*types.Func]*ast.FuncDecl)
			for _, file := range files {
				for _, decl := range file.Decls {
					if fnDecl, ok := decl.(*ast.FuncDecl); ok {
						if fn, ok := info.Defs[fnDecl.Name].(*types.Func); ok {
							fnDecls[fn] = fnDecl
						}
					}
				}
			}
		}
		// TODO: set f = f.Origin() here.
		return fnDecls[f]
	}
}

// isMethodNamed returns true if f is a method defined
// in package with the path pkgPath with a name in names.
func isMethodNamed(f *types.Func, pkgPath string, names ...string) bool {
	if f == nil {
		return false
	}
	if f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if f.Type().(*types.Signature).Recv() == nil {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

func funcIdent(fun ast.Expr) *ast.Ident {
	switch fun := ast.Unparen(fun).(type) {
	case *ast.IndexExpr, *ast.IndexListExpr:
		x, _, _, _ := typeparams.UnpackIndexExpr(fun) // necessary?
		id, _ := x.(*ast.Ident)
		return id
	case *ast.Ident:
		return fun
	default:
		return nil
	}
}

// funcLitInScope returns a FuncLit that id is at least initially assigned to.
//
// TODO: This is closely tied to id.Obj which is deprecated.
func funcLitInScope(id *ast.Ident) *ast.FuncLit {
	// Compare to (*ast.Object).Pos().
	if id.Obj == nil {
		return nil
	}
	var rhs ast.Expr
	switch d := id.Obj.Decl.(type) {
	case *ast.AssignStmt:
		for i, x := range d.Lhs {
			if ident, isIdent := x.(*ast.Ident); isIdent && ident.Name == id.Name && i < len(d.Rhs) {
				rhs = d.Rhs[i]
			}
		}
	case *ast.ValueSpec:
		for i, n := range d.Names {
			if n.Name == id.Name && i < len(d.Values) {
				rhs = d.Values[i]
			}
		}
	}
	lit, _ := rhs.(*ast.FuncLit)
	return lit
}
