// Copyright 2020 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package testinggoroutine

import (
	_ "embed"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

//go:embed doc.go
var doc string

var reportSubtest bool

func init() {
	Analyzer.Flags.BoolVar(&reportSubtest, "subtest", false, "whether to check if t.Run subtest is terminated correctly; experimental")
}

var Analyzer = &analysis.Analyzer{
	Name:     "testinggoroutine",
	Doc:      analysisutil.MustExtractDoc(doc, "testinggoroutine"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/testinggoroutine",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	if !analysisutil.Imports(pass.Pkg, "testing") {
		return nil, nil
	}

	toDecl := localFunctionDecls(pass.TypesInfo, pass.Files)

	// asyncs maps nodes whose statements will be executed concurrently
	// with respect to some test function, to the call sites where they
	// are invoked asynchronously. There may be multiple such call sites
	// for e.g. test helpers.
	asyncs := make(map[ast.Node][]*asyncCall)
	var regions []ast.Node
	addCall := func(c *asyncCall) {
		if c != nil {
			r := c.region
			if asyncs[r] == nil {
				regions = append(regions, r)
			}
			asyncs[r] = append(asyncs[r], c)
		}
	}

	// Collect all of the go callee() and t.Run(name, callee) extents.
	inspect.Nodes([]ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.GoStmt)(nil),
		(*ast.CallExpr)(nil),
	}, func(node ast.Node, push bool) bool {
		if !push {
			return false
		}
		switch node := node.(type) {
		case *ast.FuncDecl:
			return hasBenchmarkOrTestParams(node)

		case *ast.GoStmt:
			c := goAsyncCall(pass.TypesInfo, node, toDecl)
			addCall(c)

		case *ast.CallExpr:
			c := tRunAsyncCall(pass.TypesInfo, node)
			addCall(c)
		}
		return true
	})

	// Check for t.Forbidden() calls within each region r that is a
	// callee in some go r() or a t.Run("name", r).
	//
	// Also considers a special case when r is a go t.Forbidden() call.
	for _, region := range regions {
		ast.Inspect(region, func(n ast.Node) bool {
			if n == region {
				return true // always descend into the region itself.
			} else if asyncs[n] != nil {
				return false // will be visited by another region.
			}

			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			x, sel, fn := forbiddenMethod(pass.TypesInfo, call)
			if x == nil {
				return true
			}

			for _, e := range asyncs[region] {
				if !withinScope(e.scope, x) {
					forbidden := formatMethod(sel, fn) // e.g. "(*testing.T).Forbidden

					var context string
					var where analysis.Range = e.async // Put the report at the go fun() or t.Run(name, fun).
					if _, local := e.fun.(*ast.FuncLit); local {
						where = call // Put the report at the t.Forbidden() call.
					} else if id, ok := e.fun.(*ast.Ident); ok {
						context = fmt.Sprintf(" (%s calls %s)", id.Name, forbidden)
					}
					if _, ok := e.async.(*ast.GoStmt); ok {
						pass.ReportRangef(where, "call to %s from a non-test goroutine%s", forbidden, context)
					} else if reportSubtest {
						pass.ReportRangef(where, "call to %s on %s defined outside of the subtest%s", forbidden, x.Name(), context)
					}
				}
			}
			return true
		})
	}

	return nil, nil
}

func hasBenchmarkOrTestParams(fnDecl *ast.FuncDecl) bool {
	// Check that the function's arguments include "*testing.T" or "*testing.B".
	params := fnDecl.Type.Params.List

	for _, param := range params {
		if _, ok := typeIsTestingDotTOrB(param.Type); ok {
			return true
		}
	}

	return false
}

func typeIsTestingDotTOrB(expr ast.Expr) (string, bool) {
	starExpr, ok := expr.(*ast.StarExpr)
	if !ok {
		return "", false
	}
	selExpr, ok := starExpr.X.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	varPkg := selExpr.X.(*ast.Ident)
	if varPkg.Name != "testing" {
		return "", false
	}

	varTypeName := selExpr.Sel.Name
	ok = varTypeName == "B" || varTypeName == "T"
	return varTypeName, ok
}

// asyncCall describes a region of code that needs to be checked for
// t.Forbidden() calls as it is started asynchronously from an async
// node go fun() or t.Run(name, fun).
type asyncCall struct {
	region ast.Node // region of code to check for t.Forbidden() calls.
	async  ast.Node // *ast.GoStmt or *ast.CallExpr (for t.Run)
	scope  ast.Node // Report t.Forbidden() if t is not declared within scope.
	fun    ast.Expr // fun in go fun() or t.Run(name, fun)
}

// withinScope returns true if x.Pos() is in [scope.Pos(), scope.End()].
func withinScope(scope ast.Node, x *types.Var) bool {
	if scope != nil {
		return x.Pos() != token.NoPos && scope.Pos() <= x.Pos() && x.Pos() <= scope.End()
	}
	return false
}

// goAsyncCall returns the extent of a call from a go fun() statement.
func goAsyncCall(info *types.Info, goStmt *ast.GoStmt, toDecl func(*types.Func) *ast.FuncDecl) *asyncCall {
	call := goStmt.Call

	fun := ast.Unparen(call.Fun)
	if id := funcIdent(fun); id != nil {
		if lit := funcLitInScope(id); lit != nil {
			return &asyncCall{region: lit, async: goStmt, scope: nil, fun: fun}
		}
	}

	if fn := typeutil.StaticCallee(info, call); fn != nil { // static call or method in the package?
		if decl := toDecl(fn); decl != nil {
			return &asyncCall{region: decl, async: goStmt, scope: nil, fun: fun}
		}
	}

	// Check go statement for go t.Forbidden() or go func(){t.Forbidden()}().
	return &asyncCall{region: goStmt, async: goStmt, scope: nil, fun: fun}
}

// tRunAsyncCall returns the extent of a call from a t.Run("name", fun) expression.
func tRunAsyncCall(info *types.Info, call *ast.CallExpr) *asyncCall {
	if len(call.Args) != 2 {
		return nil
	}
	run := typeutil.Callee(info, call)
	if run, ok := run.(*types.Func); !ok || !isMethodNamed(run, "testing", "Run") {
		return nil
	}

	fun := ast.Unparen(call.Args[1])
	if lit, ok := fun.(*ast.FuncLit); ok { // function lit?
		return &asyncCall{region: lit, async: call, scope: lit, fun: fun}
	}

	if id := funcIdent(fun); id != nil {
		if lit := funcLitInScope(id); lit != nil { // function lit in variable?
			return &asyncCall{region: lit, async: call, scope: lit, fun: fun}
		}
	}

	// Check within t.Run(name, fun) for calls to t.Forbidden,
	// e.g. t.Run(name, func(t *testing.T){ t.Forbidden() })
	return &asyncCall{region: call, async: call, scope: fun, fun: fun}
}

var forbidden = []string{
	"FailNow",
	"Fatal",
	"Fatalf",
	"Skip",
	"Skipf",
	"SkipNow",
}

// forbiddenMethod decomposes a call x.m() into (x, x.m, m) where
// x is a variable, x.m is a selection, and m is the static callee m.
// Returns (nil, nil, nil) if call is not of this form.
func forbiddenMethod(info *types.Info, call *ast.CallExpr) (*types.Var, *types.Selection, *types.Func) {
	// Compare to typeutil.StaticCallee.
	fun := ast.Unparen(call.Fun)
	selExpr, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return nil, nil, nil
	}
	sel := info.Selections[selExpr]
	if sel == nil {
		return nil, nil, nil
	}

	var x *types.Var
	if id, ok := ast.Unparen(selExpr.X).(*ast.Ident); ok {
		x, _ = info.Uses[id].(*types.Var)
	}
	if x == nil {
		return nil, nil, nil
	}

	fn, _ := sel.Obj().(*types.Func)
	if fn == nil || !isMethodNamed(fn, "testing", forbidden...) {
		return nil, nil, nil
	}
	return x, sel, fn
}

func formatMethod(sel *types.Selection, fn *types.Func) string {
	var ptr string
	rtype := sel.Recv()
	if p, ok := types.Unalias(rtype).(*types.Pointer); ok {
		ptr = "*"
		rtype = p.Elem()
	}
	return fmt.Sprintf("(%s%s).%s", ptr, rtype.String(), fn.Name())
}
