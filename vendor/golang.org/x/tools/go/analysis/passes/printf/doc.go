// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package printf defines an Analyzer that checks consistency
// of Printf format strings and arguments.
//
// # Analyzer printf
//
// printf: check consistency of Printf format strings and arguments
//
// The check applies to calls of the formatting functions such as
// [fmt.Printf] and [fmt.Sprintf], as well as any detected wrappers of
// those functions such as [log.Printf]. It reports a variety of
// mistakes such as syntax errors in the format string and mismatches
// (of number and type) between the verbs and their arguments.
//
// See the documentation of the fmt package for the complete set of
// format operators and their operand types.
//
// # Examples
//
// The %d format operator requires an integer operand.
// Here it is incorrectly applied to a string:
//
//	fmt.Printf("%d", "hello") // fmt.Printf format %d has arg "hello" of wrong type string
//
// A call to Printf must have as many operands as there are "verbs" in
// the format string, not too few:
//
//	fmt.Printf("%d") // fmt.Printf format reads arg 1, but call has 0 args
//
// nor too many:
//
//	fmt.Printf("%d", 1, 2) // fmt.Printf call needs 1 arg, but has 2 args
//
// Explicit argument indexes must be no greater than the number of
// arguments:
//
//	fmt.Printf("%[3]d", 1, 2) // fmt.Printf call has invalid argument index 3
//
// The checker also uses a heuristic to report calls to Print-like
// functions that appear to have been intended for their Printf-like
// counterpart:
//
//	log.Print("%d", 123) // log.Print call has possible formatting directive %d
//
// Conversely, it also reports calls to Printf-like functions with a
// non-constant format string and no other arguments:
//
//	fmt.Printf(message) // non-constant format string in call to fmt.Printf
//
// Such calls may have been intended for the function's Print-like
// counterpart: if the value of message happens to contain "%",
// misformatting will occur. In this case, the checker additionally
// suggests a fix to turn the call into:
//
//	fmt.Printf("%s", message)
//
// # Inferred printf wrappers
//
// Functions that delegate their arguments to fmt.Printf are
// considered "printf wrappers"; calls to them are subject to the same
// checking. In this example, logf is a printf wrapper:
//
//	func logf(level int, format string, args ...any) {
//		if enabled(level) {
//			log.Printf(format, args...)
//		}
//	}
//
//	logf(3, "invalid request: %v") // logf format reads arg 1, but call has 0 args
//
// To enable printf checking on a function that is not found by this
// analyzer's heuristics (for example, because control is obscured by
// dynamic method calls), insert a bogus call:
//
//	func MyPrintf(format string, args ...any) {
//		if false {
//			_ = fmt.Sprintf(format, args...) // enable printf checking
//		}
//		...
//	}
//
// # Specifying printf wrappers by flag
//
// The -funcs flag specifies a comma-separated list of names of
// additional known formatting functions or methods. (This legacy flag
// is rarely used due to the automatic inference described above.)
//
// If the name contains a period, it must denote a specific function
// using one of the following forms:
//
//	dir/pkg.Function
//	dir/pkg.Type.Method
//	(*dir/pkg.Type).Method
//
// Otherwise the name is interpreted as a case-insensitive unqualified
// identifier such as "errorf". Either way, if a listed name ends in f, the
// function is assumed to be Printf-like, taking a format string before the
// argument list. Otherwise it is assumed to be Print-like, taking a list
// of arguments with no format string.
package printf
