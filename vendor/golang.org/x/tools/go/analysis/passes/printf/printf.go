// Copyright 2010 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package printf

import (
	"bytes"
	_ "embed"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
	"golang.org/x/tools/internal/typeparams"
	"golang.org/x/tools/internal/versions"
)

func init() {
	Analyzer.Flags.Var(isPrint, "funcs", "comma-separated list of print function names to check")
}

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:       "printf",
	Doc:        analysisutil.MustExtractDoc(doc, "printf"),
	URL:        "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/printf",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	Run:        run,
	ResultType: reflect.TypeOf((*Result)(nil)),
	FactTypes:  []analysis.Fact{new(isWrapper)},
}

// Kind is a kind of fmt function behavior.
type Kind int

const (
	KindNone   Kind = iota // not a fmt wrapper function
	KindPrint              // function behaves like fmt.Print
	KindPrintf             // function behaves like fmt.Printf
	KindErrorf             // function behaves like fmt.Errorf
)

func (kind Kind) String() string {
	switch kind {
	case KindPrint:
		return "print"
	case KindPrintf:
		return "printf"
	case KindErrorf:
		return "errorf"
	}
	return ""
}

// Result is the printf analyzer's result type. Clients may query the result
// to learn whether a function behaves like fmt.Print or fmt.Printf.
type Result struct {
	funcs map[*types.Func]Kind
}

// Kind reports whether fn behaves like fmt.Print or fmt.Printf.
func (r *Result) Kind(fn *types.Func) Kind {
	_, ok := isPrint[fn.FullName()]
	if !ok {
		// Next look up just "printf", for use with -printf.funcs.
		_, ok = isPrint[strings.ToLower(fn.Name())]
	}
	if ok {
		if strings.HasSuffix(fn.Name(), "f") {
			return KindPrintf
		} else {
			return KindPrint
		}
	}

	return r.funcs[fn]
}

// isWrapper is a fact indicating that a function is a print or printf wrapper.
type isWrapper struct{ Kind Kind }

func (f *isWrapper) AFact() {}

func (f *isWrapper) String() string {
	switch f.Kind {
	case KindPrintf:
		return "printfWrapper"
	case KindPrint:
		return "printWrapper"
	case KindErrorf:
		return "errorfWrapper"
	default:
		return "unknownWrapper"
	}
}

func run(pass *analysis.Pass) (any, error) {
	res := &Result{
		funcs: make(map[*types.Func]Kind),
	}
	findPrintfLike(pass, res)
	checkCalls(pass)
	return res, nil
}

type printfWrapper struct {
	obj     *types.Func
	fdecl   *ast.FuncDecl
	format  *types.Var
	args    *types.Var
	callers []printfCaller
	failed  bool // if true, not a printf wrapper
}

type printfCaller struct {
	w    *printfWrapper
	call *ast.CallExpr
}

// maybePrintfWrapper decides whether decl (a declared function) may be a wrapper
// around a fmt.Printf or fmt.Print function. If so it returns a printfWrapper
// function describing the declaration. Later processing will analyze the
// graph of potential printf wrappers to pick out the ones that are true wrappers.
// A function may be a Printf or Print wrapper if its last argument is ...interface{}.
// If the next-to-last argument is a string, then this may be a Printf wrapper.
// Otherwise it may be a Print wrapper.
func maybePrintfWrapper(info *types.Info, decl ast.Decl) *printfWrapper {
	// Look for functions with final argument type ...interface{}.
	fdecl, ok := decl.(*ast.FuncDecl)
	if !ok || fdecl.Body == nil {
		return nil
	}
	fn, ok := info.Defs[fdecl.Name].(*types.Func)
	// Type information may be incomplete.
	if !ok {
		return nil
	}

	sig := fn.Type().(*types.Signature)
	if !sig.Variadic() {
		return nil // not variadic
	}

	params := sig.Params()
	nparams := params.Len() // variadic => nonzero

	// Check final parameter is "args ...interface{}".
	args := params.At(nparams - 1)
	iface, ok := types.Unalias(args.Type().(*types.Slice).Elem()).(*types.Interface)
	if !ok || !iface.Empty() {
		return nil
	}

	// Is second last param 'format string'?
	var format *types.Var
	if nparams >= 2 {
		if p := params.At(nparams - 2); p.Type() == types.Typ[types.String] {
			format = p
		}
	}

	return &printfWrapper{
		obj:    fn,
		fdecl:  fdecl,
		format: format,
		args:   args,
	}
}

// findPrintfLike scans the entire package to find printf-like functions.
func findPrintfLike(pass *analysis.Pass, res *Result) (any, error) {
	// Gather potential wrappers and call graph between them.
	byObj := make(map[*types.Func]*printfWrapper)
	var wrappers []*printfWrapper
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			w := maybePrintfWrapper(pass.TypesInfo, decl)
			if w == nil {
				continue
			}
			byObj[w.obj] = w
			wrappers = append(wrappers, w)
		}
	}

	// Walk the graph to figure out which are really printf wrappers.
	for _, w := range wrappers {
		// Scan function for calls that could be to other printf-like functions.
		ast.Inspect(w.fdecl.Body, func(n ast.Node) bool {
			if w.failed {
				return false
			}

			// TODO: Relax these checks; issue 26555.
			if assign, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range assign.Lhs {
					if match(pass.TypesInfo, lhs, w.format) ||
						match(pass.TypesInfo, lhs, w.args) {
						// Modifies the format
						// string or args in
						// some way, so not a
						// simple wrapper.
						w.failed = true
						return false
					}
				}
			}
			if un, ok := n.(*ast.UnaryExpr); ok && un.Op == token.AND {
				if match(pass.TypesInfo, un.X, w.format) ||
					match(pass.TypesInfo, un.X, w.args) {
					// Taking the address of the
					// format string or args,
					// so not a simple wrapper.
					w.failed = true
					return false
				}
			}

			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 || !match(pass.TypesInfo, call.Args[len(call.Args)-1], w.args) {
				return true
			}

			fn, kind := printfNameAndKind(pass, call)
			if kind != 0 {
				checkPrintfFwd(pass, w, call, kind, res)
				return true
			}

			// If the call is to another function in this package,
			// maybe we will find out it is printf-like later.
			// Remember this call for later checking.
			if fn != nil && fn.Pkg() == pass.Pkg && byObj[fn] != nil {
				callee := byObj[fn]
				callee.callers = append(callee.callers, printfCaller{w, call})
			}

			return true
		})
	}
	return nil, nil
}

func match(info *types.Info, arg ast.Expr, param *types.Var) bool {
	id, ok := arg.(*ast.Ident)
	return ok && info.ObjectOf(id) == param
}

// checkPrintfFwd checks that a printf-forwarding wrapper is forwarding correctly.
// It diagnoses writing fmt.Printf(format, args) instead of fmt.Printf(format, args...).
func checkPrintfFwd(pass *analysis.Pass, w *printfWrapper, call *ast.CallExpr, kind Kind, res *Result) {
	matched := kind == KindPrint ||
		kind != KindNone && len(call.Args) >= 2 && match(pass.TypesInfo, call.Args[len(call.Args)-2], w.format)
	if !matched {
		return
	}

	if !call.Ellipsis.IsValid() {
		typ, ok := pass.TypesInfo.Types[call.Fun].Type.(*types.Signature)
		if !ok {
			return
		}
		if len(call.Args) > typ.Params().Len() {
			// If we're passing more arguments than what the
			// print/printf function can take, adding an ellipsis
			// would break the program. For example:
			//
			//   func foo(arg1 string, arg2 ...interface{}) {
			//       fmt.Printf("%s %v", arg1, arg2)
			//   }
			return
		}
		desc := "printf"
		if kind == KindPrint {
			desc = "print"
		}
		pass.ReportRangef(call, "missing ... in args forwarded to %s-like function", desc)
		return
	}
	fn := w.obj
	var fact isWrapper
	if !pass.ImportObjectFact(fn, &fact) {
		fact.Kind = kind
		pass.ExportObjectFact(fn, &fact)
		res.funcs[fn] = kind
		for _, caller := range w.callers {
			checkPrintfFwd(pass, caller.w, caller.call, kind, res)
		}
	}
}

// isPrint records the print functions.
// If a key ends in 'f' then it is assumed to be a formatted print.
//
// Keys are either values returned by (*types.Func).FullName,
// or case-insensitive identifiers such as "errorf".
//
// The -funcs flag adds to this set.
//
// The set below includes facts for many important standard library
// functions, even though the analysis is capable of deducing that, for
// example, fmt.Printf forwards to fmt.Fprintf. We avoid relying on the
// driver applying analyzers to standard packages because "go vet" does
// not do so with gccgo, and nor do some other build systems.
var isPrint = stringSet{
	"fmt.Appendf":  true,
	"fmt.Append":   true,
	"fmt.Appendln": true,
	"fmt.Errorf":   true,
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	"fmt.Sprint":   true,
	"fmt.Sprintf":  true,
	"fmt.Sprintln": true,

	"runtime/trace.Logf": true,

	"log.Print":             true,
	"log.Printf":            true,
	"log.Println":           true,
	"log.Fatal":             true,
	"log.Fatalf":            true,
	"log.Fatalln":           true,
	"log.Panic":             true,
	"log.Panicf":            true,
	"log.Panicln":           true,
	"(*log.Logger).Fatal":   true,
	"(*log.Logger).Fatalf":  true,
	"(*log.Logger).Fatalln": true,
	"(*log.Logger).Panic":   true,
	"(*log.Logger).Panicf":  true,
	"(*log.Logger).Panicln": true,
	"(*log.Logger).Print":   true,
	"(*log.Logger).Printf":  true,
	"(*log.Logger).Println": true,

	"(*testing.common).Error":  true,
	"(*testing.common).Errorf": true,
	"(*testing.common).Fatal":  true,
	"(*testing.common).Fatalf": true,
	"(*testing.common).Log":    true,
	"(*testing.common).Logf":   true,
	"(*testing.common).Skip":   true,
	"(*testing.common).Skipf":  true,
	// *testing.T and B are detected by induction, but testing.TB is
	// an interface and the inference can't follow dynamic calls.
	"(testing.TB).Error":  true,
	"(testing.TB).Errorf": true,
	"(testing.TB).Fatal":  true,
	"(testing.TB).Fatalf": true,
	"(testing.TB).Log":    true,
	"(testing.TB).Logf":   true,
	"(testing.TB).Skip":   true,
	"(testing.TB).Skipf":  true,
}

// formatStringIndex returns the index of the format string (the last
// non-variadic parameter) within the given printf-like call
// expression, or -1 if unknown.
func formatStringIndex(pass *analysis.Pass, call *ast.CallExpr) int {
	typ := pass.TypesInfo.Types[call.Fun].Type
	if typ == nil {
		return -1 // missing type
	}
	sig, ok := typ.(*types.Signature)
	if !ok {
		return -1 // ill-typed
	}
	if !sig.Variadic() {
		// Skip checking non-variadic functions.
		return -1
	}
	idx := sig.Params().Len() - 2
	if idx < 0 {
		// Skip checking variadic functions without
		// fixed arguments.
		return -1
	}
	return idx
}

// stringConstantExpr returns expression's string constant value.
//
// ("", false) is returned if expression isn't a string
// constant.
func stringConstantExpr(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	lit := pass.TypesInfo.Types[expr].Value
	if lit != nil && lit.Kind() == constant.String {
		return constant.StringVal(lit), true
	}
	return "", false
}

// checkCalls triggers the print-specific checks for calls that invoke a print
// function.
func checkCalls(pass *analysis.Pass) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.File)(nil),
		(*ast.CallExpr)(nil),
	}

	var fileVersion string // for selectively suppressing checks; "" if unknown.
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			fileVersion = versions.Lang(versions.FileVersion(pass.TypesInfo, n))

		case *ast.CallExpr:
			fn, kind := printfNameAndKind(pass, n)
			switch kind {
			case KindPrintf, KindErrorf:
				checkPrintf(pass, fileVersion, kind, n, fn)
			case KindPrint:
				checkPrint(pass, n, fn)
			}
		}
	})
}

func printfNameAndKind(pass *analysis.Pass, call *ast.CallExpr) (fn *types.Func, kind Kind) {
	fn, _ = typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if fn == nil {
		return nil, 0
	}

	// Facts are associated with generic declarations, not instantiations.
	fn = fn.Origin()

	_, ok := isPrint[fn.FullName()]
	if !ok {
		// Next look up just "printf", for use with -printf.funcs.
		_, ok = isPrint[strings.ToLower(fn.Name())]
	}
	if ok {
		if fn.FullName() == "fmt.Errorf" {
			kind = KindErrorf
		} else if strings.HasSuffix(fn.Name(), "f") {
			kind = KindPrintf
		} else {
			kind = KindPrint
		}
		return fn, kind
	}

	var fact isWrapper
	if pass.ImportObjectFact(fn, &fact) {
		return fn, fact.Kind
	}

	return fn, KindNone
}

// isFormatter reports whether t could satisfy fmt.Formatter.
// The only interface method to look for is "Format(State, rune)".
func isFormatter(typ types.Type) bool {
	// If the type is an interface, the value it holds might satisfy fmt.Formatter.
	if _, ok := typ.Underlying().(*types.Interface); ok {
		// Don't assume type parameters could be formatters. With the greater
		// expressiveness of constraint interface syntax we expect more type safety
		// when using type parameters.
		if !typeparams.IsTypeParam(typ) {
			return true
		}
	}
	obj, _, _ := types.LookupFieldOrMethod(typ, false, nil, "Format")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 2 &&
		sig.Results().Len() == 0 &&
		analysisutil.IsNamedType(sig.Params().At(0).Type(), "fmt", "State") &&
		types.Identical(sig.Params().At(1).Type(), types.Typ[types.Rune])
}

// formatState holds the parsed representation of a printf directive such as "%3.*[4]d".
// It is constructed by parsePrintfVerb.
type formatState struct {
	verb     rune   // the format verb: 'd' for "%d"
	format   string // the full format directive from % through verb, "%.3d".
	name     string // Printf, Sprintf etc.
	flags    []byte // the list of # + etc.
	argNums  []int  // the successive argument numbers that are consumed, adjusted to refer to actual arg in call
	firstArg int    // Index of first argument after the format in the Printf call.
	// Used only during parse.
	pass         *analysis.Pass
	call         *ast.CallExpr
	argNum       int  // Which argument we're expecting to format now.
	hasIndex     bool // Whether the argument is indexed.
	indexPending bool // Whether we have an indexed argument that has not resolved.
	nbytes       int  // number of bytes of the format string consumed.
}

// checkPrintf checks a call to a formatted print routine such as Printf.
func checkPrintf(pass *analysis.Pass, fileVersion string, kind Kind, call *ast.CallExpr, fn *types.Func) {
	idx := formatStringIndex(pass, call)
	if idx < 0 || idx >= len(call.Args) {
		return
	}
	formatArg := call.Args[idx]
	format, ok := stringConstantExpr(pass, formatArg)
	if !ok {
		// Format string argument is non-constant.

		// It is a common mistake to call fmt.Printf(msg) with a
		// non-constant format string and no arguments:
		// if msg contains "%", misformatting occurs.
		// Report the problem and suggest a fix: fmt.Printf("%s", msg).
		//
		// However, as described in golang/go#71485, this analysis can produce a
		// significant number of diagnostics in existing code, and the bugs it
		// finds are sometimes unlikely or inconsequential, and may not be worth
		// fixing for some users. Gating on language version allows us to avoid
		// breaking existing tests and CI scripts.
		if !suppressNonconstants &&
			idx == len(call.Args)-1 &&
			fileVersion != "" && // fail open
			versions.AtLeast(fileVersion, "go1.24") {

			pass.Report(analysis.Diagnostic{
				Pos: formatArg.Pos(),
				End: formatArg.End(),
				Message: fmt.Sprintf("non-constant format string in call to %s",
					fn.FullName()),
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: `Insert "%s" format string`,
					TextEdits: []analysis.TextEdit{{
						Pos:     formatArg.Pos(),
						End:     formatArg.Pos(),
						NewText: []byte(`"%s", `),
					}},
				}},
			})
		}
		return
	}

	firstArg := idx + 1 // Arguments are immediately after format string.
	if !strings.Contains(format, "%") {
		if len(call.Args) > firstArg {
			pass.Reportf(call.Lparen, "%s call has arguments but no formatting directives", fn.FullName())
		}
		return
	}
	// Hard part: check formats against args.
	argNum := firstArg
	maxArgNum := firstArg
	anyIndex := false
	for i, w := 0, 0; i < len(format); i += w {
		w = 1
		if format[i] != '%' {
			continue
		}
		state := parsePrintfVerb(pass, call, fn.FullName(), format[i:], firstArg, argNum)
		if state == nil {
			return
		}
		w = len(state.format)
		if !okPrintfArg(pass, call, state) { // One error per format is enough.
			return
		}
		if state.hasIndex {
			anyIndex = true
		}
		if state.verb == 'w' {
			switch kind {
			case KindNone, KindPrint, KindPrintf:
				pass.Reportf(call.Pos(), "%s does not support error-wrapping directive %%w", state.name)
				return
			}
		}
		if len(state.argNums) > 0 {
			// Continue with the next sequential argument.
			argNum = state.argNums[len(state.argNums)-1] + 1
		}
		for _, n := range state.argNums {
			if n >= maxArgNum {
				maxArgNum = n + 1
			}
		}
	}
	// Dotdotdot is hard.
	if call.Ellipsis.IsValid() && maxArgNum >= len(call.Args)-1 {
		return
	}
	// If any formats are indexed, extra arguments are ignored.
	if anyIndex {
		return
	}
	// There should be no leftover arguments.
	if maxArgNum != len(call.Args) {
		expect := maxArgNum - firstArg
		numArgs := len(call.Args) - firstArg
		pass.ReportRangef(call, "%s call needs %v but has %v", fn.FullName(), count(expect, "arg"), count(numArgs, "arg"))
	}
}

// parseFlags accepts any printf flags.
func (s *formatState) parseFlags() {
	for s.nbytes < len(s.format) {
		switch c := s.format[s.nbytes]; c {
		case '#', '0', '+', '-', ' ':
			s.flags = append(s.flags, c)
			s.nbytes++
		default:
			return
		}
	}
}

// scanNum advances through a decimal number if present.
func (s *formatState) scanNum() {
	for ; s.nbytes < len(s.format); s.nbytes++ {
		c := s.format[s.nbytes]
		if c < '0' || '9' < c {
			return
		}
	}
}

// parseIndex scans an index expression. It returns false if there is a syntax error.
func (s *formatState) parseIndex() bool {
	if s.nbytes == len(s.format) || s.format[s.nbytes] != '[' {
		return true
	}
	// Argument index present.
	s.nbytes++ // skip '['
	start := s.nbytes
	s.scanNum()
	ok := true
	if s.nbytes == len(s.format) || s.nbytes == start || s.format[s.nbytes] != ']' {
		ok = false // syntax error is either missing "]" or invalid index.
		s.nbytes = strings.Index(s.format[start:], "]")
		if s.nbytes < 0 {
			s.pass.ReportRangef(s.call, "%s format %s is missing closing ]", s.name, s.format)
			return false
		}
		s.nbytes = s.nbytes + start
	}
	arg32, err := strconv.ParseInt(s.format[start:s.nbytes], 10, 32)
	if err != nil || !ok || arg32 <= 0 || arg32 > int64(len(s.call.Args)-s.firstArg) {
		s.pass.ReportRangef(s.call, "%s format has invalid argument index [%s]", s.name, s.format[start:s.nbytes])
		return false
	}
	s.nbytes++ // skip ']'
	arg := int(arg32)
	arg += s.firstArg - 1 // We want to zero-index the actual arguments.
	s.argNum = arg
	s.hasIndex = true
	s.indexPending = true
	return true
}

// parseNum scans a width or precision (or *). It returns false if there's a bad index expression.
func (s *formatState) parseNum() bool {
	if s.nbytes < len(s.format) && s.format[s.nbytes] == '*' {
		if s.indexPending { // Absorb it.
			s.indexPending = false
		}
		s.nbytes++
		s.argNums = append(s.argNums, s.argNum)
		s.argNum++
	} else {
		s.scanNum()
	}
	return true
}

// parsePrecision scans for a precision. It returns false if there's a bad index expression.
func (s *formatState) parsePrecision() bool {
	// If there's a period, there may be a precision.
	if s.nbytes < len(s.format) && s.format[s.nbytes] == '.' {
		s.flags = append(s.flags, '.') // Treat precision as a flag.
		s.nbytes++
		if !s.parseIndex() {
			return false
		}
		if !s.parseNum() {
			return false
		}
	}
	return true
}

// parsePrintfVerb looks the formatting directive that begins the format string
// and returns a formatState that encodes what the directive wants, without looking
// at the actual arguments present in the call. The result is nil if there is an error.
func parsePrintfVerb(pass *analysis.Pass, call *ast.CallExpr, name, format string, firstArg, argNum int) *formatState {
	state := &formatState{
		format:   format,
		name:     name,
		flags:    make([]byte, 0, 5),
		argNum:   argNum,
		argNums:  make([]int, 0, 1),
		nbytes:   1, // There's guaranteed to be a percent sign.
		firstArg: firstArg,
		pass:     pass,
		call:     call,
	}
	// There may be flags.
	state.parseFlags()
	// There may be an index.
	if !state.parseIndex() {
		return nil
	}
	// There may be a width.
	if !state.parseNum() {
		return nil
	}
	// There may be a precision.
	if !state.parsePrecision() {
		return nil
	}
	// Now a verb, possibly prefixed by an index (which we may already have).
	if !state.indexPending && !state.parseIndex() {
		return nil
	}
	if state.nbytes == len(state.format) {
		pass.ReportRangef(call.Fun, "%s format %s is missing verb at end of string", name, state.format)
		return nil
	}
	verb, w := utf8.DecodeRuneInString(state.format[state.nbytes:])
	state.verb = verb
	state.nbytes += w
	if verb != '%' {
		state.argNums = append(state.argNums, state.argNum)
	}
	state.format = state.format[:state.nbytes]
	return state
}

// printfArgType encodes the types of expressions a printf verb accepts. It is a bitmask.
type printfArgType int

const (
	argBool printfArgType = 1 << iota
	argInt
	argRune
	argString
	argFloat
	argComplex
	argPointer
	argError
	anyType printfArgType = ^0
)

type printVerb struct {
	verb  rune   // User may provide verb through Formatter; could be a rune.
	flags string // known flags are all ASCII
	typ   printfArgType
}

// Common flag sets for printf verbs.
const (
	noFlag       = ""
	numFlag      = " -+.0"
	sharpNumFlag = " -+.0#"
	allFlags     = " -+.0#"
)

// printVerbs identifies which flags are known to printf for each verb.
var printVerbs = []printVerb{
	// '-' is a width modifier, always valid.
	// '.' is a precision for float, max width for strings.
	// '+' is required sign for numbers, Go format for %v.
	// '#' is alternate format for several verbs.
	// ' ' is spacer for numbers
	{'%', noFlag, 0},
	{'b', sharpNumFlag, argInt | argFloat | argComplex | argPointer},
	{'c', "-", argRune | argInt},
	{'d', numFlag, argInt | argPointer},
	{'e', sharpNumFlag, argFloat | argComplex},
	{'E', sharpNumFlag, argFloat | argComplex},
	{'f', sharpNumFlag, argFloat | argComplex},
	{'F', sharpNumFlag, argFloat | argComplex},
	{'g', sharpNumFlag, argFloat | argComplex},
	{'G', sharpNumFlag, argFloat | argComplex},
	{'o', sharpNumFlag, argInt | argPointer},
	{'O', sharpNumFlag, argInt | argPointer},
	{'p', "-#", argPointer},
	{'q', " -+.0#", argRune | argInt | argString},
	{'s', " -+.0", argString},
	{'t', "-", argBool},
	{'T', "-", anyType},
	{'U', "-#", argRune | argInt},
	{'v', allFlags, anyType},
	{'w', allFlags, argError},
	{'x', sharpNumFlag, argRune | argInt | argString | argPointer | argFloat | argComplex},
	{'X', sharpNumFlag, argRune | argInt | argString | argPointer | argFloat | argComplex},
}

// okPrintfArg compares the formatState to the arguments actually present,
// reporting any discrepancies it can discern. If the final argument is ellipsissed,
// there's little it can do for that.
func okPrintfArg(pass *analysis.Pass, call *ast.CallExpr, state *formatState) (ok bool) {
	var v printVerb
	found := false
	// Linear scan is fast enough for a small list.
	for _, v = range printVerbs {
		if v.verb == state.verb {
			found = true
			break
		}
	}

	// Could current arg implement fmt.Formatter?
	// Skip check for the %w verb, which requires an error.
	formatter := false
	if v.typ != argError && state.argNum < len(call.Args) {
		if tv, ok := pass.TypesInfo.Types[call.Args[state.argNum]]; ok {
			formatter = isFormatter(tv.Type)
		}
	}

	if !formatter {
		if !found {
			pass.ReportRangef(call, "%s format %s has unknown verb %c", state.name, state.format, state.verb)
			return false
		}
		for _, flag := range state.flags {
			// TODO: Disable complaint about '0' for Go 1.10. To be fixed properly in 1.11.
			// See issues 23598 and 23605.
			if flag == '0' {
				continue
			}
			if !strings.ContainsRune(v.flags, rune(flag)) {
				pass.ReportRangef(call, "%s format %s has unrecognized flag %c", state.name, state.format, flag)
				return false
			}
		}
	}
	// Verb is good. If len(state.argNums)>trueArgs, we have something like %.*s and all
	// but the final arg must be an integer.
	trueArgs := 1
	if state.verb == '%' {
		trueArgs = 0
	}
	nargs := len(state.argNums)
	for i := 0; i < nargs-trueArgs; i++ {
		argNum := state.argNums[i]
		if !argCanBeChecked(pass, call, i, state) {
			return
		}
		arg := call.Args[argNum]
		if reason, ok := matchArgType(pass, argInt, arg); !ok {
			details := ""
			if reason != "" {
				details = " (" + reason + ")"
			}
			pass.ReportRangef(call, "%s format %s uses non-int %s%s as argument of *", state.name, state.format, analysisutil.Format(pass.Fset, arg), details)
			return false
		}
	}

	if state.verb == '%' || formatter {
		return true
	}
	argNum := state.argNums[len(state.argNums)-1]
	if !argCanBeChecked(pass, call, len(state.argNums)-1, state) {
		return false
	}
	arg := call.Args[argNum]
	if isFunctionValue(pass, arg) && state.verb != 'p' && state.verb != 'T' {
		pass.ReportRangef(call, "%s format %s arg %s is a func value, not called", state.name, state.format, analysisutil.Format(pass.Fset, arg))
		return false
	}
	if reason, ok := matchArgType(pass, v.typ, arg); !ok {
		typeString := ""
		if typ := pass.TypesInfo.Types[arg].Type; typ != nil {
			typeString = typ.String()
		}
		details := ""
		if reason != "" {
			details = " (" + reason + ")"
		}
		pass.ReportRangef(call, "%s format %s has arg %s of wrong type %s%s", state.name, state.format, analysisutil.Format(pass.Fset, arg), typeString, details)
		return false
	}
	if v.typ&argString != 0 && v.verb != 'T' && !bytes.Contains(state.flags, []byte{'#'}) {
		if methodName, ok := recursiveStringer(pass, arg); ok {
			pass.ReportRangef(call, "%s format %s with arg %s causes recursive %s method call", state.name, state.format, analysisutil.Format(pass.Fset, arg), methodName)
			return false
		}
	}
	return true
}

// recursiveStringer reports whether the argument e is a potential
// recursive call to stringer or is an error, such as t and &t in these examples:
//
//	func (t *T) String() string { printf("%s",  t) }
//	func (t  T) Error() string { printf("%s",  t) }
//	func (t  T) String() string { printf("%s", &t) }
func recursiveStringer(pass *analysis.Pass, e ast.Expr) (string, bool) {
	typ := pass.TypesInfo.Types[e].Type

	// It's unlikely to be a recursive stringer if it has a Format method.
	if isFormatter(typ) {
		return "", false
	}

	// Does e allow e.String() or e.Error()?
	strObj, _, _ := types.LookupFieldOrMethod(typ, false, pass.Pkg, "String")
	strMethod, strOk := strObj.(*types.Func)
	errObj, _, _ := types.LookupFieldOrMethod(typ, false, pass.Pkg, "Error")
	errMethod, errOk := errObj.(*types.Func)
	if !strOk && !errOk {
		return "", false
	}

	// inScope returns true if e is in the scope of f.
	inScope := func(e ast.Expr, f *types.Func) bool {
		return f.Scope() != nil && f.Scope().Contains(e.Pos())
	}

	// Is the expression e within the body of that String or Error method?
	var method *types.Func
	if strOk && strMethod.Pkg() == pass.Pkg && inScope(e, strMethod) {
		method = strMethod
	} else if errOk && errMethod.Pkg() == pass.Pkg && inScope(e, errMethod) {
		method = errMethod
	} else {
		return "", false
	}

	sig := method.Type().(*types.Signature)
	if !isStringer(sig) {
		return "", false
	}

	// Is it the receiver r, or &r?
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X // strip off & from &r
	}
	if id, ok := e.(*ast.Ident); ok {
		if pass.TypesInfo.Uses[id] == sig.Recv() {
			return method.FullName(), true
		}
	}
	return "", false
}

// isStringer reports whether the method signature matches the String() definition in fmt.Stringer.
func isStringer(sig *types.Signature) bool {
	return sig.Params().Len() == 0 &&
		sig.Results().Len() == 1 &&
		sig.Results().At(0).Type() == types.Typ[types.String]
}

// isFunctionValue reports whether the expression is a function as opposed to a function call.
// It is almost always a mistake to print a function value.
func isFunctionValue(pass *analysis.Pass, e ast.Expr) bool {
	if typ := pass.TypesInfo.Types[e].Type; typ != nil {
		// Don't call Underlying: a named func type with a String method is ok.
		// TODO(adonovan): it would be more precise to check isStringer.
		_, ok := typ.(*types.Signature)
		return ok
	}
	return false
}

// argCanBeChecked reports whether the specified argument is statically present;
// it may be beyond the list of arguments or in a terminal slice... argument, which
// means we can't see it.
func argCanBeChecked(pass *analysis.Pass, call *ast.CallExpr, formatArg int, state *formatState) bool {
	argNum := state.argNums[formatArg]
	if argNum <= 0 {
		// Shouldn't happen, so catch it with prejudice.
		panic("negative arg num")
	}
	if argNum < len(call.Args)-1 {
		return true // Always OK.
	}
	if call.Ellipsis.IsValid() {
		return false // We just can't tell; there could be many more arguments.
	}
	if argNum < len(call.Args) {
		return true
	}
	// There are bad indexes in the format or there are fewer arguments than the format needs.
	// This is the argument number relative to the format: Printf("%s", "hi") will give 1 for the "hi".
	arg := argNum - state.firstArg + 1 // People think of arguments as 1-indexed.
	pass.ReportRangef(call, "%s format %s reads arg #%d, but call has %v", state.name, state.format, arg, count(len(call.Args)-state.firstArg, "arg"))
	return false
}

// printFormatRE is the regexp we match and report as a possible format string
// in the first argument to unformatted prints like fmt.Print.
// We exclude the space flag, so that printing a string like "x % y" is not reported as a format.
var printFormatRE = regexp.MustCompile(`%` + flagsRE + numOptRE + `\.?` + numOptRE + indexOptRE + verbRE)

const (
	flagsRE    = `[+\-#]*`
	indexOptRE = `(\[[0-9]+\])?`
	numOptRE   = `([0-9]+|` + indexOptRE + `\*)?`
	verbRE     = `[bcdefgopqstvxEFGTUX]`
)

// checkPrint checks a call to an unformatted print routine such as Println.
func checkPrint(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func) {
	firstArg := 0
	typ := pass.TypesInfo.Types[call.Fun].Type
	if typ == nil {
		// Skip checking functions with unknown type.
		return
	}
	if sig, ok := typ.Underlying().(*types.Signature); ok {
		if !sig.Variadic() {
			// Skip checking non-variadic functions.
			return
		}
		params := sig.Params()
		firstArg = params.Len() - 1

		typ := params.At(firstArg).Type()
		typ = typ.(*types.Slice).Elem()
		it, ok := types.Unalias(typ).(*types.Interface)
		if !ok || !it.Empty() {
			// Skip variadic functions accepting non-interface{} args.
			return
		}
	}
	args := call.Args
	if len(args) <= firstArg {
		// Skip calls without variadic args.
		return
	}
	args = args[firstArg:]

	if firstArg == 0 {
		if sel, ok := call.Args[0].(*ast.SelectorExpr); ok {
			if x, ok := sel.X.(*ast.Ident); ok {
				if x.Name == "os" && strings.HasPrefix(sel.Sel.Name, "Std") {
					pass.ReportRangef(call, "%s does not take io.Writer but has first arg %s", fn.FullName(), analysisutil.Format(pass.Fset, call.Args[0]))
				}
			}
		}
	}

	arg := args[0]
	if s, ok := stringConstantExpr(pass, arg); ok {
		// Ignore trailing % character
		// The % in "abc 0.0%" couldn't be a formatting directive.
		s = strings.TrimSuffix(s, "%")
		if strings.Contains(s, "%") {
			m := printFormatRE.FindStringSubmatch(s)
			if m != nil {
				pass.ReportRangef(call, "%s call has possible Printf formatting directive %s", fn.FullName(), m[0])
			}
		}
	}
	if strings.HasSuffix(fn.Name(), "ln") {
		// The last item, if a string, should not have a newline.
		arg = args[len(args)-1]
		if s, ok := stringConstantExpr(pass, arg); ok {
			if strings.HasSuffix(s, "\n") {
				pass.ReportRangef(call, "%s arg list ends with redundant newline", fn.FullName())
			}
		}
	}
	for _, arg := range args {
		if isFunctionValue(pass, arg) {
			pass.ReportRangef(call, "%s arg %s is a func value, not called", fn.FullName(), analysisutil.Format(pass.Fset, arg))
		}
		if methodName, ok := recursiveStringer(pass, arg); ok {
			pass.ReportRangef(call, "%s arg %s causes recursive call to %s method", fn.FullName(), analysisutil.Format(pass.Fset, arg), methodName)
		}
	}
}

// count(n, what) returns "1 what" or "N whats"
// (assuming the plural of what is whats).
func count(n int, what string) string {
	if n == 1 {
		return "1 " + what
	}
	return fmt.Sprintf("%d %ss", n, what)
}

// stringSet is a set-of-nonempty-strings-valued flag.
// Note: elements without a '.' get lower-cased.
type stringSet map[string]bool

func (ss stringSet) String() string {
	var list []string
	for name := range ss {
		list = append(list, name)
	}
	sort.Strings(list)
	return strings.Join(list, ",")
}

func (ss stringSet) Set(flag string) error {
	for _, name := range strings.Split(flag, ",") {
		if len(name) == 0 {
			return fmt.Errorf("empty string")
		}
		if !strings.Contains(name, ".") {
			name = strings.ToLower(name)
		}
		ss[name] = true
	}
	return nil
}

// suppressNonconstants suppresses reporting printf calls with
// non-constant formatting strings (proposal #60529) when true.
//
// This variable is to allow for staging the transition to newer
// versions of x/tools by vendoring.
//
// Remove this after the 1.24 release.
var suppressNonconstants bool
