// Copyright 2018 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package printf

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/internal/typeparams"
)

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// matchArgType reports an error if printf verb t is not appropriate for
// operand arg.
//
// If arg is a type parameter, the verb t must be appropriate for every type in
// the type parameter type set.
func matchArgType(pass *analysis.Pass, t printfArgType, arg ast.Expr) (reason string, ok bool) {
	// %v, %T accept any argument type.
	if t == anyType {
		return "", true
	}

	typ := pass.TypesInfo.Types[arg].Type
	if typ == nil {
		return "", true // probably a type check problem
	}

	m := &argMatcher{t: t, seen: make(map[types.Type]bool)}
	ok = m.match(typ, true)
	return m.reason, ok
}

// argMatcher recursively matches types against the printfArgType t.
//
// To short-circuit recursion, it keeps track of types that have already been
// matched (or are in the process of being matched) via the seen map. Recursion
// arises from the compound types {map,chan,slice} which may be printed with %d
// etc. if that is appropriate for their element types, as well as from type
// parameters, which are expanded to the constituents of their type set.
//
// The reason field may be set to report the cause of the mismatch.
type argMatcher struct {
	t      printfArgType
	seen   map[types.Type]bool
	reason string
}

// match checks if typ matches m's printf arg type. If topLevel is true, typ is
// the actual type of the printf arg, for which special rules apply. As a
// special case, top level type parameters pass topLevel=true when checking for
// matches among the constituents of their type set, as type arguments will
// replace the type parameter at compile time.
func (m *argMatcher) match(typ types.Type, topLevel bool) bool {
	// %w accepts only errors.
	if m.t == argError {
		return types.ConvertibleTo(typ, errorType)
	}

	// If the type implements fmt.Formatter, we have nothing to check.
	if isFormatter(typ) {
		return true
	}

	// If we can use a string, might arg (dynamically) implement the Stringer or Error interface?
	if m.t&argString != 0 && isConvertibleToString(typ) {
		return true
	}

	if typ, _ := types.Unalias(typ).(*types.TypeParam); typ != nil {
		// Avoid infinite recursion through type parameters.
		if m.seen[typ] {
			return true
		}
		m.seen[typ] = true
		terms, err := typeparams.StructuralTerms(typ)
		if err != nil {
			return true // invalid type (possibly an empty type set)
		}

		if len(terms) == 0 {
			// No restrictions on the underlying of typ. Type parameters implementing
			// error, fmt.Formatter, or fmt.Stringer were handled above, and %v and
			// %T was handled in matchType. We're about to check restrictions the
			// underlying; if the underlying type is unrestricted there must be an
			// element of the type set that violates one of the arg type checks
			// below, so we can safely return false here.

			if m.t == anyType { // anyType must have already been handled.
				panic("unexpected printfArgType")
			}
			return false
		}

		// Only report a reason if typ is the argument type, otherwise it won't
		// make sense. Note that it is not sufficient to check if topLevel == here,
		// as type parameters can have a type set consisting of other type
		// parameters.
		reportReason := len(m.seen) == 1

		for _, term := range terms {
			if !m.match(term.Type(), topLevel) {
				if reportReason {
					if term.Tilde() {
						m.reason = fmt.Sprintf("contains ~%s", term.Type())
					} else {
						m.reason = fmt.Sprintf("contains %s", term.Type())
					}
				}
				return false
			}
		}
		return true
	}

	typ = typ.Underlying()
	if m.seen[typ] {
		// We've already considered typ, or are in the process of considering it.
		// In case we've already considered typ, it must have been valid (else we
		// would have stopped matching). In case we're in the process of
		// considering it, we must avoid infinite recursion.
		//
		// There are some pathological cases where returning true here is
		// incorrect, for example `type R struct { F []R }`, but these are
		// acceptable false negatives.
		return true
	}
	m.seen[typ] = true

	switch typ := typ.(type) {
	case *types.Signature:
		return m.t == argPointer

	case *types.Map:
		if m.t == argPointer {
			return true
		}
		// Recur: map[int]int matches %d.
		return m.match(typ.Key(), false) && m.match(typ.Elem(), false)

	case *types.Chan:
		return m.t&argPointer != 0

	case *types.Array:
		// Same as slice.
		if types.Identical(typ.Elem().Underlying(), types.Typ[types.Byte]) && m.t&argString != 0 {
			return true // %s matches []byte
		}
		// Recur: []int matches %d.
		return m.match(typ.Elem(), false)

	case *types.Slice:
		// Same as array.
		if types.Identical(typ.Elem().Underlying(), types.Typ[types.Byte]) && m.t&argString != 0 {
			return true // %s matches []byte
		}
		if m.t == argPointer {
			return true // %p prints a slice's 0th element
		}
		// Recur: []int matches %d. But watch out for
		//	type T []T
		// If the element is a pointer type (type T[]*T), it's handled fine by the Pointer case below.
		return m.match(typ.Elem(), false)

	case *types.Pointer:
		// Ugly, but dealing with an edge case: a known pointer to an invalid type,
		// probably something from a failed import.
		if typ.Elem() == types.Typ[types.Invalid] {
			return true // special case
		}
		// If it's actually a pointer with %p, it prints as one.
		if m.t == argPointer {
			return true
		}

		if typeparams.IsTypeParam(typ.Elem()) {
			return true // We don't know whether the logic below applies. Give up.
		}

		under := typ.Elem().Underlying()
		switch under.(type) {
		case *types.Struct: // see below
		case *types.Array: // see below
		case *types.Slice: // see below
		case *types.Map: // see below
		default:
			// Check whether the rest can print pointers.
			return m.t&argPointer != 0
		}
		// If it's a top-level pointer to a struct, array, slice, type param, or
		// map, that's equivalent in our analysis to whether we can
		// print the type being pointed to. Pointers in nested levels
		// are not supported to minimize fmt running into loops.
		if !topLevel {
			return false
		}
		return m.match(under, false)

	case *types.Struct:
		// report whether all the elements of the struct match the expected type. For
		// instance, with "%d" all the elements must be printable with the "%d" format.
		for i := 0; i < typ.NumFields(); i++ {
			typf := typ.Field(i)
			if !m.match(typf.Type(), false) {
				return false
			}
			if m.t&argString != 0 && !typf.Exported() && isConvertibleToString(typf.Type()) {
				// Issue #17798: unexported Stringer or error cannot be properly formatted.
				return false
			}
		}
		return true

	case *types.Interface:
		// There's little we can do.
		// Whether any particular verb is valid depends on the argument.
		// The user may have reasonable prior knowledge of the contents of the interface.
		return true

	case *types.Basic:
		switch typ.Kind() {
		case types.UntypedBool,
			types.Bool:
			return m.t&argBool != 0

		case types.UntypedInt,
			types.Int,
			types.Int8,
			types.Int16,
			types.Int32,
			types.Int64,
			types.Uint,
			types.Uint8,
			types.Uint16,
			types.Uint32,
			types.Uint64,
			types.Uintptr:
			return m.t&argInt != 0

		case types.UntypedFloat,
			types.Float32,
			types.Float64:
			return m.t&argFloat != 0

		case types.UntypedComplex,
			types.Complex64,
			types.Complex128:
			return m.t&argComplex != 0

		case types.UntypedString,
			types.String:
			return m.t&argString != 0

		case types.UnsafePointer:
			return m.t&(argPointer|argInt) != 0

		case types.UntypedRune:
			return m.t&(argInt|argRune) != 0

		case types.UntypedNil:
			return false

		case types.Invalid:
			return true // Probably a type check problem.
		}
		panic("unreachable")
	}

	return false
}

func isConvertibleToString(typ types.Type) bool {
	if bt, ok := types.Unalias(typ).(*types.Basic); ok && bt.Kind() == types.UntypedNil {
		// We explicitly don't want untyped nil, which is
		// convertible to both of the interfaces below, as it
		// would just panic anyway.
		return false
	}
	if types.ConvertibleTo(typ, errorType) {
		return true // via .Error()
	}

	// Does it implement fmt.Stringer?
	if obj, _, _ := types.LookupFieldOrMethod(typ, false, nil, "String"); obj != nil {
		if fn, ok := obj.(*types.Func); ok {
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 0 &&
				sig.Results().Len() == 1 &&
				sig.Results().At(0).Type() == types.Typ[types.String] {
				return true
			}
		}
	}

	return false
}
