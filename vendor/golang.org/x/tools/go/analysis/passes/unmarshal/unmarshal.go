// Copyright 2018 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package unmarshal

import (
	_ "embed"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
	"golang.org/x/tools/internal/typesinternal"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "unmarshal",
	Doc:      analysisutil.MustExtractDoc(doc, "unmarshal"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/unmarshal",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	switch pass.Pkg.Path() {
	case "encoding/gob", "encoding/json", "encoding/xml", "encoding/asn1":
		// These packages know how to use their own APIs.
		// Sometimes they are testing what happens to incorrect programs.
		return nil, nil
	}

	// Note: (*"encoding/json".Decoder).Decode, (* "encoding/gob".Decoder).Decode
	// and (* "encoding/xml".Decoder).Decode are methods and can be a typeutil.Callee
	// without directly importing their packages. So we cannot just skip this package
	// when !analysisutil.Imports(pass.Pkg, "encoding/...").
	// TODO(taking): Consider using a prepass to collect typeutil.Callees.

	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.CallExpr)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil {
			return // not a static call
		}

		// Classify the callee (without allocating memory).
		argidx := -1

		recv := fn.Type().(*types.Signature).Recv()
		if fn.Name() == "Unmarshal" && recv == nil {
			// "encoding/json".Unmarshal
			// "encoding/xml".Unmarshal
			// "encoding/asn1".Unmarshal
			switch fn.Pkg().Path() {
			case "encoding/json", "encoding/xml", "encoding/asn1":
				argidx = 1 // func([]byte, interface{})
			}
		} else if fn.Name() == "Decode" && recv != nil {
			// (*"encoding/json".Decoder).Decode
			// (* "encoding/gob".Decoder).Decode
			// (* "encoding/xml".Decoder).Decode
			_, named := typesinternal.ReceiverNamed(recv)
			if tname := named.Obj(); tname.Name() == "Decoder" {
				switch tname.Pkg().Path() {
				case "encoding/json", "encoding/xml", "encoding/gob":
					argidx = 0 // func(interface{})
				}
			}
		}
		if argidx < 0 {
			return // not a function we are interested in
		}

		if len(call.Args) < argidx+1 {
			return // not enough arguments, e.g. called with return values of another function
		}

		t := pass.TypesInfo.Types[call.Args[argidx]].Type
		switch t.Underlying().(type) {
		case *types.Pointer, *types.Interface, *types.TypeParam:
			return
		}

		switch argidx {
		case 0:
			pass.Reportf(call.Lparen, "call of %s passes non-pointer", fn.Name())
		case 1:
			pass.Reportf(call.Lparen, "call of %s passes non-pointer as second argument", fn.Name())
		}
	})
	return nil, nil
}
