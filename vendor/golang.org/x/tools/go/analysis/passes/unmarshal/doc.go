// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// The unmarshal package defines an Analyzer that checks for passing
// non-pointer or non-interface types to unmarshal and decode functions.
//
// # Analyzer unmarshal
//
// unmarshal: report passing non-pointer or non-interface values to unmarshal
//
// The unmarshal analysis reports calls to functions such as json.Unmarshal
// in which the argument type is not a pointer or an interface.
package unmarshal
