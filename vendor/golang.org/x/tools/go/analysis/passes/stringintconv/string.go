// Copyright 2020 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package stringintconv

import (
	_ "embed"
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/internal/analysisinternal"
	"golang.org/x/tools/internal/typeparams"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "stringintconv",
	Doc:      analysisutil.MustExtractDoc(doc, "stringintconv"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/stringintconv",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// describe returns a string describing the type typ contained within the type
// set of inType. If non-empty, inName is used as the name of inType (this is
// necessary so that we can use alias type names that may not be reachable from
// inType itself).
func describe(typ, inType types.Type, inName string) string {
	name := inName
	if typ != inType {
		name = typeName(typ)
	}
	if name == "" {
		return ""
	}

	var parentheticals []string
	if underName := typeName(typ.Underlying()); underName != "" && underName != name {
		parentheticals = append(parentheticals, underName)
	}

	if typ != inType && inName != "" && inName != name {
		parentheticals = append(parentheticals, "in "+inName)
	}

	if len(parentheticals) > 0 {
		name += " (" + strings.Join(parentheticals, ", ") + ")"
	}

	return name
}

func typeName(t types.Type) string {
	type hasTypeName interface{ Obj() *types.TypeName } // Alias, Named, TypeParam
	switch t := t.(type) {
	case *types.Basic:
		return t.Name()
	case hasTypeName:
		return t.Obj().Name()
	}
	return ""
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.File)(nil),
		(*ast.CallExpr)(nil),
	}
	var file *ast.File
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		if n, ok := n.(*ast.File); ok {
			file = n
			return
		}
		call := n.(*ast.CallExpr)

		if len(call.Args) != 1 {
			return
		}
		arg := call.Args[0]

		// Retrieve target type name.
		var tname *types.TypeName
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			tname, _ = pass.TypesInfo.Uses[fun].(*types.TypeName)
		case *ast.SelectorExpr:
			tname, _ = pass.TypesInfo.Uses[fun.Sel].(*types.TypeName)
		}
		if tname == nil {
			return
		}

		// In the conversion T(v) of a value v of type V to a target type T, we
		// look for types T0 in the type set of T and V0 in the type set of V, such
		// that V0->T0 is a problematic conversion. If T and V are not type
		// parameters, this amounts to just checking if V->T is a problematic
		// conversion.

		// First, find a type T0 in T that has an underlying type of string.
		T := tname.Type()
		ttypes, err := structuralTypes(T)
		if err != nil {
			return // invalid type
		}

		var T0 types.Type // string type in the type set of T

		for _, tt := range ttypes {
			u, _ := tt.Underlying().(*types.Basic)
			if u != nil && u.Kind() == types.String {
				T0 = tt
				break
			}
		}

		if T0 == nil {
			// No target types have an underlying type of string.
			return
		}

		// Next, find a type V0 in V that has an underlying integral type that is
		// not byte or rune.
		V := pass.TypesInfo.TypeOf(arg)
		vtypes, err := structuralTypes(V)
		if err != nil {
			return // invalid type
		}

		var V0 types.Type // integral type in the type set of V

		for _, vt := range vtypes {
			u, _ := vt.Underlying().(*types.Basic)
			if u != nil && u.Info()&types.IsInteger != 0 {
				switch u.Kind() {
				case types.Byte, types.Rune, types.UntypedRune:
					continue
				}
				V0 = vt
				break
			}
		}

		if V0 == nil {
			// No source types are non-byte or rune integer types.
			return
		}

		convertibleToRune := true // if true, we can suggest a fix
		for _, t := range vtypes {
			if !types.ConvertibleTo(t, types.Typ[types.Rune]) {
				convertibleToRune = false
				break
			}
		}

		target := describe(T0, T, tname.Name())
		source := describe(V0, V, typeName(V))

		if target == "" || source == "" {
			return // something went wrong
		}

		diag := analysis.Diagnostic{
			Pos:     n.Pos(),
			Message: fmt.Sprintf("conversion from %s to %s yields a string of one rune, not a string of digits", source, target),
		}
		addFix := func(message string, edits []analysis.TextEdit) {
			diag.SuggestedFixes = append(diag.SuggestedFixes, analysis.SuggestedFix{
				Message:   message,
				TextEdits: edits,
			})
		}

		// Fix 1: use fmt.Sprint(x)
		//
		// Prefer fmt.Sprint over strconv.Itoa, FormatInt,
		// or FormatUint, as it works for any type.
		// Add an import of "fmt" as needed.
		//
		// Unless the type is exactly string, we must retain the conversion.
		//
		// Do not offer this fix if type parameters are involved,
		// as there are too many combinations and subtleties.
		// Consider x = rune | int16 | []byte: in all cases,
		// string(x) is legal, but the appropriate diagnostic
		// and fix differs. Similarly, don't offer the fix if
		// the type has methods, as some {String,GoString,Format}
		// may change the behavior of fmt.Sprint.
		if len(ttypes) == 1 && len(vtypes) == 1 && types.NewMethodSet(V0).Len() == 0 {
			fmtName, importEdits := analysisinternal.AddImport(pass.TypesInfo, file, arg.Pos(), "fmt", "fmt")
			if types.Identical(T0, types.Typ[types.String]) {
				// string(x) -> fmt.Sprint(x)
				addFix("Format the number as a decimal", append(importEdits,
					analysis.TextEdit{
						Pos:     call.Fun.Pos(),
						End:     call.Fun.End(),
						NewText: []byte(fmtName + ".Sprint"),
					}),
				)
			} else {
				// mystring(x) -> mystring(fmt.Sprint(x))
				addFix("Format the number as a decimal", append(importEdits,
					analysis.TextEdit{
						Pos:     call.Lparen + 1,
						End:     call.Lparen + 1,
						NewText: []byte(fmtName + ".Sprint("),
					},
					analysis.TextEdit{
						Pos:     call.Rparen,
						End:     call.Rparen,
						NewText: []byte(")"),
					}),
				)
			}
		}

		// Fix 2: use string(rune(x))
		if convertibleToRune {
			addFix("Convert a single rune to a string", []analysis.TextEdit{
				{
					Pos:     arg.Pos(),
					End:     arg.Pos(),
					NewText: []byte("rune("),
				},
				{
					Pos:     arg.End(),
					End:     arg.End(),
					NewText: []byte(")"),
				},
			})
		}
		pass.Report(diag)
	})
	return nil, nil
}

func structuralTypes(t types.Type) ([]types.Type, error) {
	var structuralTypes []types.Type
	if tp, ok := types.Unalias(t).(*types.TypeParam); ok {
		terms, err := typeparams.StructuralTerms(tp)
		if err != nil {
			return nil, err
		}
		for _, term := range terms {
			structuralTypes = append(structuralTypes, term.Type())
		}
	} else {
		structuralTypes = append(structuralTypes, t)
	}
	return structuralTypes, nil
}
