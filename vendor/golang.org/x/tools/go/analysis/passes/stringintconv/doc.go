// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package stringintconv defines an Analyzer that flags type conversions
// from integers to strings.
//
// # Analyzer stringintconv
//
// stringintconv: check for string(int) conversions
//
// This checker flags conversions of the form string(x) where x is an integer
// (but not byte or rune) type. Such conversions are discouraged because they
// return the UTF-8 representation of the Unicode code point x, and not a decimal
// string representation of x as one might expect. Furthermore, if x denotes an
// invalid code point, the conversion cannot be statically rejected.
//
// For conversions that intend on using the code point, consider replacing them
// with string(rune(x)). Otherwise, strconv.Itoa and its equivalents return the
// string representation of the value in the desired base.
package stringintconv
