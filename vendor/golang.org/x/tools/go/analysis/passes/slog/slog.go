// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// TODO(jba) deduce which functions wrap the log/slog functions, and use the
// fact mechanism to propagate this information, so we can provide diagnostics
// for user-supplied wrappers.

package slog

import (
	_ "embed"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
	"golang.org/x/tools/internal/typesinternal"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "slog",
	Doc:      analysisutil.MustExtractDoc(doc, "slog"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/slog",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var stringType = types.Universe.Lookup("string").Type()

// A position describes what is expected to appear in an argument position.
type position int

const (
	// key is an argument position that should hold a string key or an Attr.
	key position = iota
	// value is an argument position that should hold a value.
	value
	// unknown represents that we do not know if position should hold a key or a value.
	unknown
)

func run(pass *analysis.Pass) (any, error) {
	var attrType types.Type // The type of slog.Attr
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.CallExpr)(nil),
	}
	inspect.Preorder(nodeFilter, func(node ast.Node) {
		call := node.(*ast.CallExpr)
		fn := typeutil.StaticCallee(pass.TypesInfo, call)
		if fn == nil {
			return // not a static call
		}
		if call.Ellipsis != token.NoPos {
			return // skip calls with "..." args
		}
		skipArgs, ok := kvFuncSkipArgs(fn)
		if !ok {
			// Not a slog function that takes key-value pairs.
			return
		}
		// Here we know that fn.Pkg() is "log/slog".
		if attrType == nil {
			attrType = fn.Pkg().Scope().Lookup("Attr").Type()
		}

		if isMethodExpr(pass.TypesInfo, call) {
			// Call is to a method value. Skip the first argument.
			skipArgs++
		}
		if len(call.Args) <= skipArgs {
			// Too few args; perhaps there are no k-v pairs.
			return
		}

		// Check this call.
		// The first position should hold a key or Attr.
		pos := key
		var unknownArg ast.Expr // nil or the last unknown argument
		for _, arg := range call.Args[skipArgs:] {
			t := pass.TypesInfo.Types[arg].Type
			switch pos {
			case key:
				// Expect a string or Attr.
				switch {
				case t == stringType:
					pos = value
				case isAttr(t):
					pos = key
				case types.IsInterface(t):
					// As we do not do dataflow, we do not know what the dynamic type is.
					// But we might be able to learn enough to make a decision.
					if types.AssignableTo(stringType, t) {
						// t must be an empty interface. So it can also be an Attr.
						// We don't know enough to make an assumption.
						pos = unknown
						continue
					} else if attrType != nil && types.AssignableTo(attrType, t) {
						// Assume it is an Attr.
						pos = key
						continue
					}
					// Can't be either a string or Attr. Definitely an error.
					fallthrough
				default:
					if unknownArg == nil {
						pass.ReportRangef(arg, "%s arg %q should be a string or a slog.Attr (possible missing key or value)",
							shortName(fn), analysisutil.Format(pass.Fset, arg))
					} else {
						pass.ReportRangef(arg, "%s arg %q should probably be a string or a slog.Attr (previous arg %q cannot be a key)",
							shortName(fn), analysisutil.Format(pass.Fset, arg), analysisutil.Format(pass.Fset, unknownArg))
					}
					// Stop here so we report at most one missing key per call.
					return
				}

			case value:
				// Anything can appear in this position.
				// The next position should be a key.
				pos = key

			case unknown:
				// Once we encounter an unknown position, we can never be
				// sure if a problem later or at the end of the call is due to a
				// missing final value, or a non-key in key position.
				// In both cases, unknownArg != nil.
				unknownArg = arg

				// We don't know what is expected about this position, but all hope is not lost.
				if t != stringType && !isAttr(t) && !types.IsInterface(t) {
					// This argument is definitely not a key.
					//
					// unknownArg cannot have been a key, in which case this is the
					// corresponding value, and the next position should hold another key.
					pos = key
				}
			}
		}
		if pos == value {
			if unknownArg == nil {
				pass.ReportRangef(call, "call to %s missing a final value", shortName(fn))
			} else {
				pass.ReportRangef(call, "call to %s has a missing or misplaced value", shortName(fn))
			}
		}
	})
	return nil, nil
}

func isAttr(t types.Type) bool {
	return analysisutil.IsNamedType(t, "log/slog", "Attr")
}

// shortName returns a name for the function that is shorter than FullName.
// Examples:
//
//	"slog.Info" (instead of "log/slog.Info")
//	"slog.Logger.With" (instead of "(*log/slog.Logger).With")
func shortName(fn *types.Func) string {
	var r string
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if _, named := typesinternal.ReceiverNamed(recv); named != nil {
			r = named.Obj().Name()
		} else {
			r = recv.Type().String() // anon struct/interface
		}
		r += "."
	}
	return fmt.Sprintf("%s.%s%s", fn.Pkg().Name(), r, fn.Name())
}

// If fn is a slog function that has a ...any parameter for key-value pairs,
// kvFuncSkipArgs returns the number of arguments to skip over to reach the
// corresponding arguments, and true.
// Otherwise it returns (0, false).
func kvFuncSkipArgs(fn *types.Func) (int, bool) {
	if pkg := fn.Pkg(); pkg == nil || pkg.Path() != "log/slog" {
		return 0, false
	}
	var recvName string // by default a slog package function
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		_, named := typesinternal.ReceiverNamed(recv)
		if named == nil {
			return 0, false // anon struct/interface
		}
		recvName = named.Obj().Name()
	}
	skip, ok := kvFuncs[recvName][fn.Name()]
	return skip, ok
}

// The names of functions and methods in log/slog that take
// ...any for key-value pairs, mapped to the number of initial args to skip in
// order to get to the ones that match the ...any parameter.
// The first key is the dereferenced receiver type name, or "" for a function.
var kvFuncs = map[string]map[string]int{
	"": {
		"Debug":        1,
		"Info":         1,
		"Warn":         1,
		"Error":        1,
		"DebugContext": 2,
		"InfoContext":  2,
		"WarnContext":  2,
		"ErrorContext": 2,
		"Log":          3,
		"Group":        1,
	},
	"Logger": {
		"Debug":        1,
		"Info":         1,
		"Warn":         1,
		"Error":        1,
		"DebugContext": 2,
		"InfoContext":  2,
		"WarnContext":  2,
		"ErrorContext": 2,
		"Log":          3,
		"With":         0,
	},
	"Record": {
		"Add": 0,
	},
}

// isMethodExpr reports whether a call is to a MethodExpr.
func isMethodExpr(info *types.Info, c *ast.CallExpr) bool {
	s, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	sel := info.Selections[s]
	return sel != nil && sel.Kind() == types.MethodExpr
}
