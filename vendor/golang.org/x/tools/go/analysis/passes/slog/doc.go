// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package slog defines an Analyzer that checks for
// mismatched key-value pairs in log/slog calls.
//
// # Analyzer slog
//
// slog: check for invalid structured logging calls
//
// The slog checker looks for calls to functions from the log/slog
// package that take alternating key-value pairs. It reports calls
// where an argument in a key position is neither a string nor a
// slog.Attr, and where a final key is missing its value.
// For example,it would report
//
//	slog.Warn("message", 11, "k") // slog.Warn arg "11" should be a string or a slog.Attr
//
// and
//
//	slog.Info("message", "k1", v1, "k2") // call to slog.Info missing a final value
package slog
