// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package unusedresult defines an analyzer that checks for unused
// results of calls to certain pure functions.
//
// # Analyzer unusedresult
//
// unusedresult: check for unused results of calls to some functions
//
// Some functions like fmt.Errorf return a result and have no side
// effects, so it is always a mistake to discard the result. Other
// functions may return an error that must not be ignored, or a cleanup
// operation that must be called. This analyzer reports calls to
// functions like these when the result of the call is ignored.
//
// The set of functions may be controlled using flags.
package unusedresult
