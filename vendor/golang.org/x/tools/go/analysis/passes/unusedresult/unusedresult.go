// Copyright 2015 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package unusedresult defines an analyzer that checks for unused
// results of calls to certain functions.
package unusedresult

// It is tempting to make this analysis inductive: for each function
// that tail-calls one of the functions that we check, check those
// functions too. However, just because you must use the result of
// fmt.Sprintf doesn't mean you need to use the result of every
// function that returns a formatted string: it may have other results
// and effects.

import (
	_ "embed"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "unusedresult",
	Doc:      analysisutil.MustExtractDoc(doc, "unusedresult"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/unusedresult",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// flags
var funcs, stringMethods stringSetFlag

func init() {
	// TODO(adonovan): provide a comment or declaration syntax to
	// allow users to add their functions to this set using facts.
	// For example:
	//
	//    func ignoringTheErrorWouldBeVeryBad() error {
	//      type mustUseResult struct{} // enables vet unusedresult check
	//      ...
	//    }
	//
	//    ignoringTheErrorWouldBeVeryBad() // oops
	//

	// List standard library functions here.
	// The context.With{Cancel,Deadline,Timeout} entries are
	// effectively redundant wrt the lostcancel analyzer.
	funcs = stringSetFlag{
		"context.WithCancel":   true,
		"context.WithDeadline": true,
		"context.WithTimeout":  true,
		"context.WithValue":    true,
		"errors.New":           true,
		"fmt.Errorf":           true,
		"fmt.Sprint":           true,
		"fmt.Sprintf":          true,
		"slices.Clip":          true,
		"slices.Compact":       true,
		"slices.CompactFunc":   true,
		"slices.Delete":        true,
		"slices.DeleteFunc":    true,
		"slices.Grow":          true,
		"slices.Insert":        true,
		"slices.Replace":       true,
		"sort.Reverse":         true,
	}
	Analyzer.Flags.Var(&funcs, "funcs",
		"comma-separated list of functions whose results must be used")

	stringMethods.Set("Error,String")
	Analyzer.Flags.Var(&stringMethods, "stringmethods",
		"comma-separated list of names of methods of type func() string whose results must be used")
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Split functions into (pkg, name) pairs to save allocation later.
	pkgFuncs := make(map[[2]string]bool, len(funcs))
	for s := range funcs {
		if i := strings.LastIndexByte(s, '.'); i > 0 {
			pkgFuncs[[2]string{s[:i], s[i+1:]}] = true
		}
	}

	nodeFilter := []ast.Node{
		(*ast.ExprStmt)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		call, ok := ast.Unparen(n.(*ast.ExprStmt).X).(*ast.CallExpr)
		if !ok {
			return // not a call statement
		}

		// Call to function or method?
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return // e.g. var or builtin
		}
		if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
			// method (e.g. foo.String())
			if types.Identical(sig, sigNoArgsStringResult) {
				if stringMethods[fn.Name()] {
					pass.Reportf(call.Lparen, "result of (%s).%s call not used",
						sig.Recv().Type(), fn.Name())
				}
			}
		} else {
			// package-level function (e.g. fmt.Errorf)
			if pkgFuncs[[2]string{fn.Pkg().Path(), fn.Name()}] {
				pass.Reportf(call.Lparen, "result of %s.%s call not used",
					fn.Pkg().Path(), fn.Name())
			}
		}
	})
	return nil, nil
}

// func() string
var sigNoArgsStringResult = types.NewSignature(nil, nil,
	types.NewTuple(types.NewVar(token.NoPos, nil, "", types.Typ[types.String])),
	false)

type stringSetFlag map[string]bool

func (ss *stringSetFlag) String() string {
	var items []string
	for item := range *ss {
		items = append(items, item)
	}
	sort.Strings(items)
	return strings.Join(items, ",")
}

func (ss *stringSetFlag) Set(s string) error {
	m := make(map[string]bool) // clobber previous value
	if s != "" {
		for _, name := range strings.Split(s, ",") {
			if name == "" {
				continue // TODO: report error? proceed?
			}
			m[name] = true
		}
	}
	*ss = m
	return nil
}
