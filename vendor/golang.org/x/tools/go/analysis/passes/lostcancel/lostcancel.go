// Copyright 2016 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package lostcancel

import (
	_ "embed"
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name: "lostcancel",
	Doc:  analysisutil.MustExtractDoc(doc, "lostcancel"),
	URL:  "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/lostcancel",
	Run:  run,
	Requires: []*analysis.Analyzer{
		inspect.Analyzer,
		ctrlflow.Analyzer,
	},
}

const debug = false

var contextPackage = "context"

// checkLostCancel reports a failure to the call the cancel function
// returned by context.WithCancel, either because the variable was
// assigned to the blank identifier, or because there exists a
// control-flow path from the call to a return statement and that path
// does not "use" the cancel function.  Any reference to the variable
// counts as a use, even within a nested function literal.
// If the variable's scope is larger than the function
// containing the assignment, we assume that other uses exist.
//
// checkLostCancel analyzes a single named or literal function.
func run(pass *analysis.Pass) (interface{}, error) {
	// Fast path: bypass check if file doesn't use context.WithCancel.
	if !analysisutil.Imports(pass.Pkg, contextPackage) {
		return nil, nil
	}

	// Call runFunc for each Func{Decl,Lit}.
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeTypes := []ast.Node{
		(*ast.FuncLit)(nil),
		(*ast.FuncDecl)(nil),
	}
	inspect.Preorder(nodeTypes, func(n ast.Node) {
		runFunc(pass, n)
	})
	return nil, nil
}

func runFunc(pass *analysis.Pass, node ast.Node) {
	// Find scope of function node
	var funcScope *types.Scope
	switch v := node.(type) {
	case *ast.FuncLit:
		funcScope = pass.TypesInfo.Scopes[v.Type]
	case *ast.FuncDecl:
		funcScope = pass.TypesInfo.Scopes[v.Type]
	}

	// Maps each cancel variable to its defining ValueSpec/AssignStmt.
	cancelvars := make(map[*types.Var]ast.Node)

	// TODO(adonovan): opt: refactor to make a single pass
	// over the AST using inspect.WithStack and node types
	// {FuncDecl,FuncLit,CallExpr,SelectorExpr}.

	// Find the set of cancel vars to analyze.
	stack := make([]ast.Node, 0, 32)
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			if len(stack) > 0 {
				return false // don't stray into nested functions
			}
		case nil:
			stack = stack[:len(stack)-1] // pop
			return true
		}
		stack = append(stack, n) // push

		// Look for [{AssignStmt,ValueSpec} CallExpr SelectorExpr]:
		//
		//   ctx, cancel    := context.WithCancel(...)
		//   ctx, cancel     = context.WithCancel(...)
		//   var ctx, cancel = context.WithCancel(...)
		//
		if !isContextWithCancel(pass.TypesInfo, n) || !isCall(stack[len(stack)-2]) {
			return true
		}
		var id *ast.Ident // id of cancel var
		stmt := stack[len(stack)-3]
		switch stmt := stmt.(type) {
		case *ast.ValueSpec:
			if len(stmt.Names) > 1 {
				id = stmt.Names[1]
			}
		case *ast.AssignStmt:
			if len(stmt.Lhs) > 1 {
				id, _ = stmt.Lhs[1].(*ast.Ident)
			}
		}
		if id != nil {
			if id.Name == "_" {
				pass.ReportRangef(id,
					"the cancel function returned by context.%s should be called, not discarded, to avoid a context leak",
					n.(*ast.SelectorExpr).Sel.Name)
			} else if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				// If the cancel variable is defined outside function scope,
				// do not analyze it.
				if funcScope.Contains(v.Pos()) {
					cancelvars[v] = stmt
				}
			} else if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				cancelvars[v] = stmt
			}
		}
		return true
	})

	if len(cancelvars) == 0 {
		return // no need to inspect CFG
	}

	// Obtain the CFG.
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	var g *cfg.CFG
	var sig *types.Signature
	switch node := node.(type) {
	case *ast.FuncDecl:
		sig, _ = pass.TypesInfo.Defs[node.Name].Type().(*types.Signature)
		if node.Name.Name == "main" && sig.Recv() == nil && pass.Pkg.Name() == "main" {
			// Returning from main.main terminates the process,
			// so there's no need to cancel contexts.
			return
		}
		g = cfgs.FuncDecl(node)

	case *ast.FuncLit:
		sig, _ = pass.TypesInfo.Types[node.Type].Type.(*types.Signature)
		g = cfgs.FuncLit(node)
	}
	if sig == nil {
		return // missing type information
	}

	// Print CFG.
	if debug {
		fmt.Println(g.Format(pass.Fset))
	}

	// Examine the CFG for each variable in turn.
	// (It would be more efficient to analyze all cancelvars in a
	// single pass over the AST, but seldom is there more than one.)
	for v, stmt := range cancelvars {
		if ret := lostCancelPath(pass, g, v, stmt, sig); ret != nil {
			lineno := pass.Fset.Position(stmt.Pos()).Line
			pass.ReportRangef(stmt, "the %s function is not used on all paths (possible context leak)", v.Name())

			pos, end := ret.Pos(), ret.End()
			// golang/go#64547: cfg.Block.Return may return a synthetic
			// ReturnStmt that overflows the file.
			if pass.Fset.File(pos) != pass.Fset.File(end) {
				end = pos
			}
			pass.Report(analysis.Diagnostic{
				Pos:     pos,
				End:     end,
				Message: fmt.Sprintf("this return statement may be reached without using the %s var defined on line %d", v.Name(), lineno),
			})
		}
	}
}

func isCall(n ast.Node) bool { _, ok := n.(*ast.CallExpr); return ok }

// isContextWithCancel reports whether n is one of the qualified identifiers
// context.With{Cancel,Timeout,Deadline}.
func isContextWithCancel(info *types.Info, n ast.Node) bool {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "WithCancel", "WithCancelCause",
		"WithTimeout", "WithTimeoutCause",
		"WithDeadline", "WithDeadlineCause":
	default:
		return false
	}
	if x, ok := sel.X.(*ast.Ident); ok {
		if pkgname, ok := info.Uses[x].(*types.PkgName); ok {
			return pkgname.Imported().Path() == contextPackage
		}
		// Import failed, so we can't check package path.
		// Just check the local package name (heuristic).
		return x.Name == "context"
	}
	return false
}

// lostCancelPath finds a path through the CFG, from stmt (which defines
// the 'cancel' variable v) to a return statement, that doesn't "use" v.
// If it finds one, it returns the return statement (which may be synthetic).
// sig is the function's type, if known.
func lostCancelPath(pass *analysis.Pass, g *cfg.CFG, v *types.Var, stmt ast.Node, sig *types.Signature) *ast.ReturnStmt {
	vIsNamedResult := sig != nil && tupleContains(sig.Results(), v)

	// uses reports whether stmts contain a "use" of variable v.
	uses := func(pass *analysis.Pass, v *types.Var, stmts []ast.Node) bool {
		found := false
		for _, stmt := range stmts {
			ast.Inspect(stmt, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if pass.TypesInfo.Uses[n] == v {
						found = true
					}
				case *ast.ReturnStmt:
					// A naked return statement counts as a use
					// of the named result variables.
					if n.Results == nil && vIsNamedResult {
						found = true
					}
				}
				return !found
			})
		}
		return found
	}

	// blockUses computes "uses" for each block, caching the result.
	memo := make(map[*cfg.Block]bool)
	blockUses := func(pass *analysis.Pass, v *types.Var, b *cfg.Block) bool {
		res, ok := memo[b]
		if !ok {
			res = uses(pass, v, b.Nodes)
			memo[b] = res
		}
		return res
	}

	// Find the var's defining block in the CFG,
	// plus the rest of the statements of that block.
	var defblock *cfg.Block
	var rest []ast.Node
outer:
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == stmt {
				defblock = b
				rest = b.Nodes[i+1:]
				break outer
			}
		}
	}
	if defblock == nil {
		panic("internal error: can't find defining block for cancel var")
	}

	// Is v "used" in the remainder of its defining block?
	if uses(pass, v, rest) {
		return nil
	}

	// Does the defining block return without using v?
	if ret := defblock.Return(); ret != nil {
		return ret
	}

	// Search the CFG depth-first for a path, from defblock to a
	// return block, in which v is never "used".
	seen := make(map[*cfg.Block]bool)
	var search func(blocks []*cfg.Block) *ast.ReturnStmt
	search = func(blocks []*cfg.Block) *ast.ReturnStmt {
		for _, b := range blocks {
			if seen[b] {
				continue
			}
			seen[b] = true

			// Prune the search if the block uses v.
			if blockUses(pass, v, b) {
				continue
			}

			// Found path to return statement?
			if ret := b.Return(); ret != nil {
				if debug {
					fmt.Printf("found path to return in block %s\n", b)
				}
				return ret // found
			}

			// Recur
			if ret := search(b.Succs); ret != nil {
				if debug {
					fmt.Printf(" from block %s\n", b)
				}
				return ret
			}
		}
		return nil
	}
	return search(defblock.Succs)
}

func tupleContains(tuple *types.Tuple, v *types.Var) bool {
	for i := 0; i < tuple.Len(); i++ {
		if tuple.At(i) == v {
			return true
		}
	}
	return false
}
