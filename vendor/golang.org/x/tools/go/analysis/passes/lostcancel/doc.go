// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package lostcancel defines an Analyzer that checks for failure to
// call a context cancellation function.
//
// # Analyzer lostcancel
//
// lostcancel: check cancel func returned by context.WithCancel is called
//
// The cancellation function returned by context.WithCancel, WithTimeout,
// WithDeadline and variants such as WithCancelCause must be called,
// or the new context will remain live until its parent context is cancelled.
// (The background context is never cancelled.)
package lostcancel
