// Copyright 2020 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package ifaceassert

import (
	_ "embed"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/internal/typeparams"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "ifaceassert",
	Doc:      analysisutil.MustExtractDoc(doc, "ifaceassert"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/ifaceassert",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// assertableTo checks whether interface v can be asserted into t. It returns
// nil on success, or the first conflicting method on failure.
func assertableTo(free *typeparams.Free, v, t types.Type) *types.Func {
	if t == nil || v == nil {
		// not assertable to, but there is no missing method
		return nil
	}
	// ensure that v and t are interfaces
	V, _ := v.Underlying().(*types.Interface)
	T, _ := t.Underlying().(*types.Interface)
	if V == nil || T == nil {
		return nil
	}

	// Mitigations for interface comparisons and generics.
	// TODO(https://github.com/golang/go/issues/50658): Support more precise conclusion.
	if free.Has(V) || free.Has(T) {
		return nil
	}
	if f, wrongType := types.MissingMethod(V, T, false); wrongType {
		return f
	}
	return nil
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.TypeAssertExpr)(nil),
		(*ast.TypeSwitchStmt)(nil),
	}
	var free typeparams.Free
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		var (
			assert  *ast.TypeAssertExpr // v.(T) expression
			targets []ast.Expr          // interfaces T in v.(T)
		)
		switch n := n.(type) {
		case *ast.TypeAssertExpr:
			// take care of v.(type) in *ast.TypeSwitchStmt
			if n.Type == nil {
				return
			}
			assert = n
			targets = append(targets, n.Type)
		case *ast.TypeSwitchStmt:
			// retrieve type assertion from type switch's 'assign' field
			switch t := n.Assign.(type) {
			case *ast.ExprStmt:
				assert = t.X.(*ast.TypeAssertExpr)
			case *ast.AssignStmt:
				assert = t.Rhs[0].(*ast.TypeAssertExpr)
			}
			// gather target types from case clauses
			for _, c := range n.Body.List {
				targets = append(targets, c.(*ast.CaseClause).List...)
			}
		}
		V := pass.TypesInfo.TypeOf(assert.X)
		for _, target := range targets {
			T := pass.TypesInfo.TypeOf(target)
			if f := assertableTo(&free, V, T); f != nil {
				pass.Reportf(
					target.Pos(),
					"impossible type assertion: no type can implement both %v and %v (conflicting types for %v method)",
					V, T, f.Name(),
				)
			}
		}
	})
	return nil, nil
}
