// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package ifaceassert defines an Analyzer that flags
// impossible interface-interface type assertions.
//
// # Analyzer ifaceassert
//
// ifaceassert: detect impossible interface-to-interface type assertions
//
// This checker flags type assertions v.(T) and corresponding type-switch cases
// in which the static type V of v is an interface that cannot possibly implement
// the target interface T. This occurs when V and T contain methods with the same
// name but different signatures. Example:
//
//	var v interface {
//		Read()
//	}
//	_ = v.(io.Reader)
//
// The Read method in v has a different signature than the Read method in
// io.Reader, so this assertion cannot succeed.
package ifaceassert
