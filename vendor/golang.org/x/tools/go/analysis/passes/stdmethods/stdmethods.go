// Copyright 2010 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package stdmethods

import (
	_ "embed"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "stdmethods",
	Doc:      analysisutil.MustExtractDoc(doc, "stdmethods"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/stdmethods",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// canonicalMethods lists the input and output types for Go methods
// that are checked using dynamic interface checks. Because the
// checks are dynamic, such methods would not cause a compile error
// if they have the wrong signature: instead the dynamic check would
// fail, sometimes mysteriously. If a method is found with a name listed
// here but not the input/output types listed here, vet complains.
//
// A few of the canonical methods have very common names.
// For example, a type might implement a Scan method that
// has nothing to do with fmt.Scanner, but we still want to check
// the methods that are intended to implement fmt.Scanner.
// To do that, the arguments that have a = prefix are treated as
// signals that the canonical meaning is intended: if a Scan
// method doesn't have a fmt.ScanState as its first argument,
// we let it go. But if it does have a fmt.ScanState, then the
// rest has to match.
var canonicalMethods = map[string]struct{ args, results []string }{
	"As": {[]string{"any"}, []string{"bool"}}, // errors.As
	// "Flush": {{}, {"error"}}, // http.Flusher and jpeg.writer conflict
	"Format":        {[]string{"=fmt.State", "rune"}, []string{}},                      // fmt.Formatter
	"GobDecode":     {[]string{"[]byte"}, []string{"error"}},                           // gob.GobDecoder
	"GobEncode":     {[]string{}, []string{"[]byte", "error"}},                         // gob.GobEncoder
	"Is":            {[]string{"error"}, []string{"bool"}},                             // errors.Is
	"MarshalJSON":   {[]string{}, []string{"[]byte", "error"}},                         // json.Marshaler
	"MarshalXML":    {[]string{"*xml.Encoder", "xml.StartElement"}, []string{"error"}}, // xml.Marshaler
	"ReadByte":      {[]string{}, []string{"byte", "error"}},                           // io.ByteReader
	"ReadFrom":      {[]string{"=io.Reader"}, []string{"int64", "error"}},              // io.ReaderFrom
	"ReadRune":      {[]string{}, []string{"rune", "int", "error"}},                    // io.RuneReader
	"Scan":          {[]string{"=fmt.ScanState", "rune"}, []string{"error"}},           // fmt.Scanner
	"Seek":          {[]string{"=int64", "int"}, []string{"int64", "error"}},           // io.Seeker
	"UnmarshalJSON": {[]string{"[]byte"}, []string{"error"}},                           // json.Unmarshaler
	"UnmarshalXML":  {[]string{"*xml.Decoder", "xml.StartElement"}, []string{"error"}}, // xml.Unmarshaler
	"UnreadByte":    {[]string{}, []string{"error"}},
	"UnreadRune":    {[]string{}, []string{"error"}},
	"Unwrap":        {[]string{}, []string{"error"}},                      // errors.Unwrap
	"WriteByte":     {[]string{"byte"}, []string{"error"}},                // jpeg.writer (matching bufio.Writer)
	"WriteTo":       {[]string{"=io.Writer"}, []string{"int64", "error"}}, // io.WriterTo
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.InterfaceType)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				canonicalMethod(pass, n.Name)
			}
		case *ast.InterfaceType:
			for _, field := range n.Methods.List {
				for _, id := range field.Names {
					canonicalMethod(pass, id)
				}
			}
		}
	})
	return nil, nil
}

func canonicalMethod(pass *analysis.Pass, id *ast.Ident) {
	// Expected input/output.
	expect, ok := canonicalMethods[id.Name]
	if !ok {
		return
	}

	// Actual input/output
	sign := pass.TypesInfo.Defs[id].Type().(*types.Signature)
	args := sign.Params()
	results := sign.Results()

	// Special case: WriteTo with more than one argument,
	// not trying at all to implement io.WriterTo,
	// comes up often enough to skip.
	if id.Name == "WriteTo" && args.Len() > 1 {
		return
	}

	// Special case: Is, As and Unwrap only apply when type
	// implements error.
	if id.Name == "Is" || id.Name == "As" || id.Name == "Unwrap" {
		if recv := sign.Recv(); recv == nil || !implementsError(recv.Type()) {
			return
		}
	}

	// Special case: Unwrap has two possible signatures.
	// Check for Unwrap() []error here.
	if id.Name == "Unwrap" {
		if args.Len() == 0 && results.Len() == 1 {
			t := typeString(results.At(0).Type())
			if t == "error" || t == "[]error" {
				return
			}
		}
		pass.ReportRangef(id, "method Unwrap() should have signature Unwrap() error or Unwrap() []error")
		return
	}

	// Do the =s (if any) all match?
	if !matchParams(pass, expect.args, args, "=") || !matchParams(pass, expect.results, results, "=") {
		return
	}

	// Everything must match.
	if !matchParams(pass, expect.args, args, "") || !matchParams(pass, expect.results, results, "") {
		expectFmt := id.Name + "(" + argjoin(expect.args) + ")"
		if len(expect.results) == 1 {
			expectFmt += " " + argjoin(expect.results)
		} else if len(expect.results) > 1 {
			expectFmt += " (" + argjoin(expect.results) + ")"
		}

		actual := typeString(sign)
		actual = strings.TrimPrefix(actual, "func")
		actual = id.Name + actual

		pass.ReportRangef(id, "method %s should have signature %s", actual, expectFmt)
	}
}

func typeString(typ types.Type) string {
	return types.TypeString(typ, (*types.Package).Name)
}

func argjoin(x []string) string {
	y := make([]string, len(x))
	for i, s := range x {
		if s[0] == '=' {
			s = s[1:]
		}
		y[i] = s
	}
	return strings.Join(y, ", ")
}

// Does each type in expect with the given prefix match the corresponding type in actual?
func matchParams(pass *analysis.Pass, expect []string, actual *types.Tuple, prefix string) bool {
	for i, x := range expect {
		if !strings.HasPrefix(x, prefix) {
			continue
		}
		if i >= actual.Len() {
			return false
		}
		if !matchParamType(x, actual.At(i).Type()) {
			return false
		}
	}
	if prefix == "" && actual.Len() > len(expect) {
		return false
	}
	return true
}

// Does this one type match?
func matchParamType(expect string, actual types.Type) bool {
	expect = strings.TrimPrefix(expect, "=")
	// Overkill but easy.
	t := typeString(actual)
	return t == expect ||
		(t == "any" || t == "interface{}") && (expect == "any" || expect == "interface{}")
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func implementsError(actual types.Type) bool {
	return types.Implements(actual, errorType)
}
