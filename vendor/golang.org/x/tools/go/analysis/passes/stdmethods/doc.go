// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package stdmethods defines an Analyzer that checks for misspellings
// in the signatures of methods similar to well-known interfaces.
//
// # Analyzer stdmethods
//
// stdmethods: check signature of methods of well-known interfaces
//
// Sometimes a type may be intended to satisfy an interface but may fail to
// do so because of a mistake in its method signature.
// For example, the result of this WriteTo method should be (int64, error),
// not error, to satisfy io.WriterTo:
//
//	type myWriterTo struct{...}
//	func (myWriterTo) WriteTo(w io.Writer) error { ... }
//
// This check ensures that each method whose name matches one of several
// well-known interface methods from the standard library has the correct
// signature for that interface.
//
// Checked method names include:
//
//	Format GobEncode GobDecode MarshalJSON MarshalXML
//	Peek ReadByte ReadFrom ReadRune Scan Seek
//	UnmarshalJSON UnreadByte UnreadRune WriteByte
//	WriteTo
package stdmethods
