// Copyright 2013 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package asmdecl defines an Analyzer that reports mismatches between
// assembly files and Go declarations.
package asmdecl

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/build"
	"go/token"
	"go/types"
	"log"
	"regexp"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
)

const Doc = "report mismatches between assembly files and Go declarations"

var Analyzer = &analysis.Analyzer{
	Name: "asmdecl",
	Doc:  Doc,
	URL:  "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/asmdecl",
	Run:  run,
}

// 'kind' is a kind of assembly variable.
// The kinds 1, 2, 4, 8 stand for values of that size.
type asmKind int

// These special kinds are not valid sizes.
const (
	asmString asmKind = 100 + iota
	asmSlice
	asmArray
	asmInterface
	asmEmptyInterface
	asmStruct
	asmComplex
)

// An asmArch describes assembly parameters for an architecture
type asmArch struct {
	name      string
	bigEndian bool
	stack     string
	lr        bool
	// retRegs is a list of registers for return value in register ABI (ABIInternal).
	// For now, as we only check whether we write to any result, here we only need to
	// include the first integer register and first floating-point register. Accessing
	// any of them counts as writing to result.
	retRegs []string
	// writeResult is a list of instructions that will change result register implicity.
	writeResult []string
	// calculated during initialization
	sizes    types.Sizes
	intSize  int
	ptrSize  int
	maxAlign int
}

// An asmFunc describes the expected variables for a function on a given architecture.
type asmFunc struct {
	arch        *asmArch
	size        int // size of all arguments
	vars        map[string]*asmVar
	varByOffset map[int]*asmVar
}

// An asmVar describes a single assembly variable.
type asmVar struct {
	name  string
	kind  asmKind
	typ   string
	off   int
	size  int
	inner []*asmVar
}

var (
	asmArch386      = asmArch{name: "386", bigEndian: false, stack: "SP", lr: false}
	asmArchArm      = asmArch{name: "arm", bigEndian: false, stack: "R13", lr: true}
	asmArchArm64    = asmArch{name: "arm64", bigEndian: false, stack: "RSP", lr: true, retRegs: []string{"R0", "F0"}, writeResult: []string{"SVC"}}
	asmArchAmd64    = asmArch{name: "amd64", bigEndian: false, stack: "SP", lr: false, retRegs: []string{"AX", "X0"}, writeResult: []string{"SYSCALL"}}
	asmArchMips     = asmArch{name: "mips", bigEndian: true, stack: "R29", lr: true}
	asmArchMipsLE   = asmArch{name: "mipsle", bigEndian: false, stack: "R29", lr: true}
	asmArchMips64   = asmArch{name: "mips64", bigEndian: true, stack: "R29", lr: true}
	asmArchMips64LE = asmArch{name: "mips64le", bigEndian: false, stack: "R29", lr: true}
	asmArchPpc64    = asmArch{name: "ppc64", bigEndian: true, stack: "R1", lr: true, retRegs: []string{"R3", "F1"}, writeResult: []string{"SYSCALL"}}
	asmArchPpc64LE  = asmArch{name: "ppc64le", bigEndian: false, stack: "R1", lr: true, retRegs: []string{"R3", "F1"}, writeResult: []string{"SYSCALL"}}
	asmArchRISCV64  = asmArch{name: "riscv64", bigEndian: false, stack: "SP", lr: true, retRegs: []string{"X10", "F10"}, writeResult: []string{"ECALL"}}
	asmArchS390X    = asmArch{name: "s390x", bigEndian: true, stack: "R15", lr: true}
	asmArchWasm     = asmArch{name: "wasm", bigEndian: false, stack: "SP", lr: false}
	asmArchLoong64  = asmArch{name: "loong64", bigEndian: false, stack: "R3", lr: true, retRegs: []string{"R4", "F0"}, writeResult: []string{"SYSCALL"}}

	arches = []*asmArch{
		&asmArch386,
		&asmArchArm,
		&asmArchArm64,
		&asmArchAmd64,
		&asmArchMips,
		&asmArchMipsLE,
		&asmArchMips64,
		&asmArchMips64LE,
		&asmArchPpc64,
		&asmArchPpc64LE,
		&asmArchRISCV64,
		&asmArchS390X,
		&asmArchWasm,
		&asmArchLoong64,
	}
)

func init() {
	for _, arch := range arches {
		arch.sizes = types.SizesFor("gc", arch.name)
		if arch.sizes == nil {
			// TODO(adonovan): fix: now that asmdecl is not in the standard
			// library we cannot assume types.SizesFor is consistent with arches.
			// For now, assume 64-bit norms and print a warning.
			// But this warning should really be deferred until we attempt to use
			// arch, which is very unlikely. Better would be
			// to defer size computation until we have Pass.TypesSizes.
			arch.sizes = types.SizesFor("gc", "amd64")
			log.Printf("unknown architecture %s", arch.name)
		}
		arch.intSize = int(arch.sizes.Sizeof(types.Typ[types.Int]))
		arch.ptrSize = int(arch.sizes.Sizeof(types.Typ[types.UnsafePointer]))
		arch.maxAlign = int(arch.sizes.Alignof(types.Typ[types.Int64]))
	}
}

var (
	re           = regexp.MustCompile
	asmPlusBuild = re(`//\s+\+build\s+([^\n]+)`)
	asmTEXT      = re(`\bTEXT\b(.*)·([^\(]+)\(SB\)(?:\s*,\s*([0-9A-Z|+()]+))?(?:\s*,\s*\$(-?[0-9]+)(?:-([0-9]+))?)?`)
	asmDATA      = re(`\b(DATA|GLOBL)\b`)
	asmNamedFP   = re(`\$?([a-zA-Z0-9_\xFF-\x{10FFFF}]+)(?:\+([0-9]+))\(FP\)`)
	asmUnnamedFP = re(`[^+\-0-9](([0-9]+)\(FP\))`)
	asmSP        = re(`[^+\-0-9](([0-9]+)\(([A-Z0-9]+)\))`)
	asmOpcode    = re(`^\s*(?:[A-Z0-9a-z_]+:)?\s*([A-Z]+)\s*([^,]*)(?:,\s*(.*))?`)
	ppc64Suff    = re(`([BHWD])(ZU|Z|U|BR)?$`)
	abiSuff      = re(`^(.+)<(ABI.+)>$`)
)

func run(pass *analysis.Pass) (interface{}, error) {
	// No work if no assembly files.
	var sfiles []string
	for _, fname := range pass.OtherFiles {
		if strings.HasSuffix(fname, ".s") {
			sfiles = append(sfiles, fname)
		}
	}
	if sfiles == nil {
		return nil, nil
	}

	// Gather declarations. knownFunc[name][arch] is func description.
	knownFunc := make(map[string]map[string]*asmFunc)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if decl, ok := decl.(*ast.FuncDecl); ok && decl.Body == nil {
				knownFunc[decl.Name.Name] = asmParseDecl(pass, decl)
			}
		}
	}

Files:
	for _, fname := range sfiles {
		content, tf, err := analysisutil.ReadFile(pass, fname)
		if err != nil {
			return nil, err
		}

		// Determine architecture from file name if possible.
		var arch string
		var archDef *asmArch
		for _, a := range arches {
			if strings.HasSuffix(fname, "_"+a.name+".s") {
				arch = a.name
				archDef = a
				break
			}
		}

		lines := strings.SplitAfter(string(content), "\n")
		var (
			fn                 *asmFunc
			fnName             string
			abi                string
			localSize, argSize int
			wroteSP            bool
			noframe            bool
			haveRetArg         bool
			retLine            []int
		)

		flushRet := func() {
			if fn != nil && fn.vars["ret"] != nil && !haveRetArg && len(retLine) > 0 {
				v := fn.vars["ret"]
				resultStr := fmt.Sprintf("%d-byte ret+%d(FP)", v.size, v.off)
				if abi == "ABIInternal" {
					resultStr = "result register"
				}
				for _, line := range retLine {
					pass.Reportf(analysisutil.LineStart(tf, line), "[%s] %s: RET without writing to %s", arch, fnName, resultStr)
				}
			}
			retLine = nil
		}
		trimABI := func(fnName string) (string, string) {
			m := abiSuff.FindStringSubmatch(fnName)
			if m != nil {
				return m[1], m[2]
			}
			return fnName, ""
		}
		for lineno, line := range lines {
			lineno++

			badf := func(format string, args ...interface{}) {
				pass.Reportf(analysisutil.LineStart(tf, lineno), "[%s] %s: %s", arch, fnName, fmt.Sprintf(format, args...))
			}

			if arch == "" {
				// Determine architecture from +build line if possible.
				if m := asmPlusBuild.FindStringSubmatch(line); m != nil {
					// There can be multiple architectures in a single +build line,
					// so accumulate them all and then prefer the one that
					// matches build.Default.GOARCH.
					var archCandidates []*asmArch
					for _, fld := range strings.Fields(m[1]) {
						for _, a := range arches {
							if a.name == fld {
								archCandidates = append(archCandidates, a)
							}
						}
					}
					for _, a := range archCandidates {
						if a.name == build.Default.GOARCH {
							archCandidates = []*asmArch{a}
							break
						}
					}
					if len(archCandidates) > 0 {
						arch = archCandidates[0].name
						archDef = archCandidates[0]
					}
				}
			}

			// Ignore comments and commented-out code.
			if i := strings.Index(line, "//"); i >= 0 {
				line = line[:i]
			}

			if m := asmTEXT.FindStringSubmatch(line); m != nil {
				flushRet()
				if arch == "" {
					// Arch not specified by filename or build tags.
					// Fall back to build.Default.GOARCH.
					for _, a := range arches {
						if a.name == build.Default.GOARCH {
							arch = a.name
							archDef = a
							break
						}
					}
					if arch == "" {
						log.Printf("%s: cannot determine architecture for assembly file", fname)
						continue Files
					}
				}
				fnName = m[2]
				if pkgPath := strings.TrimSpace(m[1]); pkgPath != "" {
					// The assembler uses Unicode division slash within
					// identifiers to represent the directory separator.
					pkgPath = strings.Replace(pkgPath, "∕", "/", -1)
					if pkgPath != pass.Pkg.Path() {
						// log.Printf("%s:%d: [%s] cannot check cross-package assembly function: %s is in package %s", fname, lineno, arch, fnName, pkgPath)
						fn = nil
						fnName = ""
						abi = ""
						continue
					}
				}
				// Trim off optional ABI selector.
				fnName, abi = trimABI(fnName)
				flag := m[3]
				fn = knownFunc[fnName][arch]
				if fn != nil {
					size, _ := strconv.Atoi(m[5])
					if size != fn.size && (flag != "7" && !strings.Contains(flag, "NOSPLIT") || size != 0) {
						badf("wrong argument size %d; expected $...-%d", size, fn.size)
					}
				}
				localSize, _ = strconv.Atoi(m[4])
				localSize += archDef.intSize
				if archDef.lr && !strings.Contains(flag, "NOFRAME") {
					// Account for caller's saved LR
					localSize += archDef.intSize
				}
				argSize, _ = strconv.Atoi(m[5])
				noframe = strings.Contains(flag, "NOFRAME")
				if fn == nil && !strings.Contains(fnName, "<>") && !noframe {
					badf("function %s missing Go declaration", fnName)
				}
				wroteSP = false
				haveRetArg = false
				continue
			} else if strings.Contains(line, "TEXT") && strings.Contains(line, "SB") {
				// function, but not visible from Go (didn't match asmTEXT), so stop checking
				flushRet()
				fn = nil
				fnName = ""
				abi = ""
				continue
			}

			if strings.Contains(line, "RET") && !strings.Contains(line, "(SB)") {
				// RET f(SB) is a tail call. It is okay to not write the results.
				retLine = append(retLine, lineno)
			}

			if fnName == "" {
				continue
			}

			if asmDATA.FindStringSubmatch(line) != nil {
				fn = nil
			}

			if archDef == nil {
				continue
			}

			if strings.Contains(line, ", "+archDef.stack) || strings.Contains(line, ",\t"+archDef.stack) || strings.Contains(line, "NOP "+archDef.stack) || strings.Contains(line, "NOP\t"+archDef.stack) {
				wroteSP = true
				continue
			}

			if arch == "wasm" && strings.Contains(line, "CallImport") {
				// CallImport is a call out to magic that can write the result.
				haveRetArg = true
			}

			if abi == "ABIInternal" && !haveRetArg {
				for _, ins := range archDef.writeResult {
					if strings.Contains(line, ins) {
						haveRetArg = true
						break
					}
				}
				for _, reg := range archDef.retRegs {
					if strings.Contains(line, reg) {
						haveRetArg = true
						break
					}
				}
			}

			for _, m := range asmSP.FindAllStringSubmatch(line, -1) {
				if m[3] != archDef.stack || wroteSP || noframe {
					continue
				}
				off := 0
				if m[1] != "" {
					off, _ = strconv.Atoi(m[2])
				}
				if off >= localSize {
					if fn != nil {
						v := fn.varByOffset[off-localSize]
						if v != nil {
							badf("%s should be %s+%d(FP)", m[1], v.name, off-localSize)
							continue
						}
					}
					if off >= localSize+argSize {
						badf("use of %s points beyond argument frame", m[1])
						continue
					}
					badf("use of %s to access argument frame", m[1])
				}
			}

			if fn == nil {
				continue
			}

			for _, m := range asmUnnamedFP.FindAllStringSubmatch(line, -1) {
				off, _ := strconv.Atoi(m[2])
				v := fn.varByOffset[off]
				if v != nil {
					badf("use of unnamed argument %s; offset %d is %s+%d(FP)", m[1], off, v.name, v.off)
				} else {
					badf("use of unnamed argument %s", m[1])
				}
			}

			for _, m := range asmNamedFP.FindAllStringSubmatch(line, -1) {
				name := m[1]
				off := 0
				if m[2] != "" {
					off, _ = strconv.Atoi(m[2])
				}
				if name == "ret" || strings.HasPrefix(name, "ret_") {
					haveRetArg = true
				}
				v := fn.vars[name]
				if v == nil {
					// Allow argframe+0(FP).
					if name == "argframe" && off == 0 {
						continue
					}
					v = fn.varByOffset[off]
					if v != nil {
						badf("unknown variable %s; offset %d is %s+%d(FP)", name, off, v.name, v.off)
					} else {
						badf("unknown variable %s", name)
					}
					continue
				}
				asmCheckVar(badf, fn, line, m[0], off, v, archDef)
			}
		}
		flushRet()
	}
	return nil, nil
}

func asmKindForType(t types.Type, size int) asmKind {
	switch t := t.Underlying().(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.String:
			return asmString
		case types.Complex64, types.Complex128:
			return asmComplex
		}
		return asmKind(size)
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return asmKind(size)
	case *types.Struct:
		return asmStruct
	case *types.Interface:
		if t.Empty() {
			return asmEmptyInterface
		}
		return asmInterface
	case *types.Array:
		return asmArray
	case *types.Slice:
		return asmSlice
	}
	panic("unreachable")
}

// A component is an assembly-addressable component of a composite type,
// or a composite type itself.
type component struct {
	size   int
	offset int
	kind   asmKind
	typ    string
	suffix string // Such as _base for string base, _0_lo for lo half of first element of [1]uint64 on 32 bit machine.
	outer  string // The suffix for immediately containing composite type.
}

func newComponent(suffix string, kind asmKind, typ string, offset, size int, outer string) component {
	return component{suffix: suffix, kind: kind, typ: typ, offset: offset, size: size, outer: outer}
}

// componentsOfType generates a list of components of type t.
// For example, given string, the components are the string itself, the base, and the length.
func componentsOfType(arch *asmArch, t types.Type) []component {
	return appendComponentsRecursive(arch, t, nil, "", 0)
}

// appendComponentsRecursive implements componentsOfType.
// Recursion is required to correct handle structs and arrays,
// which can contain arbitrary other types.
func appendComponentsRecursive(arch *asmArch, t types.Type, cc []component, suffix string, off int) []component {
	s := t.String()
	size := int(arch.sizes.Sizeof(t))
	kind := asmKindForType(t, size)
	cc = append(cc, newComponent(suffix, kind, s, off, size, suffix))

	switch kind {
	case 8:
		if arch.ptrSize == 4 {
			w1, w2 := "lo", "hi"
			if arch.bigEndian {
				w1, w2 = w2, w1
			}
			cc = append(cc, newComponent(suffix+"_"+w1, 4, "half "+s, off, 4, suffix))
			cc = append(cc, newComponent(suffix+"_"+w2, 4, "half "+s, off+4, 4, suffix))
		}

	case asmEmptyInterface:
		cc = append(cc, newComponent(suffix+"_type", asmKind(arch.ptrSize), "interface type", off, arch.ptrSize, suffix))
		cc = append(cc, newComponent(suffix+"_data", asmKind(arch.ptrSize), "interface data", off+arch.ptrSize, arch.ptrSize, suffix))

	case asmInterface:
		cc = append(cc, newComponent(suffix+"_itable", asmKind(arch.ptrSize), "interface itable", off, arch.ptrSize, suffix))
		cc = append(cc, newComponent(suffix+"_data", asmKind(arch.ptrSize), "interface data", off+arch.ptrSize, arch.ptrSize, suffix))

	case asmSlice:
		cc = append(cc, newComponent(suffix+"_base", asmKind(arch.ptrSize), "slice base", off, arch.ptrSize, suffix))
		cc = append(cc, newComponent(suffix+"_len", asmKind(arch.intSize), "slice len", off+arch.ptrSize, arch.intSize, suffix))
		cc = append(cc, newComponent(suffix+"_cap", asmKind(arch.intSize), "slice cap", off+arch.ptrSize+arch.intSize, arch.intSize, suffix))

	case asmString:
		cc = append(cc, newComponent(suffix+"_base", asmKind(arch.ptrSize), "string base", off, arch.ptrSize, suffix))
		cc = append(cc, newComponent(suffix+"_len", asmKind(arch.intSize), "string len", off+arch.ptrSize, arch.intSize, suffix))

	case asmComplex:
		fsize := size / 2
		cc = append(cc, newComponent(suffix+"_real", asmKind(fsize), fmt.Sprintf("real(complex%d)", size*8), off, fsize, suffix))
		cc = append(cc, newComponent(suffix+"_imag", asmKind(fsize), fmt.Sprintf("imag(complex%d)", size*8), off+fsize, fsize, suffix))

	case asmStruct:
		tu := t.Underlying().(*types.Struct)
		fields := make([]*types.Var, tu.NumFields())
		for i := 0; i < tu.NumFields(); i++ {
			fields[i] = tu.Field(i)
		}
		offsets := arch.sizes.Offsetsof(fields)
		for i, f := range fields {
			cc = appendComponentsRecursive(arch, f.Type(), cc, suffix+"_"+f.Name(), off+int(offsets[i]))
		}

	case asmArray:
		tu := t.Underlying().(*types.Array)
		elem := tu.Elem()
		// Calculate offset of each element array.
		fields := []*types.Var{
			types.NewVar(token.NoPos, nil, "fake0", elem),
			types.NewVar(token.NoPos, nil, "fake1", elem),
		}
		offsets := arch.sizes.Offsetsof(fields)
		elemoff := int(offsets[1])
		for i := 0; i < int(tu.Len()); i++ {
			cc = appendComponentsRecursive(arch, elem, cc, suffix+"_"+strconv.Itoa(i), off+i*elemoff)
		}
	}

	return cc
}

// asmParseDecl parses a function decl for expected assembly variables.
func asmParseDecl(pass *analysis.Pass, decl *ast.FuncDecl) map[string]*asmFunc {
	var (
		arch   *asmArch
		fn     *asmFunc
		offset int
	)

	// addParams adds asmVars for each of the parameters in list.
	// isret indicates whether the list are the arguments or the return values.
	// TODO(adonovan): simplify by passing (*types.Signature).{Params,Results}
	// instead of list.
	addParams := func(list []*ast.Field, isret bool) {
		argnum := 0
		for _, fld := range list {
			t := pass.TypesInfo.Types[fld.Type].Type

			// Work around https://golang.org/issue/28277.
			if t == nil {
				if ell, ok := fld.Type.(*ast.Ellipsis); ok {
					t = types.NewSlice(pass.TypesInfo.Types[ell.Elt].Type)
				}
			}

			align := int(arch.sizes.Alignof(t))
			size := int(arch.sizes.Sizeof(t))
			offset += -offset & (align - 1)
			cc := componentsOfType(arch, t)

			// names is the list of names with this type.
			names := fld.Names
			if len(names) == 0 {
				// Anonymous args will be called arg, arg1, arg2, ...
				// Similarly so for return values: ret, ret1, ret2, ...
				name := "arg"
				if isret {
					name = "ret"
				}
				if argnum > 0 {
					name += strconv.Itoa(argnum)
				}
				names = []*ast.Ident{ast.NewIdent(name)}
			}
			argnum += len(names)

			// Create variable for each name.
			for _, id := range names {
				name := id.Name
				for _, c := range cc {
					outer := name + c.outer
					v := asmVar{
						name: name + c.suffix,
						kind: c.kind,
						typ:  c.typ,
						off:  offset + c.offset,
						size: c.size,
					}
					if vo := fn.vars[outer]; vo != nil {
						vo.inner = append(vo.inner, &v)
					}
					fn.vars[v.name] = &v
					for i := 0; i < v.size; i++ {
						fn.varByOffset[v.off+i] = &v
					}
				}
				offset += size
			}
		}
	}

	m := make(map[string]*asmFunc)
	for _, arch = range arches {
		fn = &asmFunc{
			arch:        arch,
			vars:        make(map[string]*asmVar),
			varByOffset: make(map[int]*asmVar),
		}
		offset = 0
		addParams(decl.Type.Params.List, false)
		if decl.Type.Results != nil && len(decl.Type.Results.List) > 0 {
			offset += -offset & (arch.maxAlign - 1)
			addParams(decl.Type.Results.List, true)
		}
		fn.size = offset
		m[arch.name] = fn
	}

	return m
}

// asmCheckVar checks a single variable reference.
func asmCheckVar(badf func(string, ...interface{}), fn *asmFunc, line, expr string, off int, v *asmVar, archDef *asmArch) {
	m := asmOpcode.FindStringSubmatch(line)
	if m == nil {
		if !strings.HasPrefix(strings.TrimSpace(line), "//") {
			badf("cannot find assembly opcode")
		}
		return
	}

	addr := strings.HasPrefix(expr, "$")

	// Determine operand sizes from instruction.
	// Typically the suffix suffices, but there are exceptions.
	var src, dst, kind asmKind
	op := m[1]
	switch fn.arch.name + "." + op {
	case "386.FMOVLP":
		src, dst = 8, 4
	case "arm.MOVD":
		src = 8
	case "arm.MOVW":
		src = 4
	case "arm.MOVH", "arm.MOVHU":
		src = 2
	case "arm.MOVB", "arm.MOVBU":
		src = 1
	// LEA* opcodes don't really read the second arg.
	// They just take the address of it.
	case "386.LEAL":
		dst = 4
		addr = true
	case "amd64.LEAQ":
		dst = 8
		addr = true
	default:
		switch fn.arch.name {
		case "386", "amd64":
			if strings.HasPrefix(op, "F") && (strings.HasSuffix(op, "D") || strings.HasSuffix(op, "DP")) {
				// FMOVDP, FXCHD, etc
				src = 8
				break
			}
			if strings.HasPrefix(op, "P") && strings.HasSuffix(op, "RD") {
				// PINSRD, PEXTRD, etc
				src = 4
				break
			}
			if strings.HasPrefix(op, "F") && (strings.HasSuffix(op, "F") || strings.HasSuffix(op, "FP")) {
				// FMOVFP, FXCHF, etc
				src = 4
				break
			}
			if strings.HasSuffix(op, "SD") {
				// MOVSD, SQRTSD, etc
				src = 8
				break
			}
			if strings.HasSuffix(op, "SS") {
				// MOVSS, SQRTSS, etc
				src = 4
				break
			}
			if op == "MOVO" || op == "MOVOU" {
				src = 16
				break
			}
			if strings.HasPrefix(op, "SET") {
				// SETEQ, etc
				src = 1
				break
			}
			switch op[len(op)-1] {
			case 'B':
				src = 1
			case 'W':
				src = 2
			case 'L':
				src = 4
			case 'D', 'Q':
				src = 8
			}
		case "ppc64", "ppc64le":
			// Strip standard suffixes to reveal size letter.
			m := ppc64Suff.FindStringSubmatch(op)
			if m != nil {
				switch m[1][0] {
				case 'B':
					src = 1
				case 'H':
					src = 2
				case 'W':
					src = 4
				case 'D':
					src = 8
				}
			}
		case "loong64", "mips", "mipsle", "mips64", "mips64le":
			switch op {
			case "MOVB", "MOVBU":
				src = 1
			case "MOVH", "MOVHU":
				src = 2
			case "MOVW", "MOVWU", "MOVF":
				src = 4
			case "MOVV", "MOVD":
				src = 8
			}
		case "s390x":
			switch op {
			case "MOVB", "MOVBZ":
				src = 1
			case "MOVH", "MOVHZ":
				src = 2
			case "MOVW", "MOVWZ", "FMOVS":
				src = 4
			case "MOVD", "FMOVD":
				src = 8
			}
		}
	}
	if dst == 0 {
		dst = src
	}

	// Determine whether the match we're holding
	// is the first or second argument.
	if strings.Index(line, expr) > strings.Index(line, ",") {
		kind = dst
	} else {
		kind = src
	}

	vk := v.kind
	vs := v.size
	vt := v.typ
	switch vk {
	case asmInterface, asmEmptyInterface, asmString, asmSlice:
		// allow reference to first word (pointer)
		vk = v.inner[0].kind
		vs = v.inner[0].size
		vt = v.inner[0].typ
	case asmComplex:
		// Allow a single instruction to load both parts of a complex.
		if int(kind) == vs {
			kind = asmComplex
		}
	}
	if addr {
		vk = asmKind(archDef.ptrSize)
		vs = archDef.ptrSize
		vt = "address"
	}

	if off != v.off {
		var inner bytes.Buffer
		for i, vi := range v.inner {
			if len(v.inner) > 1 {
				fmt.Fprintf(&inner, ",")
			}
			fmt.Fprintf(&inner, " ")
			if i == len(v.inner)-1 {
				fmt.Fprintf(&inner, "or ")
			}
			fmt.Fprintf(&inner, "%s+%d(FP)", vi.name, vi.off)
		}
		badf("invalid offset %s; expected %s+%d(FP)%s", expr, v.name, v.off, inner.String())
		return
	}
	if kind != 0 && kind != vk {
		var inner bytes.Buffer
		if len(v.inner) > 0 {
			fmt.Fprintf(&inner, " containing")
			for i, vi := range v.inner {
				if i > 0 && len(v.inner) > 2 {
					fmt.Fprintf(&inner, ",")
				}
				fmt.Fprintf(&inner, " ")
				if i > 0 && i == len(v.inner)-1 {
					fmt.Fprintf(&inner, "and ")
				}
				fmt.Fprintf(&inner, "%s+%d(FP)", vi.name, vi.off)
			}
		}
		badf("invalid %s of %s; %s is %d-byte value%s", op, expr, vt, vs, inner.String())
	}
}
