// Copyright 2020 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package sigchanyzer defines an Analyzer that detects
// misuse of unbuffered signal as argument to signal.Notify.
package sigchanyzer

import (
	"bytes"
	_ "embed"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
)

//go:embed doc.go
var doc string

// Analyzer describes sigchanyzer analysis function detector.
var Analyzer = &analysis.Analyzer{
	Name:     "sigchanyzer",
	Doc:      analysisutil.MustExtractDoc(doc, "sigchanyzer"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/sigchanyzer",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysisutil.Imports(pass.Pkg, "os/signal") {
		return nil, nil // doesn't directly import signal
	}

	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.CallExpr)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !isSignalNotify(pass.TypesInfo, call) {
			return
		}
		var chanDecl *ast.CallExpr
		switch arg := call.Args[0].(type) {
		case *ast.Ident:
			if decl, ok := findDecl(arg).(*ast.CallExpr); ok {
				chanDecl = decl
			}
		case *ast.CallExpr:
			// Only signal.Notify(make(chan os.Signal), os.Interrupt) is safe,
			// conservatively treat others as not safe, see golang/go#45043
			if isBuiltinMake(pass.TypesInfo, arg) {
				return
			}
			chanDecl = arg
		}
		if chanDecl == nil || len(chanDecl.Args) != 1 {
			return
		}

		// Make a copy of the channel's declaration to avoid
		// mutating the AST. See https://golang.org/issue/46129.
		chanDeclCopy := &ast.CallExpr{}
		*chanDeclCopy = *chanDecl
		chanDeclCopy.Args = append([]ast.Expr(nil), chanDecl.Args...)
		chanDeclCopy.Args = append(chanDeclCopy.Args, &ast.BasicLit{
			Kind:  token.INT,
			Value: "1",
		})

		var buf bytes.Buffer
		if err := format.Node(&buf, token.NewFileSet(), chanDeclCopy); err != nil {
			return
		}
		pass.Report(analysis.Diagnostic{
			Pos:     call.Pos(),
			End:     call.End(),
			Message: "misuse of unbuffered os.Signal channel as argument to signal.Notify",
			SuggestedFixes: []analysis.SuggestedFix{{
				Message: "Change to buffer channel",
				TextEdits: []analysis.TextEdit{{
					Pos:     chanDecl.Pos(),
					End:     chanDecl.End(),
					NewText: buf.Bytes(),
				}},
			}},
		})
	})
	return nil, nil
}

func isSignalNotify(info *types.Info, call *ast.CallExpr) bool {
	check := func(id *ast.Ident) bool {
		obj := info.ObjectOf(id)
		return obj.Name() == "Notify" && obj.Pkg().Path() == "os/signal"
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return check(fun.Sel)
	case *ast.Ident:
		if fun, ok := findDecl(fun).(*ast.SelectorExpr); ok {
			return check(fun.Sel)
		}
		return false
	default:
		return false
	}
}

func findDecl(arg *ast.Ident) ast.Node {
	if arg.Obj == nil {
		return nil
	}
	switch as := arg.Obj.Decl.(type) {
	case *ast.AssignStmt:
		if len(as.Lhs) != len(as.Rhs) {
			return nil
		}
		for i, lhs := range as.Lhs {
			lid, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			if lid.Obj == arg.Obj {
				return as.Rhs[i]
			}
		}
	case *ast.ValueSpec:
		if len(as.Names) != len(as.Values) {
			return nil
		}
		for i, name := range as.Names {
			if name.Obj == arg.Obj {
				return as.Values[i]
			}
		}
	}
	return nil
}

func isBuiltinMake(info *types.Info, call *ast.CallExpr) bool {
	typVal := info.Types[call.Fun]
	if !typVal.IsBuiltin() {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.ObjectOf(fun).Name() == "make"
	default:
		return false
	}
}
