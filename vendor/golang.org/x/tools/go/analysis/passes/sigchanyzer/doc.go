// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package sigchanyzer defines an Analyzer that detects
// misuse of unbuffered signal as argument to signal.Notify.
//
// # Analyzer sigchanyzer
//
// sigchanyzer: check for unbuffered channel of os.Signal
//
// This checker reports call expression of the form
//
//	signal.Notify(c <-chan os.Signal, sig ...os.Signal),
//
// where c is an unbuffered channel, which can be at risk of missing the signal.
package sigchanyzer
