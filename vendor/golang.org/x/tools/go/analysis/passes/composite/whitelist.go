// Copyright 2013 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package composite

// unkeyedLiteral is a white list of types in the standard packages
// that are used with unkeyed literals we deem to be acceptable.
var unkeyedLiteral = map[string]bool{
	// These image and image/color struct types are frozen. We will never add fields to them.
	"image/color.Alpha16": true,
	"image/color.Alpha":   true,
	"image/color.CMYK":    true,
	"image/color.Gray16":  true,
	"image/color.Gray":    true,
	"image/color.NRGBA64": true,
	"image/color.NRGBA":   true,
	"image/color.NYCbCrA": true,
	"image/color.RGBA64":  true,
	"image/color.RGBA":    true,
	"image/color.YCbCr":   true,
	"image.Point":         true,
	"image.Rectangle":     true,
	"image.Uniform":       true,

	"unicode.Range16": true,
	"unicode.Range32": true,

	// These four structs are used in generated test main files,
	// but the generator can be trusted.
	"testing.InternalBenchmark":  true,
	"testing.InternalExample":    true,
	"testing.InternalTest":       true,
	"testing.InternalFuzzTarget": true,
}
