// Copyright 2012 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package composite defines an Analyzer that checks for unkeyed
// composite literals.
package composite

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/internal/typeparams"
)

const Doc = `check for unkeyed composite literals

This analyzer reports a diagnostic for composite literals of struct
types imported from another package that do not use the field-keyed
syntax. Such literals are fragile because the addition of a new field
(even if unexported) to the struct will cause compilation to fail.

As an example,

	err = &net.DNSConfigError{err}

should be replaced by:

	err = &net.DNSConfigError{Err: err}
`

var Analyzer = &analysis.Analyzer{
	Name:             "composites",
	Doc:              Doc,
	URL:              "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/composite",
	Requires:         []*analysis.Analyzer{inspect.Analyzer},
	RunDespiteErrors: true,
	Run:              run,
}

var whitelist = true

func init() {
	Analyzer.Flags.BoolVar(&whitelist, "whitelist", whitelist, "use composite white list; for testing only")
}

// runUnkeyedLiteral checks if a composite literal is a struct literal with
// unkeyed fields.
func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.CompositeLit)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		cl := n.(*ast.CompositeLit)

		typ := pass.TypesInfo.Types[cl].Type
		if typ == nil {
			// cannot determine composite literals' type, skip it
			return
		}
		typeName := typ.String()
		if whitelist && unkeyedLiteral[typeName] {
			// skip whitelisted types
			return
		}
		var structuralTypes []types.Type
		switch typ := types.Unalias(typ).(type) {
		case *types.TypeParam:
			terms, err := typeparams.StructuralTerms(typ)
			if err != nil {
				return // invalid type
			}
			for _, term := range terms {
				structuralTypes = append(structuralTypes, term.Type())
			}
		default:
			structuralTypes = append(structuralTypes, typ)
		}

		for _, typ := range structuralTypes {
			strct, ok := typeparams.Deref(typ).Underlying().(*types.Struct)
			if !ok {
				// skip non-struct composite literals
				continue
			}
			if isLocalType(pass, typ) {
				// allow unkeyed locally defined composite literal
				continue
			}

			// check if the struct contains an unkeyed field
			allKeyValue := true
			var suggestedFixAvailable = len(cl.Elts) == strct.NumFields()
			var missingKeys []analysis.TextEdit
			for i, e := range cl.Elts {
				if _, ok := e.(*ast.KeyValueExpr); !ok {
					allKeyValue = false
					if i >= strct.NumFields() {
						break
					}
					field := strct.Field(i)
					if !field.Exported() {
						// Adding unexported field names for structs not defined
						// locally will not work.
						suggestedFixAvailable = false
						break
					}
					missingKeys = append(missingKeys, analysis.TextEdit{
						Pos:     e.Pos(),
						End:     e.Pos(),
						NewText: []byte(fmt.Sprintf("%s: ", field.Name())),
					})
				}
			}
			if allKeyValue {
				// all the struct fields are keyed
				continue
			}

			diag := analysis.Diagnostic{
				Pos:     cl.Pos(),
				End:     cl.End(),
				Message: fmt.Sprintf("%s struct literal uses unkeyed fields", typeName),
			}
			if suggestedFixAvailable {
				diag.SuggestedFixes = []analysis.SuggestedFix{{
					Message:   "Add field names to struct literal",
					TextEdits: missingKeys,
				}}
			}
			pass.Report(diag)
			return
		}
	})
	return nil, nil
}

// isLocalType reports whether typ belongs to the same package as pass.
// TODO(adonovan): local means "internal to a function"; rename to isSamePackageType.
func isLocalType(pass *analysis.Pass, typ types.Type) bool {
	switch x := types.Unalias(typ).(type) {
	case *types.Struct:
		// struct literals are local types
		return true
	case *types.Pointer:
		return isLocalType(pass, x.Elem())
	case interface{ Obj() *types.TypeName }: // *Named or *TypeParam (aliases were removed already)
		// names in package foo are local to foo_test too
		return strings.TrimSuffix(x.Obj().Pkg().Path(), "_test") == strings.TrimSuffix(pass.Pkg.Path(), "_test")
	}
	return false
}
