// Copyright 2012 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package loopclosure

import (
	_ "embed"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
	"golang.org/x/tools/internal/typesinternal"
	"golang.org/x/tools/internal/versions"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "loopclosure",
	Doc:      analysisutil.MustExtractDoc(doc, "loopclosure"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/loopclosure",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.File)(nil),
		(*ast.RangeStmt)(nil),
		(*ast.ForStmt)(nil),
	}
	inspect.Nodes(nodeFilter, func(n ast.Node, push bool) bool {
		if !push {
			// inspect.Nodes is slightly suboptimal as we only use push=true.
			return true
		}
		// Find the variables updated by the loop statement.
		var vars []types.Object
		addVar := func(expr ast.Expr) {
			if id, _ := expr.(*ast.Ident); id != nil {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					vars = append(vars, obj)
				}
			}
		}
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.File:
			// Only traverse the file if its goversion is strictly before go1.22.
			goversion := versions.FileVersion(pass.TypesInfo, n)
			return versions.Before(goversion, versions.Go1_22)
		case *ast.RangeStmt:
			body = n.Body
			addVar(n.Key)
			addVar(n.Value)
		case *ast.ForStmt:
			body = n.Body
			switch post := n.Post.(type) {
			case *ast.AssignStmt:
				// e.g. for p = head; p != nil; p = p.next
				for _, lhs := range post.Lhs {
					addVar(lhs)
				}
			case *ast.IncDecStmt:
				// e.g. for i := 0; i < n; i++
				addVar(post.X)
			}
		}
		if vars == nil {
			return true
		}

		// Inspect statements to find function literals that may be run outside of
		// the current loop iteration.
		//
		// For go, defer, and errgroup.Group.Go, we ignore all but the last
		// statement, because it's hard to prove go isn't followed by wait, or
		// defer by return. "Last" is defined recursively.
		//
		// TODO: consider allowing the "last" go/defer/Go statement to be followed by
		// N "trivial" statements, possibly under a recursive definition of "trivial"
		// so that that checker could, for example, conclude that a go statement is
		// followed by an if statement made of only trivial statements and trivial expressions,
		// and hence the go statement could still be checked.
		forEachLastStmt(body.List, func(last ast.Stmt) {
			var stmts []ast.Stmt
			switch s := last.(type) {
			case *ast.GoStmt:
				stmts = litStmts(s.Call.Fun)
			case *ast.DeferStmt:
				stmts = litStmts(s.Call.Fun)
			case *ast.ExprStmt: // check for errgroup.Group.Go
				if call, ok := s.X.(*ast.CallExpr); ok {
					stmts = litStmts(goInvoke(pass.TypesInfo, call))
				}
			}
			for _, stmt := range stmts {
				reportCaptured(pass, vars, stmt)
			}
		})

		// Also check for testing.T.Run (with T.Parallel).
		// We consider every t.Run statement in the loop body, because there is
		// no commonly used mechanism for synchronizing parallel subtests.
		// It is of course theoretically possible to synchronize parallel subtests,
		// though such a pattern is likely to be exceedingly rare as it would be
		// fighting against the test runner.
		for _, s := range body.List {
			switch s := s.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					for _, stmt := range parallelSubtest(pass.TypesInfo, call) {
						reportCaptured(pass, vars, stmt)
					}

				}
			}
		}
		return true
	})
	return nil, nil
}

// reportCaptured reports a diagnostic stating a loop variable
// has been captured by a func literal if checkStmt has escaping
// references to vars. vars is expected to be variables updated by a loop statement,
// and checkStmt is expected to be a statements from the body of a func literal in the loop.
func reportCaptured(pass *analysis.Pass, vars []types.Object, checkStmt ast.Stmt) {
	ast.Inspect(checkStmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		for _, v := range vars {
			if v == obj {
				pass.ReportRangef(id, "loop variable %s captured by func literal", id.Name)
			}
		}
		return true
	})
}

// forEachLastStmt calls onLast on each "last" statement in a list of statements.
// "Last" is defined recursively so, for example, if the last statement is
// a switch statement, then each switch case is also visited to examine
// its last statements.
func forEachLastStmt(stmts []ast.Stmt, onLast func(last ast.Stmt)) {
	if len(stmts) == 0 {
		return
	}

	s := stmts[len(stmts)-1]
	switch s := s.(type) {
	case *ast.IfStmt:
	loop:
		for {
			forEachLastStmt(s.Body.List, onLast)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				forEachLastStmt(e.List, onLast)
				break loop
			case *ast.IfStmt:
				s = e
			case nil:
				break loop
			}
		}
	case *ast.ForStmt:
		forEachLastStmt(s.Body.List, onLast)
	case *ast.RangeStmt:
		forEachLastStmt(s.Body.List, onLast)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			forEachLastStmt(cc.Body, onLast)
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			forEachLastStmt(cc.Body, onLast)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			forEachLastStmt(cc.Body, onLast)
		}
	default:
		onLast(s)
	}
}

// litStmts returns all statements from the function body of a function
// literal.
//
// If fun is not a function literal, it returns nil.
func litStmts(fun ast.Expr) []ast.Stmt {
	lit, _ := fun.(*ast.FuncLit)
	if lit == nil {
		return nil
	}
	return lit.Body.List
}

// goInvoke returns a function expression that would be called asynchronously
// (but not awaited) in another goroutine as a consequence of the call.
// For example, given the g.Go call below, it returns the function literal expression.
//
//	import "sync/errgroup"
//	var g errgroup.Group
//	g.Go(func() error { ... })
//
// Currently only "golang.org/x/sync/errgroup.Group()" is considered.
func goInvoke(info *types.Info, call *ast.CallExpr) ast.Expr {
	if !isMethodCall(info, call, "golang.org/x/sync/errgroup", "Group", "Go") {
		return nil
	}
	return call.Args[0]
}

// parallelSubtest returns statements that can be easily proven to execute
// concurrently via the go test runner, as t.Run has been invoked with a
// function literal that calls t.Parallel.
//
// In practice, users rely on the fact that statements before the call to
// t.Parallel are synchronous. For example by declaring test := test inside the
// function literal, but before the call to t.Parallel.
//
// Therefore, we only flag references in statements that are obviously
// dominated by a call to t.Parallel. As a simple heuristic, we only consider
// statements following the final labeled statement in the function body, to
// avoid scenarios where a jump would cause either the call to t.Parallel or
// the problematic reference to be skipped.
//
//	import "testing"
//
//	func TestFoo(t *testing.T) {
//		tests := []int{0, 1, 2}
//		for i, test := range tests {
//			t.Run("subtest", func(t *testing.T) {
//				println(i, test) // OK
//		 		t.Parallel()
//				println(i, test) // Not OK
//			})
//		}
//	}
func parallelSubtest(info *types.Info, call *ast.CallExpr) []ast.Stmt {
	if !isMethodCall(info, call, "testing", "T", "Run") {
		return nil
	}

	if len(call.Args) != 2 {
		// Ignore calls such as t.Run(fn()).
		return nil
	}

	lit, _ := call.Args[1].(*ast.FuncLit)
	if lit == nil {
		return nil
	}

	// Capture the *testing.T object for the first argument to the function
	// literal.
	if len(lit.Type.Params.List[0].Names) == 0 {
		return nil
	}

	tObj := info.Defs[lit.Type.Params.List[0].Names[0]]
	if tObj == nil {
		return nil
	}

	// Match statements that occur after a call to t.Parallel following the final
	// labeled statement in the function body.
	//
	// We iterate over lit.Body.List to have a simple, fast and "frequent enough"
	// dominance relationship for t.Parallel(): lit.Body.List[i] dominates
	// lit.Body.List[j] for i < j unless there is a jump.
	var stmts []ast.Stmt
	afterParallel := false
	for _, stmt := range lit.Body.List {
		stmt, labeled := unlabel(stmt)
		if labeled {
			// Reset: naively we don't know if a jump could have caused the
			// previously considered statements to be skipped.
			stmts = nil
			afterParallel = false
		}

		if afterParallel {
			stmts = append(stmts, stmt)
			continue
		}

		// Check if stmt is a call to t.Parallel(), for the correct t.
		exprStmt, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		expr := exprStmt.X
		if isMethodCall(info, expr, "testing", "T", "Parallel") {
			call, _ := expr.(*ast.CallExpr)
			if call == nil {
				continue
			}
			x, _ := call.Fun.(*ast.SelectorExpr)
			if x == nil {
				continue
			}
			id, _ := x.X.(*ast.Ident)
			if id == nil {
				continue
			}
			if info.Uses[id] == tObj {
				afterParallel = true
			}
		}
	}

	return stmts
}

// unlabel returns the inner statement for the possibly labeled statement stmt,
// stripping any (possibly nested) *ast.LabeledStmt wrapper.
//
// The second result reports whether stmt was an *ast.LabeledStmt.
func unlabel(stmt ast.Stmt) (ast.Stmt, bool) {
	labeled := false
	for {
		labelStmt, ok := stmt.(*ast.LabeledStmt)
		if !ok {
			return stmt, labeled
		}
		labeled = true
		stmt = labelStmt.Stmt
	}
}

// isMethodCall reports whether expr is a method call of
// <pkgPath>.<typeName>.<method>.
func isMethodCall(info *types.Info, expr ast.Expr, pkgPath, typeName, method string) bool {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return false
	}

	// Check that we are calling a method <method>
	f := typeutil.StaticCallee(info, call)
	if f == nil || f.Name() != method {
		return false
	}
	recv := f.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}

	// Check that the receiver is a <pkgPath>.<typeName> or
	// *<pkgPath>.<typeName>.
	_, named := typesinternal.ReceiverNamed(recv)
	return analysisutil.IsNamedType(named, pkgPath, typeName)
}
