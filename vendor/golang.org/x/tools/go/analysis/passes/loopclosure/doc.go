// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package loopclosure defines an Analyzer that checks for references to
// enclosing loop variables from within nested functions.
//
// # Analyzer loopclosure
//
// loopclosure: check references to loop variables from within nested functions
//
// This analyzer reports places where a function literal references the
// iteration variable of an enclosing loop, and the loop calls the function
// in such a way (e.g. with go or defer) that it may outlive the loop
// iteration and possibly observe the wrong value of the variable.
//
// Note: An iteration variable can only outlive a loop iteration in Go versions <=1.21.
// In Go 1.22 and later, the loop variable lifetimes changed to create a new
// iteration variable per loop iteration. (See go.dev/issue/60078.)
//
// In this example, all the deferred functions run after the loop has
// completed, so all observe the final value of v [<go1.22].
//
//	for _, v := range list {
//	    defer func() {
//	        use(v) // incorrect
//	    }()
//	}
//
// One fix is to create a new variable for each iteration of the loop:
//
//	for _, v := range list {
//	    v := v // new var per iteration
//	    defer func() {
//	        use(v) // ok
//	    }()
//	}
//
// After Go version 1.22, the previous two for loops are equivalent
// and both are correct.
//
// The next example uses a go statement and has a similar problem [<go1.22].
// In addition, it has a data race because the loop updates v
// concurrent with the goroutines accessing it.
//
//	for _, v := range elem {
//	    go func() {
//	        use(v)  // incorrect, and a data race
//	    }()
//	}
//
// A fix is the same as before. The checker also reports problems
// in goroutines started by golang.org/x/sync/errgroup.Group.
// A hard-to-spot variant of this form is common in parallel tests:
//
//	func Test(t *testing.T) {
//	    for _, test := range tests {
//	        t.Run(test.name, func(t *testing.T) {
//	            t.Parallel()
//	            use(test) // incorrect, and a data race
//	        })
//	    }
//	}
//
// The t.Parallel() call causes the rest of the function to execute
// concurrent with the loop [<go1.22].
//
// The analyzer reports references only in the last statement,
// as it is not deep enough to understand the effects of subsequent
// statements that might render the reference benign.
// ("Last statement" is defined recursively in compound
// statements such as if, switch, and select.)
//
// See: https://golang.org/doc/go_faq.html#closures_and_goroutines
package loopclosure
