// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package defers

import (
	_ "embed"
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

//go:embed doc.go
var doc string

// Analyzer is the defers analyzer.
var Analyzer = &analysis.Analyzer{
	Name:     "defers",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/defers",
	Doc:      analysisutil.MustExtractDoc(doc, "defers"),
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !analysisutil.Imports(pass.Pkg, "time") {
		return nil, nil
	}

	checkDeferCall := func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.CallExpr:
			if analysisutil.IsFunctionNamed(typeutil.StaticCallee(pass.TypesInfo, v), "time", "Since") {
				pass.Reportf(v.Pos(), "call to time.Since is not deferred")
			}
		case *ast.FuncLit:
			return false // prune
		}
		return true
	}

	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.DeferStmt)(nil),
	}

	inspect.Preorder(nodeFilter, func(n ast.Node) {
		d := n.(*ast.DeferStmt)
		ast.Inspect(d.Call, checkDeferCall)
	})

	return nil, nil
}
