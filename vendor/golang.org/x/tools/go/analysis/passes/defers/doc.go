// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package defers defines an Analyzer that checks for common mistakes in defer
// statements.
//
// # Analyzer defers
//
// defers: report common mistakes in defer statements
//
// The defers analyzer reports a diagnostic when a defer statement would
// result in a non-deferred call to time.Since, as experience has shown
// that this is nearly always a mistake.
//
// For example:
//
//	start := time.Now()
//	...
//	defer recordLatency(time.Since(start)) // error: call to time.Since is not deferred
//
// The correct code is:
//
//	defer func() { recordLatency(time.Since(start)) }()
package defers
