// Copyright 2024 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package stdversion reports uses of standard library symbols that are
// "too new" for the Go version in force in the referring file.
package stdversion

import (
	"go/ast"
	"go/build"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/internal/typesinternal"
	"golang.org/x/tools/internal/versions"
)

const Doc = `report uses of too-new standard library symbols

The stdversion analyzer reports references to symbols in the standard
library that were introduced by a Go release higher than the one in
force in the referring file. (Recall that the file's Go version is
defined by the 'go' directive its module's go.mod file, or by a
"//go:build go1.X" build tag at the top of the file.)

The analyzer does not report a diagnostic for a reference to a "too
new" field or method of a type that is itself "too new", as this may
have false positives, for example if fields or methods are accessed
through a type alias that is guarded by a Go version constraint.
`

var Analyzer = &analysis.Analyzer{
	Name:             "stdversion",
	Doc:              Doc,
	Requires:         []*analysis.Analyzer{inspect.Analyzer},
	URL:              "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/stdversion",
	RunDespiteErrors: true,
	Run:              run,
}

func run(pass *analysis.Pass) (any, error) {
	// Prior to go1.22, versions.FileVersion returns only the
	// toolchain version, which is of no use to us, so
	// disable this analyzer on earlier versions.
	if !slicesContains(build.Default.ReleaseTags, "go1.22") {
		return nil, nil
	}

	// Don't report diagnostics for modules marked before go1.21,
	// since at that time the go directive wasn't clearly
	// specified as a toolchain requirement.
	//
	// TODO(adonovan): after go1.21, call GoVersion directly.
	pkgVersion := any(pass.Pkg).(interface{ GoVersion() string }).GoVersion()
	if !versions.AtLeast(pkgVersion, "go1.21") {
		return nil, nil
	}

	// disallowedSymbols returns the set of standard library symbols
	// in a given package that are disallowed at the specified Go version.
	type key struct {
		pkg     *types.Package
		version string
	}
	memo := make(map[key]map[types.Object]string) // records symbol's minimum Go version
	disallowedSymbols := func(pkg *types.Package, version string) map[types.Object]string {
		k := key{pkg, version}
		disallowed, ok := memo[k]
		if !ok {
			disallowed = typesinternal.TooNewStdSymbols(pkg, version)
			memo[k] = disallowed
		}
		return disallowed
	}

	// Scan the syntax looking for references to symbols
	// that are disallowed by the version of the file.
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.File)(nil),
		(*ast.Ident)(nil),
	}
	var fileVersion string // "" => no check
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.File:
			if isGenerated(n) {
				// Suppress diagnostics in generated files (such as cgo).
				fileVersion = ""
			} else {
				fileVersion = versions.Lang(versions.FileVersion(pass.TypesInfo, n))
				// (may be "" if unknown)
			}

		case *ast.Ident:
			if fileVersion != "" {
				if obj, ok := pass.TypesInfo.Uses[n]; ok && obj.Pkg() != nil {
					disallowed := disallowedSymbols(obj.Pkg(), fileVersion)
					if minVersion, ok := disallowed[origin(obj)]; ok {
						noun := "module"
						if fileVersion != pkgVersion {
							noun = "file"
						}
						pass.ReportRangef(n, "%s.%s requires %v or later (%s is %s)",
							obj.Pkg().Name(), obj.Name(), minVersion, noun, fileVersion)
					}
				}
			}
		}
	})
	return nil, nil
}

// Reduced from x/tools/gopls/internal/golang/util.go. Good enough for now.
// TODO(adonovan): use ast.IsGenerated in go1.21.
func isGenerated(f *ast.File) bool {
	for _, group := range f.Comments {
		for _, comment := range group.List {
			if matched := generatedRx.MatchString(comment.Text); matched {
				return true
			}
		}
	}
	return false
}

// Matches cgo generated comment as well as the proposed standard:
//
//	https://golang.org/s/generatedcode
var generatedRx = regexp.MustCompile(`// .*DO NOT EDIT\.?`)

// origin returns the original uninstantiated symbol for obj.
func origin(obj types.Object) types.Object {
	switch obj := obj.(type) {
	case *types.Var:
		return obj.Origin()
	case *types.Func:
		return obj.Origin()
	case *types.TypeName:
		if named, ok := obj.Type().(*types.Named); ok { // (don't unalias)
			return named.Origin().Obj()
		}
	}
	return obj
}

// TODO(adonovan): use go1.21 slices.Contains.
func slicesContains[S ~[]E, E comparable](slice S, x E) bool {
	for _, elem := range slice {
		if elem == x {
			return true
		}
	}
	return false
}
