// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

//go:build go1.21

package cgocall

import "go/types"

func setGoVersion(tc *types.Config, pkg *types.Package) {
	tc.GoVersion = pkg.GoVersion()
}
