// Copyright 2017 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package shift

// Simplified dead code detector.
// Used for skipping shift checks on unreachable arch-specific code.

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// updateDead puts unreachable "if" and "case" nodes into dead.
func updateDead(info *types.Info, dead map[ast.Node]bool, node ast.Node) {
	if dead[node] {
		// The node is already marked as dead.
		return
	}

	// setDead marks the node and all the children as dead.
	setDead := func(n ast.Node) {
		ast.Inspect(n, func(node ast.Node) bool {
			if node != nil {
				dead[node] = true
			}
			return true
		})
	}

	switch stmt := node.(type) {
	case *ast.IfStmt:
		// "if" branch is dead if its condition evaluates
		// to constant false.
		v := info.Types[stmt.Cond].Value
		if v == nil {
			return
		}
		if !constant.BoolVal(v) {
			setDead(stmt.Body)
			return
		}
		if stmt.Else != nil {
			setDead(stmt.Else)
		}
	case *ast.SwitchStmt:
		// Case clause with empty switch tag is dead if it evaluates
		// to constant false.
		if stmt.Tag == nil {
		BodyLoopBool:
			for _, stmt := range stmt.Body.List {
				cc := stmt.(*ast.CaseClause)
				if cc.List == nil {
					// Skip default case.
					continue
				}
				for _, expr := range cc.List {
					v := info.Types[expr].Value
					if v == nil || v.Kind() != constant.Bool || constant.BoolVal(v) {
						continue BodyLoopBool
					}
				}
				setDead(cc)
			}
			return
		}

		// Case clause is dead if its constant value doesn't match
		// the constant value from the switch tag.
		// TODO: This handles integer comparisons only.
		v := info.Types[stmt.Tag].Value
		if v == nil || v.Kind() != constant.Int {
			return
		}
		tagN, ok := constant.Uint64Val(v)
		if !ok {
			return
		}
	BodyLoopInt:
		for _, x := range stmt.Body.List {
			cc := x.(*ast.CaseClause)
			if cc.List == nil {
				// Skip default case.
				continue
			}
			for _, expr := range cc.List {
				v := info.Types[expr].Value
				if v == nil {
					continue BodyLoopInt
				}
				n, ok := constant.Uint64Val(v)
				if !ok || tagN == n {
					continue BodyLoopInt
				}
			}
			setDead(cc)
		}
	}
}
