// Copyright 2014 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package shift defines an Analyzer that checks for shifts that exceed
// the width of an integer.
package shift

// TODO(adonovan): integrate with ctrflow (CFG-based) dead code analysis. May
// have impedance mismatch due to its (non-)treatment of constant
// expressions (such as runtime.GOARCH=="386").

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/internal/typeparams"
)

const Doc = "check for shifts that equal or exceed the width of the integer"

var Analyzer = &analysis.Analyzer{
	Name:     "shift",
	Doc:      Doc,
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/shift",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Do a complete pass to compute dead nodes.
	dead := make(map[ast.Node]bool)
	nodeFilter := []ast.Node{
		(*ast.IfStmt)(nil),
		(*ast.SwitchStmt)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		// TODO(adonovan): move updateDead into this file.
		updateDead(pass.TypesInfo, dead, n)
	})

	nodeFilter = []ast.Node{
		(*ast.AssignStmt)(nil),
		(*ast.BinaryExpr)(nil),
	}
	inspect.Preorder(nodeFilter, func(node ast.Node) {
		if dead[node] {
			// Skip shift checks on unreachable nodes.
			return
		}

		switch node := node.(type) {
		case *ast.BinaryExpr:
			if node.Op == token.SHL || node.Op == token.SHR {
				checkLongShift(pass, node, node.X, node.Y)
			}
		case *ast.AssignStmt:
			if len(node.Lhs) != 1 || len(node.Rhs) != 1 {
				return
			}
			if node.Tok == token.SHL_ASSIGN || node.Tok == token.SHR_ASSIGN {
				checkLongShift(pass, node, node.Lhs[0], node.Rhs[0])
			}
		}
	})
	return nil, nil
}

// checkLongShift checks if shift or shift-assign operations shift by more than
// the length of the underlying variable.
func checkLongShift(pass *analysis.Pass, node ast.Node, x, y ast.Expr) {
	if pass.TypesInfo.Types[x].Value != nil {
		// Ignore shifts of constants.
		// These are frequently used for bit-twiddling tricks
		// like ^uint(0) >> 63 for 32/64 bit detection and compatibility.
		return
	}

	v := pass.TypesInfo.Types[y].Value
	if v == nil {
		return
	}
	u := constant.ToInt(v) // either an Int or Unknown
	amt, ok := constant.Int64Val(u)
	if !ok {
		return
	}
	t := pass.TypesInfo.Types[x].Type
	if t == nil {
		return
	}
	var structuralTypes []types.Type
	switch t := types.Unalias(t).(type) {
	case *types.TypeParam:
		terms, err := typeparams.StructuralTerms(t)
		if err != nil {
			return // invalid type
		}
		for _, term := range terms {
			structuralTypes = append(structuralTypes, term.Type())
		}
	default:
		structuralTypes = append(structuralTypes, t)
	}
	sizes := make(map[int64]struct{})
	for _, t := range structuralTypes {
		size := 8 * pass.TypesSizes.Sizeof(t)
		sizes[size] = struct{}{}
	}
	minSize := int64(math.MaxInt64)
	for size := range sizes {
		if size < minSize {
			minSize = size
		}
	}
	if amt >= minSize {
		ident := analysisutil.Format(pass.Fset, x)
		qualifier := ""
		if len(sizes) > 1 {
			qualifier = "may be "
		}
		pass.ReportRangef(node, "%s (%s%d bits) too small for shift of %d", ident, qualifier, minSize, amt)
	}
}
