// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package unreachable defines an Analyzer that checks for unreachable code.
//
// # Analyzer unreachable
//
// unreachable: check for unreachable code
//
// The unreachable analyzer finds statements that execution can never reach
// because they are preceded by an return statement, a call to panic, an
// infinite loop, or similar constructs.
package unreachable
