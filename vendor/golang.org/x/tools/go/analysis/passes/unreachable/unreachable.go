// Copyright 2013 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package unreachable

// TODO(adonovan): use the new cfg package, which is more precise.

import (
	_ "embed"
	"go/ast"
	"go/token"
	"log"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:             "unreachable",
	Doc:              analysisutil.MustExtractDoc(doc, "unreachable"),
	URL:              "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/unreachable",
	Requires:         []*analysis.Analyzer{inspect.Analyzer},
	RunDespiteErrors: true,
	Run:              run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.FuncDecl)(nil),
		(*ast.FuncLit)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.FuncDecl:
			body = n.Body
		case *ast.FuncLit:
			body = n.Body
		}
		if body == nil {
			return
		}
		d := &deadState{
			pass:     pass,
			hasBreak: make(map[ast.Stmt]bool),
			hasGoto:  make(map[string]bool),
			labels:   make(map[string]ast.Stmt),
		}
		d.findLabels(body)
		d.reachable = true
		d.findDead(body)
	})
	return nil, nil
}

type deadState struct {
	pass        *analysis.Pass
	hasBreak    map[ast.Stmt]bool
	hasGoto     map[string]bool
	labels      map[string]ast.Stmt
	breakTarget ast.Stmt

	reachable bool
}

// findLabels gathers information about the labels defined and used by stmt
// and about which statements break, whether a label is involved or not.
func (d *deadState) findLabels(stmt ast.Stmt) {
	switch x := stmt.(type) {
	default:
		log.Fatalf("%s: internal error in findLabels: unexpected statement %T", d.pass.Fset.Position(x.Pos()), x)

	case *ast.AssignStmt,
		*ast.BadStmt,
		*ast.DeclStmt,
		*ast.DeferStmt,
		*ast.EmptyStmt,
		*ast.ExprStmt,
		*ast.GoStmt,
		*ast.IncDecStmt,
		*ast.ReturnStmt,
		*ast.SendStmt:
		// no statements inside

	case *ast.BlockStmt:
		for _, stmt := range x.List {
			d.findLabels(stmt)
		}

	case *ast.BranchStmt:
		switch x.Tok {
		case token.GOTO:
			if x.Label != nil {
				d.hasGoto[x.Label.Name] = true
			}

		case token.BREAK:
			stmt := d.breakTarget
			if x.Label != nil {
				stmt = d.labels[x.Label.Name]
			}
			if stmt != nil {
				d.hasBreak[stmt] = true
			}
		}

	case *ast.IfStmt:
		d.findLabels(x.Body)
		if x.Else != nil {
			d.findLabels(x.Else)
		}

	case *ast.LabeledStmt:
		d.labels[x.Label.Name] = x.Stmt
		d.findLabels(x.Stmt)

	// These cases are all the same, but the x.Body only works
	// when the specific type of x is known, so the cases cannot
	// be merged.
	case *ast.ForStmt:
		outer := d.breakTarget
		d.breakTarget = x
		d.findLabels(x.Body)
		d.breakTarget = outer

	case *ast.RangeStmt:
		outer := d.breakTarget
		d.breakTarget = x
		d.findLabels(x.Body)
		d.breakTarget = outer

	case *ast.SelectStmt:
		outer := d.breakTarget
		d.breakTarget = x
		d.findLabels(x.Body)
		d.breakTarget = outer

	case *ast.SwitchStmt:
		outer := d.breakTarget
		d.breakTarget = x
		d.findLabels(x.Body)
		d.breakTarget = outer

	case *ast.TypeSwitchStmt:
		outer := d.breakTarget
		d.breakTarget = x
		d.findLabels(x.Body)
		d.breakTarget = outer

	case *ast.CommClause:
		for _, stmt := range x.Body {
			d.findLabels(stmt)
		}

	case *ast.CaseClause:
		for _, stmt := range x.Body {
			d.findLabels(stmt)
		}
	}
}

// findDead walks the statement looking for dead code.
// If d.reachable is false on entry, stmt itself is dead.
// When findDead returns, d.reachable tells whether the
// statement following stmt is reachable.
func (d *deadState) findDead(stmt ast.Stmt) {
	// Is this a labeled goto target?
	// If so, assume it is reachable due to the goto.
	// This is slightly conservative, in that we don't
	// check that the goto is reachable, so
	//	L: goto L
	// will not provoke a warning.
	// But it's good enough.
	if x, isLabel := stmt.(*ast.LabeledStmt); isLabel && d.hasGoto[x.Label.Name] {
		d.reachable = true
	}

	if !d.reachable {
		switch stmt.(type) {
		case *ast.EmptyStmt:
			// do not warn about unreachable empty statements
		default:
			d.pass.Report(analysis.Diagnostic{
				Pos:     stmt.Pos(),
				End:     stmt.End(),
				Message: "unreachable code",
				SuggestedFixes: []analysis.SuggestedFix{{
					Message: "Remove",
					TextEdits: []analysis.TextEdit{{
						Pos: stmt.Pos(),
						End: stmt.End(),
					}},
				}},
			})
			d.reachable = true // silence error about next statement
		}
	}

	switch x := stmt.(type) {
	default:
		log.Fatalf("%s: internal error in findDead: unexpected statement %T", d.pass.Fset.Position(x.Pos()), x)

	case *ast.AssignStmt,
		*ast.BadStmt,
		*ast.DeclStmt,
		*ast.DeferStmt,
		*ast.EmptyStmt,
		*ast.GoStmt,
		*ast.IncDecStmt,
		*ast.SendStmt:
		// no control flow

	case *ast.BlockStmt:
		for _, stmt := range x.List {
			d.findDead(stmt)
		}

	case *ast.BranchStmt:
		switch x.Tok {
		case token.BREAK, token.GOTO, token.FALLTHROUGH:
			d.reachable = false
		case token.CONTINUE:
			// NOTE: We accept "continue" statements as terminating.
			// They are not necessary in the spec definition of terminating,
			// because a continue statement cannot be the final statement
			// before a return. But for the more general problem of syntactically
			// identifying dead code, continue redirects control flow just
			// like the other terminating statements.
			d.reachable = false
		}

	case *ast.ExprStmt:
		// Call to panic?
		call, ok := x.X.(*ast.CallExpr)
		if ok {
			name, ok := call.Fun.(*ast.Ident)
			if ok && name.Name == "panic" && name.Obj == nil {
				d.reachable = false
			}
		}

	case *ast.ForStmt:
		d.findDead(x.Body)
		d.reachable = x.Cond != nil || d.hasBreak[x]

	case *ast.IfStmt:
		d.findDead(x.Body)
		if x.Else != nil {
			r := d.reachable
			d.reachable = true
			d.findDead(x.Else)
			d.reachable = d.reachable || r
		} else {
			// might not have executed if statement
			d.reachable = true
		}

	case *ast.LabeledStmt:
		d.findDead(x.Stmt)

	case *ast.RangeStmt:
		d.findDead(x.Body)
		d.reachable = true

	case *ast.ReturnStmt:
		d.reachable = false

	case *ast.SelectStmt:
		// NOTE: Unlike switch and type switch below, we don't care
		// whether a select has a default, because a select without a
		// default blocks until one of the cases can run. That's different
		// from a switch without a default, which behaves like it has
		// a default with an empty body.
		anyReachable := false
		for _, comm := range x.Body.List {
			d.reachable = true
			for _, stmt := range comm.(*ast.CommClause).Body {
				d.findDead(stmt)
			}
			anyReachable = anyReachable || d.reachable
		}
		d.reachable = anyReachable || d.hasBreak[x]

	case *ast.SwitchStmt:
		anyReachable := false
		hasDefault := false
		for _, cas := range x.Body.List {
			cc := cas.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			d.reachable = true
			for _, stmt := range cc.Body {
				d.findDead(stmt)
			}
			anyReachable = anyReachable || d.reachable
		}
		d.reachable = anyReachable || d.hasBreak[x] || !hasDefault

	case *ast.TypeSwitchStmt:
		anyReachable := false
		hasDefault := false
		for _, cas := range x.Body.List {
			cc := cas.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			d.reachable = true
			for _, stmt := range cc.Body {
				d.findDead(stmt)
			}
			anyReachable = anyReachable || d.reachable
		}
		d.reachable = anyReachable || d.hasBreak[x] || !hasDefault
	}
}
