// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package tests defines an Analyzer that checks for common mistaken
// usages of tests and examples.
//
// # Analyzer tests
//
// tests: check for common mistaken usages of tests and examples
//
// The tests checker walks Test, Benchmark, Fuzzing and Example functions checking
// malformed names, wrong signatures and examples documenting non-existent
// identifiers.
//
// Please see the documentation for package testing in golang.org/pkg/testing
// for the conventions that are enforced for Tests, Benchmarks, and Examples.
package tests
