// Copyright 2015 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package tests

import (
	_ "embed"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
	"unicode"
	"unicode/utf8"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name: "tests",
	Doc:  analysisutil.MustExtractDoc(doc, "tests"),
	URL:  "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/tests",
	Run:  run,
}

var acceptedFuzzTypes = []types.Type{
	types.Typ[types.String],
	types.Typ[types.Bool],
	types.Typ[types.Float32],
	types.Typ[types.Float64],
	types.Typ[types.Int],
	types.Typ[types.Int8],
	types.Typ[types.Int16],
	types.Typ[types.Int32],
	types.Typ[types.Int64],
	types.Typ[types.Uint],
	types.Typ[types.Uint8],
	types.Typ[types.Uint16],
	types.Typ[types.Uint32],
	types.Typ[types.Uint64],
	types.NewSlice(types.Universe.Lookup("byte").Type()),
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if !strings.HasSuffix(pass.Fset.File(f.FileStart).Name(), "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil {
				// Ignore non-functions or functions with receivers.
				continue
			}
			switch {
			case strings.HasPrefix(fn.Name.Name, "Example"):
				checkExampleName(pass, fn)
				checkExampleOutput(pass, fn, f.Comments)
			case strings.HasPrefix(fn.Name.Name, "Test"):
				checkTest(pass, fn, "Test")
			case strings.HasPrefix(fn.Name.Name, "Benchmark"):
				checkTest(pass, fn, "Benchmark")
			case strings.HasPrefix(fn.Name.Name, "Fuzz"):
				checkTest(pass, fn, "Fuzz")
				checkFuzz(pass, fn)
			}
		}
	}
	return nil, nil
}

// checkFuzz checks the contents of a fuzz function.
func checkFuzz(pass *analysis.Pass, fn *ast.FuncDecl) {
	params := checkFuzzCall(pass, fn)
	if params != nil {
		checkAddCalls(pass, fn, params)
	}
}

// checkFuzzCall checks the arguments of f.Fuzz() calls:
//
//  1. f.Fuzz() should call a function and it should be of type (*testing.F).Fuzz().
//  2. The called function in f.Fuzz(func(){}) should not return result.
//  3. First argument of func() should be of type *testing.T
//  4. Second argument onwards should be of type []byte, string, bool, byte,
//     rune, float32, float64, int, int8, int16, int32, int64, uint, uint8, uint16,
//     uint32, uint64
//  5. func() must not call any *F methods, e.g. (*F).Log, (*F).Error, (*F).Skip
//     The only *F methods that are allowed in the (*F).Fuzz function are (*F).Failed and (*F).Name.
//
// Returns the list of parameters to the fuzz function, if they are valid fuzz parameters.
func checkFuzzCall(pass *analysis.Pass, fn *ast.FuncDecl) (params *types.Tuple) {
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok {
			if !isFuzzTargetDotFuzz(pass, call) {
				return true
			}

			// Only one argument (func) must be passed to (*testing.F).Fuzz.
			if len(call.Args) != 1 {
				return true
			}
			expr := call.Args[0]
			if pass.TypesInfo.Types[expr].Type == nil {
				return true
			}
			t := pass.TypesInfo.Types[expr].Type.Underlying()
			tSign, argOk := t.(*types.Signature)
			// Argument should be a function
			if !argOk {
				pass.ReportRangef(expr, "argument to Fuzz must be a function")
				return false
			}
			// ff Argument function should not return
			if tSign.Results().Len() != 0 {
				pass.ReportRangef(expr, "fuzz target must not return any value")
			}
			// ff Argument function should have 1 or more argument
			if tSign.Params().Len() == 0 {
				pass.ReportRangef(expr, "fuzz target must have 1 or more argument")
				return false
			}
			ok := validateFuzzArgs(pass, tSign.Params(), expr)
			if ok && params == nil {
				params = tSign.Params()
			}
			// Inspect the function that was passed as an argument to make sure that
			// there are no calls to *F methods, except for Name and Failed.
			ast.Inspect(expr, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if !isFuzzTargetDot(pass, call, "") {
						return true
					}
					if !isFuzzTargetDot(pass, call, "Name") && !isFuzzTargetDot(pass, call, "Failed") {
						pass.ReportRangef(call, "fuzz target must not call any *F methods")
					}
				}
				return true
			})
			// We do not need to look at any calls to f.Fuzz inside of a Fuzz call,
			// since they are not allowed.
			return false
		}
		return true
	})
	return params
}

// checkAddCalls checks that the arguments of f.Add calls have the same number and type of arguments as
// the signature of the function passed to (*testing.F).Fuzz
func checkAddCalls(pass *analysis.Pass, fn *ast.FuncDecl, params *types.Tuple) {
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if ok {
			if !isFuzzTargetDotAdd(pass, call) {
				return true
			}

			// The first argument to function passed to (*testing.F).Fuzz is (*testing.T).
			if len(call.Args) != params.Len()-1 {
				pass.ReportRangef(call, "wrong number of values in call to (*testing.F).Add: %d, fuzz target expects %d", len(call.Args), params.Len()-1)
				return true
			}
			var mismatched []int
			for i, expr := range call.Args {
				if pass.TypesInfo.Types[expr].Type == nil {
					return true
				}
				t := pass.TypesInfo.Types[expr].Type
				if !types.Identical(t, params.At(i+1).Type()) {
					mismatched = append(mismatched, i)
				}
			}
			// If just one of the types is mismatched report for that
			// type only. Otherwise report for the whole call to (*testing.F).Add
			if len(mismatched) == 1 {
				i := mismatched[0]
				expr := call.Args[i]
				t := pass.TypesInfo.Types[expr].Type
				pass.ReportRangef(expr, "mismatched type in call to (*testing.F).Add: %v, fuzz target expects %v", t, params.At(i+1).Type())
			} else if len(mismatched) > 1 {
				var gotArgs, wantArgs []types.Type
				for i := 0; i < len(call.Args); i++ {
					gotArgs, wantArgs = append(gotArgs, pass.TypesInfo.Types[call.Args[i]].Type), append(wantArgs, params.At(i+1).Type())
				}
				pass.ReportRangef(call, "mismatched types in call to (*testing.F).Add: %v, fuzz target expects %v", gotArgs, wantArgs)
			}
		}
		return true
	})
}

// isFuzzTargetDotFuzz reports whether call is (*testing.F).Fuzz().
func isFuzzTargetDotFuzz(pass *analysis.Pass, call *ast.CallExpr) bool {
	return isFuzzTargetDot(pass, call, "Fuzz")
}

// isFuzzTargetDotAdd reports whether call is (*testing.F).Add().
func isFuzzTargetDotAdd(pass *analysis.Pass, call *ast.CallExpr) bool {
	return isFuzzTargetDot(pass, call, "Add")
}

// isFuzzTargetDot reports whether call is (*testing.F).<name>().
func isFuzzTargetDot(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	if selExpr, ok := call.Fun.(*ast.SelectorExpr); ok {
		if !isTestingType(pass.TypesInfo.Types[selExpr.X].Type, "F") {
			return false
		}
		if name == "" || selExpr.Sel.Name == name {
			return true
		}
	}
	return false
}

// Validate the arguments of fuzz target.
func validateFuzzArgs(pass *analysis.Pass, params *types.Tuple, expr ast.Expr) bool {
	fLit, isFuncLit := expr.(*ast.FuncLit)
	exprRange := expr
	ok := true
	if !isTestingType(params.At(0).Type(), "T") {
		if isFuncLit {
			exprRange = fLit.Type.Params.List[0].Type
		}
		pass.ReportRangef(exprRange, "the first parameter of a fuzz target must be *testing.T")
		ok = false
	}
	for i := 1; i < params.Len(); i++ {
		if !isAcceptedFuzzType(params.At(i).Type()) {
			if isFuncLit {
				curr := 0
				for _, field := range fLit.Type.Params.List {
					curr += len(field.Names)
					if i < curr {
						exprRange = field.Type
						break
					}
				}
			}
			pass.ReportRangef(exprRange, "fuzzing arguments can only have the following types: %s", formatAcceptedFuzzType())
			ok = false
		}
	}
	return ok
}

func isTestingType(typ types.Type, testingType string) bool {
	// No Unalias here: I doubt "go test" recognizes
	// "type A = *testing.T; func Test(A) {}" as a test.
	ptr, ok := typ.(*types.Pointer)
	if !ok {
		return false
	}
	return analysisutil.IsNamedType(ptr.Elem(), "testing", testingType)
}

// Validate that fuzz target function's arguments are of accepted types.
func isAcceptedFuzzType(paramType types.Type) bool {
	for _, typ := range acceptedFuzzTypes {
		if types.Identical(typ, paramType) {
			return true
		}
	}
	return false
}

func formatAcceptedFuzzType() string {
	var acceptedFuzzTypesStrings []string
	for _, typ := range acceptedFuzzTypes {
		acceptedFuzzTypesStrings = append(acceptedFuzzTypesStrings, typ.String())
	}
	acceptedFuzzTypesMsg := strings.Join(acceptedFuzzTypesStrings, ", ")
	return acceptedFuzzTypesMsg
}

func isExampleSuffix(s string) bool {
	r, size := utf8.DecodeRuneInString(s)
	return size > 0 && unicode.IsLower(r)
}

func isTestSuffix(name string) bool {
	if len(name) == 0 {
		// "Test" is ok.
		return true
	}
	r, _ := utf8.DecodeRuneInString(name)
	return !unicode.IsLower(r)
}

func isTestParam(typ ast.Expr, wantType string) bool {
	ptr, ok := typ.(*ast.StarExpr)
	if !ok {
		// Not a pointer.
		return false
	}
	// No easy way of making sure it's a *testing.T or *testing.B:
	// ensure the name of the type matches.
	if name, ok := ptr.X.(*ast.Ident); ok {
		return name.Name == wantType
	}
	if sel, ok := ptr.X.(*ast.SelectorExpr); ok {
		return sel.Sel.Name == wantType
	}
	return false
}

func lookup(pkg *types.Package, name string) []types.Object {
	if o := pkg.Scope().Lookup(name); o != nil {
		return []types.Object{o}
	}

	var ret []types.Object
	// Search through the imports to see if any of them define name.
	// It's hard to tell in general which package is being tested, so
	// for the purposes of the analysis, allow the object to appear
	// in any of the imports. This guarantees there are no false positives
	// because the example needs to use the object so it must be defined
	// in the package or one if its imports. On the other hand, false
	// negatives are possible, but should be rare.
	for _, imp := range pkg.Imports() {
		if obj := imp.Scope().Lookup(name); obj != nil {
			ret = append(ret, obj)
		}
	}
	return ret
}

// This pattern is taken from /go/src/go/doc/example.go
var outputRe = regexp.MustCompile(`(?i)^[[:space:]]*(unordered )?output:`)

type commentMetadata struct {
	isOutput bool
	pos      token.Pos
}

func checkExampleOutput(pass *analysis.Pass, fn *ast.FuncDecl, fileComments []*ast.CommentGroup) {
	commentsInExample := []commentMetadata{}
	numOutputs := 0

	// Find the comment blocks that are in the example. These comments are
	// guaranteed to be in order of appearance.
	for _, cg := range fileComments {
		if cg.Pos() < fn.Pos() {
			continue
		} else if cg.End() > fn.End() {
			break
		}

		isOutput := outputRe.MatchString(cg.Text())
		if isOutput {
			numOutputs++
		}

		commentsInExample = append(commentsInExample, commentMetadata{
			isOutput: isOutput,
			pos:      cg.Pos(),
		})
	}

	// Change message based on whether there are multiple output comment blocks.
	msg := "output comment block must be the last comment block"
	if numOutputs > 1 {
		msg = "there can only be one output comment block per example"
	}

	for i, cg := range commentsInExample {
		// Check for output comments that are not the last comment in the example.
		isLast := (i == len(commentsInExample)-1)
		if cg.isOutput && !isLast {
			pass.Report(
				analysis.Diagnostic{
					Pos:     cg.pos,
					Message: msg,
				},
			)
		}
	}
}

func checkExampleName(pass *analysis.Pass, fn *ast.FuncDecl) {
	fnName := fn.Name.Name
	if params := fn.Type.Params; len(params.List) != 0 {
		pass.Reportf(fn.Pos(), "%s should be niladic", fnName)
	}
	if results := fn.Type.Results; results != nil && len(results.List) != 0 {
		pass.Reportf(fn.Pos(), "%s should return nothing", fnName)
	}
	if tparams := fn.Type.TypeParams; tparams != nil && len(tparams.List) > 0 {
		pass.Reportf(fn.Pos(), "%s should not have type params", fnName)
	}

	if fnName == "Example" {
		// Nothing more to do.
		return
	}

	var (
		exName = strings.TrimPrefix(fnName, "Example")
		elems  = strings.SplitN(exName, "_", 3)
		ident  = elems[0]
		objs   = lookup(pass.Pkg, ident)
	)
	if ident != "" && len(objs) == 0 {
		// Check ExampleFoo and ExampleBadFoo.
		pass.Reportf(fn.Pos(), "%s refers to unknown identifier: %s", fnName, ident)
		// Abort since obj is absent and no subsequent checks can be performed.
		return
	}
	if len(elems) < 2 {
		// Nothing more to do.
		return
	}

	if ident == "" {
		// Check Example_suffix and Example_BadSuffix.
		if residual := strings.TrimPrefix(exName, "_"); !isExampleSuffix(residual) {
			pass.Reportf(fn.Pos(), "%s has malformed example suffix: %s", fnName, residual)
		}
		return
	}

	mmbr := elems[1]
	if !isExampleSuffix(mmbr) {
		// Check ExampleFoo_Method and ExampleFoo_BadMethod.
		found := false
		// Check if Foo.Method exists in this package or its imports.
		for _, obj := range objs {
			if obj, _, _ := types.LookupFieldOrMethod(obj.Type(), true, obj.Pkg(), mmbr); obj != nil {
				found = true
				break
			}
		}
		if !found {
			pass.Reportf(fn.Pos(), "%s refers to unknown field or method: %s.%s", fnName, ident, mmbr)
		}
	}
	if len(elems) == 3 && !isExampleSuffix(elems[2]) {
		// Check ExampleFoo_Method_suffix and ExampleFoo_Method_Badsuffix.
		pass.Reportf(fn.Pos(), "%s has malformed example suffix: %s", fnName, elems[2])
	}
}

type tokenRange struct {
	p, e token.Pos
}

func (r tokenRange) Pos() token.Pos {
	return r.p
}

func (r tokenRange) End() token.Pos {
	return r.e
}

func checkTest(pass *analysis.Pass, fn *ast.FuncDecl, prefix string) {
	// Want functions with 0 results and 1 parameter.
	if fn.Type.Results != nil && len(fn.Type.Results.List) > 0 ||
		fn.Type.Params == nil ||
		len(fn.Type.Params.List) != 1 ||
		len(fn.Type.Params.List[0].Names) > 1 {
		return
	}

	// The param must look like a *testing.T or *testing.B.
	if !isTestParam(fn.Type.Params.List[0].Type, prefix[:1]) {
		return
	}

	if tparams := fn.Type.TypeParams; tparams != nil && len(tparams.List) > 0 {
		// Note: cmd/go/internal/load also errors about TestXXX and BenchmarkXXX functions with type parameters.
		// We have currently decided to also warn before compilation/package loading. This can help users in IDEs.
		at := tokenRange{tparams.Opening, tparams.Closing}
		pass.ReportRangef(at, "%s has type parameters: it will not be run by go test as a %sXXX function", fn.Name.Name, prefix)
	}

	if !isTestSuffix(fn.Name.Name[len(prefix):]) {
		pass.ReportRangef(fn.Name, "%s has malformed name: first letter after '%s' must not be lowercase", fn.Name.Name, prefix)
	}
}
