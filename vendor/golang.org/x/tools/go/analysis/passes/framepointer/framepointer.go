// Copyright 2020 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package framepointer defines an Analyzer that reports assembly code
// that clobbers the frame pointer before saving it.
package framepointer

import (
	"go/build"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
)

const Doc = "report assembly that clobbers the frame pointer before saving it"

var Analyzer = &analysis.Analyzer{
	Name: "framepointer",
	Doc:  Doc,
	URL:  "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/framepointer",
	Run:  run,
}

var (
	re             = regexp.MustCompile
	asmWriteBP     = re(`,\s*BP$`) // TODO: can have false positive, e.g. for TESTQ BP,BP. Seems unlikely.
	asmMentionBP   = re(`\bBP\b`)
	asmControlFlow = re(`^(J|RET)`)
)

func run(pass *analysis.Pass) (interface{}, error) {
	if build.Default.GOARCH != "amd64" { // TODO: arm64 also?
		return nil, nil
	}
	if build.Default.GOOS != "linux" && build.Default.GOOS != "darwin" {
		return nil, nil
	}

	// Find assembly files to work on.
	var sfiles []string
	for _, fname := range pass.OtherFiles {
		if strings.HasSuffix(fname, ".s") && pass.Pkg.Path() != "runtime" {
			sfiles = append(sfiles, fname)
		}
	}

	for _, fname := range sfiles {
		content, tf, err := analysisutil.ReadFile(pass, fname)
		if err != nil {
			return nil, err
		}

		lines := strings.SplitAfter(string(content), "\n")
		active := false
		for lineno, line := range lines {
			lineno++

			// Ignore comments and commented-out code.
			if i := strings.Index(line, "//"); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)

			// We start checking code at a TEXT line for a frameless function.
			if strings.HasPrefix(line, "TEXT") && strings.Contains(line, "(SB)") && strings.Contains(line, "$0") {
				active = true
				continue
			}
			if !active {
				continue
			}

			if asmWriteBP.MatchString(line) { // clobber of BP, function is not OK
				pass.Reportf(analysisutil.LineStart(tf, lineno), "frame pointer is clobbered before saving")
				active = false
				continue
			}
			if asmMentionBP.MatchString(line) { // any other use of BP might be a read, so function is OK
				active = false
				continue
			}
			if asmControlFlow.MatchString(line) { // give up after any branch instruction
				active = false
				continue
			}
		}
	}
	return nil, nil
}
