// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package nilfunc defines an Analyzer that checks for useless
// comparisons against nil.
//
// # Analyzer nilfunc
//
// nilfunc: check for useless comparisons between functions and nil
//
// A useless comparison is one like f == nil as opposed to f() == nil.
package nilfunc
