// Copyright 2013 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Package nilfunc defines an Analyzer that checks for useless
// comparisons against nil.
package nilfunc

import (
	_ "embed"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/analysis/passes/internal/analysisutil"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/internal/typeparams"
)

//go:embed doc.go
var doc string

var Analyzer = &analysis.Analyzer{
	Name:     "nilfunc",
	Doc:      analysisutil.MustExtractDoc(doc, "nilfunc"),
	URL:      "https://pkg.go.dev/golang.org/x/tools/go/analysis/passes/nilfunc",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	inspect := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.BinaryExpr)(nil),
	}
	inspect.Preorder(nodeFilter, func(n ast.Node) {
		e := n.(*ast.BinaryExpr)

		// Only want == or != comparisons.
		if e.Op != token.EQL && e.Op != token.NEQ {
			return
		}

		// Only want comparisons with a nil identifier on one side.
		var e2 ast.Expr
		switch {
		case pass.TypesInfo.Types[e.X].IsNil():
			e2 = e.Y
		case pass.TypesInfo.Types[e.Y].IsNil():
			e2 = e.X
		default:
			return
		}

		// Only want identifiers or selector expressions.
		var obj types.Object
		switch v := e2.(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[v]
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[v.Sel]
		case *ast.IndexExpr, *ast.IndexListExpr:
			// Check generic functions such as "f[T1,T2]".
			x, _, _, _ := typeparams.UnpackIndexExpr(v)
			if id, ok := x.(*ast.Ident); ok {
				obj = pass.TypesInfo.Uses[id]
			}
		default:
			return
		}

		// Only want functions.
		if _, ok := obj.(*types.Func); !ok {
			return
		}

		pass.ReportRangef(e, "comparison of function %v %v nil is always %v", obj.Name(), e.Op, e.Op == token.NEQ)
	})
	return nil, nil
}
