// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

package main

import (
	"os"
	"os/exec"
	"time"
)

func cmdInterrupt(cmd *exec.Cmd) {
	cmd.Cancel = func() error {
		// On timeout, send interrupt,
		// in hopes of shutting down process tree.
		// Ignore errors sending signal; it's all best effort
		// and not even implemented on Windows.
		// TODO(rsc): Maybe use a new process group and kill the whole group?
		cmd.Process.Signal(os.Interrupt)
		return nil
	}
	cmd.WaitDelay = 2 * time.Second
}
