// Copyright 2023 The Go Authors. All rights reserved.
// Use of this source code is governed by a BSD-style
// license that can be found in the LICENSE file.

// Bisect finds changes responsible for causing a failure.
// A typical use is to identify the source locations in a program
// that are miscompiled by a given compiler optimization.
//
// Usage:
//
//	bisect [flags] [var=value...] command [arguments...]
//
// Bisect operates on a target command line – the target – that can be
// run with various changes individually enabled or disabled. With none
// of the changes enabled, the target is known to succeed (exit with exit
// code zero). With all the changes enabled, the target is known to fail
// (exit any other way). Bisect repeats the target with different sets of
// changes enabled, using binary search to find (non-overlapping) minimal
// change sets that provoke the failure.
//
// The target must cooperate with bisect by accepting a change pattern
// and then enabling and reporting the changes that match that pattern.
// The change pattern is passed to the target by substituting it anywhere
// the string PATTERN appears in the environment values or the command
// arguments. For each change that matches the pattern, the target must
// enable that change and also print one or more “match lines”
// (to standard output or standard error) describing the change.
// The [golang.org/x/tools/internal/bisect] package provides functions to help
// targets implement this protocol. We plan to publish that package
// in a non-internal location after finalizing its API.
//
// Bisect starts by running the target with no changes enabled and then
// with all changes enabled. It expects the former to succeed and the latter to fail,
// and then it will search for the minimal set of changes that must be enabled
// to provoke the failure. If the situation is reversed – the target fails with no
// changes enabled and succeeds with all changes enabled – then bisect
// automatically runs in reverse as well, searching for the minimal set of changes
// that must be disabled to provoke the failure.
//
// Bisect prints tracing logs to standard error and the minimal change sets
// to standard output.
//
// # Command Line Flags
//
// Bisect supports the following command-line flags:
//
//	-max=M
//
// Stop after finding M minimal change sets. The default is no maximum, meaning to run until
// all changes that provoke a failure have been identified.
//
//	-maxset=S
//
// Disallow change sets larger than S elements. The default is no maximum.
//
//	-timeout=D
//
// If the target runs for longer than duration D, stop the target and interpret that as a failure.
// The default is no timeout.
//
//	-count=N
//
// Run each trial N times (default 2), checking for consistency.
//
//	-v
//
// Print verbose output, showing each run and its match lines.
//
// In addition to these general flags,
// bisect supports a few “shortcut” flags that make it more convenient
// to use with specific targets.
//
//	-compile=<rewrite>
//
// This flag is equivalent to adding an environment variable
// “GOCOMPILEDEBUG=<rewrite>hash=PATTERN”,
// which, as discussed in more detail in the example below,
// allows bisect to identify the specific source locations where the
// compiler rewrite causes the target to fail.
//
//	-godebug=<name>=<value>
//
// This flag is equivalent to adding an environment variable
// “GODEBUG=<name>=<value>#PATTERN”,
// which allows bisect to identify the specific call stacks where
// the changed [GODEBUG setting] value causes the target to fail.
//
// # Example
//
// The Go compiler provides support for enabling or disabling certain rewrites
// and optimizations to allow bisect to identify specific source locations where
// the rewrite causes the program to fail. For example, to bisect a failure caused
// by the new loop variable semantics:
//
//	bisect go test -gcflags=all=-d=loopvarhash=PATTERN
//
// The -gcflags=all= instructs the go command to pass the -d=... to the Go compiler
// when compiling all packages. Bisect varies PATTERN to determine the minimal set of changes
// needed to reproduce the failure.
//
// The go command also checks the GOCOMPILEDEBUG environment variable for flags
// to pass to the compiler, so the above command is equivalent to:
//
//	bisect GOCOMPILEDEBUG=loopvarhash=PATTERN go test
//
// Finally, as mentioned earlier, the -compile flag allows shortening this command further:
//
//	bisect -compile=loopvar go test
//
// # Defeating Build Caches
//
// Build systems cache build results, to avoid repeating the same compilations
// over and over. When using a cached build result, the go command (correctly)
// reprints the cached standard output and standard error associated with that
// command invocation. (This makes commands like 'go build -gcflags=-S' for
// printing an assembly listing work reliably.)
//
// Unfortunately, most build systems, including Bazel, are not as careful
// as the go command about reprinting compiler output. If the compiler is
// what prints match lines, a build system that suppresses compiler
// output when using cached compiler results will confuse bisect.
// To defeat such build caches, bisect replaces the literal text “RANDOM”
// in environment values and command arguments with a random 64-bit value
// during each invocation. The Go compiler conveniently accepts a
// -d=ignore=... debug flag that ignores its argument, so to run the
// previous example using Bazel, the invocation is:
//
//	bazel test --define=gc_goopts=-d=loopvarhash=PATTERN,unused=RANDOM //path/to:test
//
// [GODEBUG setting]: https://tip.golang.org/doc/godebug
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"math/bits"
	"math/rand"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"

	"golang.org/x/tools/internal/bisect"
)

// Preserve import of bisect, to allow [bisect.Match] in the doc comment.
var _ bisect.Matcher

func usage() {
	fmt.Fprintf(os.Stderr, "usage: bisect [flags] [var=value...] command [arguments...]\n")
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bisect: ")

	var b Bisect
	b.Stdout = os.Stdout
	b.Stderr = os.Stderr
	flag.IntVar(&b.Max, "max", 0, "stop after finding `m` failing change sets")
	flag.IntVar(&b.MaxSet, "maxset", 0, "do not search for change sets larger than `s` elements")
	flag.DurationVar(&b.Timeout, "timeout", 0, "stop target and consider failed after duration `d`")
	flag.IntVar(&b.Count, "count", 2, "run target `n` times for each trial")
	flag.BoolVar(&b.Verbose, "v", false, "enable verbose output")

	env := ""
	envFlag := ""
	flag.Func("compile", "bisect source locations affected by Go compiler `rewrite` (fma, loopvar, ...)", func(value string) error {
		if envFlag != "" {
			return fmt.Errorf("cannot use -%s and -compile", envFlag)
		}
		envFlag = "compile"
		env = "GOCOMPILEDEBUG=" + value + "hash=PATTERN"
		return nil
	})
	flag.Func("godebug", "bisect call stacks affected by GODEBUG setting `name=value`", func(value string) error {
		if envFlag != "" {
			return fmt.Errorf("cannot use -%s and -godebug", envFlag)
		}
		envFlag = "godebug"
		env = "GODEBUG=" + value + "#PATTERN"
		return nil
	})

	flag.Usage = usage
	flag.Parse()
	args := flag.Args()

	// Split command line into env settings, command name, args.
	i := 0
	for i < len(args) && strings.Contains(args[i], "=") {
		i++
	}
	if i == len(args) {
		usage()
	}
	b.Env, b.Cmd, b.Args = args[:i], args[i], args[i+1:]
	if env != "" {
		b.Env = append([]string{env}, b.Env...)
	}

	// Check that PATTERN is available for us to vary.
	found := false
	for _, e := range b.Env {
		if _, v, _ := strings.Cut(e, "="); strings.Contains(v, "PATTERN") {
			found = true
		}
	}
	for _, a := range b.Args {
		if strings.Contains(a, "PATTERN") {
			found = true
		}
	}
	if !found {
		log.Fatalf("no PATTERN in target environment or args")
	}

	if !b.Search() {
		os.Exit(1)
	}
}

// A Bisect holds the state for a bisect invocation.
type Bisect struct {
	// Env is the additional environment variables for the command.
	// PATTERN and RANDOM are substituted in the values, but not the names.
	Env []string

	// Cmd is the command (program name) to run.
	// PATTERN and RANDOM are not substituted.
	Cmd string

	// Args is the command arguments.
	// PATTERN and RANDOM are substituted anywhere they appear.
	Args []string

	// Command-line flags controlling bisect behavior.
	Max     int           // maximum number of sets to report (0 = unlimited)
	MaxSet  int           // maximum number of elements in a set (0 = unlimited)
	Timeout time.Duration // kill target and assume failed after this duration (0 = unlimited)
	Count   int           // run target this many times for each trial and give up if flaky (min 1 assumed; default 2 on command line set in main)
	Verbose bool          // print long output about each trial (only useful for debugging bisect itself)

	// State for running bisect, replaced during testing.
	// Failing change sets are printed to Stdout; all other output goes to Stderr.
	Stdout  io.Writer                                                             // where to write standard output (usually os.Stdout)
	Stderr  io.Writer                                                             // where to write standard error (usually os.Stderr)
	TestRun func(env []string, cmd string, args []string) (out []byte, err error) // if non-nil, used instead of exec.Command

	// State maintained by Search.

	// By default, Search looks for a minimal set of changes that cause a failure when enabled.
	// If Disable is true, the search is inverted and seeks a minimal set of changes that
	// cause a failure when disabled. In this case, the search proceeds as normal except that
	// each pattern starts with a !.
	Disable bool

	// SkipDigits is the number of hex digits to use in skip messages.
	// If the set of available changes is the same in each run, as it should be,
	// then this doesn't matter: we'll only exclude suffixes that uniquely identify
	// a given change. But for some programs, especially bisecting runtime
	// behaviors, sometimes enabling one change unlocks questions about other
	// changes. Strictly speaking this is a misuse of bisect, but just to make
	// bisect more robust, we use the y and n runs to create an estimate of the
	// number of bits needed for a unique suffix, and then we round it up to
	// a number of hex digits, with one extra digit for good measure, and then
	// we always use that many hex digits for skips.
	SkipHexDigits int

	// Add is a list of suffixes to add to every trial, because they
	// contain changes that are necessary for a group we are assembling.
	Add []string

	// Skip is a list of suffixes that uniquely identify changes to exclude from every trial,
	// because they have already been used in failing change sets.
	// Suffixes later in the list may only be unique after removing
	// the ones earlier in the list.
	// Skip applies after Add.
	Skip []string
}

// A Result holds the result of a single target trial.
type Result struct {
	Success bool   // whether the target succeeded (exited with zero status)
	Cmd     string // full target command line
	Out     string // full target output (stdout and stderr combined)

	Suffix    string   // the suffix used for collecting MatchIDs, MatchText, and MatchFull
	MatchIDs  []uint64 // match IDs enabled during this trial
	MatchText []string // match reports for the IDs, with match markers removed
	MatchFull []string // full match lines for the IDs, with match markers kept
}

// &searchFatal is a special panic value to signal that Search failed.
// This lets us unwind the search recursion on a fatal error
// but have Search return normally.
var searchFatal int

// Search runs a bisect search according to the configuration in b.
// It reports whether any failing change sets were found.
func (b *Bisect) Search() bool {
	defer func() {
		// Recover from panic(&searchFatal), implicitly returning false from Search.
		// Re-panic on any other panic.
		if e := recover(); e != nil && e != &searchFatal {
			panic(e)
		}
	}()

	// Run with no changes and all changes, to figure out which direction we're searching.
	// The goal is to find the minimal set of changes to toggle
	// starting with the state where everything works.
	// If "no changes" succeeds and "all changes" fails,
	// we're looking for a minimal set of changes to enable to provoke the failure
	// (broken = runY, b.Negate = false)
	// If "no changes" fails and "all changes" succeeds,
	// we're looking for a minimal set of changes to disable to provoke the failure
	// (broken = runN, b.Negate = true).

	b.Logf("checking target with all changes disabled")
	runN := b.Run("n")

	b.Logf("checking target with all changes enabled")
	runY := b.Run("y")

	var broken *Result
	switch {
	case runN.Success && !runY.Success:
		b.Logf("target succeeds with no changes, fails with all changes")
		b.Logf("searching for minimal set of enabled changes causing failure")
		broken = runY
		b.Disable = false

	case !runN.Success && runY.Success:
		b.Logf("target fails with no changes, succeeds with all changes")
		b.Logf("searching for minimal set of disabled changes causing failure")
		broken = runN
		b.Disable = true

	case runN.Success && runY.Success:
		b.Fatalf("target succeeds with no changes and all changes")

	case !runN.Success && !runY.Success:
		b.Fatalf("target fails with no changes and all changes")
	}

	// Compute minimum number of bits needed to distinguish
	// all the changes we saw during N and all the changes we saw during Y.
	b.SkipHexDigits = skipHexDigits(runN.MatchIDs, runY.MatchIDs)

	// Loop finding and printing change sets, until none remain.
	found := 0
	for {
		// Find set.
		bad := b.search(broken)
		if bad == nil {
			if found == 0 {
				b.Fatalf("cannot find any failing change sets of size ≤ %d", b.MaxSet)
			}
			break
		}

		// Confirm that set really does fail, to avoid false accusations.
		// Also asking for user-visible output; earlier runs did not.
		b.Logf("confirming failing change set")
		b.Add = append(b.Add[:0], bad...)
		broken = b.Run("v")
		if broken.Success {
			b.Logf("confirmation run succeeded unexpectedly")
		}
		b.Add = b.Add[:0]

		// Print confirmed change set.
		found++
		b.Logf("FOUND failing change set")
		desc := "(enabling changes causes failure)"
		if b.Disable {
			desc = "(disabling changes causes failure)"
		}
		fmt.Fprintf(b.Stdout, "--- change set #%d %s\n%s\n---\n", found, desc, strings.Join(broken.MatchText, "\n"))

		// Stop if we've found enough change sets.
		if b.Max > 0 && found >= b.Max {
			break
		}

		// If running bisect target | tee bad.txt, prints to stdout and stderr
		// both appear on the terminal, but the ones to stdout go through tee
		// and can take a little bit of extra time. Sleep 1 millisecond to give
		// tee time to catch up, so that its stdout print does not get interlaced
		// with the stderr print from the next b.Log message.
		time.Sleep(1 * time.Millisecond)

		// Disable the now-known-bad changes and see if any failures remain.
		b.Logf("checking for more failures")
		b.Skip = append(bad, b.Skip...)
		broken = b.Run("")
		if broken.Success {
			what := "enabled"
			if b.Disable {
				what = "disabled"
			}
			b.Logf("target succeeds with all remaining changes %s", what)
			break
		}
		b.Logf("target still fails; searching for more bad changes")
	}
	return true
}

// Fatalf prints a message to standard error and then panics,
// causing Search to return false.
func (b *Bisect) Fatalf(format string, args ...any) {
	s := fmt.Sprintf("bisect: fatal error: "+format, args...)
	if !strings.HasSuffix(s, "\n") {
		s += "\n"
	}
	b.Stderr.Write([]byte(s))
	panic(&searchFatal)
}

// Logf prints a message to standard error.
func (b *Bisect) Logf(format string, args ...any) {
	s := fmt.Sprintf("bisect: "+format, args...)
	if !strings.HasSuffix(s, "\n") {
		s += "\n"
	}
	b.Stderr.Write([]byte(s))
}

func skipHexDigits(idY, idN []uint64) int {
	var all []uint64
	seen := make(map[uint64]bool)
	for _, x := range idY {
		seen[x] = true
		all = append(all, x)
	}
	for _, x := range idN {
		if !seen[x] {
			seen[x] = true
			all = append(all, x)
		}
	}
	sort.Slice(all, func(i, j int) bool { return bits.Reverse64(all[i]) < bits.Reverse64(all[j]) })
	digits := sort.Search(64/4, func(digits int) bool {
		mask := uint64(1)<<(4*digits) - 1
		for i := 0; i+1 < len(all); i++ {
			if all[i]&mask == all[i+1]&mask {
				return false
			}
		}
		return true
	})
	if digits < 64/4 {
		digits++
	}
	return digits
}

// search searches for a single locally minimal change set.
//
// Invariant: r describes the result of r.Suffix + b.Add, which failed.
// (There's an implicit -b.Skip everywhere here. b.Skip does not change.)
// We want to extend r.Suffix to preserve the failure, working toward
// a suffix that identifies a single change.
func (b *Bisect) search(r *Result) []string {
	// The caller should be passing in a failure result that we diagnose.
	if r.Success {
		b.Fatalf("internal error: unexpected success") // mistake by caller
	}

	// If the failure reported no changes, the target is misbehaving.
	if len(r.MatchIDs) == 0 {
		b.Fatalf("failure with no reported changes:\n\n$ %s\n%s\n", r.Cmd, r.Out)
	}

	// If there's one matching change, that's the one we're looking for.
	if len(r.MatchIDs) == 1 {
		return []string{fmt.Sprintf("x%0*x", b.SkipHexDigits, r.MatchIDs[0]&(1<<(4*b.SkipHexDigits)-1))}
	}

	// If the suffix we were tracking in the trial is already 64 bits,
	// either the target is bad or bisect itself is buggy.
	if len(r.Suffix) >= 64 {
		b.Fatalf("failed to isolate a single change with very long suffix")
	}

	// We want to split the current matchIDs by left-extending the suffix with 0 and 1.
	// If all the matches have the same next bit, that won't cause a split, which doesn't
	// break the algorithm but does waste time. Avoid wasting time by left-extending
	// the suffix to the longest suffix shared by all the current match IDs
	// before adding 0 or 1.
	suffix := commonSuffix(r.MatchIDs)
	if !strings.HasSuffix(suffix, r.Suffix) {
		b.Fatalf("internal error: invalid common suffix") // bug in commonSuffix
	}

	// Run 0suffix and 1suffix. If one fails, chase down the failure in that half.
	r0 := b.Run("0" + suffix)
	if !r0.Success {
		return b.search(r0)
	}
	r1 := b.Run("1" + suffix)
	if !r1.Success {
		return b.search(r1)
	}

	// suffix failed, but 0suffix and 1suffix succeeded.
	// Assuming the target isn't flaky, this means we need
	// at least one change from 0suffix AND at least one from 1suffix.
	// We are already tracking N = len(b.Add) other changes and are
	// allowed to build sets of size at least 1+N (or we shouldn't be here at all).
	// If we aren't allowed to build sets of size 2+N, give up this branch.
	if b.MaxSet > 0 && 2+len(b.Add) > b.MaxSet {
		return nil
	}

	// Adding all matches for 1suffix, recurse to narrow down 0suffix.
	old := len(b.Add)
	b.Add = append(b.Add, "1"+suffix)
	r0 = b.Run("0" + suffix)
	if r0.Success {
		// 0suffix + b.Add + 1suffix = suffix + b.Add is what r describes, and it failed.
		b.Fatalf("target fails inconsistently")
	}
	bad0 := b.search(r0)
	if bad0 == nil {
		// Search failed due to MaxSet limit.
		return nil
	}
	b.Add = b.Add[:old]

	// Adding the specific match we found in 0suffix, recurse to narrow down 1suffix.
	b.Add = append(b.Add[:old], bad0...)
	r1 = b.Run("1" + suffix)
	if r1.Success {
		// 1suffix + b.Add + bad0 = bad0 + b.Add + 1suffix is what b.search(r0) reported as a failure.
		b.Fatalf("target fails inconsistently")
	}
	bad1 := b.search(r1)
	if bad1 == nil {
		// Search failed due to MaxSet limit.
		return nil
	}
	b.Add = b.Add[:old]

	// bad0 and bad1 together provoke the failure.
	return append(bad0, bad1...)
}

// Run runs a set of trials selecting changes with the given suffix,
// plus the ones in b.Add and not the ones in b.Skip.
// The returned result's MatchIDs, MatchText, and MatchFull
// only list the changes that match suffix.
// When b.Count > 1, Run runs b.Count trials and requires
// that they all succeed or they all fail. If not, it calls b.Fatalf.
func (b *Bisect) Run(suffix string) *Result {
	out := b.run(suffix)
	for i := 1; i < b.Count; i++ {
		r := b.run(suffix)
		if r.Success != out.Success {
			b.Fatalf("target fails inconsistently")
		}
	}
	return out
}

// run runs a single trial for Run.
func (b *Bisect) run(suffix string) *Result {
	random := fmt.Sprint(rand.Uint64())

	// Accept suffix == "v" to mean we need user-visible output.
	visible := ""
	if suffix == "v" {
		visible = "v"
		suffix = ""
	}

	// Construct change ID pattern.
	var pattern string
	if suffix == "y" || suffix == "n" {
		pattern = suffix
		suffix = ""
	} else {
		var elem []string
		if suffix != "" {
			elem = append(elem, "+", suffix)
		}
		for _, x := range b.Add {
			elem = append(elem, "+", x)
		}
		for _, x := range b.Skip {
			elem = append(elem, "-", x)
		}
		pattern = strings.Join(elem, "")
		if pattern == "" {
			pattern = "y"
		}
	}
	if b.Disable {
		pattern = "!" + pattern
	}
	pattern = visible + pattern

	// Construct substituted env and args.
	env := make([]string, len(b.Env))
	for i, x := range b.Env {
		k, v, _ := strings.Cut(x, "=")
		env[i] = k + "=" + replace(v, pattern, random)
	}
	args := make([]string, len(b.Args))
	for i, x := range b.Args {
		args[i] = replace(x, pattern, random)
	}

	// Construct and log command line.
	// There is no newline in the log print.
	// The line will be completed when the command finishes.
	cmdText := strings.Join(append(append(env, b.Cmd), args...), " ")
	fmt.Fprintf(b.Stderr, "bisect: run: %s...", cmdText)

	// Run command with args and env.
	var out []byte
	var err error
	if b.TestRun != nil {
		out, err = b.TestRun(env, b.Cmd, args)
	} else {
		ctx := context.Background()
		if b.Timeout != 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, b.Timeout)
			defer cancel()
		}
		cmd := exec.CommandContext(ctx, b.Cmd, args...)
		cmd.Env = append(os.Environ(), env...)
		// Set up cmd.Cancel, cmd.WaitDelay on Go 1.20 and later
		// TODO(rsc): Inline go120.go's cmdInterrupt once we stop supporting Go 1.19.
		cmdInterrupt(cmd)
		out, err = cmd.CombinedOutput()
	}

	// Parse output to construct result.
	r := &Result{
		Suffix:  suffix,
		Success: err == nil,
		Cmd:     cmdText,
		Out:     string(out),
	}

	// Calculate bits, mask to identify suffix matches.
	var bits, mask uint64
	if suffix != "" && suffix != "y" && suffix != "n" && suffix != "v" {
		var err error
		bits, err = strconv.ParseUint(suffix, 2, 64)
		if err != nil {
			b.Fatalf("internal error: bad suffix")
		}
		mask = uint64(1<<len(suffix)) - 1
	}

	// Process output, collecting match reports for suffix.
	have := make(map[uint64]bool)
	all := r.Out
	for all != "" {
		var line string
		line, all, _ = strings.Cut(all, "\n")
		short, id, ok := bisect.CutMarker(line)
		if !ok || (id&mask) != bits {
			continue
		}

		if !have[id] {
			have[id] = true
			r.MatchIDs = append(r.MatchIDs, id)
		}
		r.MatchText = append(r.MatchText, short)
		r.MatchFull = append(r.MatchFull, line)
	}

	// Finish log print from above, describing the command's completion.
	if err == nil {
		fmt.Fprintf(b.Stderr, " ok (%d matches)\n", len(r.MatchIDs))
	} else {
		fmt.Fprintf(b.Stderr, " FAIL (%d matches)\n", len(r.MatchIDs))
	}

	if err != nil && len(r.MatchIDs) == 0 {
		b.Fatalf("target failed without printing any matches\n%s", r.Out)
	}

	// In verbose mode, print extra debugging: all the lines with match markers.
	if b.Verbose {
		b.Logf("matches:\n%s", strings.Join(r.MatchFull, "\n\t"))
	}

	return r
}

// replace returns x with literal text PATTERN and RANDOM replaced by pattern and random.
func replace(x, pattern, random string) string {
	x = strings.ReplaceAll(x, "PATTERN", pattern)
	x = strings.ReplaceAll(x, "RANDOM", random)
	return x
}

// commonSuffix returns the longest common binary suffix shared by all uint64s in list.
// If list is empty, commonSuffix returns an empty string.
func commonSuffix(list []uint64) string {
	if len(list) == 0 {
		return ""
	}
	b := list[0]
	n := 64
	for _, x := range list {
		for x&((1<<n)-1) != b {
			n--
			b &= (1 << n) - 1
		}
	}
	s := make([]byte, n)
	for i := n - 1; i >= 0; i-- {
		s[i] = '0' + byte(b&1)
		b >>= 1
	}
	return string(s[:])
}
