package repro

// The v2 construction surface: one named-builder registry in front of
// every dictionary in the repository. Build("cola"), Build("btree"),
// Build("sharded", WithInner("btree")) … replace the v1 per-structure
// constructors (which remain as thin deprecated wrappers); Kinds and
// KindDoc/KindOptions let tools enumerate the lineup, and Register
// plugs external structures into the same machinery — the harness and
// cmd/streambench run over whatever is registered.

import (
	"repro/internal/core"
	"repro/internal/registry"
)

// Option is one entry of the unified functional-option set shared by
// every dictionary kind; see the With* constructors. Applying an option
// a kind does not accept makes Build fail with a descriptive error
// instead of silently ignoring it.
type Option = registry.Option

// BuildConfig is the validated option sheet a registered builder
// receives; external builders read it through its getter methods.
type BuildConfig = registry.Config

// KindInfo describes a registered dictionary kind: a one-line doc, the
// accepted option names, and the build function.
type KindInfo = registry.KindInfo

// Canonical option names, as listed in KindInfo.Options and accepted-
// option error messages. Each matches the facade constructor's name.
const (
	OptSpace           = registry.OptSpace
	OptGrowthFactor    = registry.OptGrowth
	OptPointerDensity  = registry.OptPointerDensity
	OptFanout          = registry.OptFanout
	OptEpsilon         = registry.OptEpsilon
	OptBlockBytes      = registry.OptBlockBytes
	OptLeafCapacity    = registry.OptLeafCapacity
	OptRelayoutEvery   = registry.OptRelayoutEvery
	OptShards          = registry.OptShards
	OptBatchSize       = registry.OptBatchSize
	OptShardDAM        = registry.OptShardDAM
	OptInner           = registry.OptInner
	OptDictionary      = registry.OptFactory
	OptWALPath         = registry.OptWALPath
	OptCheckpointEvery = registry.OptCheckpointEvery
	OptSpillDir        = registry.OptSpillDir
	OptSpillDepth      = registry.OptSpillDepth
	OptSpillCacheBytes = registry.OptSpillCacheBytes
)

// Build constructs the named dictionary kind from the unified option
// set:
//
//	d, err := repro.Build("gcola",
//	    repro.WithGrowthFactor(4),
//	    repro.WithSpace(store.Space("g4")),
//	)
//
// Unknown kinds, out-of-range option values, and options the kind does
// not accept return descriptive errors. The registered built-ins are
// "cola", "basic-cola", "gcola", "deamortized", "deamortized-la", "la",
// "shuttle", "cobtree", "btree", "brt", "swbst", "sharded",
// "synchronized", and "durable"; Kinds() reports the live set including
// anything added via Register.
func Build(kind string, opts ...Option) (Dictionary, error) {
	return registry.Build(kind, opts...)
}

// MustBuild is Build for static configurations known to be valid; it
// panics on error.
func MustBuild(kind string, opts ...Option) Dictionary {
	d, err := registry.Build(kind, opts...)
	if err != nil {
		panic(err)
	}
	return d
}

// Kinds returns the sorted names of every registered dictionary kind.
func Kinds() []string { return registry.Kinds() }

// KindDoc returns the one-line description of a registered kind ("" if
// unknown).
func KindDoc(kind string) string {
	info, ok := registry.Info(kind)
	if !ok {
		return ""
	}
	return info.Doc
}

// KindOptions returns the option names a registered kind accepts (nil
// if unknown), e.g. for printing an option matrix.
func KindOptions(kind string) []string {
	info, ok := registry.Info(kind)
	if !ok {
		return nil
	}
	return append([]string(nil), info.Options...)
}

// Caps is the unified capability sheet of a dictionary: snapshot, wal,
// delete, batch, stats, shared-reads. KindCaps reports a kind's static
// flags (for wrapper kinds a flag means the capability is forwarded
// when the inner kind has it); CapsOf answers for a built instance, and
// the two agree for every kind including nested wrappers.
type Caps = registry.Caps

// KindCaps returns a registered kind's capability flags (the zero Caps
// if unknown).
func KindCaps(kind string) Caps {
	info, ok := registry.Info(kind)
	if !ok {
		return Caps{}
	}
	return info.Caps
}

// Register adds an external dictionary kind to the registry, making it
// buildable via Build and visible to every registry-driven tool (the
// harness lineup flags, the conformance suite). The build function
// receives the validated BuildConfig; options outside info.Options are
// rejected before it runs.
//
//	repro.Register("skiplist", repro.KindInfo{
//	    Doc:     "lock-free skip list (external)",
//	    Options: []string{repro.OptSpace},
//	    New: func(c *repro.BuildConfig) (repro.Dictionary, error) {
//	        return newSkipList(c.Space()), nil
//	    },
//	})
func Register(kind string, info KindInfo) error {
	return registry.Register(kind, info)
}

// InsertBatch inserts every element of the slice into d, using the
// structure's native BatchInserter fast path when it has one (the COLA
// family bulk-loads an empty structure; the sharded map groups the
// batch per shard and takes each shard lock once) and a plain Insert
// loop otherwise.
func InsertBatch(d Dictionary, elems []Element) { core.InsertBatch(d, elems) }

// BatchInserter is implemented by dictionaries with a native batch
// ingestion path; see InsertBatch.
type BatchInserter = core.BatchInserter

// TransferCounter is implemented by dictionaries that own their DAM
// store(s) and report aggregate block transfers directly (e.g. a
// ShardedMap built with WithShardDAM, or a SynchronizedDictionary
// wrapping one).
type TransferCounter = core.TransferCounter

// ActualTransferCounter is implemented by dictionaries backed by a real
// block store — a "gcola" built with WithSpillDir — and reports the
// chunk reads and writes that actually hit the spill files, the
// measured side of the DAM model's predicted-vs-actual comparison.
type ActualTransferCounter = core.ActualTransferCounter
