package repro

// Adversarial regression tests for the durability subsystem: a hostile
// container must not be able to reach a side-effecting builder, and a
// default-shard-count inner must survive machine-parallelism changes.
// Both reproduce review findings that were fixed before landing.

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// Finding 1: a hostile container naming kind "durable" with a victim
// WAL path must be rejected before any file is touched.
func TestHostileDurableContainerRejectedWithoutSideEffects(t *testing.T) {
	dir := t.TempDir()
	victim := filepath.Join(dir, "victim.txt")
	if err := os.WriteFile(victim, []byte("precious bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Build the hostile container through the internal encoder path:
	// simplest is to Save a legitimate snapshot and rewrite... instead,
	// craft via a real durable build in ANOTHER dir? The registry refuses
	// Save("durable"), so hand-assemble: reuse snap through a save of
	// gcola, then the attack needs a durable header. Use the exported
	// test seam: none. So go lower: construct bytes matching the format.
	// Easiest faithful reproduction: a container whose header spec is
	// {Kind:"durable", WithWALPath: victim} and an empty payload.
	data := buildHostileDurableContainer(victim)
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("hostile container accepted")
	}
	got, err := os.ReadFile(victim)
	if err != nil || string(got) != "precious bytes" {
		t.Fatalf("victim file damaged: %q (%v)", got, err)
	}
	if _, err := os.Stat(victim + ".ckpt"); !os.IsNotExist(err) {
		t.Fatal("hostile load created a checkpoint sibling")
	}
}

// Finding 2: a durable dictionary over a default-shard-count sharded
// inner must reopen even if GOMAXPROCS changed in between.
func TestDurableShardedSurvivesGOMAXPROCSChange(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.wal")
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	d, err := Open(path, WithInner("sharded"))
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 200; i++ {
		d.Insert(i, i)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Insert(999, 1)
	mustClose(t, d)

	runtime.GOMAXPROCS(2)
	r, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after GOMAXPROCS change: %v", err)
	}
	defer mustClose(t, r)
	if r.Len() != 201 {
		t.Fatalf("recovered Len = %d", r.Len())
	}
	if v, ok := r.Search(150); !ok || v != 150 {
		t.Fatal("contents wrong after reopen")
	}
}

// Finding 3 (review round 2): the capability gate must hold one nesting
// level down. A hostile container naming a pure snapshot-capable
// wrapper kind with a nested WithInner spec of {"durable", WithWALPath:
// victim} previously bypassed the top-level-only check: the wrapper's
// builder Built the durable inner, whose wal.Open truncated the victim
// during torn-tail repair and created a .ckpt sibling.
func TestHostileNestedDurableContainerRejectedWithoutSideEffects(t *testing.T) {
	for _, outer := range []string{"synchronized", "sharded"} {
		t.Run(outer, func(t *testing.T) {
			dir := t.TempDir()
			victim := filepath.Join(dir, "victim.txt")
			if err := os.WriteFile(victim, []byte("precious bytes"), 0o644); err != nil {
				t.Fatal(err)
			}
			data := buildHostileNestedContainer(outer, victim)
			if _, err := Load(bytes.NewReader(data)); err == nil {
				t.Fatal("hostile nested container accepted")
			}
			got, err := os.ReadFile(victim)
			if err != nil || string(got) != "precious bytes" {
				t.Fatalf("victim file damaged: %q (%v)", got, err)
			}
			if _, err := os.Stat(victim + ".ckpt"); !os.IsNotExist(err) {
				t.Fatal("hostile load created a checkpoint sibling")
			}
		})
	}
}

// hostileDurableSpec appends the header encoding of {Kind:"durable",
// WithWALPath: victim} to h.
func hostileDurableSpec(h *bytes.Buffer, victim string) {
	putStr := func(s string) {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
		h.Write(l[:])
		h.WriteString(s)
	}
	putStr("durable")
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], 1)
	h.Write(n[:])
	putStr("WithWALPath")
	h.WriteByte(2) // tagString
	putStr(victim)
}

// buildHostileDurableContainer hand-assembles a snap container whose
// header names kind "durable" with WithWALPath pointing at the victim.
func buildHostileDurableContainer(victim string) []byte {
	var h bytes.Buffer
	hostileDurableSpec(&h, victim)
	return frameHostileContainer(h.Bytes())
}

// buildHostileNestedContainer hand-assembles a snap container whose
// header names the outer wrapper kind with a nested WithInner spec of
// {"durable", WithWALPath: victim}.
func buildHostileNestedContainer(outer, victim string) []byte {
	var h bytes.Buffer
	putStr := func(s string) {
		var l [2]byte
		binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
		h.Write(l[:])
		h.WriteString(s)
	}
	putStr(outer)
	var n [2]byte
	binary.LittleEndian.PutUint16(n[:], 1)
	h.Write(n[:])
	putStr("WithInner")
	h.WriteByte(3) // tagSpec
	hostileDurableSpec(&h, victim)
	return frameHostileContainer(h.Bytes())
}

// frameHostileContainer wraps header bytes in the container preamble,
// checksums, and an empty payload.
func frameHostileContainer(header []byte) []byte {
	var out bytes.Buffer
	out.WriteString("RSNP")
	var w4 [4]byte
	var w8 [8]byte
	binary.LittleEndian.PutUint32(w4[:], 1)
	out.Write(w4[:])
	binary.LittleEndian.PutUint32(w4[:], uint32(len(header)))
	out.Write(w4[:])
	out.Write(header)
	binary.LittleEndian.PutUint32(w4[:], crc32.ChecksumIEEE(header))
	out.Write(w4[:])
	binary.LittleEndian.PutUint64(w8[:], 0) // empty payload
	out.Write(w8[:])
	binary.LittleEndian.PutUint32(w4[:], crc32.ChecksumIEEE(nil))
	out.Write(w4[:])
	return out.Bytes()
}
