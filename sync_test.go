package repro

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

func TestSynchronizedBasics(t *testing.T) {
	s := Synchronized(NewCOLA(nil))
	s.Insert(1, 10)
	if v, ok := s.Search(1); !ok || v != 10 {
		t.Fatalf("Search = (%d,%v)", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	count := 0
	s.Range(0, 10, func(Element) bool { count++; return true })
	if count != 1 {
		t.Fatalf("Range visited %d", count)
	}
	if !s.Delete(1) {
		t.Fatal("Delete failed")
	}
	if s.Delete(1) {
		t.Fatal("double Delete succeeded")
	}
	if s.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}
}

func TestSynchronizedDeleteOnNonDeleter(t *testing.T) {
	s := Synchronized(NewSWBST(SWBSTOptions{Fanout: 8}))
	s.Insert(1, 1)
	// SWBST's Delete is not exposed through core.Deleter... it has
	// Delete(uint64) bool, so it does satisfy Deleter; use the shuttle
	// tree, which genuinely does not support deletes.
	sh := Synchronized(NewShuttleTree(ShuttleOptions{Fanout: 8}))
	sh.Insert(2, 2)
	if sh.Delete(2) {
		t.Fatal("Delete on a non-Deleter returned true")
	}
	if _, ok := sh.Search(2); !ok {
		t.Fatal("key vanished")
	}
	_ = s
}

// TestSynchronizedForwardsCapabilities checks the wrapper no longer
// drops the wrapped structure's capabilities: Stats, Transfers, and
// InsertBatch reach the inner structure under the lock, and degrade to
// zero values when the inner structure lacks them.
func TestSynchronizedForwardsCapabilities(t *testing.T) {
	// Inner with everything: a sharded map with per-shard DAM stores
	// (Statser, TransferCounter, BatchInserter, Deleter).
	inner := NewShardedMap(WithShards(2), WithShardDAM(DefaultBlockBytes, 1<<14))
	s := Synchronized(inner)

	batch := make([]Element, 0, 50_000)
	for i := uint64(0); i < 50_000; i++ {
		batch = append(batch, Element{Key: i, Value: i})
	}
	s.InsertBatch(batch)
	if s.Len() != len(batch) {
		t.Fatalf("Len = %d after InsertBatch, want %d", s.Len(), len(batch))
	}
	if st := s.Stats(); st.Inserts == 0 {
		t.Error("Stats not forwarded: zero inserts recorded")
	}
	if s.Transfers() == 0 {
		t.Error("Transfers not forwarded: zero despite per-shard DAM stores")
	}
	if del, statser, transfers, bat, shared := s.Supports(); !del || !statser || !transfers || !bat || !shared {
		t.Errorf("Supports = (%v,%v,%v,%v,%v), want all true", del, statser, transfers, bat, shared)
	}

	// Via the interfaces, as generic callers see it.
	var d Dictionary = s
	if st, ok := d.(Statser); !ok || st.Stats().Inserts == 0 {
		t.Error("Statser not visible through the Dictionary interface")
	}
	if tc, ok := d.(TransferCounter); !ok || tc.Transfers() == 0 {
		t.Error("TransferCounter not visible through the Dictionary interface")
	}

	// Inner with none of it: swbst keeps no counters and owns no store.
	bare := Synchronized(NewSWBST(SWBSTOptions{Fanout: 8}))
	bare.Insert(1, 1)
	if st := bare.Stats(); st != (Stats{}) {
		t.Errorf("Stats over swbst = %+v, want zero", st)
	}
	if bare.Transfers() != 0 {
		t.Error("Transfers over swbst nonzero")
	}
	if _, statser, transfers, _, shared := bare.Supports(); statser || transfers || !shared {
		t.Error("Supports over swbst claims forwarded Stats/Transfers or denies shared reads")
	}
	bare.InsertBatch([]Element{{Key: 2, Value: 20}, {Key: 3, Value: 30}})
	if bare.Len() != 3 {
		t.Fatalf("fallback InsertBatch: Len = %d, want 3", bare.Len())
	}
}

// TestSharedReadsFacadeProbe pins the re-exported instance-level
// capability probe across leaf structures and wrappers.
func TestSharedReadsFacadeProbe(t *testing.T) {
	if !SharedReads(NewCOLA(nil)) {
		t.Fatal("COLA must probe shared-read capable")
	}
	if SharedReads(NewDeamortizedCOLA(nil)) {
		t.Fatal("deamortized COLA must probe exclusive")
	}
	if !SharedReads(NewShardedMap(WithShards(2))) {
		t.Fatal("sharded map over COLA must probe shared-read capable")
	}
	if !SharedReads(Synchronized(NewBTree(BTreeOptions{}))) {
		t.Fatal("synchronized B-tree must probe shared-read capable")
	}
	if SharedReads(Synchronized(NewDeamortizedCOLA(nil))) {
		t.Fatal("synchronized deamortized COLA must probe exclusive")
	}
	// The shuttle tree is conditional: safe without a space only.
	if !SharedReads(NewShuttleTree(ShuttleOptions{Fanout: 8})) {
		t.Fatal("unaccounted shuttle tree must probe shared-read capable")
	}
	store := NewStore(DefaultBlockBytes, 1<<16)
	if SharedReads(NewShuttleTree(ShuttleOptions{Fanout: 8, Space: store.Space("s")})) {
		t.Fatal("DAM-charged shuttle tree must probe exclusive (lazy layout placement on the probe path)")
	}
}

// TestSynchronizedConcurrentMixed hammers the wrapper from many
// goroutines; run with -race to verify mutual exclusion.
func TestSynchronizedConcurrentMixed(t *testing.T) {
	s := Synchronized(NewCOLA(nil))
	workers, perG := 8, 2000
	if testing.Short() {
		perG = 400
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 1)
			for i := 0; i < perG; i++ {
				k := rng.Uint64() % 4096
				switch rng.Uint64() % 5 {
				case 0, 1:
					s.Insert(k, k)
				case 2:
					s.Search(k)
				case 3:
					s.Range(k, k+64, func(Element) bool { return true })
				case 4:
					s.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// The wrapper must still be coherent after the stress.
	s.Insert(1, 1)
	if _, ok := s.Search(1); !ok {
		t.Fatal("post-stress Search lost a fresh insert")
	}
	found := 0
	s.Range(0, 4096, func(Element) bool { found++; return true })
	if found == 0 {
		t.Fatal("concurrent inserts lost")
	}
}

// TestShardedConcurrentMixed is the same stress aimed at the sharded
// map through the facade re-exports, so -race exercises the per-shard
// locking discipline alongside the global-mutex wrapper's.
func TestShardedConcurrentMixed(t *testing.T) {
	m := NewShardedMap(WithShards(8), WithBatchSize(64))
	workers, perG := 8, 2000
	if testing.Short() {
		perG = 400
	}
	loader := m.NewLoader()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 101)
			for i := 0; i < perG; i++ {
				k := rng.Uint64() % 4096
				switch rng.Uint64() % 6 {
				case 0, 1:
					m.Insert(k, k)
				case 2:
					m.Search(k)
				case 3:
					m.Range(k, k+64, func(Element) bool { return true })
				case 4:
					m.Delete(k)
				case 5:
					loader.C() <- Element{Key: k, Value: k}
				}
			}
		}(w)
	}
	wg.Wait()
	loader.Close()
	m.Insert(9999999, 7)
	if v, ok := m.Search(9999999); !ok || v != 7 {
		t.Fatalf("post-stress Search = (%d,%v)", v, ok)
	}
	found := 0
	m.Range(0, 4096, func(Element) bool { found++; return true })
	if found == 0 {
		t.Fatal("concurrent inserts lost")
	}
}

// TestShardedFacade checks the re-exported constructor and options
// compose: a B-tree-backed sharded map with per-shard DAM accounting.
func TestShardedFacade(t *testing.T) {
	m := NewShardedMap(
		WithShards(4),
		WithDictionary(func(_ int, sp *Space) Dictionary {
			return NewBTree(BTreeOptions{Space: sp})
		}),
		WithShardDAM(DefaultBlockBytes, 1<<16),
	)
	for i := uint64(0); i < 4096; i++ {
		m.Insert(i, i)
	}
	if m.Len() != 4096 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.Transfers() == 0 {
		t.Fatal("DAM-charged sharded map reports zero transfers")
	}
	var prev uint64
	count := 0
	m.Range(100, 199, func(e Element) bool {
		if count > 0 && e.Key <= prev {
			t.Fatalf("Range out of order: %d after %d", e.Key, prev)
		}
		prev = e.Key
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("Range visited %d, want 100", count)
	}
}
