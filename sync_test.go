package repro

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

func TestSynchronizedBasics(t *testing.T) {
	s := Synchronized(MustBuild("cola"))
	s.Insert(1, 10)
	if v, ok := s.Search(1); !ok || v != 10 {
		t.Fatalf("Search = (%d,%v)", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	count := 0
	s.Range(0, 10, func(Element) bool { count++; return true })
	if count != 1 {
		t.Fatalf("Range visited %d", count)
	}
	if !s.Delete(1) {
		t.Fatal("Delete failed")
	}
	if s.Delete(1) {
		t.Fatal("double Delete succeeded")
	}
	if s.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}
}

func TestSynchronizedDeleteOnNonDeleter(t *testing.T) {
	s := Synchronized(MustBuild("swbst", WithFanout(8)))
	s.Insert(1, 1)
	// SWBST's Delete is not exposed through core.Deleter... it has
	// Delete(uint64) bool, so it does satisfy Deleter; use the shuttle
	// tree, which genuinely does not support deletes.
	sh := Synchronized(MustBuild("shuttle", WithFanout(8)))
	sh.Insert(2, 2)
	if sh.Delete(2) {
		t.Fatal("Delete on a non-Deleter returned true")
	}
	if _, ok := sh.Search(2); !ok {
		t.Fatal("key vanished")
	}
	_ = s
}

// TestSynchronizedForwardsCapabilities checks the wrapper no longer
// drops the wrapped structure's capabilities: Stats, Transfers, and
// InsertBatch reach the inner structure under the lock, and degrade to
// zero values when the inner structure lacks them.
func TestSynchronizedForwardsCapabilities(t *testing.T) {
	// Inner with everything: a sharded map with per-shard DAM stores
	// (Statser, TransferCounter, BatchInserter, Deleter).
	inner := MustBuild("sharded", WithShards(2), WithShardDAM(DefaultBlockBytes, 1<<14))
	s := Synchronized(inner)

	batch := make([]Element, 0, 50_000)
	for i := uint64(0); i < 50_000; i++ {
		batch = append(batch, Element{Key: i, Value: i})
	}
	s.InsertBatch(batch)
	if s.Len() != len(batch) {
		t.Fatalf("Len = %d after InsertBatch, want %d", s.Len(), len(batch))
	}
	if st := s.Stats(); st.Inserts == 0 {
		t.Error("Stats not forwarded: zero inserts recorded")
	}
	if s.Transfers() == 0 {
		t.Error("Transfers not forwarded: zero despite per-shard DAM stores")
	}
	if c := CapsOf(s); !c.Delete || !c.Stats || !c.Batch || !c.SharedReads {
		t.Errorf("CapsOf = %v, want delete, batch, stats, shared-reads", c)
	}

	// Via the interfaces, as generic callers see it.
	var d Dictionary = s
	if st, ok := d.(Statser); !ok || st.Stats().Inserts == 0 {
		t.Error("Statser not visible through the Dictionary interface")
	}
	if tc, ok := d.(TransferCounter); !ok || tc.Transfers() == 0 {
		t.Error("TransferCounter not visible through the Dictionary interface")
	}

	// Inner with none of it: swbst keeps no counters and owns no store.
	bare := Synchronized(MustBuild("swbst", WithFanout(8)))
	bare.Insert(1, 1)
	if st := bare.Stats(); st != (Stats{}) {
		t.Errorf("Stats over swbst = %+v, want zero", st)
	}
	if bare.Transfers() != 0 {
		t.Error("Transfers over swbst nonzero")
	}
	if c := CapsOf(bare); c.Stats || !c.SharedReads {
		t.Errorf("CapsOf over swbst = %v: claims forwarded Stats or denies shared reads", c)
	}
	bare.InsertBatch([]Element{{Key: 2, Value: 20}, {Key: 3, Value: 30}})
	if bare.Len() != 3 {
		t.Fatalf("fallback InsertBatch: Len = %d, want 3", bare.Len())
	}
}

// TestSharedReadsFacadeProbe pins the instance-level capability probe
// (CapsOf, the one public probe) across leaf structures and wrappers.
func TestSharedReadsFacadeProbe(t *testing.T) {
	if !CapsOf(MustBuild("cola")).SharedReads {
		t.Fatal("COLA must probe shared-read capable")
	}
	if CapsOf(MustBuild("deamortized")).SharedReads {
		t.Fatal("deamortized COLA must probe exclusive")
	}
	if !CapsOf(MustBuild("sharded", WithShards(2))).SharedReads {
		t.Fatal("sharded map over COLA must probe shared-read capable")
	}
	if !CapsOf(Synchronized(MustBuild("btree"))).SharedReads {
		t.Fatal("synchronized B-tree must probe shared-read capable")
	}
	if CapsOf(Synchronized(MustBuild("deamortized"))).SharedReads {
		t.Fatal("synchronized deamortized COLA must probe exclusive")
	}
	// The shuttle tree is conditional: safe without a space only.
	if !CapsOf(MustBuild("shuttle", WithFanout(8))).SharedReads {
		t.Fatal("unaccounted shuttle tree must probe shared-read capable")
	}
	store := NewStore(DefaultBlockBytes, 1<<16)
	accounted := MustBuild("shuttle", WithFanout(8), WithSpace(store.Space("s")))
	if CapsOf(accounted).SharedReads {
		t.Fatal("DAM-charged shuttle tree must probe exclusive (lazy layout placement on the probe path)")
	}
	// The deprecated boolean veneer must agree with CapsOf.
	if SharedReads(accounted) != CapsOf(accounted).SharedReads {
		t.Fatal("deprecated SharedReads disagrees with CapsOf")
	}
}

// TestSynchronizedConcurrentMixed hammers the wrapper from many
// goroutines; run with -race to verify mutual exclusion.
func TestSynchronizedConcurrentMixed(t *testing.T) {
	s := Synchronized(MustBuild("cola"))
	workers, perG := 8, 2000
	if testing.Short() {
		perG = 400
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 1)
			for i := 0; i < perG; i++ {
				k := rng.Uint64() % 4096
				switch rng.Uint64() % 5 {
				case 0, 1:
					s.Insert(k, k)
				case 2:
					s.Search(k)
				case 3:
					s.Range(k, k+64, func(Element) bool { return true })
				case 4:
					s.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	// The wrapper must still be coherent after the stress.
	s.Insert(1, 1)
	if _, ok := s.Search(1); !ok {
		t.Fatal("post-stress Search lost a fresh insert")
	}
	found := 0
	s.Range(0, 4096, func(Element) bool { found++; return true })
	if found == 0 {
		t.Fatal("concurrent inserts lost")
	}
}

// TestShardedConcurrentMixed is the same stress aimed at the sharded
// map through the facade re-exports, so -race exercises the per-shard
// locking discipline alongside the global-mutex wrapper's.
func TestShardedConcurrentMixed(t *testing.T) {
	m := MustBuild("sharded", WithShards(8), WithBatchSize(64)).(*ShardedMap)
	workers, perG := 8, 2000
	if testing.Short() {
		perG = 400
	}
	loader := m.NewLoader()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 101)
			for i := 0; i < perG; i++ {
				k := rng.Uint64() % 4096
				switch rng.Uint64() % 6 {
				case 0, 1:
					m.Insert(k, k)
				case 2:
					m.Search(k)
				case 3:
					m.Range(k, k+64, func(Element) bool { return true })
				case 4:
					m.Delete(k)
				case 5:
					loader.C() <- Element{Key: k, Value: k}
				}
			}
		}(w)
	}
	wg.Wait()
	loader.Close()
	m.Insert(9999999, 7)
	if v, ok := m.Search(9999999); !ok || v != 7 {
		t.Fatalf("post-stress Search = (%d,%v)", v, ok)
	}
	found := 0
	m.Range(0, 4096, func(Element) bool { found++; return true })
	if found == 0 {
		t.Fatal("concurrent inserts lost")
	}
}

// TestShardedFacade checks the re-exported constructor and options
// compose: a B-tree-backed sharded map with per-shard DAM accounting.
func TestShardedFacade(t *testing.T) {
	m := MustBuild("sharded",
		WithShards(4),
		WithDictionary(func(_ int, sp *Space) Dictionary {
			return MustBuild("btree", WithSpace(sp))
		}),
		WithShardDAM(DefaultBlockBytes, 1<<16),
	).(*ShardedMap)
	for i := uint64(0); i < 4096; i++ {
		m.Insert(i, i)
	}
	if m.Len() != 4096 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.Transfers() == 0 {
		t.Fatal("DAM-charged sharded map reports zero transfers")
	}
	var prev uint64
	count := 0
	m.Range(100, 199, func(e Element) bool {
		if count > 0 && e.Key <= prev {
			t.Fatalf("Range out of order: %d after %d", e.Key, prev)
		}
		prev = e.Key
		count++
		return true
	})
	if count != 100 {
		t.Fatalf("Range visited %d, want 100", count)
	}
}
