package repro

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

func TestSynchronizedBasics(t *testing.T) {
	s := Synchronized(NewCOLA(nil))
	s.Insert(1, 10)
	if v, ok := s.Search(1); !ok || v != 10 {
		t.Fatalf("Search = (%d,%v)", v, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
	count := 0
	s.Range(0, 10, func(Element) bool { count++; return true })
	if count != 1 {
		t.Fatalf("Range visited %d", count)
	}
	if !s.Delete(1) {
		t.Fatal("Delete failed")
	}
	if s.Delete(1) {
		t.Fatal("double Delete succeeded")
	}
	if s.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}
}

func TestSynchronizedDeleteOnNonDeleter(t *testing.T) {
	s := Synchronized(NewSWBST(SWBSTOptions{Fanout: 8}))
	s.Insert(1, 1)
	// SWBST's Delete is not exposed through core.Deleter... it has
	// Delete(uint64) bool, so it does satisfy Deleter; use the shuttle
	// tree, which genuinely does not support deletes.
	sh := Synchronized(NewShuttleTree(ShuttleOptions{Fanout: 8}))
	sh.Insert(2, 2)
	if sh.Delete(2) {
		t.Fatal("Delete on a non-Deleter returned true")
	}
	if _, ok := sh.Search(2); !ok {
		t.Fatal("key vanished")
	}
	_ = s
}

// TestSynchronizedConcurrentMixed hammers the wrapper from many
// goroutines; run with -race to verify mutual exclusion.
func TestSynchronizedConcurrentMixed(t *testing.T) {
	s := Synchronized(NewCOLA(nil))
	const (
		workers = 8
		perG    = 2000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 1)
			for i := 0; i < perG; i++ {
				k := rng.Uint64() % 4096
				switch rng.Uint64() % 4 {
				case 0, 1:
					s.Insert(k, k)
				case 2:
					s.Search(k)
				case 3:
					s.Range(k, k+64, func(Element) bool { return true })
				}
			}
		}(w)
	}
	wg.Wait()
	// Every key some goroutine inserted must be findable.
	found := 0
	s.Range(0, 4096, func(Element) bool { found++; return true })
	if found == 0 {
		t.Fatal("concurrent inserts lost")
	}
}
