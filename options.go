package repro

// The unified functional options accepted by Build. One shared
// vocabulary covers every kind; Build validates per kind, so e.g.
// WithEpsilon on "btree" is a descriptive error rather than a silently
// dropped field. The option matrix (which option applies to which kind)
// is documented in DESIGN.md and queryable via KindOptions.

import (
	"repro/internal/registry"
)

// WithSpace charges the structure's memory traffic to the given DAM
// space; nil disables accounting. Accepted by every kind that supports
// cost accounting (all but "swbst" and "sharded"; sharded maps use
// WithShardDAM so accounting stays race-free per shard).
func WithSpace(sp *Space) Option { return registry.WithSpace(sp) }

// WithGrowthFactor sets the lookahead-array growth factor g >= 2
// ("gcola"); g = 2 is the cache-oblivious COLA.
func WithGrowthFactor(g int) Option { return registry.WithGrowthFactor(g) }

// WithPointerDensity sets the lookahead pointer density p in [0, 0.5]
// ("gcola"); p = 0 disables fractional cascading, the paper uses 0.1.
func WithPointerDensity(p float64) Option { return registry.WithPointerDensity(p) }

// WithFanout sets the fanout / balance parameter of the tree kinds
// ("shuttle", "cobtree", "swbst": >= 4; "btree": >= 3).
func WithFanout(n int) Option { return registry.WithFanout(n) }

// WithEpsilon positions the cache-aware lookahead array ("la") on the
// insert/search tradeoff curve; epsilon in [0, 1], default 0.5.
func WithEpsilon(e float64) Option { return registry.WithEpsilon(e) }

// WithBlockBytes sets the block size B for the cache-aware kinds
// ("btree", "brt", "la"); default DefaultBlockBytes.
func WithBlockBytes(b int64) Option { return registry.WithBlockBytes(b) }

// WithLeafCapacity overrides the B-tree's derived elements-per-leaf
// ("btree").
func WithLeafCapacity(n int) Option { return registry.WithLeafCapacity(n) }

// WithRelayoutEvery sets how many node splits the shuttle tree absorbs
// before rebuilding its exact van Emde Boas layout ("shuttle");
// negative disables rebuilds.
func WithRelayoutEvery(n int) Option { return registry.WithRelayoutEvery(n) }

// WithShards sets the partition count of a sharded map ("sharded"),
// rounded up to a power of two.
func WithShards(n int) Option { return registry.WithShards(n) }

// WithBatchSize sets a sharded map Loader's per-flush batch size
// ("sharded").
func WithBatchSize(k int) Option { return registry.WithBatchSize(k) }

// WithShardDAM gives every shard of a sharded map its own DAM store
// with the given geometry ("sharded"); Transfers then reports the
// aggregate.
func WithShardDAM(blockBytes, cacheBytes int64) Option {
	return registry.WithShardDAM(blockBytes, cacheBytes)
}

// WithInner selects the structure a wrapper kind wraps — any registered
// kind plus its own options ("sharded", "synchronized"):
//
//	repro.Build("sharded",
//	    repro.WithShards(8),
//	    repro.WithInner("btree", repro.WithLeafCapacity(64)),
//	)
//
// Do not pass WithSpace inside a sharded map's inner options: each
// shard receives its private space (WithShardDAM).
func WithInner(kind string, opts ...Option) Option { return registry.WithInner(kind, opts...) }

// WithDictionary sets an explicit per-shard constructor on a sharded
// map ("sharded"), for structures not in the registry. Mutually
// exclusive with WithInner.
func WithDictionary(f ShardFactory) Option { return registry.WithFactory(f) }

// WithWALPath sets the write-ahead log path of a "durable" dictionary;
// its checkpoint snapshot lives next to it at path + ".ckpt". Open is
// the shorthand that passes this for you.
func WithWALPath(path string) Option { return registry.WithWALPath(path) }

// WithCheckpointEvery makes a "durable" dictionary checkpoint
// automatically after every n appended log records (batches, not
// elements); 0 — the default — disables automatic checkpoints and the
// log grows until Checkpoint is called.
func WithCheckpointEvery(n int) Option { return registry.WithCheckpointEvery(n) }

// WithSpillDir runs a "gcola" out of core: levels at or past the spill
// depth live in chunk-aligned files under a private subdirectory of dir
// instead of RAM, merged by sequential streaming and searched through a
// small page cache. Like WithSpace, the spill configuration is runtime
// wiring: it is not recorded in snapshots (pass it again at Load) and
// is rejected inside a "durable" inner. Close the built dictionary (it
// implements io.Closer) to release the spill files.
func WithSpillDir(dir string) Option { return registry.WithSpillDir(dir) }

// WithSpillDepth sets the first level index backed by spill files
// ("gcola", >= 1; level 0 always stays in RAM). Default 8. Requires
// WithSpillDir.
func WithSpillDepth(n int) Option { return registry.WithSpillDepth(n) }

// WithSpillCacheBytes sets the spill store's page-cache budget in bytes
// ("gcola"; floored at a few chunks). Default 256 KiB. Requires
// WithSpillDir.
func WithSpillCacheBytes(b int64) Option { return registry.WithSpillCacheBytes(b) }
