package repro

import "repro/internal/syncdict"

// SynchronizedDictionary wraps a Dictionary with a sync.RWMutex so it
// can be shared between goroutines — the coarse-grained escape hatch
// for concurrent callers (for real multi-core scaling use ShardedMap).
// It forwards the capabilities of the structure it wraps: Delete,
// Stats, Transfers, and InsertBatch each reach the inner structure
// under the lock when it implements the corresponding interface, and
// degrade gracefully (false / zero / an insert loop) when it does not;
// Supports reports what is genuinely forwarded.
//
// The implementation lives in internal/syncdict so the kind registry
// can build it ("synchronized", optionally WithInner(kind)).
type SynchronizedDictionary = syncdict.Dict

// Synchronized wraps d for concurrent use. Equivalent to
// Build("synchronized", ...) with d as the inner structure, for callers
// that already hold one.
func Synchronized(d Dictionary) *SynchronizedDictionary {
	return syncdict.New(d)
}
