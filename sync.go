package repro

import "sync"

// SynchronizedDictionary wraps a Dictionary with a sync.RWMutex so it can
// be shared between goroutines. The underlying structures are single-
// threaded by design (the paper's experiments are too); this wrapper is
// the coarse-grained escape hatch for concurrent callers — reads share,
// writes exclude.
//
// Note that Insert on the buffered structures can trigger a merge, so a
// "read-mostly" workload still serializes behind occasional long write
// sections; the deamortized COLA's O(log N) worst-case insert keeps
// those sections short.
//
// For real multi-core scaling use ShardedMap (NewShardedMap), which
// hash-partitions keys over N independently locked structures so
// operations on different shards proceed in parallel; this wrapper
// remains for callers that need a single structure shared as-is.
type SynchronizedDictionary struct {
	mu sync.RWMutex
	d  Dictionary
}

// Synchronized wraps d for concurrent use.
func Synchronized(d Dictionary) *SynchronizedDictionary {
	return &SynchronizedDictionary{d: d}
}

var _ Dictionary = (*SynchronizedDictionary)(nil)

// Insert implements Dictionary.
func (s *SynchronizedDictionary) Insert(key, value uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Insert(key, value)
}

// Search implements Dictionary.
//
// The lock is exclusive, not shared: a search on a DAM-charged structure
// mutates the store's LRU state, and several structures keep internal
// counters. Correctness first; callers needing parallel reads should
// shard.
func (s *SynchronizedDictionary) Search(key uint64) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Search(key)
}

// Range implements Dictionary. The callback runs under the lock; it must
// not call back into the dictionary.
func (s *SynchronizedDictionary) Range(lo, hi uint64, fn func(Element) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.d.Range(lo, hi, fn)
}

// Len implements Dictionary.
func (s *SynchronizedDictionary) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d.Len()
}

// Delete forwards to the wrapped structure's Deleter if it has one; it
// reports false otherwise.
func (s *SynchronizedDictionary) Delete(key uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if del, ok := s.d.(Deleter); ok {
		return del.Delete(key)
	}
	return false
}

// Unwrap returns the underlying dictionary (for single-threaded phases).
func (s *SynchronizedDictionary) Unwrap() Dictionary { return s.d }
