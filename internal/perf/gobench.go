package perf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseGoBench converts `go test -bench` output into perf records, one
// per benchmark line. Lines that are not benchmark results (package
// headers, PASS/ok trailers, log output) are skipped.
//
// A line looks like
//
//	BenchmarkFig2RandomInserts/2-COLA-8   100   56789 ns/op   12 B/op   3 allocs/op   0.50 transfers/op
//
// The record's Op is "gobench" and its Kind is the benchmark name with
// the "Benchmark" prefix and the trailing -GOMAXPROCS suffix removed
// (so the same benchmark matches across hosts with different core
// counts), qualified by the surrounding "pkg:" header when present —
// `go test -bench . ./...` spans packages, and two packages may define
// same-named benchmarks that must not collide on Result.Key.
// Recognized units: ns/op, B/op, allocs/op, and any custom unit ending
// in "transfers/op"; others are ignored.
func ParseGoBench(r io.Reader) ([]Result, error) {
	var out []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if p, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(p)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // e.g. "BenchmarkFoo---FAIL"
		}
		kind := trimCPUSuffix(strings.TrimPrefix(fields[0], "Benchmark"))
		if pkg != "" {
			kind = pkg + ":" + kind
		}
		res := Result{Op: "gobench", Kind: kind, Samples: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("perf: bad value %q in bench line %q", fields[i], line)
			}
			switch unit := fields[i+1]; {
			case unit == "ns/op":
				res.NsPerOp = v
			case unit == "B/op":
				res.BytesPerOp = F(v)
			case unit == "allocs/op":
				res.AllocsPerOp = F(v)
			case strings.HasSuffix(unit, "transfers/op"):
				res.TransfersPerOp = v
			}
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

// trimCPUSuffix drops the "-N" GOMAXPROCS suffix go test appends to
// benchmark names. Sub-benchmark names may themselves contain dashes
// ("Fig2RandomInserts/2-COLA-8" → "Fig2RandomInserts/2-COLA"), so only
// a trailing run of digits after the final dash is removed.
func trimCPUSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 || i == len(name)-1 {
		return name
	}
	for _, r := range name[i+1:] {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}
