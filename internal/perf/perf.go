// Package perf is the repository's benchmark-result pipeline: a
// machine-readable record model for measured operation costs, a JSON
// writer/reader for committing baselines (BENCH_*.json at the repo
// root), and a benchstat-style comparator with configurable regression
// thresholds that CI uses to gate pull requests.
//
// Three producers feed the model:
//
//   - cmd/streambench -json writes one record per figure series point
//     (wall-clock ns/op and DAM transfers/op),
//   - ParseGoBench converts `go test -bench -benchmem` output
//     (ns/op, B/op, allocs/op, custom transfers/op metrics),
//   - tests can construct records directly.
//
// Records carry host metadata so the comparator knows when wall-clock
// numbers are comparable: ns/op is only gated between reports whose
// host fingerprints match (DAM transfers and allocation counts are
// deterministic and gate everywhere). See DESIGN.md "Appendix: the
// perf JSON schema" for the committed format.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"
)

// Schema is the current perf JSON schema version; Read rejects reports
// written by a newer schema.
const Schema = 1

// Host identifies the machine a report was measured on.
type Host struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// ThisHost describes the current process's machine.
func ThisHost() Host {
	return Host{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// Fingerprint is the comparability key for wall-clock numbers: OS,
// architecture, and core count. The Go version is deliberately
// excluded — toolchain upgrades are exactly the regressions the gate
// should see, not an excuse to skip it.
func (h Host) Fingerprint() string {
	return fmt.Sprintf("%s/%s/cpu%d", h.GOOS, h.GOARCH, h.NumCPU)
}

// Result is one measured operating point. Op names the experiment
// ("figure-2-wall-clock", "gobench", ...), Kind the structure or
// benchmark under it, and LogN/X/YIndex locate the point within the
// experiment's sweep; together they form the identity the comparator
// matches on.
//
// AllocsPerOp and BytesPerOp are pointers so a measured zero (the
// zero-allocation hot paths this package exists to protect) is
// distinguishable from "not measured" (streambench records, which
// carry no allocation data).
type Result struct {
	Op     string  `json:"op"`
	Kind   string  `json:"kind"`
	LogN   int     `json:"logn,omitempty"`
	X      float64 `json:"x,omitempty"`
	YIndex int     `json:"y_index,omitempty"`

	// Samples is how many operations the wall-clock number averages
	// over (benchmark iterations, or a figure checkpoint's window).
	// The comparator refuses to gate ns/op below a sample floor:
	// one-shot windows of a few thousand ops routinely jitter far past
	// any reasonable threshold.
	Samples int `json:"samples,omitempty"`

	NsPerOp        float64  `json:"ns_per_op,omitempty"`
	TransfersPerOp float64  `json:"transfers_per_op,omitempty"`
	AllocsPerOp    *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp     *float64 `json:"bytes_per_op,omitempty"`
}

// F boxes a float for the optional metric fields.
func F(v float64) *float64 { return &v }

// Key is the identity the comparator matches baseline and candidate
// records on.
func (r Result) Key() string {
	return fmt.Sprintf("%s|%s|%d|%g|%d", r.Op, r.Kind, r.LogN, r.X, r.YIndex)
}

// Report is one benchmark run: a label describing how it was produced,
// the host it ran on, and its records.
type Report struct {
	Schema    int      `json:"schema"`
	Label     string   `json:"label,omitempty"`
	CreatedAt string   `json:"created_at,omitempty"` // RFC 3339; informational only
	Host      Host     `json:"host"`
	Results   []Result `json:"results"`
}

// NewReport returns an empty report stamped with the current host and
// time.
func NewReport(label string) *Report {
	return &Report{
		Schema:    Schema,
		Label:     label,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Host:      ThisHost(),
	}
}

// Add appends records to the report.
func (rep *Report) Add(rs ...Result) { rep.Results = append(rep.Results, rs...) }

// Sort orders the records by key so serialized reports diff cleanly.
func (rep *Report) Sort() {
	sort.SliceStable(rep.Results, func(i, j int) bool {
		return rep.Results[i].Key() < rep.Results[j].Key()
	})
}

// Write serializes the report as indented JSON, sorted by record key.
func (rep *Report) Write(w io.Writer) error {
	rep.Sort()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteFile writes the report to path, creating or truncating it.
func (rep *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Read parses a report and validates its schema and record identities.
func Read(r io.Reader) (*Report, error) {
	var rep Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("perf: decoding report: %w", err)
	}
	if rep.Schema < 1 || rep.Schema > Schema {
		return nil, fmt.Errorf("perf: unsupported schema %d (this build reads <= %d)", rep.Schema, Schema)
	}
	seen := make(map[string]struct{}, len(rep.Results))
	for _, res := range rep.Results {
		if res.Op == "" {
			return nil, fmt.Errorf("perf: record with empty op (kind %q)", res.Kind)
		}
		key := res.Key()
		if _, dup := seen[key]; dup {
			return nil, fmt.Errorf("perf: duplicate record key %s", key)
		}
		seen[key] = struct{}{}
	}
	return &rep, nil
}

// ReadFile reads a report from path.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}
