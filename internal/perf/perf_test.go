package perf

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	rep := NewReport("test run")
	rep.Add(
		Result{Op: "figure-2-wall-clock", Kind: "2-COLA", LogN: 12, X: 12, NsPerOp: 812.5},
		Result{Op: "figure-2-transfers", Kind: "2-COLA", LogN: 12, X: 12, TransfersPerOp: 0.031},
		Result{Op: "gobench", Kind: "Fig2RandomInserts/2-COLA", NsPerOp: 900,
			AllocsPerOp: F(0), BytesPerOp: F(0)},
		Result{Op: "e6-transfers", Kind: "B-tree", X: 4096, YIndex: 1, TransfersPerOp: 2.5},
	)
	return rep
}

func TestReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatalf("round trip mismatch:\nwrote %+v\nread  %+v", rep, got)
	}
}

func TestReportFileRoundTrip(t *testing.T) {
	rep := sampleReport()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(rep, got) {
		t.Fatal("file round trip mismatch")
	}
}

func TestReadRejectsBadReports(t *testing.T) {
	cases := map[string]string{
		"future schema": `{"schema": 99, "host": {}, "results": []}`,
		"empty op":      `{"schema": 1, "host": {}, "results": [{"op": "", "kind": "x"}]}`,
		"duplicate key": `{"schema": 1, "host": {}, "results": [
			{"op": "a", "kind": "x"}, {"op": "a", "kind": "x"}]}`,
		"not json": `nope`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted invalid report", name)
		}
	}
}

// mkPair builds a baseline/candidate pair sharing one record key, with
// the candidate's metrics scaled or overridden by mutate.
func mkPair(base Result, mutate func(*Result)) (*Report, *Report) {
	b := NewReport("base")
	b.Add(base)
	cand := base
	mutate(&cand)
	n := NewReport("cand")
	n.Add(cand)
	return b, n
}

func regressions(t *testing.T, b, n *Report, th Thresholds) []Delta {
	t.Helper()
	return Compare(b, n, th).Regressions()
}

func TestCompareNsThreshold(t *testing.T) {
	base := Result{Op: "bench", Kind: "insert", NsPerOp: 1000, Samples: 1 << 20}
	th := DefaultThresholds()

	b, n := mkPair(base, func(r *Result) { r.NsPerOp = 1240 })
	if regs := regressions(t, b, n, th); len(regs) != 0 {
		t.Fatalf("+24%% flagged under 25%% threshold: %+v", regs)
	}
	b, n = mkPair(base, func(r *Result) { r.NsPerOp = 1260 })
	regs := regressions(t, b, n, th)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("+26%% not flagged: %+v", regs)
	}
}

func TestCompareNsNoiseFloor(t *testing.T) {
	base := Result{Op: "bench", Kind: "search", NsPerOp: 10, Samples: 1 << 20}
	b, n := mkPair(base, func(r *Result) { r.NsPerOp = 20 })
	if regs := regressions(t, b, n, DefaultThresholds()); len(regs) != 0 {
		t.Fatalf("sub-noise-floor regression flagged: %+v", regs)
	}
}

// TestCompareNsSampleFloor pins the rule that saves the gate from
// flaking: one-shot figure windows (small or absent sample counts)
// are never ns-gated, however large the delta.
func TestCompareNsSampleFloor(t *testing.T) {
	th := DefaultThresholds()
	for _, samples := range []int{0, 100, th.MinSamples - 1} {
		base := Result{Op: "fig", Kind: "2-COLA", NsPerOp: 1000, Samples: samples}
		b, n := mkPair(base, func(r *Result) { r.NsPerOp = 4000 })
		if regs := regressions(t, b, n, th); len(regs) != 0 {
			t.Fatalf("samples=%d: under-sampled ns/op gated: %+v", samples, regs)
		}
	}
	base := Result{Op: "fig", Kind: "2-COLA", NsPerOp: 1000, Samples: th.MinSamples}
	b, n := mkPair(base, func(r *Result) { r.NsPerOp = 4000 })
	if regs := regressions(t, b, n, th); len(regs) != 1 {
		t.Fatalf("well-sampled ns/op not gated: %+v", regs)
	}
}

func TestCompareHostGatesNs(t *testing.T) {
	base := Result{Op: "bench", Kind: "insert", NsPerOp: 1000, Samples: 1 << 20}
	b, n := mkPair(base, func(r *Result) { r.NsPerOp = 5000 })
	b.Host.NumCPU = n.Host.NumCPU + 4 // different fingerprint

	c := Compare(b, n, DefaultThresholds())
	if c.SameHost || c.NsGated {
		t.Fatal("differing hosts treated as comparable")
	}
	if regs := c.Regressions(); len(regs) != 0 {
		t.Fatalf("cross-host ns/op gated without -strict-ns: %+v", regs)
	}
	th := DefaultThresholds()
	th.StrictNs = true
	if regs := regressions(t, b, n, th); len(regs) != 1 {
		t.Fatalf("StrictNs did not gate cross-host ns/op: %+v", regs)
	}
}

func TestCompareAllocsAbsolute(t *testing.T) {
	base := Result{Op: "gobench", Kind: "search", NsPerOp: 1000, AllocsPerOp: F(0)}
	b, n := mkPair(base, func(r *Result) { r.AllocsPerOp = F(1) })
	regs := regressions(t, b, n, DefaultThresholds())
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("0 -> 1 allocs/op not flagged: %+v", regs)
	}
	// "Not measured" on either side must not gate.
	b, n = mkPair(base, func(r *Result) { r.AllocsPerOp = nil })
	if regs := regressions(t, b, n, DefaultThresholds()); len(regs) != 0 {
		t.Fatalf("unmeasured allocs gated: %+v", regs)
	}
}

func TestCompareTransfers(t *testing.T) {
	base := Result{Op: "fig", Kind: "2-COLA", TransfersPerOp: 1.0}
	b, n := mkPair(base, func(r *Result) { r.TransfersPerOp = 1.5 })
	regs := regressions(t, b, n, DefaultThresholds())
	if len(regs) != 1 || regs[0].Metric != "transfers/op" {
		t.Fatalf("transfer regression not flagged: %+v", regs)
	}
	b, n = mkPair(base, func(r *Result) { r.TransfersPerOp = 1.005 })
	if regs := regressions(t, b, n, DefaultThresholds()); len(regs) != 0 {
		t.Fatalf("within-tolerance transfer delta flagged: %+v", regs)
	}
}

func TestCompareUnmatchedKeys(t *testing.T) {
	b := NewReport("base")
	b.Add(Result{Op: "old", Kind: "gone", NsPerOp: 1})
	n := NewReport("cand")
	n.Add(Result{Op: "new", Kind: "added", NsPerOp: 1})
	c := Compare(b, n, DefaultThresholds())
	if len(c.Regressions()) != 0 {
		t.Fatal("unmatched records must not gate")
	}
	if len(c.OnlyBase) != 1 || len(c.OnlyNew) != 1 {
		t.Fatalf("unmatched records not reported: %+v / %+v", c.OnlyBase, c.OnlyNew)
	}
}

func TestParseGoBench(t *testing.T) {
	const out = `
goos: linux
goarch: amd64
pkg: repro
BenchmarkFig2RandomInserts/2-COLA-8         	     100	      5321 ns/op	         0.5000 transfers/op	     128 B/op	       2 allocs/op
BenchmarkFig2RandomInserts/B-tree-8         	     100	     95321 ns/op	         3.100 transfers/op	    4096 B/op	      11 allocs/op
BenchmarkShardedSearch/shards=4-8           	     100	       912 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	1.234s
`
	got, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseGoBench: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d records, want 3: %+v", len(got), got)
	}
	first := got[0]
	if first.Op != "gobench" || first.Kind != "repro:Fig2RandomInserts/2-COLA" {
		t.Fatalf("bad identity: %+v", first)
	}
	if first.NsPerOp != 5321 || first.TransfersPerOp != 0.5 || first.Samples != 100 {
		t.Fatalf("bad metrics: %+v", first)
	}
	if first.AllocsPerOp == nil || *first.AllocsPerOp != 2 || *first.BytesPerOp != 128 {
		t.Fatalf("bad memory metrics: %+v", first)
	}
	last := got[2]
	if last.Kind != "repro:ShardedSearch/shards=4" {
		t.Fatalf("cpu suffix not trimmed or pkg not applied: %q", last.Kind)
	}
	if last.AllocsPerOp == nil || *last.AllocsPerOp != 0 {
		t.Fatal("measured-zero allocs must round-trip as measured")
	}
}

// TestParseGoBenchMultiPackage pins the identity rule that keeps
// same-named benchmarks from different packages from colliding on
// Result.Key (go test -bench . ./... spans packages).
func TestParseGoBenchMultiPackage(t *testing.T) {
	const out = `
pkg: repro/internal/cola
BenchmarkInsert-8	1000	100 ns/op
pkg: repro/internal/shard
BenchmarkInsert-8	1000	200 ns/op
`
	got, err := ParseGoBench(strings.NewReader(out))
	if err != nil {
		t.Fatalf("ParseGoBench: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d records, want 2", len(got))
	}
	if got[0].Key() == got[1].Key() {
		t.Fatalf("same-named benchmarks in different packages collide: %s", got[0].Key())
	}
	if got[0].Kind != "repro/internal/cola:Insert" || got[1].Kind != "repro/internal/shard:Insert" {
		t.Fatalf("bad kinds: %q, %q", got[0].Kind, got[1].Kind)
	}
}

func TestTrimCPUSuffix(t *testing.T) {
	cases := map[string]string{
		"Fig2/2-COLA-8": "Fig2/2-COLA",
		"Fig2/2-COLA":   "Fig2/2-COLA", // trailing token is not digits
		"Plain-16":      "Plain",
		"Plain":         "Plain",
		"Trailing-":     "Trailing-",
	}
	for in, want := range cases {
		if got := trimCPUSuffix(in); got != want {
			t.Errorf("trimCPUSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestComparisonMarkdown(t *testing.T) {
	base := Result{Op: "fig", Kind: "2-COLA", TransfersPerOp: 1.0}
	b, n := mkPair(base, func(r *Result) { r.TransfersPerOp = 1.5 })
	c := Compare(b, n, DefaultThresholds())

	var sb strings.Builder
	if err := c.Markdown(&sb, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"1 regression(s)", "|transfers/op|", "REGRESSION", "|---|"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown lacks %q:\n%s", want, out)
		}
	}

	// A clean comparison says so and, non-verbose, emits no table rows.
	b2, n2 := mkPair(base, func(r *Result) {})
	var clean strings.Builder
	if err := Compare(b2, n2, DefaultThresholds()).Markdown(&clean, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(clean.String(), "no regressions") || strings.Contains(clean.String(), "REGRESSION") {
		t.Errorf("clean markdown wrong:\n%s", clean.String())
	}
}
