package perf

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// Thresholds configures the comparator's regression gates. Fractional
// thresholds express allowed growth of candidate over baseline (0.25
// means the candidate may be up to 25% slower); the allocation
// threshold is absolute (0 means any extra allocation per op fails).
// A negative value disables that metric's gate.
type Thresholds struct {
	// NsPerOp is the allowed fractional ns/op growth. Wall-clock
	// numbers are host-dependent, so this gate applies only when the
	// two reports share a host fingerprint (or StrictNs is set).
	NsPerOp float64
	// MinNsPerOp is a noise floor: ns/op regressions are ignored when
	// both sides are faster than this, where timer jitter dominates.
	MinNsPerOp float64
	// MinSamples is the sample floor: ns/op is gated only when both
	// records averaged over at least this many operations. Figure
	// sweeps measure each checkpoint window once — empirically even
	// 32k-op windows jitter by 1.5x+ run to run — so per-point gating
	// is only sound for long iteration-controlled benchmark runs.
	// Records without sample counts are never ns-gated.
	MinSamples int
	// StrictNs gates ns/op even across differing host fingerprints.
	StrictNs bool
	// AllocsPerOp is the allowed absolute allocs/op growth.
	AllocsPerOp float64
	// TransfersPerOp is the allowed fractional transfers/op growth.
	// DAM transfer counts are deterministic for a fixed workload, so
	// the default tolerance is tight.
	TransfersPerOp float64
}

// DefaultThresholds matches the CI gate: 25% on wall clock (same host,
// >= 50k-op measurements only), zero extra allocations, 1% on DAM
// transfers.
func DefaultThresholds() Thresholds {
	return Thresholds{
		NsPerOp:        0.25,
		MinNsPerOp:     50,    // sub-50ns ops are dominated by timer noise
		MinSamples:     50000, // one-shot figure windows are below this
		AllocsPerOp:    0,
		TransfersPerOp: 0.01,
	}
}

// Delta is one metric of one matched record pair.
type Delta struct {
	Key        string
	Metric     string // "ns/op", "allocs/op", "transfers/op"
	Base, New  float64
	Regression bool
	Gated      bool // whether this metric's gate was active for the pair
}

// Ratio is New/Base, or +Inf when the baseline is zero and the
// candidate is not.
func (d Delta) Ratio() float64 {
	switch {
	case d.Base != 0:
		return d.New / d.Base
	case d.New == 0:
		return 1
	default:
		return math.Inf(1)
	}
}

// Comparison is the outcome of comparing a candidate report against a
// baseline.
type Comparison struct {
	SameHost bool    // fingerprints matched, wall-clock numbers comparable
	NsGated  bool    // the ns/op gate was active
	Deltas   []Delta // one per matched (record, metric), sorted by key
	OnlyBase []string
	OnlyNew  []string
}

// Regressions returns the deltas that tripped their gate.
func (c Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Compare matches candidate records against baseline records by key
// and applies the thresholds. Records present on only one side are
// reported, not gated: lineups grow and shrink across PRs, and a
// missing baseline entry means "no expectation yet", not a failure.
func Compare(base, cand *Report, th Thresholds) Comparison {
	c := Comparison{SameHost: base.Host.Fingerprint() == cand.Host.Fingerprint()}
	c.NsGated = th.NsPerOp >= 0 && (c.SameHost || th.StrictNs)

	baseByKey := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseByKey[r.Key()] = r
	}
	matched := make(map[string]struct{}, len(cand.Results))
	for _, n := range cand.Results {
		key := n.Key()
		b, ok := baseByKey[key]
		if !ok {
			c.OnlyNew = append(c.OnlyNew, key)
			continue
		}
		matched[key] = struct{}{}

		if b.NsPerOp > 0 && n.NsPerOp > 0 {
			d := Delta{Key: key, Metric: "ns/op", Base: b.NsPerOp, New: n.NsPerOp,
				Gated: c.NsGated && b.Samples >= th.MinSamples && n.Samples >= th.MinSamples}
			if d.Gated && n.NsPerOp > b.NsPerOp*(1+th.NsPerOp) &&
				(b.NsPerOp >= th.MinNsPerOp || n.NsPerOp >= th.MinNsPerOp) {
				d.Regression = true
			}
			c.Deltas = append(c.Deltas, d)
		}
		if b.AllocsPerOp != nil && n.AllocsPerOp != nil {
			d := Delta{Key: key, Metric: "allocs/op", Base: *b.AllocsPerOp, New: *n.AllocsPerOp,
				Gated: th.AllocsPerOp >= 0}
			if d.Gated && d.New > d.Base+th.AllocsPerOp {
				d.Regression = true
			}
			c.Deltas = append(c.Deltas, d)
		}
		if b.TransfersPerOp > 0 || n.TransfersPerOp > 0 {
			d := Delta{Key: key, Metric: "transfers/op", Base: b.TransfersPerOp, New: n.TransfersPerOp,
				Gated: th.TransfersPerOp >= 0}
			if d.Gated && d.New > d.Base*(1+th.TransfersPerOp) {
				d.Regression = true
			}
			c.Deltas = append(c.Deltas, d)
		}
	}
	for key := range baseByKey {
		if _, ok := matched[key]; !ok {
			c.OnlyBase = append(c.OnlyBase, key)
		}
	}
	sort.Strings(c.OnlyBase)
	sort.Strings(c.OnlyNew)
	sort.SliceStable(c.Deltas, func(i, j int) bool {
		if c.Deltas[i].Key != c.Deltas[j].Key {
			return c.Deltas[i].Key < c.Deltas[j].Key
		}
		return c.Deltas[i].Metric < c.Deltas[j].Metric
	})
	return c
}

// Markdown renders the comparison as a GitHub-flavored markdown
// fragment (CI appends it to $GITHUB_STEP_SUMMARY). verbose includes
// non-regressing deltas; unmatched keys are summarized by count either
// way, since lineups legitimately grow across PRs.
func (c Comparison) Markdown(w io.Writer, verbose bool) error {
	regs := c.Regressions()
	status := "✅ no regressions"
	if len(regs) > 0 {
		status = fmt.Sprintf("❌ %d regression(s)", len(regs))
	}
	if _, err := fmt.Fprintf(w, "### Perf gate — %s\n\n%d matched metric(s), %d baseline-only, %d candidate-only record(s)",
		status, len(c.Deltas), len(c.OnlyBase), len(c.OnlyNew)); err != nil {
		return err
	}
	if !c.SameHost {
		if _, err := fmt.Fprintf(w, " (hosts differ; ns/op informational)"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	show := regs
	if verbose {
		show = c.Deltas
	}
	if len(show) > 0 {
		if _, err := fmt.Fprintf(w, "\n|key|metric|base|candidate|ratio|status|\n|---|---|---|---|---|---|\n"); err != nil {
			return err
		}
		for _, d := range show {
			flag := ""
			switch {
			case d.Regression:
				flag = "**REGRESSION**"
			case !d.Gated:
				flag = "ungated"
			}
			if _, err := fmt.Fprintf(w, "|%s|%s|%.4g|%.4g|%.3f|%s|\n",
				d.Key, d.Metric, d.Base, d.New, d.Ratio(), flag); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Format renders the comparison as an aligned table, regressions
// first. verbose includes non-regressing deltas and unmatched keys.
func (c Comparison) Format(w io.Writer, verbose bool) {
	if !c.SameHost {
		fmt.Fprintln(w, "note: baseline and candidate hosts differ; ns/op is informational unless -strict-ns")
	}
	regs := c.Regressions()
	fmt.Fprintf(w, "%d matched metric(s), %d regression(s), %d baseline-only, %d candidate-only record(s)\n",
		len(c.Deltas), len(regs), len(c.OnlyBase), len(c.OnlyNew))
	show := regs
	if verbose {
		show = c.Deltas
	}
	if len(show) > 0 {
		fmt.Fprintf(w, "%-60s %-14s %14s %14s %8s %s\n", "key", "metric", "base", "candidate", "ratio", "")
		for _, d := range show {
			flag := ""
			if d.Regression {
				flag = "REGRESSION"
			} else if !d.Gated {
				flag = "(ungated)"
			}
			fmt.Fprintf(w, "%-60s %-14s %14.4g %14.4g %8.3f %s\n",
				d.Key, d.Metric, d.Base, d.New, d.Ratio(), flag)
		}
	}
	if verbose {
		for _, k := range c.OnlyBase {
			fmt.Fprintf(w, "baseline-only: %s\n", k)
		}
		for _, k := range c.OnlyNew {
			fmt.Fprintf(w, "candidate-only: %s\n", k)
		}
	}
}
