package harness

import (
	"math"
	"strings"

	"repro/internal/perf"
)

// PerfRecords flattens regenerated figures into perf records for the
// benchmark pipeline (cmd/streambench -json, gated in CI by
// cmd/perfgate). Only series whose Y axis is a rate ("…/second", which
// becomes ns/op) or a transfer count ("transfers/…", which becomes
// transfers/op) are exported; summary results like the headline ratios
// have no per-operation cost and are skipped.
//
// Record identity: Op is the slugified figure title, Kind the series
// name, X the series point's x value, YIndex the position within a
// multi-metric Y vector (e.g. E6's [insert, search]), and LogN is
// filled when the x axis is a log2 scale.
func PerfRecords(results []Result) []perf.Result {
	var out []perf.Result
	for _, r := range results {
		rate := strings.Contains(r.YLabel, "/second")
		transfers := strings.HasPrefix(r.YLabel, "transfers/") || strings.Contains(r.YLabel, "transfers /") ||
			strings.Contains(r.YLabel, "block transfers")
		if !rate && !transfers {
			continue
		}
		op := slug(r.Title)
		logScale := strings.HasPrefix(r.XLabel, "log2")
		for _, s := range r.Series {
			for i := range s.Y {
				xi := i
				yIndex := 0
				if len(s.X) == 1 && len(s.Y) > 1 {
					// Summary-style series: one x, a vector of metrics.
					xi = 0
					yIndex = i
				}
				if xi >= len(s.X) {
					continue
				}
				rec := perf.Result{Op: op, Kind: s.Name, X: s.X[xi], YIndex: yIndex}
				switch {
				case logScale:
					rec.LogN = int(s.X[xi])
				case r.XLabel == "N":
					rec.LogN = log2i(s.X[xi])
				}
				if rate {
					if s.Y[i] <= 0 {
						continue
					}
					rec.NsPerOp = 1e9 / s.Y[i]
					// Sample count of a log2 sweep's checkpoint window,
					// mirroring insertSweep/Figure4: the first point
					// covers everything up to 2^x, later points the
					// half-open window (2^(x-1), 2^x]. Non-log2 rate
					// series (E10's per-shard-count runs) carry no
					// sample count and are never ns-gated.
					if logScale {
						if xi == 0 {
							rec.Samples = 1 << uint(s.X[xi])
						} else {
							rec.Samples = 1 << uint(s.X[xi]-1)
						}
					}
				} else {
					rec.TransfersPerOp = s.Y[i]
				}
				out = append(out, rec)
			}
		}
	}
	return out
}

// slug turns a figure title into a stable record op:
// "Figure 2t — COLA vs B-tree, random inserts (DAM transfers)" →
// "figure-2t-cola-vs-b-tree-random-inserts-dam-transfers".
func slug(title string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(title) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			if dash && b.Len() > 0 {
				b.WriteByte('-')
			}
			dash = false
			b.WriteRune(r)
		default:
			dash = true
		}
	}
	return b.String()
}

// log2i is the integer log2 of n (0 for n <= 1).
func log2i(n float64) int {
	if n <= 1 {
		return 0
	}
	return int(math.Round(math.Log2(n)))
}
