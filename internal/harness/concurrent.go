// Concurrent-throughput scenario: the paper's structures are
// single-threaded, so the repo offers two ways to serve concurrent
// traffic — a global mutex around one structure, or the sharded map of
// internal/shard. This experiment (E10 in DESIGN.md) measures both on
// the same workload and reports aggregate throughput as goroutines and
// shards grow together, making the scaling claim quantitative and
// falsifiable: the sharded map should approach linear speedup while
// the global lock stays flat.

package harness

import (
	"sync"
	"time"

	"repro/internal/cola"
	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/shard"
	"repro/internal/workload"
)

// lockedDict is the global-mutex baseline, mirroring the repo's
// SynchronizedDictionary (which lives in the facade package and cannot
// be imported from here without a cycle). The lock is exclusive for
// every operation because searches mutate structure counters.
type lockedDict struct {
	mu sync.Mutex
	d  core.Dictionary
}

func (l *lockedDict) Insert(key, value uint64) {
	l.mu.Lock()
	l.d.Insert(key, value)
	l.mu.Unlock()
}

func (l *lockedDict) Search(key uint64) (uint64, bool) {
	l.mu.Lock()
	v, ok := l.d.Search(key)
	l.mu.Unlock()
	return v, ok
}

// concurrentDict is what the scenario drives: both contenders satisfy
// it.
type concurrentDict interface {
	Insert(key, value uint64)
	Search(key uint64) (uint64, bool)
}

// driveInserts runs workers goroutines, each inserting per-worker
// distinct keys, and returns aggregate inserts/second.
func driveInserts(d concurrentDict, workers, perWorker int, seed uint64) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			seq := workload.NewRandomUnique(seed + uint64(w))
			for i := 0; i < perWorker; i++ {
				k := seq.Next()
				d.Insert(k, k)
			}
		}(w)
	}
	wg.Wait()
	el := time.Since(start).Seconds()
	if el <= 0 {
		el = 1e-9
	}
	return float64(workers*perWorker) / el
}

// driveSearches runs workers goroutines probing the preloaded keyspace
// and returns aggregate searches/second.
func driveSearches(d concurrentDict, workers, perWorker int, seed uint64) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			probe := workload.NewRandomUnique(seed + uint64(w))
			for i := 0; i < perWorker; i++ {
				d.Search(probe.Next())
			}
		}(w)
	}
	wg.Wait()
	el := time.Since(start).Seconds()
	if el <= 0 {
		el = 1e-9
	}
	return float64(workers*perWorker) / el
}

// Concurrent is experiment E10: aggregate insert and search throughput
// of the sharded map vs the global-mutex wrapper at 1/2/4/8 shards ×
// goroutines (shards grow with goroutines; the mutex baseline only
// gains contention). DAM accounting is disabled — the DAM model has no
// notion of parallelism, so this scenario measures wall-clock scaling,
// the quantity the single-threaded figures cannot show.
func (c Config) Concurrent() Result {
	c = c.withDefaults()
	n := 1 << c.LogN
	scales := []int{1, 2, 4, 8}

	mkSharded := func(shards int) *shard.Map {
		return shard.New(
			shard.WithShards(shards),
			shard.WithDictionary(func(_ int, sp *dam.Space) core.Dictionary {
				return cola.NewCOLA(sp)
			}),
		)
	}

	var shIns, muIns, shSrch, muSrch Series
	for _, g := range scales {
		perWorker := n / g

		sharded := mkSharded(g)
		shIns.X = append(shIns.X, float64(g))
		shIns.Y = append(shIns.Y, driveInserts(sharded, g, perWorker, c.Seed))
		shSrch.X = append(shSrch.X, float64(g))
		shSrch.Y = append(shSrch.Y, driveSearches(sharded, g, perWorker, c.Seed))

		locked := &lockedDict{d: cola.NewCOLA(nil)}
		muIns.X = append(muIns.X, float64(g))
		muIns.Y = append(muIns.Y, driveInserts(locked, g, perWorker, c.Seed))
		muSrch.X = append(muSrch.X, float64(g))
		muSrch.Y = append(muSrch.Y, driveSearches(locked, g, perWorker, c.Seed))
	}
	shIns.Name = "sharded ins/s"
	muIns.Name = "locked ins/s"
	shSrch.Name = "sharded srch/s"
	muSrch.Name = "locked srch/s"

	last := len(scales) - 1
	return Result{
		Title:  "E10 — concurrent throughput: sharded map vs global mutex (2-COLA per shard)",
		XLabel: "shards = goroutines",
		YLabel: "aggregate ops/second",
		Series: []Series{shIns, muIns, shSrch, muSrch},
		Notes: []string{
			"Prediction: sharded throughput rises with shard count (toward linear on idle cores);",
			"the global-lock baseline is flat or falls as goroutines contend.",
			seriesRatioNote("measured 8-way insert speedup over global lock", shIns.Y[last], muIns.Y[last]),
			seriesRatioNote("measured 8-way search speedup over global lock", shSrch.Y[last], muSrch.Y[last]),
		},
	}
}

func seriesRatioNote(label string, num, den float64) string {
	if den <= 0 {
		return label + ": n/a"
	}
	return label + ": " + formatF(num/den) + "x"
}
