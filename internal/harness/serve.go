package harness

import (
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/loadgen"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/workload"
)

// serveLineup pairs a shared-read-safe inner (searches bracket under
// the shard's RLock and run concurrently) against an exclusive inner
// (no shared-read support, so the same shard lock serializes every
// search). One shard, so the lock — not shard spreading — is the only
// mechanism in play.
var serveLineup = []struct {
	kind  string
	label string
}{
	{"gcola", "shared (gcola)"},
	{"deamortized", "exclusive (deamortized)"},
}

// serveConns is the connection sweep for E14.
var serveConns = []int{1, 2, 4}

// Serve is experiment E14: GET throughput over the wire as a function
// of concurrent connections, shared-read inner vs exclusive inner. The
// prediction is the served edition of E11/E12: a shared-read-safe inner
// lets concurrent GETs overlap inside one shard's read lock, so
// throughput grows with connections, while an exclusive inner pins the
// ratio near one. Wall-clock (and scheduler-bound), so CI reports it
// rather than gating on it.
func (c Config) Serve() (Result, error) {
	c = c.withDefaults()
	res := Result{
		Title:  "E14 — served GET throughput vs connections (1 shard)",
		XLabel: "connections",
		YLabel: "operations/second",
	}
	perConn := c.Searches
	var first, last [2]float64
	for li, entry := range serveLineup {
		s := Series{Name: entry.label}
		for _, conns := range serveConns {
			ops, err := c.serveThroughput(entry.kind, conns, perConn)
			if err != nil {
				return res, fmt.Errorf("serve %s @%d conns: %w", entry.kind, conns, err)
			}
			s.X = append(s.X, float64(conns))
			s.Y = append(s.Y, ops)
		}
		first[li], last[li] = s.Y[0], s.Y[len(s.Y)-1]
		res.Series = append(res.Series, s)
	}
	for li, entry := range serveLineup {
		res.Notes = append(res.Notes, seriesRatioNote(
			fmt.Sprintf("%s: %d-conn over 1-conn throughput", entry.label, serveConns[len(serveConns)-1]),
			last[li], first[li]))
	}
	return res, nil
}

// serveThroughput measures closed-loop GET ops/s against an in-process
// loopback server over a single-shard map with the given inner kind.
func (c Config) serveThroughput(kind string, conns, perConn int) (float64, error) {
	inner, err := registry.Build(kind)
	if err != nil {
		return 0, err
	}
	m := shard.New(
		shard.WithShards(1),
		shard.WithDictionary(func(int, *dam.Space) core.Dictionary { return inner }),
	)
	srv := server.New(m)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	done := make(chan struct{})
	go func() { defer close(done); srv.Serve(ln) }()
	defer func() { srv.Shutdown(5 * time.Second); <-done }()

	sc := workload.Scenario{
		Skew:     workload.Skew{Kind: "uniform"},
		Arrival:  workload.Arrival{Kind: "steady"},
		Mix:      workload.Mix{SearchPct: 100},
		KeySpace: uint64(1) << uint(c.LogN),
		Seed:     c.Seed,
	}
	sum, err := loadgen.Run(loadgen.Config{
		Addr:     ln.Addr().String(),
		Scenario: sc,
		Conns:    conns,
		Ops:      conns * perConn,
		Preload:  1 << uint(c.LogN),
	})
	if err != nil {
		return 0, err
	}
	return sum.OpsPerSec(), nil
}
