// Durability scenario (E11 in DESIGN.md): the restart / cold-start
// story the paper's figures never measure. For each snapshot-capable
// kind, ingest N random elements, save the structure through the snap
// container, load it back, and verify a sample against the original;
// report save and load bandwidth plus the on-disk footprint per
// element. This is deliberately wall-clock (no DAM store): snapshot
// bandwidth is an I/O-path property, not a cost-model one, which is
// also why the scenario is not part of All() — the committed perf
// baseline (BENCH_0.json) gates DAM transfer counts, and wall-clock
// snapshot rates on shared runners would only add noise there.

package harness

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/workload"
)

// durabilityLineup names the kinds E11 measures: every core structure
// family plus the composed sharded snapshot.
var durabilityLineup = []string{"gcola", "deamortized", "shuttle", "btree", "brt", "sharded"}

// Durability runs E11 and returns one figure: two series per kind
// ("<kind> save", "<kind> load"), X = N, Y = MB/s through the snapshot
// container.
func (c Config) Durability() Result {
	c = c.withDefaults()
	n := 1 << c.LogN
	elems := make([]core.Element, n)
	seq := workload.NewRandomUnique(c.Seed)
	for i := range elems {
		k := seq.Next()
		elems[i] = core.Element{Key: k, Value: k ^ 0xD1C7}
	}

	var series []Series
	var notes []string
	for _, kind := range durabilityLineup {
		d, err := registry.Build(kind)
		if err != nil {
			panic("harness: " + err.Error())
		}
		core.InsertBatch(d, elems)

		var buf bytes.Buffer
		start := time.Now()
		if err := registry.Save(&buf, kind, d); err != nil {
			panic("harness: E11 save " + kind + ": " + err.Error())
		}
		saveSecs := time.Since(start).Seconds()

		start = time.Now()
		restored, err := registry.Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			panic("harness: E11 load " + kind + ": " + err.Error())
		}
		loadSecs := time.Since(start).Seconds()

		// Spot-check the restored copy against the source of truth; a
		// codec bug must fail the run, not skew a figure.
		probe := workload.NewRNG(c.Seed + 3)
		for i := 0; i < 1024; i++ {
			e := elems[probe.Intn(n)]
			if v, ok := restored.Search(e.Key); !ok || v != e.Value {
				panic(fmt.Sprintf("harness: E11 %s: restored Search(%d) = (%d,%v), want %d",
					kind, e.Key, v, ok, e.Value))
			}
		}

		mb := float64(buf.Len()) / 1e6
		series = append(series,
			Series{Name: kind + " save", X: []float64{float64(n)}, Y: []float64{mb / saveSecs}},
			Series{Name: kind + " load", X: []float64{float64(n)}, Y: []float64{mb / loadSecs}},
		)
		notes = append(notes, fmt.Sprintf("%s: %.1f bytes/element on disk", kind, float64(buf.Len())/float64(n)))
	}
	return Result{
		Title:  fmt.Sprintf("E11 — durability: snapshot save/load bandwidth at N = 2^%d (in-memory container)", c.LogN),
		XLabel: "N",
		YLabel: "MB/s",
		Series: series,
		Notes: append(notes,
			"gcola saves its physical level layout (transfer-equal restore); the tree kinds save logical contents and rebuild",
			"wall-clock scenario, not in All(): the perf baseline gates DAM transfers, not I/O bandwidth"),
	}
}
