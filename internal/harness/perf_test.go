package harness

import (
	"bytes"
	"testing"

	"repro/internal/perf"
)

func TestPerfRecordsFlattening(t *testing.T) {
	results := []Result{
		{
			Title:  "Figure 2 — COLA vs B-tree, random inserts (wall clock)",
			XLabel: "log2 N", YLabel: "avg inserts/second (window)",
			Series: []Series{{Name: "2-COLA", X: []float64{10, 11}, Y: []float64{2e6, 1e6}}},
		},
		{
			Title:  "E6 — DAM transfers per operation (Y = [insert, search])",
			XLabel: "N", YLabel: "transfers/op",
			Series: []Series{{Name: "B-tree", X: []float64{4096}, Y: []float64{0.5, 2.5}}},
		},
		{
			Title:  "Headline ratios",
			XLabel: "paper ratio", YLabel: "measured",
			Series: []Series{{Name: "skip me", X: []float64{790}, Y: []float64{1, 2}}},
		},
	}
	recs := PerfRecords(results)
	if len(recs) != 4 {
		t.Fatalf("flattened %d records, want 4 (2 rate + 2 transfer, ratios skipped): %+v", len(recs), recs)
	}

	r0 := recs[0]
	if r0.Op != "figure-2-cola-vs-b-tree-random-inserts-wall-clock" {
		t.Fatalf("bad op slug %q", r0.Op)
	}
	if r0.Kind != "2-COLA" || r0.LogN != 10 || r0.X != 10 {
		t.Fatalf("bad identity: %+v", r0)
	}
	if r0.NsPerOp != 1e9/2e6 {
		t.Fatalf("rate not converted to ns/op: %+v", r0)
	}
	// Window sample counts mirror the sweep: first checkpoint covers
	// 2^x ops, later ones the half-window.
	if r0.Samples != 1<<10 || recs[1].Samples != 1<<10 {
		t.Fatalf("bad window samples: %d, %d", r0.Samples, recs[1].Samples)
	}

	// The E6 vector series yields one record per Y entry, distinguished
	// by YIndex, with LogN derived from N.
	if recs[2].YIndex != 0 || recs[3].YIndex != 1 {
		t.Fatalf("vector series YIndex wrong: %+v %+v", recs[2], recs[3])
	}
	if recs[2].LogN != 12 || recs[2].TransfersPerOp != 0.5 {
		t.Fatalf("bad E6 record: %+v", recs[2])
	}

	// Every record identity must be unique — perf.Read enforces this on
	// committed baselines, so catch collisions at the source.
	seen := map[string]bool{}
	for _, r := range recs {
		if seen[r.Key()] {
			t.Fatalf("duplicate record key %s", r.Key())
		}
		seen[r.Key()] = true
	}
}

// TestPerfRecordsFromFigures runs a tiny real figure end to end and
// checks the records survive a report round trip, which is exactly the
// path `streambench -json` takes.
func TestPerfRecordsFromFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real figure sweep")
	}
	cfg := Config{LogN: 10, LogNStart: 9, Searches: 64}
	recs := PerfRecords(cfg.Figure2For([]string{"2-COLA", "B-tree"}))
	if len(recs) == 0 {
		t.Fatal("no records from a real figure")
	}
	rep := perf.NewReport("test")
	rep.Add(recs...)
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := perf.Read(&buf)
	if err != nil {
		t.Fatalf("Read back: %v", err)
	}
	if len(got.Results) != len(recs) {
		t.Fatalf("round trip lost records: wrote %d, read %d", len(recs), len(got.Results))
	}
}
