// Read-mostly throughput scenario (E12 in DESIGN.md): a YCSB-B-style
// 95/5 search/insert mix driven by G goroutines against the two
// concurrency wrappers, each measured twice — with the shared-read fast
// path (Search under the RWMutex read side, bracketed by the DAM
// shared-read epoch) and with the pre-shared-read exclusive-lock
// behaviour, reconstructed by hiding the inner structure's SharedReader
// methods behind an anonymous interface wrapper. The gap between the
// two curves is exactly what reader sharing buys: the exclusive
// variants serialize every search (per shard, or globally), while the
// shared variants scale with cores.
//
// Like E10 this is a wall-clock experiment with DAM accounting off (the
// DAM model has no notion of parallelism), and like E11 it is excluded
// from All() so the committed deterministic-transfer baseline gate
// never sees host-dependent numbers.

package harness

import (
	"sync"
	"time"

	"repro/internal/cola"
	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/shard"
	"repro/internal/syncdict"
	"repro/internal/workload"
)

// exclusiveInner hides a dictionary's SharedReader methods, so a
// wrapper probing core.AsSharedReader falls back to exclusive locking —
// the honest reconstruction of the pre-shared-read baseline on the very
// same structure.
type exclusiveInner struct {
	core.Dictionary
}

// driveReadMostly runs workers goroutines over a preloaded dictionary,
// each performing perWorker operations of a 95/5 search/insert mix
// (searches probe the preloaded keyspace, inserts add fresh per-worker
// keys), and returns aggregate searches/second.
func driveReadMostly(d concurrentDict, workers, perWorker int, preload []uint64, seed uint64) float64 {
	var wg sync.WaitGroup
	searches := 0
	var searchesMu sync.Mutex
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(seed + uint64(w)*977)
			fresh := workload.NewRandomUnique(seed ^ 0xE12 ^ uint64(w)<<32)
			mine := 0
			for i := 0; i < perWorker; i++ {
				if rng.Uint64()%20 == 0 { // 5%: insert a fresh key
					k := fresh.Next()
					d.Insert(k, k)
				} else { // 95%: search a preloaded key
					d.Search(preload[int(rng.Uint64()%uint64(len(preload)))])
					mine++
				}
			}
			searchesMu.Lock()
			searches += mine
			searchesMu.Unlock()
		}(w)
	}
	wg.Wait()
	el := time.Since(start).Seconds()
	if el <= 0 {
		el = 1e-9
	}
	return float64(searches) / el
}

// ReadMostly is experiment E12: aggregate search throughput of the
// 95/5 mix at 1/2/4/8 goroutines (shards grow with goroutines for the
// sharded pair), shared-read fast path vs exclusive-lock baseline, on
// both the sharded map and the single-lock synchronized wrapper.
func (c Config) ReadMostly() Result {
	c = c.withDefaults()
	n := 1 << c.LogN
	scales := []int{1, 2, 4, 8}

	preload := workload.Take(workload.NewRandomUnique(c.Seed), n)

	mkSharded := func(shards int, exclusive bool) *shard.Map {
		return shard.New(
			shard.WithShards(shards),
			shard.WithDictionary(func(_ int, sp *dam.Space) core.Dictionary {
				var d core.Dictionary = cola.NewCOLA(sp)
				if exclusive {
					d = exclusiveInner{d}
				}
				return d
			}),
		)
	}
	mkSync := func(exclusive bool) *syncdict.Dict {
		var d core.Dictionary = cola.NewCOLA(nil)
		if exclusive {
			d = exclusiveInner{d}
		}
		return syncdict.New(d)
	}

	contenders := []struct {
		name  string
		build func(g int) concurrentDict
	}{
		{"sharded shared srch/s", func(g int) concurrentDict { return mkSharded(g, false) }},
		{"sharded excl srch/s", func(g int) concurrentDict { return mkSharded(g, true) }},
		{"sync shared srch/s", func(int) concurrentDict { return mkSync(false) }},
		{"sync excl srch/s", func(int) concurrentDict { return mkSync(true) }},
	}

	series := make([]Series, len(contenders))
	for ci, ct := range contenders {
		series[ci].Name = ct.name
		for _, g := range scales {
			d := ct.build(g)
			for _, k := range preload {
				d.Insert(k, k)
			}
			rate := driveReadMostly(d, g, n/g, preload, c.Seed+31)
			series[ci].X = append(series[ci].X, float64(g))
			series[ci].Y = append(series[ci].Y, rate)
		}
	}

	last := len(scales) - 1
	return Result{
		Title:  "E12 — read-mostly (95/5) throughput: shared-read fast path vs exclusive locks",
		XLabel: "goroutines (= shards for the sharded pair)",
		YLabel: "aggregate searches/second",
		Series: series,
		Notes: []string{
			"Prediction: shared-read curves rise with goroutines (reader sharing within shards and",
			"within the single lock); exclusive curves are bounded by min(shards, cores) and 1 lock.",
			"Ratios need >= 4 idle cores to clear 2x; a 1-core host reports the measured value only.",
			seriesRatioNote("measured 8-way sharded shared/exclusive search speedup", series[0].Y[last], series[1].Y[last]),
			seriesRatioNote("measured 8-way single-lock shared/exclusive search speedup", series[2].Y[last], series[3].Y[last]),
		},
	}
}
