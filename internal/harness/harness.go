// Package harness regenerates the paper's evaluation: every figure of
// Section 4 plus the asymptotic-claim experiments indexed in DESIGN.md.
// Each experiment produces Series (x = workload size, y = measured rate
// or transfer count) that can be printed as aligned tables or CSV.
//
// Two measurements are reported side by side wherever it makes sense:
// wall-clock operations/second (the paper's y-axis) and DAM-model block
// transfers/operation (the quantity the theory bounds, free of Go
// runtime noise — see DESIGN.md's substitution table).
package harness

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/la"
	"repro/internal/registry"
	"repro/internal/workload"
)

// Config scales the experiments. The paper ran N = 2^30 on a RAID array
// for 87 hours; the defaults here finish on a laptop in minutes while
// entering the out-of-core regime of the simulated cache.
type Config struct {
	// LogN is the largest workload size as a power of two (default 18).
	LogN int
	// LogNStart is the first measured checkpoint (default 10).
	LogNStart int
	// BlockBytes is the DAM block size B (default 4096, the paper's).
	BlockBytes int64
	// CacheBytes is the DAM cache size M (default 1 MiB so structures
	// leave cache partway through the sweep, reproducing the paper's
	// "no longer fit in main memory" crossover).
	CacheBytes int64
	// Seed feeds every workload generator.
	Seed uint64
	// Searches is the number of random searches for Figure 4 (default
	// 2^13).
	Searches int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.LogN == 0 {
		c.LogN = 18
	}
	if c.LogNStart == 0 {
		c.LogNStart = 10
	}
	if c.LogNStart > c.LogN {
		c.LogNStart = c.LogN
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = dam.DefaultBlockBytes
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 1 << 20
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Searches == 0 {
		c.Searches = 1 << 13
	}
	return c
}

// Series is one line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Result is one regenerated figure.
type Result struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// dict couples a dictionary with its cost accounting: a private store
// for space-charged structures, or the structure's own TransferCounter
// (e.g. a sharded map with per-shard stores), or nothing (pure
// wall-clock kinds like swbst).
type dict struct {
	name      string
	d         core.Dictionary
	store     *dam.Store
	transfers func() uint64
}

// dropCache / resetCounters act on the private store when there is one
// and are no-ops otherwise (self-accounted structures expose no cache
// control; their search measurements run warm).
func (b dict) dropCache() {
	if b.store != nil {
		b.store.DropCache()
	}
}

func (b dict) resetCounters() {
	if b.store != nil {
		b.store.ResetCounters()
	}
}

// legacySpec maps one of the figures' display names to its registry
// kind and options. The paper's lineup names stay stable in figure
// output while construction goes through the same registry as
// everything else.
type legacySpec struct {
	kind string
	opts func(c Config) []registry.Option
}

var legacyLineup = map[string]legacySpec{
	"2-COLA": {"gcola", func(Config) []registry.Option {
		return []registry.Option{registry.WithGrowthFactor(2)}
	}},
	"4-COLA": {"gcola", func(Config) []registry.Option {
		return []registry.Option{registry.WithGrowthFactor(4)}
	}},
	"8-COLA": {"gcola", func(Config) []registry.Option {
		return []registry.Option{registry.WithGrowthFactor(8)}
	}},
	"basic-COLA": {"basic-cola", nil},
	"B-tree": {"btree", func(c Config) []registry.Option {
		return []registry.Option{registry.WithBlockBytes(c.BlockBytes)}
	}},
	"BRT": {"brt", func(c Config) []registry.Option {
		return []registry.Option{registry.WithBlockBytes(c.BlockBytes)}
	}},
	"deamortized-COLA":           {"deamortized", nil},
	"deamortized-lookahead-COLA": {"deamortized-la", nil},
	"shuttle":                    {"shuttle", nil},
	"CO-B-tree":                  {"cobtree", nil},
}

// LegacyNames returns the figures' display names, sorted — accepted by
// lineup flags alongside the registry kinds.
func LegacyNames() []string {
	out := make([]string, 0, len(legacyLineup))
	for name := range legacyLineup {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ValidateLineup checks that every name is either a figure display name
// or a registered dictionary kind, returning a descriptive error
// otherwise.
func ValidateLineup(names []string) error {
	for _, name := range names {
		if _, ok := legacyLineup[name]; ok {
			continue
		}
		if _, ok := registry.Info(name); ok {
			continue
		}
		return fmt.Errorf("unknown structure %q (registered kinds: %s; figure names: %s)",
			name, strings.Join(registry.Kinds(), ", "), strings.Join(LegacyNames(), ", "))
	}
	return nil
}

// buildNamed constructs one lineup entry — a legacy display name or any
// registered kind with its defaults — wired to this config's DAM
// geometry wherever the kind supports accounting.
func (c Config) buildNamed(name string) (dict, error) {
	return c.buildWith(name, nil)
}

// buildWith is buildNamed with extra registry options appended after
// the name-derived ones (later options win), so callers — the
// hypothesis bundles' control arms in particular — can perturb a lineup
// entry ("2-COLA" with its lookahead pointers fragmented) without
// inventing a new display name.
func (c Config) buildWith(name string, extra []registry.Option) (dict, error) {
	c = c.withDefaults()
	if err := ValidateLineup([]string{name}); err != nil {
		return dict{}, err
	}
	kind := name
	var opts []registry.Option
	if spec, ok := legacyLineup[name]; ok {
		kind = spec.kind
		if spec.opts != nil {
			opts = spec.opts(c)
		}
	} else if registry.Accepts(kind, registry.OptBlockBytes) {
		opts = append(opts, registry.WithBlockBytes(c.BlockBytes))
	}
	opts = append(opts, extra...)

	// The durable wrapper is lineup-able like everything else (putting a
	// WAL under a figure measures the logging overhead directly); each
	// build gets a fresh temp log. The files live until the OS cleans
	// its temp dir — figure runs are short-lived processes.
	if registry.Accepts(kind, registry.OptWALPath) {
		f, err := os.CreateTemp("", "streambench-*.wal")
		if err != nil {
			return dict{}, err
		}
		f.Close()
		opts = append(opts, registry.WithWALPath(f.Name()))
	}

	b := dict{name: name}
	switch {
	case registry.Accepts(kind, registry.OptSpace):
		b.store = dam.NewStore(c.BlockBytes, c.CacheBytes)
		opts = append(opts, registry.WithSpace(b.store.Space(name)))
		b.transfers = b.store.Transfers
	case registry.Accepts(kind, registry.OptShardDAM):
		opts = append(opts, registry.WithShardDAM(c.BlockBytes, c.CacheBytes))
	}

	d, err := registry.Build(kind, opts...)
	if err != nil {
		return dict{}, err
	}
	b.d = d
	if b.transfers == nil {
		if tc, ok := d.(core.TransferCounter); ok {
			b.transfers = tc.Transfers
		} else {
			b.transfers = func() uint64 { return 0 }
		}
	}
	return b, nil
}

// builders constructs the structure lineup for a figure, each entry
// with its own accounting. It panics on an unknown name or invalid
// build; lineup flags validate with ValidateLineup first.
func (c Config) builders(names []string) []dict {
	out := make([]dict, 0, len(names))
	for _, name := range names {
		b, err := c.buildNamed(name)
		if err != nil {
			panic("harness: " + err.Error())
		}
		out = append(out, b)
	}
	return out
}

// insertSweep drives seq into each structure, recording, at every
// power-of-two checkpoint, the insert rate and transfers/insert over the
// window since the previous checkpoint.
func (c Config) insertSweep(names []string, mkSeq func() workload.Sequence) (rates, transfers []Series) {
	for _, b := range c.builders(names) {
		seq := mkSeq()
		var xs, ys, ts []float64
		done := 0
		lastTransfers := uint64(0)
		lastTime := time.Now()
		for lg := c.LogNStart; lg <= c.LogN; lg++ {
			target := 1 << lg
			for done < target {
				k := seq.Next()
				b.d.Insert(k, k)
				done++
			}
			now := time.Now()
			window := float64(target - (1 << lg / 2))
			if lg == c.LogNStart {
				window = float64(target)
			}
			el := now.Sub(lastTime).Seconds()
			if el <= 0 {
				el = 1e-9
			}
			xs = append(xs, float64(lg))
			ys = append(ys, window/el)
			tr := b.transfers()
			ts = append(ts, float64(tr-lastTransfers)/window)
			lastTransfers = tr
			lastTime = now
		}
		rates = append(rates, Series{Name: b.name, X: xs, Y: ys})
		transfers = append(transfers, Series{Name: b.name, X: xs, Y: ts})
	}
	return rates, transfers
}

// Figure2 regenerates "COLA vs B-tree (Random Inserts)" with the
// paper's lineup.
func (c Config) Figure2() []Result {
	return c.Figure2For([]string{"2-COLA", "4-COLA", "8-COLA", "B-tree"})
}

// Figure2For runs the Figure 2 experiment — random unique inserts,
// wall-clock rate and DAM transfers per checkpoint window — over an
// arbitrary lineup of figure names or registered kinds.
func (c Config) Figure2For(names []string) []Result {
	c = c.withDefaults()
	rates, transfers := c.insertSweep(
		names,
		func() workload.Sequence { return workload.NewRandomUnique(c.Seed) },
	)
	return []Result{
		{
			Title:  "Figure 2 — COLA vs B-tree, random inserts (wall clock)",
			XLabel: "log2 N", YLabel: "avg inserts/second (window)",
			Series: rates,
			Notes: []string{
				"Paper: 2-COLA 790x faster than the B-tree out of core (N = 256M).",
				"Shape check: COLA curves stay roughly flat; the B-tree collapses once it leaves the cache.",
			},
		},
		{
			Title:  "Figure 2t — COLA vs B-tree, random inserts (DAM transfers)",
			XLabel: "log2 N", YLabel: "block transfers / insert (window)",
			Series: transfers,
			Notes: []string{
				"The theoretical quantity: COLA amortizes to O((log N)/B) << 1; the B-tree pays Omega(1) per insert out of core.",
			},
		},
	}
}

// Figure3 regenerates "COLA vs B-tree (Sorted Inserts)" — keys inserted
// in descending order, the B-tree's best case — with the paper's
// lineup.
func (c Config) Figure3() []Result {
	return c.Figure3For([]string{"2-COLA", "4-COLA", "8-COLA", "B-tree"})
}

// Figure3For runs the Figure 3 experiment (descending-key inserts) over
// an arbitrary lineup.
func (c Config) Figure3For(names []string) []Result {
	c = c.withDefaults()
	n := uint64(1) << c.LogN
	rates, transfers := c.insertSweep(
		names,
		func() workload.Sequence { return workload.NewDescending(n) },
	)
	return []Result{
		{
			Title:  "Figure 3 — COLA vs B-tree, sorted (descending) inserts (wall clock)",
			XLabel: "log2 N", YLabel: "avg inserts/second (window)",
			Series: rates,
			Notes: []string{
				"Paper: the 4-COLA is 3.1x slower than the B-tree at N = 2^30 (B-tree keeps its insertion path cached).",
			},
		},
		{
			Title:  "Figure 3t — sorted inserts (DAM transfers)",
			XLabel: "log2 N", YLabel: "block transfers / insert (window)",
			Series: transfers,
		},
	}
}

// Figure4 regenerates "COLA vs B-tree (Random Searches)": load with
// descending keys (as the paper's Figure 3 data), drop the cache, then
// measure searches — with the paper's lineup.
func (c Config) Figure4() []Result {
	return c.Figure4For([]string{"2-COLA", "4-COLA", "8-COLA", "B-tree"})
}

// Figure4For runs the Figure 4 experiment (random searches after a
// sorted load, cold cache) over an arbitrary lineup.
func (c Config) Figure4For(names []string) []Result {
	c = c.withDefaults()
	n := uint64(1) << c.LogN
	var rate, transfers []Series
	for _, b := range c.builders(names) {
		seq := workload.NewDescending(n)
		for i := uint64(0); i < n; i++ {
			k := seq.Next()
			b.d.Insert(k, k)
		}
		b.dropCache()
		b.resetCounters()
		probe := workload.NewRNG(c.Seed + 1)
		var xs, ys, ts []float64
		doneSearches := 0
		// Baseline AFTER the load: resetCounters is a no-op for
		// self-accounted kinds (per-shard stores), so starting from zero
		// would fold the whole load phase into the first search window.
		lastTransfers := b.transfers()
		lastTime := time.Now()
		for lg := 0; (1 << lg) <= c.Searches; lg++ {
			target := 1 << lg
			for doneSearches < target {
				b.d.Search(probe.Uint64() % n)
				doneSearches++
			}
			window := float64(target)
			if lg > 0 {
				window = float64(target - target/2)
			}
			now := time.Now()
			el := now.Sub(lastTime).Seconds()
			if el <= 0 {
				el = 1e-9
			}
			xs = append(xs, float64(lg))
			ys = append(ys, window/el)
			tr := b.transfers()
			ts = append(ts, float64(tr-lastTransfers)/window)
			lastTransfers = tr
			lastTime = now
		}
		rate = append(rate, Series{Name: b.name, X: xs, Y: ys})
		transfers = append(transfers, Series{Name: b.name, X: xs, Y: ts})
	}
	return []Result{
		{
			Title:  "Figure 4 — random searches after sorted load (wall clock)",
			XLabel: "log2 searches", YLabel: "avg searches/second (window)",
			Series: rate,
			Notes: []string{
				"Paper: 4-COLA performs 2^15 searches 3.5x slower than the B-tree; early searches are slow on a cold cache.",
			},
		},
		{
			Title:  "Figure 4t — random searches (DAM transfers)",
			XLabel: "log2 searches", YLabel: "block transfers / search (window)",
			Series: transfers,
			Notes: []string{
				"Theory: B-tree O(log_B N) vs COLA O(log N) transfers per search.",
			},
		},
	}
}

// Figure5 regenerates "Ascending vs Descending vs Random Inserts" on the
// 4-COLA.
func (c Config) Figure5() []Result {
	c = c.withDefaults()
	n := uint64(1) << c.LogN
	orders := []struct {
		name string
		mk   func() workload.Sequence
	}{
		{"4-COLA (Ascending)", func() workload.Sequence { return workload.NewAscending() }},
		{"4-COLA (Descending)", func() workload.Sequence { return workload.NewDescending(n) }},
		{"4-COLA (Random)", func() workload.Sequence { return workload.NewRandomUnique(c.Seed) }},
	}
	var rates, transfers []Series
	for _, o := range orders {
		r, t := c.insertSweep([]string{"4-COLA"}, o.mk)
		r[0].Name = o.name
		t[0].Name = o.name
		rates = append(rates, r[0])
		transfers = append(transfers, t[0])
	}
	return []Result{
		{
			Title:  "Figure 5 — 4-COLA: ascending vs descending vs random inserts (wall clock)",
			XLabel: "log2 N", YLabel: "avg inserts/second (window)",
			Series: rates,
			Notes: []string{
				"Paper: descending 1.1x faster than ascending and than random (final merges move fewer target-level items).",
			},
		},
		{
			Title:  "Figure 5t — insertion orders (DAM transfers)",
			XLabel: "log2 N", YLabel: "block transfers / insert (window)",
			Series: transfers,
		},
	}
}

// Ratios condenses the paper's headline numbers: total-workload ratios
// between structures at the largest N.
func (c Config) Ratios() Result {
	c = c.withDefaults()
	n := uint64(1) << c.LogN

	run := func(name string, seq workload.Sequence) (opsPerSec float64, transfersPerOp float64) {
		b := c.builders([]string{name})[0]
		start := time.Now()
		for i := uint64(0); i < n; i++ {
			k := seq.Next()
			b.d.Insert(k, k)
		}
		el := time.Since(start).Seconds()
		return float64(n) / el, float64(b.transfers()) / float64(n)
	}
	searchRun := func(name string) (opsPerSec float64, transfersPerOp float64) {
		b := c.builders([]string{name})[0]
		seq := workload.NewDescending(n)
		for i := uint64(0); i < n; i++ {
			k := seq.Next()
			b.d.Insert(k, k)
		}
		b.dropCache()
		b.resetCounters()
		probe := workload.NewRNG(c.Seed + 1)
		start := time.Now()
		for i := 0; i < c.Searches; i++ {
			b.d.Search(probe.Uint64() % n)
		}
		el := time.Since(start).Seconds()
		return float64(c.Searches) / el, float64(b.transfers()) / float64(c.Searches)
	}

	colaRandW, colaRandT := run("2-COLA", workload.NewRandomUnique(c.Seed))
	btRandW, btRandT := run("B-tree", workload.NewRandomUnique(c.Seed))
	cola4SortW, cola4SortT := run("4-COLA", workload.NewDescending(n))
	btSortW, btSortT := run("B-tree", workload.NewDescending(n))
	colaSearchW, colaSearchT := searchRun("4-COLA")
	btSearchW, btSearchT := searchRun("B-tree")
	ascW, _ := run("4-COLA", workload.NewAscending())
	descW, _ := run("4-COLA", workload.NewDescending(n))

	mk := func(name string, paper, wall, trans float64) Series {
		return Series{Name: name, X: []float64{paper}, Y: []float64{wall, trans}}
	}
	return Result{
		Title:  "Headline ratios (paper vs measured; X = paper, Y = [wall-clock ratio, transfer ratio])",
		XLabel: "paper ratio",
		YLabel: "measured",
		Series: []Series{
			mk("random inserts: COLA faster than B-tree by", 790, colaRandW/btRandW, btRandT/colaRandT),
			mk("sorted inserts: 4-COLA slower than B-tree by", 3.1, btSortW/cola4SortW, cola4SortT/btSortT),
			mk("searches: 4-COLA slower than B-tree by", 3.5, btSearchW/colaSearchW, colaSearchT/btSearchT),
			mk("4-COLA: descending faster than ascending by", 1.1, descW/ascW, 1),
		},
		Notes: []string{
			"Wall-clock ratios depend on the host; transfer ratios are deterministic for a given (B, M, N).",
			"The paper's 790x requires true out-of-core scale (N = 2^28 on disk); shrink M or raise LogN to widen the gap.",
		},
	}
}

// Transfers is experiment E6: transfers/op for every structure on one
// random workload, checking each claimed bound's order of magnitude.
func (c Config) Transfers() Result {
	c = c.withDefaults()
	n := 1 << c.LogN
	names := []string{"2-COLA", "basic-COLA", "deamortized-COLA", "deamortized-lookahead-COLA", "BRT", "B-tree", "shuttle"}
	var series []Series
	for _, b := range c.builders(names) {
		seq := workload.NewRandomUnique(c.Seed)
		for i := 0; i < n; i++ {
			k := seq.Next()
			b.d.Insert(k, k)
		}
		insertT := float64(b.transfers()) / float64(n)
		b.dropCache()
		b.resetCounters()
		probe := workload.NewRNG(c.Seed + 1)
		for i := 0; i < c.Searches; i++ {
			b.d.Search(probe.Uint64())
		}
		searchT := float64(b.transfers()) / float64(c.Searches)
		series = append(series, Series{Name: b.name, X: []float64{float64(n)}, Y: []float64{insertT, searchT}})
	}
	// Cache-aware lookahead array across epsilon.
	for _, eps := range []float64{0, 0.5, 1} {
		store := dam.NewStore(c.BlockBytes, c.CacheBytes)
		a := la.New(la.Options{
			BlockElems: int(c.BlockBytes / core.ElementBytes),
			Epsilon:    eps,
			Space:      store.Space("la"),
		})
		seq := workload.NewRandomUnique(c.Seed)
		for i := 0; i < n; i++ {
			k := seq.Next()
			a.Insert(k, k)
		}
		insertT := float64(store.Transfers()) / float64(n)
		store.DropCache()
		store.ResetCounters()
		probe := workload.NewRNG(c.Seed + 1)
		for i := 0; i < c.Searches; i++ {
			a.Search(probe.Uint64())
		}
		searchT := float64(store.Transfers()) / float64(c.Searches)
		series = append(series, Series{
			Name: fmt.Sprintf("LA(eps=%.1f, g=%d)", eps, a.GrowthFactor()),
			X:    []float64{float64(n)},
			Y:    []float64{insertT, searchT},
		})
	}
	return Result{
		Title:  "E6 — DAM transfers per operation (Y = [insert, search])",
		XLabel: "N",
		YLabel: "transfers/op",
		Series: series,
		Notes: []string{
			"Expected order: inserts COLA ~ BRT << B-tree; searches B-tree < COLA family;",
			"LA sweeps from the COLA point (eps=0) to the B-tree point (eps=1).",
		},
	}
}

// Deamortized is experiment E7: worst-case insert cost, amortized vs
// deamortized.
func (c Config) Deamortized() Result {
	c = c.withDefaults()
	n := 1 << c.LogN
	names := []string{"2-COLA", "deamortized-COLA", "deamortized-lookahead-COLA"}
	var series []Series
	for _, b := range c.builders(names) {
		seq := workload.NewRandomUnique(c.Seed)
		for i := 0; i < n; i++ {
			k := seq.Next()
			b.d.Insert(k, k)
		}
		st := b.d.(core.Statser).Stats()
		series = append(series, Series{
			Name: b.name,
			X:    []float64{float64(n)},
			Y:    []float64{float64(st.MaxMoves), float64(st.Moves) / float64(n)},
		})
	}
	return Result{
		Title:  "E7 — worst-case insert moves (Y = [max moves in one insert, amortized moves/insert])",
		XLabel: "N",
		YLabel: "element moves",
		Series: series,
		Notes: []string{
			"Theorems 22/24: deamortized variants bound the worst case by O(log N) while the",
			"amortized COLA's worst single insert rebuilds nearly the whole structure (Omega(N)).",
		},
	}
}

// Shuttle is experiment E8: shuttle tree vs B-tree vs CO-B-tree-proxy
// transfers across block sizes.
func (c Config) Shuttle() Result {
	c = c.withDefaults()
	n := 1 << c.LogN
	var series []Series
	for _, blockBytes := range []int64{512, 4096, 32768} {
		cb := c
		cb.BlockBytes = blockBytes
		for _, b := range cb.builders([]string{"shuttle", "CO-B-tree", "B-tree"}) {
			seq := workload.NewRandomUnique(c.Seed)
			for i := 0; i < n; i++ {
				k := seq.Next()
				b.d.Insert(k, k)
			}
			insertT := float64(b.transfers()) / float64(n)
			b.dropCache()
			b.resetCounters()
			probe := workload.NewRNG(c.Seed + 1)
			searches := c.Searches / 4
			for i := 0; i < searches; i++ {
				b.d.Search(probe.Uint64())
			}
			searchT := float64(b.transfers()) / float64(searches)
			series = append(series, Series{
				Name: fmt.Sprintf("%s B=%d", b.name, blockBytes),
				X:    []float64{float64(blockBytes)},
				Y:    []float64{insertT, searchT},
			})
		}
	}
	return Result{
		Title:  "E8 — shuttle tree vs B-tree across block sizes (Y = [insert, search] transfers/op)",
		XLabel: "block bytes",
		YLabel: "transfers/op",
		Series: series,
		Notes: []string{
			"The shuttle tree is cache-oblivious: the same structure is measured at every B.",
			"Expected shape: shuttle insert transfers beat the B-tree's as B grows (buffers amortize",
			"block crossings); searches stay within a constant factor of the B-tree.",
		},
	}
}

// Print renders a Result as an aligned text table.
func Print(w io.Writer, r Result) {
	fmt.Fprintf(w, "\n== %s ==\n", r.Title)
	if len(r.Series) == 0 {
		return
	}
	// Figure-style (multi-X) or summary-style (single X per series)?
	if len(r.Series[0].X) > 1 {
		fmt.Fprintf(w, "%-14s", r.XLabel)
		for _, s := range r.Series {
			fmt.Fprintf(w, "%22s", s.Name)
		}
		fmt.Fprintln(w)
		for i := range r.Series[0].X {
			fmt.Fprintf(w, "%-14.0f", r.Series[0].X[i])
			for _, s := range r.Series {
				if i < len(s.Y) {
					fmt.Fprintf(w, "%22s", formatF(s.Y[i]))
				} else {
					fmt.Fprintf(w, "%22s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	} else {
		nameW := 0
		for _, s := range r.Series {
			if len(s.Name) > nameW {
				nameW = len(s.Name)
			}
		}
		for _, s := range r.Series {
			fmt.Fprintf(w, "%-*s  x=%s  y=[", nameW, s.Name, formatF(s.X[0]))
			parts := make([]string, len(s.Y))
			for i, y := range s.Y {
				parts[i] = formatF(y)
			}
			fmt.Fprintf(w, "%s]\n", strings.Join(parts, ", "))
		}
	}
	for _, note := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", note)
	}
}

// CSV renders a Result as comma-separated values.
func CSV(w io.Writer, r Result) {
	fmt.Fprintf(w, "# %s\n", r.Title)
	fmt.Fprintf(w, "series,x,y_index,y\n")
	for _, s := range r.Series {
		for i := range s.X {
			for yi, y := range s.Y {
				if len(s.X) > 1 && yi != i {
					continue
				}
				xi := i
				if len(s.X) == 1 {
					xi = 0
				}
				fmt.Fprintf(w, "%s,%g,%d,%g\n", s.Name, s.X[xi], yi, y)
			}
		}
	}
}

func formatF(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.3g", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// All runs every experiment in order.
func (c Config) All() []Result {
	var out []Result
	out = append(out, c.Figure2()...)
	out = append(out, c.Figure3()...)
	out = append(out, c.Figure4()...)
	out = append(out, c.Figure5()...)
	out = append(out, c.Ratios())
	out = append(out, c.Transfers())
	out = append(out, c.Deamortized())
	out = append(out, c.RangeScans())
	out = append(out, c.Shuttle())
	out = append(out, c.Concurrent())
	return out
}

// SortSeriesByName orders a result's series deterministically.
func SortSeriesByName(r *Result) {
	sort.Slice(r.Series, func(i, j int) bool { return r.Series[i].Name < r.Series[j].Name })
}

// RangeScans is experiment E9, the contiguity claim of Section 1: "For
// disk-based storage systems, range queries are likely to be faster for
// a lookahead array than for a BRT because the data is stored
// contiguously in arrays ... rather than stored scattered on blocks
// across disk." Measures transfers per returned element for window scans
// after a random load, cold cache.
func (c Config) RangeScans() Result {
	c = c.withDefaults()
	n := 1 << c.LogN
	const window = 1 << 10
	var series []Series
	for _, b := range c.builders([]string{"2-COLA", "BRT", "B-tree"}) {
		// Dense keys 0..n-1 in random arrival order so every window is
		// full and scans are comparable.
		perm := workload.NewRNG(c.Seed)
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i)
		}
		for i := n - 1; i > 0; i-- {
			j := int(perm.Uint64() % uint64(i+1))
			keys[i], keys[j] = keys[j], keys[i]
		}
		for _, k := range keys {
			b.d.Insert(k, k)
		}
		b.dropCache()
		b.resetCounters()
		rng := workload.NewRNG(c.Seed + 9)
		scans := 64
		returned := 0
		for s := 0; s < scans; s++ {
			lo := rng.Uint64() % uint64(n-window)
			b.d.Range(lo, lo+window-1, func(core.Element) bool {
				returned++
				return true
			})
		}
		series = append(series, Series{
			Name: b.name,
			X:    []float64{float64(n)},
			Y:    []float64{float64(b.transfers()) / float64(returned)},
		})
	}
	return Result{
		Title:  "E9 — range scans, transfers per returned element (cold cache)",
		XLabel: "N",
		YLabel: "transfers/element",
		Series: series,
		Notes: []string{
			"Section 1's contiguity claim: the lookahead array's levels are contiguous arrays,",
			"so scans approach the 1/B sequential bound. Caveat recorded in DESIGN.md:",
			"this repo's BRT allocates nodes in key-clustered creation order under dense loads,",
			"so the paper's 'scattered on blocks across disk' premise does not manifest at",
			"simulator scale; the claim reduces to the COLA tracking the sequential bound.",
		},
	}
}
