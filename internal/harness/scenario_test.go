package harness

import (
	"strings"
	"testing"

	"repro/internal/registry"
	"repro/internal/workload"
)

func scenarioConfig() Config {
	return Config{LogN: 12, CacheBytes: 1 << 16, Seed: 42}
}

// Every cell of the default grid must be a valid scenario, and the
// default lineup valid structures — Scenarios() panics otherwise.
func TestDefaultScenarioGridValid(t *testing.T) {
	for _, spec := range DefaultScenarioGrid() {
		if _, err := workload.Parse(spec); err != nil {
			t.Errorf("default grid spec %q: %v", spec, err)
		}
	}
	if err := ValidateLineup(DefaultScenarioLineup()); err != nil {
		t.Errorf("default lineup: %v", err)
	}
}

// Transfer counts must be bit-for-bit reproducible: the measured
// quantity is the perf-record identity's whole point.
func TestMeasureScenarioDeterministic(t *testing.T) {
	c := scenarioConfig()
	for _, spec := range []string{"uniform+steady+95r5w", "zipf1.2+bursty+70r20w5d5s", "uniform+steady+100w"} {
		a, err := c.MeasureScenario("2-COLA", nil, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		b, err := c.MeasureScenario("2-COLA", nil, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if a.TransfersPerOp != b.TransfersPerOp {
			t.Errorf("%s: transfers/op differ across identical runs: %g vs %g", spec, a.TransfersPerOp, b.TransfersPerOp)
		}
		if a.Ops != 1<<c.LogN {
			t.Errorf("%s: measured %d ops, want %d", spec, a.Ops, 1<<c.LogN)
		}
		if a.Inserts != b.Inserts || a.Searches != b.Searches || a.Deletes != b.Deletes || a.Scans != b.Scans {
			t.Errorf("%s: op counts differ across identical runs", spec)
		}
	}
}

// Read mixes preload the dense keyspace; write/delete-only mixes start
// empty.
func TestMeasureScenarioPreloadPolicy(t *testing.T) {
	c := scenarioConfig()
	read, err := c.MeasureScenario("B-tree", nil, "uniform+steady+95r5w")
	if err != nil {
		t.Fatal(err)
	}
	if read.Preloaded != 1<<c.LogN {
		t.Errorf("read mix preloaded %d, want %d", read.Preloaded, 1<<c.LogN)
	}
	write, err := c.MeasureScenario("B-tree", nil, "uniform+steady+60w40d")
	if err != nil {
		t.Fatal(err)
	}
	if write.Preloaded != 0 {
		t.Errorf("write/delete mix preloaded %d, want 0", write.Preloaded)
	}
	if write.Deletes == 0 || write.Inserts == 0 {
		t.Errorf("churn mix applied %d inserts / %d deletes, want both > 0", write.Inserts, write.Deletes)
	}
}

// Extra registry options must reach the built structure: fragmenting
// gcola's lookahead pointers must change its search transfer count.
func TestMeasureScenarioExtraOptions(t *testing.T) {
	c := scenarioConfig()
	withPtrs, err := c.MeasureScenario("2-COLA", nil, "uniform+steady+100r")
	if err != nil {
		t.Fatal(err)
	}
	without, err := c.MeasureScenario("2-COLA", []registry.Option{registry.WithPointerDensity(0)}, "uniform+steady+100r")
	if err != nil {
		t.Fatal(err)
	}
	if without.TransfersPerOp <= withPtrs.TransfersPerOp {
		t.Errorf("pointerless searches cost %.3f transfers/op, with pointers %.3f — fragmenting pointers must hurt",
			without.TransfersPerOp, withPtrs.TransfersPerOp)
	}
}

func TestMeasureScenarioErrors(t *testing.T) {
	c := scenarioConfig()
	if _, err := c.MeasureScenario("2-COLA", nil, "uniform+steady+95r4w"); err == nil {
		t.Error("invalid mix accepted")
	}
	if _, err := c.MeasureScenario("not-a-kind", nil, "uniform+steady+100w"); err == nil {
		t.Error("unknown structure accepted")
	}
	// deamortized has no Deleter: a delete-bearing mix must fail
	// upfront, not panic mid-run.
	if _, err := c.MeasureScenario("deamortized", nil, "uniform+steady+60w40d"); err == nil {
		t.Error("delete mix accepted for a structure without core.Deleter")
	}
}

// ScenariosFor yields one result per scenario, titled by the canonical
// scenario name, with one series per lineup entry — the shape the perf
// flattener and -fig scenarios rely on.
func TestScenariosForShape(t *testing.T) {
	c := scenarioConfig()
	specs := []string{"uniform+steady+95r5w", "uniform+bursty+100w"}
	lineup := []string{"2-COLA", "B-tree"}
	results, err := c.ScenariosFor(lineup, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("%d results for %d specs", len(results), len(specs))
	}
	for i, r := range results {
		if !strings.Contains(r.Title, specs[i]) {
			t.Errorf("result %d title %q does not name scenario %q", i, r.Title, specs[i])
		}
		if len(r.Series) != len(lineup) {
			t.Fatalf("result %d has %d series for %d structures", i, len(r.Series), len(lineup))
		}
		for j, s := range r.Series {
			if s.Name != lineup[j] {
				t.Errorf("result %d series %d named %q, want %q", i, j, s.Name, lineup[j])
			}
		}
	}
	// The flattener must export scenario records as transfers/op.
	recs := PerfRecords(results)
	if len(recs) != len(specs)*len(lineup) {
		t.Fatalf("PerfRecords exported %d records, want %d", len(recs), len(specs)*len(lineup))
	}
	for _, rec := range recs {
		if rec.TransfersPerOp < 0 || rec.NsPerOp != 0 {
			t.Errorf("scenario record %s should carry transfers only, got ns=%g", rec.Key(), rec.NsPerOp)
		}
		if !strings.HasPrefix(rec.Op, "e13-scenario-") {
			t.Errorf("scenario record op %q lacks the e13-scenario- prefix", rec.Op)
		}
	}
}
