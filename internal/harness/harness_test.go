package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/registry"
)

// small returns a config tiny enough for unit tests.
func small() Config {
	return Config{LogN: 11, LogNStart: 9, CacheBytes: 1 << 15, Searches: 1 << 7}
}

func TestDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.LogN != 18 || c.BlockBytes != 4096 || c.Seed == 0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	// Start may not exceed end.
	c2 := Config{LogN: 8, LogNStart: 12}.withDefaults()
	if c2.LogNStart > c2.LogN {
		t.Fatalf("LogNStart %d > LogN %d", c2.LogNStart, c2.LogN)
	}
}

func TestFigure2ShapeHolds(t *testing.T) {
	res := small().Figure2()
	if len(res) != 2 {
		t.Fatalf("Figure2 returned %d results", len(res))
	}
	// The transfer result must show the COLA beating the B-tree on
	// random inserts at the largest N (the paper's headline).
	tr := res[1]
	perName := map[string]float64{}
	for _, s := range tr.Series {
		perName[s.Name] = s.Y[len(s.Y)-1]
	}
	if perName["2-COLA"] >= perName["B-tree"] {
		t.Fatalf("2-COLA transfers/insert (%v) not below B-tree (%v)",
			perName["2-COLA"], perName["B-tree"])
	}
}

func TestFigure3BTreeWinsSorted(t *testing.T) {
	res := small().Figure3()
	tr := res[1]
	perName := map[string]float64{}
	for _, s := range tr.Series {
		perName[s.Name] = s.Y[len(s.Y)-1]
	}
	// Sorted inserts are the B-tree's best case: it must be within a
	// small factor of (typically below) the COLAs on transfers.
	if perName["B-tree"] > 4*perName["4-COLA"]+0.5 {
		t.Fatalf("B-tree sorted-insert transfers (%v) unexpectedly dominate 4-COLA (%v)",
			perName["B-tree"], perName["4-COLA"])
	}
}

func TestFigure4BTreeSearchWins(t *testing.T) {
	res := small().Figure4()
	tr := res[1]
	perName := map[string]float64{}
	for _, s := range tr.Series {
		perName[s.Name] = s.Y[len(s.Y)-1]
	}
	if perName["B-tree"] > perName["4-COLA"] {
		t.Fatalf("B-tree search transfers (%v) exceed 4-COLA (%v); search tradeoff inverted",
			perName["B-tree"], perName["4-COLA"])
	}
}

func TestFigure5ThreeOrders(t *testing.T) {
	res := small().Figure5()
	if len(res[0].Series) != 3 {
		t.Fatalf("Figure5 has %d series, want 3", len(res[0].Series))
	}
	names := map[string]bool{}
	for _, s := range res[0].Series {
		names[s.Name] = true
	}
	for _, want := range []string{"4-COLA (Ascending)", "4-COLA (Descending)", "4-COLA (Random)"} {
		if !names[want] {
			t.Fatalf("missing series %q", want)
		}
	}
}

func TestRatiosDirections(t *testing.T) {
	r := small().Ratios()
	vals := map[string][]float64{}
	for _, s := range r.Series {
		vals[s.Name] = s.Y
	}
	insertRatio := vals["random inserts: COLA faster than B-tree by"]
	if insertRatio[1] <= 1 {
		t.Fatalf("COLA/B-tree random-insert transfer ratio = %v, want > 1", insertRatio[1])
	}
	searchRatio := vals["searches: 4-COLA slower than B-tree by"]
	if searchRatio[1] < 1 {
		t.Fatalf("COLA/B-tree search transfer ratio = %v, want >= 1", searchRatio[1])
	}
}

func TestTransfersCoversStructures(t *testing.T) {
	r := small().Transfers()
	if len(r.Series) != 10 {
		t.Fatalf("Transfers has %d series, want 10", len(r.Series))
	}
	perName := map[string][]float64{}
	for _, s := range r.Series {
		perName[s.Name] = s.Y
	}
	// Write-optimized structures must beat the B-tree on inserts.
	if perName["2-COLA"][0] >= perName["B-tree"][0] {
		t.Fatalf("COLA insert transfers (%v) not below B-tree (%v)",
			perName["2-COLA"][0], perName["B-tree"][0])
	}
	if perName["BRT"][0] >= perName["B-tree"][0] {
		t.Fatalf("BRT insert transfers (%v) not below B-tree (%v)",
			perName["BRT"][0], perName["B-tree"][0])
	}
}

func TestDeamortizedBoundsWorstCase(t *testing.T) {
	r := small().Deamortized()
	perName := map[string][]float64{}
	for _, s := range r.Series {
		perName[s.Name] = s.Y
	}
	amortizedMax := perName["2-COLA"][0]
	deamMax := perName["deamortized-COLA"][0]
	if deamMax >= amortizedMax {
		t.Fatalf("deamortized max moves (%v) not below amortized COLA's (%v)", deamMax, amortizedMax)
	}
}

func TestShuttleRuns(t *testing.T) {
	c := small()
	c.LogN = 10
	r := c.Shuttle()
	if len(r.Series) != 9 {
		t.Fatalf("Shuttle has %d series, want 9", len(r.Series))
	}
}

// TestValidateLineup covers both name namespaces and the error path.
func TestValidateLineup(t *testing.T) {
	if err := ValidateLineup([]string{"2-COLA", "btree", "sharded", "CO-B-tree"}); err != nil {
		t.Fatalf("valid lineup rejected: %v", err)
	}
	err := ValidateLineup([]string{"btre"})
	if err == nil || !strings.Contains(err.Error(), `unknown structure "btre"`) {
		t.Fatalf("invalid lineup: %v", err)
	}
	if !strings.Contains(err.Error(), "registered kinds") {
		t.Fatalf("error does not list the registry: %v", err)
	}
}

// TestBuildNamedResolvesEverything builds every legacy display name and
// every registered kind through the harness wiring.
func TestBuildNamedResolvesEverything(t *testing.T) {
	c := small()
	var names []string
	names = append(names, LegacyNames()...)
	names = append(names, registry.Kinds()...)
	for _, name := range names {
		b, err := c.buildNamed(name)
		if err != nil {
			t.Fatalf("buildNamed(%q): %v", name, err)
		}
		b.d.Insert(5, 50)
		if v, ok := b.d.Search(5); !ok || v != 50 {
			t.Fatalf("%s: Search = (%d,%v)", name, v, ok)
		}
		b.dropCache()
		b.resetCounters()
		_ = b.transfers()
	}
}

// TestFigure2ForArbitraryKinds runs the Figure 2 experiment over a
// lineup mixing legacy names, space-charged kinds, a self-accounted
// kind (sharded), and an accounting-free one (swbst).
func TestFigure2ForArbitraryKinds(t *testing.T) {
	c := small()
	results := c.Figure2For([]string{"2-COLA", "brt", "sharded", "swbst"})
	if len(results) != 2 {
		t.Fatalf("Figure2For returned %d results", len(results))
	}
	for _, r := range results {
		if len(r.Series) != 4 {
			t.Fatalf("%s: %d series, want 4", r.Title, len(r.Series))
		}
	}
	rates := results[0]
	for _, s := range rates.Series {
		if len(s.Y) == 0 || s.Y[len(s.Y)-1] <= 0 {
			t.Fatalf("series %s has no positive throughput: %v", s.Name, s.Y)
		}
	}
	// The space-charged structures record transfers; swbst reports zero.
	transfers := map[string]float64{}
	for _, s := range results[1].Series {
		total := 0.0
		for _, y := range s.Y {
			total += y
		}
		transfers[s.Name] = total
	}
	if transfers["brt"] == 0 {
		t.Error("brt recorded no transfers")
	}
	if transfers["swbst"] != 0 {
		t.Error("swbst recorded transfers without a store")
	}
}

func TestPrintAndCSV(t *testing.T) {
	res := small().Figure5()
	var buf bytes.Buffer
	Print(&buf, res[0])
	out := buf.String()
	if !strings.Contains(out, "Figure 5") || !strings.Contains(out, "4-COLA (Random)") {
		t.Fatalf("Print output missing content:\n%s", out)
	}
	buf.Reset()
	CSV(&buf, res[0])
	if !strings.Contains(buf.String(), "series,x,y_index,y") {
		t.Fatalf("CSV header missing:\n%s", buf.String())
	}
	// Summary-style result printing.
	buf.Reset()
	Print(&buf, small().Deamortized())
	if !strings.Contains(buf.String(), "deamortized-COLA") {
		t.Fatalf("summary Print missing series:\n%s", buf.String())
	}
}

// TestConcurrentScenario runs E10 at a small scale and checks the
// result's shape; the ≥2x speedup claim is asserted by the benchmarks
// (BenchmarkSharded*), not here, since test hosts may be single-core.
func TestConcurrentScenario(t *testing.T) {
	c := small()
	c.LogN = 12
	r := c.Concurrent()
	if len(r.Series) != 4 {
		t.Fatalf("Concurrent has %d series, want 4", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.X) != 4 || len(s.Y) != 4 {
			t.Fatalf("series %q has %d points, want 4", s.Name, len(s.X))
		}
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %q point %d is non-positive: %v", s.Name, i, y)
			}
		}
	}
	var buf bytes.Buffer
	Print(&buf, r)
	if !strings.Contains(buf.String(), "sharded ins/s") {
		t.Fatalf("Print output missing series:\n%s", buf.String())
	}
}

// TestReadMostlyScenario runs E12 at a small scale and checks the
// result's shape; the ≥2x shared-vs-exclusive speedup claim is asserted
// by the benchmarks (BenchmarkShardedReadMostly), not here, since test
// hosts may be single-core.
func TestReadMostlyScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("E12 drives 4 contenders x 4 scales")
	}
	c := small()
	c.LogN = 12
	r := c.ReadMostly()
	if len(r.Series) != 4 {
		t.Fatalf("ReadMostly has %d series, want 4", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.X) != 4 || len(s.Y) != 4 {
			t.Fatalf("series %q has %d points, want 4", s.Name, len(s.X))
		}
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("series %q point %d is non-positive: %v", s.Name, i, y)
			}
		}
	}
	var buf bytes.Buffer
	Print(&buf, r)
	if !strings.Contains(buf.String(), "sharded shared srch/s") {
		t.Fatalf("Print output missing series:\n%s", buf.String())
	}
}

func TestRangeScansNearSequentialBound(t *testing.T) {
	c := small()
	r := c.RangeScans()
	perName := map[string]float64{}
	for _, s := range r.Series {
		perName[s.Name] = s.Y[0]
	}
	// Section 1's contiguity claim, in the form measurable on our
	// substrate: the COLA's scans run close to the sequential 1/B bound
	// (levels are contiguous arrays). Our BRT allocates nodes in
	// key-clustered creation order under a dense load, so the paper's
	// "scattered on blocks across disk" premise does not manifest here;
	// see the experiment's notes.
	seqBound := float64(core.ElementBytes) / float64(c.withDefaults().BlockBytes)
	if perName["2-COLA"] > 8*seqBound {
		t.Fatalf("COLA scan transfers/element (%v) far above sequential bound (%v)",
			perName["2-COLA"], seqBound)
	}
	t.Logf("scan transfers/element: %v (sequential bound %v)", perName, seqBound)
}
