// Out-of-core experiment (E15 in DESIGN.md): a gcola built with
// WithSpillDir runs its cold levels in chunk-aligned files behind a
// deliberately starved page cache, and every operation is measured
// twice — the DAM-charged prediction (the model's block count) and the
// chunk reads/writes that actually hit the spill files. The two streams
// side by side are the repo's direct test of the DAM substitution
// table: merges stream sequentially so insert transfers should track
// the prediction closely, and cache-starved random searches should pay
// roughly the charged O(log N) block reads for the spilled levels.
//
// The DAM cache M is pinned to the spill page-cache budget so both
// accountants see the same geometry. Levels below the spill depth stay
// in RAM and cost no actual I/O, so the actual curve sits below the
// predicted one by the charges of the hot levels — the ratio note
// quantifies the gap for the CI lane.
//
// Like E11/E12 this experiment is excluded from All(): its numbers
// depend on real file I/O and must not enter the committed
// deterministic-transfer baseline.

package harness

import (
	"fmt"
	"os"

	"repro/internal/registry"
	"repro/internal/workload"
)

// spillDict is the measurement surface a spilled gcola exposes beyond
// core.Dictionary: actual chunk I/O counters, file statistics, and the
// cache controls mirroring dam.Store's.
type spillDict interface {
	ActualTransfers() (reads, writes uint64)
	SpillFileStats() (files int, bytes int64, err error)
	ResetSpillCounters()
	DropSpillCache()
	SpillCacheChunks() (chunks, chunkBytes int)
	Close() error
}

// outOfCoreSpillCacheBytes starves the page cache enough that the
// spilled levels of the default 2^18-element sweep cannot be held
// resident (16 chunks of 4 KiB against several MiB of spill files).
const outOfCoreSpillCacheBytes = 64 << 10

// OutOfCoreSearchTransfers is the measurement core of the
// dam-model-fidelity hypothesis bundle: it loads a spilled gcola with
// 2^LogN random-unique elements, drops every cache, runs `searches`
// random point searches, and returns the DAM-charged and
// actually-performed block reads per search. The DAM cache stays at
// c.CacheBytes in both arms; spillCacheBytes independently sets the
// real page-cache budget, so a caller can starve it (actual reads must
// then track the charges) or oversize it (actual reads must collapse
// while the charges do not).
func (c Config) OutOfCoreSearchTransfers(spillCacheBytes int64, searches int) (charged, actual float64, err error) {
	c = c.withDefaults()
	spillDepth := c.LogN - 6
	if spillDepth < 2 {
		spillDepth = 2
	}
	dir, err := os.MkdirTemp("", "streambench-spill-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	b, err := c.buildWith("gcola", []registry.Option{
		registry.WithSpillDir(dir),
		registry.WithSpillDepth(spillDepth),
		registry.WithSpillCacheBytes(spillCacheBytes),
	})
	if err != nil {
		return 0, 0, err
	}
	sd, ok := b.d.(spillDict)
	if !ok {
		return 0, 0, fmt.Errorf("harness: spilled gcola does not expose spill accounting")
	}
	defer sd.Close()

	n := 1 << c.LogN
	seq := workload.NewRandomUnique(c.Seed)
	for i := 0; i < n; i++ {
		k := seq.Next()
		b.d.Insert(k, k)
	}
	keys := workload.Take(workload.NewRandomUnique(c.Seed), n)
	b.dropCache()
	b.resetCounters()
	sd.DropSpillCache()
	sd.ResetSpillCounters()
	probe := workload.NewRNG(c.Seed + 1)
	for i := 0; i < searches; i++ {
		b.d.Search(keys[probe.Intn(len(keys))])
	}
	reads, _ := sd.ActualTransfers()
	return float64(b.transfers()) / float64(searches), float64(reads) / float64(searches), nil
}

// OutOfCore is experiment E15: random inserts then cold random searches
// on a spilled gcola, reporting DAM-predicted and actually-performed
// block transfers per operation at every power-of-two checkpoint.
func (c Config) OutOfCore() ([]Result, error) {
	c = c.withDefaults()
	// Spill almost everything: only the top levels (a few thousand
	// cells) stay in RAM, so the sweep crosses into the out-of-core
	// regime early.
	spillDepth := c.LogN - 6
	if spillDepth < 2 {
		spillDepth = 2
	}
	cc := c
	cc.CacheBytes = outOfCoreSpillCacheBytes

	// The spill store namespaces a private subdirectory and removes it
	// on Close; the parent temp dir is cleaned here either way.
	dir, err := os.MkdirTemp("", "streambench-spill-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	b, err := cc.buildWith("gcola", []registry.Option{
		registry.WithSpillDir(dir),
		registry.WithSpillDepth(spillDepth),
		registry.WithSpillCacheBytes(outOfCoreSpillCacheBytes),
	})
	if err != nil {
		return nil, err
	}
	sd, ok := b.d.(spillDict)
	if !ok {
		return nil, fmt.Errorf("harness: spilled gcola does not expose spill accounting")
	}
	defer sd.Close()
	actual := func() uint64 {
		r, w := sd.ActualTransfers()
		return r + w
	}

	// Insert phase: the Figure 2 sweep with both accountants read at
	// every checkpoint.
	n := 1 << cc.LogN
	seq := workload.NewRandomUnique(cc.Seed)
	var ixs, predIns, actIns []float64
	done := 0
	lastPred, lastAct := uint64(0), uint64(0)
	for lg := cc.LogNStart; lg <= cc.LogN; lg++ {
		target := 1 << lg
		for done < target {
			k := seq.Next()
			b.d.Insert(k, k)
			done++
		}
		window := float64(target - target/2)
		if lg == cc.LogNStart {
			window = float64(target)
		}
		p, a := b.transfers(), actual()
		ixs = append(ixs, float64(lg))
		predIns = append(predIns, float64(p-lastPred)/window)
		actIns = append(actIns, float64(a-lastAct)/window)
		lastPred, lastAct = p, a
	}
	insPredTotal, insActTotal := b.transfers(), actual()

	// Search phase: cold caches on both sides, probes drawn from the
	// inserted key stream so every search hits.
	keys := workload.Take(workload.NewRandomUnique(cc.Seed), n)
	b.dropCache()
	b.resetCounters()
	sd.DropSpillCache()
	sd.ResetSpillCounters()
	probe := workload.NewRNG(cc.Seed + 1)
	var sxs, predSrch, actSrch []float64
	doneSearches := 0
	lastPred, lastAct = 0, 0
	for lg := 0; (1 << lg) <= cc.Searches; lg++ {
		target := 1 << lg
		for doneSearches < target {
			b.d.Search(keys[probe.Intn(len(keys))])
			doneSearches++
		}
		window := float64(target - target/2)
		if lg == 0 {
			window = float64(target)
		}
		p, a := b.transfers(), actual()
		sxs = append(sxs, float64(lg))
		predSrch = append(predSrch, float64(p-lastPred)/window)
		actSrch = append(actSrch, float64(a-lastAct)/window)
		lastPred, lastAct = p, a
	}
	srchPredTotal, srchActTotal := b.transfers(), actual()

	files, bytes, err := sd.SpillFileStats()
	if err != nil {
		return nil, fmt.Errorf("harness: spill file stats: %w", err)
	}
	chunks, chunkBytes := sd.SpillCacheChunks()

	ratio := func(num, den uint64) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	notes := []string{
		fmt.Sprintf("geometry: N = 2^%d, spill depth %d, page cache %d chunks x %d B, DAM B = %d M = %d",
			cc.LogN, spillDepth, chunks, chunkBytes, cc.BlockBytes, cc.CacheBytes),
		fmt.Sprintf("spill files: %d (%d bytes)", files, bytes),
		fmt.Sprintf("predicted/actual insert transfers: %.2f", ratio(insPredTotal, insActTotal)),
		fmt.Sprintf("predicted/actual search transfers: %.2f", ratio(srchPredTotal, srchActTotal)),
	}
	return []Result{
		{
			Title:  "E15 — out-of-core random inserts: DAM-predicted vs actual chunk transfers",
			XLabel: "log2 N", YLabel: "block transfers / insert (window)",
			Series: []Series{
				{Name: "predicted (DAM)", X: ixs, Y: predIns},
				{Name: "actual (chunk I/O)", X: ixs, Y: actIns},
			},
			Notes: append([]string{
				"Merges stream spilled levels sequentially, so the actual curve should track the",
				"predicted O((log N)/B)-amortized one once the sweep passes the spill depth;",
				"early windows touch only RAM levels and perform no I/O at all.",
			}, notes...),
		},
		{
			Title:  "E15s — out-of-core random searches, cold cache: predicted vs actual",
			XLabel: "log2 searches", YLabel: "block transfers / search (window)",
			Series: []Series{
				{Name: "predicted (DAM)", X: sxs, Y: predSrch},
				{Name: "actual (chunk reads)", X: sxs, Y: actSrch},
			},
			Notes: []string{
				"A cache-starved random search walks every spilled level, paying real chunk reads",
				"near the charged count; the gap is the RAM-resident top levels plus page-cache hits.",
				"The dam-model-fidelity hypothesis bundle gates this agreement in CI.",
			},
		},
	}, nil
}
