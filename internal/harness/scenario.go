// Scenario family runner (E13 in DESIGN.md): drives composable
// workload scenarios — the key-skew × arrival-pattern × op-mix grid of
// internal/workload — against any lineup of structures, reporting DAM
// transfers per operation (deterministic, gateable) with wall-clock
// rates in the notes.
//
// Semantics, chosen so every cell of the grid measures a steady state
// the theory speaks about:
//
//   - The scenario keyspace is the dense range [0, 2^LogN). Mixes with
//     a read component (searches or scans) run against a preloaded
//     keyspace — every key present, cache dropped, counters reset
//     before measurement — so reads hit and the mix measures steady
//     traffic, not a ramp-up. Write/delete-only mixes start empty and
//     measure the growth path itself, like Figures 2/3.
//   - Arrival patterns are real batching: the ops of one tick that are
//     consecutive inserts are applied through core.InsertBatch, so a
//     bursty stream genuinely amortizes (or fails to amortize) batch
//     ingestion, instead of arrival being a cosmetic relabeling.
//   - Deletes replay the insert-key stream in insertion order (see
//     workload.Stream), so churn mixes hold the live set bounded while
//     tombstone-based structures keep paying for dead entries.
//
// Like E11/E12, the scenario family is not part of All(): the committed
// BENCH_0.json gate stays exactly the paper-figure workloads. Scenario
// runs emit their own perf records (op = slugged scenario title) when
// streambench -json is passed.

package harness

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
	"repro/internal/workload"
)

// DefaultScenarioLineup is the structure lineup -fig scenarios runs
// when -dict is not given: the paper's headline contenders.
func DefaultScenarioLineup() []string { return []string{"2-COLA", "B-tree"} }

// DefaultScenarioGrid is the curated slice of the skew × arrival × mix
// grid that -fig scenarios runs by default: every skew under a steady
// read-mostly mix, every arrival pattern under pure inserts, plus a
// delete-churn and a scan-heavy cell.
func DefaultScenarioGrid() []string {
	return []string{
		"uniform+steady+95r5w",
		"zipf1.2+steady+95r5w",
		"hotset+steady+95r5w",
		"sequential+steady+95r5w",
		"uniform+steady+100w",
		"uniform+bursty+100w",
		"uniform+diurnal+100w",
		"uniform+steady+60w40d",
		"uniform+steady+90r5w5s",
	}
}

// ScenarioMeasurement is one structure's measured cost under one
// scenario.
type ScenarioMeasurement struct {
	Structure string
	Scenario  string
	// Ops is the number of measured operations (preload excluded).
	Ops int
	// Preloaded is the number of elements inserted before measurement
	// (0 for write/delete-only mixes).
	Preloaded int
	// Counts per op kind over the measured window.
	Inserts, Searches, Deletes, Scans int
	// TransfersPerOp is DAM block transfers per measured op —
	// deterministic for a fixed (scenario, seed, geometry).
	TransfersPerOp float64
	// NsPerOp is wall-clock nanoseconds per measured op (host-dependent).
	NsPerOp float64
}

// MeasureScenario builds one structure — a figure display name or
// registered kind, plus optional extra registry options — wires it to
// this config's DAM geometry, and drives 2^LogN ops of the scenario
// through it. The scenario's seed and keyspace come from the config
// (Seed, 2^LogN); the spec string carries only workload shape.
func (c Config) MeasureScenario(structure string, extra []registry.Option, spec string) (ScenarioMeasurement, error) {
	c = c.withDefaults()
	sc, err := workload.Parse(spec)
	if err != nil {
		return ScenarioMeasurement{}, err
	}
	sc.Seed = c.Seed
	sc.KeySpace = uint64(1) << c.LogN

	b, err := c.buildWith(structure, extra)
	if err != nil {
		return ScenarioMeasurement{}, err
	}
	if sc.Mix.DeletePct > 0 {
		if _, ok := b.d.(core.Deleter); !ok {
			return ScenarioMeasurement{}, fmt.Errorf("scenario %s needs deletes but structure %q does not implement core.Deleter", sc.Name(), structure)
		}
	}

	m := ScenarioMeasurement{Structure: b.name, Scenario: sc.Name(), Ops: 1 << c.LogN}

	// Preload a dense keyspace for mixes that read: searches and scans
	// must hit live keys to measure steady-state traffic. Chunked so
	// huge LogN does not materialize the whole keyspace at once.
	if sc.Mix.SearchPct+sc.Mix.ScanPct > 0 {
		const chunk = 1 << 15
		elems := make([]core.Element, 0, chunk)
		for lo := uint64(0); lo < sc.KeySpace; lo += chunk {
			elems = elems[:0]
			hi := lo + chunk
			if hi > sc.KeySpace {
				hi = sc.KeySpace
			}
			for k := lo; k < hi; k++ {
				elems = append(elems, core.Element{Key: k, Value: scenarioValue(k)})
			}
			core.InsertBatch(b.d, elems)
		}
		m.Preloaded = int(sc.KeySpace)
		b.dropCache()
		b.resetCounters()
	}

	st, err := sc.Stream()
	if err != nil {
		return ScenarioMeasurement{}, err
	}
	startTransfers := b.transfers()
	start := time.Now()
	c.driveScenario(b.d, st, m.Ops, &m)
	el := time.Since(start).Seconds()
	if el <= 0 {
		el = 1e-9
	}
	m.TransfersPerOp = float64(b.transfers()-startTransfers) / float64(m.Ops)
	m.NsPerOp = el * 1e9 / float64(m.Ops)
	return m, nil
}

// scenarioValue is the deterministic value bound to key k in scenario
// runs, so searches can (and the tests do) verify hits.
func scenarioValue(k uint64) uint64 { return k ^ 0xE13 }

// driveScenario applies n ops tick by tick. Consecutive inserts within
// one tick go through core.InsertBatch — the arrival pattern's batching
// is real work-shape, not labeling.
func (c Config) driveScenario(d core.Dictionary, st *workload.Stream, n int, m *ScenarioMeasurement) {
	del, _ := d.(core.Deleter)
	var tick []workload.Op
	var batch []core.Element
	applied := 0
	for applied < n {
		tick = st.NextTick(tick[:0])
		if len(tick) > n-applied {
			tick = tick[:n-applied]
		}
		i := 0
		for i < len(tick) {
			if tick[i].Kind == workload.OpInsert {
				batch = batch[:0]
				for i < len(tick) && tick[i].Kind == workload.OpInsert {
					k := tick[i].Key
					batch = append(batch, core.Element{Key: k, Value: scenarioValue(k)})
					i++
				}
				core.InsertBatch(d, batch)
				m.Inserts += len(batch)
				continue
			}
			op := tick[i]
			i++
			switch op.Kind {
			case workload.OpSearch:
				d.Search(op.Key)
				m.Searches++
			case workload.OpDelete:
				del.Delete(op.Key)
				m.Deletes++
			case workload.OpScan:
				d.Range(op.Key, op.Key+workload.ScanSpan-1, func(core.Element) bool { return true })
				m.Scans++
			}
		}
		applied += len(tick)
	}
}

// ScenariosFor runs every scenario spec over the lineup, one Result per
// scenario: X = N, Y = [transfers/op] per structure, wall-clock rates
// in the notes. Specs and lineup must already be validated
// (workload.Parse / ValidateLineup); a build or drive failure surfaces
// as an error.
func (c Config) ScenariosFor(names []string, specs []string) ([]Result, error) {
	c = c.withDefaults()
	var out []Result
	for _, spec := range specs {
		r := Result{
			XLabel: "N",
			YLabel: "transfers/op",
		}
		var notes []string
		for _, name := range names {
			m, err := c.MeasureScenario(name, nil, spec)
			if err != nil {
				return nil, err
			}
			// The canonical scenario name (not the raw spec) titles the
			// result, so perf-record identity is spelling-independent.
			r.Title = fmt.Sprintf("E13 — scenario %s (DAM transfers)", m.Scenario)
			r.Series = append(r.Series, Series{
				Name: m.Structure,
				X:    []float64{float64(m.Ops)},
				Y:    []float64{m.TransfersPerOp},
			})
			notes = append(notes, fmt.Sprintf("%s: %.0f ops/s wall-clock; mix applied %dw/%dr/%dd/%ds, preload %d",
				m.Structure, 1e9/m.NsPerOp, m.Inserts, m.Searches, m.Deletes, m.Scans, m.Preloaded))
		}
		r.Notes = notes
		out = append(out, r)
	}
	return out, nil
}

// Scenarios is experiment E13 with its defaults: the curated grid over
// the default lineup.
func (c Config) Scenarios() []Result {
	out, err := c.ScenariosFor(DefaultScenarioLineup(), DefaultScenarioGrid())
	if err != nil {
		// Unreachable for the built-in grid and lineup, which are
		// validated by construction (and pinned by tests).
		panic("harness: default scenario grid failed: " + err.Error())
	}
	return out
}
