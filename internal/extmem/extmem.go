// Package extmem is the out-of-core backing store for the COLA spill
// layer: a block-granular, file-backed level store with a small page
// cache whose LRU mirrors internal/dam's resident-table semantics —
// except that here a "transfer" is a real pread/pwrite of an aligned
// chunk, not a simulated charge. The pair of counters (ChunkReads /
// ChunkWrites, symmetric to core.TransferCounter's predicted stream)
// is what lets the harness put the DAM model's prediction and the
// measured I/O side by side (DESIGN.md E15).
//
// Layout: a Level is the occupied window of one COLA level, stored as
// fixed 32-byte cells (core.ElementBytes — the paper's padded element)
// packed into ChunkBytes-aligned chunks; the final chunk is padded to
// full size on commit so every read is a whole aligned chunk and any
// short read is a structural error, never silently-zero cells.
//
// Access pattern contract (the one the paper's analysis exploits):
//   - Random reads (Search/Range probes) go through the page cache:
//     a miss reads one aligned chunk and caches it, a hit costs
//     nothing; the LRU is frozen during shared-read epochs exactly
//     like dam.Store's (hits leave recency untouched, misses read
//     around the cache and are counted atomically, writes panic).
//   - Sequential passes (the merge ladder, snapshot serialization) use
//     Reader/LevelWriter, which stream whole chunks through private
//     buffers — counted, but deliberately NOT cached, so a single big
//     merge cannot evict the read path's working set (scan resistance;
//     levels are written once and never updated in place, so there is
//     no dirty/writeback state at all).
//
// Like dam.Store, a Store is single-threaded for everything except
// concurrent reads inside a Begin/EndSharedReads bracket.
package extmem

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// CellBytes is the on-disk size of one cell: the paper's 32-byte padded
// element (key, value, two 32-bit pointers, kind, padding). It matches
// core.ElementBytes so chunk geometry lines up with DAM block geometry.
const CellBytes = 32

// DefaultChunkBytes matches dam.DefaultBlockBytes so predicted and
// actual transfer counts are in the same unit by default.
const DefaultChunkBytes = 4096

// MinCacheChunks is the smallest page-cache budget Open accepts; below
// this even a single binary search thrashes pathologically and the
// "small pinned cache" stops being a cache at all.
const MinCacheChunks = 4

// ErrShortRead is the sentinel wrapped by every torn- or short-read
// failure: a chunk read that returned fewer bytes than the aligned
// chunk size. errors.Is(err, ErrShortRead) matches; the concrete
// *ReadError carries the file, chunk, and byte counts.
var ErrShortRead = errors.New("extmem: short chunk read")

// ReadError is the typed failure for a chunk read that did not return a
// whole aligned chunk (torn file, truncation, or an underlying I/O
// error). Got < Want with a nil Err is a short read and matches
// ErrShortRead; otherwise Err is the underlying pread failure.
type ReadError struct {
	Path  string
	Chunk int
	Got   int
	Want  int
	Err   error
}

func (e *ReadError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("extmem: read chunk %d of %s: %v", e.Chunk, e.Path, e.Err)
	}
	return fmt.Sprintf("extmem: short read of chunk %d of %s: %d of %d bytes (torn or truncated spill file)",
		e.Chunk, e.Path, e.Got, e.Want)
}

// Unwrap lets errors.Is see through to the underlying failure, or to
// the ErrShortRead sentinel for torn reads.
func (e *ReadError) Unwrap() error {
	if e.Err != nil {
		return e.Err
	}
	return ErrShortRead
}

// Config parameterizes Open.
type Config struct {
	// Dir is the parent directory; the store creates (and on Close
	// removes) a private subdirectory under it, so concurrent stores
	// can share a spill directory without filename coordination.
	Dir string
	// ChunkBytes is the aligned I/O unit; 0 means DefaultChunkBytes.
	// Must be a positive multiple of CellBytes.
	ChunkBytes int
	// CacheBytes is the page-cache budget; the chunk count is
	// CacheBytes/ChunkBytes, floored at MinCacheChunks.
	CacheBytes int64
}

type pageKey struct {
	level int
	gen   uint64
	chunk int
}

type page struct {
	key        pageKey
	buf        []byte
	prev, next *page
}

// Store is one spill store: a directory of level files plus the shared
// page cache and I/O counters.
type Store struct {
	dir        string
	chunkBytes int
	capacity   int // page-cache budget in chunks

	table      map[pageKey]*page
	head, tail *page // LRU order; head is most recently used

	levels  map[int]*Level
	nextGen uint64

	// Exclusive-mode counters; plain because mutation is single-
	// threaded (the dam.Store convention).
	reads, writes, hits uint64

	// Shared-read epoch state, mirroring dam.Store: depth-counted
	// brackets, atomic read/hit counters for the frozen cache.
	sharedDepth atomic.Int64
	sharedReads atomic.Uint64
	sharedHits  atomic.Uint64

	// chunkPool recycles the transient buffers shared-epoch misses read
	// into, so the bracketed search path does not allocate per miss.
	chunkPool sync.Pool
}

// Level is the file-backed occupied window of one COLA level: Cells()
// fixed-size cells, chunk-aligned and padded, written once by a
// LevelWriter and immutable thereafter.
type Level struct {
	s      *Store
	id     int
	gen    uint64
	f      *os.File
	path   string
	cells  int
	chunks int
}

// Open creates a store rooted in a fresh private subdirectory of
// cfg.Dir.
func Open(cfg Config) (*Store, error) {
	chunk := cfg.ChunkBytes
	if chunk == 0 {
		chunk = DefaultChunkBytes
	}
	if chunk < CellBytes || chunk%CellBytes != 0 {
		return nil, fmt.Errorf("extmem: chunk size %d is not a positive multiple of the %d-byte cell", chunk, CellBytes)
	}
	capacity := int(cfg.CacheBytes / int64(chunk))
	if capacity < MinCacheChunks {
		capacity = MinCacheChunks
	}
	dir, err := os.MkdirTemp(cfg.Dir, "extmem-*")
	if err != nil {
		return nil, fmt.Errorf("extmem: create spill directory: %w", err)
	}
	s := &Store{
		dir:        dir,
		chunkBytes: chunk,
		capacity:   capacity,
		table:      make(map[pageKey]*page),
		levels:     make(map[int]*Level),
	}
	s.chunkPool.New = func() any {
		b := make([]byte, chunk)
		return &b
	}
	return s, nil
}

// Dir returns the store's private spill directory.
func (s *Store) Dir() string { return s.dir }

// ChunkBytes returns the aligned I/O unit.
func (s *Store) ChunkBytes() int { return s.chunkBytes }

// CacheChunks returns the page-cache budget in chunks.
func (s *Store) CacheChunks() int { return s.capacity }

// Close closes every level file and removes the spill directory. The
// store is unusable afterwards.
func (s *Store) Close() error {
	var first error
	for _, l := range s.levels {
		if err := l.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.levels = map[int]*Level{}
	s.dropCacheLocked()
	if err := os.RemoveAll(s.dir); err != nil && first == nil {
		first = err
	}
	return first
}

// ChunkReads reports aligned chunk reads performed so far (cache misses
// plus sequential reader traffic; shared-epoch misses included).
func (s *Store) ChunkReads() uint64 { return s.reads + s.sharedReads.Load() }

// ChunkWrites reports aligned chunk writes performed so far (all from
// LevelWriter streams; levels are never updated in place).
func (s *Store) ChunkWrites() uint64 { return s.writes }

// CacheHits reports page-cache hits (shared-epoch hits included).
func (s *Store) CacheHits() uint64 { return s.hits + s.sharedHits.Load() }

// ResetCounters zeroes the I/O counters; resident pages and files are
// untouched (the dam.Store convention).
func (s *Store) ResetCounters() {
	s.reads, s.writes, s.hits = 0, 0, 0
	s.sharedReads.Store(0)
	s.sharedHits.Store(0)
}

// DropCache empties the page cache without touching counters or files,
// so a measurement can start cold.
func (s *Store) DropCache() {
	if s.sharedDepth.Load() != 0 {
		panic("extmem: DropCache during a shared-read epoch")
	}
	s.dropCacheLocked()
}

func (s *Store) dropCacheLocked() {
	s.table = make(map[pageKey]*page)
	s.head, s.tail = nil, nil
}

// BeginSharedReads freezes the page cache for a concurrent-read epoch,
// mirroring dam.Store.BeginSharedReads: until the matching End, any
// number of goroutines may call ReadCell / Reader.Next concurrently.
// Resident chunks are served without recency updates; misses read
// around the cache (the file handle is safe for concurrent pread) and
// are counted atomically; writes panic. Brackets nest.
func (s *Store) BeginSharedReads() {
	if s == nil {
		return
	}
	s.sharedDepth.Add(1)
}

// EndSharedReads closes the bracket opened by BeginSharedReads.
func (s *Store) EndSharedReads() {
	if s == nil {
		return
	}
	if s.sharedDepth.Add(-1) < 0 {
		panic("extmem: EndSharedReads without BeginSharedReads")
	}
}

// FileStats reports the number of spill files currently on disk and
// their total size in bytes — the harness's "did it actually spill"
// evidence.
func (s *Store) FileStats() (files int, bytes int64, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			return 0, 0, err
		}
		files++
		bytes += info.Size()
	}
	return files, bytes, nil
}

// Cells reports the number of cells stored in the level.
func (l *Level) Cells() int { return l.cells }

// ReadCell copies cell i into dst (len CellBytes) through the page
// cache: the actual-I/O analogue of one DAM-charged probe. Outside an
// epoch a miss loads and caches the cell's aligned chunk, evicting the
// LRU chunk at capacity; inside an epoch the frozen-cache rules above
// apply. Out-of-range indices panic (a structural bug, like slice
// bounds); I/O failures return the typed *ReadError.
func (l *Level) ReadCell(i int, dst []byte) error {
	if i < 0 || i >= l.cells {
		panic(fmt.Sprintf("extmem: cell %d out of range [0, %d)", i, l.cells))
	}
	if len(dst) != CellBytes {
		panic("extmem: ReadCell destination must be exactly one cell")
	}
	s := l.s
	cellsPerChunk := s.chunkBytes / CellBytes
	chunk := i / cellsPerChunk
	off := (i % cellsPerChunk) * CellBytes
	key := pageKey{level: l.id, gen: l.gen, chunk: chunk}

	if s.sharedDepth.Load() > 0 {
		if p, ok := s.table[key]; ok {
			copy(dst, p.buf[off:off+CellBytes])
			s.sharedHits.Add(1)
			return nil
		}
		bufp := s.chunkPool.Get().(*[]byte)
		err := l.readChunk(chunk, *bufp)
		if err == nil {
			copy(dst, (*bufp)[off:off+CellBytes])
		}
		s.chunkPool.Put(bufp)
		if err != nil {
			// The error wraps path/offset metadata, never the pooled buffer,
			// which scratchescape can see for itself — no waiver needed.
			return err
		}
		s.sharedReads.Add(1)
		return nil
	}

	if p, ok := s.table[key]; ok {
		s.moveToFront(p)
		s.hits++
		copy(dst, p.buf[off:off+CellBytes])
		return nil
	}
	p := s.takePage(key)
	if err := l.readChunk(chunk, p.buf); err != nil {
		// The page was never filled; do not cache it.
		return err
	}
	s.table[key] = p
	s.pushFront(p)
	s.reads++
	copy(dst, p.buf[off:off+CellBytes])
	return nil
}

// readChunk preads one whole aligned chunk into buf; anything less is a
// typed failure.
func (l *Level) readChunk(chunk int, buf []byte) error {
	want := l.s.chunkBytes
	got, err := l.f.ReadAt(buf[:want], int64(chunk)*int64(want))
	if got == want {
		return nil
	}
	if err != nil && err != io.EOF {
		return &ReadError{Path: l.path, Chunk: chunk, Got: got, Want: want, Err: err}
	}
	return &ReadError{Path: l.path, Chunk: chunk, Got: got, Want: want}
}

// takePage returns a page to fill: the evicted LRU tail when the cache
// is at capacity (pages are never dirty — levels are written once by
// LevelWriter streams — so eviction never writes back), a fresh page
// otherwise.
func (s *Store) takePage(key pageKey) *page {
	if len(s.table) >= s.capacity && s.tail != nil {
		p := s.tail
		s.unlink(p)
		delete(s.table, p.key)
		p.key = key
		return p
	}
	return &page{key: key, buf: make([]byte, s.chunkBytes)}
}

func (s *Store) pushFront(p *page) {
	p.prev = nil
	p.next = s.head
	if s.head != nil {
		s.head.prev = p
	}
	s.head = p
	if s.tail == nil {
		s.tail = p
	}
}

func (s *Store) unlink(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		s.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		s.tail = p.prev
	}
	p.prev, p.next = nil, nil
}

func (s *Store) moveToFront(p *page) {
	if s.head == p {
		return
	}
	s.unlink(p)
	s.pushFront(p)
}

// invalidateLevel drops every cached page of one level generation
// (called when a merge or removal replaces the level's file).
func (s *Store) invalidateLevel(id int, gen uint64) {
	for key, p := range s.table {
		if key.level == id && key.gen == gen {
			s.unlink(p)
			delete(s.table, key)
		}
	}
}

// RemoveLevel deletes the named level's file and cached pages; a level
// id with no file is a no-op. Panics during a shared-read epoch.
func (s *Store) RemoveLevel(id int) error {
	if s.sharedDepth.Load() != 0 {
		panic("extmem: RemoveLevel during a shared-read epoch")
	}
	l, ok := s.levels[id]
	if !ok {
		return nil
	}
	delete(s.levels, id)
	s.invalidateLevel(id, l.gen)
	err := l.f.Close()
	if rerr := os.Remove(l.path); err == nil {
		err = rerr
	}
	return err
}

// Reader streams a level's cells sequentially through a private chunk
// buffer: one counted aligned read per chunk, nothing cached (the merge
// ladder and the snapshot codec must not evict the search path's
// working set — see the package comment).
type Reader struct {
	l        *Level
	next     int // next cell index
	buf      []byte
	bufChunk int // chunk index currently in buf; -1 when empty
}

// NewReader returns a sequential reader positioned at cell start.
func (l *Level) NewReader(start int) *Reader {
	if start < 0 || start > l.cells {
		panic(fmt.Sprintf("extmem: reader start %d out of range [0, %d]", start, l.cells))
	}
	return &Reader{l: l, next: start, buf: make([]byte, l.s.chunkBytes), bufChunk: -1}
}

// Remaining reports how many cells are left to read.
func (r *Reader) Remaining() int { return r.l.cells - r.next }

// Next copies the next cell into dst (len CellBytes) and advances.
// Calling past the end panics; the caller tracks Remaining.
func (r *Reader) Next(dst []byte) error {
	if r.next >= r.l.cells {
		panic("extmem: Reader.Next past the end of the level")
	}
	if len(dst) != CellBytes {
		panic("extmem: Reader.Next destination must be exactly one cell")
	}
	cellsPerChunk := r.l.s.chunkBytes / CellBytes
	chunk := r.next / cellsPerChunk
	if chunk != r.bufChunk {
		if err := r.l.readChunk(chunk, r.buf); err != nil {
			return err
		}
		r.bufChunk = chunk
		if r.l.s.sharedDepth.Load() > 0 {
			r.l.s.sharedReads.Add(1)
		} else {
			r.l.s.reads++
		}
	}
	off := (r.next % cellsPerChunk) * CellBytes
	copy(dst, r.buf[off:off+CellBytes])
	r.next++
	return nil
}

// LevelWriter streams a new image of one level: cells are appended in
// order, buffered into whole chunks, and written with aligned pwrites
// to a temp file that Commit atomically renames into place (replacing
// and invalidating any previous image of the level). Levels are only
// ever produced this way — a complete sequential rewrite — which is
// exactly the COLA merge discipline the paper's analysis charges for.
type LevelWriter struct {
	s     *Store
	id    int
	gen   uint64
	f     *os.File
	tmp   string
	buf   []byte
	fill  int // bytes buffered in buf
	cells int
	chunk int // next chunk index to write
	done  bool
}

// NewLevelWriter starts a replacement image for level id. Panics during
// a shared-read epoch (writes are excluded by the bracket contract).
func (s *Store) NewLevelWriter(id int) (*LevelWriter, error) {
	if s.sharedDepth.Load() != 0 {
		panic("extmem: NewLevelWriter during a shared-read epoch")
	}
	s.nextGen++
	gen := s.nextGen
	tmp := filepath.Join(s.dir, fmt.Sprintf("lvl%03d.g%06d.tmp", id, gen))
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("extmem: create level %d image: %w", id, err)
	}
	return &LevelWriter{s: s, id: id, gen: gen, f: f, tmp: tmp, buf: make([]byte, s.chunkBytes)}, nil
}

// Append adds one cell (len CellBytes) to the image.
func (w *LevelWriter) Append(cell []byte) error {
	if w.done {
		panic("extmem: Append after Commit/Abort")
	}
	if len(cell) != CellBytes {
		panic("extmem: Append cell must be exactly CellBytes")
	}
	copy(w.buf[w.fill:], cell)
	w.fill += CellBytes
	w.cells++
	if w.fill == len(w.buf) {
		return w.flushChunk()
	}
	return nil
}

func (w *LevelWriter) flushChunk() error {
	if w.fill == 0 {
		return nil
	}
	// Pad the final partial chunk so every chunk on disk is whole and
	// aligned; a shorter-than-chunk read is then always a torn file.
	for i := w.fill; i < len(w.buf); i++ {
		w.buf[i] = 0
	}
	if _, err := w.f.WriteAt(w.buf, int64(w.chunk)*int64(len(w.buf))); err != nil {
		return fmt.Errorf("extmem: write chunk %d of level %d: %w", w.chunk, w.id, err)
	}
	w.s.writes++
	w.chunk++
	w.fill = 0
	return nil
}

// Commit pads and flushes the final chunk, renames the image into
// place, and installs it as the level's current file (closing and
// deleting the previous image and invalidating its cached pages). The
// returned Level is immutable.
func (w *LevelWriter) Commit() (*Level, error) {
	if w.done {
		panic("extmem: Commit after Commit/Abort")
	}
	w.done = true
	if err := w.flushChunk(); err != nil {
		w.discard()
		return nil, err
	}
	// Reopen read-only under the final name. Spill files are ephemeral
	// per-instance scratch (durability is the snapshot/WAL subsystem's
	// job), so no fsync: a crash loses only a structure that was
	// already gone.
	if err := w.f.Close(); err != nil {
		w.discard()
		return nil, fmt.Errorf("extmem: close level %d image: %w", w.id, err)
	}
	final := w.tmp[:len(w.tmp)-len(".tmp")] + ".ext"
	if err := os.Rename(w.tmp, final); err != nil {
		os.Remove(w.tmp)
		return nil, fmt.Errorf("extmem: install level %d image: %w", w.id, err)
	}
	f, err := os.Open(final)
	if err != nil {
		os.Remove(final)
		return nil, fmt.Errorf("extmem: reopen level %d image: %w", w.id, err)
	}
	if old, ok := w.s.levels[w.id]; ok {
		w.s.invalidateLevel(w.id, old.gen)
		//repro:allow durerr old read-only image teardown; its data was fully superseded by the committed rename
		old.f.Close()
		os.Remove(old.path)
	}
	l := &Level{s: w.s, id: w.id, gen: w.gen, f: f, path: final, cells: w.cells, chunks: w.chunk}
	w.s.levels[w.id] = l
	return l, nil
}

// Abort discards the image without installing it.
func (w *LevelWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.discard()
}

func (w *LevelWriter) discard() {
	//repro:allow durerr teardown of an image that is being thrown away; nothing durable depends on it
	w.f.Close()
	os.Remove(w.tmp)
}
