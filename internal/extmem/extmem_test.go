package extmem

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// openTest returns a store in a test temp dir with a tiny cache.
func openTest(t *testing.T, cacheChunks int) *Store {
	t.Helper()
	s, err := Open(Config{Dir: t.TempDir(), ChunkBytes: 128, CacheBytes: int64(cacheChunks) * 128})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// writeLevel streams n cells into level id; cell i holds i in its first
// word.
func writeLevel(t *testing.T, s *Store, id, n int) *Level {
	t.Helper()
	w, err := s.NewLevelWriter(id)
	if err != nil {
		t.Fatalf("NewLevelWriter: %v", err)
	}
	var cell [CellBytes]byte
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(cell[:8], uint64(i))
		if err := w.Append(cell[:]); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	l, err := w.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	return l
}

func cellValue(t *testing.T, l *Level, i int) uint64 {
	t.Helper()
	var cell [CellBytes]byte
	if err := l.ReadCell(i, cell[:]); err != nil {
		t.Fatalf("ReadCell(%d): %v", i, err)
	}
	return binary.LittleEndian.Uint64(cell[:8])
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := openTest(t, 4)
	// 37 cells of 32 bytes in 128-byte chunks: 4 cells per chunk, a
	// padded final chunk.
	l := writeLevel(t, s, 1, 37)
	if l.Cells() != 37 {
		t.Fatalf("Cells = %d, want 37", l.Cells())
	}
	for i := 0; i < 37; i++ {
		if got := cellValue(t, l, i); got != uint64(i) {
			t.Fatalf("cell %d = %d", i, got)
		}
	}
	if s.ChunkWrites() != 10 { // ceil(37/4)
		t.Fatalf("ChunkWrites = %d, want 10", s.ChunkWrites())
	}
	// A sequential reader sees the same cells, one read per chunk.
	r := l.NewReader(0)
	reads0 := s.ChunkReads()
	var cell [CellBytes]byte
	for i := 0; i < 37; i++ {
		if err := r.Next(cell[:]); err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if got := binary.LittleEndian.Uint64(cell[:8]); got != uint64(i) {
			t.Fatalf("reader cell %d = %d", i, got)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
	if got := s.ChunkReads() - reads0; got != 10 {
		t.Fatalf("sequential pass read %d chunks, want 10", got)
	}
}

func TestPageCacheLRU(t *testing.T) {
	s := openTest(t, 4)
	l := writeLevel(t, s, 0, 64) // 16 chunks of 4 cells
	s.ResetCounters()

	// Touch chunks 0..3: four misses fill the cache.
	for c := 0; c < 4; c++ {
		cellValue(t, l, c*4)
	}
	if s.ChunkReads() != 4 || s.CacheHits() != 0 {
		t.Fatalf("after fill: reads=%d hits=%d", s.ChunkReads(), s.CacheHits())
	}
	// Re-touching them is free.
	for c := 0; c < 4; c++ {
		cellValue(t, l, c*4+1)
	}
	if s.ChunkReads() != 4 || s.CacheHits() != 4 {
		t.Fatalf("after re-touch: reads=%d hits=%d", s.ChunkReads(), s.CacheHits())
	}
	// Chunk 4 evicts the LRU chunk (0); chunk 1 is still resident,
	// chunk 0 misses again.
	cellValue(t, l, 16)
	cellValue(t, l, 4) // hit
	cellValue(t, l, 0) // miss
	if s.ChunkReads() != 6 || s.CacheHits() != 5 {
		t.Fatalf("after eviction: reads=%d hits=%d", s.ChunkReads(), s.CacheHits())
	}
}

func TestShortReadSurfacesTypedError(t *testing.T) {
	s := openTest(t, 4)
	l := writeLevel(t, s, 2, 16)
	// Tear the file: truncate to half a chunk.
	if err := os.Truncate(l.path, int64(s.ChunkBytes())/2); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	var cell [CellBytes]byte
	err := l.ReadCell(8, cell[:]) // chunk 2, past the torn end
	if err == nil {
		t.Fatal("torn read returned nil error (silent zero block)")
	}
	if !errors.Is(err, ErrShortRead) {
		t.Fatalf("torn read error %v does not match ErrShortRead", err)
	}
	var re *ReadError
	if !errors.As(err, &re) {
		t.Fatalf("torn read error %T is not *ReadError", err)
	}
	if re.Chunk != 2 || re.Got != 0 || re.Want != s.ChunkBytes() {
		t.Fatalf("ReadError = %+v", re)
	}
	// The torn FIRST chunk reads short, not zero-filled.
	err = l.ReadCell(0, cell[:])
	if !errors.Is(err, ErrShortRead) {
		t.Fatalf("partial chunk read error %v does not match ErrShortRead", err)
	}
	var re2 *ReadError
	if !errors.As(err, &re2) || re2.Got != s.ChunkBytes()/2 {
		t.Fatalf("partial chunk ReadError = %v", err)
	}
	// Sequential readers surface the same typed failure.
	r := l.NewReader(0)
	if err := r.Next(cell[:]); !errors.Is(err, ErrShortRead) {
		t.Fatalf("reader over torn file: %v", err)
	}
}

func TestCommitReplacesAndInvalidates(t *testing.T) {
	s := openTest(t, 8)
	l1 := writeLevel(t, s, 5, 8)
	if got := cellValue(t, l1, 3); got != 3 {
		t.Fatalf("cell 3 = %d", got)
	}
	// Replace the level with a new image holding different values.
	w, err := s.NewLevelWriter(5)
	if err != nil {
		t.Fatalf("NewLevelWriter: %v", err)
	}
	var cell [CellBytes]byte
	for i := 0; i < 8; i++ {
		binary.LittleEndian.PutUint64(cell[:8], uint64(100+i))
		if err := w.Append(cell[:]); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	l2, err := w.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	// Stale pages of the old image must not serve the new level.
	if got := cellValue(t, l2, 3); got != 103 {
		t.Fatalf("replaced cell 3 = %d, want 103", got)
	}
	// Exactly one file remains for the level.
	files, bytes, err := s.FileStats()
	if err != nil {
		t.Fatalf("FileStats: %v", err)
	}
	if files != 1 || bytes != int64(2*s.ChunkBytes()) {
		t.Fatalf("FileStats = %d files, %d bytes", files, bytes)
	}
}

func TestRemoveLevel(t *testing.T) {
	s := openTest(t, 8)
	writeLevel(t, s, 1, 8)
	writeLevel(t, s, 2, 8)
	if err := s.RemoveLevel(1); err != nil {
		t.Fatalf("RemoveLevel: %v", err)
	}
	if err := s.RemoveLevel(9); err != nil { // absent id is a no-op
		t.Fatalf("RemoveLevel(absent): %v", err)
	}
	files, _, err := s.FileStats()
	if err != nil {
		t.Fatalf("FileStats: %v", err)
	}
	if files != 1 {
		t.Fatalf("%d files after RemoveLevel, want 1", files)
	}
}

func TestAbortLeavesNoFile(t *testing.T) {
	s := openTest(t, 4)
	w, err := s.NewLevelWriter(0)
	if err != nil {
		t.Fatalf("NewLevelWriter: %v", err)
	}
	var cell [CellBytes]byte
	if err := w.Append(cell[:]); err != nil {
		t.Fatalf("Append: %v", err)
	}
	w.Abort()
	files, _, err := s.FileStats()
	if err != nil {
		t.Fatalf("FileStats: %v", err)
	}
	if files != 0 {
		t.Fatalf("%d files after Abort, want 0", files)
	}
}

func TestWriteDuringSharedEpochPanics(t *testing.T) {
	s := openTest(t, 4)
	s.BeginSharedReads()
	defer s.EndSharedReads()
	defer func() {
		if recover() == nil {
			t.Fatal("NewLevelWriter inside a shared-read epoch did not panic")
		}
	}()
	s.NewLevelWriter(0) //nolint:errcheck // must panic first
}

func TestUnmatchedEndSharedReadsPanics(t *testing.T) {
	s := openTest(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("unmatched EndSharedReads did not panic")
		}
	}()
	s.EndSharedReads()
}

// TestSharedReadStress hammers the frozen cache from many goroutines
// under -race: resident chunks are served concurrently without LRU
// mutation, misses read around the cache, and the atomic counters add
// up. The cache is warmed with a known subset first so both paths run.
func TestSharedReadStress(t *testing.T) {
	s := openTest(t, 4)
	const cells = 256
	l := writeLevel(t, s, 0, cells)
	// Warm chunks 0..3.
	for c := 0; c < 4; c++ {
		cellValue(t, l, c*4)
	}
	s.ResetCounters()

	s.BeginSharedReads()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			var cell [CellBytes]byte
			r := l.NewReader(0)
			x := uint64(seed)*2654435761 + 1
			for i := 0; i < 2000; i++ {
				x = x*6364136223846793005 + 1442695040888963407
				idx := int(x>>33) % cells
				if err := l.ReadCell(idx, cell[:]); err != nil {
					t.Errorf("ReadCell(%d): %v", idx, err)
					return
				}
				if got := binary.LittleEndian.Uint64(cell[:8]); got != uint64(idx) {
					t.Errorf("cell %d = %d during epoch", idx, got)
					return
				}
				// Interleave some sequential traffic too.
				if r.Remaining() > 0 && i%17 == 0 {
					if err := r.Next(cell[:]); err != nil {
						t.Errorf("reader: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	s.EndSharedReads()

	if s.ChunkReads() == 0 || s.CacheHits() == 0 {
		t.Fatalf("stress saw reads=%d hits=%d; both paths must run", s.ChunkReads(), s.CacheHits())
	}
	// The frozen cache still holds exactly the warmed chunks.
	if len(s.table) != 4 {
		t.Fatalf("epoch mutated the resident set: %d pages", len(s.table))
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{Dir: t.TempDir(), ChunkBytes: 100}); err == nil {
		t.Fatal("accepted a chunk size that is not a multiple of the cell size")
	}
	if _, err := Open(Config{Dir: filepath.Join(t.TempDir(), "missing", "deep")}); err == nil {
		t.Fatal("accepted a nonexistent parent directory")
	}
	// A tiny cache budget is floored, not rejected.
	s, err := Open(Config{Dir: t.TempDir(), CacheBytes: 1})
	if err != nil {
		t.Fatalf("Open with tiny cache: %v", err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	if s.CacheChunks() < MinCacheChunks {
		t.Fatalf("CacheChunks = %d, floor is %d", s.CacheChunks(), MinCacheChunks)
	}
	if !strings.HasPrefix(filepath.Base(s.Dir()), "extmem-") {
		t.Fatalf("spill dir %q not namespaced", s.Dir())
	}
}
