// Package core defines the element format and the dictionary interfaces
// shared by every streaming-B-tree variant in this repository.
//
// The paper ("Cache-Oblivious Streaming B-trees", Bender et al., SPAA 2007)
// evaluates dictionaries over 64-bit keys and 64-bit values padded to
// 32 bytes; Element mirrors that format and ElementBytes is the padded
// size used by the DAM-model cost accounting.
package core

import "fmt"

// Element is a key/value pair. Keys and values are 64 bits each, matching
// the element format of the paper's Section 4 implementation study.
type Element struct {
	Key   uint64
	Value uint64
}

// ElementBytes is the on-"disk" size charged per element by the DAM cost
// model. The paper pads each 16-byte element to 32 bytes; we charge the
// same so block-transfer counts are comparable.
const ElementBytes = 32

// String implements fmt.Stringer.
func (e Element) String() string { return fmt.Sprintf("{%d:%d}", e.Key, e.Value) }

// Dictionary is the common interface implemented by every structure in
// this repository: the COLA family, the shuttle tree, the B-tree, the
// buffered repository tree, and the cache-aware lookahead array.
type Dictionary interface {
	// Insert adds key with the given value. Inserting a key that is
	// already present replaces its value (update semantics).
	Insert(key, value uint64)

	// Search returns the value bound to key and whether it is present.
	Search(key uint64) (uint64, bool)

	// Range calls fn for each element with lo <= key <= hi in ascending
	// key order. Iteration stops early if fn returns false.
	Range(lo, hi uint64, fn func(Element) bool)

	// Len reports the number of live keys.
	Len() int
}

// Deleter is implemented by dictionaries that support deletion. The paper
// itself only analyzes inserts, searches, and range queries; deletion is
// a documented extension (tombstones in the lookahead-array family,
// ordinary rebalancing deletes in the B-tree).
type Deleter interface {
	// Delete removes key, reporting whether it was present.
	Delete(key uint64) bool
}

// Stats exposes per-structure operation counters useful in experiments.
type Stats struct {
	Inserts  uint64 // calls to Insert
	Searches uint64 // calls to Search
	Deletes  uint64 // calls to Delete
	Moves    uint64 // element moves performed by restructuring (merges, splits, rebalances)
	MaxMoves uint64 // maximum element moves performed by any single update
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Inserts += other.Inserts
	s.Searches += other.Searches
	s.Deletes += other.Deletes
	s.Moves += other.Moves
	if other.MaxMoves > s.MaxMoves {
		s.MaxMoves = other.MaxMoves
	}
}

// Statser is implemented by dictionaries that track operation statistics.
type Statser interface {
	Stats() Stats
}

// TransferCounter is implemented by dictionaries that own their DAM
// store(s) — rather than charging a caller-provided Space — and can
// therefore report their aggregate block-transfer count directly (e.g.
// the sharded map built with per-shard stores).
type TransferCounter interface {
	Transfers() uint64
}

// ActualTransferCounter is implemented by dictionaries backed by a real
// block store (disk-resident levels, not just a DAM cost model) that can
// report the chunk reads and writes that actually hit the backing files
// — the measured side of the predicted-vs-actual comparison the DAM
// model makes testable. Counts are cumulative; pair with a reset or a
// before/after delta for per-phase measurements.
type ActualTransferCounter interface {
	ActualTransfers() (reads, writes uint64)
}
