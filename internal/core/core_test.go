package core

import "testing"

func TestElementString(t *testing.T) {
	e := Element{Key: 3, Value: 7}
	if got := e.String(); got != "{3:7}" {
		t.Fatalf("String = %q", got)
	}
}

func TestElementBytesMatchesPaper(t *testing.T) {
	// Section 4: 64-bit keys and values padded to 32 bytes.
	if ElementBytes != 32 {
		t.Fatalf("ElementBytes = %d, want 32", ElementBytes)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Inserts: 1, Searches: 2, Deletes: 3, Moves: 4, MaxMoves: 10}
	b := Stats{Inserts: 10, Searches: 20, Deletes: 30, Moves: 40, MaxMoves: 5}
	a.Add(b)
	want := Stats{Inserts: 11, Searches: 22, Deletes: 33, Moves: 44, MaxMoves: 10}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
	// MaxMoves takes the larger side.
	c := Stats{MaxMoves: 1}
	c.Add(Stats{MaxMoves: 9})
	if c.MaxMoves != 9 {
		t.Fatalf("MaxMoves = %d, want 9", c.MaxMoves)
	}
}
