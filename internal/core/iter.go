package core

import "iter"

// All returns a Go 1.23 range-over-func iterator over every key/value
// pair of d in ascending key order, derived from Dictionary.Range:
//
//	for k, v := range core.All(d) { ... }
//
// Iteration semantics are those of the underlying Range: breaking out
// of the loop stops the scan early.
func All(d Dictionary) iter.Seq2[uint64, uint64] {
	return Ascend(d, 0, ^uint64(0))
}

// Ascend returns an iterator over the key/value pairs of d with
// lo <= key <= hi in ascending key order.
func Ascend(d Dictionary, lo, hi uint64) iter.Seq2[uint64, uint64] {
	return func(yield func(uint64, uint64) bool) {
		d.Range(lo, hi, func(e Element) bool {
			return yield(e.Key, e.Value)
		})
	}
}

// Elements returns an iterator over the Elements of d with
// lo <= key <= hi in ascending key order, for callers that want the
// paired form (e.g. to feed another structure's InsertBatch).
func Elements(d Dictionary, lo, hi uint64) iter.Seq[Element] {
	return func(yield func(Element) bool) {
		d.Range(lo, hi, yield)
	}
}
