package core

// BatchInserter is implemented by dictionaries with a native batch
// ingestion path — typically one that pre-sorts or pre-groups the batch
// so restructuring work (merges, lock acquisitions) is amortized over
// the whole slice instead of paid per element. Semantics match a
// sequential Insert loop over the slice: duplicate keys apply in slice
// order, so the last occurrence of a key wins.
type BatchInserter interface {
	// InsertBatch inserts every element of the slice. Implementations
	// must not retain or mutate the slice.
	InsertBatch(elems []Element)
}

// InsertBatch inserts every element of the slice into d, using the
// structure's native BatchInserter fast path when it has one and a
// plain Insert loop otherwise. It is the generic adapter callers should
// reach for: batch-aware structures get their amortization, everything
// else still works.
func InsertBatch(d Dictionary, elems []Element) {
	if b, ok := d.(BatchInserter); ok {
		b.InsertBatch(elems)
		return
	}
	for _, e := range elems {
		d.Insert(e.Key, e.Value)
	}
}
