package core

// Persistence capability shared by every structure in the repository.
//
// A structure that can be saved and restored implements Snapshotter: its
// WriteTo emits a self-delimiting binary payload (each structure owns a
// 4-byte payload magic and a payload version) and its ReadFrom rebuilds
// an EMPTY structure of the same configuration from that payload. The
// kind-agnostic container around these payloads — the header naming the
// registry kind and options, plus CRC framing — lives in internal/snap;
// structures never see it.
//
// Two codec families exist:
//
//   - Physical: the byte-exact level layout is persisted (GCOLA), so a
//     restored structure reproduces the original's transfer counts under
//     identical DAM parameters.
//   - Logical: the live key/value set is persisted in ascending key
//     order via WriteElements/ReadElements below, and ReadFrom rebuilds
//     by re-inserting. Contents and query results round-trip exactly;
//     internal layout (and therefore future restructuring schedules and
//     operation counters) start fresh.
//
// Logical WriteTo walks the structure through its ordinary Range path,
// so on a DAM-charged structure the scan is charged like any other read;
// snapshot with accounting disabled (or reset counters afterwards) when
// transfer counts matter.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Snapshotter is implemented by dictionaries that can persist themselves
// to a byte stream and be restored from one. ReadFrom must be called on
// an empty structure built with the same options as the saved one.
type Snapshotter interface {
	io.WriterTo
	io.ReaderFrom
}

// Typed decode failures, shared by every codec in the repository (the
// structures' payload decoders, the snap container, the WAL). Wrapped
// errors carry context; match with errors.Is.
var (
	// ErrBadMagic reports that a stream does not start with the expected
	// format identifier — almost always a file that is not a snapshot at
	// all, or a payload fed to the wrong structure.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrBadVersion reports a well-formed stream written by a format
	// version this build does not understand.
	ErrBadVersion = errors.New("snapshot: unsupported format version")
	// ErrCorrupt reports a stream that identifies correctly but whose
	// contents are truncated or internally inconsistent.
	ErrCorrupt = errors.New("snapshot: corrupt data")
)

// elementStreamVersion versions the shared logical payload layout.
const elementStreamVersion = 1

// maxElementPrealloc bounds how much ReadElements allocates up front on
// the strength of an (unverified) count field; beyond it the slice grows
// only as data actually arrives, so a corrupt count fails with
// ErrCorrupt instead of an enormous allocation.
const maxElementPrealloc = 1 << 16

// WriteElements writes the shared logical snapshot payload:
//
//	magic (4 bytes) | version u32 | count u64 | count × (key u64 | value u64)
//
// all little-endian. magic must be exactly 4 bytes and is the caller's
// per-structure payload identifier.
func WriteElements(w io.Writer, magic string, elems []Element) (int64, error) {
	if len(magic) != 4 {
		panic("core: payload magic must be exactly 4 bytes")
	}
	bw := bufio.NewWriter(w)
	var scratch [16]byte
	bw.WriteString(magic)
	binary.LittleEndian.PutUint32(scratch[:4], elementStreamVersion)
	bw.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:8], uint64(len(elems)))
	bw.Write(scratch[:8])
	for _, e := range elems {
		binary.LittleEndian.PutUint64(scratch[0:8], e.Key)
		binary.LittleEndian.PutUint64(scratch[8:16], e.Value)
		bw.Write(scratch[:16])
	}
	n := int64(4+4+8) + int64(len(elems))*16
	return n, bw.Flush()
}

// ReadElements decodes a WriteElements payload, verifying the magic and
// version. It returns the decoded elements and the logical payload size.
// Failures are wrapped ErrBadMagic / ErrBadVersion / ErrCorrupt; the
// reader may have been over-consumed on error, but never on success
// beyond internal buffering (callers composing payloads should hand
// ReadFrom an exact in-memory section, as internal/snap does).
func ReadElements(r io.Reader, magic string) ([]Element, int64, error) {
	if len(magic) != 4 {
		panic("core: payload magic must be exactly 4 bytes")
	}
	br := bufio.NewReader(r)
	var head [16]byte
	if _, err := io.ReadFull(br, head[:16]); err != nil {
		return nil, 0, fmt.Errorf("core: payload header: %w", ErrCorrupt)
	}
	if string(head[:4]) != magic {
		return nil, 0, fmt.Errorf("core: payload magic %q, want %q: %w", head[:4], magic, ErrBadMagic)
	}
	if v := binary.LittleEndian.Uint32(head[4:8]); v != elementStreamVersion {
		return nil, 0, fmt.Errorf("core: payload version %d, this build reads %d: %w",
			v, elementStreamVersion, ErrBadVersion)
	}
	count := binary.LittleEndian.Uint64(head[8:16])
	elems := make([]Element, 0, min(count, maxElementPrealloc))
	var cell [16]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, cell[:]); err != nil {
			return nil, 0, fmt.Errorf("core: payload truncated at element %d of %d: %w", i, count, ErrCorrupt)
		}
		elems = append(elems, Element{
			Key:   binary.LittleEndian.Uint64(cell[0:8]),
			Value: binary.LittleEndian.Uint64(cell[8:16]),
		})
	}
	return elems, int64(16) + int64(count)*16, nil
}

// WriteLogicalSnapshot implements a logical-codec WriteTo: the live
// contents of d, collected in ascending key order, as a WriteElements
// payload under the caller's magic.
func WriteLogicalSnapshot(w io.Writer, magic string, d Dictionary) (int64, error) {
	elems := make([]Element, 0, d.Len())
	d.Range(0, ^uint64(0), func(e Element) bool {
		elems = append(elems, e)
		return true
	})
	return WriteElements(w, magic, elems)
}

// ReadLogicalSnapshot implements a logical-codec ReadFrom: it decodes a
// WriteElements payload under the caller's magic and re-inserts every
// element (through the structure's batch fast path when it has one). d
// must be empty; on any error d is left unmodified.
func ReadLogicalSnapshot(r io.Reader, magic string, d Dictionary) (int64, error) {
	if d.Len() != 0 {
		return 0, errors.New("core: snapshot restore into a non-empty structure")
	}
	elems, n, err := ReadElements(r, magic)
	if err != nil {
		return 0, err
	}
	InsertBatch(d, elems)
	return n, nil
}
