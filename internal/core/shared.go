package core

// SharedReader is implemented by dictionaries whose read path — Search
// and Range — is safe for concurrent use by multiple goroutines while a
// shared-read bracket is open, provided no mutation runs concurrently.
// The contract a caller (typically a concurrency wrapper holding an
// RWMutex read lock) must follow:
//
//  1. Acquire read-side exclusion against mutations (e.g. RLock).
//  2. Call BeginSharedReads, run any number of Search/Range calls on
//     this goroutine, call EndSharedReads.
//  3. Release the read-side exclusion only after EndSharedReads.
//
// Brackets nest (wrappers forward them to their inner structure) and
// are cheap — an atomic counter bump on the structure's DAM store, or a
// no-op for structures without one. While at least one bracket is open
// a DAM-charged structure's store freezes LRU recency updates and
// counts misses against the frozen resident set (see dam.Store), which
// is what makes concurrent charging race-free.
//
// Implementing SharedReader is a declaration that the read path mutates
// nothing non-atomically: no plain counters, no per-structure scratch
// reused across calls, no lazy placement on probe paths. Structures
// whose safety is conditional (e.g. the shuttle tree, whose charge path
// places buffers lazily when accounting is on) additionally implement
// SharedReadProber and report the condition honestly; callers must
// consult SharedReads, not the type assertion alone.
type SharedReader interface {
	BeginSharedReads()
	EndSharedReads()
}

// SharedReadProber is the honest capability probe for shared reads.
// Wrappers implement it by forwarding the question to the structure
// they wrap (a sharded map around a non-shared-read inner must answer
// false even though its own methods exist unconditionally), and leaf
// structures with conditional safety implement it to report the
// condition. SharedReads folds both cases.
type SharedReadProber interface {
	SharedReads() bool
}

// SharedReads reports whether d's Search/Range genuinely support the
// shared-read bracket protocol: the prober answers when present (it is
// authoritative — wrappers and conditionally-safe structures implement
// their interfaces unconditionally), otherwise implementing
// SharedReader is the declaration.
func SharedReads(d Dictionary) bool {
	if p, ok := d.(SharedReadProber); ok {
		return p.SharedReads()
	}
	_, ok := d.(SharedReader)
	return ok
}

// AsSharedReader returns the bracket target when d genuinely supports
// shared reads (per SharedReads), or (nil, false) otherwise — the one
// probe concurrency wrappers need at construction time.
func AsSharedReader(d Dictionary) (SharedReader, bool) {
	sr, ok := d.(SharedReader)
	if !ok || !SharedReads(d) {
		return nil, false
	}
	return sr, true
}
