package core

import "strings"

// Caps is the unified capability sheet of a dictionary: one answer per
// optional interface, probed once instead of scattering type assertions
// and ad-hoc Supports() tuples across callers. The registry publishes a
// Caps per kind (the static feature matrix listing tools print) and
// CapsOf answers for a built instance; the two agree by construction —
// for wrapper kinds a static flag means "forwarded when the inner kind
// has it", and the built wrapper's CapsProber answers for the concrete
// (possibly nested) inner.
type Caps struct {
	// Snapshot: implements Snapshotter, so Save/Load round-trip it
	// through the snap container.
	Snapshot bool
	// WAL: mutations are write-ahead logged and recoverable after a
	// crash.
	WAL bool
	// Delete: implements Deleter.
	Delete bool
	// Batch: implements BatchInserter with a native fast path
	// (InsertBatch falls back to an insert loop for everyone else).
	Batch bool
	// Stats: implements Statser with real counters.
	Stats bool
	// SharedReads: Search/Range follow the SharedReader shared-read
	// contract, so the concurrency wrappers serve them under an RWMutex
	// read lock. Kinds whose safety is conditional (the shuttle family:
	// safe only without DAM accounting) leave the static flag unset —
	// the built instance's probe is authoritative there.
	SharedReads bool
}

// String renders the set flags as "snapshot, wal, delete, batch, stats,
// shared-reads" (or "none").
func (c Caps) String() string {
	var parts []string
	if c.Snapshot {
		parts = append(parts, "snapshot")
	}
	if c.WAL {
		parts = append(parts, "wal")
	}
	if c.Delete {
		parts = append(parts, "delete")
	}
	if c.Batch {
		parts = append(parts, "batch")
	}
	if c.Stats {
		parts = append(parts, "stats")
	}
	if c.SharedReads {
		parts = append(parts, "shared-reads")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ", ")
}

// CapsProber is the honest instance-level capability probe, implemented
// by the wrappers (sharded, synchronized, durable): their methods exist
// unconditionally, so type assertions on them always succeed, and Caps
// reports what is genuinely forwarded to the structure they wrap.
type CapsProber interface {
	Caps() Caps
}

// CapsOf reports the capability sheet of a built instance. A CapsProber
// answers for itself (wrappers forward the question to their inner
// structure); for leaf structures the optional interfaces are the
// declaration, with SharedReads folded through the honest SharedReads
// probe (conditionally-safe structures implement SharedReadProber).
func CapsOf(d Dictionary) Caps {
	if p, ok := d.(CapsProber); ok {
		return p.Caps()
	}
	var c Caps
	_, c.Snapshot = d.(Snapshotter)
	_, c.Delete = d.(Deleter)
	_, c.Batch = d.(BatchInserter)
	_, c.Stats = d.(Statser)
	c.SharedReads = SharedReads(d)
	return c
}
