package btree

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/workload"
)

func newSmall() *Tree {
	// Tiny nodes exercise splits, borrows, and merges quickly.
	return New(Options{BlockBytes: 256, LeafCapacity: 4, Fanout: 4})
}

func TestNewDefaults(t *testing.T) {
	tr := New(Options{})
	if tr.opt.BlockBytes != 4096 {
		t.Fatalf("BlockBytes = %d, want 4096", tr.opt.BlockBytes)
	}
	if tr.opt.LeafCapacity != 128 {
		t.Fatalf("LeafCapacity = %d, want 128", tr.opt.LeafCapacity)
	}
	if tr.opt.Fanout != 256 {
		t.Fatalf("Fanout = %d, want 256", tr.opt.Fanout)
	}
}

func TestNewPanicsOnTinyCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(Options{BlockBytes: 16})
}

func TestInsertSearchSequential(t *testing.T) {
	tr := newSmall()
	const n = 1000
	for i := uint64(0); i < n; i++ {
		tr.Insert(i, i*2)
		if tr.Len() != int(i)+1 {
			t.Fatalf("Len = %d, want %d", tr.Len(), i+1)
		}
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tr.Search(i); !ok || v != i*2 {
			t.Fatalf("Search(%d) = (%d,%v)", i, v, ok)
		}
	}
	if _, ok := tr.Search(n + 5); ok {
		t.Fatal("found a missing key")
	}
}

func TestInsertDescendingAndRandom(t *testing.T) {
	for name, seq := range map[string]workload.Sequence{
		"descending": workload.NewDescending(1 << 11),
		"random":     workload.NewRandomUnique(5),
	} {
		tr := newSmall()
		keys := workload.Take(seq, 1<<11)
		for _, k := range keys {
			tr.Insert(k, k^7)
		}
		for _, k := range keys {
			if v, ok := tr.Search(k); !ok || v != k^7 {
				t.Fatalf("%s: Search(%d) = (%d,%v)", name, k, v, ok)
			}
		}
		checkTreeInvariants(t, tr)
	}
}

func TestUpdateSemantics(t *testing.T) {
	tr := newSmall()
	tr.Insert(9, 1)
	tr.Insert(9, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if v, _ := tr.Search(9); v != 2 {
		t.Fatalf("Search(9) = %d, want 2", v)
	}
}

func TestRange(t *testing.T) {
	tr := newSmall()
	for i := uint64(0); i < 500; i += 5 {
		tr.Insert(i, i+1)
	}
	var got []uint64
	tr.Range(17, 53, func(e core.Element) bool {
		got = append(got, e.Key)
		if e.Value != e.Key+1 {
			t.Fatalf("value mismatch at %d", e.Key)
		}
		return true
	})
	want := []uint64{20, 25, 30, 35, 40, 45, 50}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	count := 0
	tr.Range(0, 499, func(core.Element) bool { count++; return count < 4 })
	if count != 4 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestRangeFullScanSorted(t *testing.T) {
	tr := newSmall()
	seq := workload.NewRandomUnique(9)
	keys := workload.Take(seq, 2000)
	for _, k := range keys {
		tr.Insert(k, k)
	}
	sorted := append([]uint64(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := 0
	tr.Range(0, ^uint64(0), func(e core.Element) bool {
		if e.Key != sorted[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, e.Key, sorted[i])
		}
		i++
		return true
	})
	if i != len(sorted) {
		t.Fatalf("scan yielded %d, want %d", i, len(sorted))
	}
}

func TestDelete(t *testing.T) {
	tr := newSmall()
	const n = 1 << 11
	seq := workload.NewRandomUnique(13)
	keys := workload.Take(seq, n)
	for _, k := range keys {
		tr.Insert(k, k)
	}
	// Delete every other key.
	for i := 0; i < n; i += 2 {
		if !tr.Delete(keys[i]) {
			t.Fatalf("Delete(%d) = false", keys[i])
		}
		if tr.Delete(keys[i]) {
			t.Fatalf("second Delete(%d) = true", keys[i])
		}
	}
	checkTreeInvariants(t, tr)
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	for i, k := range keys {
		_, ok := tr.Search(k)
		if i%2 == 0 && ok {
			t.Fatalf("deleted key %d still present", k)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("kept key %d missing", k)
		}
	}
	// Delete the rest, down to empty.
	for i := 1; i < n; i += 2 {
		if !tr.Delete(keys[i]) {
			t.Fatalf("Delete(%d) = false", keys[i])
		}
	}
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Fatalf("Len=%d Height=%d after deleting all", tr.Len(), tr.Height())
	}
	// Structure remains usable.
	tr.Insert(1, 1)
	if v, ok := tr.Search(1); !ok || v != 1 {
		t.Fatalf("insert after emptying: Search = (%d,%v)", v, ok)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := newSmall()
	if tr.Delete(1) {
		t.Fatal("Delete on empty = true")
	}
	tr.Insert(5, 5)
	if tr.Delete(6) {
		t.Fatal("Delete of missing = true")
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := New(Options{BlockBytes: 4096}) // fanout 256, leaf 128
	const n = 1 << 16
	seq := workload.NewRandomUnique(17)
	for i := 0; i < n; i++ {
		k := seq.Next()
		tr.Insert(k, k)
	}
	// 2^16 elements, >=64 per leaf after splits, fanout >=128 effective:
	// height must be tiny.
	if tr.Height() > 4 {
		t.Fatalf("height = %d for N=%d; want <= 4", tr.Height(), n)
	}
}

// TestSearchTransfersLogB verifies the defining B-tree bound: a cold
// search costs about height block transfers.
func TestSearchTransfersLogB(t *testing.T) {
	store := dam.NewStore(4096, 4096*4) // nearly no cache
	tr := New(Options{Space: store.Space("btree")})
	const n = 1 << 15
	seq := workload.NewRandomUnique(19)
	for i := 0; i < n; i++ {
		k := seq.Next()
		tr.Insert(k, k)
	}
	store.DropCache()
	store.ResetCounters()
	const searches = 256
	probe := workload.NewRandomUnique(19)
	for i := 0; i < searches; i++ {
		tr.Search(probe.Next())
	}
	perSearch := float64(store.Transfers()) / searches
	if perSearch > float64(tr.Height())+1 {
		t.Fatalf("cold search transfers = %v, want <= height+1 = %d", perSearch, tr.Height()+1)
	}
}

// TestDifferential drives the tree against a map oracle with mixed ops.
func TestDifferential(t *testing.T) {
	tr := newSmall()
	ref := make(map[uint64]uint64)
	rng := workload.NewRNG(23)
	for i := 0; i < 20000; i++ {
		k := rng.Uint64() % 1024
		switch rng.Uint64() % 4 {
		case 0, 1:
			v := rng.Uint64()
			tr.Insert(k, v)
			ref[k] = v
		case 2:
			_, want := ref[k]
			if got := tr.Delete(k); got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
			delete(ref, k)
		case 3:
			wv, wok := ref[k]
			gv, gok := tr.Search(k)
			if gok != wok || (gok && gv != wv) {
				t.Fatalf("op %d: Search(%d) = (%d,%v), want (%d,%v)", i, k, gv, gok, wv, wok)
			}
		}
		if tr.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", i, tr.Len(), len(ref))
		}
	}
	checkTreeInvariants(t, tr)
}

// TestQuickInsertDelete is a property test: any sequence of inserts
// followed by deletes of a subset leaves exactly the complement.
func TestQuickInsertDelete(t *testing.T) {
	f := func(raw []uint16, delMask []bool) bool {
		tr := newSmall()
		keys := make(map[uint64]bool)
		for _, k16 := range raw {
			k := uint64(k16)
			keys[k] = true
			tr.Insert(k, k)
		}
		i := 0
		deleted := make(map[uint64]bool)
		for k := range keys {
			if i < len(delMask) && delMask[i] {
				tr.Delete(k)
				deleted[k] = true
			}
			i++
		}
		for k := range keys {
			_, ok := tr.Search(k)
			if deleted[k] && ok {
				return false
			}
			if !deleted[k] && !ok {
				return false
			}
		}
		return tr.Len() == len(keys)-len(deleted)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// checkTreeInvariants validates B+-tree structural invariants: key order
// within and across nodes, separator correctness, uniform leaf depth, and
// leaf-chain completeness.
func checkTreeInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.root < 0 {
		return
	}
	var walk func(id int32, lo, hi uint64, depth int) int
	leafDepth := -1
	walk = func(id int32, lo, hi uint64, depth int) int {
		nd := &tr.nodes[id]
		for i := 1; i < len(nd.keys); i++ {
			if nd.keys[i-1] >= nd.keys[i] {
				t.Fatalf("node %d keys out of order", id)
			}
		}
		for _, k := range nd.keys {
			if k < lo || k > hi {
				t.Fatalf("node %d key %d outside separator range [%d,%d]", id, k, lo, hi)
			}
		}
		if nd.leaf {
			if leafDepth < 0 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatalf("leaf depth %d != %d", depth, leafDepth)
			}
			return len(nd.keys)
		}
		if len(nd.children) != len(nd.keys)+1 {
			t.Fatalf("node %d: %d children, %d keys", id, len(nd.children), len(nd.keys))
		}
		total := 0
		childLo := lo
		for i, c := range nd.children {
			childHi := hi
			if i < len(nd.keys) {
				childHi = nd.keys[i]
			}
			total += walk(c, childLo, childHi, depth+1)
			if i < len(nd.keys) {
				childLo = nd.keys[i] + 1
			}
		}
		return total
	}
	total := walk(tr.root, 0, ^uint64(0), 1)
	if total != tr.Len() {
		t.Fatalf("tree holds %d keys, Len() = %d", total, tr.Len())
	}
	// Leaf chain covers every element in order.
	id := tr.root
	for !tr.nodes[id].leaf {
		id = tr.nodes[id].children[0]
	}
	count := 0
	last := uint64(0)
	first := true
	for id >= 0 {
		for _, k := range tr.nodes[id].keys {
			if !first && k <= last {
				t.Fatalf("leaf chain out of order: %d after %d", k, last)
			}
			last, first = k, false
			count++
		}
		id = tr.nodes[id].next
	}
	if count != tr.Len() {
		t.Fatalf("leaf chain has %d keys, Len() = %d", count, tr.Len())
	}
}
