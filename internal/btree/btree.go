// Package btree implements the baseline of the paper's Section 4: a
// B+-tree with 4 KiB blocks, 64-bit keys and values, full keys stored in
// the leaves, and leaves chained for range scans. Every node occupies one
// block of the DAM space, so visiting a node charges exactly one block
// access — the cost model under which the B-tree's O(log_{B+1} N) search
// bound is stated.
//
// Deletion (borrow/merge rebalancing) is implemented as a documented
// extension; the paper's experiments use inserts and searches only.
package btree

import (
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/dam"
)

// Options configures a Tree.
type Options struct {
	// BlockBytes is the node size charged to the DAM space per node
	// visit. Defaults to dam.DefaultBlockBytes (4 KiB, the paper's
	// value).
	BlockBytes int64
	// LeafCapacity is the number of elements per leaf. Zero derives it
	// from BlockBytes / core.ElementBytes (128 for 4 KiB blocks and the
	// paper's padded 32-byte elements).
	LeafCapacity int
	// Fanout is the maximum number of children of an internal node. Zero
	// derives it from BlockBytes / 16 (8-byte separator + 8-byte child
	// pointer), capped at 256 for 4 KiB blocks.
	Fanout int
	// Space receives DAM charges; nil disables accounting.
	Space *dam.Space
}

// Tree is a B+-tree over uint64 keys and values. Mutations are
// single-threaded; the read path (Search, Range) follows the
// core.SharedReader contract — it reads structure state, bumps only the
// atomic search counter, and charges the DAM space, which freezes its
// accounting inside a shared-read bracket.
type Tree struct {
	opt    Options
	nodes  []node
	free   []int32 // recycled node ids
	root   int32
	height int // number of levels; 1 = root is a leaf
	n      int

	// stats carries every counter except Searches, which is atomic so
	// bracketed concurrent searches never race Stats() readers.
	stats    core.Stats
	searches atomic.Uint64
}

type node struct {
	leaf bool
	// Internal nodes: keys[i] separates children[i] (keys <= keys[i])
	// from children[i+1]; len(keys) == len(children)-1.
	// Leaves: keys[i] pairs with vals[i].
	keys     []uint64
	children []int32
	vals     []uint64
	next     int32 // leaf chain; -1 at the tail
}

var (
	_ core.Dictionary   = (*Tree)(nil)
	_ core.Deleter      = (*Tree)(nil)
	_ core.Statser      = (*Tree)(nil)
	_ core.SharedReader = (*Tree)(nil)
)

// New returns an empty B+-tree.
func New(opt Options) *Tree {
	if opt.BlockBytes == 0 {
		opt.BlockBytes = dam.DefaultBlockBytes
	}
	if opt.LeafCapacity == 0 {
		opt.LeafCapacity = int(opt.BlockBytes / core.ElementBytes)
	}
	if opt.Fanout == 0 {
		opt.Fanout = int(opt.BlockBytes / 16)
	}
	if opt.LeafCapacity < 2 || opt.Fanout < 3 {
		panic("btree: capacity too small")
	}
	t := &Tree{opt: opt, root: -1}
	return t
}

// Len implements core.Dictionary.
func (t *Tree) Len() int { return t.n }

// Height reports the number of levels (0 when empty, 1 when the root is
// a leaf).
func (t *Tree) Height() int { return t.height }

// Stats implements core.Statser; safe concurrently with bracketed
// shared reads (Searches is loaded atomically).
func (t *Tree) Stats() core.Stats {
	st := t.stats
	st.Searches = t.searches.Load()
	return st
}

// BeginSharedReads implements core.SharedReader by opening a shared
// epoch on the owning DAM store (no-op without accounting).
func (t *Tree) BeginSharedReads() { t.opt.Space.BeginSharedReads() }

// EndSharedReads closes the bracket opened by BeginSharedReads.
func (t *Tree) EndSharedReads() { t.opt.Space.EndSharedReads() }

func (t *Tree) alloc(leaf bool) int32 {
	if len(t.free) > 0 {
		id := t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
		t.nodes[id] = node{leaf: leaf, next: -1}
		return id
	}
	t.nodes = append(t.nodes, node{leaf: leaf, next: -1})
	return int32(len(t.nodes) - 1)
}

func (t *Tree) release(id int32) {
	t.nodes[id] = node{next: -1}
	t.free = append(t.free, id)
}

// touch charges a read of node id's block.
func (t *Tree) touch(id int32) {
	t.opt.Space.Read(int64(id)*t.opt.BlockBytes, t.opt.BlockBytes)
}

// dirty charges a write of node id's block.
func (t *Tree) dirty(id int32) {
	t.opt.Space.Write(int64(id)*t.opt.BlockBytes, t.opt.BlockBytes)
}

// Search implements core.Dictionary in O(height) block accesses.
func (t *Tree) Search(key uint64) (uint64, bool) {
	t.searches.Add(1)
	if t.root < 0 {
		return 0, false
	}
	id := t.root
	for {
		t.touch(id)
		nd := &t.nodes[id]
		if nd.leaf {
			i := sort.Search(len(nd.keys), func(i int) bool { return nd.keys[i] >= key })
			if i < len(nd.keys) && nd.keys[i] == key {
				return nd.vals[i], true
			}
			return 0, false
		}
		id = nd.children[childIndex(nd.keys, key)]
	}
}

// childIndex picks the child subtree for key: the first separator >= key.
func childIndex(seps []uint64, key uint64) int {
	return sort.Search(len(seps), func(i int) bool { return seps[i] >= key })
}

// Insert implements core.Dictionary with update semantics.
func (t *Tree) Insert(key, value uint64) {
	t.stats.Inserts++
	if t.root < 0 {
		id := t.alloc(true)
		nd := &t.nodes[id]
		nd.keys = append(nd.keys, key)
		nd.vals = append(nd.vals, value)
		t.root = id
		t.height = 1
		t.n = 1
		t.dirty(id)
		return
	}
	midKey, newChild, grew := t.insertAt(t.root, key, value)
	if grew {
		// Root split: a new root with two children.
		newRoot := t.alloc(false)
		nr := &t.nodes[newRoot]
		nr.keys = append(nr.keys, midKey)
		nr.children = append(nr.children, t.root, newChild)
		t.root = newRoot
		t.height++
		t.dirty(newRoot)
	}
}

// insertAt inserts into the subtree rooted at id. If the node split, it
// returns the separator key and the new right sibling's id with
// grew=true.
func (t *Tree) insertAt(id int32, key, value uint64) (uint64, int32, bool) {
	t.touch(id)
	nd := &t.nodes[id]
	if nd.leaf {
		i := sort.Search(len(nd.keys), func(i int) bool { return nd.keys[i] >= key })
		if i < len(nd.keys) && nd.keys[i] == key {
			nd.vals[i] = value
			t.dirty(id)
			return 0, 0, false
		}
		nd.keys = append(nd.keys, 0)
		copy(nd.keys[i+1:], nd.keys[i:])
		nd.keys[i] = key
		nd.vals = append(nd.vals, 0)
		copy(nd.vals[i+1:], nd.vals[i:])
		nd.vals[i] = value
		t.n++
		t.dirty(id)
		if len(nd.keys) <= t.opt.LeafCapacity {
			return 0, 0, false
		}
		return t.splitLeaf(id)
	}

	ci := childIndex(nd.keys, key)
	child := nd.children[ci]
	midKey, newChild, grew := t.insertAt(child, key, value)
	if !grew {
		return 0, 0, false
	}
	nd = &t.nodes[id] // re-take: t.nodes may have been reallocated
	nd.keys = append(nd.keys, 0)
	copy(nd.keys[ci+1:], nd.keys[ci:])
	nd.keys[ci] = midKey
	nd.children = append(nd.children, 0)
	copy(nd.children[ci+2:], nd.children[ci+1:])
	nd.children[ci+1] = newChild
	t.dirty(id)
	if len(nd.children) <= t.opt.Fanout {
		return 0, 0, false
	}
	return t.splitInternal(id)
}

// splitLeaf splits leaf id in half, returning the separator (largest key
// of the left half) and the new right leaf.
func (t *Tree) splitLeaf(id int32) (uint64, int32, bool) {
	rid := t.alloc(true)
	left := &t.nodes[id]
	right := &t.nodes[rid]
	mid := len(left.keys) / 2
	right.keys = append(right.keys, left.keys[mid:]...)
	right.vals = append(right.vals, left.vals[mid:]...)
	left.keys = left.keys[:mid]
	left.vals = left.vals[:mid]
	right.next = left.next
	left.next = rid
	t.dirty(id)
	t.dirty(rid)
	t.stats.Moves += uint64(len(right.keys))
	return left.keys[mid-1], rid, true
}

// splitInternal splits internal node id, promoting the middle separator.
func (t *Tree) splitInternal(id int32) (uint64, int32, bool) {
	rid := t.alloc(false)
	left := &t.nodes[id]
	right := &t.nodes[rid]
	midIdx := len(left.keys) / 2
	midKey := left.keys[midIdx]
	right.keys = append(right.keys, left.keys[midIdx+1:]...)
	right.children = append(right.children, left.children[midIdx+1:]...)
	left.keys = left.keys[:midIdx]
	left.children = left.children[:midIdx+1]
	t.dirty(id)
	t.dirty(rid)
	t.stats.Moves += uint64(len(right.keys) + 1)
	return midKey, rid, true
}

// Range implements core.Dictionary: root-to-leaf descent for lo, then a
// walk along the leaf chain — O(log_{B+1} N + L/B) block accesses.
func (t *Tree) Range(lo, hi uint64, fn func(core.Element) bool) {
	if t.root < 0 {
		return
	}
	id := t.root
	for {
		t.touch(id)
		nd := &t.nodes[id]
		if nd.leaf {
			break
		}
		id = nd.children[childIndex(nd.keys, lo)]
	}
	for id >= 0 {
		nd := &t.nodes[id]
		t.touch(id)
		i := sort.Search(len(nd.keys), func(i int) bool { return nd.keys[i] >= lo })
		for ; i < len(nd.keys); i++ {
			if nd.keys[i] > hi {
				return
			}
			if !fn(core.Element{Key: nd.keys[i], Value: nd.vals[i]}) {
				return
			}
		}
		id = nd.next
	}
}

// Delete implements core.Deleter with full borrow/merge rebalancing.
func (t *Tree) Delete(key uint64) bool {
	t.stats.Deletes++
	if t.root < 0 {
		return false
	}
	deleted := t.deleteAt(t.root, key)
	if !deleted {
		return false
	}
	t.n--
	root := &t.nodes[t.root]
	if !root.leaf && len(root.children) == 1 {
		// Collapse a root with a single child.
		old := t.root
		t.root = root.children[0]
		t.release(old)
		t.height--
	} else if root.leaf && len(root.keys) == 0 {
		t.release(t.root)
		t.root = -1
		t.height = 0
	}
	return true
}

// minLeaf / minInternal are the underflow thresholds.
func (t *Tree) minLeaf() int     { return t.opt.LeafCapacity / 2 }
func (t *Tree) minInternal() int { return t.opt.Fanout / 2 }

// deleteAt removes key from the subtree rooted at id, rebalancing
// children on underflow. The caller handles root shrinkage.
func (t *Tree) deleteAt(id int32, key uint64) bool {
	t.touch(id)
	nd := &t.nodes[id]
	if nd.leaf {
		i := sort.Search(len(nd.keys), func(i int) bool { return nd.keys[i] >= key })
		if i >= len(nd.keys) || nd.keys[i] != key {
			return false
		}
		nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
		nd.vals = append(nd.vals[:i], nd.vals[i+1:]...)
		t.dirty(id)
		return true
	}
	ci := childIndex(nd.keys, key)
	child := nd.children[ci]
	if !t.deleteAt(child, key) {
		return false
	}
	t.rebalanceChild(id, ci)
	return true
}

// rebalanceChild restores the occupancy invariant of children[ci] of
// parent id after a deletion, borrowing from or merging with a sibling.
func (t *Tree) rebalanceChild(id int32, ci int) {
	parent := &t.nodes[id]
	childID := parent.children[ci]
	child := &t.nodes[childID]

	var minOcc, occ int
	if child.leaf {
		minOcc, occ = t.minLeaf(), len(child.keys)
	} else {
		minOcc, occ = t.minInternal(), len(child.children)
	}
	if occ >= minOcc {
		return
	}

	// Prefer borrowing from the left sibling, then the right; merge when
	// neither can spare.
	if ci > 0 && t.canSpare(parent.children[ci-1]) {
		t.borrowFromLeft(id, ci)
		return
	}
	if ci+1 < len(parent.children) && t.canSpare(parent.children[ci+1]) {
		t.borrowFromRight(id, ci)
		return
	}
	if ci > 0 {
		t.mergeChildren(id, ci-1)
	} else {
		t.mergeChildren(id, ci)
	}
}

func (t *Tree) canSpare(id int32) bool {
	nd := &t.nodes[id]
	if nd.leaf {
		return len(nd.keys) > t.minLeaf()
	}
	return len(nd.children) > t.minInternal()
}

func (t *Tree) borrowFromLeft(pid int32, ci int) {
	parent := &t.nodes[pid]
	leftID, rightID := parent.children[ci-1], parent.children[ci]
	left, right := &t.nodes[leftID], &t.nodes[rightID]
	t.touch(leftID)
	if right.leaf {
		k := left.keys[len(left.keys)-1]
		v := left.vals[len(left.vals)-1]
		left.keys = left.keys[:len(left.keys)-1]
		left.vals = left.vals[:len(left.vals)-1]
		right.keys = append([]uint64{k}, right.keys...)
		right.vals = append([]uint64{v}, right.vals...)
		parent.keys[ci-1] = left.keys[len(left.keys)-1]
	} else {
		sep := parent.keys[ci-1]
		k := left.keys[len(left.keys)-1]
		c := left.children[len(left.children)-1]
		left.keys = left.keys[:len(left.keys)-1]
		left.children = left.children[:len(left.children)-1]
		right.keys = append([]uint64{sep}, right.keys...)
		right.children = append([]int32{c}, right.children...)
		parent.keys[ci-1] = k
	}
	t.stats.Moves++
	t.dirty(leftID)
	t.dirty(rightID)
	t.dirty(pid)
}

func (t *Tree) borrowFromRight(pid int32, ci int) {
	parent := &t.nodes[pid]
	leftID, rightID := parent.children[ci], parent.children[ci+1]
	left, right := &t.nodes[leftID], &t.nodes[rightID]
	t.touch(rightID)
	if left.leaf {
		k := right.keys[0]
		v := right.vals[0]
		right.keys = right.keys[1:]
		right.vals = right.vals[1:]
		left.keys = append(left.keys, k)
		left.vals = append(left.vals, v)
		parent.keys[ci] = k
	} else {
		sep := parent.keys[ci]
		k := right.keys[0]
		c := right.children[0]
		right.keys = right.keys[1:]
		right.children = right.children[1:]
		left.keys = append(left.keys, sep)
		left.children = append(left.children, c)
		parent.keys[ci] = k
	}
	t.stats.Moves++
	t.dirty(leftID)
	t.dirty(rightID)
	t.dirty(pid)
}

// mergeChildren merges children ci and ci+1 of parent pid into ci.
func (t *Tree) mergeChildren(pid int32, ci int) {
	parent := &t.nodes[pid]
	leftID, rightID := parent.children[ci], parent.children[ci+1]
	left, right := &t.nodes[leftID], &t.nodes[rightID]
	t.touch(leftID)
	t.touch(rightID)
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
		left.next = right.next
		t.stats.Moves += uint64(len(right.keys))
	} else {
		left.keys = append(left.keys, parent.keys[ci])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
		t.stats.Moves += uint64(len(right.children))
	}
	parent.keys = append(parent.keys[:ci], parent.keys[ci+1:]...)
	parent.children = append(parent.children[:ci+1], parent.children[ci+2:]...)
	t.release(rightID)
	t.dirty(leftID)
	t.dirty(pid)
}
