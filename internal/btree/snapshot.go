package btree

import (
	"io"

	"repro/internal/core"
)

// snapshotMagic identifies the B-tree's logical snapshot payload (see
// internal/core/snapshot.go): the live elements in ascending key order,
// re-inserted on restore. Node geometry is rebuilt from the tree's own
// Options, so a restored tree answers queries identically; the exact
// split history (and thus node fill factors) starts fresh.
const snapshotMagic = "BTRE"

var _ core.Snapshotter = (*Tree)(nil)

// WriteTo implements io.WriterTo (logical codec).
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	return core.WriteLogicalSnapshot(w, snapshotMagic, t)
}

// ReadFrom implements io.ReaderFrom; t must be empty.
func (t *Tree) ReadFrom(r io.Reader) (int64, error) {
	return core.ReadLogicalSnapshot(r, snapshotMagic, t)
}
