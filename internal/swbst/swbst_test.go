package swbst

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/workload"
)

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for fanout < 4")
		}
	}()
	New(Options{Fanout: 2})
}

func TestInsertSearch(t *testing.T) {
	tr := New(Options{Fanout: 4})
	const n = 4000
	seq := workload.NewRandomUnique(3)
	keys := workload.Take(seq, n)
	for i, k := range keys {
		tr.Insert(k, k^1)
		if tr.Len() != i+1 {
			t.Fatalf("Len = %d, want %d", tr.Len(), i+1)
		}
	}
	tr.CheckInvariants(false)
	for _, k := range keys {
		if v, ok := tr.Search(k); !ok || v != k^1 {
			t.Fatalf("Search(%d) = (%d,%v)", k, v, ok)
		}
	}
	if _, ok := tr.Search(1 << 62); ok {
		t.Fatal("found a missing key")
	}
}

func TestUpdate(t *testing.T) {
	tr := New(Options{Fanout: 4})
	tr.Insert(1, 1)
	tr.Insert(1, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, _ := tr.Search(1); v != 2 {
		t.Fatalf("Search = %d, want 2", v)
	}
}

func TestSortedOrders(t *testing.T) {
	const n = 3000
	for name, seq := range map[string]workload.Sequence{
		"asc":  workload.NewAscending(),
		"desc": workload.NewDescending(n),
	} {
		tr := New(Options{Fanout: 6})
		for i := 0; i < n; i++ {
			k := seq.Next()
			tr.Insert(k, k)
		}
		tr.CheckInvariants(false)
		for k := uint64(0); k < n; k++ {
			if _, ok := tr.Search(k); !ok {
				t.Fatalf("%s: lost %d", name, k)
			}
		}
	}
}

func TestHeightLogC(t *testing.T) {
	for _, c := range []int{4, 8, 16} {
		tr := New(Options{Fanout: c})
		const n = 1 << 14
		seq := workload.NewRandomUnique(uint64(c))
		for i := 0; i < n; i++ {
			k := seq.Next()
			tr.Insert(k, k)
		}
		// Height must be O(log_c N) within constant slack.
		bound := int(math.Ceil(math.Log(float64(n))/math.Log(float64(c)))) + 3
		if tr.Height() > bound {
			t.Fatalf("c=%d: height %d > bound %d", c, tr.Height(), bound)
		}
	}
}

// TestWeightInvariantContinuously checks the SWBST invariant after every
// insert on a moderate workload.
func TestWeightInvariantContinuously(t *testing.T) {
	tr := New(Options{Fanout: 4})
	seq := workload.NewRandomUnique(9)
	for i := 0; i < 2000; i++ {
		k := seq.Next()
		tr.Insert(k, k)
		tr.CheckInvariants(false)
	}
}

// TestLemma1DegreeBounds: node degrees stay Theta(c).
func TestLemma1DegreeBounds(t *testing.T) {
	c := 8
	tr := New(Options{Fanout: c})
	seq := workload.NewRandomUnique(11)
	for i := 0; i < 1<<14; i++ {
		k := seq.Next()
		tr.Insert(k, k)
	}
	var walk func(nd *Node)
	walk = func(nd *Node) {
		if nd.Leaf {
			return
		}
		deg := len(nd.Children)
		if deg > 4*c {
			t.Fatalf("degree %d > 4c = %d", deg, 4*c)
		}
		if nd != tr.Root() && deg < 2 {
			t.Fatalf("degree %d < 2", deg)
		}
		for _, ch := range nd.Children {
			walk(ch)
		}
	}
	walk(tr.Root())
}

// TestLemma1AmortizedSplits: the number of splits is O(N/c) overall —
// each split is amortized against Omega(c^h) inserts below the node.
func TestLemma1AmortizedSplits(t *testing.T) {
	c := 8
	tr := New(Options{Fanout: c})
	const n = 1 << 14
	seq := workload.NewRandomUnique(13)
	for i := 0; i < n; i++ {
		k := seq.Next()
		tr.Insert(k, k)
	}
	// Leaf splits alone are ~N/c; higher splits decay geometrically.
	bound := uint64(3 * n / c)
	if tr.Splits() > bound {
		t.Fatalf("splits = %d, want <= %d", tr.Splits(), bound)
	}
}

func TestSplitHookFires(t *testing.T) {
	tr := New(Options{Fanout: 4})
	hooks := 0
	seq := workload.NewRandomUnique(15)
	for i := 0; i < 1000; i++ {
		k := seq.Next()
		tr.InsertWithHooks(k, k, func(old, sib *Node, height int) {
			hooks++
			if old.Leaf != sib.Leaf {
				t.Fatal("split halves disagree on leafness")
			}
			if height < 1 {
				t.Fatalf("split at height %d", height)
			}
		})
	}
	if hooks == 0 {
		t.Fatal("no split hooks fired")
	}
	if uint64(hooks) != tr.Splits() {
		t.Fatalf("hooks = %d, splits = %d", hooks, tr.Splits())
	}
}

func TestDelete(t *testing.T) {
	tr := New(Options{Fanout: 4})
	for i := uint64(0); i < 1000; i++ {
		tr.Insert(i, i)
	}
	for i := uint64(0); i < 1000; i += 2 {
		if !tr.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if tr.Delete(0) {
		t.Fatal("double delete succeeded")
	}
	tr.CheckInvariants(true)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		_, ok := tr.Search(i)
		if (i%2 == 0) == ok {
			t.Fatalf("Search(%d) = %v", i, ok)
		}
	}
}

func TestRange(t *testing.T) {
	tr := New(Options{Fanout: 4})
	for i := uint64(0); i < 2000; i += 4 {
		tr.Insert(i, i/4)
	}
	var got []uint64
	tr.Range(100, 140, func(e core.Element) bool {
		got = append(got, e.Key)
		return true
	})
	want := []uint64{100, 104, 108, 112, 116, 120, 124, 128, 132, 136, 140}
	if len(got) != len(want) {
		t.Fatalf("Range = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	count := 0
	tr.Range(0, 2000, func(core.Element) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestQuickDifferential(t *testing.T) {
	f := func(raw []uint16) bool {
		tr := New(Options{Fanout: 4})
		ref := make(map[uint64]uint64)
		for i, k16 := range raw {
			k := uint64(k16)
			tr.Insert(k, uint64(i))
			ref[k] = uint64(i)
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			if gv, ok := tr.Search(k); !ok || gv != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
