package swbst

import (
	"io"

	"repro/internal/core"
)

// snapshotMagic identifies the strongly weight-balanced search tree's
// logical snapshot payload (see internal/core/snapshot.go): live
// elements in ascending key order, re-inserted on restore. Ascending
// re-insertion rebalances as it goes, so the restored tree satisfies
// the same balance invariants with a possibly different shape.
const snapshotMagic = "SWBT"

var _ core.Snapshotter = (*Tree)(nil)

// WriteTo implements io.WriterTo (logical codec).
func (t *Tree) WriteTo(w io.Writer) (int64, error) {
	return core.WriteLogicalSnapshot(w, snapshotMagic, t)
}

// ReadFrom implements io.ReaderFrom; t must be empty.
func (t *Tree) ReadFrom(r io.Reader) (int64, error) {
	return core.ReadLogicalSnapshot(r, snapshotMagic, t)
}
