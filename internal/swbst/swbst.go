// Package swbst implements a strongly weight-balanced search tree
// (Arge–Vitter style), the skeleton of the shuttle tree: a multiway tree
// with all leaves at the same depth maintaining, for fanout parameter
// c > 1 and every node v, weight w(v) = Theta(c^h(v)).
//
// The balancing routine is exactly Section 2's: insert at a leaf; when a
// node's weight exceeds its threshold, split it into two nodes dividing
// the children as evenly as possible, trickling up to the root. Lemma 1's
// consequences (degree Theta(c), descendant counts, amortized split
// costs) hold by construction and are verified by the package tests.
package swbst

import (
	"sort"

	"repro/internal/core"
)

// Options configures a Tree.
type Options struct {
	// Fanout is the balance parameter c; node degrees vary between
	// Theta(c) bounds. Must be at least 4.
	Fanout int
}

// Tree is a strongly weight-balanced search tree. Elements live in the
// leaves; internal nodes route by pivot keys.
//
// The read path (Search, Range) mutates nothing — no counters, no DAM
// charges — so the tree implements core.SharedReader with no-op
// brackets: concurrent searches are safe whenever mutations are
// excluded.
type Tree struct {
	c      int
	root   *Node
	height int
	n      int
	splits uint64
}

// Node is exported so the shuttle tree can reuse the skeleton while
// attaching buffers to child pointers.
type Node struct {
	Leaf     bool
	Parent   *Node
	Pivots   []uint64 // len = len(Children)-1; child i holds keys <= Pivots[i]
	Children []*Node
	Weight   int            // leaves: len(Elems); internal: sum of child weights + 1
	Elems    []core.Element // leaf payload, sorted by key

	// Aux lets embedding structures (the shuttle tree) hang per-node
	// state (buffer lists, layout slots) off skeleton nodes.
	Aux any
}

var (
	_ core.Dictionary   = (*Tree)(nil)
	_ core.SharedReader = (*Tree)(nil)
)

// New returns an empty tree.
func New(opt Options) *Tree {
	if opt.Fanout < 4 {
		panic("swbst: fanout must be at least 4")
	}
	return &Tree{c: opt.Fanout}
}

// Fanout reports the balance parameter c.
func (t *Tree) Fanout() int { return t.c }

// Len implements core.Dictionary.
func (t *Tree) Len() int { return t.n }

// Height reports the tree height (leaves at height 1; 0 when empty).
func (t *Tree) Height() int { return t.height }

// Root exposes the root node for embedders and tests.
func (t *Tree) Root() *Node { return t.root }

// Splits reports the number of node splits performed.
func (t *Tree) Splits() uint64 { return t.splits }

// maxWeight is the split threshold for a node at height h: 2c^h.
func (t *Tree) maxWeight(h int) int {
	w := 2
	for i := 0; i < h; i++ {
		w *= t.c
	}
	return w
}

// BeginSharedReads implements core.SharedReader; the swbst read path is
// pure, so the bracket is a no-op.
func (t *Tree) BeginSharedReads() {}

// EndSharedReads implements core.SharedReader.
func (t *Tree) EndSharedReads() {}

// Search implements core.Dictionary.
func (t *Tree) Search(key uint64) (uint64, bool) {
	nd := t.root
	if nd == nil {
		return 0, false
	}
	for !nd.Leaf {
		nd = nd.Children[childIndex(nd.Pivots, key)]
	}
	i := sort.Search(len(nd.Elems), func(i int) bool { return nd.Elems[i].Key >= key })
	if i < len(nd.Elems) && nd.Elems[i].Key == key {
		return nd.Elems[i].Value, true
	}
	return 0, false
}

func childIndex(pivots []uint64, key uint64) int {
	return sort.Search(len(pivots), func(i int) bool { return pivots[i] >= key })
}

// Insert implements core.Dictionary with update semantics. It returns
// after rebalancing; embedders needing split notifications use
// InsertWithHooks.
func (t *Tree) Insert(key, value uint64) {
	t.InsertWithHooks(key, value, nil)
}

// SplitHook observes skeleton restructuring: it runs after old split
// into (old, sibling), where sibling is the newly created right node at
// the same height.
type SplitHook func(old, sibling *Node, height int)

// InsertWithHooks inserts and invokes hook for every split performed.
func (t *Tree) InsertWithHooks(key, value uint64, hook SplitHook) {
	if t.root == nil {
		t.root = &Node{Leaf: true}
		t.height = 1
	}
	// Descend to the leaf, stacking the path.
	path := make([]*Node, 0, t.height)
	nd := t.root
	for {
		path = append(path, nd)
		if nd.Leaf {
			break
		}
		nd = nd.Children[childIndex(nd.Pivots, key)]
	}
	leaf := nd
	i := sort.Search(len(leaf.Elems), func(i int) bool { return leaf.Elems[i].Key >= key })
	if i < len(leaf.Elems) && leaf.Elems[i].Key == key {
		leaf.Elems[i].Value = value
		return
	}
	leaf.Elems = append(leaf.Elems, core.Element{})
	copy(leaf.Elems[i+1:], leaf.Elems[i:])
	leaf.Elems[i] = core.Element{Key: key, Value: value}
	t.n++
	for _, v := range path {
		v.Weight++
	}

	// Split overweight nodes bottom-up along the path.
	for h := len(path); h >= 1; h-- {
		v := path[h-1]
		height := len(path) - h + 1
		if v.Weight <= t.maxWeight(height) {
			continue
		}
		t.splitNode(v, height, hook)
	}
}

// splitNode splits v (at the given height) into v and a new right
// sibling, dividing leaves' elements or children as evenly as possible
// by weight, then adjusts the parent (growing a new root if needed).
func (t *Tree) splitNode(v *Node, height int, hook SplitHook) {
	t.splits++
	sib := &Node{Leaf: v.Leaf}
	var sep uint64
	addsNode := !v.Leaf // an internal split creates a node that counts +1 in every ancestor
	if v.Leaf {
		mid := len(v.Elems) / 2
		sib.Elems = append(sib.Elems, v.Elems[mid:]...)
		v.Elems = v.Elems[:mid]
		v.Weight = len(v.Elems)
		sib.Weight = len(sib.Elems)
		sep = v.Elems[len(v.Elems)-1].Key
	} else {
		// Move children right-to-left until the halves' weights are as
		// even as possible.
		total := v.Weight - 1
		acc := 0
		cut := len(v.Children)
		for cut > 1 {
			w := v.Children[cut-1].Weight
			if acc+w > total/2 && cut < len(v.Children) {
				break
			}
			acc += w
			cut--
		}
		if cut == len(v.Children) {
			cut--
			acc = v.Children[cut].Weight
		}
		sib.Children = append(sib.Children, v.Children[cut:]...)
		sib.Pivots = append(sib.Pivots, v.Pivots[cut:]...)
		sep = v.Pivots[cut-1]
		v.Children = v.Children[:cut]
		v.Pivots = v.Pivots[:cut-1]
		for _, ch := range sib.Children {
			ch.Parent = sib
		}
		sib.Weight = acc + 1
		v.Weight = total - acc + 1
	}

	parent := v.Parent
	if parent == nil {
		nr := &Node{
			Pivots:   []uint64{sep},
			Children: []*Node{v, sib},
			Weight:   v.Weight + sib.Weight + 1,
		}
		v.Parent = nr
		sib.Parent = nr
		t.root = nr
		t.height++
	} else {
		ci := -1
		for i, ch := range parent.Children {
			if ch == v {
				ci = i
				break
			}
		}
		if ci < 0 {
			panic("swbst: split child not under parent")
		}
		parent.Pivots = append(parent.Pivots, 0)
		copy(parent.Pivots[ci+1:], parent.Pivots[ci:])
		parent.Pivots[ci] = sep
		parent.Children = append(parent.Children, nil)
		copy(parent.Children[ci+2:], parent.Children[ci+1:])
		parent.Children[ci+1] = sib
		sib.Parent = parent
		if addsNode {
			for p := parent; p != nil; p = p.Parent {
				p.Weight++
			}
		}
	}
	if hook != nil {
		hook(v, sib, height)
	}
}

// Delete removes key if present (simple unbalanced removal: weights
// shrink but nodes are not merged; the weight invariant's lower bound is
// therefore maintained only under insert-dominated workloads, matching
// the paper's scope).
func (t *Tree) Delete(key uint64) bool {
	if t.root == nil {
		return false
	}
	path := make([]*Node, 0, t.height)
	nd := t.root
	for {
		path = append(path, nd)
		if nd.Leaf {
			break
		}
		nd = nd.Children[childIndex(nd.Pivots, key)]
	}
	leaf := nd
	i := sort.Search(len(leaf.Elems), func(i int) bool { return leaf.Elems[i].Key >= key })
	if i >= len(leaf.Elems) || leaf.Elems[i].Key != key {
		return false
	}
	leaf.Elems = append(leaf.Elems[:i], leaf.Elems[i+1:]...)
	t.n--
	for _, v := range path {
		v.Weight--
	}
	return true
}

// Range implements core.Dictionary via an in-order walk of the
// overlapping subtrees.
func (t *Tree) Range(lo, hi uint64, fn func(core.Element) bool) {
	if t.root == nil {
		return
	}
	t.rangeNode(t.root, lo, hi, fn)
}

func (t *Tree) rangeNode(nd *Node, lo, hi uint64, fn func(core.Element) bool) bool {
	if nd.Leaf {
		i := sort.Search(len(nd.Elems), func(i int) bool { return nd.Elems[i].Key >= lo })
		for ; i < len(nd.Elems) && nd.Elems[i].Key <= hi; i++ {
			if !fn(nd.Elems[i]) {
				return false
			}
		}
		return true
	}
	childLo := uint64(0)
	for c, ch := range nd.Children {
		childHi := ^uint64(0)
		if c < len(nd.Pivots) {
			childHi = nd.Pivots[c]
		}
		if childLo <= hi && childHi >= lo {
			if !t.rangeNode(ch, lo, hi, fn) {
				return false
			}
		}
		if c < len(nd.Pivots) {
			if nd.Pivots[c] == ^uint64(0) {
				break
			}
			childLo = nd.Pivots[c] + 1
		}
	}
	return true
}

// CheckInvariants panics if the weight-balance or search-tree invariants
// are violated. upperOnly skips the lower weight bound (valid after
// deletions, which do not rebalance).
func (t *Tree) CheckInvariants(upperOnly bool) {
	if t.root == nil {
		return
	}
	var walk func(nd *Node, lo, hi uint64, depth int) int
	leafDepth := -1
	walk = func(nd *Node, lo, hi uint64, depth int) int {
		height := t.height - depth + 1
		if nd.Leaf {
			if height != 1 {
				panic("swbst: leaf not at height 1")
			}
			if leafDepth < 0 {
				leafDepth = depth
			} else if leafDepth != depth {
				panic("swbst: leaves at differing depths")
			}
			for i, e := range nd.Elems {
				if e.Key < lo || e.Key > hi {
					panic("swbst: leaf key outside pivot range")
				}
				if i > 0 && nd.Elems[i-1].Key >= e.Key {
					panic("swbst: leaf keys out of order")
				}
			}
			if nd.Weight != len(nd.Elems) {
				panic("swbst: leaf weight mismatch")
			}
			if nd.Weight > t.maxWeight(1) {
				panic("swbst: leaf overweight")
			}
			return nd.Weight
		}
		if len(nd.Children) != len(nd.Pivots)+1 {
			panic("swbst: pivot/child count mismatch")
		}
		sum := 1
		childLo := lo
		for c, ch := range nd.Children {
			if ch.Parent != nd {
				panic("swbst: broken parent pointer")
			}
			childHi := hi
			if c < len(nd.Pivots) {
				childHi = nd.Pivots[c]
			}
			sum += walk(ch, childLo, childHi, depth+1)
			if c < len(nd.Pivots) {
				childLo = nd.Pivots[c] + 1
			}
		}
		if sum != nd.Weight {
			panic("swbst: internal weight mismatch")
		}
		if nd.Weight > t.maxWeight(height) {
			panic("swbst: node overweight")
		}
		if !upperOnly && nd != t.root && nd.Weight*2*t.c < t.maxWeight(height) {
			// Lower bound: w(v) = Omega(c^h); threshold 2c^h/(2c) = c^(h-1).
			panic("swbst: node underweight")
		}
		return sum
	}
	total := walk(t.root, 0, ^uint64(0), 1)
	if total-countInternal(t.root) != t.n {
		// total counts +1 per internal node; subtract to compare.
		panic("swbst: element count mismatch")
	}
}

func countInternal(nd *Node) int {
	if nd.Leaf {
		return 0
	}
	c := 1
	for _, ch := range nd.Children {
		c += countInternal(ch)
	}
	return c
}
