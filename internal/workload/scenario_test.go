package workload

import (
	"math"
	"testing"
)

// --- spec grammar -----------------------------------------------------

func TestScenarioNameRoundTrip(t *testing.T) {
	specs := []string{
		"uniform+steady+95r5w",
		"zipf1.2+bursty+95r5w",
		"sequential+diurnal+100w",
		"hotset+steady+60w40d",
		"uniform+steady+80r10w5d5s",
		"zipf1.5+steady+100r",
	}
	for _, spec := range specs {
		sc, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := sc.Name(); got != spec {
			t.Errorf("Parse(%q).Name() = %q", spec, got)
		}
	}
}

func TestScenarioParseRejects(t *testing.T) {
	bad := []string{
		"",
		"uniform+steady",          // missing mix
		"uniform+steady+95r5w+x",  // extra axis
		"gaussian+steady+100w",    // unknown skew
		"zipf0.9+steady+100w",     // zipf exponent <= 1
		"zipfx+steady+100w",       // unparsable exponent
		"uniform+poisson+100w",    // unknown arrival
		"uniform+steady+95r4w",    // sums to 99
		"uniform+steady+95r5w5w",  // duplicate letter
		"uniform+steady+95r5x",    // unknown op letter
		"uniform+steady+r5w",      // missing percentage
		"uniform+steady+95r5",     // trailing number
		"uniform+steady+100w0d0d", // duplicate zero entries
		"uniform+steady+150r-50w", // out of range
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

// --- determinism ------------------------------------------------------

// Every cell of a skew × arrival slice must replay bit-for-bit under a
// fixed seed, both across two independent streams and across Reset.
func TestScenarioDeterminism(t *testing.T) {
	skews := []string{"uniform", "zipf1.2", "sequential", "hotset"}
	arrivals := []string{"steady", "bursty", "diurnal"}
	for _, skew := range skews {
		for _, arrival := range arrivals {
			spec := skew + "+" + arrival + "+70r20w5d5s"
			sc, err := Parse(spec)
			if err != nil {
				t.Fatalf("Parse(%q): %v", spec, err)
			}
			sc.Seed = 42
			sc.KeySpace = 1 << 12
			a, err := sc.Stream()
			if err != nil {
				t.Fatalf("%s: Stream: %v", spec, err)
			}
			b, err := sc.Stream()
			if err != nil {
				t.Fatalf("%s: Stream: %v", spec, err)
			}
			const n = 4096
			opsA := TakeOps(a, n)
			opsB := TakeOps(b, n)
			for i := range opsA {
				if opsA[i] != opsB[i] {
					t.Fatalf("%s: op %d differs across identical streams: %v vs %v", spec, i, opsA[i], opsB[i])
				}
			}
			a.Reset()
			for i := 0; i < n; i++ {
				if op := a.Next(); op != opsA[i] {
					t.Fatalf("%s: op %d differs after Reset: %v vs %v", spec, i, op, opsA[i])
				}
			}
		}
	}
}

// Different seeds must not replay the same key sequence (regression
// guard for sub-seed derivation collapsing).
func TestScenarioSeedsDiffer(t *testing.T) {
	mk := func(seed uint64) []Op {
		sc, err := Parse("uniform+steady+50r50w")
		if err != nil {
			t.Fatal(err)
		}
		sc.Seed = seed
		st, err := sc.Stream()
		if err != nil {
			t.Fatal(err)
		}
		return TakeOps(st, 256)
	}
	a, b := mk(1), mk(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 1 and 2 generated identical op streams")
	}
}

// --- zipf frequencies vs theoretical mass (chi-square) ----------------

// Observed zipf draw frequencies must match the theoretical probability
// mass p_k ∝ (k+1)^-s. With 2^17 draws over 64 ranks the chi-square
// statistic has 63 degrees of freedom; its 99.9th percentile is ≈ 103.4,
// and the generator is deterministic, so a bound of 110 cannot flake —
// it only fails if the distribution itself drifts.
func TestZipfScenarioChiSquare(t *testing.T) {
	const (
		ranks = 64
		draws = 1 << 17
		s     = 1.2
	)
	sc, err := Parse("zipf1.2+steady+100w")
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 7
	sc.KeySpace = ranks
	st, err := sc.Stream()
	if err != nil {
		t.Fatal(err)
	}
	observed := make([]float64, ranks)
	for i := 0; i < draws; i++ {
		op := st.Next()
		if op.Kind != OpInsert {
			t.Fatalf("100w mix emitted %v", op.Kind)
		}
		if op.Key >= ranks {
			t.Fatalf("zipf key %d outside keyspace %d", op.Key, ranks)
		}
		observed[op.Key]++
	}
	var norm float64
	mass := make([]float64, ranks)
	for k := 0; k < ranks; k++ {
		mass[k] = math.Pow(float64(k+1), -s)
		norm += mass[k]
	}
	var chi2 float64
	for k := 0; k < ranks; k++ {
		expected := draws * mass[k] / norm
		d := observed[k] - expected
		chi2 += d * d / expected
	}
	if chi2 > 110 {
		t.Fatalf("zipf chi-square %.1f exceeds 110 (df=63): observed frequencies diverge from the s=%.1f mass", chi2, s)
	}
	// Sanity: rank 0 must dominate rank 32 decisively under s=1.2.
	if observed[0] < 10*observed[32] {
		t.Fatalf("zipf skew too weak: rank0=%g rank32=%g", observed[0], observed[32])
	}
}

// --- bursty duty cycle ------------------------------------------------

// The bursty arrival is a square wave: exactly burstOnTicks loaded ticks
// of burstOpsPerTick ops, then burstOffTicks empty ticks. Both the duty
// cycle and the per-tick burst size are exact, not statistical.
func TestBurstyDutyCycle(t *testing.T) {
	sc, err := Parse("uniform+bursty+100w")
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 3
	st, err := sc.Stream()
	if err != nil {
		t.Fatal(err)
	}
	const periods = 8
	total := (burstOnTicks + burstOffTicks) * periods
	loaded, ops := 0, 0
	var buf []Op
	for i := 0; i < total; i++ {
		buf = st.NextTick(buf[:0])
		if len(buf) != 0 && len(buf) != burstOpsPerTick {
			t.Fatalf("tick %d carries %d ops, want 0 or %d", i, len(buf), burstOpsPerTick)
		}
		inOn := uint64(i)%(burstOnTicks+burstOffTicks) < burstOnTicks
		if inOn != (len(buf) > 0) {
			t.Fatalf("tick %d: on-phase=%v but %d ops", i, inOn, len(buf))
		}
		if len(buf) > 0 {
			loaded++
		}
		ops += len(buf)
	}
	wantDuty := float64(burstOnTicks) / float64(burstOnTicks+burstOffTicks)
	if got := float64(loaded) / float64(total); got != wantDuty {
		t.Fatalf("duty cycle %.3f, want exactly %.3f", got, wantDuty)
	}
	if want := burstOnTicks * burstOpsPerTick * periods; ops != want {
		t.Fatalf("%d ops over %d periods, want %d", ops, periods, want)
	}
}

// The diurnal ramp must be periodic, span [1, diurnalPeak] ops/tick,
// and hit its peak mid-period.
func TestDiurnalRamp(t *testing.T) {
	sc, err := Parse("uniform+diurnal+100w")
	if err != nil {
		t.Fatal(err)
	}
	st, err := sc.Stream()
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	var buf []Op
	for i := 0; i < 2*diurnalPeriod; i++ {
		buf = st.NextTick(buf[:0])
		sizes = append(sizes, len(buf))
	}
	min, max := sizes[0], sizes[0]
	for _, s := range sizes[:diurnalPeriod] {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min != 1 || max != diurnalPeak {
		t.Fatalf("diurnal ops/tick range [%d, %d], want [1, %d]", min, max, diurnalPeak)
	}
	if sizes[diurnalPeriod/2] != diurnalPeak {
		t.Fatalf("mid-period tick carries %d ops, want peak %d", sizes[diurnalPeriod/2], diurnalPeak)
	}
	for i := 0; i < diurnalPeriod; i++ {
		if sizes[i] != sizes[i+diurnalPeriod] {
			t.Fatalf("diurnal not periodic at tick %d: %d vs %d", i, sizes[i], sizes[i+diurnalPeriod])
		}
	}
}

// --- op-mix convergence -----------------------------------------------

// Observed op-kind fractions must converge to the mix percentages
// within 1 percentage point over 10^5 ops (deterministic seed: exact
// reproducibility, generous bound).
func TestMixFractionConvergence(t *testing.T) {
	sc, err := Parse("uniform+steady+80r10w5d5s")
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 11
	st, err := sc.Stream()
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	counts := map[OpKind]int{}
	for i := 0; i < n; i++ {
		counts[st.Next().Kind]++
	}
	want := map[OpKind]float64{OpSearch: 0.80, OpInsert: 0.10, OpDelete: 0.05, OpScan: 0.05}
	for kind, frac := range want {
		got := float64(counts[kind]) / n
		if math.Abs(got-frac) > 0.01 {
			t.Errorf("%v fraction %.4f, want %.2f ± 0.01", kind, got, frac)
		}
	}
}

// --- delete replica ---------------------------------------------------

// Deletes must target exactly the insert-key sequence, in insertion
// order: collect inserts and deletes from a mixed stream and check the
// delete sequence is a prefix-aligned replay of the insert sequence.
func TestDeleteReplaysInsertStream(t *testing.T) {
	sc, err := Parse("uniform+steady+60w40d")
	if err != nil {
		t.Fatal(err)
	}
	sc.Seed = 5
	sc.KeySpace = 1 << 16
	st, err := sc.Stream()
	if err != nil {
		t.Fatal(err)
	}
	var inserted, deleted []uint64
	for i := 0; i < 20000; i++ {
		op := st.Next()
		switch op.Kind {
		case OpInsert:
			inserted = append(inserted, op.Key)
		case OpDelete:
			deleted = append(deleted, op.Key)
		}
	}
	if len(deleted) == 0 {
		t.Fatal("no deletes generated")
	}
	for i, k := range deleted {
		if i >= len(inserted) {
			break // deletes ran ahead of inserts; keys arrive later
		}
		if k != inserted[i] {
			t.Fatalf("delete %d removed key %d, want insert-order key %d", i, k, inserted[i])
		}
	}
}

// Scan ops must stay inside the keyspace even at the top edge.
func TestScanWindowClamped(t *testing.T) {
	sc, err := Parse("sequential+steady+100s")
	if err != nil {
		t.Fatal(err)
	}
	sc.KeySpace = ScanSpan * 2
	st, err := sc.Stream()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		op := st.Next()
		if op.Kind != OpScan {
			t.Fatalf("100s mix emitted %v", op.Kind)
		}
		if op.Key+ScanSpan > sc.KeySpace {
			t.Fatalf("scan window [%d, %d) leaves keyspace %d", op.Key, op.Key+ScanSpan, sc.KeySpace)
		}
	}
}
