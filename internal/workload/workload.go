// Package workload generates the key sequences driving the experiments:
// ascending, descending, uniformly random, random-unique (a bijective
// scramble of 0..N-1), and zipfian. All generators are deterministic
// given a seed so experiments reproduce bit-for-bit.
package workload

import "math"

// Sequence yields a deterministic stream of keys.
type Sequence interface {
	// Next returns the next key in the stream.
	Next() uint64
	// Reset rewinds the stream to its beginning.
	Reset()
	// Name identifies the workload in experiment output.
	Name() string
}

// RNG is an xorshift64* pseudo-random generator: tiny, fast, and entirely
// deterministic, keeping experiments independent of math/rand's evolution
// across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped, since an
// all-zero xorshift state is a fixed point).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("workload: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Ascending yields 0, 1, 2, ... — the paper's best case for the B-tree
// and Figure 5's "ascending" series.
type Ascending struct{ i uint64 }

// NewAscending returns an ascending key stream starting at 0.
func NewAscending() *Ascending { return &Ascending{} }

// Next implements Sequence.
func (a *Ascending) Next() uint64 { v := a.i; a.i++; return v }

// Reset implements Sequence.
func (a *Ascending) Reset() { a.i = 0 }

// Name implements Sequence.
func (a *Ascending) Name() string { return "ascending" }

// Descending yields N-1, N-2, ..., 0 — the order the paper uses for its
// "sorted inserts" experiment (Figure 3 inserts keys [N-1, ..., 0]).
type Descending struct {
	n uint64
	i uint64
}

// NewDescending returns a descending key stream over [0, n).
func NewDescending(n uint64) *Descending { return &Descending{n: n} }

// Next implements Sequence.
func (d *Descending) Next() uint64 { v := d.n - 1 - d.i; d.i++; return v }

// Reset implements Sequence.
func (d *Descending) Reset() { d.i = 0 }

// Name implements Sequence.
func (d *Descending) Name() string { return "descending" }

// Random yields uniformly random 64-bit keys (duplicates possible but
// vanishingly rare for experiment sizes), matching the paper's "N random
// elements".
type Random struct {
	seed uint64
	rng  *RNG
}

// NewRandom returns a uniformly random key stream.
func NewRandom(seed uint64) *Random {
	return &Random{seed: seed, rng: NewRNG(seed)}
}

// Next implements Sequence.
func (r *Random) Next() uint64 { return r.rng.Uint64() }

// Reset implements Sequence.
func (r *Random) Reset() { r.rng = NewRNG(r.seed) }

// Name implements Sequence.
func (r *Random) Name() string { return "random" }

// RandomUnique yields a pseudo-random permutation-like stream of distinct
// keys: position i maps to a bijective mixing of i, so all keys are
// distinct while arriving in random-looking order, with O(1) memory.
type RandomUnique struct {
	seed uint64
	i    uint64
}

// NewRandomUnique returns a distinct-key random-order stream.
func NewRandomUnique(seed uint64) *RandomUnique {
	return &RandomUnique{seed: seed}
}

// mix64 is a bijective finalizer (splitmix64's finalization function);
// being bijective on uint64, distinct inputs give distinct keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Next implements Sequence.
func (r *RandomUnique) Next() uint64 {
	v := mix64(r.i + r.seed*0x9E3779B97F4A7C15)
	r.i++
	return v
}

// Reset implements Sequence.
func (r *RandomUnique) Reset() { r.i = 0 }

// Name implements Sequence.
func (r *RandomUnique) Name() string { return "random-unique" }

// Zipf yields keys drawn from a zipfian distribution over [0, n) with
// exponent s > 1 (rank r is drawn with probability proportional to
// (r+1)^-s), via Hörmann's rejection-inversion. Useful for skewed
// workloads beyond the paper's uniform experiments; the scenario
// generator's chi-square test pins the sampled frequencies to the
// theoretical mass.
type Zipf struct {
	seed uint64
	rng  *RNG
	n    uint64
	s    float64
	// Precomputed rejection-inversion constants: the u-interval
	// (hxn, hx1] and the unconditional-acceptance width. The left edge
	// is h(1.5) - pmf(1), NOT h(0.5): extending inversion below 1.5
	// would hand rank 1 the whole continuous envelope slice and
	// overweight the head by ~8% at s = 1.2.
	hx1, hxn, threshold float64
}

// NewZipf returns a zipfian stream over [0, n) with exponent s (> 1).
func NewZipf(seed uint64, n uint64, s float64) *Zipf {
	if n == 0 {
		panic("workload: Zipf with n == 0")
	}
	if s <= 1 {
		panic("workload: Zipf exponent must exceed 1")
	}
	z := &Zipf{seed: seed, rng: NewRNG(seed), n: n, s: s}
	z.hx1 = z.h(1.5) - 1
	z.hxn = z.h(float64(n) + 0.5)
	z.threshold = 2 - z.hInv(z.h(2.5)-math.Pow(2, -s))
	return z
}

// h is the antiderivative of the envelope x^-s.
func (z *Zipf) h(x float64) float64 {
	return math.Pow(x, 1-z.s) / (1 - z.s)
}

func (z *Zipf) hInv(x float64) float64 {
	return math.Pow((1-z.s)*x, 1/(1-z.s))
}

// Next implements Sequence.
func (z *Zipf) Next() uint64 {
	for {
		u := z.hxn + z.rng.Float64()*(z.hx1-z.hxn)
		x := z.hInv(u)
		k := math.Floor(x + 0.5)
		if k < 1 {
			k = 1
		}
		if k > float64(z.n) {
			k = float64(z.n)
		}
		if k-x <= z.threshold || u >= z.h(k+0.5)-math.Pow(k, -z.s) {
			return uint64(k) - 1
		}
	}
}

// Reset implements Sequence.
func (z *Zipf) Reset() { z.rng = NewRNG(z.seed) }

// Name implements Sequence.
func (z *Zipf) Name() string { return "zipf" }

// Take materializes the next n keys of seq into a slice.
func Take(seq Sequence, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = seq.Next()
	}
	return out
}
