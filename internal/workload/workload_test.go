package workload

import (
	"sort"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRNGZeroSeedRemapped(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed must not produce the all-zero fixed point")
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestAscending(t *testing.T) {
	a := NewAscending()
	for i := uint64(0); i < 10; i++ {
		if got := a.Next(); got != i {
			t.Fatalf("Next = %d, want %d", got, i)
		}
	}
	a.Reset()
	if got := a.Next(); got != 0 {
		t.Fatalf("after Reset Next = %d, want 0", got)
	}
}

func TestDescending(t *testing.T) {
	d := NewDescending(5)
	want := []uint64{4, 3, 2, 1, 0}
	for i, w := range want {
		if got := d.Next(); got != w {
			t.Fatalf("step %d: got %d, want %d", i, got, w)
		}
	}
	d.Reset()
	if got := d.Next(); got != 4 {
		t.Fatalf("after Reset Next = %d, want 4", got)
	}
}

func TestRandomDeterministicAcrossReset(t *testing.T) {
	r := NewRandom(123)
	first := Take(r, 50)
	r.Reset()
	second := Take(r, 50)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reset stream diverged at %d", i)
		}
	}
}

func TestRandomUniqueDistinct(t *testing.T) {
	r := NewRandomUnique(99)
	const n = 1 << 14
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		k := r.Next()
		if seen[k] {
			t.Fatalf("duplicate key %d at position %d", k, i)
		}
		seen[k] = true
	}
}

func TestRandomUniqueLooksRandom(t *testing.T) {
	// The stream must not be monotone: count ascents vs descents.
	r := NewRandomUnique(3)
	keys := Take(r, 1<<12)
	ascents := 0
	for i := 1; i < len(keys); i++ {
		if keys[i] > keys[i-1] {
			ascents++
		}
	}
	frac := float64(ascents) / float64(len(keys)-1)
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("ascent fraction %v; stream looks non-random", frac)
	}
}

func TestRandomUniqueSeedsDiffer(t *testing.T) {
	a := Take(NewRandomUnique(1), 10)
	b := Take(NewRandomUnique(2), 10)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds must give different streams")
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	z := NewZipf(5, 1000, 1.2)
	counts := make(map[uint64]int)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		k := z.Next()
		if k >= 1000 {
			t.Fatalf("zipf key %d out of range", k)
		}
		counts[k]++
	}
	// Key 0 must be the clear mode of a zipfian distribution.
	mode, best := uint64(0), -1
	for k, c := range counts {
		if c > best {
			mode, best = k, c
		}
	}
	if mode != 0 {
		t.Fatalf("zipf mode = %d, want 0 (counts[0]=%d, max=%d)", mode, counts[0], best)
	}
}

func TestZipfPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"n==0": func() { NewZipf(1, 0, 1.5) },
		"s<=1": func() { NewZipf(1, 10, 1.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestZipfReset(t *testing.T) {
	z := NewZipf(11, 100, 1.5)
	a := Take(z, 20)
	z.Reset()
	b := Take(z, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zipf reset diverged at %d", i)
		}
	}
}

func TestTakeLength(t *testing.T) {
	got := Take(NewAscending(), 7)
	if len(got) != 7 {
		t.Fatalf("len = %d, want 7", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("ascending take must be sorted")
	}
}

func TestSequenceNames(t *testing.T) {
	cases := map[string]Sequence{
		"ascending":     NewAscending(),
		"descending":    NewDescending(10),
		"random":        NewRandom(1),
		"random-unique": NewRandomUnique(1),
		"zipf":          NewZipf(1, 10, 1.5),
	}
	for want, seq := range cases {
		if seq.Name() != want {
			t.Errorf("Name() = %q, want %q", seq.Name(), want)
		}
	}
}
