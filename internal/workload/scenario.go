package workload

// Composable scenarios: the key-skew × arrival-pattern × op-mix grid.
//
// A Scenario is a point on that grid plus a seed and a keyspace bound.
// Its Stream() yields a deterministic sequence of typed operations
// (insert / search / delete / range-scan) grouped into arrival "ticks",
// so the same spec string always drives bit-for-bit the same workload —
// the property the perf pipeline's record identity and the hypothesis
// bundles' falsifiable predictions both rest on.
//
// Canonical naming: a scenario names itself skew+arrival+mix, e.g.
// "zipf1.2+bursty+95r5w". Parse accepts the same grammar, and
// Parse(s.Name()) round-trips for every valid scenario, so the name is
// usable as a perf-record identity. Seed and keyspace are deliberately
// not part of the name: they are geometry, chosen by the harness, not
// workload shape.

import (
	"fmt"
	"strconv"
	"strings"
)

// OpKind discriminates the operations a scenario stream emits.
type OpKind uint8

const (
	// OpInsert adds (or overwrites) a key.
	OpInsert OpKind = iota
	// OpSearch looks up one key.
	OpSearch
	// OpDelete removes a previously inserted key.
	OpDelete
	// OpScan range-scans [Key, Key+ScanSpan-1].
	OpScan
)

// String names the op kind for output and error messages.
func (k OpKind) String() string {
	switch k {
	case OpInsert:
		return "insert"
	case OpSearch:
		return "search"
	case OpDelete:
		return "delete"
	case OpScan:
		return "scan"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one operation of a scenario stream.
type Op struct {
	Kind OpKind
	Key  uint64
}

// ScanSpan is the inclusive key width of every OpScan: the scan covers
// [Key, Key+ScanSpan-1]. Fixed so scenario cost is comparable across
// structures and runs.
const ScanSpan = 64

// DefaultKeySpace bounds generated keys when Scenario.KeySpace is zero.
const DefaultKeySpace = 1 << 20

// Arrival-pattern shape constants. Ticks are the unit of arrival: a
// steady tick carries one op, a bursty stream alternates burstOnTicks
// ticks of burstOpsPerTick ops with burstOffTicks empty ticks (a 25%
// duty cycle), and a diurnal stream ramps ops/tick linearly from 1 up
// to diurnalPeak and back over diurnalPeriod ticks.
const (
	burstOnTicks    = 64
	burstOffTicks   = 192
	burstOpsPerTick = 4
	diurnalPeriod   = 256
	diurnalPeak     = 8
)

// Skew is the key-skew axis: which keys the stream touches.
type Skew struct {
	// Kind is one of "uniform", "zipf", "sequential", "hotset".
	Kind string
	// S is the zipf exponent (> 1); meaningful only when Kind is "zipf".
	S float64
}

// Hotset shape: hotTrafficPct percent of key draws land in the first
// 1/hotSpaceDiv of the keyspace.
const (
	hotTrafficPct = 90
	hotSpaceDiv   = 10
)

// Arrival is the arrival-pattern axis: how ops group into ticks.
type Arrival struct {
	// Kind is one of "steady", "bursty", "diurnal".
	Kind string
}

// Mix is the op-mix axis: percentages per op kind, summing to 100.
type Mix struct {
	SearchPct int // r
	InsertPct int // w
	DeletePct int // d
	ScanPct   int // s
}

// ReadFraction is the fraction of ops that only read (searches and
// scans).
func (m Mix) ReadFraction() float64 {
	return float64(m.SearchPct+m.ScanPct) / 100
}

// Name renders the mix canonically: percentage+letter pairs in the
// fixed order r (search), w (insert), d (delete), s (scan), zero
// entries omitted — "95r5w", "100w", "60w40d".
func (m Mix) Name() string {
	var b strings.Builder
	for _, p := range []struct {
		pct    int
		letter byte
	}{{m.SearchPct, 'r'}, {m.InsertPct, 'w'}, {m.DeletePct, 'd'}, {m.ScanPct, 's'}} {
		if p.pct > 0 {
			fmt.Fprintf(&b, "%d%c", p.pct, p.letter)
		}
	}
	return b.String()
}

// Scenario is one point of the skew × arrival × mix grid, plus the
// geometry (seed, keyspace) the harness chooses.
type Scenario struct {
	Skew    Skew
	Arrival Arrival
	Mix     Mix
	// KeySpace bounds every generated key to [0, KeySpace); zero means
	// DefaultKeySpace.
	KeySpace uint64
	// Seed drives every random choice in the stream.
	Seed uint64
}

// withDefaults fills the zero geometry fields.
func (s Scenario) withDefaults() Scenario {
	if s.KeySpace == 0 {
		s.KeySpace = DefaultKeySpace
	}
	return s
}

// Validate checks every axis and returns a descriptive error for the
// first violation.
func (s Scenario) Validate() error {
	s = s.withDefaults()
	switch s.Skew.Kind {
	case "uniform", "sequential", "hotset":
	case "zipf":
		if s.Skew.S <= 1 {
			return fmt.Errorf("workload: zipf exponent must exceed 1, got %g", s.Skew.S)
		}
	default:
		return fmt.Errorf("workload: unknown skew %q (uniform, zipf<s>, sequential, hotset)", s.Skew.Kind)
	}
	switch s.Arrival.Kind {
	case "steady", "bursty", "diurnal":
	default:
		return fmt.Errorf("workload: unknown arrival %q (steady, bursty, diurnal)", s.Arrival.Kind)
	}
	m := s.Mix
	for _, pct := range []int{m.SearchPct, m.InsertPct, m.DeletePct, m.ScanPct} {
		if pct < 0 || pct > 100 {
			return fmt.Errorf("workload: mix percentage %d out of [0, 100]", pct)
		}
	}
	if sum := m.SearchPct + m.InsertPct + m.DeletePct + m.ScanPct; sum != 100 {
		return fmt.Errorf("workload: mix %q sums to %d, want 100", m.Name(), sum)
	}
	if s.KeySpace < hotSpaceDiv {
		return fmt.Errorf("workload: keyspace %d too small (need at least %d)", s.KeySpace, hotSpaceDiv)
	}
	return nil
}

// Name is the canonical spec string: skew+arrival+mix. It omits seed
// and keyspace (geometry, not workload shape) and round-trips through
// Parse.
func (s Scenario) Name() string {
	skew := s.Skew.Kind
	if s.Skew.Kind == "zipf" {
		skew = "zipf" + strconv.FormatFloat(s.Skew.S, 'f', -1, 64)
	}
	return skew + "+" + s.Arrival.Kind + "+" + s.Mix.Name()
}

// Parse reads a canonical scenario spec ("zipf1.2+bursty+95r5w") back
// into a Scenario with zero geometry (caller sets Seed/KeySpace). The
// returned scenario is validated.
func Parse(spec string) (Scenario, error) {
	parts := strings.Split(spec, "+")
	if len(parts) != 3 {
		return Scenario{}, fmt.Errorf("workload: scenario %q is not skew+arrival+mix", spec)
	}
	var s Scenario
	switch {
	case strings.HasPrefix(parts[0], "zipf"):
		exp, err := strconv.ParseFloat(strings.TrimPrefix(parts[0], "zipf"), 64)
		if err != nil {
			return Scenario{}, fmt.Errorf("workload: scenario %q: bad zipf exponent: %v", spec, err)
		}
		s.Skew = Skew{Kind: "zipf", S: exp}
	default:
		s.Skew = Skew{Kind: parts[0]}
	}
	s.Arrival = Arrival{Kind: parts[1]}
	mix, err := parseMix(parts[2])
	if err != nil {
		return Scenario{}, fmt.Errorf("workload: scenario %q: %v", spec, err)
	}
	s.Mix = mix
	if err := s.Validate(); err != nil {
		return Scenario{}, fmt.Errorf("workload: scenario %q: %v", spec, err)
	}
	return s, nil
}

// parseMix reads percentage+letter pairs ("95r5w"); each letter at most
// once.
func parseMix(tok string) (Mix, error) {
	var m Mix
	seen := map[byte]bool{}
	i := 0
	for i < len(tok) {
		j := i
		for j < len(tok) && tok[j] >= '0' && tok[j] <= '9' {
			j++
		}
		if j == i || j == len(tok) {
			return Mix{}, fmt.Errorf("bad mix %q (want pairs like 95r5w; letters r/w/d/s)", tok)
		}
		pct, err := strconv.Atoi(tok[i:j])
		if err != nil {
			return Mix{}, fmt.Errorf("bad mix %q: %v", tok, err)
		}
		letter := tok[j]
		if seen[letter] {
			return Mix{}, fmt.Errorf("bad mix %q: duplicate %q", tok, string(letter))
		}
		seen[letter] = true
		switch letter {
		case 'r':
			m.SearchPct = pct
		case 'w':
			m.InsertPct = pct
		case 'd':
			m.DeletePct = pct
		case 's':
			m.ScanPct = pct
		default:
			return Mix{}, fmt.Errorf("bad mix %q: unknown op letter %q (r/w/d/s)", tok, string(letter))
		}
		i = j + 1
	}
	return m, nil
}

// keyGen draws keys in [0, space) under one skew. Each stream holds
// independent generators for inserts, searches/scans, and deletes so
// the delete stream can replay the insert stream exactly (see Stream).
type keyGen struct {
	skew  Skew
	space uint64
	rng   *RNG
	zipf  *Zipf
	seq   uint64
}

func newKeyGen(skew Skew, space, seed uint64) *keyGen {
	g := &keyGen{skew: skew, space: space, rng: NewRNG(seed)}
	if skew.Kind == "zipf" {
		g.zipf = NewZipf(seed, space, skew.S)
	}
	return g
}

func (g *keyGen) next() uint64 {
	switch g.skew.Kind {
	case "uniform":
		return g.rng.Uint64() % g.space
	case "zipf":
		return g.zipf.Next()
	case "sequential":
		v := g.seq % g.space
		g.seq++
		return v
	case "hotset":
		hot := g.space / hotSpaceDiv
		if g.rng.Intn(100) < hotTrafficPct {
			return g.rng.Uint64() % hot
		}
		return hot + g.rng.Uint64()%(g.space-hot)
	}
	panic("workload: unvalidated skew " + g.skew.Kind)
}

// Stream yields a Scenario's deterministic op sequence, grouped into
// arrival ticks.
//
// Key streams are split by purpose so every axis stays independently
// deterministic: insert keys, search/scan keys, and delete keys each
// come from their own generator. The delete generator is an identically
// seeded replica of the insert generator advanced once per delete, so
// deletes remove exactly the keys the stream inserted, in insertion
// order; if deletes momentarily outpace inserts the target key has not
// arrived yet and the delete is a (deterministic) miss.
type Stream struct {
	sc      Scenario
	tick    uint64
	kinds   *RNG
	inserts *keyGen
	searchs *keyGen
	deletes *keyGen
	// pending buffers the current tick for Next().
	pending []Op
	pos     int
}

// Seed-derivation constants: one sub-seed per independent random
// stream. The insert and delete generators share insertStream so the
// delete replica reproduces insert keys exactly.
const (
	kindStream   = 0x5CE7A110
	insertStream = 0x5CE7A111
	searchStream = 0x5CE7A112
)

// Stream validates the scenario and returns its op stream positioned at
// the first tick.
func (s Scenario) Stream() (*Stream, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	st := &Stream{sc: s}
	st.Reset()
	return st, nil
}

// Reset rewinds the stream to its first tick; the replayed op sequence
// is bit-for-bit identical.
func (st *Stream) Reset() {
	s := st.sc
	st.tick = 0
	st.pending = st.pending[:0]
	st.pos = 0
	st.kinds = NewRNG(mix64(s.Seed ^ kindStream))
	st.inserts = newKeyGen(s.Skew, s.KeySpace, mix64(s.Seed^insertStream))
	st.searchs = newKeyGen(s.Skew, s.KeySpace, mix64(s.Seed^searchStream))
	st.deletes = newKeyGen(s.Skew, s.KeySpace, mix64(s.Seed^insertStream))
}

// Scenario returns the (validated, defaults-filled) scenario this
// stream plays.
func (st *Stream) Scenario() Scenario { return st.sc }

// opsThisTick is the arrival pattern: how many ops land on tick t.
func (st *Stream) opsThisTick(t uint64) int {
	switch st.sc.Arrival.Kind {
	case "steady":
		return 1
	case "bursty":
		if t%(burstOnTicks+burstOffTicks) < burstOnTicks {
			return burstOpsPerTick
		}
		return 0
	case "diurnal":
		pos := t % diurnalPeriod
		half := uint64(diurnalPeriod / 2)
		if pos > half {
			pos = diurnalPeriod - pos
		}
		return 1 + int((diurnalPeak-1)*pos/half)
	}
	panic("workload: unvalidated arrival " + st.sc.Arrival.Kind)
}

// genOp draws one op: kind from the mix, key from the kind's generator.
func (st *Stream) genOp() Op {
	m := st.sc.Mix
	r := st.kinds.Intn(100)
	switch {
	case r < m.SearchPct:
		return Op{Kind: OpSearch, Key: st.searchs.next()}
	case r < m.SearchPct+m.InsertPct:
		return Op{Kind: OpInsert, Key: st.inserts.next()}
	case r < m.SearchPct+m.InsertPct+m.DeletePct:
		return Op{Kind: OpDelete, Key: st.deletes.next()}
	default:
		k := st.searchs.next()
		// Clamp so the scan window stays inside the keyspace.
		if max := st.sc.KeySpace - ScanSpan; k > max {
			k = max
		}
		return Op{Kind: OpScan, Key: k}
	}
}

// NextTick appends the ops arriving on the next tick to buf and returns
// it. The returned slice is empty (but non-nil semantics of buf are
// preserved) during a bursty stream's off-phase.
func (st *Stream) NextTick(buf []Op) []Op {
	n := st.opsThisTick(st.tick)
	st.tick++
	for i := 0; i < n; i++ {
		buf = append(buf, st.genOp())
	}
	return buf
}

// Next returns the next op, skipping empty ticks.
func (st *Stream) Next() Op {
	for st.pos >= len(st.pending) {
		st.pending = st.NextTick(st.pending[:0])
		st.pos = 0
	}
	op := st.pending[st.pos]
	st.pos++
	return op
}

// TakeOps materializes the next n ops of the stream (empty ticks
// skipped).
func TakeOps(st *Stream, n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = st.Next()
	}
	return out
}
