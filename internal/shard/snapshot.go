package shard

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
)

// Composed snapshot codec: the sharded map persists itself as its
// partition vector, each shard's payload produced by (and restored
// through) the inner dictionary's own core.Snapshotter. Layout,
// little-endian:
//
//	magic "SHRD" | version u32 | shard count u32 |
//	per shard: payload length u64 | payload bytes
//
// Keys route to shards by hash, so the shard count is part of the
// format: a snapshot only restores into a map with the same number of
// partitions (the registry's Save records the count for exactly this
// reason). Inner payloads self-identify, so feeding a shard section to
// the wrong inner kind fails with its ErrBadMagic rather than a
// misparse.
const (
	snapshotMagic   = "SHRD"
	snapshotVersion = 1

	// maxShardPayload bounds one shard's claimed payload length; the
	// buffer still grows only with bytes actually read.
	maxShardPayload = int64(1) << 40
)

var _ core.Snapshotter = (*Map)(nil)

// WriteTo implements io.WriterTo. Every shard's inner dictionary must
// implement core.Snapshotter. Shards are serialized one at a time under
// their own locks (the usual weakly-consistent aggregate view: writers
// concurrent with WriteTo land in the snapshot or not per shard).
func (m *Map) WriteTo(w io.Writer) (int64, error) {
	var head [8]byte
	var n int64
	writeAll := func(b []byte) error {
		k, err := w.Write(b)
		n += int64(k)
		return err
	}
	if err := writeAll([]byte(snapshotMagic)); err != nil {
		return n, err
	}
	binary.LittleEndian.PutUint32(head[0:4], snapshotVersion)
	binary.LittleEndian.PutUint32(head[4:8], uint32(len(m.shards)))
	if err := writeAll(head[:8]); err != nil {
		return n, err
	}
	var buf bytes.Buffer
	for i, s := range m.shards {
		sn, ok := s.d.(core.Snapshotter)
		if !ok {
			return n, fmt.Errorf("shard: inner dictionary %T is not a Snapshotter", s.d)
		}
		buf.Reset()
		s.mu.Lock()
		_, err := sn.WriteTo(&buf)
		s.mu.Unlock()
		if err != nil {
			return n, fmt.Errorf("shard: snapshotting shard %d: %w", i, err)
		}
		binary.LittleEndian.PutUint64(head[:8], uint64(buf.Len()))
		if err := writeAll(head[:8]); err != nil {
			return n, err
		}
		if err := writeAll(buf.Bytes()); err != nil {
			return n, err
		}
	}
	return n, nil
}

// ReadFrom implements io.ReaderFrom: it restores a WriteTo stream into
// a freshly built, empty map with the same shard count (rebuild with
// WithShards on a mismatch). Each shard's section is buffered in full
// and handed to the inner dictionary's ReadFrom as an exact in-memory
// slice, so inner decoders can never over-consume a neighbour's bytes.
func (m *Map) ReadFrom(r io.Reader) (int64, error) {
	if m.Len() != 0 {
		return 0, errors.New("shard: ReadFrom into a non-empty map")
	}
	var head [8]byte
	var n int64
	readFull := func(b []byte) error {
		if _, err := io.ReadFull(r, b); err != nil {
			return fmt.Errorf("shard: snapshot truncated at byte %d: %w", n, core.ErrCorrupt)
		}
		n += int64(len(b))
		return nil
	}
	magic := make([]byte, len(snapshotMagic))
	if err := readFull(magic); err != nil {
		return n, err
	}
	if string(magic) != snapshotMagic {
		return n, fmt.Errorf("shard: snapshot magic %q, want %q: %w", magic, snapshotMagic, core.ErrBadMagic)
	}
	if err := readFull(head[:8]); err != nil {
		return n, err
	}
	if v := binary.LittleEndian.Uint32(head[0:4]); v != snapshotVersion {
		return n, fmt.Errorf("shard: snapshot version %d, this build reads %d: %w",
			v, snapshotVersion, core.ErrBadVersion)
	}
	if count := binary.LittleEndian.Uint32(head[4:8]); int(count) != len(m.shards) {
		return n, fmt.Errorf("shard: snapshot has %d shards, map built with %d (rebuild with WithShards(%d))",
			count, len(m.shards), count)
	}
	var section bytes.Buffer
	for i, s := range m.shards {
		sn, ok := s.d.(core.Snapshotter)
		if !ok {
			return n, fmt.Errorf("shard: inner dictionary %T is not a Snapshotter", s.d)
		}
		if err := readFull(head[:8]); err != nil {
			return n, err
		}
		payloadLen := int64(binary.LittleEndian.Uint64(head[:8]))
		if payloadLen < 0 || payloadLen > maxShardPayload {
			return n, fmt.Errorf("shard: shard %d payload length %d out of range: %w",
				i, payloadLen, core.ErrCorrupt)
		}
		section.Reset()
		copied, err := io.Copy(&section, io.LimitReader(r, payloadLen))
		n += copied
		if err != nil || copied != payloadLen {
			return n, fmt.Errorf("shard: shard %d payload truncated at %d of %d bytes: %w",
				i, copied, payloadLen, core.ErrCorrupt)
		}
		s.mu.Lock()
		_, err = sn.ReadFrom(bytes.NewReader(section.Bytes()))
		s.mu.Unlock()
		if err != nil {
			return n, fmt.Errorf("shard: restoring shard %d: %w", i, err)
		}
	}
	return n, nil
}
