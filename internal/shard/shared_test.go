package shard

import (
	"sync"
	"testing"

	"repro/internal/cola"
	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/workload"
)

// exclusiveInner hides SharedReader methods so a factory can force the
// exclusive-lock read path on an otherwise shared-read-safe structure.
type exclusiveInner struct {
	core.Dictionary
}

func TestSharedReadsProbe(t *testing.T) {
	shared := New(WithShards(4))
	if !shared.SharedReads() || !core.SharedReads(shared) {
		t.Fatal("default COLA shards must report shared reads")
	}
	if !shared.Caps().SharedReads {
		t.Fatal("Caps: SharedReads = false for COLA shards")
	}

	excl := New(WithShards(4), WithDictionary(func(_ int, sp *dam.Space) core.Dictionary {
		return exclusiveInner{cola.NewCOLA(sp)}
	}))
	if excl.SharedReads() || core.SharedReads(excl) {
		t.Fatal("hidden-SharedReader shards must report exclusive reads")
	}

	deam := New(WithShards(2), WithDictionary(func(_ int, sp *dam.Space) core.Dictionary {
		return cola.NewDeamortized(sp)
	}))
	if deam.SharedReads() {
		t.Fatal("deamortized shards must report exclusive reads")
	}
	// Brackets on a non-shared map are no-ops, not panics.
	deam.BeginSharedReads()
	deam.EndSharedReads()

	// A mixed lineup (possible only via an index-dependent factory)
	// degrades the whole map to exclusive: all-or-nothing.
	mixed := New(WithShards(2), WithDictionary(func(i int, sp *dam.Space) core.Dictionary {
		if i == 0 {
			return cola.NewCOLA(sp)
		}
		return exclusiveInner{cola.NewCOLA(sp)}
	}))
	if mixed.SharedReads() {
		t.Fatal("mixed lineup must degrade to exclusive reads")
	}
}

// TestSharedSearchStressWithDAM is the -race stress of the per-shard
// RLock fast path with per-shard DAM stores: many readers share each
// shard concurrently (searches and ranges, bracketed by the stores'
// shared-read epochs) while writers insert and delete through the
// exclusive side and pollers aggregate Len/Stats/Transfers from the
// read side.
func TestSharedSearchStressWithDAM(t *testing.T) {
	m := New(WithShards(4), WithDAM(dam.DefaultBlockBytes, 1<<16))
	if !m.SharedReads() {
		t.Fatal("precondition: DAM-charged COLA shards must be shared-read capable")
	}
	const keyspace = 1 << 12
	for k := uint64(0); k < keyspace; k += 2 {
		m.Insert(k, k)
	}
	perG := 4000
	if testing.Short() {
		perG = 800
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 21)
			for i := 0; i < perG; i++ {
				k := rng.Uint64() % keyspace
				if v, ok := m.Search(k); ok && v != k && v != k+1 {
					t.Errorf("Search(%d) = %d", k, v)
					return
				}
				if i%128 == 0 {
					m.Range(k, k+64, func(core.Element) bool { return true })
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 91)
			for i := 0; i < perG/2; i++ {
				k := rng.Uint64() % keyspace
				if rng.Uint64()%4 == 3 {
					m.Delete(k)
				} else {
					m.Insert(k, k+1)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < perG/4; i++ {
			_ = m.Len()
			_ = m.Stats()
			_ = m.Transfers()
		}
	}()
	wg.Wait()

	if m.Transfers() == 0 {
		t.Fatal("per-shard DAM stores recorded no transfers")
	}
	if st := m.Stats(); st.Searches == 0 {
		t.Fatal("Stats.Searches = 0 after concurrent searches")
	}
	m.Insert(keyspace+3, 9)
	if v, ok := m.Search(keyspace + 3); !ok || v != 9 {
		t.Fatalf("post-stress Search = (%d,%v)", v, ok)
	}
}

// TestExclusiveFallbackStress runs the same shape with the shared path
// disabled, keeping the pre-shared-read lock discipline covered.
func TestExclusiveFallbackStress(t *testing.T) {
	m := New(WithShards(4), WithDictionary(func(_ int, sp *dam.Space) core.Dictionary {
		return exclusiveInner{cola.NewCOLA(sp)}
	}))
	const keyspace = 1 << 10
	perG := 2000
	if testing.Short() {
		perG = 400
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 51)
			for i := 0; i < perG; i++ {
				k := rng.Uint64() % keyspace
				switch rng.Uint64() % 4 {
				case 0:
					m.Insert(k, k)
				case 1:
					_ = m.Len()
				default:
					m.Search(k)
				}
			}
		}(w)
	}
	wg.Wait()
	m.Insert(1, 1)
	if _, ok := m.Search(1); !ok {
		t.Fatal("post-stress Search lost an insert")
	}
}
