// Package shard provides a hash-partitioned concurrent dictionary: N
// independent single-threaded dictionaries (any structure from this
// repository — COLA, deamortized COLA, shuttle tree, B-tree, BRT) each
// guarded by its own sync.RWMutex, with fibonacci-hash key→shard
// routing. Inserts and searches on different shards proceed in
// parallel, and a level merge inside one shard never blocks the others
// — the multi-core scaling story the single global lock of
// repro.SynchronizedDictionary cannot offer.
//
// Parallelism comes from two sources. Partitioning: with S shards, up
// to S mutations run concurrently. Reader sharing: when the per-shard
// structures genuinely support shared reads (core.AsSharedReader —
// atomic counters, pooled read scratch, and frozen DAM accounting
// inside Begin/EndSharedReads brackets), Search and Range take the
// shard's RWMutex on its read side, so any number of searches proceed
// concurrently even within one shard. For inner structures that stay
// exclusive (the deamortized COLAs, an accounted shuttle tree) reads
// fall back to the shard's exclusive lock and only the partitioning
// term remains. The read side also serves the aggregation
// paths (Len, Stats, Transfers), which only read structure state.
//
// Construction uses functional options:
//
//	m := shard.New(
//		shard.WithShards(8),
//		shard.WithDictionary(func(i int, sp *dam.Space) core.Dictionary {
//			return cola.NewCOLA(sp)
//		}),
//		shard.WithBatchSize(512),
//	)
//
// By default accounting is disabled (every shard gets a nil Space, pure
// wall-clock behaviour); WithDAM gives each shard its own private Store
// so cost accounting stays race-free, and Transfers reports the sum.
package shard

import (
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/cola"
	"repro/internal/core"
	"repro/internal/dam"
)

// Factory builds the dictionary for one shard. The space is the shard's
// private DAM space (nil when accounting is disabled).
type Factory func(shard int, space *dam.Space) core.Dictionary

// config collects the options; zero fields are filled by defaults.
type config struct {
	shards     int
	batchSize  int
	factory    Factory
	blockBytes int64
	cacheBytes int64
	useDAM     bool
}

// Option configures New, in the functional-options style.
type Option func(*config)

// WithShards sets the number of partitions. Values are rounded up to
// the next power of two so shard routing stays a single multiply-shift;
// n <= 0 panics. The default is the next power of two >= GOMAXPROCS.
func WithShards(n int) Option {
	if n <= 0 {
		panic("shard: WithShards requires n > 0")
	}
	return func(c *config) { c.shards = ceilPow2(n) }
}

// WithDictionary sets the per-shard dictionary constructor. The default
// builds the 2-COLA.
func WithDictionary(f Factory) Option {
	if f == nil {
		panic("shard: WithDictionary requires a non-nil factory")
	}
	return func(c *config) { c.factory = f }
}

// WithBatchSize sets how many pending elements a Loader accumulates
// before flushing them, grouped per shard, under one lock acquisition
// per touched shard; k <= 0 panics. The default is 256.
func WithBatchSize(k int) Option {
	if k <= 0 {
		panic("shard: WithBatchSize requires k > 0")
	}
	return func(c *config) { c.batchSize = k }
}

// WithDAM enables DAM cost accounting: each shard gets its own Store
// with the given block and cache sizes (so the simulated cache is
// per-shard and accounting never races across shards) and passes a
// Space of it to the factory. Transfers then reports the aggregate.
func WithDAM(blockBytes, cacheBytes int64) Option {
	return func(c *config) {
		c.useDAM = true
		c.blockBytes = blockBytes
		c.cacheBytes = cacheBytes
	}
}

func ceilPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// fibMult is 2^64 / phi, the multiplier of fibonacci hashing; odd, so
// multiplication is a bijection on uint64 and the high bits mix every
// input bit. The same constant drives the repo's workload generators.
const fibMult = 0x9E3779B97F4A7C15

// state is one partition: a dictionary and its lock, padded apart from
// its neighbours so per-shard locks do not false-share a cache line.
type state struct {
	mu    sync.RWMutex
	d     core.Dictionary
	sr    core.SharedReader // bracket target; non-nil only when m.shared
	store *dam.Store        // nil unless WithDAM
	_     [16]byte          // pad to separate adjacent shards' hot words
}

// Map is the sharded concurrent dictionary. It implements
// core.Dictionary, core.Deleter, and core.Statser; every method is safe
// for concurrent use.
type Map struct {
	shards    []*state
	shift     uint // 64 - log2(len(shards))
	batchSize int
	// shared records whether EVERY shard's structure honestly declared
	// shared-read safety at construction; Search/Range then take the
	// per-shard read lock. All-or-nothing keeps the probe answer and
	// the lock discipline uniform across shards.
	shared bool
}

var (
	_ core.Dictionary       = (*Map)(nil)
	_ core.Deleter          = (*Map)(nil)
	_ core.Statser          = (*Map)(nil)
	_ core.TransferCounter  = (*Map)(nil)
	_ core.BatchInserter    = (*Map)(nil)
	_ core.SharedReader     = (*Map)(nil)
	_ core.SharedReadProber = (*Map)(nil)
	_ core.CapsProber       = (*Map)(nil)
)

// New builds a sharded map from the given options.
func New(opts ...Option) *Map {
	cfg := config{
		shards:    ceilPow2(runtime.GOMAXPROCS(0)),
		batchSize: 256,
		factory:   func(_ int, sp *dam.Space) core.Dictionary { return cola.NewCOLA(sp) },
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	m := &Map{
		shards:    make([]*state, cfg.shards),
		shift:     uint(64 - bits.TrailingZeros(uint(cfg.shards))),
		batchSize: cfg.batchSize,
	}
	m.shared = true
	for i := range m.shards {
		st := &state{}
		var sp *dam.Space
		if cfg.useDAM {
			st.store = dam.NewStore(cfg.blockBytes, cfg.cacheBytes)
			sp = st.store.Space("shard")
		}
		st.d = cfg.factory(i, sp)
		if st.d == nil {
			panic("shard: factory returned a nil dictionary")
		}
		if sr, ok := core.AsSharedReader(st.d); ok {
			st.sr = sr
		} else {
			m.shared = false
		}
		m.shards[i] = st
	}
	if !m.shared {
		// All-or-nothing: a mixed lineup (possible only via a factory
		// that varies by shard index) degrades every shard to exclusive
		// reads so the probe answer stays uniform.
		for _, st := range m.shards {
			st.sr = nil
		}
	}
	return m
}

// shardIdxOf routes a key to its partition by fibonacci hashing: the
// top log2(S) bits of key*fibMult. With one shard the shift is 64 and
// Go defines x >> 64 == 0, so every key lands in shard 0.
func (m *Map) shardIdxOf(key uint64) int {
	return int((key * fibMult) >> m.shift)
}

func (m *Map) shardOf(key uint64) *state {
	return m.shards[m.shardIdxOf(key)]
}

// NumShards reports the number of partitions.
func (m *Map) NumShards() int { return len(m.shards) }

// InnerAt returns shard i's inner dictionary, for type and capability
// introspection (e.g. verifying a save's claimed inner kind against the
// live map). Callers must not mutate it: the shard's lock is not held.
func (m *Map) InnerAt(i int) core.Dictionary { return m.shards[i].d }

// SharedReads implements core.SharedReadProber: true only when every
// shard's structure honestly declared shared-read safety, i.e. when
// Search/Range actually run under the read lock. The map's own methods
// exist unconditionally, so this — not a type assertion — is the
// authoritative probe, exactly as on the synchronized wrapper; the
// registry's Caps.SharedReads flag for "sharded" means "forwarded when
// the inner kind has it", and this probe is how the built instance
// answers for a concrete (possibly nested) inner.
func (m *Map) SharedReads() bool { return m.shared }

// BeginSharedReads implements core.SharedReader for outer wrappers
// nesting this map: the bracket forwards to every shard (brackets
// nest), and is a no-op when the map is not shared-read capable.
func (m *Map) BeginSharedReads() {
	if !m.shared {
		return
	}
	for _, s := range m.shards {
		s.sr.BeginSharedReads()
	}
}

// EndSharedReads closes the bracket opened by BeginSharedReads.
func (m *Map) EndSharedReads() {
	if !m.shared {
		return
	}
	for _, s := range m.shards {
		s.sr.EndSharedReads()
	}
}

// Caps implements core.CapsProber: what the map genuinely forwards to
// its per-shard structures — the same honest probe the synchronized and
// durable wrappers expose, so the registry's capability reporting can
// never disagree with what a wrapper actually forwards for a nested
// inner. The per-shard structures are built by one factory, so shard 0
// answers for the interface probes; shared reads require every shard
// (see SharedReads). Snapshot follows the inner (WriteTo errors on a
// non-snapshot inner), and batch is native regardless of the inner:
// ApplyBatch's per-shard grouping is the map's own fast path.
func (m *Map) Caps() core.Caps {
	c := core.CapsOf(m.shards[0].d)
	c.Batch = true
	c.SharedReads = m.shared
	return c
}

// Insert implements core.Dictionary.
func (m *Map) Insert(key, value uint64) {
	s := m.shardOf(key)
	s.mu.Lock()
	s.d.Insert(key, value)
	s.mu.Unlock()
}

// Search implements core.Dictionary. With shared-read-safe inner
// structures the shard lock is taken on its read side and bracketed
// (see the package comment), so searches scale with readers even
// within one shard; otherwise the lock is exclusive.
func (m *Map) Search(key uint64) (uint64, bool) {
	s := m.shardOf(key)
	if m.shared {
		s.mu.RLock()
		s.sr.BeginSharedReads()
		v, ok := s.d.Search(key)
		s.sr.EndSharedReads()
		s.mu.RUnlock()
		return v, ok
	}
	s.mu.Lock()
	v, ok := s.d.Search(key)
	s.mu.Unlock()
	return v, ok
}

// Delete implements core.Deleter, forwarding to the shard's structure
// if it supports deletion and reporting false otherwise.
func (m *Map) Delete(key uint64) bool {
	s := m.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if del, ok := s.d.(core.Deleter); ok {
		return del.Delete(key)
	}
	return false
}

// Len implements core.Dictionary: the sum of live keys over all shards.
// Shards are read-locked one at a time, so the total is a consistent
// snapshot only when no writer is concurrent.
func (m *Map) Len() int {
	n := 0
	for _, s := range m.shards {
		s.mu.RLock()
		n += s.d.Len()
		s.mu.RUnlock()
	}
	return n
}

// Stats implements core.Statser, accumulating the counters of every
// shard whose structure exposes them.
func (m *Map) Stats() core.Stats {
	var total core.Stats
	for _, s := range m.shards {
		s.mu.RLock()
		if st, ok := s.d.(core.Statser); ok {
			total.Add(st.Stats())
		}
		s.mu.RUnlock()
	}
	return total
}

// Transfers reports the aggregate DAM block transfers across all
// per-shard stores (zero unless built WithDAM).
func (m *Map) Transfers() uint64 {
	var total uint64
	for _, s := range m.shards {
		if s.store == nil {
			continue
		}
		s.mu.RLock()
		total += s.store.Transfers()
		s.mu.RUnlock()
	}
	return total
}

// rangeScratch is the reusable buffer set of one Range call: every
// shard's snapshot lands back to back in buf (ends records the
// boundaries), runs and heads serve the k-way merge, and collect is
// the append callback built once so the per-shard Range calls do not
// allocate a closure. Scratches are pooled — Range can run on
// different shards concurrently — and returned with lengths reset;
// capacity is retained, which is what makes steady-state Range
// allocation-free.
type rangeScratch struct {
	buf     []core.Element
	ends    []int
	runs    [][]core.Element
	heads   []mergeHead
	collect func(core.Element) bool
}

var rangePool = sync.Pool{New: func() any {
	sc := &rangeScratch{}
	sc.collect = func(e core.Element) bool {
		sc.buf = append(sc.buf, e)
		return true
	}
	return sc
}}

func (sc *rangeScratch) release() {
	sc.buf = sc.buf[:0]
	sc.ends = sc.ends[:0]
	sc.runs = sc.runs[:0]
	sc.heads = sc.heads[:0]
	rangePool.Put(sc)
}

// Range implements core.Dictionary: fn sees every element with
// lo <= key <= hi in ascending key order, stopping early when fn
// returns false. Keys are hash-partitioned, so a contiguous key range
// spans every shard; Range snapshots each shard's slice of the window
// under that shard's lock and then k-way-merges the (already sorted)
// snapshots. The merge sees each shard at a slightly different instant
// — elements inserted while the snapshot walk is in flight may or may
// not appear, the usual weakly-consistent iteration contract.
//
// Cost: every shard's full slice of [lo, hi] is materialized before
// the first fn call, even if fn stops after one element — returning
// false saves merge work, not snapshot work. Callers probing for a
// single successor should bound hi accordingly.
func (m *Map) Range(lo, hi uint64, fn func(core.Element) bool) {
	sc := rangePool.Get().(*rangeScratch)
	defer sc.release()
	for _, s := range m.shards {
		if m.shared {
			s.mu.RLock()
			s.sr.BeginSharedReads()
			s.d.Range(lo, hi, sc.collect)
			s.sr.EndSharedReads()
			s.mu.RUnlock()
		} else {
			s.mu.Lock()
			s.d.Range(lo, hi, sc.collect)
			s.mu.Unlock()
		}
		sc.ends = append(sc.ends, len(sc.buf))
	}
	// Rebuild the run views only now: collect may have grown (and
	// reallocated) buf, so earlier subslices could point at a stale
	// backing array.
	start := 0
	for _, end := range sc.ends {
		if end > start {
			sc.runs = append(sc.runs, sc.buf[start:end])
		}
		start = end
	}
	for i := range sc.runs {
		sc.heads = append(sc.heads, mergeHead{run: i})
	}
	mergeRuns(sc.runs, sc.heads, fn)
}

// mergeHead is one run's cursor in the k-way-merge heap.
type mergeHead struct {
	run int
	idx int
}

// mergeRuns streams the k sorted runs in ascending key order through a
// binary min-heap of run heads, O(total log k). h must hold one head
// per run (the caller provides it so the heap can live in reused
// scratch).
func mergeRuns(runs [][]core.Element, h []mergeHead, fn func(core.Element) bool) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(runs, h, i)
	}
	for len(h) > 0 {
		top := h[0]
		if !fn(runs[top.run][top.idx]) {
			return
		}
		if top.idx+1 < len(runs[top.run]) {
			h[0].idx++
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		siftDown(runs, h, 0)
	}
}

// siftDown restores the min-heap property of h from index i, ordering
// heads by their run's current key.
func siftDown(runs [][]core.Element, h []mergeHead, i int) {
	headKey := func(x mergeHead) uint64 { return runs[x.run][x.idx].Key }
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && headKey(h[l]) < headKey(h[min]) {
			min = l
		}
		if r < len(h) && headKey(h[r]) < headKey(h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// batchScratch holds the counting-sort buffers ApplyBatch reuses:
// counts/offs are per-shard tallies and bucket cursors, buf receives
// the batch regrouped shard-contiguously. Pooled for the same reason
// as rangeScratch — loaders on different goroutines batch
// concurrently.
type batchScratch struct {
	counts []int
	offs   []int
	buf    []core.Element
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// ApplyBatch inserts every element, grouping the batch per shard first
// so each touched shard's lock is taken exactly once. Duplicate keys in
// the batch apply in slice order (last write wins), matching a plain
// Insert loop. This is the amortized ingestion path: for a batch of k
// elements over S shards, lock traffic drops from k acquisitions to at
// most S.
//
// Grouping is a two-pass counting sort into a pooled scratch buffer —
// count per shard, prefix-sum, scatter in input order (which keeps the
// within-shard order, preserving last-write-wins) — so steady-state
// batches allocate nothing.
func (m *Map) ApplyBatch(elems []core.Element) {
	if len(elems) == 0 {
		return
	}
	sc := batchPool.Get().(*batchScratch)
	nShards := len(m.shards)
	if cap(sc.counts) < nShards {
		sc.counts = make([]int, nShards)
		sc.offs = make([]int, nShards)
	}
	counts := sc.counts[:nShards]
	offs := sc.offs[:nShards]
	clear(counts)
	for _, e := range elems {
		counts[m.shardIdxOf(e.Key)]++
	}
	sum := 0
	for i, n := range counts {
		offs[i] = sum
		sum += n
	}
	if cap(sc.buf) < len(elems) {
		sc.buf = make([]core.Element, len(elems))
	}
	buf := sc.buf[:len(elems)]
	for _, e := range elems {
		i := m.shardIdxOf(e.Key)
		buf[offs[i]] = e
		offs[i]++
	}
	// After the scatter offs[i] is the end of bucket i; buckets are
	// contiguous, so bucket i starts where bucket i-1 ends. Each group
	// applies through the shard structure's own batch path when it has
	// one — for a durable inner that is what turns a shard's group into
	// ONE write-ahead-log record (one append syscall) instead of one per
	// element, the batch-pipelined acknowledgement path the server rides.
	start := 0
	for i := 0; i < nShards; i++ {
		end := offs[i]
		if end > start {
			s := m.shards[i]
			s.mu.Lock()
			core.InsertBatch(s.d, buf[start:end])
			s.mu.Unlock()
		}
		start = end
	}
	batchPool.Put(sc)
}

// InsertBatch implements core.BatchInserter; it is ApplyBatch under the
// interface's name, so generic batch callers hit the per-shard-grouped
// lock-amortized path.
func (m *Map) InsertBatch(elems []core.Element) { m.ApplyBatch(elems) }

// Loader is the channel-fed asynchronous ingestion path: callers send
// elements on C and a background goroutine folds them into the map in
// per-shard-grouped batches of the map's batch size. Close flushes the
// tail and blocks until everything sent has been applied.
type Loader struct {
	m  *Map
	ch chan core.Element
	wg sync.WaitGroup
}

// NewLoader starts a loader goroutine for the map. The channel buffer
// is one full batch so producers rarely block on the flush.
func (m *Map) NewLoader() *Loader {
	l := &Loader{m: m, ch: make(chan core.Element, m.batchSize)}
	l.wg.Add(1)
	go l.run()
	return l
}

// C is the send side: producers write elements, Close when done.
func (l *Loader) C() chan<- core.Element { return l.ch }

// Close signals end of input and waits for the final flush. It must be
// called exactly once, after all sends have completed.
func (l *Loader) Close() {
	close(l.ch)
	l.wg.Wait()
}

func (l *Loader) run() {
	defer l.wg.Done()
	buf := make([]core.Element, 0, l.m.batchSize)
	for e := range l.ch {
		buf = append(buf, e)
		if len(buf) == l.m.batchSize {
			l.m.ApplyBatch(buf)
			buf = buf[:0]
		}
	}
	l.m.ApplyBatch(buf)
}
