package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// prefillMap builds a 4-shard map over the default 2-COLA (no DAM, so
// the test measures the structures, not the simulator) and inserts n
// distinct random keys.
func prefillMap(t *testing.T, n int) (*Map, []uint64) {
	t.Helper()
	m := New(WithShards(4))
	seq := workload.NewRandomUnique(5)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = seq.Next()
		m.Insert(keys[i], keys[i])
	}
	return m, keys
}

// TestShardSearchAllocsSteadyState asserts the sharded map's search
// path — shard routing, lock, per-shard COLA search — is
// allocation-free.
func TestShardSearchAllocsSteadyState(t *testing.T) {
	m, keys := prefillMap(t, 1<<13)
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		m.Search(keys[i%len(keys)])
		i++
	})
	if avg != 0 {
		t.Fatalf("shard.Map.Search allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestShardRangeAllocsSteadyState asserts Range's snapshot + k-way
// merge runs entirely out of pooled scratch once capacities have
// plateaued.
func TestShardRangeAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	m, keys := prefillMap(t, 1<<12)
	var sum uint64
	fn := func(e core.Element) bool { sum += e.Value; return true }
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		lo := keys[i%len(keys)]
		m.Range(lo, lo+1<<24, fn)
		i++
	})
	if avg != 0 {
		t.Fatalf("shard.Map.Range allocates %.2f allocs/op in steady state, want 0", avg)
	}
	_ = sum
}

// TestApplyBatchAllocsSteadyState asserts the per-shard grouping of the
// batch ingestion path reuses its pooled counting-sort scratch. The
// per-shard Inserts themselves may allocate inside the COLA when a
// merge crosses a level boundary, so the batch is small and the map
// pre-sized the same way as the insert steady-state test in
// internal/cola.
func TestApplyBatchAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	m, _ := prefillMap(t, 1<<14+1)
	seq := workload.NewRandomUnique(17)
	batch := make([]core.Element, 64)
	avg := testing.AllocsPerRun(50, func() {
		for i := range batch {
			k := seq.Next()
			batch[i] = core.Element{Key: k, Value: k}
		}
		m.ApplyBatch(batch)
	})
	if avg != 0 {
		t.Fatalf("shard.Map.ApplyBatch allocates %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestApplyBatchGroupingSemantics pins the counting-sort regrouping to
// the documented contract: within a batch, later duplicates win, and
// every element lands in the shard its key hashes to.
func TestApplyBatchGroupingSemantics(t *testing.T) {
	m := New(WithShards(8))
	batch := []core.Element{
		{Key: 1, Value: 10},
		{Key: 2, Value: 20},
		{Key: 1, Value: 11}, // duplicate: must win over {1,10}
		{Key: 3, Value: 30},
		{Key: 2, Value: 22}, // duplicate: must win over {2,20}
	}
	m.ApplyBatch(batch)
	if m.Len() != 3 {
		t.Fatalf("Len = %d after batch with duplicates, want 3", m.Len())
	}
	for k, want := range map[uint64]uint64{1: 11, 2: 22, 3: 30} {
		got, ok := m.Search(k)
		if !ok || got != want {
			t.Fatalf("Search(%d) = %d, %v; want %d, true", k, got, ok, want)
		}
	}
}
