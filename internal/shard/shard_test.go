package shard

import (
	"sync"
	"testing"

	"repro/internal/btree"
	"repro/internal/cola"
	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/shuttle"
	"repro/internal/workload"
)

func TestOptionsDefaultsAndRounding(t *testing.T) {
	m := New()
	if s := m.NumShards(); s&(s-1) != 0 || s < 1 {
		t.Fatalf("default NumShards = %d, want a power of two", s)
	}
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := New(WithShards(tc.in)).NumShards(); got != tc.want {
			t.Errorf("WithShards(%d) -> %d shards, want %d", tc.in, got, tc.want)
		}
	}
}

func TestOptionPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"WithShards(0)":       func() { WithShards(0) },
		"WithBatchSize(0)":    func() { WithBatchSize(0) },
		"WithDictionary(nil)": func() { WithDictionary(nil) },
		"factory returns nil": func() { New(WithDictionary(func(int, *dam.Space) core.Dictionary { return nil })) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRoutingCoversAllShards(t *testing.T) {
	const shards = 8
	m := New(WithShards(shards))
	hit := make([]bool, shards)
	for k := uint64(0); k < 4096; k++ {
		hit[m.shardIdxOf(k)] = true
	}
	for i, h := range hit {
		if !h {
			t.Errorf("no key of 0..4095 routed to shard %d", i)
		}
	}
	// Routing must be a pure function of the key.
	for k := uint64(0); k < 64; k++ {
		if m.shardIdxOf(k) != m.shardIdxOf(k) {
			t.Fatalf("routing unstable for key %d", k)
		}
	}
}

// TestDictionarySemantics drives the sharded map against a map oracle
// across several shard counts and inner structures.
func TestDictionarySemantics(t *testing.T) {
	factories := map[string]struct {
		f Factory
		// canDelete marks structures implementing core.Deleter; the
		// deamortized COLA does not, so Delete must report false.
		canDelete bool
		// exactLen marks structures whose Len is exact under duplicate
		// keys (the amortized COLA's Len overcounts until Compact).
		exactLen bool
	}{
		"cola":        {func(_ int, sp *dam.Space) core.Dictionary { return cola.NewCOLA(sp) }, true, false},
		"btree":       {func(_ int, sp *dam.Space) core.Dictionary { return btree.New(btree.Options{Space: sp}) }, true, true},
		"deamortized": {func(_ int, sp *dam.Space) core.Dictionary { return cola.NewDeamortized(sp) }, false, false},
	}
	for name, tc := range factories {
		for _, shards := range []int{1, 2, 8} {
			m := New(WithShards(shards), WithDictionary(tc.f))
			ref := make(map[uint64]uint64)
			rng := workload.NewRNG(uint64(shards) + 99)
			for i := 0; i < 3000; i++ {
				k := rng.Uint64() % 512
				switch rng.Uint64() % 4 {
				case 0, 1:
					v := rng.Uint64()
					m.Insert(k, v)
					ref[k] = v
				case 2:
					_, present := ref[k]
					want := present && tc.canDelete
					if got := m.Delete(k); got != want {
						t.Fatalf("%s/%d: Delete(%d) = %v, want %v", name, shards, k, got, want)
					}
					if tc.canDelete {
						delete(ref, k)
					}
				case 3:
					gv, gok := m.Search(k)
					wv, wok := ref[k]
					if gok != wok || (gok && gv != wv) {
						t.Fatalf("%s/%d: Search(%d) = (%d,%v), want (%d,%v)", name, shards, k, gv, gok, wv, wok)
					}
				}
			}
			if tc.exactLen && m.Len() != len(ref) {
				t.Fatalf("%s/%d: Len = %d, want %d", name, shards, m.Len(), len(ref))
			}
		}
	}
}

func TestRangeMergesAcrossShards(t *testing.T) {
	m := New(WithShards(8))
	const n = 2048
	// Insert in a scrambled order; Range must still come back sorted.
	seq := workload.NewRandomUnique(5)
	ref := make(map[uint64]struct{})
	for i := 0; i < n; i++ {
		k := seq.Next() % (4 * n) // collisions exercise update semantics
		m.Insert(k, k+1)
		ref[k] = struct{}{}
	}
	var got []core.Element
	m.Range(0, 4*n, func(e core.Element) bool { got = append(got, e); return true })
	if len(got) != len(ref) {
		t.Fatalf("Range returned %d elements, want %d distinct keys", len(got), len(ref))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key >= got[i].Key {
			t.Fatalf("Range out of order at %d: %v then %v", i, got[i-1], got[i])
		}
	}
	for _, e := range got {
		if e.Value != e.Key+1 {
			t.Fatalf("Range element %v has wrong value", e)
		}
	}
	// Window bounds are inclusive and respected.
	lo, hi := got[10].Key, got[40].Key
	var window []core.Element
	m.Range(lo, hi, func(e core.Element) bool { window = append(window, e); return true })
	if len(window) != 31 {
		t.Fatalf("window [%d,%d] returned %d elements, want 31", lo, hi, len(window))
	}
	// Early stop.
	count := 0
	m.Range(0, 4*n, func(core.Element) bool { count++; return count < 5 })
	if count != 5 {
		t.Fatalf("early-stop Range visited %d, want 5", count)
	}
}

func TestApplyBatchAndLoader(t *testing.T) {
	const n = 10_000
	batch := make([]core.Element, 0, n)
	for i := uint64(0); i < n; i++ {
		batch = append(batch, core.Element{Key: i, Value: i * 2})
	}

	mb := New(WithShards(4))
	mb.ApplyBatch(batch)
	if mb.Len() != n {
		t.Fatalf("ApplyBatch: Len = %d, want %d", mb.Len(), n)
	}
	if v, ok := mb.Search(1234); !ok || v != 2468 {
		t.Fatalf("ApplyBatch: Search(1234) = (%d,%v)", v, ok)
	}

	// Last write wins for duplicate keys within a batch.
	mb.ApplyBatch([]core.Element{{Key: 7, Value: 1}, {Key: 7, Value: 2}})
	if v, _ := mb.Search(7); v != 2 {
		t.Fatalf("duplicate keys in batch: Search(7) = %d, want 2", v)
	}

	ml := New(WithShards(4), WithBatchSize(64))
	loader := ml.NewLoader()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 4 {
				loader.C() <- core.Element{Key: uint64(i), Value: uint64(i) * 2}
			}
		}(w)
	}
	wg.Wait()
	loader.Close()
	if ml.Len() != n {
		t.Fatalf("Loader: Len = %d, want %d", ml.Len(), n)
	}
	for _, k := range []uint64{0, 1, n / 2, n - 1} {
		if v, ok := ml.Search(k); !ok || v != k*2 {
			t.Fatalf("Loader: Search(%d) = (%d,%v), want (%d,true)", k, v, ok, k*2)
		}
	}
}

// TestInsertBatchInterface checks the core.BatchInserter path is the
// grouped ApplyBatch, reachable through the generic adapter.
func TestInsertBatchInterface(t *testing.T) {
	m := New(WithShards(4))
	var d core.Dictionary = m
	b, ok := d.(core.BatchInserter)
	if !ok {
		t.Fatal("Map does not implement core.BatchInserter")
	}
	batch := []core.Element{{Key: 1, Value: 10}, {Key: 2, Value: 20}, {Key: 1, Value: 11}}
	b.InsertBatch(batch)
	if v, _ := m.Search(1); v != 11 {
		t.Fatalf("InsertBatch last-write-wins: Search(1) = %d", v)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	core.InsertBatch(d, []core.Element{{Key: 3, Value: 30}})
	if v, ok := m.Search(3); !ok || v != 30 {
		t.Fatalf("adapter path: Search(3) = (%d,%v)", v, ok)
	}
}

func TestStatsAggregation(t *testing.T) {
	m := New(WithShards(4))
	for i := uint64(0); i < 100; i++ {
		m.Insert(i, i)
	}
	for i := uint64(0); i < 50; i++ {
		m.Search(i)
	}
	m.Delete(3)
	st := m.Stats()
	// The COLA's Delete performs an internal Search, so Searches is a
	// lower bound rather than an exact count.
	if st.Inserts != 100 || st.Searches < 50 || st.Deletes != 1 {
		t.Fatalf("aggregated Stats = %+v", st)
	}
}

func TestDeleteOnNonDeleter(t *testing.T) {
	m := New(WithShards(2), WithDictionary(func(_ int, sp *dam.Space) core.Dictionary {
		return shuttle.New(shuttle.Options{Fanout: 8, Space: sp})
	}))
	m.Insert(1, 1)
	if m.Delete(1) {
		t.Fatal("Delete on a non-Deleter structure returned true")
	}
	if _, ok := m.Search(1); !ok {
		t.Fatal("key vanished after failed Delete")
	}
}

func TestDAMAccountingPerShard(t *testing.T) {
	m := New(WithShards(4), WithDAM(4096, 1<<16))
	if m.Transfers() != 0 {
		t.Fatalf("fresh map reports %d transfers", m.Transfers())
	}
	seq := workload.NewRandomUnique(21)
	for i := 0; i < 1<<12; i++ {
		k := seq.Next()
		m.Insert(k, k)
	}
	if m.Transfers() == 0 {
		t.Fatal("DAM-charged inserts produced zero transfers")
	}
	// Default (no WithDAM) must charge nothing.
	free := New(WithShards(4))
	for i := uint64(0); i < 1000; i++ {
		free.Insert(i, i)
	}
	if free.Transfers() != 0 {
		t.Fatalf("accounting-free map reports %d transfers", free.Transfers())
	}
}

// TestConcurrentMixed hammers every public method from many goroutines;
// run with -race to check the locking discipline.
func TestConcurrentMixed(t *testing.T) {
	m := New(WithShards(8), WithBatchSize(32))
	workers := 8
	perG := 4000
	if testing.Short() {
		perG = 500
	}
	loader := m.NewLoader()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := workload.NewRNG(uint64(w) + 1)
			for i := 0; i < perG; i++ {
				k := rng.Uint64() % 8192
				switch rng.Uint64() % 8 {
				case 0, 1, 2:
					m.Insert(k, k)
				case 3:
					m.Search(k)
				case 4:
					m.Range(k, k+128, func(core.Element) bool { return true })
				case 5:
					m.Delete(k)
				case 6:
					loader.C() <- core.Element{Key: k, Value: k}
				case 7:
					m.ApplyBatch([]core.Element{{Key: k, Value: k}, {Key: k + 1, Value: k}})
					_ = m.Len()
					_ = m.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	loader.Close()
	// The map must still be coherent: a fresh insert is findable and a
	// full Range streams distinct keys in ascending order. (Len is not
	// compared: the COLA's Len overcounts duplicate inserts until the
	// levels compact, by documented design.)
	m.Insert(1<<40, 99)
	if v, ok := m.Search(1 << 40); !ok || v != 99 {
		t.Fatalf("post-stress Search = (%d,%v)", v, ok)
	}
	count := 0
	last := uint64(0)
	m.Range(0, ^uint64(0), func(e core.Element) bool {
		if count > 0 && e.Key <= last {
			t.Fatalf("post-stress Range out of order: %d after %d", e.Key, last)
		}
		last = e.Key
		count++
		return true
	})
	if count == 0 {
		t.Fatal("post-stress Range returned nothing")
	}
}

// heads builds the per-run heap slice mergeRuns expects.
func heads(runs [][]core.Element) []mergeHead {
	h := make([]mergeHead, len(runs))
	for i := range runs {
		h[i] = mergeHead{run: i}
	}
	return h
}

func TestMergeRunsEdgeCases(t *testing.T) {
	// No runs: fn never called.
	mergeRuns(nil, nil, func(core.Element) bool { t.Fatal("fn called on empty input"); return true })
	// Single run streams through unchanged.
	run := []core.Element{{Key: 1}, {Key: 5}, {Key: 9}}
	var got []uint64
	runs := [][]core.Element{run}
	mergeRuns(runs, heads(runs), func(e core.Element) bool { got = append(got, e.Key); return true })
	if len(got) != 3 || got[0] != 1 || got[2] != 9 {
		t.Fatalf("single-run merge = %v", got)
	}
	// Interleaved runs with equal-length ties.
	a := []core.Element{{Key: 0}, {Key: 4}, {Key: 8}}
	b := []core.Element{{Key: 1}, {Key: 5}, {Key: 9}}
	c := []core.Element{{Key: 2}, {Key: 3}, {Key: 10}}
	got = got[:0]
	runs = [][]core.Element{a, b, c}
	mergeRuns(runs, heads(runs), func(e core.Element) bool { got = append(got, e.Key); return true })
	want := []uint64{0, 1, 2, 3, 4, 5, 8, 9, 10}
	if len(got) != len(want) {
		t.Fatalf("merge = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
