package pma

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/dam"
	"repro/internal/workload"
)

// buildSequential inserts n items in order, each after the previous.
func buildSequential(p *PMA[int], n int) []int {
	positions := make(map[int]int) // value -> slot
	p.opt.OnMove = func(v, idx int) { positions[v] = idx }
	after := -1
	for v := 0; v < n; v++ {
		idx := p.InsertAfter(after, v)
		positions[v] = idx
		after = idx
	}
	out := make([]int, n)
	for v, idx := range positions {
		out[v] = idx
	}
	return out
}

func TestInsertFrontAndAfter(t *testing.T) {
	p := New[int](Options[int]{})
	i0 := p.InsertAfter(-1, 100)
	i1 := p.InsertAfter(i0, 200)
	if i1 <= i0 {
		t.Fatalf("order violated: %d then %d", i0, i1)
	}
	if v, ok := p.Get(i0); !ok || v != 100 {
		t.Fatalf("Get(%d) = (%d,%v)", i0, v, ok)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestInsertAfterPanicsOnEmptySlot(t *testing.T) {
	p := New[int](Options[int]{})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	p.InsertAfter(3, 1)
}

func TestOrderPreservedSequential(t *testing.T) {
	p := New[int](Options[int]{})
	const n = 5000
	buildSequential(p, n)
	p.CheckInvariants()
	// In-order scan must yield 0..n-1.
	want := 0
	p.Scan(0, p.Capacity(), func(_, v int) bool {
		if v != want {
			t.Fatalf("scan order: got %d, want %d", v, want)
		}
		want++
		return true
	})
	if want != n {
		t.Fatalf("scan yielded %d items, want %d", want, n)
	}
}

func TestOrderPreservedRandomAnchors(t *testing.T) {
	// Insert items at random anchors and verify the resulting order
	// against a reference slice maintained with the same operations.
	p := New[uint64](Options[uint64]{})
	positions := make(map[uint64]int)
	p.opt.OnMove = func(v uint64, idx int) { positions[v] = idx }
	var ref []uint64
	rng := workload.NewRNG(5)
	for v := uint64(0); v < 3000; v++ {
		if len(ref) == 0 {
			idx := p.InsertAfter(-1, v)
			positions[v] = idx
			ref = append(ref, v)
			continue
		}
		anchorOrd := rng.Intn(len(ref) + 1) // 0 = front
		var idx int
		if anchorOrd == 0 {
			idx = p.InsertAfter(-1, v)
			ref = append([]uint64{v}, ref...)
		} else {
			anchorVal := ref[anchorOrd-1]
			idx = p.InsertAfter(positions[anchorVal], v)
			ref = append(ref[:anchorOrd], append([]uint64{v}, ref[anchorOrd:]...)...)
		}
		positions[v] = idx
	}
	p.CheckInvariants()
	i := 0
	p.Scan(0, p.Capacity(), func(_ int, v uint64) bool {
		if v != ref[i] {
			t.Fatalf("position %d: got %d, want %d", i, v, ref[i])
		}
		i++
		return true
	})
	if i != len(ref) {
		t.Fatalf("scan yielded %d, want %d", i, len(ref))
	}
}

func TestOnMoveKeepsPositionsCurrent(t *testing.T) {
	p := New[int](Options[int]{})
	positions := make(map[int]int)
	p.opt.OnMove = func(v, idx int) { positions[v] = idx }
	after := -1
	for v := 0; v < 2000; v++ {
		idx := p.InsertAfter(after, v)
		positions[v] = idx
		after = idx
	}
	for v, idx := range positions {
		got, ok := p.Get(idx)
		if !ok || got != v {
			t.Fatalf("positions stale: slot %d holds (%d,%v), want %d", idx, got, ok, v)
		}
	}
}

func TestDelete(t *testing.T) {
	p := New[int](Options[int]{})
	positions := make(map[int]int)
	p.opt.OnMove = func(v, idx int) { positions[v] = idx }
	after := -1
	const n = 1000
	for v := 0; v < n; v++ {
		idx := p.InsertAfter(after, v)
		positions[v] = idx
		after = idx
	}
	// Delete the odd values.
	for v := 1; v < n; v += 2 {
		p.Delete(positions[v])
		delete(positions, v)
	}
	p.CheckInvariants()
	if p.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", p.Len(), n/2)
	}
	want := 0
	p.Scan(0, p.Capacity(), func(_, v int) bool {
		if v != want {
			t.Fatalf("scan got %d, want %d", v, want)
		}
		want += 2
		return true
	})
}

func TestDeleteAllThenReuse(t *testing.T) {
	p := New[int](Options[int]{})
	positions := make(map[int]int)
	p.opt.OnMove = func(v, idx int) { positions[v] = idx }
	after := -1
	for v := 0; v < 500; v++ {
		idx := p.InsertAfter(after, v)
		positions[v] = idx
		after = idx
	}
	for v := 0; v < 500; v++ {
		p.Delete(positions[v])
	}
	if p.Len() != 0 {
		t.Fatalf("Len = %d, want 0", p.Len())
	}
	// Capacity must have shrunk substantially.
	if p.Capacity() > 64 {
		t.Fatalf("capacity %d did not shrink", p.Capacity())
	}
	idx := p.InsertAfter(-1, 42)
	if v, ok := p.Get(idx); !ok || v != 42 {
		t.Fatal("reuse after emptying failed")
	}
}

func TestDeletePanicsOnEmpty(t *testing.T) {
	p := New[int](Options[int]{})
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	p.Delete(0)
}

func TestGapsBounded(t *testing.T) {
	// PMA guarantee: density stays within global thresholds, so capacity
	// is Theta(n).
	p := New[int](Options[int]{})
	buildSequential(p, 10000)
	density := float64(p.Len()) / float64(p.Capacity())
	if density < 0.2 || density > 1.0 {
		t.Fatalf("global density %v outside [0.2, 1.0]", density)
	}
}

// TestAmortizedMovesPolylog verifies the PMA's defining bound: amortized
// moves per insert are O(log^2 N).
func TestAmortizedMovesPolylog(t *testing.T) {
	p := New[int](Options[int]{})
	const n = 1 << 14
	buildSequential(p, n)
	perInsert := float64(p.Moves()) / float64(n)
	lg := math.Log2(float64(n))
	bound := lg * lg // the constant is close to 1 for sequential inserts
	if perInsert > bound {
		t.Fatalf("amortized moves/insert = %v, want <= log^2 N = %v", perInsert, bound)
	}
}

func TestNextPrev(t *testing.T) {
	p := New[int](Options[int]{})
	i0 := p.InsertAfter(-1, 1)
	i1 := p.InsertAfter(i0, 2)
	if got := p.Next(0); got != p.Next(i0) && got < 0 {
		t.Fatalf("Next(0) = %d", got)
	}
	if got := p.Prev(p.Capacity()); got != i1 {
		t.Fatalf("Prev(end) = %d, want %d", got, i1)
	}
	if got := p.Next(i1 + 1); got != -1 {
		t.Fatalf("Next past end = %d, want -1", got)
	}
}

func TestScanEarlyStop(t *testing.T) {
	p := New[int](Options[int]{})
	buildSequential(p, 100)
	count := 0
	p.Scan(0, p.Capacity(), func(_, _ int) bool { count++; return count < 7 })
	if count != 7 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestDAMCharging(t *testing.T) {
	store := dam.NewStore(4096, 1<<15)
	p := New[int](Options[int]{SlotBytes: 32, Space: store.Space("pma")})
	after := -1
	for v := 0; v < 10000; v++ {
		after = p.InsertAfter(after, v)
	}
	if store.Transfers() == 0 {
		t.Fatal("no transfers recorded")
	}
}

// TestQuickRandomOps: random interleavings of anchored inserts and
// deletes preserve order against a reference slice.
func TestQuickRandomOps(t *testing.T) {
	f := func(ops []uint16, seed uint64) bool {
		if len(ops) > 400 {
			ops = ops[:400]
		}
		p := New[uint64](Options[uint64]{})
		positions := make(map[uint64]int)
		p.opt.OnMove = func(v uint64, idx int) { positions[v] = idx }
		var ref []uint64
		next := uint64(1)
		rng := workload.NewRNG(seed)
		for _, op := range ops {
			if op%3 != 0 || len(ref) == 0 { // insert (2/3 bias)
				v := next
				next++
				ord := rng.Intn(len(ref) + 1)
				var idx int
				if ord == 0 {
					idx = p.InsertAfter(-1, v)
					ref = append([]uint64{v}, ref...)
				} else {
					idx = p.InsertAfter(positions[ref[ord-1]], v)
					ref = append(ref[:ord], append([]uint64{v}, ref[ord:]...)...)
				}
				positions[v] = idx
			} else { // delete
				ord := rng.Intn(len(ref))
				v := ref[ord]
				p.Delete(positions[v])
				delete(positions, v)
				ref = append(ref[:ord], ref[ord+1:]...)
			}
		}
		p.CheckInvariants()
		if p.Len() != len(ref) {
			return false
		}
		i := 0
		ok := true
		p.Scan(0, p.Capacity(), func(_ int, v uint64) bool {
			if i >= len(ref) || v != ref[i] {
				ok = false
				return false
			}
			i++
			return true
		})
		return ok && i == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
