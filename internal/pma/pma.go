// Package pma implements the packed-memory array of Bender, Demaine, and
// Farach-Colton: an array that maintains a dynamic sequence of items in
// order, with gaps, so that an insertion or deletion costs amortized
// O(log^2 N) element moves (O((log^2 N)/B) block transfers) and any n
// consecutive items occupy Theta(n) contiguous slots.
//
// The PMA is the layout substrate of the shuttle tree: shuttle-tree nodes
// and preallocated buffer chunks live in a PMA in van Emde Boas order,
// and rebalances shift them while a callback lets the owner repair its
// bidirectional pointers (Section 2's "when a node moves, it must tell
// its children to update their parent pointers").
//
// Densities follow the classic calibrator-tree scheme: an implicit
// binary tree over segments of Theta(log N) slots, with upper density
// thresholds interpolating from tauLeaf at the leaves to tauRoot at the
// root, and lower thresholds from rhoLeaf to rhoRoot. An insert that
// overflows its segment walks up until a window within threshold is
// found and spreads that window evenly; an overflowing root doubles the
// capacity.
package pma

import (
	"math/bits"

	"repro/internal/dam"
)

// Density thresholds (classic values from the CO B-tree literature).
const (
	tauLeaf = 1.00 // segments may fill completely
	tauRoot = 0.50 // the whole array stays at most half full
	rhoLeaf = 0.10 // segments may drain to 10%
	rhoRoot = 0.25 // the whole array stays at least quarter full
)

// minCapacity keeps the smallest PMA trivially in-threshold.
const minCapacity = 8

// Options configures a PMA.
type Options[T any] struct {
	// SlotBytes is the size charged to the DAM space per slot touched.
	SlotBytes int64
	// Space receives DAM charges; nil disables accounting.
	Space *dam.Space
	// OnMove is called whenever a rebalance moves a live item to a new
	// slot, so the owner can repair references. May be nil.
	OnMove func(v T, newIndex int)
}

// PMA is a packed-memory array holding items of type T in a caller-
// defined total order.
type PMA[T any] struct {
	opt   Options[T]
	slots []slot[T]
	n     int

	// moves counts item moves performed by rebalances (for amortized-
	// cost tests).
	moves uint64
}

type slot[T any] struct {
	v    T
	used bool
}

// New returns an empty PMA.
func New[T any](opt Options[T]) *PMA[T] {
	if opt.SlotBytes <= 0 {
		opt.SlotBytes = 32
	}
	return &PMA[T]{opt: opt, slots: make([]slot[T], minCapacity)}
}

// Len reports the number of live items.
func (p *PMA[T]) Len() int { return p.n }

// Capacity reports the current slot count.
func (p *PMA[T]) Capacity() int { return len(p.slots) }

// Moves reports the cumulative item moves performed by rebalances.
func (p *PMA[T]) Moves() uint64 { return p.moves }

// Get returns the item at slot i and whether the slot is occupied.
func (p *PMA[T]) Get(i int) (T, bool) {
	var zero T
	if i < 0 || i >= len(p.slots) || !p.slots[i].used {
		return zero, false
	}
	p.chargeRead(i, 1)
	return p.slots[i].v, true
}

// Set overwrites the item at occupied slot i in place.
func (p *PMA[T]) Set(i int, v T) {
	if i < 0 || i >= len(p.slots) || !p.slots[i].used {
		panic("pma: Set on empty slot")
	}
	p.slots[i].v = v
	p.chargeWrite(i, 1)
}

// segSize returns the calibrator-tree leaf segment size: the smallest
// power of two at least log2(capacity).
func (p *PMA[T]) segSize() int {
	lg := bits.Len(uint(len(p.slots))) - 1
	s := 1
	for s < lg {
		s <<= 1
	}
	if s > len(p.slots) {
		s = len(p.slots)
	}
	return s
}

// height is the calibrator tree height (root depth 0).
func (p *PMA[T]) height() int {
	return bits.Len(uint(len(p.slots)/p.segSize())) - 1
}

// tau returns the upper density threshold for a window at depth d.
func (p *PMA[T]) tau(d int) float64 {
	h := p.height()
	if h == 0 {
		return tauLeaf
	}
	return tauRoot + (tauLeaf-tauRoot)*float64(d)/float64(h)
}

// rho returns the lower density threshold for a window at depth d.
func (p *PMA[T]) rho(d int) float64 {
	h := p.height()
	if h == 0 {
		return rhoLeaf
	}
	return rhoRoot - (rhoRoot-rhoLeaf)*float64(d)/float64(h)
}

func (p *PMA[T]) chargeRead(i, n int) {
	if n > 0 {
		p.opt.Space.Read(int64(i)*p.opt.SlotBytes, int64(n)*p.opt.SlotBytes)
	}
}

func (p *PMA[T]) chargeWrite(i, n int) {
	if n > 0 {
		p.opt.Space.Write(int64(i)*p.opt.SlotBytes, int64(n)*p.opt.SlotBytes)
	}
}

// count returns the occupied slots in window [lo, hi).
func (p *PMA[T]) count(lo, hi int) int {
	c := 0
	for i := lo; i < hi; i++ {
		if p.slots[i].used {
			c++
		}
	}
	return c
}

// InsertAfter inserts v immediately after the item at slot after in the
// order; after = -1 inserts at the front. It returns the slot where v
// landed. The caller must pass an occupied slot (or -1).
func (p *PMA[T]) InsertAfter(after int, v T) int {
	if after != -1 {
		if after < 0 || after >= len(p.slots) || !p.slots[after].used {
			panic("pma: InsertAfter on empty slot")
		}
	}
	// Fast path: a free slot directly after.
	pos := after + 1
	if pos < len(p.slots) && !p.slots[pos].used {
		p.slots[pos] = slot[T]{v: v, used: true}
		p.n++
		p.chargeWrite(pos, 1)
		return pos
	}
	// Slow path: find an in-threshold window around the insertion point
	// and rebalance it with v included.
	return p.rebalanceInsert(after, v)
}

// rebalanceInsert grows a window around the insertion point until its
// density (counting the new item) is within the depth's threshold, then
// spreads the window evenly. An over-dense root doubles the array.
func (p *PMA[T]) rebalanceInsert(after int, v T) int {
	seg := p.segSize()
	anchor := after
	if anchor < 0 {
		anchor = 0
	}
	lo := (anchor / seg) * seg
	hi := lo + seg
	d := p.height()
	for {
		occ := p.count(lo, hi) + 1
		if float64(occ)/float64(hi-lo) <= p.tau(d) {
			return p.spread(lo, hi, after, v)
		}
		if lo == 0 && hi == len(p.slots) {
			break
		}
		// Grow to the parent window.
		width := hi - lo
		lo = (lo / (2 * width)) * (2 * width)
		hi = lo + 2*width
		if hi > len(p.slots) {
			hi = len(p.slots)
		}
		d--
		if d < 0 {
			d = 0
		}
	}
	// Root over-dense: double and spread everything.
	after = p.grow(len(p.slots)*2, after)
	return p.spread(0, len(p.slots), after, v)
}

// grow reallocates to newCap, leaving items packed at the front (spread
// follows immediately). It returns the anchor's remapped slot.
func (p *PMA[T]) grow(newCap int, after int) int {
	old := p.slots
	p.slots = make([]slot[T], newCap)
	w := 0
	newAfter := -1
	for i := range old {
		if old[i].used {
			p.slots[w] = old[i]
			if i == after {
				newAfter = w
			}
			w++
		}
	}
	// OnMove is deferred: spread immediately re-announces final slots.
	p.chargeRead(0, len(old))
	p.chargeWrite(0, w)
	return newAfter
}

// spread redistributes the items of window [lo, hi) evenly, inserting v
// right after the item that was at slot after (v goes first when
// after == -1 or after lies left of the window). It returns v's slot and
// invokes OnMove for every live item that changed slots.
func (p *PMA[T]) spread(lo, hi int, after int, v T) int {
	width := hi - lo
	items := make([]T, 0, p.count(lo, hi)+1)
	vPos := -1
	if after < lo {
		items = append(items, v)
		vPos = 0
	}
	for i := lo; i < hi; i++ {
		if !p.slots[i].used {
			continue
		}
		items = append(items, p.slots[i].v)
		p.slots[i].used = false
		if i == after {
			items = append(items, v)
			vPos = len(items) - 1
		}
	}
	if vPos < 0 {
		// after was right of the window: impossible by construction.
		panic("pma: insertion anchor outside rebalance window")
	}
	p.chargeRead(lo, width)
	p.chargeWrite(lo, width)
	var vSlot int
	for idx, it := range items {
		target := lo + idx*width/len(items)
		// Evenly spaced targets are strictly increasing because
		// len(items) <= width.
		p.slots[target] = slot[T]{v: it, used: true}
		if idx == vPos {
			vSlot = target
		} else if p.opt.OnMove != nil {
			p.opt.OnMove(it, target)
		}
		p.moves++
	}
	p.n++
	return vSlot
}

// Delete removes the item at slot i, rebalancing or shrinking when a
// window becomes too sparse.
func (p *PMA[T]) Delete(i int) {
	if i < 0 || i >= len(p.slots) || !p.slots[i].used {
		panic("pma: Delete on empty slot")
	}
	var zero T
	p.slots[i] = slot[T]{v: zero}
	p.n--
	p.chargeWrite(i, 1)

	if len(p.slots) <= minCapacity {
		return
	}
	// Walk up from the leaf segment until a window within its lower
	// threshold is found; rebalance the first under-dense window's
	// parent... classic scheme: find the smallest window NOT under its
	// threshold and spread it; halve if the root is under-dense.
	seg := p.segSize()
	lo := (i / seg) * seg
	hi := lo + seg
	d := p.height()
	for {
		occ := p.count(lo, hi)
		if float64(occ)/float64(hi-lo) >= p.rho(d) {
			return // in threshold; nothing to do
		}
		if lo == 0 && hi == len(p.slots) {
			break
		}
		width := hi - lo
		lo = (lo / (2 * width)) * (2 * width)
		hi = lo + 2*width
		if hi > len(p.slots) {
			hi = len(p.slots)
		}
		d--
		if d < 0 {
			d = 0
		}
		// Spread the grown window if it is within threshold; this
		// restores the child windows' densities.
		occ = p.count(lo, hi)
		if float64(occ)/float64(hi-lo) >= p.rho(d) {
			p.spreadExisting(lo, hi)
			return
		}
	}
	// Root under-dense: halve (not below the minimum).
	newCap := len(p.slots) / 2
	if newCap < minCapacity {
		newCap = minCapacity
	}
	if p.n > 0 && float64(p.n)/float64(newCap) > tauRoot {
		return // halving would over-densify; leave as is
	}
	old := p.slots
	p.slots = make([]slot[T], newCap)
	w := 0
	for j := range old {
		if old[j].used {
			p.slots[w] = old[j]
			w++
		}
	}
	p.chargeRead(0, len(old))
	p.chargeWrite(0, w)
	p.spreadExisting(0, len(p.slots))
}

// spreadExisting redistributes window [lo, hi) evenly without inserting.
func (p *PMA[T]) spreadExisting(lo, hi int) {
	width := hi - lo
	items := make([]T, 0, width)
	for i := lo; i < hi; i++ {
		if p.slots[i].used {
			items = append(items, p.slots[i].v)
			p.slots[i].used = false
		}
	}
	p.chargeRead(lo, width)
	p.chargeWrite(lo, width)
	for idx, it := range items {
		target := lo + idx*width/max(len(items), 1)
		p.slots[target] = slot[T]{v: it, used: true}
		if p.opt.OnMove != nil {
			p.opt.OnMove(it, target)
		}
		p.moves++
	}
}

// Scan visits occupied slots in [from, to) in order, stopping early if
// fn returns false. It charges a sequential read of the window.
func (p *PMA[T]) Scan(from, to int, fn func(i int, v T) bool) {
	if from < 0 {
		from = 0
	}
	if to > len(p.slots) {
		to = len(p.slots)
	}
	if to > from {
		p.chargeRead(from, to-from)
	}
	for i := from; i < to; i++ {
		if p.slots[i].used {
			if !fn(i, p.slots[i].v) {
				return
			}
		}
	}
}

// Next returns the first occupied slot at or after i, or -1.
func (p *PMA[T]) Next(i int) int {
	if i < 0 {
		i = 0
	}
	for ; i < len(p.slots); i++ {
		if p.slots[i].used {
			return i
		}
	}
	return -1
}

// Prev returns the last occupied slot at or before i, or -1.
func (p *PMA[T]) Prev(i int) int {
	if i >= len(p.slots) {
		i = len(p.slots) - 1
	}
	for ; i >= 0; i-- {
		if p.slots[i].used {
			return i
		}
	}
	return -1
}

// CheckInvariants panics when bookkeeping is inconsistent; tests call it.
func (p *PMA[T]) CheckInvariants() {
	occ := p.count(0, len(p.slots))
	if occ != p.n {
		panic("pma: occupancy bookkeeping mismatch")
	}
	if len(p.slots) > minCapacity {
		density := float64(p.n) / float64(len(p.slots))
		if density > tauLeaf {
			panic("pma: array over-full")
		}
	}
}
