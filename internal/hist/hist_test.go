package hist

import (
	"math/bits"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// TestBucketMonotone: bucket indices are monotone in the value, in
// range, and bucketRep(bucketOf(v)) stays within the bucketing's
// relative-error bound of v.
func TestBucketMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 2, 31, 32, 33, 63, 64, 65, 100, 127, 128,
		1000, 1 << 20, 1<<20 + 1, 1 << 40, 1<<63 - 1, 1 << 63, ^uint64(0)} {
		i := bucketOf(v)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of [0, %d)", v, i, numBuckets)
		}
		if i < prev {
			t.Fatalf("bucketOf(%d) = %d < previous %d", v, i, prev)
		}
		prev = i
		rep := bucketRep(i)
		if v < 64 {
			if rep != v {
				t.Fatalf("bucketRep(bucketOf(%d)) = %d, want exact", v, rep)
			}
			continue
		}
		// Relative error bound: the bucket's width is 2^(msb-5), so the
		// midpoint is within width/2 <= v/32 of v.
		width := uint64(1) << uint(bits.Len64(v)-1-subBits)
		lo, hi := v-width, v+width
		if hi < v { // overflow at the top of the range
			hi = ^uint64(0)
		}
		if rep < lo || rep > hi {
			t.Fatalf("bucketRep(bucketOf(%d)) = %d outside [%d, %d]", v, rep, lo, hi)
		}
	}
}

// TestQuantileAgainstSortedReference checks Quantile within the
// documented ~3% relative error on a log-uniform sample.
func TestQuantileAgainstSortedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	h := &Hist{}
	samples := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := uint64(1) << uint(rng.Intn(30))
		v += uint64(rng.Int63n(int64(v)))
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if h.Count() != 20000 {
		t.Fatalf("Count = %d", h.Count())
	}
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		got := h.Quantile(q)
		rank := int(q * 20000)
		if rank >= len(samples) {
			rank = len(samples) - 1
		}
		want := samples[rank]
		lo := want - want/16
		hi := want + want/16
		if got < lo || got > hi {
			t.Errorf("Quantile(%g) = %d, reference %d (outside ±1/16)", q, got, want)
		}
	}
}

func TestMeanExactAndMerge(t *testing.T) {
	a, b := &Hist{}, &Hist{}
	for i := uint64(1); i <= 100; i++ {
		a.Observe(i * 1000)
	}
	for i := uint64(1); i <= 50; i++ {
		b.Observe(i)
	}
	if got, want := a.Mean(), 50500.0; got != want {
		t.Fatalf("Mean = %g, want %g (sum is exact, not bucketed)", got, want)
	}
	a.Merge(b)
	if a.Count() != 150 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if got, want := a.Sum(), uint64(5050000+1275); got != want {
		t.Fatalf("merged Sum = %d, want %d", got, want)
	}
	a.Reset()
	if a.Count() != 0 || a.Sum() != 0 || a.Quantile(0.5) != 0 {
		t.Fatal("Reset left state behind")
	}
}

// TestConcurrentObserve: N goroutines observing concurrently lose
// nothing (the counters are atomic).
func TestConcurrentObserve(t *testing.T) {
	h := &Hist{}
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(uint64(rng.Int63n(1 << 30)))
			}
		}(int64(g))
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("Count = %d, want %d", got, goroutines*per)
	}
}

// TestObserveZeroAlloc pins the hot path: Observe must not allocate
// (the server calls it per request on the GET path).
func TestObserveZeroAlloc(t *testing.T) {
	h := &Hist{}
	v := uint64(12345)
	if allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(v)
		v += 977
	}); allocs != 0 {
		t.Fatalf("Observe allocates %g per call, want 0", allocs)
	}
}
