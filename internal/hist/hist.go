// Package hist provides a fixed-size log-bucketed histogram for
// latency recording on hot paths: HDR-style buckets (every power of two
// split into 32 linear sub-buckets, so quantiles carry at most ~3%
// relative error), atomic counters so any number of goroutines observe
// concurrently without locks, and no allocation anywhere — Observe is
// one atomic add into a fixed array, cheap enough for a server to call
// per request.
//
// The server and the load generator share this type: the server records
// per-op service time, the generator records client-observed latency,
// and internal/perf turns the quantiles into schema-1 records.
package hist

import (
	"math/bits"
	"sync/atomic"
)

const (
	// subBits sub-bucket bits: each power-of-two range splits into
	// 1<<subBits linear sub-buckets, bounding quantile error at
	// 1/(1<<subBits).
	subBits  = 5
	subCount = 1 << subBits

	// numBuckets covers the full uint64 range: values below subCount*2
	// index exactly (bucketOf(v) = v there), larger values take
	// (msb-subBits+1)*subCount + top-5-bits-below-msb, so the largest
	// index — msb 63, minor 31 — is (64-subBits)*subCount + 31.
	numBuckets = (64-subBits)*subCount + subCount
)

// Hist is the histogram. The zero value is ready to use; all methods
// are safe for concurrent use.
type Hist struct {
	counts [numBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// bucketOf maps a value to its bucket index. Values below 64 map to
// themselves (exact); above, the index is logarithmic in the value with
// 32 linear sub-buckets per octave.
func bucketOf(v uint64) int {
	if v < subCount {
		return int(v)
	}
	m := bits.Len64(v) - 1 // MSB position, >= subBits
	minor := int((v >> (uint(m) - subBits)) & (subCount - 1))
	return (m-subBits+1)*subCount + minor
}

// bucketRep returns the representative value (midpoint) of bucket i,
// the value Quantile reports for ranks landing there.
func bucketRep(i int) uint64 {
	if i < subCount {
		return uint64(i)
	}
	m := i/subCount + subBits - 1
	minor := uint64(i % subCount)
	lo := uint64(1)<<uint(m) | minor<<(uint(m)-subBits)
	return lo + (uint64(1)<<(uint(m)-subBits))/2
}

// Observe records one value. It never allocates and never blocks.
func (h *Hist) Observe(v uint64) {
	h.counts[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// Count reports the number of observations.
//
//repro:readonly
func (h *Hist) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reports the exact sum of all observed values (so Sum/Count is the
// exact mean, unaffected by bucketing).
//
//repro:readonly
func (h *Hist) Sum() uint64 { return h.sum.Load() }

// Mean reports the exact mean observation, 0 when empty.
//
//repro:readonly
func (h *Hist) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile reports the value at quantile q in [0, 1] (0.5 = median,
// 0.99 = P99), within the bucketing's ~3% relative error; 0 when empty.
// Concurrent Observes may or may not be counted — the snapshot is
// per-bucket atomic, not global, which is fine for monitoring and
// end-of-run reporting.
//
//repro:readonly
func (h *Hist) Quantile(q float64) uint64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Two passes: total first, then walk to the target rank. A racing
	// Observe can skew the second pass by at most the racing counts.
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > target {
			return bucketRep(i)
		}
	}
	// Reachable only if a concurrent Reset shrank the counts mid-walk.
	return bucketRep(numBuckets - 1)
}

// Merge folds o's observations into h (o is read atomically, so a
// still-observed histogram merges consistently enough for reporting).
func (h *Hist) Merge(o *Hist) {
	for i := range o.counts {
		if n := o.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.sum.Add(o.sum.Load())
}

// Reset zeroes the histogram. Not atomic with respect to concurrent
// Observes; quiesce first if exactness matters.
func (h *Hist) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}
