// Package server is the network front-end over any registry-built
// dictionary: a length-prefixed binary protocol (GET / PUT / DEL /
// BATCH-PUT / RANGE / STATS) over TCP, a per-connection pipelining
// server whose hot read path is allocation-free, and a client whose
// low-level send/read halves let callers keep many requests in flight
// on one connection.
//
// # Wire format
//
// Every request and response is one frame:
//
//	request:  [u32 length][u8 opcode][payload]
//	response: [u32 length][u8 status][payload]
//
// The length is big-endian and counts the opcode/status byte plus the
// payload (so the smallest frame is length 1). Keys, values, and
// counts inside payloads are big-endian too. Per-op payloads:
//
//	GET    req key(8)                     resp OK value(8) | NotFound
//	PUT    req key(8) value(8)            resp OK
//	DEL    req key(8)                     resp OK present(1) | Unsupported
//	BATCH  req count(4) count×{key,value} resp OK count(4)
//	RANGE  req lo(8) hi(8) max(4)         resp OK count(4) count×{key,value}
//	STATS  req —                          resp OK stats payload (see Stats)
//
// # Pipelining
//
// A client may send any number of requests before reading replies;
// the server answers strictly in request order, one response frame
// per request frame. Consecutive PUT frames already buffered when the
// server drains its read buffer are coalesced into a single batch
// apply — through one write-ahead-log record per shard group on a
// durable composition — and still acknowledged individually, which is
// what makes pipelined ingestion cheap: the deeper the client's
// window, the fewer log syscalls per acknowledged element.
//
// # Errors
//
// Unsupported (an op the serving dictionary's capabilities exclude,
// probed with core.CapsOf) and NotFound are per-request verdicts; the
// connection stays usable. BadFrame and TooLarge poison the
// connection — framing may be lost, so the server answers and closes.
package server

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
)

// Opcodes.
const (
	OpGet   byte = 1
	OpPut   byte = 2
	OpDel   byte = 3
	OpBatch byte = 4
	OpRange byte = 5
	OpStats byte = 6
)

// Response statuses.
const (
	StatusOK          byte = 0
	StatusNotFound    byte = 1
	StatusUnsupported byte = 2
	StatusBadFrame    byte = 3
	StatusTooLarge    byte = 4
	StatusInternal    byte = 5
)

// Frame and payload limits. MaxBatchElems bounds one BATCH request
// (and one RANGE response); MaxFrameBytes is derived so the largest
// legal frame fits and anything bigger is rejected before allocation.
const (
	MaxBatchElems = 1 << 16
	MaxFrameBytes = 1 + 4 + MaxBatchElems*16
)

// headerBytes is the frame-length prefix size.
const headerBytes = 4

// StatusText names a status byte for error messages and logs.
func StatusText(s byte) string { return statusName(s) }

// statusName names a status byte for error messages.
func statusName(s byte) string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not-found"
	case StatusUnsupported:
		return "unsupported"
	case StatusBadFrame:
		return "bad-frame"
	case StatusTooLarge:
		return "too-large"
	case StatusInternal:
		return "internal"
	}
	return fmt.Sprintf("status(%d)", s)
}

// opName names an opcode for error messages.
func opName(op byte) string {
	switch op {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDel:
		return "DEL"
	case OpBatch:
		return "BATCH"
	case OpRange:
		return "RANGE"
	case OpStats:
		return "STATS"
	}
	return fmt.Sprintf("op(%d)", op)
}

// Caps-mask bits of the STATS payload, mirroring core.Caps.
const (
	capSnapshot    = 1 << 0
	capWAL         = 1 << 1
	capDelete      = 1 << 2
	capBatch       = 1 << 3
	capStats       = 1 << 4
	capSharedReads = 1 << 5
)

// capsMask packs core.Caps into the STATS wire bits.
func capsMask(c core.Caps) uint32 {
	var m uint32
	if c.Snapshot {
		m |= capSnapshot
	}
	if c.WAL {
		m |= capWAL
	}
	if c.Delete {
		m |= capDelete
	}
	if c.Batch {
		m |= capBatch
	}
	if c.Stats {
		m |= capStats
	}
	if c.SharedReads {
		m |= capSharedReads
	}
	return m
}

// capsOfMask unpacks the STATS wire bits back into core.Caps.
func capsOfMask(m uint32) core.Caps {
	return core.Caps{
		Snapshot:    m&capSnapshot != 0,
		WAL:         m&capWAL != 0,
		Delete:      m&capDelete != 0,
		Batch:       m&capBatch != 0,
		Stats:       m&capStats != 0,
		SharedReads: m&capSharedReads != 0,
	}
}

// appendFrame appends one frame (header, kind byte, payload) to dst.
func appendFrame(dst []byte, kind byte, payload ...byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(1+len(payload)))
	dst = append(dst, kind)
	return append(dst, payload...)
}

// readFrame reads one frame into buf (grown as needed) and returns the
// kind byte, the payload (aliasing buf), and the possibly-grown buffer.
// A frame longer than MaxFrameBytes returns errFrameTooLarge without
// consuming the body, so the caller can answer before closing.
func readFrame(r io.Reader, buf []byte) (kind byte, payload, newBuf []byte, err error) {
	var hdr [headerBytes]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, buf, errEmptyFrame
	}
	if n > MaxFrameBytes {
		return 0, nil, buf, errFrameTooLarge
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err = io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, err
	}
	return buf[0], buf[1:], buf, nil
}

// Framing-level sentinel errors.
var (
	errEmptyFrame    = fmt.Errorf("server: zero-length frame")
	errFrameTooLarge = fmt.Errorf("server: frame exceeds %d bytes", MaxFrameBytes)
)
