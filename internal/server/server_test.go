package server

import (
	"encoding/binary"
	"math/rand"
	"net"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/registry"
)

// startServer serves d on an ephemeral loopback listener and returns
// the address; cleanup drains on test exit.
func startServer(t *testing.T, d core.Dictionary) (*Server, string) {
	t.Helper()
	srv := New(d)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Shutdown(5 * time.Second); err != nil {
			t.Errorf("drain: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

func mustBuild(t *testing.T, kind string, opts ...registry.Option) core.Dictionary {
	t.Helper()
	d, err := registry.Build(kind, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestServerOracle drives a randomized op stream over a real socket
// and checks every reply against a map oracle (plus a sorted mirror
// for ranges).
func TestServerOracle(t *testing.T) {
	d := mustBuild(t, "sharded", registry.WithShards(4), registry.WithInner("gcola"))
	srv, addr := startServer(t, d)
	if !srv.Caps().Delete {
		t.Fatal("sharded(gcola) should serve deletes")
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	oracle := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(7))
	const keySpace = 1 << 12
	for i := 0; i < 6000; i++ {
		key := uint64(rng.Intn(keySpace))
		switch op := rng.Intn(10); {
		case op < 4: // put
			val := rng.Uint64()
			if err := cl.Put(key, val); err != nil {
				t.Fatalf("op %d: PUT: %v", i, err)
			}
			oracle[key] = val
		case op < 7: // get
			v, ok, err := cl.Get(key)
			if err != nil {
				t.Fatalf("op %d: GET: %v", i, err)
			}
			want, wantOK := oracle[key]
			if ok != wantOK || (ok && v != want) {
				t.Fatalf("op %d: GET(%d) = (%d, %v), oracle (%d, %v)", i, key, v, ok, want, wantOK)
			}
		case op < 8: // del
			present, err := cl.Del(key)
			if err != nil {
				t.Fatalf("op %d: DEL: %v", i, err)
			}
			_, wantPresent := oracle[key]
			if present != wantPresent {
				t.Fatalf("op %d: DEL(%d) = %v, oracle %v", i, key, present, wantPresent)
			}
			delete(oracle, key)
		case op < 9: // batch put
			n := 1 + rng.Intn(64)
			elems := make([]core.Element, n)
			for j := range elems {
				elems[j] = core.Element{Key: uint64(rng.Intn(keySpace)), Value: rng.Uint64()}
			}
			if err := cl.PutBatch(elems); err != nil {
				t.Fatalf("op %d: BATCH: %v", i, err)
			}
			for _, e := range elems {
				oracle[e.Key] = e.Value
			}
		default: // range
			lo := key
			hi := lo + uint64(rng.Intn(256))
			got, err := cl.Range(lo, hi, MaxBatchElems)
			if err != nil {
				t.Fatalf("op %d: RANGE: %v", i, err)
			}
			var want []core.Element
			for k, v := range oracle {
				if k >= lo && k <= hi {
					want = append(want, core.Element{Key: k, Value: v})
				}
			}
			sort.Slice(want, func(a, b int) bool { return want[a].Key < want[b].Key })
			if len(got) != len(want) {
				t.Fatalf("op %d: RANGE[%d,%d] returned %d elements, oracle %d", i, lo, hi, len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("op %d: RANGE[%d,%d][%d] = %+v, oracle %+v", i, lo, hi, j, got[j], want[j])
				}
			}
		}
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// COLA Len counts not-yet-merged duplicate versions from
	// overwrites, so it upper-bounds the live mapping.
	if st.Len < uint64(len(oracle)) {
		t.Fatalf("STATS Len = %d, below oracle %d", st.Len, len(oracle))
	}
	if st.Caps != srv.Caps() {
		t.Fatalf("STATS caps %+v, server %+v", st.Caps, srv.Caps())
	}
	if st.Classes[ClassGet].Count == 0 || st.Classes[ClassPut].Count == 0 {
		t.Fatal("STATS histograms empty after a mixed stream")
	}
}

// TestServerPipelining: a burst of sends followed by in-order replies,
// exercising the PUT-coalescing path (consecutive buffered PUTs apply
// as one batch but acknowledge individually).
func TestServerPipelining(t *testing.T) {
	d := mustBuild(t, "sharded", registry.WithShards(2), registry.WithInner("gcola"))
	_, addr := startServer(t, d)
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const puts = 500
	for i := 0; i < puts; i++ {
		if err := cl.SendPut(uint64(i), uint64(i)*3); err != nil {
			t.Fatal(err)
		}
	}
	// Tail the burst with a GET so the reply stream length is puts+1.
	if err := cl.SendGet(42); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < puts; i++ {
		r, err := cl.ReadReply()
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if r.Status != StatusOK {
			t.Fatalf("reply %d: %s", i, statusName(r.Status))
		}
	}
	r, err := cl.ReadReply()
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != StatusOK || binary.BigEndian.Uint64(r.Payload) != 42*3 {
		t.Fatalf("pipelined GET answered %s %v", statusName(r.Status), r.Payload)
	}
	if got := d.Len(); got != puts {
		t.Fatalf("Len = %d after %d distinct PUTs", got, puts)
	}
}

// TestServerUnsupportedDel: a dictionary without a Deleter answers DEL
// with the typed wire error and the connection stays usable.
func TestServerUnsupportedDel(t *testing.T) {
	d := mustBuild(t, "deamortized")
	srv, addr := startServer(t, d)
	if srv.Caps().Delete {
		t.Fatal("deamortized should not advertise Delete")
	}
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Del(9); err == nil {
		t.Fatal("DEL on a delete-less kind succeeded")
	}
	// Connection still serves.
	if err := cl.Put(9, 18); err != nil {
		t.Fatalf("PUT after unsupported DEL: %v", err)
	}
	if v, ok, err := cl.Get(9); err != nil || !ok || v != 18 {
		t.Fatalf("GET after unsupported DEL = (%d, %v, %v)", v, ok, err)
	}
}

// TestServerBadFramePoisons: an unknown opcode is answered BadFrame and
// the connection closes (framing can no longer be trusted).
func TestServerBadFramePoisons(t *testing.T) {
	d := mustBuild(t, "synchronized", registry.WithInner("gcola"))
	_, addr := startServer(t, d)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write(appendFrame(nil, 200, 1, 2, 3))
	var hdr [headerBytes + 1]byte
	if _, err := readFull(nc, hdr[:]); err != nil {
		t.Fatalf("reading BadFrame reply: %v", err)
	}
	if hdr[4] != StatusBadFrame {
		t.Fatalf("status %s, want bad-frame", statusName(hdr[4]))
	}
}

// TestServerTooLargeFrame: an oversized frame header is answered
// TooLarge, then the connection closes.
func TestServerTooLargeFrame(t *testing.T) {
	d := mustBuild(t, "synchronized", registry.WithInner("gcola"))
	_, addr := startServer(t, d)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], MaxFrameBytes+1)
	nc.Write(huge[:])
	var hdr [headerBytes + 1]byte
	if _, err := readFull(nc, hdr[:]); err != nil {
		t.Fatalf("reading TooLarge reply: %v", err)
	}
	if hdr[4] != StatusTooLarge {
		t.Fatalf("status %s, want too-large", statusName(hdr[4]))
	}
	// The server hangs up; the next read must fail.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	var one [1]byte
	if _, err := nc.Read(one[:]); err == nil {
		t.Fatal("connection still open after a poisoned frame")
	}
}

// TestGracefulDrain: Shutdown answers everything already received and
// Serve returns nil.
func TestGracefulDrain(t *testing.T) {
	d := mustBuild(t, "sharded", registry.WithShards(2), registry.WithInner("gcola"))
	srv := New(d)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	cl, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 100; i++ {
		if err := cl.Put(uint64(i), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Shutdown(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after drain", err)
	}
	if _, err := Dial(ln.Addr().String()); err == nil {
		t.Fatal("listener still accepting after drain")
	}
	if got := d.Len(); got != 100 {
		t.Fatalf("Len = %d after drain", got)
	}
}

// TestGetHotPathZeroAlloc pins the acceptance criterion: the server's
// GET handler performs no allocation once its buffers are warm.
func TestGetHotPathZeroAlloc(t *testing.T) {
	d := mustBuild(t, "sharded", registry.WithShards(2), registry.WithInner("gcola"))
	for i := uint64(0); i < 4096; i++ {
		d.Insert(i*2, i)
	}
	srv := New(d)
	c := &conn{s: srv, out: make([]byte, 0, 1<<12)}
	payload := make([]byte, 8)
	key := uint64(0)
	if allocs := testing.AllocsPerRun(2000, func() {
		c.out = c.out[:0]
		binary.BigEndian.PutUint64(payload, key%8192)
		c.handleGet(payload)
		key += 3
	}); allocs != 0 {
		t.Fatalf("GET hot path allocates %g per op, want 0", allocs)
	}
}

// readFull is io.ReadFull without importing io in tests that otherwise
// manipulate raw frames.
func readFull(nc net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := nc.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
