package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"repro/internal/core"
)

// Client speaks the wire protocol over one connection. It is not safe
// for concurrent use; open one Client per goroutine (the load
// generator opens one per simulated connection).
//
// Two layers: the Send*/Flush/ReadReply half pipelines — any number of
// requests may be in flight, replies come back in request order — and
// the named convenience methods (Get, Put, ...) are the synchronous
// send-flush-read composition of that half.
type Client struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	frame []byte //repro:scratch reply frame buffer, reused per read
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// DialTimeout is Dial with a connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 1<<16),
		bw: bufio.NewWriterSize(nc, 1<<16),
	}
}

// Close flushes and closes the connection.
func (c *Client) Close() error {
	ferr := c.bw.Flush()
	cerr := c.nc.Close()
	if ferr != nil {
		return ferr
	}
	return cerr
}

// SendGet enqueues a GET without flushing.
func (c *Client) SendGet(key uint64) error {
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], key)
	return c.send(OpGet, p[:])
}

// SendPut enqueues a PUT without flushing.
func (c *Client) SendPut(key, value uint64) error {
	var p [16]byte
	binary.BigEndian.PutUint64(p[:], key)
	binary.BigEndian.PutUint64(p[8:], value)
	return c.send(OpPut, p[:])
}

// SendDel enqueues a DEL without flushing.
func (c *Client) SendDel(key uint64) error {
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], key)
	return c.send(OpDel, p[:])
}

// SendBatch enqueues a BATCH-PUT without flushing. The batch must hold
// at most MaxBatchElems elements.
func (c *Client) SendBatch(elems []core.Element) error {
	if len(elems) > MaxBatchElems {
		return fmt.Errorf("server: batch of %d exceeds the %d-element frame limit", len(elems), MaxBatchElems)
	}
	var hdr [headerBytes + 1 + 4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(1+4+len(elems)*16))
	hdr[4] = OpBatch
	binary.BigEndian.PutUint32(hdr[5:], uint32(len(elems)))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	var e [16]byte
	for _, el := range elems {
		binary.BigEndian.PutUint64(e[:], el.Key)
		binary.BigEndian.PutUint64(e[8:], el.Value)
		if _, err := c.bw.Write(e[:]); err != nil {
			return err
		}
	}
	return nil
}

// SendRange enqueues a RANGE without flushing; the server returns at
// most max elements (capped at MaxBatchElems).
func (c *Client) SendRange(lo, hi uint64, max int) error {
	var p [20]byte
	binary.BigEndian.PutUint64(p[:], lo)
	binary.BigEndian.PutUint64(p[8:], hi)
	binary.BigEndian.PutUint32(p[16:], uint32(max))
	return c.send(OpRange, p[:])
}

// SendStats enqueues a STATS without flushing.
func (c *Client) SendStats() error { return c.send(OpStats, nil) }

func (c *Client) send(op byte, payload []byte) error {
	var hdr [headerBytes + 1]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(1+len(payload)))
	hdr[4] = op
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.bw.Write(payload)
	return err
}

// Flush pushes every enqueued request to the socket.
func (c *Client) Flush() error { return c.bw.Flush() }

// Reply is one response frame. Payload aliases the client's reused
// read buffer: it is valid only until the next ReadReply.
type Reply struct {
	Status  byte
	Payload []byte
}

// ReadReply reads the next response frame (flushing first, so a bare
// Send-then-ReadReply pair cannot deadlock on an unflushed request).
func (c *Client) ReadReply() (Reply, error) {
	if c.bw.Buffered() > 0 {
		if err := c.bw.Flush(); err != nil {
			return Reply{}, err
		}
	}
	status, payload, buf, err := readFrame(c.br, c.frame)
	c.frame = buf
	if err != nil {
		return Reply{}, err
	}
	return Reply{Status: status, Payload: payload}, nil
}

// statusErr converts a non-OK status into an error (NotFound is
// handled by the callers that expect it).
func statusErr(op string, r Reply) error {
	return fmt.Errorf("server: %s answered %s", op, statusName(r.Status))
}

// Get looks one key up.
func (c *Client) Get(key uint64) (value uint64, ok bool, err error) {
	if err := c.SendGet(key); err != nil {
		return 0, false, err
	}
	r, err := c.ReadReply()
	if err != nil {
		return 0, false, err
	}
	switch r.Status {
	case StatusOK:
		if len(r.Payload) != 8 {
			return 0, false, fmt.Errorf("server: GET reply carries %d payload bytes, want 8", len(r.Payload))
		}
		return binary.BigEndian.Uint64(r.Payload), true, nil
	case StatusNotFound:
		return 0, false, nil
	}
	return 0, false, statusErr("GET", r)
}

// Put stores one element, acknowledged (on a durable composition, the
// write-ahead log record is on disk before this returns).
func (c *Client) Put(key, value uint64) error {
	if err := c.SendPut(key, value); err != nil {
		return err
	}
	r, err := c.ReadReply()
	if err != nil {
		return err
	}
	if r.Status != StatusOK {
		return statusErr("PUT", r)
	}
	return nil
}

// Del removes one key, reporting whether it was present. A dictionary
// without delete support answers (false, error) with the wire-level
// unsupported status in the error.
func (c *Client) Del(key uint64) (present bool, err error) {
	if err := c.SendDel(key); err != nil {
		return false, err
	}
	r, err := c.ReadReply()
	if err != nil {
		return false, err
	}
	if r.Status != StatusOK {
		return false, statusErr("DEL", r)
	}
	if len(r.Payload) != 1 {
		return false, fmt.Errorf("server: DEL reply carries %d payload bytes, want 1", len(r.Payload))
	}
	return r.Payload[0] == 1, nil
}

// PutBatch stores a batch in one acknowledged frame.
func (c *Client) PutBatch(elems []core.Element) error {
	if err := c.SendBatch(elems); err != nil {
		return err
	}
	r, err := c.ReadReply()
	if err != nil {
		return err
	}
	if r.Status != StatusOK {
		return statusErr("BATCH", r)
	}
	if len(r.Payload) != 4 || int(binary.BigEndian.Uint32(r.Payload)) != len(elems) {
		return fmt.Errorf("server: BATCH acknowledged the wrong count")
	}
	return nil
}

// Range returns up to max elements with lo <= key <= hi in ascending
// key order.
func (c *Client) Range(lo, hi uint64, max int) ([]core.Element, error) {
	if err := c.SendRange(lo, hi, max); err != nil {
		return nil, err
	}
	r, err := c.ReadReply()
	if err != nil {
		return nil, err
	}
	if r.Status != StatusOK {
		return nil, statusErr("RANGE", r)
	}
	return decodeRange(r)
}

// decodeRange parses a RANGE reply payload.
func decodeRange(r Reply) ([]core.Element, error) {
	if len(r.Payload) < 4 {
		return nil, fmt.Errorf("server: short RANGE reply")
	}
	n := binary.BigEndian.Uint32(r.Payload)
	if len(r.Payload) != 4+int(n)*16 {
		return nil, fmt.Errorf("server: RANGE reply count %d disagrees with %d payload bytes", n, len(r.Payload))
	}
	out := make([]core.Element, n)
	for i := range out {
		off := 4 + i*16
		out[i] = core.Element{
			Key:   binary.BigEndian.Uint64(r.Payload[off:]),
			Value: binary.BigEndian.Uint64(r.Payload[off+8:]),
		}
	}
	return out, nil
}

// ClassStats is one latency class's server-side service-time summary.
type ClassStats struct {
	Count          uint64
	P50, P99, P999 uint64 // nanoseconds
}

// Stats is the decoded STATS reply.
type Stats struct {
	Caps      core.Caps
	Len       uint64
	Transfers uint64
	Classes   [numClasses]ClassStats
}

// Class returns the named class's summary (see ClassName).
func (s Stats) Class(class int) ClassStats { return s.Classes[class] }

// Stats fetches the server's capability sheet, live length, transfer
// count, and per-class latency summary.
func (c *Client) Stats() (Stats, error) {
	if err := c.SendStats(); err != nil {
		return Stats{}, err
	}
	r, err := c.ReadReply()
	if err != nil {
		return Stats{}, err
	}
	if r.Status != StatusOK {
		return Stats{}, statusErr("STATS", r)
	}
	want := 4 + 8 + 8 + numClasses*4*8
	if len(r.Payload) != want {
		return Stats{}, fmt.Errorf("server: STATS reply carries %d payload bytes, want %d", len(r.Payload), want)
	}
	var st Stats
	st.Caps = capsOfMask(binary.BigEndian.Uint32(r.Payload))
	st.Len = binary.BigEndian.Uint64(r.Payload[4:])
	st.Transfers = binary.BigEndian.Uint64(r.Payload[12:])
	off := 20
	for class := 0; class < numClasses; class++ {
		st.Classes[class] = ClassStats{
			Count: binary.BigEndian.Uint64(r.Payload[off:]),
			P50:   binary.BigEndian.Uint64(r.Payload[off+8:]),
			P99:   binary.BigEndian.Uint64(r.Payload[off+16:]),
			P999:  binary.BigEndian.Uint64(r.Payload[off+24:]),
		}
		off += 32
	}
	return st, nil
}
