package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/durable"
	"repro/internal/registry"
	"repro/internal/shard"
)

// Spec names a serving composition: which registry kind does the real
// work, how many shards spread the lock, and whether writes go through
// per-shard write-ahead logs.
type Spec struct {
	// Kind is the inner registry kind per shard ("gcola", "cobtree",
	// ...). Empty means "gcola".
	Kind string

	// Shards is the shard count, rounded up to a power of two. Zero
	// means one shard per available CPU (and, on reopen of a WALDir,
	// whatever count the directory was created with).
	Shards int

	// WALDir, when non-empty, makes the composition durable: shard i
	// logs to WALDir/shard-<i>.wal and checkpoints beside it. Empty
	// means volatile.
	WALDir string

	// CheckpointEvery is the per-shard auto-checkpoint cadence in
	// applied records; zero disables auto-checkpointing (the log still
	// makes every acknowledged write recoverable).
	CheckpointEvery int
}

// Handle is an opened serving composition.
type Handle struct {
	// Dict is the dictionary to serve: a shard map over the inner kind,
	// each shard individually durable when the spec has a WALDir.
	Dict core.Dictionary

	// Spec echoes the resolved spec (Kind and Shards filled in).
	Spec Spec

	durables []*durable.Dict
}

// metaSchema versions the serve.meta file.
const metaSchema = 1

// metaName is the composition descriptor written into a WALDir so a
// reopen cannot silently change the shard fan-out (elements would land
// in the wrong shard's log) or the inner kind.
const metaName = "serve.meta"

type meta struct {
	Schema int    `json:"schema"`
	Kind   string `json:"kind"`
	Shards int    `json:"shards"`
}

// ceilPow2 rounds n up to a power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Open builds the composition a Spec names. With a WALDir it replays
// every shard's log (and checkpoint) first, so the returned dictionary
// already holds every previously acknowledged write; the directory's
// serve.meta pins kind and shard count across restarts.
func Open(spec Spec) (*Handle, error) {
	if spec.Kind == "" {
		spec.Kind = "gcola"
	}
	if spec.Shards < 0 {
		return nil, fmt.Errorf("server: negative shard count %d", spec.Shards)
	}

	if spec.WALDir == "" {
		if spec.Shards == 0 {
			spec.Shards = runtime.GOMAXPROCS(0)
		}
		spec.Shards = ceilPow2(spec.Shards)
		d, err := registry.Build("sharded",
			registry.WithShards(spec.Shards),
			registry.WithInner(spec.Kind))
		if err != nil {
			return nil, err
		}
		return &Handle{Dict: d, Spec: spec}, nil
	}

	if err := os.MkdirAll(spec.WALDir, 0o755); err != nil {
		return nil, err
	}
	if err := reconcileMeta(&spec); err != nil {
		return nil, err
	}

	// One independently durable dictionary per shard — each owns its own
	// log file, so shards never contend on one writer and a reopen
	// replays them independently.
	durables := make([]*durable.Dict, spec.Shards)
	for i := range durables {
		d, err := registry.Build("durable",
			registry.WithWALPath(filepath.Join(spec.WALDir, fmt.Sprintf("shard-%02d.wal", i))),
			registry.WithCheckpointEvery(spec.CheckpointEvery),
			registry.WithInner(spec.Kind))
		if err != nil {
			closeAll(durables[:i])
			return nil, fmt.Errorf("server: shard %d: %w", i, err)
		}
		dd, ok := d.(*durable.Dict)
		if !ok {
			closeAll(durables[:i])
			return nil, fmt.Errorf("server: durable build returned %T", d)
		}
		durables[i] = dd
	}
	m := shard.New(
		shard.WithShards(spec.Shards),
		shard.WithDictionary(func(i int, _ *dam.Space) core.Dictionary {
			return durables[i]
		}),
	)
	return &Handle{Dict: m, Spec: spec, durables: durables}, nil
}

// reconcileMeta loads or creates WALDir/serve.meta, resolving
// spec.Shards and rejecting mismatches against an existing directory.
func reconcileMeta(spec *Spec) error {
	path := filepath.Join(spec.WALDir, metaName)
	raw, err := os.ReadFile(path)
	switch {
	case err == nil:
		var m meta
		if err := json.Unmarshal(raw, &m); err != nil {
			return fmt.Errorf("server: %s: %w", path, err)
		}
		if m.Schema != metaSchema {
			return fmt.Errorf("server: %s has schema %d, this build reads %d", path, m.Schema, metaSchema)
		}
		if m.Kind != spec.Kind {
			return fmt.Errorf("server: %s was created for kind %q, spec asks for %q", path, m.Kind, spec.Kind)
		}
		if spec.Shards == 0 {
			spec.Shards = m.Shards
		} else if ceilPow2(spec.Shards) != m.Shards {
			return fmt.Errorf("server: %s was created with %d shards, spec asks for %d", path, m.Shards, ceilPow2(spec.Shards))
		}
		spec.Shards = m.Shards
		return nil
	case os.IsNotExist(err):
		if spec.Shards == 0 {
			spec.Shards = runtime.GOMAXPROCS(0)
		}
		spec.Shards = ceilPow2(spec.Shards)
		raw, err := json.Marshal(meta{Schema: metaSchema, Kind: spec.Kind, Shards: spec.Shards})
		if err != nil {
			return err
		}
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	default:
		return err
	}
}

func closeAll(ds []*durable.Dict) {
	for _, d := range ds {
		if d != nil {
			d.Close()
		}
	}
}

// Close syncs and closes every durable shard. Volatile compositions
// close trivially.
func (h *Handle) Close() error {
	var first error
	for _, d := range h.durables {
		if err := d.Sync(); err != nil && first == nil {
			first = err
		}
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
