package server

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/core"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {0xAA}, bytes.Repeat([]byte{7}, 1000)}
	for i, p := range payloads {
		buf.Write(appendFrame(nil, byte(i+1), p...))
	}
	var scratch []byte
	for i, want := range payloads {
		kind, payload, newBuf, err := readFrame(&buf, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		scratch = newBuf
		if kind != byte(i+1) {
			t.Fatalf("frame %d: kind %d, want %d", i, kind, i+1)
		}
		if !bytes.Equal(payload, want) {
			t.Fatalf("frame %d: payload %v, want %v", i, payload, want)
		}
	}
	if _, _, _, err := readFrame(&buf, scratch); err != io.EOF {
		t.Fatalf("after last frame: %v, want EOF", err)
	}
}

func TestFrameRejectsEmptyAndOversized(t *testing.T) {
	var empty bytes.Buffer
	binary.Write(&empty, binary.BigEndian, uint32(0))
	if _, _, _, err := readFrame(&empty, nil); err != errEmptyFrame {
		t.Fatalf("zero-length frame: %v, want errEmptyFrame", err)
	}
	var huge bytes.Buffer
	binary.Write(&huge, binary.BigEndian, uint32(MaxFrameBytes+1))
	if _, _, _, err := readFrame(&huge, nil); err != errFrameTooLarge {
		t.Fatalf("oversized frame: %v, want errFrameTooLarge", err)
	}
}

// TestCapsMaskRoundTrip: every combination of the six capability bits
// survives the wire encoding.
func TestCapsMaskRoundTrip(t *testing.T) {
	for m := uint32(0); m < 1<<6; m++ {
		c := core.Caps{
			Snapshot:    m&capSnapshot != 0,
			WAL:         m&capWAL != 0,
			Delete:      m&capDelete != 0,
			Batch:       m&capBatch != 0,
			Stats:       m&capStats != 0,
			SharedReads: m&capSharedReads != 0,
		}
		if got := capsMask(c); got != m {
			t.Fatalf("capsMask(%+v) = %b, want %b", c, got, m)
		}
		if got := capsOfMask(m); got != c {
			t.Fatalf("capsOfMask(%b) = %+v, want %+v", m, got, c)
		}
	}
}

func TestStatusAndOpNames(t *testing.T) {
	if got := statusName(99); got != "status(99)" {
		t.Fatalf("statusName(99) = %q", got)
	}
	if got := opName(99); got != "op(99)" {
		t.Fatalf("opName(99) = %q", got)
	}
	if got := opName(OpBatch); got != "BATCH" {
		t.Fatalf("opName(OpBatch) = %q", got)
	}
}
