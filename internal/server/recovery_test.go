package server

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// The SIGKILL recovery test re-executes this test binary as a real
// server process (the durability lane's pattern): the child serves a
// durable sharded composition, the parent ingests acknowledged batches
// over the wire, SIGKILLs the child mid-stream, reopens the WAL
// directory in-process, and requires every acknowledged element back.
const (
	childEnv     = "REPRO_SERVER_CHILD"
	childWALEnv  = "REPRO_SERVER_WALDIR"
	childAddrEnv = "REPRO_SERVER_ADDRFILE"
)

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		childServe()
		return
	}
	os.Exit(m.Run())
}

// childServe runs the server half of the recovery test until killed.
func childServe() {
	h, err := Open(Spec{Kind: "gcola", Shards: 2, WALDir: os.Getenv(childWALEnv)})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	addrFile := os.Getenv(childAddrEnv)
	tmp := addrFile + ".tmp"
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, addrFile); err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	srv := New(h.Dict)
	srv.Serve(ln) // until SIGKILL
}

// recoveryKey spreads sequential indices over the key space (and over
// both shards), mirroring the streambench recovery lane.
func recoveryKey(i int) uint64 { return uint64(i+1) * 0x9E3779B97F4A7C15 }

func TestSIGKILLRecoversAcknowledgedPrefix(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	walDir := t.TempDir()
	addrFile := filepath.Join(t.TempDir(), "addr")

	cmd := exec.Command(os.Args[0], "-test.run=^$")
	cmd.Env = append(os.Environ(),
		childEnv+"=1", childWALEnv+"="+walDir, childAddrEnv+"="+addrFile)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	killed := false
	defer func() {
		if !killed {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for {
		if raw, err := os.ReadFile(addrFile); err == nil {
			addr = strings.TrimSpace(string(raw))
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never published its address")
		}
		time.Sleep(20 * time.Millisecond)
	}

	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Acknowledged prefix: every batch below is confirmed over the wire
	// before the next is sent, so its write-ahead records are on disk.
	const batches, batchSize = 40, 64
	acked := 0
	for b := 0; b < batches; b++ {
		elems := make([]core.Element, batchSize)
		for j := range elems {
			k := recoveryKey(b*batchSize + j)
			elems[j] = core.Element{Key: k, Value: k ^ 0xFF}
		}
		if err := cl.PutBatch(elems); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		acked += batchSize
	}
	// One unacknowledged in-flight batch, then SIGKILL mid-stream: the
	// crash may land before, inside, or after its log writes.
	inflight := make([]core.Element, batchSize)
	for j := range inflight {
		k := recoveryKey(acked + j)
		inflight[j] = core.Element{Key: k, Value: k ^ 0xFF}
	}
	if err := cl.SendBatch(inflight); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	// Reopen the WAL directory in-process and demand the acknowledged
	// prefix back, element for element.
	h, err := Open(Spec{Kind: "gcola", Shards: 2, WALDir: walDir})
	if err != nil {
		t.Fatalf("reopen after SIGKILL: %v", err)
	}
	defer h.Close()
	if h.Spec.Shards != 2 {
		t.Fatalf("serve.meta lost the shard count: %d", h.Spec.Shards)
	}
	for i := 0; i < acked; i++ {
		k := recoveryKey(i)
		v, ok := h.Dict.Search(k)
		if !ok || v != k^0xFF {
			t.Fatalf("acknowledged element %d (key %#x) lost after SIGKILL: (%d, %v)", i, k, v, ok)
		}
	}
	if got := h.Dict.Len(); got < acked {
		t.Fatalf("recovered Len = %d, below acknowledged %d", got, acked)
	}
}

// TestMetaPinsComposition: reopening a WAL directory with a different
// kind or shard count must be refused, never silently resharded.
func TestMetaPinsComposition(t *testing.T) {
	walDir := t.TempDir()
	h, err := Open(Spec{Kind: "gcola", Shards: 2, WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	h.Dict.Insert(1, 2)
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(Spec{Kind: "btree", Shards: 2, WALDir: walDir}); err == nil {
		t.Fatal("reopen with a different kind accepted")
	}
	if _, err := Open(Spec{Kind: "gcola", Shards: 8, WALDir: walDir}); err == nil {
		t.Fatal("reopen with a different shard count accepted")
	}

	// Zero shards adopts the directory's count.
	r, err := Open(Spec{Kind: "gcola", WALDir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Spec.Shards != 2 {
		t.Fatalf("adopted %d shards, want 2", r.Spec.Shards)
	}
	if v, ok := r.Dict.Search(1); !ok || v != 2 {
		t.Fatalf("recovered Search(1) = (%d, %v)", v, ok)
	}
}
