package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hist"
)

// Latency classes: one histogram per op family, shared across
// connections (hist.Hist is atomic and allocation-free).
const (
	ClassGet = iota
	ClassPut
	ClassDel
	ClassRange
	numClasses
)

// NumClasses is the number of latency classes.
const NumClasses = numClasses

// ClassName names a latency class for reporting.
func ClassName(class int) string {
	switch class {
	case ClassGet:
		return "get"
	case ClassPut:
		return "put"
	case ClassDel:
		return "del"
	case ClassRange:
		return "range"
	}
	return fmt.Sprintf("class(%d)", class)
}

// Server serves one dictionary over the wire protocol. The dictionary
// must be safe for concurrent use (the compositions Open builds — a
// sharded map, optionally over per-shard durable wrappers — are; so
// are the synchronized and durable wrappers on their own).
//
// Capabilities are probed once with core.CapsOf: an op the dictionary
// cannot honor (DEL without a Deleter) is answered with
// StatusUnsupported, a typed wire error, never a panic. GET runs on
// the dictionary's shared-read path whenever SharedReads probed true —
// the sharded and durable wrappers bracket internally — so concurrent
// GETs scale with connections instead of serializing.
type Server struct {
	d    core.Dictionary
	caps core.Caps
	del  core.Deleter // nil when caps.Delete is false

	lat [numClasses]hist.Hist

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	draining atomic.Bool
}

// New wraps a concurrency-safe dictionary for serving.
func New(d core.Dictionary) *Server {
	s := &Server{
		d:     d,
		caps:  core.CapsOf(d),
		conns: make(map[net.Conn]struct{}),
	}
	if s.caps.Delete {
		// The caps probe and the interface can only disagree for an
		// externally registered kind advertising Delete without a
		// Deleter; degrade to Unsupported rather than trusting the flag.
		s.del, _ = d.(core.Deleter)
		if s.del == nil {
			s.caps.Delete = false
		}
	}
	return s
}

// Caps reports the serving dictionary's capability sheet (the same
// bits STATS carries on the wire).
//
//repro:readonly
func (s *Server) Caps() core.Caps { return s.caps }

// Latency returns the server-side service-time histogram of one class,
// for tests and in-process harnesses.
//
//repro:readonly
func (s *Server) Latency(class int) *hist.Hist { return &s.lat[class] }

// Serve accepts connections on ln until Shutdown (which returns nil
// here) or a listener error. Each connection is served by its own
// goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			c := newConn(s, nc)
			c.serve()
			s.mu.Lock()
			delete(s.conns, nc)
			s.mu.Unlock()
			nc.Close()
		}()
	}
}

// Shutdown drains the server: stop accepting, wake every connection
// blocked in a read (requests already received are still answered),
// and wait up to timeout for the connections to finish. Connections
// still alive after the timeout are closed forcibly and reported as an
// error — a clean drain returns nil.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for nc := range s.conns {
		// Wake blocked reads; the conn loop sees draining and finishes.
		nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		s.mu.Lock()
		forced := len(s.conns)
		for nc := range s.conns {
			nc.Close()
		}
		s.mu.Unlock()
		<-done
		return fmt.Errorf("server: drain timed out; %d connection(s) closed forcibly", forced)
	}
}

// conn is one connection's state: buffered halves plus reused scratch
// so the steady-state request loop performs no allocation.
type conn struct {
	s   *Server
	nc  net.Conn
	br  *bufio.Reader
	out []byte //repro:scratch response build buffer, reused per request
	req []byte //repro:scratch request frame buffer, reused per request

	batch []core.Element //repro:scratch coalesced consecutive PUTs
	elems []core.Element //repro:scratch BATCH decode scratch
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		s:   s,
		nc:  nc,
		br:  bufio.NewReaderSize(nc, 1<<16),
		out: make([]byte, 0, 1<<12),
		req: make([]byte, 0, 1<<12),
	}
}

// serve runs the request loop until the peer closes, a framing error
// poisons the connection, or a drain completes. Responses accumulate
// in c.out and flush to the socket whenever the read buffer empties
// (no more pipelined requests to coalesce the write with) — one
// syscall per burst, not per response.
func (c *conn) serve() {
	for {
		kind, payload, buf, err := readFrame(c.br, c.req)
		c.req = buf
		if err != nil {
			switch {
			case errors.Is(err, errFrameTooLarge):
				c.out = appendFrame(c.out, StatusTooLarge)
			case errors.Is(err, errEmptyFrame):
				c.out = appendFrame(c.out, StatusBadFrame)
			}
			// EOF, a drain wake-up, or a poisoned frame: flush what we
			// owe and stop.
			c.flush()
			return
		}
		c.dispatch(kind, payload)
		if c.br.Buffered() == 0 {
			if c.flush() != nil {
				return
			}
			if c.s.draining.Load() {
				return
			}
		}
	}
}

// flush writes the accumulated responses to the socket.
func (c *conn) flush() error {
	if len(c.out) == 0 {
		return nil
	}
	_, err := c.nc.Write(c.out)
	c.out = c.out[:0]
	return err
}

// dispatch answers one request, appending the response frame to c.out.
func (c *conn) dispatch(op byte, payload []byte) {
	switch op {
	case OpGet:
		c.handleGet(payload)
	case OpPut:
		c.handlePut(payload)
	case OpDel:
		c.handleDel(payload)
	case OpBatch:
		c.handleBatch(payload)
	case OpRange:
		c.handleRange(payload)
	case OpStats:
		c.handleStats(payload)
	default:
		c.out = appendFrame(c.out, StatusBadFrame)
	}
}

// handleGet is the zero-alloc hot path: decode, search (the
// dictionary brackets its own shared-read epoch when capable), encode
// into the reused buffer, observe service time.
func (c *conn) handleGet(payload []byte) {
	if len(payload) != 8 {
		c.out = appendFrame(c.out, StatusBadFrame)
		return
	}
	start := time.Now()
	v, ok := c.s.d.Search(binary.BigEndian.Uint64(payload))
	if ok {
		c.out = binary.BigEndian.AppendUint32(c.out, 9)
		c.out = append(c.out, StatusOK)
		c.out = binary.BigEndian.AppendUint64(c.out, v)
	} else {
		c.out = appendFrame(c.out, StatusNotFound)
	}
	c.s.lat[ClassGet].Observe(uint64(time.Since(start)))
}

// handlePut applies one PUT — but first coalesces every consecutive
// PUT frame already sitting in the read buffer into one batch apply,
// acknowledged individually. On a durable composition that turns a
// pipelined window of w PUTs into one log record per shard group
// instead of w records: the batch-WAL-ack fast path.
func (c *conn) handlePut(payload []byte) {
	if len(payload) != 16 {
		c.out = appendFrame(c.out, StatusBadFrame)
		return
	}
	start := time.Now()
	c.batch = c.batch[:0]
	c.batch = append(c.batch, core.Element{
		Key:   binary.BigEndian.Uint64(payload),
		Value: binary.BigEndian.Uint64(payload[8:]),
	})
	// Coalesce: consume complete buffered PUT frames without waiting
	// for more bytes from the peer. The Buffered guard keeps Peek from
	// blocking on the socket for bytes the peer has not sent.
	for len(c.batch) < MaxBatchElems && c.br.Buffered() >= headerBytes+17 {
		hdr, err := c.br.Peek(headerBytes + 17)
		if err != nil || binary.BigEndian.Uint32(hdr) != 17 || hdr[4] != OpPut {
			break
		}
		c.batch = append(c.batch, core.Element{
			Key:   binary.BigEndian.Uint64(hdr[5:]),
			Value: binary.BigEndian.Uint64(hdr[13:]),
		})
		c.br.Discard(headerBytes + 17)
	}
	if len(c.batch) == 1 {
		c.s.d.Insert(c.batch[0].Key, c.batch[0].Value)
	} else {
		core.InsertBatch(c.s.d, c.batch)
	}
	// Each coalesced PUT is acknowledged with its own OK frame and
	// charged the batch's service time (they waited on the same apply).
	el := uint64(time.Since(start))
	for range c.batch {
		c.out = appendFrame(c.out, StatusOK)
		c.s.lat[ClassPut].Observe(el)
	}
}

func (c *conn) handleDel(payload []byte) {
	if len(payload) != 8 {
		c.out = appendFrame(c.out, StatusBadFrame)
		return
	}
	if c.s.del == nil {
		c.out = appendFrame(c.out, StatusUnsupported)
		return
	}
	start := time.Now()
	present := c.s.del.Delete(binary.BigEndian.Uint64(payload))
	var p byte
	if present {
		p = 1
	}
	c.out = appendFrame(c.out, StatusOK, p)
	c.s.lat[ClassDel].Observe(uint64(time.Since(start)))
}

func (c *conn) handleBatch(payload []byte) {
	if len(payload) < 4 {
		c.out = appendFrame(c.out, StatusBadFrame)
		return
	}
	n := binary.BigEndian.Uint32(payload)
	if n > MaxBatchElems {
		c.out = appendFrame(c.out, StatusTooLarge)
		return
	}
	if len(payload) != 4+int(n)*16 {
		c.out = appendFrame(c.out, StatusBadFrame)
		return
	}
	start := time.Now()
	if cap(c.elems) < int(n) {
		c.elems = make([]core.Element, n)
	}
	c.elems = c.elems[:n]
	for i := range c.elems {
		off := 4 + i*16
		c.elems[i] = core.Element{
			Key:   binary.BigEndian.Uint64(payload[off:]),
			Value: binary.BigEndian.Uint64(payload[off+8:]),
		}
	}
	core.InsertBatch(c.s.d, c.elems)
	c.out = binary.BigEndian.AppendUint32(c.out, 5)
	c.out = append(c.out, StatusOK)
	c.out = binary.BigEndian.AppendUint32(c.out, n)
	c.s.lat[ClassPut].Observe(uint64(time.Since(start)))
}

func (c *conn) handleRange(payload []byte) {
	if len(payload) != 20 {
		c.out = appendFrame(c.out, StatusBadFrame)
		return
	}
	lo := binary.BigEndian.Uint64(payload)
	hi := binary.BigEndian.Uint64(payload[8:])
	max := binary.BigEndian.Uint32(payload[16:])
	if max > MaxBatchElems {
		max = MaxBatchElems
	}
	start := time.Now()
	// Build the response around a count placeholder, then patch it.
	head := len(c.out)
	c.out = binary.BigEndian.AppendUint32(c.out, 0) // frame length, patched
	c.out = append(c.out, StatusOK)
	c.out = binary.BigEndian.AppendUint32(c.out, 0) // element count, patched
	n := uint32(0)
	if max > 0 {
		c.s.d.Range(lo, hi, func(e core.Element) bool {
			c.out = binary.BigEndian.AppendUint64(c.out, e.Key)
			c.out = binary.BigEndian.AppendUint64(c.out, e.Value)
			n++
			return n < max
		})
	}
	binary.BigEndian.PutUint32(c.out[head:], uint32(1+4+n*16))
	binary.BigEndian.PutUint32(c.out[head+5:], n)
	c.s.lat[ClassRange].Observe(uint64(time.Since(start)))
}

// handleStats encodes the stats payload: caps mask, live length, DAM
// transfers (when the dictionary self-accounts), and per-class
// service-time counts and quantiles.
func (c *conn) handleStats(payload []byte) {
	if len(payload) != 0 {
		c.out = appendFrame(c.out, StatusBadFrame)
		return
	}
	var transfers uint64
	if tc, ok := c.s.d.(core.TransferCounter); ok {
		transfers = tc.Transfers()
	}
	body := 4 + 8 + 8 + numClasses*4*8
	c.out = binary.BigEndian.AppendUint32(c.out, uint32(1+body))
	c.out = append(c.out, StatusOK)
	c.out = binary.BigEndian.AppendUint32(c.out, capsMask(c.s.caps))
	c.out = binary.BigEndian.AppendUint64(c.out, uint64(c.s.d.Len()))
	c.out = binary.BigEndian.AppendUint64(c.out, transfers)
	for class := 0; class < numClasses; class++ {
		h := &c.s.lat[class]
		c.out = binary.BigEndian.AppendUint64(c.out, h.Count())
		c.out = binary.BigEndian.AppendUint64(c.out, h.Quantile(0.50))
		c.out = binary.BigEndian.AppendUint64(c.out, h.Quantile(0.99))
		c.out = binary.BigEndian.AppendUint64(c.out, h.Quantile(0.999))
	}
}
