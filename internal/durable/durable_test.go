package durable

import (
	"io"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/cola"
	"repro/internal/core"
	"repro/internal/wal"
	"repro/internal/workload"
)

// replayInto folds recovered records into d, mirroring the registry's
// replay handler (which lives a package up and cannot be imported here).
type replayInto struct{ d core.Dictionary }

func (h replayInto) ApplyInsert(elems []core.Element) { core.InsertBatch(h.d, elems) }
func (h replayInto) ApplyDelete(keys []uint64) {
	del := h.d.(core.Deleter)
	for _, k := range keys {
		del.Delete(k)
	}
}

// openDict assembles a durable wrapper around the given inner at a
// fresh (or existing) WAL path, replaying any log tail into it first.
func openDict(t *testing.T, path string, inner core.Dictionary, every int) *Dict {
	t.Helper()
	w, _, err := wal.Open(path, replayInto{inner})
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", path, err)
	}
	sn := inner.(core.Snapshotter)
	return New(Options{
		Inner:           inner,
		Log:             w,
		CheckpointPath:  path + ".ckpt",
		CheckpointEvery: every,
		WriteSnapshot:   func(out io.Writer) error { _, err := sn.WriteTo(out); return err },
	})
}

// exclusiveInner hides SharedReader methods to force exclusive reads
// while keeping the snapshot capability openDict needs.
type exclusiveInner struct {
	core.Dictionary
	core.Snapshotter
}

func hideSharedReader(c *cola.GCOLA) exclusiveInner {
	return exclusiveInner{Dictionary: c, Snapshotter: c}
}

func TestForwardingBasics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.wal")
	d := openDict(t, path, cola.NewCOLA(nil), 0)
	defer mustClose(t, d)

	d.Insert(1, 10)
	d.InsertBatch([]core.Element{{Key: 2, Value: 20}, {Key: 3, Value: 30}})
	if v, ok := d.Search(2); !ok || v != 20 {
		t.Fatalf("Search(2) = (%d,%v)", v, ok)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
	if !d.Delete(3) || d.Delete(3) {
		t.Fatal("Delete semantics broken")
	}
	if st := d.Stats(); st.Inserts == 0 || st.Searches == 0 {
		t.Fatalf("Stats not forwarded: %+v", st)
	}
	count := 0
	d.Range(0, 100, func(core.Element) bool { count++; return true })
	if count != 2 {
		t.Fatalf("Range visited %d, want 2", count)
	}
	if d.Records() == 0 {
		t.Fatal("mutations did not reach the log")
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

func TestSharedReadsProbeAndForwarding(t *testing.T) {
	dir := t.TempDir()
	shared := openDict(t, filepath.Join(dir, "s.wal"), cola.NewCOLA(nil), 0)
	defer mustClose(t, shared)
	if !shared.SharedReads() || !core.SharedReads(shared) {
		t.Fatal("durable over COLA must report shared reads")
	}

	excl := openDict(t, filepath.Join(dir, "e.wal"), hideSharedReader(cola.NewCOLA(nil)), 0)
	defer mustClose(t, excl)
	if excl.SharedReads() || core.SharedReads(excl) {
		t.Fatal("durable over a hidden-SharedReader inner must report exclusive reads")
	}
	// Brackets on the exclusive wrapper are no-ops, not panics.
	excl.BeginSharedReads()
	excl.EndSharedReads()

	deam := openDict(t, filepath.Join(dir, "d.wal"), cola.NewDeamortized(nil), 0)
	defer mustClose(t, deam)
	if deam.SharedReads() {
		t.Fatal("durable over deamortized COLA must report exclusive reads")
	}
}

// TestSharedSearchesRaceLoggedInserts is the -race stress of the
// durable wrapper's RLock fast path: concurrent readers race a writer
// whose every mutation goes through the write-ahead log, plus an
// aggregation poller. Run it against both the shared and the exclusive
// configuration.
func TestSharedSearchesRaceLoggedInserts(t *testing.T) {
	for _, tc := range []struct {
		name  string
		inner core.Dictionary
	}{
		{"shared", cola.NewCOLA(nil)},
		{"exclusive", hideSharedReader(cola.NewCOLA(nil))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "race.wal")
			d := openDict(t, path, tc.inner, 64) // checkpoints race the traffic too
			defer mustClose(t, d)

			const keyspace = 1 << 11
			for k := uint64(0); k < keyspace; k += 2 {
				d.Insert(k, k)
			}
			perG := 3000
			if testing.Short() {
				perG = 600
			}
			var wg sync.WaitGroup
			for w := 0; w < 5; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := workload.NewRNG(uint64(w) + 3)
					for i := 0; i < perG; i++ {
						k := rng.Uint64() % keyspace
						if v, ok := d.Search(k); ok && v != k && v != k+1 {
							t.Errorf("Search(%d) = %d", k, v)
							return
						}
						if i%128 == 0 {
							d.Range(k, k+64, func(core.Element) bool { return true })
							_ = d.Len()
							_ = d.Stats()
						}
					}
				}(w)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := workload.NewRNG(555)
				for i := 0; i < perG; i++ {
					k := rng.Uint64() % keyspace
					if rng.Uint64()%4 == 3 {
						d.Delete(k)
					} else {
						d.Insert(k, k+1)
					}
				}
			}()
			wg.Wait()

			if err := d.Err(); err != nil {
				t.Fatalf("Err after stress = %v", err)
			}
			d.Insert(keyspace+5, 1)
			if _, ok := d.Search(keyspace + 5); !ok {
				t.Fatal("post-stress Search lost an insert")
			}
		})
	}
}

// TestRecoveryAfterSharedTraffic proves the durability contract is
// untouched by the read fast path: reopen the same WAL and find every
// acknowledged mutation.
func TestRecoveryAfterSharedTraffic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.wal")
	d := openDict(t, path, cola.NewCOLA(nil), 0)
	const n = 1 << 10
	for i := uint64(0); i < n; i++ {
		d.Insert(i, i*3)
	}
	// Concurrent shared reads between the writes, then close WITHOUT a
	// checkpoint: recovery must come purely from the log.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < n; i++ {
				d.Search(i)
			}
		}(w)
	}
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	inner := cola.NewCOLA(nil)
	d2 := openDict(t, path, inner, 0)
	defer mustClose(t, d2)
	if d2.Len() != n {
		t.Fatalf("recovered Len = %d, want %d", d2.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := d2.Search(i); !ok || v != i*3 {
			t.Fatalf("recovered Search(%d) = (%d,%v), want (%d,true)", i, v, ok, i*3)
		}
	}
}

// TestCheckpointResetsSchedule pins the automatic checkpoint cadence.
func TestCheckpointResetsSchedule(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	d := openDict(t, path, cola.NewCOLA(nil), 4)
	defer mustClose(t, d)
	for i := uint64(0); i < 10; i++ {
		d.Insert(i, i)
	}
	// 10 records with a period of 4: two automatic checkpoints, log
	// truncated at 4 and 8, leaving 2 records.
	if got := d.Records(); got != 2 {
		t.Fatalf("Records = %d after periodic checkpoints, want 2", got)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := d.Records(); got != 0 {
		t.Fatalf("Records = %d after manual checkpoint, want 0", got)
	}
}
