// Package durable provides the WAL-backed persistence wrapper behind
// the registry kind "durable": any snapshot-capable dictionary, made
// crash-recoverable by logging every mutation to an append-only
// write-ahead log (internal/wal) before applying it, and periodically
// checkpointing the whole structure to a snapshot container so the log
// stays short.
//
// The wrapper owns two files, derived from the WAL path p chosen at
// build time: the log itself at p and the checkpoint snapshot at
// p+".ckpt". Reopening the same path rebuilds the dictionary: the
// checkpoint (when present) restores the bulk, then the log tail
// replays — every batch acknowledged before the crash is recovered,
// un-acknowledged (torn) appends vanish. A checkpoint is written
// crash-safely: snapshot to a temporary sibling, fsync, rename over the
// old checkpoint, then truncate the log; a crash between the rename and
// the truncate merely replays records whose effects the checkpoint
// already holds, which is idempotent.
//
// Construction happens in the registry (which knows how to build the
// inner structure, load checkpoints, and write spec-carrying snapshot
// containers); this package holds the runtime wrapper only.
package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/wal"
)

// Options configures New. All fields are required except
// CheckpointEvery.
type Options struct {
	// Inner is the wrapped dictionary, already restored from the latest
	// checkpoint and log tail by the builder.
	Inner core.Dictionary
	// Log is the open write-ahead log, positioned for appending.
	Log *wal.WAL
	// CheckpointPath is where checkpoints are written (the registry uses
	// WAL path + ".ckpt").
	CheckpointPath string
	// CheckpointEvery triggers an automatic checkpoint after that many
	// appended records (batches, not elements); 0 disables automatic
	// checkpointing (the log then grows until Checkpoint is called).
	CheckpointEvery int
	// WriteSnapshot writes a complete self-describing snapshot container
	// of Inner. It is invoked with the wrapper's lock held.
	WriteSnapshot func(io.Writer) error
}

// Dict is the durable dictionary. It implements core.Dictionary,
// core.Deleter, core.Statser, core.TransferCounter, and
// core.BatchInserter (capabilities beyond Dictionary forward to the
// inner structure and degrade gracefully when it lacks them); it
// deliberately does not implement core.Snapshotter — its persistence
// story IS the WAL plus checkpoints, written via Checkpoint.
//
// Every mutation serializes on one RWMutex, so a Dict is safe for
// concurrent use. When the inner structure genuinely supports shared
// reads (core.AsSharedReader, probed once at construction), Search and
// Range take the read side bracketed by Begin/EndSharedReads and scale
// with concurrent readers — reads never touch the log, so nothing about
// the durability contract changes; otherwise they serialize with the
// mutations, the pre-shared-read behaviour. SharedReads reports which
// mode the wrapper is in (its own methods exist unconditionally, so the
// prober — not a type assertion — is the honest capability probe).
//
// Error contract: the Dictionary interface has no error returns, so a
// failed log append — the point where durability would silently end —
// panics with the underlying error, which also becomes visible through
// Err. The log cuts a torn record back to the last intact boundary
// after a failed write; if even that fails it poisons itself, so a
// caller that recovers the panic and keeps going panics again on every
// mutation (never acknowledging a write that replay could not reach)
// until a successful Checkpoint empties the log. A failed automatic
// checkpoint does NOT panic: the log is intact, so no acknowledged
// write is at risk; the error is retained in Err and the next record
// retries.
type Dict struct {
	mu            sync.RWMutex
	inner         core.Dictionary
	sr            core.SharedReader // shared-read bracket target; nil = exclusive reads
	log           *wal.WAL
	ckptPath      string
	every         int
	writeSnapshot func(io.Writer) error
	sinceCkpt     int
	err           error // first retained failure (checkpoint or log)
	one           [1]core.Element
	oneKey        [1]uint64
}

var (
	_ core.Dictionary       = (*Dict)(nil)
	_ core.Deleter          = (*Dict)(nil)
	_ core.Statser          = (*Dict)(nil)
	_ core.TransferCounter  = (*Dict)(nil)
	_ core.BatchInserter    = (*Dict)(nil)
	_ core.SharedReader     = (*Dict)(nil)
	_ core.SharedReadProber = (*Dict)(nil)
	_ core.CapsProber       = (*Dict)(nil)
)

// New assembles the wrapper; see Options.
func New(opt Options) *Dict {
	if opt.Inner == nil || opt.Log == nil || opt.WriteSnapshot == nil || opt.CheckpointPath == "" {
		panic("durable: New requires Inner, Log, CheckpointPath, and WriteSnapshot")
	}
	d := &Dict{
		inner:         opt.Inner,
		log:           opt.Log,
		ckptPath:      opt.CheckpointPath,
		every:         opt.CheckpointEvery,
		writeSnapshot: opt.WriteSnapshot,
	}
	if sr, ok := core.AsSharedReader(opt.Inner); ok {
		d.sr = sr
	}
	return d
}

// mustAppend runs one log append and panics on failure (see the type
// comment's error contract).
func (d *Dict) mustAppend(err error) {
	if err != nil {
		if d.err == nil {
			d.err = err
		}
		panic(fmt.Sprintf("durable: write-ahead log append failed: %v", err))
	}
}

// afterAppend advances the checkpoint schedule.
func (d *Dict) afterAppend() {
	d.sinceCkpt++
	if d.every > 0 && d.sinceCkpt >= d.every {
		if err := d.checkpointLocked(); err != nil && d.err == nil {
			d.err = err
		}
	}
}

// Insert implements core.Dictionary: the element is logged (one-record
// batch), applied, and then acknowledged by returning.
func (d *Dict) Insert(key, value uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.one[0] = core.Element{Key: key, Value: value}
	d.mustAppend(d.log.AppendInsert(d.one[:]))
	d.inner.Insert(key, value)
	d.afterAppend()
}

// InsertBatch implements core.BatchInserter: the whole batch becomes a
// single log record (the amortized ingestion path — one write call and
// one checkpoint-schedule tick per batch) and applies through the inner
// structure's own batch path when it has one. Batches larger than one
// record can carry (wal.MaxBatchElems, ~4M elements) are split across
// consecutive records transparently; for such a batch the
// crash-recovery granularity is the chunk, not the whole batch.
func (d *Dict) InsertBatch(elems []core.Element) {
	if len(elems) == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for len(elems) > 0 {
		chunk := elems
		if len(chunk) > wal.MaxBatchElems {
			chunk = chunk[:wal.MaxBatchElems]
		}
		d.mustAppend(d.log.AppendInsert(chunk))
		core.InsertBatch(d.inner, chunk)
		d.afterAppend()
		elems = elems[len(chunk):]
	}
}

// Delete implements core.Deleter. When the inner structure supports
// deletion the key is logged then deleted; otherwise no record is
// written and Delete reports false, like every other wrapper here.
func (d *Dict) Delete(key uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	del, ok := d.inner.(core.Deleter)
	if !ok {
		return false
	}
	d.oneKey[0] = key
	d.mustAppend(d.log.AppendDelete(d.oneKey[:]))
	present := del.Delete(key)
	d.afterAppend()
	return present
}

// Search implements core.Dictionary: on the read side of the lock,
// bracketed, when the inner structure supports shared reads; exclusive
// otherwise. Reads never touch the write-ahead log.
func (d *Dict) Search(key uint64) (uint64, bool) {
	if d.sr != nil {
		d.mu.RLock()
		d.sr.BeginSharedReads()
		v, ok := d.inner.Search(key)
		d.sr.EndSharedReads()
		d.mu.RUnlock()
		return v, ok
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inner.Search(key)
}

// Range implements core.Dictionary, with the same lock choice as
// Search. The callback runs under the lock and must not call back into
// the dictionary at all — a reentrant RLock deadlocks against a
// waiting writer. The bracket and lock release are deferred so a
// panicking callback cannot leak the read lock or leave the shared
// epoch open.
func (d *Dict) Range(lo, hi uint64, fn func(core.Element) bool) {
	if d.sr != nil {
		d.mu.RLock()
		d.sr.BeginSharedReads()
		defer func() {
			d.sr.EndSharedReads()
			d.mu.RUnlock()
		}()
		d.inner.Range(lo, hi, fn)
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inner.Range(lo, hi, fn)
}

// SharedReads implements core.SharedReadProber: whether reads genuinely
// run on the shared side, i.e. whether the inner structure honestly
// declared shared-read safety.
func (d *Dict) SharedReads() bool { return d.sr != nil }

// BeginSharedReads implements core.SharedReader for outer wrappers
// nesting this one; a no-op when the inner structure is not shared-read
// safe.
func (d *Dict) BeginSharedReads() {
	if d.sr != nil {
		d.sr.BeginSharedReads()
	}
}

// EndSharedReads closes the bracket opened by BeginSharedReads.
func (d *Dict) EndSharedReads() {
	if d.sr != nil {
		d.sr.EndSharedReads()
	}
}

// Len implements core.Dictionary on the read side of the lock, like
// the other wrappers' aggregation accessors: inner Len is
// mutation-free, so a monitoring poll never drains concurrent shared
// searches.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.inner.Len()
}

// Stats forwards to the inner structure's Statser on the read side of
// the lock (Stats accessors are mutation-free; shared-read-safe inners
// load their search counter atomically); zero Stats without one.
func (d *Dict) Stats() core.Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if st, ok := d.inner.(core.Statser); ok {
		return st.Stats()
	}
	return core.Stats{}
}

// Transfers forwards to the inner structure's TransferCounter on the
// read side of the lock (only internally-synchronized store owners
// implement it); zero without one.
func (d *Dict) Transfers() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if tc, ok := d.inner.(core.TransferCounter); ok {
		return tc.Transfers()
	}
	return 0
}

// Checkpoint captures the current state into the checkpoint snapshot
// and empties the log. Reopening afterwards restores from the snapshot
// alone.
func (d *Dict) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpointLocked()
}

func (d *Dict) checkpointLocked() error {
	if err := WriteCheckpointFile(d.ckptPath, d.writeSnapshot); err != nil {
		return err
	}
	// From here the checkpoint is the durable state; emptying the log is
	// safe even if we crash first (replay over the checkpoint is
	// idempotent).
	if err := d.log.Reset(); err != nil {
		return fmt.Errorf("durable: checkpoint: %w", err)
	}
	d.sinceCkpt = 0
	return nil
}

// WriteCheckpointFile writes one checkpoint snapshot crash-safely:
// temp sibling, fsync, rename, parent-directory fsync. The directory
// sync matters for ordering: checkpointLocked truncates (and fsyncs)
// the log right after this returns, so the rename must be on stable
// storage first — otherwise a power loss could surface the durable
// truncation together with the OLD checkpoint, losing acknowledged
// records. The registry also uses this helper to seed a fresh durable
// dictionary's checkpoint (so the inner configuration is always
// recoverable from disk, even before the first real checkpoint), and
// the facade's SaveFile reuses it as its atomic file writer.
func WriteCheckpointFile(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: writing %s: %w", path, err)
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err == nil {
		err = syncDir(filepath.Dir(path))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: writing %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a completed rename inside it is
// durable before later writes depend on it.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Sync fsyncs the log, upgrading the acknowledgement contract from
// process-crash-safe to power-loss-safe for everything appended so far.
func (d *Dict) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Sync()
}

// Err reports the first retained failure (a failed automatic
// checkpoint, or the log error that caused a panic), nil if none.
func (d *Dict) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.err
}

// Records reports how many records the log currently holds — the replay
// cost of reopening without a fresh checkpoint.
func (d *Dict) Records() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Records()
}

// Close closes the log file (without a final checkpoint or sync; call
// those first if wanted). The dictionary must not be used afterwards.
func (d *Dict) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.log.Close()
}

// Caps implements core.CapsProber: what the wrapper genuinely forwards
// to (or provides on top of) the inner structure. WAL is the wrapper's
// own capability; Snapshot is deliberately withheld (the persistence
// story IS the log plus checkpoints — see the type comment); Batch is
// native regardless of the inner (one log record per batch is the
// wrapper's own fast path); Delete and Stats forward.
func (d *Dict) Caps() core.Caps {
	c := core.CapsOf(d.inner)
	c.Snapshot = false
	c.WAL = true
	c.Batch = true
	c.SharedReads = d.sr != nil
	return c
}

// Unwrap returns the inner dictionary for read-only inspection.
// Mutating it directly bypasses the log and forfeits recovery.
func (d *Dict) Unwrap() core.Dictionary { return d.inner }
