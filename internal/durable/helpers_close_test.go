package durable

import "testing"

// mustClose closes c and fails the test on error: in durability tests
// a dropped Close error can hide a failed flush (and durerr flags it).
func mustClose(t testing.TB, c interface{ Close() error }) {
	t.Helper()
	if err := c.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
}
