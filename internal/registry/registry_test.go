package registry

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dam"
)

func TestBuildSkipsNilOptions(t *testing.T) {
	d, err := Build("cola", nil, WithSpace(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	d.Insert(1, 1)
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestConfigGetterDefaults(t *testing.T) {
	cfg, err := apply([]Option{WithGrowthFactor(6)})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.IsSet(OptGrowth) || cfg.GrowthFactor(2) != 6 {
		t.Errorf("set option not visible: IsSet=%v growth=%d", cfg.IsSet(OptGrowth), cfg.GrowthFactor(2))
	}
	if cfg.IsSet(OptFanout) || cfg.Fanout(8) != 8 {
		t.Errorf("unset option leaked: IsSet=%v fanout=%d", cfg.IsSet(OptFanout), cfg.Fanout(8))
	}
	if cfg.Epsilon(0.5) != 0.5 || cfg.BlockBytes(dam.DefaultBlockBytes) != dam.DefaultBlockBytes {
		t.Error("unset getters ignore their defaults")
	}
}

func TestAcceptsAndInfo(t *testing.T) {
	if !Accepts("gcola", OptGrowth) || Accepts("gcola", OptFanout) {
		t.Error("gcola option matrix wrong")
	}
	if Accepts("missing-kind", OptSpace) {
		t.Error("Accepts true for unregistered kind")
	}
	info, ok := Info("btree")
	if !ok || info.Doc == "" || len(info.Options) == 0 {
		t.Errorf("Info(btree) = (%+v, %v)", info, ok)
	}
	if _, ok := Info("missing-kind"); ok {
		t.Error("Info found an unregistered kind")
	}
}

func TestRegisterValidation(t *testing.T) {
	mk := func(*Config) (core.Dictionary, error) { return nil, nil }
	if err := Register("", KindInfo{New: mk}); err == nil {
		t.Error("empty name accepted")
	}
	if err := Register("x-nil-new", KindInfo{}); err == nil {
		t.Error("nil New accepted")
	}
	if err := Register("cola", KindInfo{New: mk}); err == nil ||
		!strings.Contains(err.Error(), "already registered") {
		t.Errorf("duplicate registration: %v", err)
	}
}

// TestNoStutteredPrefixOnInnerErrors pins the error shape when a
// wrapper kind propagates an inner Build failure: one "repro:" prefix,
// not two.
func TestNoStutteredPrefixOnInnerErrors(t *testing.T) {
	_, err := Build("sharded", WithInner("nope"))
	if err == nil {
		t.Fatal("expected error")
	}
	if strings.Count(err.Error(), "repro: ") != 1 {
		t.Fatalf("stuttered prefix: %q", err)
	}
}

func TestBuilderNilDictionaryIsError(t *testing.T) {
	// Tolerate re-registration: the registry is package-global and this
	// test may run more than once per process (go test -count=2).
	if err := Register("x-nil-result", KindInfo{
		Doc: "builder that returns nil",
		New: func(*Config) (core.Dictionary, error) { return nil, nil },
	}); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatal(err)
	}
	if _, err := Build("x-nil-result"); err == nil ||
		!strings.Contains(err.Error(), "nil dictionary") {
		t.Errorf("nil-returning builder: %v", err)
	}
}
