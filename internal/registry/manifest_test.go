package registry

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cola"
	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/snap"
)

// applyT folds options for tests, failing the test on error.
func applyT(t *testing.T, opts ...Option) *Config {
	t.Helper()
	cfg, err := apply(opts)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestSpecRoundTrip: Config -> Spec -> options -> Config must preserve
// every serializable option, including a nested inner spec.
func TestSpecRoundTrip(t *testing.T) {
	cfg := applyT(t,
		WithShards(8),
		WithBatchSize(512),
		WithShardDAM(4096, 1<<20),
		WithInner("gcola", WithGrowthFactor(4), WithPointerDensity(0.25)),
	)
	spec, err := specFromConfig("sharded", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "sharded" || len(spec.Opts) != 4 {
		t.Fatalf("spec = %+v", spec)
	}
	opts, err := optionsFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	back := applyT(t, opts...)
	if back.Shards(0) != 8 || back.BatchSize(0) != 512 {
		t.Fatalf("shards/batch lost: %d/%d", back.Shards(0), back.BatchSize(0))
	}
	if b, c, ok := back.ShardDAM(); !ok || b != 4096 || c != 1<<20 {
		t.Fatalf("shard DAM lost: %d/%d/%v", b, c, ok)
	}
	ik, iopts, ok := back.Inner()
	if !ok || ik != "gcola" {
		t.Fatalf("inner lost: %q/%v", ik, ok)
	}
	icfg := applyT(t, iopts...)
	if icfg.GrowthFactor(0) != 4 || icfg.PointerDensity(0) != 0.25 {
		t.Fatalf("inner opts lost: g=%d p=%g", icfg.GrowthFactor(0), icfg.PointerDensity(0))
	}
}

func TestSpecSkipsSpaceRejectsFactory(t *testing.T) {
	cfg := applyT(t, WithSpace(nil), WithGrowthFactor(3))
	spec, err := specFromConfig("gcola", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range spec.Opts {
		if o.Name == OptSpace {
			t.Fatal("spec recorded WithSpace")
		}
	}
	fcfg := applyT(t, WithFactory(func(int, *dam.Space) core.Dictionary { return cola.NewCOLA(nil) }))
	if _, err := specFromConfig("sharded", fcfg); err == nil {
		t.Fatal("spec accepted a factory")
	}
}

func TestOptionsFromSpecRejectsUnknownName(t *testing.T) {
	spec := &snap.Spec{Kind: "cola", Opts: []snap.Opt{snap.Int("WithFromTheFuture", 1)}}
	if _, err := optionsFromSpec(spec); err == nil || !strings.Contains(err.Error(), "WithFromTheFuture") {
		t.Fatalf("got %v", err)
	}
}

// TestWALPathAndCheckpointOptions pins the new options' validation.
func TestWALPathAndCheckpointOptions(t *testing.T) {
	if err := WithWALPath("")(newConfig()); err == nil {
		t.Fatal("empty WAL path accepted")
	}
	if err := WithCheckpointEvery(-1)(newConfig()); err == nil {
		t.Fatal("negative checkpoint period accepted")
	}
	cfg := applyT(t, WithWALPath("a.wal"), WithCheckpointEvery(0))
	if p, ok := cfg.WALPath(); !ok || p != "a.wal" {
		t.Fatalf("WALPath = %q/%v", p, ok)
	}
	if cfg.CheckpointEvery(99) != 0 {
		t.Fatal("explicit zero period not honoured")
	}
}

// TestKindCaps pins the capability matrix the listing tools print and
// the capability-aware paths consult, and checks the snapshot flag is
// honest: every kind claiming it must build a core.Snapshotter.
func TestKindCaps(t *testing.T) {
	want := map[string]Caps{
		"cola":         {Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
		"gcola":        {Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
		"deamortized":  {Snapshot: true, Stats: true},
		"shuttle":      {Snapshot: true, Stats: true}, // shared reads conditional (no DAM only): flag stays off
		"la":           {Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
		"btree":        {Snapshot: true, Delete: true, Stats: true, SharedReads: true},
		"brt":          {Snapshot: true, Delete: true, Stats: true, SharedReads: true},
		"swbst":        {Snapshot: true, Delete: true, SharedReads: true},
		"sharded":      {Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
		"synchronized": {Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
		"durable":      {WAL: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
	}
	for kind, caps := range want {
		info, ok := Info(kind)
		if !ok {
			t.Fatalf("kind %q not registered", kind)
		}
		if info.Caps != caps {
			t.Fatalf("%s caps = %+v, want %+v", kind, info.Caps, caps)
		}
	}
	for _, kind := range Kinds() {
		info, _ := Info(kind)
		if !info.Caps.Snapshot || kind == "durable" {
			continue
		}
		opts := []Option(nil)
		d, err := Build(kind, opts...)
		if err != nil {
			t.Fatalf("Build(%q): %v", kind, err)
		}
		if _, ok := d.(core.Snapshotter); !ok {
			t.Fatalf("kind %q claims Snapshot but builds %T (no Snapshotter)", kind, d)
		}
	}
}

// TestSharedReadsCapsHonest keeps the kind-level capability flags and
// the instance-level core.CapsOf probe from disagreeing, for every
// capability (the capability-probe asymmetry fix, extended from
// shared-reads alone to the full sheet): a default build of every kind
// must probe exactly its registered flags, except that a kind whose
// shared-read safety is conditional (shuttle family: safe only without
// a space) leaves the flag unset while its default — unaccounted —
// build probes true; and the wrapper kinds' probes must follow the
// concrete nested inner, not their static flags.
func TestSharedReadsCapsHonest(t *testing.T) {
	conditional := map[string]bool{"shuttle": true, "cobtree": true}
	for _, kind := range Kinds() {
		info, _ := Info(kind)
		var opts []Option
		if info.Caps.WAL {
			opts = append(opts, WithWALPath(filepath.Join(t.TempDir(), kind+".wal")))
		}
		d, err := Build(kind, opts...)
		if err != nil {
			t.Fatalf("Build(%q): %v", kind, err)
		}
		want := info.Caps
		if conditional[kind] {
			want.SharedReads = true
		}
		if got := core.CapsOf(d); got != want {
			t.Errorf("kind %q: default build probes [%v], registered flags say [%v]", kind, got, want)
		}
	}

	// Wrapper probes follow the nested inner, in both directions and
	// through both concurrency wrappers plus the durable one. Batch is
	// always native on a wrapper (per-shard grouping, one-lock batches,
	// one-WAL-record batches); everything else is honest forwarding.
	for _, tc := range []struct {
		kind string
		opts []Option
		want Caps
	}{
		{"sharded", []Option{WithInner("deamortized")},
			Caps{Snapshot: true, Batch: true, Stats: true}},
		{"sharded", []Option{WithInner("btree")},
			Caps{Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true}},
		{"synchronized", []Option{WithInner("deamortized-la")},
			Caps{Snapshot: true, Batch: true, Stats: true}},
		{"synchronized", []Option{WithInner("swbst")},
			Caps{Snapshot: true, Delete: true, Batch: true, SharedReads: true}},
		{"synchronized", []Option{WithInner("sharded", WithInner("btree"))},
			Caps{Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true}},
		{"synchronized", []Option{WithInner("la")},
			Caps{Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true}},
		{"sharded", []Option{WithInner("synchronized", WithInner("deamortized"))},
			Caps{Snapshot: true, Batch: true, Stats: true}},
		{"durable", []Option{WithWALPath(filepath.Join(t.TempDir(), "h1.wal")), WithInner("deamortized")},
			Caps{WAL: true, Batch: true, Stats: true}},
		{"durable", []Option{WithWALPath(filepath.Join(t.TempDir(), "h2.wal")), WithInner("gcola")},
			Caps{WAL: true, Delete: true, Batch: true, Stats: true, SharedReads: true}},
		{"synchronized", []Option{WithInner("durable",
			WithWALPath(filepath.Join(t.TempDir(), "h3.wal")), WithInner("gcola"))},
			Caps{WAL: true, Delete: true, Batch: true, Stats: true, SharedReads: true}},
	} {
		d, err := Build(tc.kind, tc.opts...)
		if err != nil {
			t.Fatalf("Build(%q nested): %v", tc.kind, err)
		}
		if got := core.CapsOf(d); got != tc.want {
			t.Errorf("%s nested probe = [%v], want [%v] (case %+v)", tc.kind, got, tc.want, tc.opts)
		}
		if got, want := core.SharedReads(d), tc.want.SharedReads; got != want {
			t.Errorf("%s nested SharedReads probe = %v, want %v", tc.kind, got, want)
		}
	}
}

func TestCapsString(t *testing.T) {
	if s := (Caps{}).String(); s != "none" {
		t.Fatalf("empty caps = %q", s)
	}
	full := Caps{Snapshot: true, WAL: true, Delete: true, Batch: true, Stats: true, SharedReads: true}
	if s := full.String(); s != "snapshot, wal, delete, batch, stats, shared-reads" {
		t.Fatalf("full caps = %q", s)
	}
}

// TestSaveAutoRecordsShardCount: saving a sharded map without
// WithShards must record the live partition count, so the loaded map
// routes keys identically on any machine.
func TestSaveAutoRecordsShardCount(t *testing.T) {
	d, err := Build("sharded") // default shard count follows GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		d.Insert(i*2654435761, i)
	}
	var buf bytes.Buffer
	if err := Save(&buf, "sharded", d); err != nil {
		t.Fatalf("Save: %v", err)
	}
	spec, _, err := snap.Decode(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range spec.Opts {
		if o.Name == OptShards {
			found = true
		}
	}
	if !found {
		t.Fatal("shard count not recorded in the header")
	}
	d2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if d2.Len() != 500 {
		t.Fatalf("restored Len = %d", d2.Len())
	}
}
