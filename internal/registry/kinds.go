package registry

// Built-in kind registrations: every dictionary in the repository,
// constructed from the unified Config with per-kind validation. The
// option matrix here is the authoritative one (DESIGN.md's table is
// generated from the same lists).

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strings"

	"repro/internal/brt"
	"repro/internal/btree"
	"repro/internal/cola"
	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/durable"
	"repro/internal/la"
	"repro/internal/shard"
	"repro/internal/shuttle"
	"repro/internal/snap"
	"repro/internal/swbst"
	"repro/internal/syncdict"
	"repro/internal/wal"
)

func init() {
	mustRegister("cola", KindInfo{
		Doc:     "cache-oblivious lookahead array (g = 2, paper's pointer density): the headline write-optimized structure",
		Options: []string{OptSpace},
		Caps:    Caps{Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
		New: func(c *Config) (core.Dictionary, error) {
			return cola.NewCOLA(c.Space()), nil
		},
	})
	mustRegister("basic-cola", KindInfo{
		Doc:     "pointerless basic COLA: O(log^2 N) searches, the paper's simplest variant",
		Options: []string{OptSpace},
		Caps:    Caps{Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
		New: func(c *Config) (core.Dictionary, error) {
			return cola.NewBasic(c.Space()), nil
		},
	})
	mustRegister("gcola", KindInfo{
		Doc:     "growth-factor-g lookahead array with tunable pointer density (the paper's g-COLA); WithSpillDir runs its cold levels out of core",
		Options: []string{OptSpace, OptGrowth, OptPointerDensity, OptSpillDir, OptSpillDepth, OptSpillCacheBytes},
		Caps:    Caps{Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
		New: func(c *Config) (core.Dictionary, error) {
			opt := cola.Options{
				Growth:         c.GrowthFactor(2),
				PointerDensity: c.PointerDensity(cola.DefaultPointerDensity),
				Space:          c.Space(),
			}
			if dir, ok := c.SpillDir(); ok {
				opt.SpillDir = dir
				opt.SpillDepth = c.SpillDepth(0)
				opt.SpillCacheBytes = c.SpillCacheBytes(0)
			} else if c.IsSet(OptSpillDepth) || c.IsSet(OptSpillCacheBytes) {
				return nil, fmt.Errorf("WithSpillDepth/WithSpillCacheBytes require WithSpillDir")
			}
			d, err := cola.Open(opt)
			if err != nil {
				return nil, err
			}
			return d, nil
		},
	})
	mustRegister("deamortized", KindInfo{
		Doc:     "deamortized basic COLA (Theorem 22): O(log N) worst-case moves per insert",
		Options: []string{OptSpace},
		Caps:    Caps{Snapshot: true, Stats: true},
		New: func(c *Config) (core.Dictionary, error) {
			return cola.NewDeamortized(c.Space()), nil
		},
	})
	mustRegister("deamortized-la", KindInfo{
		Doc:     "fully deamortized COLA with lookahead pointers (Theorem 24)",
		Options: []string{OptSpace},
		Caps:    Caps{Snapshot: true, Stats: true},
		New: func(c *Config) (core.Dictionary, error) {
			return cola.NewDeamortizedLookahead(c.Space()), nil
		},
	})
	mustRegister("la", KindInfo{
		Doc:     "cache-aware lookahead array with growth B^epsilon: the Be-tree insert/search tradeoff curve",
		Options: []string{OptSpace, OptEpsilon, OptBlockBytes},
		Caps:    Caps{Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true}, // the embedded GCOLA's capabilities, promoted
		New: func(c *Config) (core.Dictionary, error) {
			blockElems := int(c.BlockBytes(dam.DefaultBlockBytes) / core.ElementBytes)
			if blockElems < 2 {
				return nil, fmt.Errorf("block size %d holds fewer than 2 elements", c.BlockBytes(dam.DefaultBlockBytes))
			}
			return la.New(la.Options{
				BlockElems: blockElems,
				Epsilon:    c.Epsilon(0.5),
				Space:      c.Space(),
			}), nil
		},
	})
	mustRegister("shuttle", KindInfo{
		Doc:     "shuttle tree (Section 2): SWBST skeleton with geometric buffers in a van Emde Boas layout",
		Options: []string{OptSpace, OptFanout, OptRelayoutEvery},
		Caps:    Caps{Snapshot: true, Stats: true},
		New: func(c *Config) (core.Dictionary, error) {
			fanout := c.Fanout(8)
			if fanout < 4 {
				return nil, fmt.Errorf("shuttle fanout must be at least 4, got %d", fanout)
			}
			return shuttle.New(shuttle.Options{
				Fanout:        fanout,
				Space:         c.Space(),
				RelayoutEvery: c.RelayoutEvery(0),
			}), nil
		},
	})
	mustRegister("cobtree", KindInfo{
		Doc:     "cache-oblivious B-tree baseline: the shuttle machinery with buffering disabled",
		Options: []string{OptSpace, OptFanout},
		Caps:    Caps{Snapshot: true, Stats: true},
		New: func(c *Config) (core.Dictionary, error) {
			fanout := c.Fanout(8)
			if fanout < 4 {
				return nil, fmt.Errorf("cobtree fanout must be at least 4, got %d", fanout)
			}
			return shuttle.NewCOBTree(fanout, c.Space()), nil
		},
	})
	mustRegister("btree", KindInfo{
		Doc:     "B+-tree baseline of the paper's Section 4 experiments (one block per node)",
		Options: []string{OptSpace, OptBlockBytes, OptLeafCapacity, OptFanout},
		Caps:    Caps{Snapshot: true, Delete: true, Stats: true, SharedReads: true},
		New: func(c *Config) (core.Dictionary, error) {
			opt := btree.Options{
				BlockBytes:   c.BlockBytes(0),
				LeafCapacity: c.LeafCapacity(0),
				Fanout:       c.Fanout(0),
				Space:        c.Space(),
			}
			if c.IsSet(OptFanout) && opt.Fanout < 3 {
				return nil, fmt.Errorf("btree fanout must be at least 3, got %d", opt.Fanout)
			}
			return btree.New(opt), nil
		},
	})
	mustRegister("brt", KindInfo{
		Doc:     "buffered repository tree: the cache-aware write-optimized comparator",
		Options: []string{OptSpace, OptBlockBytes},
		Caps:    Caps{Snapshot: true, Delete: true, Stats: true, SharedReads: true},
		New: func(c *Config) (core.Dictionary, error) {
			blockBytes := c.BlockBytes(dam.DefaultBlockBytes)
			if blockBytes/core.ElementBytes < 4 {
				return nil, fmt.Errorf("brt block size must hold at least 4 elements, got %d bytes", blockBytes)
			}
			return brt.New(brt.Options{BlockBytes: blockBytes, Space: c.Space()}), nil
		},
	})
	mustRegister("swbst", KindInfo{
		Doc:     "strongly weight-balanced search tree: the shuttle tree's skeleton, usable standalone (no DAM accounting)",
		Options: []string{OptFanout},
		Caps:    Caps{Snapshot: true, Delete: true, SharedReads: true},
		New: func(c *Config) (core.Dictionary, error) {
			fanout := c.Fanout(8)
			if fanout < 4 {
				return nil, fmt.Errorf("swbst fanout must be at least 4, got %d", fanout)
			}
			return swbst.New(swbst.Options{Fanout: fanout}), nil
		},
	})
	mustRegister("sharded", KindInfo{
		Doc:     "hash-partitioned concurrent map: per-shard locks around any inner kind (WithInner) or factory",
		Options: []string{OptShards, OptBatchSize, OptShardDAM, OptInner, OptFactory},
		Caps:    Caps{Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
		New:     buildSharded,
	})
	mustRegister("synchronized", KindInfo{
		Doc:     "coarse-grained RWMutex wrapper around any inner kind, forwarding its capabilities",
		Options: []string{OptSpace, OptInner},
		Caps:    Caps{Snapshot: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
		New:     buildSynchronized,
	})
	mustRegister("durable", KindInfo{
		Doc:     "WAL-backed durability wrapper: logs every mutation before applying it to a snapshot-capable inner kind, checkpoints to a snapshot, recovers on reopen",
		Options: []string{OptInner, OptWALPath, OptCheckpointEvery},
		Caps:    Caps{WAL: true, Delete: true, Batch: true, Stats: true, SharedReads: true},
		New:     buildDurable,
	})
}

// innerConfig scratch-applies a wrapper kind's inner options so wrapper
// builders can inspect what the caller set (e.g. reject an inner
// WithSpace on a sharded map).
func innerConfig(opts []Option) (*Config, error) {
	cfg, err := apply(opts)
	if err != nil {
		return nil, fmt.Errorf("inner options: %w", err)
	}
	return cfg, nil
}

func buildSharded(c *Config) (core.Dictionary, error) {
	innerKind, innerOpts, hasInner := c.Inner()
	factory := c.Factory()
	if hasInner && factory != nil {
		return nil, fmt.Errorf("WithInner and WithDictionary are mutually exclusive")
	}
	if !hasInner {
		innerKind = "cola"
	}

	var sopts []shard.Option
	if n := c.Shards(0); c.IsSet(OptShards) {
		sopts = append(sopts, shard.WithShards(n))
	}
	if k := c.BatchSize(0); c.IsSet(OptBatchSize) {
		sopts = append(sopts, shard.WithBatchSize(k))
	}
	if blockBytes, cacheBytes, ok := c.ShardDAM(); ok {
		sopts = append(sopts, shard.WithDAM(blockBytes, cacheBytes))
	}

	if factory != nil {
		sopts = append(sopts, shard.WithDictionary(factory))
		return shard.New(sopts...), nil
	}

	// Registry-built shards: validate the inner spec once up front so a
	// bad inner kind or option fails with an error here instead of a
	// panic inside the per-shard factory.
	icfg, err := innerConfig(innerOpts)
	if err != nil {
		return nil, err
	}
	if icfg.IsSet(OptSpace) {
		return nil, fmt.Errorf("inner kind %q: each shard receives its private space; use WithShardDAM instead of an inner WithSpace", innerKind)
	}
	if _, err := Build(innerKind, innerOpts...); err != nil {
		return nil, err
	}
	innerTakesSpace := Accepts(innerKind, OptSpace)
	if _, _, damSet := c.ShardDAM(); damSet && !innerTakesSpace {
		return nil, fmt.Errorf("WithShardDAM has no effect: inner kind %q does not accept WithSpace", innerKind)
	}
	sopts = append(sopts, shard.WithDictionary(func(_ int, sp *dam.Space) core.Dictionary {
		opts := innerOpts
		if innerTakesSpace {
			opts = append(append([]Option(nil), innerOpts...), WithSpace(sp))
		}
		d, err := Build(innerKind, opts...)
		if err != nil {
			// Unreachable: the same spec just built during validation.
			panic("repro: sharded inner build failed after validation: " + err.Error())
		}
		return d
	}))
	return shard.New(sopts...), nil
}

// walReplayHandler folds recovered log records into the freshly built
// (or checkpoint-restored) inner dictionary.
type walReplayHandler struct {
	d core.Dictionary
	// badDeletes records that the log holds delete records the inner
	// structure cannot apply — a configuration mismatch the builder
	// turns into an error rather than silently recovering partial state.
	badDeletes bool
}

func (h *walReplayHandler) ApplyInsert(elems []core.Element) { core.InsertBatch(h.d, elems) }

func (h *walReplayHandler) ApplyDelete(keys []uint64) {
	del, ok := h.d.(core.Deleter)
	if !ok {
		h.badDeletes = true
		return
	}
	for _, k := range keys {
		del.Delete(k)
	}
}

// buildDurable opens (or creates) a durable dictionary at the WAL path:
// restore the checkpoint if one exists — its self-describing header
// says what to build, overriding a missing WithInner — then replay the
// log tail, then hand the recovered structure to the durable wrapper.
// This is the capability-aware corner of Build: the inner kind must be
// snapshot-capable, or checkpoints (and checkpoint-based reopens) would
// be impossible.
func buildDurable(c *Config) (core.Dictionary, error) {
	path, ok := c.WALPath()
	if !ok {
		return nil, fmt.Errorf("durable requires WithWALPath")
	}
	innerKind, innerOpts, hasInner := c.Inner()
	if !hasInner {
		innerKind = "cola"
	}
	icfg, err := innerConfig(innerOpts)
	if err != nil {
		return nil, err
	}
	ie, known := lookup(innerKind)
	if !known {
		return nil, fmt.Errorf("unknown inner kind %q (registered kinds: %s)", innerKind, strings.Join(Kinds(), ", "))
	}
	if !ie.info.Caps.Snapshot {
		return nil, fmt.Errorf("inner kind %q cannot snapshot itself (capabilities: %s); durable needs a snapshot-capable inner for checkpoints", innerKind, ie.info.Caps)
	}
	// The runtime-wiring check walks the whole inner option tree: a
	// WithSpace (or spill option) one wrapper deeper (e.g.
	// WithInner("synchronized", WithInner("cola", WithSpace(sp)))) is
	// just as unpersistable — specFromConfig drops those options from the
	// recorded header, so a reopen would silently rebuild without them
	// instead of failing loudly here.
	if name, serr := innerTreeSetsRuntime(icfg); serr != nil {
		return nil, serr
	} else if name != "" {
		return nil, fmt.Errorf("inner kind %q: %s configures process-local runtime wiring that cannot be persisted across reopens; durable inners run without it", innerKind, name)
	}

	ckptPath := path + ".ckpt"
	var inner core.Dictionary
	var spec *snap.Spec
	if f, oerr := os.Open(ckptPath); oerr == nil {
		// The checkpoint's recorded spec is authoritative on reopen: a
		// WithInner that contradicts it — a different kind OR a different
		// value for any explicitly-set inner option — is a configuration
		// error, not a rebuild. Options the caller leaves unset follow the
		// recorded configuration silently. Validated against the header
		// alone, BEFORE the payload restore: the header is tens of bytes,
		// the payload can be the whole structure, and a conflicting reopen
		// must not pay for (then discard) a full restore.
		if hasInner {
			if err := checkpointHeaderConflict(f, ckptPath, innerKind, icfg); err != nil {
				f.Close()
				return nil, err
			}
		}
		inner, spec, err = loadContainer(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("checkpoint %s: %w", ckptPath, err)
		}
	} else if !errors.Is(oerr, fs.ErrNotExist) {
		return nil, fmt.Errorf("checkpoint %s: %w", ckptPath, oerr)
	} else {
		if inner, err = Build(innerKind, innerOpts...); err != nil {
			return nil, err
		}
		if spec, err = specFromConfig(innerKind, icfg); err != nil {
			return nil, err
		}
	}
	sn, ok := inner.(core.Snapshotter)
	if !ok {
		// Reachable only through a factory-built or externally
		// registered inner that advertises Snapshot without implementing
		// it.
		return nil, fmt.Errorf("inner kind %q built %T, which does not implement Snapshotter", innerKind, inner)
	}
	writeSnapshot := func(out io.Writer) error {
		_, err := snap.Encode(out, spec, sn)
		return err
	}
	if _, serr := os.Stat(ckptPath); errors.Is(serr, fs.ErrNotExist) {
		// Seed the checkpoint before any record exists (the inner is
		// still in its pre-replay state, so log replay over it stays
		// correct): the recorded spec is then always on disk, and a
		// later Open without WithInner rebuilds the right structure even
		// if no periodic checkpoint ever ran.
		if err := durable.WriteCheckpointFile(ckptPath, writeSnapshot); err != nil {
			return nil, err
		}
	}

	h := &walReplayHandler{d: inner}
	w, _, err := wal.Open(path, h)
	if err != nil {
		return nil, err
	}
	if h.badDeletes {
		w.Close()
		return nil, fmt.Errorf("write-ahead log %s contains delete records but inner kind %q does not support deletion", path, innerKind)
	}
	return durable.New(durable.Options{
		Inner:           inner,
		Log:             w,
		CheckpointPath:  ckptPath,
		CheckpointEvery: c.CheckpointEvery(0),
		WriteSnapshot:   writeSnapshot,
	}), nil
}

// runtimeWiringOpts configure process-local runtime wiring (DAM
// accounting spaces, out-of-core spill stores). They are dropped from
// recorded snapshot specs, so a durable inner must not carry them.
var runtimeWiringOpts = []string{OptSpace, OptSpillDir, OptSpillDepth, OptSpillCacheBytes}

// innerTreeSetsRuntime returns the name of the first runtime-wiring
// option set anywhere in an inner option tree, or "" if none is.
func innerTreeSetsRuntime(c *Config) (string, error) {
	for _, name := range runtimeWiringOpts {
		if c.IsSet(name) {
			return name, nil
		}
	}
	if _, iopts, ok := c.Inner(); ok {
		icfg, err := innerConfig(iopts)
		if err != nil {
			return "", err
		}
		return innerTreeSetsRuntime(icfg)
	}
	return "", nil
}

// checkpointHeaderConflict reads only the container header from f,
// rejects a requested inner kind or explicitly-set inner options the
// recorded spec cannot honor, and rewinds f for the full restore.
func checkpointHeaderConflict(f *os.File, ckptPath, innerKind string, icfg *Config) error {
	hspec, err := snap.DecodeHeader(f)
	if err != nil {
		return fmt.Errorf("checkpoint %s: %w", ckptPath, err)
	}
	if hspec.Kind != innerKind {
		return fmt.Errorf("checkpoint %s holds a %q but WithInner requested %q; remove the checkpoint to rebuild", ckptPath, hspec.Kind, innerKind)
	}
	reqSpec, err := requestedSpec(innerKind, icfg)
	if err != nil {
		return err
	}
	if desc, conflict := specConflict(reqSpec, hspec); conflict {
		return fmt.Errorf("checkpoint %s conflicts with the requested inner options: %s; omit the option to reopen with the recorded configuration, or remove the checkpoint to rebuild", ckptPath, desc)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("checkpoint %s: %w", ckptPath, err)
	}
	return nil
}

func buildSynchronized(c *Config) (core.Dictionary, error) {
	innerKind, innerOpts, hasInner := c.Inner()
	if !hasInner {
		innerKind = "cola"
	}
	icfg, err := innerConfig(innerOpts)
	if err != nil {
		return nil, err
	}
	if _, known := Info(innerKind); !known {
		return nil, fmt.Errorf("unknown inner kind %q (registered kinds: %s)", innerKind, strings.Join(Kinds(), ", "))
	}
	opts := innerOpts
	if c.IsSet(OptSpace) {
		if icfg.IsSet(OptSpace) {
			return nil, fmt.Errorf("inner kind %q: pass the space either on synchronized or inside WithInner, not both", innerKind)
		}
		if !Accepts(innerKind, OptSpace) {
			return nil, fmt.Errorf("inner kind %q does not accept WithSpace", innerKind)
		}
		opts = append(append([]Option(nil), innerOpts...), WithSpace(c.Space()))
	}
	d, err := Build(innerKind, opts...)
	if err != nil {
		return nil, err
	}
	return syncdict.New(d), nil
}
