package registry

// Built-in kind registrations: every dictionary in the repository,
// constructed from the unified Config with per-kind validation. The
// option matrix here is the authoritative one (DESIGN.md's table is
// generated from the same lists).

import (
	"fmt"
	"strings"

	"repro/internal/brt"
	"repro/internal/btree"
	"repro/internal/cola"
	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/la"
	"repro/internal/shard"
	"repro/internal/shuttle"
	"repro/internal/swbst"
	"repro/internal/syncdict"
)

func init() {
	mustRegister("cola", KindInfo{
		Doc:     "cache-oblivious lookahead array (g = 2, paper's pointer density): the headline write-optimized structure",
		Options: []string{OptSpace},
		New: func(c *Config) (core.Dictionary, error) {
			return cola.NewCOLA(c.Space()), nil
		},
	})
	mustRegister("basic-cola", KindInfo{
		Doc:     "pointerless basic COLA: O(log^2 N) searches, the paper's simplest variant",
		Options: []string{OptSpace},
		New: func(c *Config) (core.Dictionary, error) {
			return cola.NewBasic(c.Space()), nil
		},
	})
	mustRegister("gcola", KindInfo{
		Doc:     "growth-factor-g lookahead array with tunable pointer density (the paper's g-COLA)",
		Options: []string{OptSpace, OptGrowth, OptPointerDensity},
		New: func(c *Config) (core.Dictionary, error) {
			return cola.New(cola.Options{
				Growth:         c.GrowthFactor(2),
				PointerDensity: c.PointerDensity(cola.DefaultPointerDensity),
				Space:          c.Space(),
			}), nil
		},
	})
	mustRegister("deamortized", KindInfo{
		Doc:     "deamortized basic COLA (Theorem 22): O(log N) worst-case moves per insert",
		Options: []string{OptSpace},
		New: func(c *Config) (core.Dictionary, error) {
			return cola.NewDeamortized(c.Space()), nil
		},
	})
	mustRegister("deamortized-la", KindInfo{
		Doc:     "fully deamortized COLA with lookahead pointers (Theorem 24)",
		Options: []string{OptSpace},
		New: func(c *Config) (core.Dictionary, error) {
			return cola.NewDeamortizedLookahead(c.Space()), nil
		},
	})
	mustRegister("la", KindInfo{
		Doc:     "cache-aware lookahead array with growth B^epsilon: the Be-tree insert/search tradeoff curve",
		Options: []string{OptSpace, OptEpsilon, OptBlockBytes},
		New: func(c *Config) (core.Dictionary, error) {
			blockElems := int(c.BlockBytes(dam.DefaultBlockBytes) / core.ElementBytes)
			if blockElems < 2 {
				return nil, fmt.Errorf("block size %d holds fewer than 2 elements", c.BlockBytes(dam.DefaultBlockBytes))
			}
			return la.New(la.Options{
				BlockElems: blockElems,
				Epsilon:    c.Epsilon(0.5),
				Space:      c.Space(),
			}), nil
		},
	})
	mustRegister("shuttle", KindInfo{
		Doc:     "shuttle tree (Section 2): SWBST skeleton with geometric buffers in a van Emde Boas layout",
		Options: []string{OptSpace, OptFanout, OptRelayoutEvery},
		New: func(c *Config) (core.Dictionary, error) {
			fanout := c.Fanout(8)
			if fanout < 4 {
				return nil, fmt.Errorf("shuttle fanout must be at least 4, got %d", fanout)
			}
			return shuttle.New(shuttle.Options{
				Fanout:        fanout,
				Space:         c.Space(),
				RelayoutEvery: c.RelayoutEvery(0),
			}), nil
		},
	})
	mustRegister("cobtree", KindInfo{
		Doc:     "cache-oblivious B-tree baseline: the shuttle machinery with buffering disabled",
		Options: []string{OptSpace, OptFanout},
		New: func(c *Config) (core.Dictionary, error) {
			fanout := c.Fanout(8)
			if fanout < 4 {
				return nil, fmt.Errorf("cobtree fanout must be at least 4, got %d", fanout)
			}
			return shuttle.NewCOBTree(fanout, c.Space()), nil
		},
	})
	mustRegister("btree", KindInfo{
		Doc:     "B+-tree baseline of the paper's Section 4 experiments (one block per node)",
		Options: []string{OptSpace, OptBlockBytes, OptLeafCapacity, OptFanout},
		New: func(c *Config) (core.Dictionary, error) {
			opt := btree.Options{
				BlockBytes:   c.BlockBytes(0),
				LeafCapacity: c.LeafCapacity(0),
				Fanout:       c.Fanout(0),
				Space:        c.Space(),
			}
			if c.IsSet(OptFanout) && opt.Fanout < 3 {
				return nil, fmt.Errorf("btree fanout must be at least 3, got %d", opt.Fanout)
			}
			return btree.New(opt), nil
		},
	})
	mustRegister("brt", KindInfo{
		Doc:     "buffered repository tree: the cache-aware write-optimized comparator",
		Options: []string{OptSpace, OptBlockBytes},
		New: func(c *Config) (core.Dictionary, error) {
			blockBytes := c.BlockBytes(dam.DefaultBlockBytes)
			if blockBytes/core.ElementBytes < 4 {
				return nil, fmt.Errorf("brt block size must hold at least 4 elements, got %d bytes", blockBytes)
			}
			return brt.New(brt.Options{BlockBytes: blockBytes, Space: c.Space()}), nil
		},
	})
	mustRegister("swbst", KindInfo{
		Doc:     "strongly weight-balanced search tree: the shuttle tree's skeleton, usable standalone (no DAM accounting)",
		Options: []string{OptFanout},
		New: func(c *Config) (core.Dictionary, error) {
			fanout := c.Fanout(8)
			if fanout < 4 {
				return nil, fmt.Errorf("swbst fanout must be at least 4, got %d", fanout)
			}
			return swbst.New(swbst.Options{Fanout: fanout}), nil
		},
	})
	mustRegister("sharded", KindInfo{
		Doc:     "hash-partitioned concurrent map: per-shard locks around any inner kind (WithInner) or factory",
		Options: []string{OptShards, OptBatchSize, OptShardDAM, OptInner, OptFactory},
		New:     buildSharded,
	})
	mustRegister("synchronized", KindInfo{
		Doc:     "coarse-grained RWMutex wrapper around any inner kind, forwarding its capabilities",
		Options: []string{OptSpace, OptInner},
		New:     buildSynchronized,
	})
}

// innerConfig scratch-applies a wrapper kind's inner options so wrapper
// builders can inspect what the caller set (e.g. reject an inner
// WithSpace on a sharded map).
func innerConfig(opts []Option) (*Config, error) {
	cfg, err := apply(opts)
	if err != nil {
		return nil, fmt.Errorf("inner options: %w", err)
	}
	return cfg, nil
}

func buildSharded(c *Config) (core.Dictionary, error) {
	innerKind, innerOpts, hasInner := c.Inner()
	factory := c.Factory()
	if hasInner && factory != nil {
		return nil, fmt.Errorf("WithInner and WithDictionary are mutually exclusive")
	}
	if !hasInner {
		innerKind = "cola"
	}

	var sopts []shard.Option
	if n := c.Shards(0); c.IsSet(OptShards) {
		sopts = append(sopts, shard.WithShards(n))
	}
	if k := c.BatchSize(0); c.IsSet(OptBatchSize) {
		sopts = append(sopts, shard.WithBatchSize(k))
	}
	if blockBytes, cacheBytes, ok := c.ShardDAM(); ok {
		sopts = append(sopts, shard.WithDAM(blockBytes, cacheBytes))
	}

	if factory != nil {
		sopts = append(sopts, shard.WithDictionary(factory))
		return shard.New(sopts...), nil
	}

	// Registry-built shards: validate the inner spec once up front so a
	// bad inner kind or option fails with an error here instead of a
	// panic inside the per-shard factory.
	icfg, err := innerConfig(innerOpts)
	if err != nil {
		return nil, err
	}
	if icfg.IsSet(OptSpace) {
		return nil, fmt.Errorf("inner kind %q: each shard receives its private space; use WithShardDAM instead of an inner WithSpace", innerKind)
	}
	if _, err := Build(innerKind, innerOpts...); err != nil {
		return nil, err
	}
	innerTakesSpace := Accepts(innerKind, OptSpace)
	if _, _, damSet := c.ShardDAM(); damSet && !innerTakesSpace {
		return nil, fmt.Errorf("WithShardDAM has no effect: inner kind %q does not accept WithSpace", innerKind)
	}
	sopts = append(sopts, shard.WithDictionary(func(_ int, sp *dam.Space) core.Dictionary {
		opts := innerOpts
		if innerTakesSpace {
			opts = append(append([]Option(nil), innerOpts...), WithSpace(sp))
		}
		d, err := Build(innerKind, opts...)
		if err != nil {
			// Unreachable: the same spec just built during validation.
			panic("repro: sharded inner build failed after validation: " + err.Error())
		}
		return d
	}))
	return shard.New(sopts...), nil
}

func buildSynchronized(c *Config) (core.Dictionary, error) {
	innerKind, innerOpts, hasInner := c.Inner()
	if !hasInner {
		innerKind = "cola"
	}
	icfg, err := innerConfig(innerOpts)
	if err != nil {
		return nil, err
	}
	if _, known := Info(innerKind); !known {
		return nil, fmt.Errorf("unknown inner kind %q (registered kinds: %s)", innerKind, strings.Join(Kinds(), ", "))
	}
	opts := innerOpts
	if c.IsSet(OptSpace) {
		if icfg.IsSet(OptSpace) {
			return nil, fmt.Errorf("inner kind %q: pass the space either on synchronized or inside WithInner, not both", innerKind)
		}
		if !Accepts(innerKind, OptSpace) {
			return nil, fmt.Errorf("inner kind %q does not accept WithSpace", innerKind)
		}
		opts = append(append([]Option(nil), innerOpts...), WithSpace(c.Space()))
	}
	d, err := Build(innerKind, opts...)
	if err != nil {
		return nil, err
	}
	return syncdict.New(d), nil
}
