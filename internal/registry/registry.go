// Package registry is the named-builder registry behind repro.Build:
// every dictionary kind in the repository registers itself here under a
// stable string name together with the set of options it accepts and a
// build function, so callers (the facade, the harness, streambench, the
// conformance suite, external users via repro.Register) can construct,
// enumerate, and validate any structure uniformly.
//
// Construction goes through one shared functional-option sheet (Config):
// an option that a kind does not accept is a descriptive error, not a
// silently ignored field — the failure mode of the v1 per-structure
// option structs this package replaces.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/shard"
)

// Canonical option names, used in KindInfo.Options and error messages.
// They match the facade's constructor names so an error message names
// the function the caller actually wrote.
const (
	OptSpace           = "WithSpace"
	OptGrowth          = "WithGrowthFactor"
	OptPointerDensity  = "WithPointerDensity"
	OptFanout          = "WithFanout"
	OptEpsilon         = "WithEpsilon"
	OptBlockBytes      = "WithBlockBytes"
	OptLeafCapacity    = "WithLeafCapacity"
	OptRelayoutEvery   = "WithRelayoutEvery"
	OptShards          = "WithShards"
	OptBatchSize       = "WithBatchSize"
	OptShardDAM        = "WithShardDAM"
	OptInner           = "WithInner"
	OptFactory         = "WithDictionary"
	OptWALPath         = "WithWALPath"
	OptCheckpointEvery = "WithCheckpointEvery"
	OptSpillDir        = "WithSpillDir"
	OptSpillDepth      = "WithSpillDepth"
	OptSpillCacheBytes = "WithSpillCacheBytes"
)

// Config is the unified option sheet every kind builds from. Options
// record both a value and the fact that they were set, so build
// functions can distinguish "caller chose the default" from "caller
// never spoke" and Build can reject options a kind does not accept.
type Config struct {
	set map[string]bool

	space          *dam.Space
	growth         int
	pointerDensity float64
	fanout         int
	epsilon        float64
	blockBytes     int64
	leafCapacity   int
	relayoutEvery  int
	shards         int
	batchSize      int
	shardBlock     int64
	shardCache     int64
	innerKind      string
	innerOpts      []Option
	factory        shard.Factory
	walPath        string
	ckptEvery      int
	spillDir       string
	spillDepth     int
	spillCache     int64
}

func newConfig() *Config { return &Config{set: make(map[string]bool)} }

func (c *Config) mark(name string) { c.set[name] = true }

// IsSet reports whether the named option was explicitly provided.
func (c *Config) IsSet(name string) bool { return c.set[name] }

// Space returns the DAM space option (nil when unset or explicitly nil).
func (c *Config) Space() *dam.Space { return c.space }

// GrowthFactor returns the growth factor, or def when unset.
func (c *Config) GrowthFactor(def int) int {
	if c.set[OptGrowth] {
		return c.growth
	}
	return def
}

// PointerDensity returns the lookahead pointer density, or def when
// unset.
func (c *Config) PointerDensity(def float64) float64 {
	if c.set[OptPointerDensity] {
		return c.pointerDensity
	}
	return def
}

// Fanout returns the fanout / balance parameter, or def when unset.
func (c *Config) Fanout(def int) int {
	if c.set[OptFanout] {
		return c.fanout
	}
	return def
}

// Epsilon returns the insert/search tradeoff parameter, or def when
// unset.
func (c *Config) Epsilon(def float64) float64 {
	if c.set[OptEpsilon] {
		return c.epsilon
	}
	return def
}

// BlockBytes returns the block size, or def when unset.
func (c *Config) BlockBytes(def int64) int64 {
	if c.set[OptBlockBytes] {
		return c.blockBytes
	}
	return def
}

// LeafCapacity returns the B-tree leaf capacity, or def when unset.
func (c *Config) LeafCapacity(def int) int {
	if c.set[OptLeafCapacity] {
		return c.leafCapacity
	}
	return def
}

// RelayoutEvery returns the shuttle relayout period, or def when unset.
func (c *Config) RelayoutEvery(def int) int {
	if c.set[OptRelayoutEvery] {
		return c.relayoutEvery
	}
	return def
}

// Shards returns the shard count, or def when unset.
func (c *Config) Shards(def int) int {
	if c.set[OptShards] {
		return c.shards
	}
	return def
}

// BatchSize returns the loader batch size, or def when unset.
func (c *Config) BatchSize(def int) int {
	if c.set[OptBatchSize] {
		return c.batchSize
	}
	return def
}

// ShardDAM returns the per-shard DAM geometry; ok is false when unset.
func (c *Config) ShardDAM() (blockBytes, cacheBytes int64, ok bool) {
	return c.shardBlock, c.shardCache, c.set[OptShardDAM]
}

// Inner returns the inner-kind selection; ok is false when unset.
func (c *Config) Inner() (kind string, opts []Option, ok bool) {
	return c.innerKind, c.innerOpts, c.set[OptInner]
}

// Factory returns the explicit per-shard factory; nil when unset.
func (c *Config) Factory() shard.Factory { return c.factory }

// WALPath returns the write-ahead log path; ok is false when unset.
func (c *Config) WALPath() (string, bool) { return c.walPath, c.set[OptWALPath] }

// CheckpointEvery returns the automatic checkpoint period in log
// records, or def when unset.
func (c *Config) CheckpointEvery(def int) int {
	if c.set[OptCheckpointEvery] {
		return c.ckptEvery
	}
	return def
}

// SpillDir returns the out-of-core spill directory; ok is false when
// unset (fully in-RAM operation).
func (c *Config) SpillDir() (string, bool) { return c.spillDir, c.set[OptSpillDir] }

// SpillDepth returns the first spilled level index, or def when unset.
func (c *Config) SpillDepth(def int) int {
	if c.set[OptSpillDepth] {
		return c.spillDepth
	}
	return def
}

// SpillCacheBytes returns the spill page-cache budget, or def when
// unset.
func (c *Config) SpillCacheBytes(def int64) int64 {
	if c.set[OptSpillCacheBytes] {
		return c.spillCache
	}
	return def
}

// Option is one entry of the unified functional-option set shared by
// every registered kind. Applying an option can fail (a value out of
// range fails eagerly, with the offending constructor named), and Build
// rejects options the selected kind does not accept.
type Option func(*Config) error

// WithSpace charges the structure's memory traffic to the given DAM
// space; nil disables accounting.
func WithSpace(sp *dam.Space) Option {
	return func(c *Config) error {
		c.space = sp
		c.mark(OptSpace)
		return nil
	}
}

// WithGrowthFactor sets the lookahead-array growth factor g (>= 2).
func WithGrowthFactor(g int) Option {
	return func(c *Config) error {
		if g < 2 {
			return fmt.Errorf("WithGrowthFactor(%d): growth factor must be at least 2", g)
		}
		c.growth = g
		c.mark(OptGrowth)
		return nil
	}
}

// WithPointerDensity sets the lookahead pointer density p in [0, 0.5];
// p = 0 disables fractional cascading.
func WithPointerDensity(p float64) Option {
	return func(c *Config) error {
		if p < 0 || p > 0.5 {
			return fmt.Errorf("WithPointerDensity(%g): density must lie in [0, 0.5]", p)
		}
		c.pointerDensity = p
		c.mark(OptPointerDensity)
		return nil
	}
}

// WithFanout sets the tree fanout / balance parameter.
func WithFanout(n int) Option {
	return func(c *Config) error {
		if n < 2 {
			return fmt.Errorf("WithFanout(%d): fanout must be at least 2", n)
		}
		c.fanout = n
		c.mark(OptFanout)
		return nil
	}
}

// WithEpsilon positions a cache-aware lookahead array on the
// insert/search tradeoff curve; epsilon must lie in [0, 1].
func WithEpsilon(e float64) Option {
	return func(c *Config) error {
		if e < 0 || e > 1 {
			return fmt.Errorf("WithEpsilon(%g): epsilon must lie in [0, 1]", e)
		}
		c.epsilon = e
		c.mark(OptEpsilon)
		return nil
	}
}

// WithBlockBytes sets the block size B in bytes for the cache-aware
// structures (B-tree, BRT, lookahead array).
func WithBlockBytes(b int64) Option {
	return func(c *Config) error {
		if b < 2*core.ElementBytes {
			return fmt.Errorf("WithBlockBytes(%d): blocks must hold at least two %d-byte elements", b, core.ElementBytes)
		}
		c.blockBytes = b
		c.mark(OptBlockBytes)
		return nil
	}
}

// WithLeafCapacity sets the B-tree's elements-per-leaf directly,
// overriding the BlockBytes-derived default.
func WithLeafCapacity(n int) Option {
	return func(c *Config) error {
		if n < 2 {
			return fmt.Errorf("WithLeafCapacity(%d): leaves must hold at least 2 elements", n)
		}
		c.leafCapacity = n
		c.mark(OptLeafCapacity)
		return nil
	}
}

// WithRelayoutEvery sets how many node splits the shuttle tree absorbs
// before rebuilding its exact van Emde Boas layout; negative disables
// rebuilds.
func WithRelayoutEvery(n int) Option {
	return func(c *Config) error {
		c.relayoutEvery = n
		c.mark(OptRelayoutEvery)
		return nil
	}
}

// WithShards sets the sharded map's partition count (rounded up to a
// power of two by the shard package).
func WithShards(n int) Option {
	return func(c *Config) error {
		if n <= 0 {
			return fmt.Errorf("WithShards(%d): shard count must be positive", n)
		}
		c.shards = n
		c.mark(OptShards)
		return nil
	}
}

// WithBatchSize sets the sharded map loader's per-flush batch size.
func WithBatchSize(k int) Option {
	return func(c *Config) error {
		if k <= 0 {
			return fmt.Errorf("WithBatchSize(%d): batch size must be positive", k)
		}
		c.batchSize = k
		c.mark(OptBatchSize)
		return nil
	}
}

// WithShardDAM gives every shard of a sharded map its own DAM store
// with the given geometry; Transfers then reports the aggregate.
func WithShardDAM(blockBytes, cacheBytes int64) Option {
	return func(c *Config) error {
		if blockBytes <= 0 || cacheBytes < 0 {
			return fmt.Errorf("WithShardDAM(%d, %d): block size must be positive and cache size non-negative", blockBytes, cacheBytes)
		}
		c.shardBlock = blockBytes
		c.shardCache = cacheBytes
		c.mark(OptShardDAM)
		return nil
	}
}

// WithInner selects the structure a wrapper kind ("sharded",
// "synchronized") wraps: any registered kind plus its own options. Do
// not pass WithSpace in the inner options of a sharded map — each shard
// receives its private space (see WithShardDAM).
func WithInner(kind string, opts ...Option) Option {
	return func(c *Config) error {
		c.innerKind = kind
		c.innerOpts = opts
		c.mark(OptInner)
		return nil
	}
}

// WithWALPath sets the write-ahead log path of a "durable" dictionary;
// the checkpoint snapshot lives next to it at path + ".ckpt". Reopening
// the same path recovers the logged state.
func WithWALPath(path string) Option {
	return func(c *Config) error {
		if path == "" {
			return fmt.Errorf("WithWALPath(%q): path must be non-empty", path)
		}
		c.walPath = path
		c.mark(OptWALPath)
		return nil
	}
}

// WithCheckpointEvery makes a "durable" dictionary checkpoint
// automatically after every n appended log records (batches, not
// elements); n = 0 disables automatic checkpoints.
func WithCheckpointEvery(n int) Option {
	return func(c *Config) error {
		if n < 0 {
			return fmt.Errorf("WithCheckpointEvery(%d): period must be non-negative", n)
		}
		c.ckptEvery = n
		c.mark(OptCheckpointEvery)
		return nil
	}
}

// WithSpillDir turns on a gcola's out-of-core mode: levels at or past
// the spill depth live in chunk-aligned files under a private
// subdirectory of dir (see internal/extmem) instead of RAM. Like
// WithSpace, the spill configuration is runtime wiring — it is not
// recorded in snapshots and must be passed again at Load.
func WithSpillDir(dir string) Option {
	return func(c *Config) error {
		if dir == "" {
			return fmt.Errorf("WithSpillDir(%q): directory must be non-empty", dir)
		}
		c.spillDir = dir
		c.mark(OptSpillDir)
		return nil
	}
}

// WithSpillDepth sets the first level index backed by spill files
// (>= 1; level 0 always stays in RAM). Requires WithSpillDir.
func WithSpillDepth(n int) Option {
	return func(c *Config) error {
		if n < 1 {
			return fmt.Errorf("WithSpillDepth(%d): spill depth must be at least 1", n)
		}
		c.spillDepth = n
		c.mark(OptSpillDepth)
		return nil
	}
}

// WithSpillCacheBytes sets the spill store's page-cache budget in bytes
// (floored at a few chunks by the store). Requires WithSpillDir.
func WithSpillCacheBytes(b int64) Option {
	return func(c *Config) error {
		if b <= 0 {
			return fmt.Errorf("WithSpillCacheBytes(%d): cache budget must be positive", b)
		}
		c.spillCache = b
		c.mark(OptSpillCacheBytes)
		return nil
	}
}

// WithFactory sets an explicit per-shard dictionary constructor on a
// sharded map, for structures not in the registry. Mutually exclusive
// with WithInner.
func WithFactory(f shard.Factory) Option {
	return func(c *Config) error {
		if f == nil {
			return fmt.Errorf("WithDictionary(nil): factory must be non-nil")
		}
		c.factory = f
		c.mark(OptFactory)
		return nil
	}
}

// Caps are a kind's capability flags, the feature matrix listing tools
// print and the capability-aware build/save paths consult. The type is
// core.Caps (so instance probes via core.CapsOf compare directly); for
// wrapper kinds ("sharded", "synchronized", "durable") a flag means the
// capability is forwarded when the inner kind has it, and the built
// wrapper's own core.CapsProber answers for a concrete nested inner.
type Caps = core.Caps

// KindInfo describes one registered dictionary kind.
type KindInfo struct {
	// Doc is a one-line description shown by listing tools.
	Doc string
	// Options names the options the kind accepts (the Opt* constants);
	// Build rejects everything else with a descriptive error.
	Options []string
	// Caps are the kind's capability flags; see Caps.
	Caps Caps
	// New builds the dictionary from a validated Config. Options not in
	// the accepted set are guaranteed unset; accepted options may still
	// carry kind-invalid values New must reject with an error.
	New func(*Config) (core.Dictionary, error)
}

type entry struct {
	info    KindInfo
	accepts map[string]bool
}

var reg = struct {
	sync.RWMutex
	m map[string]*entry
}{m: make(map[string]*entry)}

// Register adds a kind to the registry. It fails on an empty or
// duplicate name and on a nil build function; external packages use it
// (via the facade) to make their structures buildable and enumerable
// alongside the built-ins.
func Register(kind string, info KindInfo) error {
	if kind == "" {
		return fmt.Errorf("repro: Register: kind name must be non-empty")
	}
	if info.New == nil {
		return fmt.Errorf("repro: Register(%q): build function must be non-nil", kind)
	}
	reg.Lock()
	defer reg.Unlock()
	if _, dup := reg.m[kind]; dup {
		return fmt.Errorf("repro: Register(%q): kind already registered", kind)
	}
	accepts := make(map[string]bool, len(info.Options))
	for _, o := range info.Options {
		accepts[o] = true
	}
	reg.m[kind] = &entry{info: info, accepts: accepts}
	return nil
}

// mustRegister is the init-time registration path for built-ins.
func mustRegister(kind string, info KindInfo) {
	if err := Register(kind, info); err != nil {
		panic(err)
	}
}

// Kinds returns the sorted names of every registered kind.
func Kinds() []string {
	reg.RLock()
	defer reg.RUnlock()
	out := make([]string, 0, len(reg.m))
	for k := range reg.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Info returns the registration record of a kind, for listing tools
// (docs and option matrices).
func Info(kind string) (KindInfo, bool) {
	reg.RLock()
	defer reg.RUnlock()
	e, ok := reg.m[kind]
	if !ok {
		return KindInfo{}, false
	}
	return e.info, true
}

// Accepts reports whether the kind is registered and accepts the named
// option.
func Accepts(kind, option string) bool {
	reg.RLock()
	defer reg.RUnlock()
	e, ok := reg.m[kind]
	return ok && e.accepts[option]
}

func lookup(kind string) (*entry, bool) {
	reg.RLock()
	defer reg.RUnlock()
	e, ok := reg.m[kind]
	return e, ok
}

// Build constructs the named kind from the unified options. Unknown
// kinds, out-of-range values, and options the kind does not accept all
// return descriptive errors.
func Build(kind string, opts ...Option) (core.Dictionary, error) {
	e, ok := lookup(kind)
	if !ok {
		return nil, fmt.Errorf("repro: unknown dictionary kind %q (registered kinds: %s)",
			kind, strings.Join(Kinds(), ", "))
	}
	cfg, err := configFor(e, kind, opts)
	if err != nil {
		return nil, err
	}
	d, err := e.info.New(cfg)
	if err != nil {
		return nil, buildErr(kind, err)
	}
	if d == nil {
		return nil, fmt.Errorf("repro: building %q: builder returned a nil dictionary", kind)
	}
	return d, nil
}

// configFor folds opts into a Config validated against one kind's
// accepted-option set — the shared front half of Build and Save.
func configFor(e *entry, kind string, opts []Option) (*Config, error) {
	cfg, err := apply(opts)
	if err != nil {
		return nil, buildErr(kind, err)
	}
	var rejected []string
	for name := range cfg.set {
		if !e.accepts[name] {
			rejected = append(rejected, name)
		}
	}
	if len(rejected) > 0 {
		sort.Strings(rejected)
		accepted := append([]string(nil), e.info.Options...)
		sort.Strings(accepted)
		what := "no options"
		if len(accepted) > 0 {
			what = strings.Join(accepted, ", ")
		}
		return nil, fmt.Errorf("repro: kind %q does not accept %s (accepted options: %s)",
			kind, strings.Join(rejected, ", "), what)
	}
	return cfg, nil
}

// buildErr adds the package prefix and kind context to a build
// failure. Wrapper kinds ("sharded", "synchronized") propagate inner
// Build errors that already carry the "repro:" prefix; strip it so the
// surfaced message reads "repro: building "sharded": unknown ..."
// rather than stuttering the prefix.
func buildErr(kind string, err error) error {
	return fmt.Errorf("repro: building %q: %s", kind, strings.TrimPrefix(err.Error(), "repro: "))
}

// apply folds options into a fresh Config, failing on the first
// option-level error. Nil options are ignored so callers can build
// option slices conditionally.
func apply(opts []Option) (*Config, error) {
	cfg := newConfig()
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o(cfg); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}
