package registry

// The bridge between the registry's option sheet and the snap
// container's self-describing header: Save records the kind and the
// serializable options alongside the structure's payload, Load reads
// them back and rebuilds the right structure without the caller knowing
// what was saved.

import (
	"fmt"
	"io"
	"math/bits"
	"reflect"
	"runtime"
	"strings"

	"repro/internal/core"
	"repro/internal/snap"
)

// specOptOrder fixes the header's option order so identical
// configurations serialize identically (the set map is unordered).
var specOptOrder = []string{
	OptGrowth, OptPointerDensity, OptFanout, OptEpsilon, OptBlockBytes,
	OptLeafCapacity, OptRelayoutEvery, OptShards, OptBatchSize,
	OptShardDAM, OptWALPath, OptCheckpointEvery, OptInner,
}

// specFromConfig converts a validated Config into the container header
// spec. OptSpace is runtime wiring (a live DAM space cannot be
// persisted) and is silently omitted — pass WithSpace again at Load.
// OptFactory is an error: a closure-built structure cannot be described
// by name.
func specFromConfig(kind string, c *Config) (*snap.Spec, error) {
	return buildSpec(kind, c, true)
}

// requestedSpec is specFromConfig without the default-shard pinning:
// the result holds exactly the options the caller set, at every nesting
// level, which is the right shape for comparing a caller's request
// against a checkpoint's recorded spec (a synthetic GOMAXPROCS-derived
// pin must not read as a conflict on a machine with different
// parallelism).
func requestedSpec(kind string, c *Config) (*snap.Spec, error) {
	return buildSpec(kind, c, false)
}

func buildSpec(kind string, c *Config, pinDefaults bool) (*snap.Spec, error) {
	spec := &snap.Spec{Kind: kind}
	for _, name := range specOptOrder {
		if !c.set[name] {
			continue
		}
		switch name {
		case OptGrowth:
			spec.Opts = append(spec.Opts, snap.Int(name, int64(c.growth)))
		case OptPointerDensity:
			spec.Opts = append(spec.Opts, snap.Float(name, c.pointerDensity))
		case OptFanout:
			spec.Opts = append(spec.Opts, snap.Int(name, int64(c.fanout)))
		case OptEpsilon:
			spec.Opts = append(spec.Opts, snap.Float(name, c.epsilon))
		case OptBlockBytes:
			spec.Opts = append(spec.Opts, snap.Int(name, c.blockBytes))
		case OptLeafCapacity:
			spec.Opts = append(spec.Opts, snap.Int(name, int64(c.leafCapacity)))
		case OptRelayoutEvery:
			spec.Opts = append(spec.Opts, snap.Int(name, int64(c.relayoutEvery)))
		case OptShards:
			spec.Opts = append(spec.Opts, snap.Int(name, int64(c.shards)))
		case OptBatchSize:
			spec.Opts = append(spec.Opts, snap.Int(name, int64(c.batchSize)))
		case OptShardDAM:
			spec.Opts = append(spec.Opts, snap.IntPair(name, c.shardBlock, c.shardCache))
		case OptWALPath:
			spec.Opts = append(spec.Opts, snap.String(name, c.walPath))
		case OptCheckpointEvery:
			spec.Opts = append(spec.Opts, snap.Int(name, int64(c.ckptEvery)))
		case OptInner:
			icfg, err := innerConfig(c.innerOpts)
			if err != nil {
				return nil, err
			}
			isp, err := buildSpec(c.innerKind, icfg, pinDefaults)
			if err != nil {
				return nil, err
			}
			spec.Opts = append(spec.Opts, snap.Nested(name, isp))
		}
	}
	if c.set[OptFactory] {
		return nil, fmt.Errorf("a WithDictionary factory cannot be recorded in a snapshot; use WithInner with a registered kind")
	}
	// The shard count is part of the composed codec's format (hash
	// routing depends on it), so a sharded spec built with the
	// GOMAXPROCS-derived default must still pin it explicitly — a
	// restore on a machine with different parallelism would otherwise
	// build an incompatible map. Save overrides this with the live
	// map's exact count; here (including nested WithInner specs and
	// durable checkpoint specs) the build-time default is recorded,
	// which is what the same-process builder produced.
	if pinDefaults && Accepts(kind, OptShards) && !c.set[OptShards] {
		spec.Opts = append(spec.Opts, snap.Int(OptShards, int64(defaultShards())))
	}
	return spec, nil
}

// specConflict reports the first place where the recorded spec rec
// contradicts the requested spec req — a differing kind, an option rec
// does not record, or a differing value — as a human-readable
// description. req must hold only explicitly-set options (see
// requestedSpec); options the caller left to default are simply absent
// from it, so the recorded configuration wins for them. An option the
// caller passes that was never recorded is rejected even if its value
// happens to equal the default the structure was really built with:
// defaults live inside the builders and are not recorded, so the match
// cannot be verified — the safe answers are "omit it" or "rebuild".
// Nested specs are compared with the same subset semantics.
func specConflict(req, rec *snap.Spec) (string, bool) {
	if req.Kind != rec.Kind {
		return fmt.Sprintf("kind %q was requested but %q is recorded", req.Kind, rec.Kind), true
	}
	for _, ro := range req.Opts {
		found := false
		for _, so := range rec.Opts {
			if so.Name != ro.Name {
				continue
			}
			found = true
			if ro.Spec != nil && so.Spec != nil {
				if desc, conflict := specConflict(ro.Spec, so.Spec); conflict {
					return ro.Name + ": " + desc, true
				}
			} else if !reflect.DeepEqual(ro, so) {
				return fmt.Sprintf("%s requests a different value than the recorded one", ro.Name), true
			}
			break
		}
		if !found {
			return fmt.Sprintf("%s was not set when the checkpoint was created (the value was left to its default, which is not recorded)", ro.Name), true
		}
	}
	return "", false
}

// defaultShards mirrors the shard package's default partition count
// (next power of two >= GOMAXPROCS).
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// optionsFromSpec converts a decoded header spec back into buildable
// options. An option name this build does not know is treated like an
// unreadable format version: the snapshot was written by a newer
// lineup.
func optionsFromSpec(spec *snap.Spec) ([]Option, error) {
	opts := make([]Option, 0, len(spec.Opts))
	for _, o := range spec.Opts {
		switch o.Name {
		case OptGrowth:
			opts = append(opts, WithGrowthFactor(int(o.Int)))
		case OptPointerDensity:
			opts = append(opts, WithPointerDensity(o.Float))
		case OptFanout:
			opts = append(opts, WithFanout(int(o.Int)))
		case OptEpsilon:
			opts = append(opts, WithEpsilon(o.Float))
		case OptBlockBytes:
			opts = append(opts, WithBlockBytes(o.Int))
		case OptLeafCapacity:
			opts = append(opts, WithLeafCapacity(int(o.Int)))
		case OptRelayoutEvery:
			opts = append(opts, WithRelayoutEvery(int(o.Int)))
		case OptShards:
			opts = append(opts, WithShards(int(o.Int)))
		case OptBatchSize:
			opts = append(opts, WithBatchSize(int(o.Int)))
		case OptShardDAM:
			opts = append(opts, WithShardDAM(o.Int, o.Int2))
		case OptWALPath:
			opts = append(opts, WithWALPath(o.Str))
		case OptCheckpointEvery:
			opts = append(opts, WithCheckpointEvery(int(o.Int)))
		case OptInner:
			if o.Spec == nil {
				return nil, fmt.Errorf("snapshot header option %q carries no inner spec: %w", o.Name, core.ErrCorrupt)
			}
			innerOpts, err := optionsFromSpec(o.Spec)
			if err != nil {
				return nil, err
			}
			opts = append(opts, WithInner(o.Spec.Kind, innerOpts...))
		default:
			return nil, fmt.Errorf("snapshot header names option %q unknown to this build: %w",
				o.Name, core.ErrBadVersion)
		}
	}
	return opts, nil
}

// Save writes d — which must have been built as the named kind with the
// given options — as one self-describing snapshot container. The kind
// must be snapshot-capable (Caps.Snapshot), the options must validate
// exactly as they would for Build, and d's concrete type must match
// what the kind builds, so a mislabeled save fails here rather than at
// some future Load.
//
// Two options need care: WithSpace is not recorded (re-attach a space
// via Load's extra options), and for a sharded map saved without an
// explicit WithShards the live partition count is recorded
// automatically, since the shard count is part of the hash routing and
// the build-time default follows GOMAXPROCS.
func Save(w io.Writer, kind string, d core.Dictionary, opts ...Option) error {
	e, ok := lookup(kind)
	if !ok {
		return fmt.Errorf("repro: unknown dictionary kind %q (registered kinds: %s)",
			kind, strings.Join(Kinds(), ", "))
	}
	if !e.info.Caps.Snapshot {
		return fmt.Errorf("repro: kind %q does not support snapshots (capabilities: %s)", kind, e.info.Caps)
	}
	sn, ok := d.(core.Snapshotter)
	if !ok {
		return fmt.Errorf("repro: %T does not implement Snapshotter", d)
	}
	cfg, err := configFor(e, kind, opts)
	if err != nil {
		return err
	}
	if e.accepts[OptShards] && !cfg.IsSet(OptShards) {
		if ns, ok := d.(interface{ NumShards() int }); ok {
			if err := WithShards(ns.NumShards())(cfg); err != nil {
				return buildErr(kind, err)
			}
		}
	}
	probe, err := e.info.New(cfg)
	if err != nil {
		return buildErr(kind, err)
	}
	if pt, dt := reflect.TypeOf(probe), reflect.TypeOf(d); pt != dt {
		return fmt.Errorf("repro: kind %q builds %v but the dictionary being saved is %v; pass the kind it was built as", kind, pt, dt)
	}
	// The top-level type check cannot see through wrapper kinds — a
	// sharded map of btree shards and one of cola shards are both
	// *shard.Map — so walk the wrapper layers and compare the inner
	// concrete types too. Otherwise a forgotten or wrong WithInner
	// records a header that contradicts the payload, failing (or worse,
	// silently rebuilding a different structure) at some future Load.
	for p, l := probe, d; ; {
		pi, pok := innerOf(p)
		li, lok := innerOf(l)
		if !pok || !lok {
			break
		}
		if pt, lt := reflect.TypeOf(pi), reflect.TypeOf(li); pt != lt {
			return fmt.Errorf("repro: kind %q with these options builds inner %v but the dictionary being saved holds inner %v; pass the WithInner it was built with", kind, pt, lt)
		}
		p, l = pi, li
	}
	// The probe exists only for the type comparison; release anything it
	// opened (a spill-configured gcola probe holds an open spill
	// directory). The error is irrelevant — the probe holds no state.
	if cl, ok := probe.(io.Closer); ok {
		_ = cl.Close()
	}
	spec, err := specFromConfig(kind, cfg)
	if err != nil {
		return buildErr(kind, err)
	}
	if err := reconcileShardCounts(spec, cfg, d); err != nil {
		return fmt.Errorf("repro: saving %q: %w", kind, err)
	}
	if _, err := snap.Encode(w, spec, sn); err != nil {
		return fmt.Errorf("repro: saving %q: %w", kind, err)
	}
	return nil
}

// reconcileShardCounts rewrites every recorded shard count in spec to
// the live partition count of the (sub)structure it describes, walking
// wrapper layers in tandem with the live dictionary. A count pinned
// from the build-time default (GOMAXPROCS-derived) may disagree with
// the count a nested map was really built with, and the live count is
// the one the payload's hash routing depends on, so it is the only one
// worth recording. A count the caller claimed explicitly must already
// match the live one; a mismatch is a mislabeled save and fails here
// rather than at some future Load.
func reconcileShardCounts(spec *snap.Spec, c *Config, d core.Dictionary) error {
	if ns, ok := d.(interface{ NumShards() int }); ok {
		live := int64(ns.NumShards())
		for i := range spec.Opts {
			if spec.Opts[i].Name != OptShards {
				continue
			}
			if c.IsSet(OptShards) && spec.Opts[i].Int != live {
				return fmt.Errorf("WithShards(%d) was passed but the map being saved has %d partitions; pass the count it was built with, or omit WithShards to record it automatically", spec.Opts[i].Int, live)
			}
			spec.Opts[i].Int = live
			break
		}
	}
	inner, ok := innerOf(d)
	if !ok {
		return nil
	}
	if _, innerOpts, hasInner := c.Inner(); hasInner {
		icfg, err := innerConfig(innerOpts)
		if err != nil {
			return err
		}
		for i := range spec.Opts {
			if spec.Opts[i].Name == OptInner && spec.Opts[i].Spec != nil {
				return reconcileShardCounts(spec.Opts[i].Spec, icfg, inner)
			}
		}
	}
	return nil
}

// Load reads one snapshot container, rebuilds the recorded kind with
// the recorded options plus any extra ones (applied after, e.g.
// WithSpace to re-attach cost accounting), and restores the payload
// into it. Both checksums are verified before any structure decoder
// runs.
func Load(r io.Reader, extra ...Option) (core.Dictionary, error) {
	d, _, err := loadContainer(r, extra...)
	return d, err
}

// loadContainer is Load, additionally returning the decoded spec (the
// durable builder re-uses it to write future checkpoints under the
// same header).
func loadContainer(r io.Reader, extra ...Option) (core.Dictionary, *snap.Spec, error) {
	spec, payload, err := snap.Decode(r)
	if err != nil {
		return nil, nil, fmt.Errorf("repro: loading snapshot: %w", err)
	}
	// Gate on the recorded kinds' snapshot capabilities BEFORE building
	// anything: a builder may have side effects (the durable kind opens
	// and repairs files at its WAL path), and a hostile header must not
	// be able to trigger them. Only Caps.Snapshot kinds — whose builders
	// are pure construction — run from untrusted input, and the check is
	// recursive because wrapper builders Build their nested WithInner
	// specs.
	if err := validateSpecKinds(spec); err != nil {
		return nil, nil, err
	}
	recorded, err := optionsFromSpec(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("repro: loading snapshot: %w", err)
	}
	d, err := Build(spec.Kind, append(recorded, extra...)...)
	if err != nil {
		return nil, nil, fmt.Errorf("repro: loading snapshot of %q: %w", spec.Kind, err)
	}
	sn, ok := d.(core.Snapshotter)
	if !ok {
		return nil, nil, fmt.Errorf("repro: snapshot names kind %q, which cannot restore itself", spec.Kind)
	}
	if _, err := sn.ReadFrom(payload); err != nil {
		return nil, nil, fmt.Errorf("repro: restoring %q payload: %w", spec.Kind, err)
	}
	return d, spec, nil
}

// innerOf descends one wrapper layer: a synchronized wrapper unwraps to
// the dictionary it guards, a sharded map to a representative shard's
// inner (every shard is built by the same factory, so one stands for
// all). Non-wrapper structures report false.
func innerOf(d core.Dictionary) (core.Dictionary, bool) {
	switch v := d.(type) {
	case interface{ Unwrap() core.Dictionary }:
		return v.Unwrap(), true
	case interface{ InnerAt(int) core.Dictionary }:
		return v.InnerAt(0), true
	}
	return nil, false
}

// validateSpecKinds walks a decoded header spec — including every
// nested WithInner spec — and rejects any kind that is unknown or not
// snapshot-capable, before any builder can run. A wrapper builder
// Builds its inner spec, so a hostile container naming a pure wrapper
// ("synchronized", "sharded") around a side-effecting kind ("durable",
// whose wal.Open truncates and repairs files at its WAL path) is
// exactly as dangerous as naming that kind at the top level; both must
// fail here.
func validateSpecKinds(spec *snap.Spec) error {
	e, known := lookup(spec.Kind)
	if !known {
		return fmt.Errorf("repro: snapshot names unregistered kind %q (registered kinds: %s)",
			spec.Kind, strings.Join(Kinds(), ", "))
	}
	if !e.info.Caps.Snapshot {
		return fmt.Errorf("repro: snapshot names kind %q, which cannot restore itself (capabilities: %s)",
			spec.Kind, e.info.Caps)
	}
	for _, o := range spec.Opts {
		if o.Spec != nil {
			if err := validateSpecKinds(o.Spec); err != nil {
				return err
			}
		}
	}
	return nil
}
