package cola

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/workload"
)

func TestNewPanics(t *testing.T) {
	cases := map[string]Options{
		"growth<2": {Growth: 1},
		"p<0":      {Growth: 2, PointerDensity: -0.1},
		"p>0.5":    {Growth: 2, PointerDensity: 0.6},
	}
	for name, opt := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			New(opt)
		}()
	}
}

func TestCapacityFormula(t *testing.T) {
	// Level sizes from the paper: 1 for level 0, 2(g-1)g^(l-1) for l>0.
	c := New(Options{Growth: 2})
	wants := []int{1, 2, 4, 8, 16, 32}
	for l, want := range wants {
		if got := c.realCapacity(l); got != want {
			t.Errorf("g=2 realCapacity(%d) = %d, want %d", l, got, want)
		}
	}
	c4 := New(Options{Growth: 4})
	wants4 := []int{1, 6, 24, 96, 384}
	for l, want := range wants4 {
		if got := c4.realCapacity(l); got != want {
			t.Errorf("g=4 realCapacity(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestLookaheadCapacityFormula(t *testing.T) {
	c := New(Options{Growth: 2, PointerDensity: 0.1})
	// floor(0.1 * 2^l) for l >= 1.
	wants := []int{0, 0, 0, 0, 1, 3, 6, 12}
	for l, want := range wants {
		if got := c.lookaheadCapacity(l); got != want {
			t.Errorf("lookaheadCapacity(%d) = %d, want %d", l, got, want)
		}
	}
}

func TestInsertSearchSmall(t *testing.T) {
	c := NewCOLA(nil)
	keys := []uint64{5, 3, 9, 1, 7, 2, 8, 4, 6, 0}
	for i, k := range keys {
		c.Insert(k, k*10)
		c.checkInvariants()
		if got := c.Len(); got != i+1 {
			t.Fatalf("Len after %d inserts = %d", i+1, got)
		}
	}
	for _, k := range keys {
		v, ok := c.Search(k)
		if !ok || v != k*10 {
			t.Fatalf("Search(%d) = (%d,%v), want (%d,true)", k, v, ok, k*10)
		}
	}
	if _, ok := c.Search(100); ok {
		t.Fatal("Search(100) found a missing key")
	}
}

func TestBinaryCounterInvariant(t *testing.T) {
	// For g=2 with distinct keys, level l is occupied by real elements
	// iff bit l of... (capacity formula shifted: level 0 holds 1, level
	// l>=1 holds 2^l): total occupancy must always equal N and each
	// level must be either empty or within capacity.
	c := NewBasic(nil)
	const n = 300
	for i := 0; i < n; i++ {
		c.Insert(uint64(i*2654435761), uint64(i))
		c.checkInvariants()
		total := 0
		for l := range c.levels {
			total += c.levels[l].real
		}
		if total != i+1 {
			t.Fatalf("after %d inserts, stored %d reals", i+1, total)
		}
	}
}

func TestUpdateSemantics(t *testing.T) {
	for _, g := range []int{2, 3, 4, 8} {
		c := New(Options{Growth: g, PointerDensity: 0.1})
		c.Insert(42, 1)
		c.Insert(42, 2)
		if v, ok := c.Search(42); !ok || v != 2 {
			t.Fatalf("g=%d: Search(42) = (%d,%v), want (2,true)", g, v, ok)
		}
		// Force merges past the duplicate to confirm newest still wins.
		for i := uint64(100); i < 200; i++ {
			c.Insert(i, i)
		}
		if v, ok := c.Search(42); !ok || v != 2 {
			t.Fatalf("g=%d after merges: Search(42) = (%d,%v), want (2,true)", g, v, ok)
		}
		c.Compact()
		if v, ok := c.Search(42); !ok || v != 2 {
			t.Fatalf("g=%d after compact: Search(42) = (%d,%v)", g, v, ok)
		}
		if c.Len() != 101 {
			t.Fatalf("g=%d: Len = %d, want 101", g, c.Len())
		}
	}
}

func TestDelete(t *testing.T) {
	c := NewCOLA(nil)
	for i := uint64(0); i < 100; i++ {
		c.Insert(i, i)
	}
	if !c.Delete(50) {
		t.Fatal("Delete(50) = false, want true")
	}
	if c.Delete(50) {
		t.Fatal("second Delete(50) = true, want false")
	}
	if c.Delete(1000) {
		t.Fatal("Delete(1000) of missing key = true")
	}
	if _, ok := c.Search(50); ok {
		t.Fatal("Search(50) found a deleted key")
	}
	if c.Len() != 99 {
		t.Fatalf("Len = %d, want 99", c.Len())
	}
	// Re-insert after delete.
	c.Insert(50, 555)
	if v, ok := c.Search(50); !ok || v != 555 {
		t.Fatalf("Search(50) after re-insert = (%d,%v), want (555,true)", v, ok)
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
	c.Compact()
	c.checkInvariants()
	if v, ok := c.Search(50); !ok || v != 555 {
		t.Fatalf("after compact Search(50) = (%d,%v)", v, ok)
	}
	if c.Len() != 100 {
		t.Fatalf("after compact Len = %d, want 100", c.Len())
	}
}

func TestDeleteEverything(t *testing.T) {
	c := NewCOLA(nil)
	const n = 64
	for i := uint64(0); i < n; i++ {
		c.Insert(i, i)
	}
	for i := uint64(0); i < n; i++ {
		if !c.Delete(i) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
	for i := uint64(0); i < n; i++ {
		if _, ok := c.Search(i); ok {
			t.Fatalf("Search(%d) found deleted key", i)
		}
	}
	c.Compact()
	c.checkInvariants()
	count := 0
	c.Range(0, ^uint64(0), func(core.Element) bool { count++; return true })
	if count != 0 {
		t.Fatalf("Range found %d elements after deleting all", count)
	}
}

func TestRangeBasics(t *testing.T) {
	c := NewCOLA(nil)
	for i := uint64(0); i < 200; i += 2 {
		c.Insert(i, i+1)
	}
	var got []core.Element
	c.Range(10, 20, func(e core.Element) bool {
		got = append(got, e)
		return true
	})
	want := []uint64{10, 12, 14, 16, 18, 20}
	if len(got) != len(want) {
		t.Fatalf("Range returned %d elements, want %d: %v", len(got), len(want), got)
	}
	for i, e := range got {
		if e.Key != want[i] || e.Value != want[i]+1 {
			t.Fatalf("Range[%d] = %v, want {%d:%d}", i, e, want[i], want[i]+1)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	c := NewCOLA(nil)
	for i := uint64(0); i < 100; i++ {
		c.Insert(i, i)
	}
	count := 0
	c.Range(0, 99, func(core.Element) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early-stop Range visited %d, want 5", count)
	}
}

func TestRangeSkipsTombstonesAndDuplicates(t *testing.T) {
	c := NewCOLA(nil)
	for i := uint64(0); i < 50; i++ {
		c.Insert(i, i)
	}
	c.Insert(25, 999) // update buried in a newer level
	c.Delete(30)
	var keys []uint64
	var vals []uint64
	c.Range(20, 35, func(e core.Element) bool {
		keys = append(keys, e.Key)
		vals = append(vals, e.Value)
		return true
	})
	want := []uint64{20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 31, 32, 33, 34, 35}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
		wantVal := want[i]
		if want[i] == 25 {
			wantVal = 999
		}
		if vals[i] != wantVal {
			t.Fatalf("value for key %d = %d, want %d", keys[i], vals[i], wantVal)
		}
	}
}

func TestEmptyStructure(t *testing.T) {
	c := NewCOLA(nil)
	if _, ok := c.Search(1); ok {
		t.Fatal("empty Search found something")
	}
	if c.Len() != 0 {
		t.Fatal("empty Len != 0")
	}
	c.Range(0, ^uint64(0), func(core.Element) bool {
		t.Fatal("empty Range yielded an element")
		return false
	})
	c.Compact() // must not panic on empty
	if c.Delete(5) {
		t.Fatal("Delete on empty returned true")
	}
}

func TestGrowthFactors(t *testing.T) {
	for _, g := range []int{2, 3, 4, 8, 16} {
		c := New(Options{Growth: g, PointerDensity: 0.1})
		const n = 1 << 10
		seq := workload.NewRandomUnique(uint64(g))
		keys := workload.Take(seq, n)
		for _, k := range keys {
			c.Insert(k, k^0xFF)
		}
		c.checkInvariants()
		for _, k := range keys {
			if v, ok := c.Search(k); !ok || v != k^0xFF {
				t.Fatalf("g=%d: Search(%d) = (%d,%v)", g, k, v, ok)
			}
		}
		if c.Len() != n {
			t.Fatalf("g=%d: Len = %d, want %d", g, c.Len(), n)
		}
	}
}

func TestPointerDensities(t *testing.T) {
	for _, p := range []float64{0, 0.05, 0.1, 0.25, 0.5} {
		c := New(Options{Growth: 2, PointerDensity: p})
		const n = 1 << 11
		seq := workload.NewRandomUnique(7)
		keys := workload.Take(seq, n)
		for _, k := range keys {
			c.Insert(k, k)
		}
		c.checkInvariants()
		for _, k := range keys {
			if _, ok := c.Search(k); !ok {
				t.Fatalf("p=%v: lost key %d", p, k)
			}
		}
		// Missing keys must stay missing.
		miss := workload.NewRandomUnique(8)
		for i := 0; i < 100; i++ {
			k := miss.Next() | 1<<63 // distinct namespace from seed-7 keys w.h.p.
			if _, ok := c.Search(k); ok {
				if v, _ := c.Search(k); v != 0 {
					t.Fatalf("p=%v: phantom key %d", p, k)
				}
			}
		}
	}
}

func TestSortedInsertOrders(t *testing.T) {
	const n = 1 << 10
	for name, seq := range map[string]workload.Sequence{
		"ascending":  workload.NewAscending(),
		"descending": workload.NewDescending(n),
	} {
		c := NewCOLA(nil)
		for i := 0; i < n; i++ {
			c.Insert(seq.Next(), uint64(i))
		}
		c.checkInvariants()
		for k := uint64(0); k < n; k++ {
			if _, ok := c.Search(k); !ok {
				t.Fatalf("%s: lost key %d", name, k)
			}
		}
		// Full range scan must be sorted and complete.
		var prev uint64
		count := 0
		c.Range(0, ^uint64(0), func(e core.Element) bool {
			if count > 0 && e.Key <= prev {
				t.Fatalf("%s: range out of order: %d after %d", name, e.Key, prev)
			}
			prev = e.Key
			count++
			return true
		})
		if count != n {
			t.Fatalf("%s: range yielded %d, want %d", name, count, n)
		}
	}
}

func TestDAMChargingHappens(t *testing.T) {
	store := dam.NewStore(4096, 1<<16)
	c := NewCOLA(store.Space("cola"))
	for i := uint64(0); i < 10000; i++ {
		c.Insert(i, i)
	}
	if store.Transfers() == 0 {
		t.Fatal("no transfers recorded for an out-of-cache insert workload")
	}
	before := store.Transfers()
	c.Search(5000)
	if store.Transfers() == before {
		t.Fatal("search charged no transfers")
	}
}

func TestAmortizedInsertTransfersLogarithmic(t *testing.T) {
	// Lemma 19: insertion costs amortized O((log N)/B) transfers. With
	// 32-byte elements and 4096-byte blocks, B = 128 elements, so for
	// N = 2^16 we expect roughly log2(N)/128 ≈ 0.13 transfers/insert.
	// Allow generous slack but fail if the measured rate is off by an
	// order of magnitude (e.g. O(1) or O(N^eps) behaviour).
	store := dam.NewStore(4096, 1<<17) // small cache forces out-of-core merging
	c := NewCOLA(store.Space("cola"))
	const n = 1 << 16
	seq := workload.NewRandomUnique(3)
	for i := 0; i < n; i++ {
		k := seq.Next()
		c.Insert(k, k)
	}
	perInsert := float64(store.Transfers()) / float64(n)
	elemsPerBlock := 4096.0 / 32.0
	bound := 16.0 / elemsPerBlock * 8 // 16 = log2 N, slack factor 8
	if perInsert > bound {
		t.Fatalf("amortized transfers/insert = %v, want <= %v", perInsert, bound)
	}
}

func TestStatsTracking(t *testing.T) {
	c := NewCOLA(nil)
	for i := uint64(0); i < 100; i++ {
		c.Insert(i, i)
	}
	c.Search(5)
	c.Delete(5)
	st := c.Stats()
	if st.Inserts != 100 {
		t.Errorf("Inserts = %d, want 100", st.Inserts)
	}
	// Delete performs an internal search; at least the two explicit ones.
	if st.Searches < 2 {
		t.Errorf("Searches = %d, want >= 2", st.Searches)
	}
	if st.Deletes != 1 {
		t.Errorf("Deletes = %d, want 1", st.Deletes)
	}
	if st.Moves == 0 {
		t.Error("Moves = 0, want > 0 after merges")
	}
	if st.MaxMoves == 0 || st.MaxMoves > st.Moves {
		t.Errorf("MaxMoves = %d out of range (Moves = %d)", st.MaxMoves, st.Moves)
	}
}

func TestCompactSingleLevel(t *testing.T) {
	c := NewCOLA(nil)
	const n = 1000
	seq := workload.NewRandomUnique(11)
	for i := 0; i < n; i++ {
		k := seq.Next()
		c.Insert(k, k)
	}
	c.Compact()
	c.checkInvariants()
	occupied := 0
	for l := range c.levels {
		if c.levels[l].real > 0 {
			occupied++
		}
	}
	if occupied != 1 {
		t.Fatalf("levels with real elements after Compact = %d, want 1", occupied)
	}
	if c.Len() != n {
		t.Fatalf("Len after Compact = %d, want %d", c.Len(), n)
	}
}
