package cola

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// Edge-case batch: extreme keys, adversarial orders, boundary windows.

func TestExtremeKeys(t *testing.T) {
	for name, mk := range map[string]func() core.Dictionary{
		"cola":      func() core.Dictionary { return NewCOLA(nil) },
		"basic":     func() core.Dictionary { return NewBasic(nil) },
		"deam":      func() core.Dictionary { return NewDeamortized(nil) },
		"deam-la":   func() core.Dictionary { return NewDeamortizedLookahead(nil) },
		"g8-dense":  func() core.Dictionary { return New(Options{Growth: 8, PointerDensity: 0.5}) },
		"g3-sparse": func() core.Dictionary { return New(Options{Growth: 3, PointerDensity: 0.05}) },
	} {
		t.Run(name, func(t *testing.T) {
			d := mk()
			keys := []uint64{0, 1, ^uint64(0), ^uint64(0) - 1, 1 << 63, (1 << 63) - 1}
			for i, k := range keys {
				d.Insert(k, uint64(i))
			}
			// Bury them under churn.
			seq := workload.NewRandomUnique(91)
			for i := 0; i < 2000; i++ {
				k := seq.Next()
				// Avoid colliding with the extreme keys.
				k = k>>2 | 1<<10
				d.Insert(k, k)
			}
			for i, k := range keys {
				if v, ok := d.Search(k); !ok || v != uint64(i) {
					t.Fatalf("Search(%d) = (%d,%v), want (%d,true)", k, v, ok, i)
				}
			}
			// Range spanning the whole key space terminates and is sorted.
			var prev uint64
			count := 0
			d.Range(0, ^uint64(0), func(e core.Element) bool {
				if count > 0 && e.Key <= prev {
					t.Fatalf("full-range out of order: %d after %d", e.Key, prev)
				}
				prev = e.Key
				count++
				return true
			})
			if count < len(keys) {
				t.Fatalf("full-range yielded %d < %d", count, len(keys))
			}
		})
	}
}

func TestSawtoothInsertDelete(t *testing.T) {
	// Repeated fill/drain cycles: merges must keep annihilating
	// tombstones instead of accumulating them.
	c := NewCOLA(nil)
	for round := 0; round < 6; round++ {
		base := uint64(round * 1000)
		for i := base; i < base+500; i++ {
			c.Insert(i, i)
		}
		for i := base; i < base+500; i++ {
			if !c.Delete(i) {
				t.Fatalf("round %d: Delete(%d) failed", round, i)
			}
		}
		if c.Len() != 0 {
			t.Fatalf("round %d: Len = %d", round, c.Len())
		}
		c.checkInvariants()
	}
	c.Compact()
	total := 0
	for l := range c.levels {
		total += c.levels[l].real
	}
	if total != 0 {
		t.Fatalf("%d real entries linger after compacting an empty structure", total)
	}
}

func TestAlternatingMinMax(t *testing.T) {
	// Adversarial order alternating between the extremes of the key
	// space stresses merge boundaries.
	c := NewCOLA(nil)
	lo, hi := uint64(0), ^uint64(0)
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			c.Insert(lo, uint64(i))
			lo++
		} else {
			c.Insert(hi, uint64(i))
			hi--
		}
		if i%97 == 0 {
			c.checkInvariants()
		}
	}
	if c.Len() != 2000 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Search(0); !ok {
		t.Fatal("lost key 0")
	}
	if _, ok := c.Search(^uint64(0)); !ok {
		t.Fatal("lost key max")
	}
}

func TestManyUpdatesOneKey(t *testing.T) {
	// One hot key updated thousands of times between cold inserts: the
	// live count must reconcile to the true value after Compact.
	c := NewCOLA(nil)
	seq := workload.NewRandomUnique(93)
	for i := 0; i < 5000; i++ {
		c.Insert(77, uint64(i))
		k := seq.Next() | 1 // avoid 77? (77 is odd; fine — values differ but updates are the point)
		if k != 77 {
			c.Insert(k, k)
		}
	}
	if v, ok := c.Search(77); !ok || v != 4999 {
		t.Fatalf("hot key = (%d,%v), want (4999,true)", v, ok)
	}
	c.Compact()
	if v, ok := c.Search(77); !ok || v != 4999 {
		t.Fatalf("after compact hot key = (%d,%v)", v, ok)
	}
}

func TestRangeBoundariesExact(t *testing.T) {
	c := NewCOLA(nil)
	for i := uint64(10); i <= 20; i++ {
		c.Insert(i, i)
	}
	cases := []struct {
		lo, hi uint64
		want   int
	}{
		{10, 20, 11}, // inclusive both ends
		{10, 10, 1},  // single key
		{0, 9, 0},    // just below
		{21, 100, 0}, // just above
		{15, 14, 0},  // inverted window
		{20, 20, 1},  // last key alone
	}
	for _, cse := range cases {
		count := 0
		c.Range(cse.lo, cse.hi, func(core.Element) bool { count++; return true })
		if count != cse.want {
			t.Fatalf("Range(%d,%d) = %d, want %d", cse.lo, cse.hi, count, cse.want)
		}
	}
}

func TestContainsHelper(t *testing.T) {
	c := NewCOLA(nil)
	c.Insert(5, 5)
	if !c.Contains(5) || c.Contains(6) {
		t.Fatal("Contains wrong")
	}
}

func TestInterleavedCompact(t *testing.T) {
	// Compacting mid-workload must never lose or resurrect keys.
	c := NewCOLA(nil)
	ref := newRef()
	rng := workload.NewRNG(95)
	for i := 0; i < 4000; i++ {
		k := rng.Uint64() % 300
		switch rng.Uint64() % 5 {
		case 0, 1, 2:
			v := rng.Uint64()
			c.Insert(k, v)
			ref.Insert(k, v)
		case 3:
			got := c.Delete(k)
			want := ref.Delete(k)
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, want)
			}
		case 4:
			if i%7 == 0 {
				c.Compact()
				c.checkInvariants()
				if c.Len() != ref.Len() {
					t.Fatalf("op %d: post-compact Len = %d, want %d", i, c.Len(), ref.Len())
				}
			}
		}
	}
	for k := uint64(0); k < 300; k++ {
		gv, gok := c.Search(k)
		wv, wok := ref.Search(k)
		if gok != wok || (gok && gv != wv) {
			t.Fatalf("final Search(%d) = (%d,%v), want (%d,%v)", k, gv, gok, wv, wok)
		}
	}
}

func TestDeamortizedLookaheadLargeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	// A deeper soak than the differential test: 2^15 distinct keys keeps
	// many levels and all three array slots busy.
	d := NewDeamortizedLookahead(nil)
	seq := workload.NewRandomUnique(97)
	const n = 1 << 15
	keys := workload.Take(seq, n)
	for i, k := range keys {
		d.Insert(k, k^3)
		if i%4096 == 0 {
			// Spot-check a prefix.
			for _, kk := range keys[:min(i, 64)] {
				if v, ok := d.Search(kk); !ok || v != kk^3 {
					t.Fatalf("at %d: lost %d", i, kk)
				}
			}
		}
	}
	for _, k := range keys {
		if v, ok := d.Search(k); !ok || v != k^3 {
			t.Fatalf("final: Search(%d) = (%d,%v)", k, v, ok)
		}
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
}
