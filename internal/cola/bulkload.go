package cola

import (
	"sort"

	"repro/internal/core"
)

// InsertBatch implements core.BatchInserter. On an empty structure it
// takes the BulkLoad fast path — sort once, install the whole batch
// into one level, distribute pointers. On a non-empty structure it
// falls back to the ordinary insert loop (semantically identical:
// later duplicates win either way). The caller's slice is never
// mutated.
func (c *GCOLA) InsertBatch(elems []core.Element) {
	if len(elems) == 0 {
		return
	}
	empty := true
	for l := range c.levels {
		if !c.levels[l].empty() {
			empty = false
			break
		}
	}
	if empty {
		cp := make([]core.Element, len(elems))
		copy(cp, elems)
		c.BulkLoad(cp)
		// BulkLoad counts Moves; keep the Inserts counter meaning "elements
		// ingested" so batch and loop ingestion report comparably.
		c.stats.Inserts += uint64(len(elems))
		return
	}
	for _, e := range elems {
		c.Insert(e.Key, e.Value)
	}
}

var _ core.BatchInserter = (*GCOLA)(nil)

// BulkLoad replaces the structure's contents with the given elements in
// one pass: the elements are sorted (in place), deduplicated newest-wins
// (later slice entries win), installed into the smallest level that
// holds them, and lookahead pointers are distributed. This is the
// one-shot analogue of the paper's B-tree construction note ("we first
// sorted the N random elements then inserted them") and costs O(sort)
// CPU plus one sequential write of the target level — amortized O(1/B)
// transfers per element, a log N factor below inserting one by one.
//
// The structure must be empty; BulkLoad panics otherwise.
func (c *GCOLA) BulkLoad(elems []core.Element) {
	for l := range c.levels {
		if !c.levels[l].empty() {
			panic("cola: BulkLoad into a non-empty structure")
		}
	}
	if len(elems) == 0 {
		return
	}
	sort.SliceStable(elems, func(i, j int) bool { return elems[i].Key < elems[j].Key })
	// Deduplicate: the stable sort keeps insertion order within equal
	// keys, so the last of each run is the newest.
	out := make([]entry, 0, len(elems))
	for i, e := range elems {
		if i+1 < len(elems) && elems[i+1].Key == e.Key {
			continue
		}
		out = append(out, entry{key: e.Key, val: e.Value, kind: kindReal, left: -1})
	}

	t := 0
	for c.realCapacity(t) < len(out) {
		t++
	}
	c.ensureLevel(t)
	if c.spilledLevel(t) {
		c.installLevelSpilled(t, out)
	} else {
		c.installLevel(t, out)
	}
	c.chargeWrite(t, c.levels[t].start, len(out))
	c.stats.Moves += uint64(len(out))
	c.n = len(out)
	c.distributePointers(t)
}
