package cola

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dam"
	"repro/internal/workload"
)

// deamortizedDicts builds one of each deamortized variant for table tests.
func deamortizedDicts(space func(string) *dam.Space) map[string]core.Dictionary {
	sp := func(name string) *dam.Space {
		if space == nil {
			return nil
		}
		return space(name)
	}
	return map[string]core.Dictionary{
		"basic":     NewDeamortized(sp("deam-basic")),
		"lookahead": NewDeamortizedLookahead(sp("deam-la")),
	}
}

func TestDeamortizedInsertSearch(t *testing.T) {
	for name, d := range deamortizedDicts(nil) {
		t.Run(name, func(t *testing.T) {
			const n = 1 << 12
			seq := workload.NewRandomUnique(21)
			keys := workload.Take(seq, n)
			for i, k := range keys {
				d.Insert(k, k^42)
				if d.Len() != i+1 {
					t.Fatalf("Len after %d inserts = %d", i+1, d.Len())
				}
			}
			for _, k := range keys {
				if v, ok := d.Search(k); !ok || v != k^42 {
					t.Fatalf("Search(%d) = (%d,%v), want (%d,true)", k, v, ok, k^42)
				}
			}
			if _, ok := d.Search(uint64(1) << 62); ok {
				t.Fatal("found a key that was never inserted")
			}
		})
	}
}

func TestDeamortizedSortedOrders(t *testing.T) {
	const n = 1 << 11
	for name, mk := range map[string]func() core.Dictionary{
		"basic":     func() core.Dictionary { return NewDeamortized(nil) },
		"lookahead": func() core.Dictionary { return NewDeamortizedLookahead(nil) },
	} {
		for _, dir := range []string{"asc", "desc"} {
			d := mk()
			for i := 0; i < n; i++ {
				k := uint64(i)
				if dir == "desc" {
					k = uint64(n - 1 - i)
				}
				d.Insert(k, k)
			}
			for k := uint64(0); k < n; k++ {
				if _, ok := d.Search(k); !ok {
					t.Fatalf("%s/%s: lost key %d", name, dir, k)
				}
			}
		}
	}
}

func TestDeamortizedUpdateSemantics(t *testing.T) {
	for name, d := range deamortizedDicts(nil) {
		t.Run(name, func(t *testing.T) {
			d.Insert(7, 1)
			for i := uint64(0); i < 500; i++ {
				d.Insert(1000+i, i)
			}
			d.Insert(7, 2)
			if v, ok := d.Search(7); !ok || v != 2 {
				t.Fatalf("Search(7) = (%d,%v), want (2,true)", v, ok)
			}
			for i := uint64(0); i < 500; i++ {
				d.Insert(5000+i, i)
			}
			if v, ok := d.Search(7); !ok || v != 2 {
				t.Fatalf("after merges Search(7) = (%d,%v), want (2,true)", v, ok)
			}
		})
	}
}

// TestDeamortizedWorstCaseMoves verifies Theorem 22/24's headline: the
// worst-case number of item moves per insert is O(log N), in contrast
// with the amortized COLA whose worst single insert moves Omega(N) items.
func TestDeamortizedWorstCaseMoves(t *testing.T) {
	const n = 1 << 14 // 16384 inserts => log2 N = 14
	check := func(t *testing.T, maxMoves uint64, levels int) {
		t.Helper()
		// Budget per insert is linear in the level count; allow the
		// constant from the implementation (4k+8) plus slack.
		bound := uint64(6*levels + 16)
		if maxMoves == 0 {
			t.Fatal("MaxMoves = 0; instrumentation broken")
		}
		if maxMoves > bound {
			t.Fatalf("worst-case moves per insert = %d, want <= %d (levels=%d)", maxMoves, bound, levels)
		}
	}
	t.Run("basic", func(t *testing.T) {
		d := NewDeamortized(nil)
		seq := workload.NewRandomUnique(31)
		for i := 0; i < n; i++ {
			k := seq.Next()
			d.Insert(k, k)
		}
		check(t, d.Stats().MaxMoves, d.Levels())
	})
	t.Run("lookahead", func(t *testing.T) {
		d := NewDeamortizedLookahead(nil)
		seq := workload.NewRandomUnique(32)
		for i := 0; i < n; i++ {
			k := seq.Next()
			d.Insert(k, k)
		}
		check(t, d.Stats().MaxMoves, d.Levels())
	})
	// Contrast: the amortized COLA's worst insert moves Omega(N) items.
	t.Run("amortized-contrast", func(t *testing.T) {
		c := NewCOLA(nil)
		seq := workload.NewRandomUnique(33)
		for i := 0; i < n; i++ {
			k := seq.Next()
			c.Insert(k, k)
		}
		if c.Stats().MaxMoves < n/4 {
			t.Fatalf("amortized COLA MaxMoves = %d; expected a near-full rebuild (>= %d)",
				c.Stats().MaxMoves, n/4)
		}
	})
}

// TestLemma21NoAdjacentUnsafeLevels drives the basic deamortized COLA and
// checks after every insert that no two adjacent levels are unsafe.
func TestLemma21NoAdjacentUnsafeLevels(t *testing.T) {
	d := NewDeamortized(nil)
	seq := workload.NewRandomUnique(41)
	for i := 0; i < 1<<13; i++ {
		k := seq.Next()
		d.Insert(k, k)
		flags := d.unsafeLevels()
		for l := 0; l+1 < len(flags); l++ {
			if flags[l] && flags[l+1] {
				t.Fatalf("insert %d: levels %d and %d simultaneously unsafe", i, l, l+1)
			}
		}
	}
}

func TestDeamortizedLookaheadChainInvariant(t *testing.T) {
	// The shadow/visible protocol must never leave a level with three
	// visible arrays, and spent arrays must always come in pairs.
	d := NewDeamortizedLookahead(nil)
	seq := workload.NewRandomUnique(51)
	for i := 0; i < 1<<13; i++ {
		k := seq.Next()
		d.Insert(k, k)
		for lvIdx := range d.levels {
			lv := &d.levels[lvIdx]
			visible, spent := 0, 0
			for s := range lv.slots {
				if lv.slots[s].visible {
					visible++
				}
				if lv.slots[s].spent {
					spent++
				}
			}
			if visible > 3 {
				t.Fatalf("insert %d level %d: %d visible arrays", i, lvIdx, visible)
			}
			if spent != 0 && spent != 2 {
				t.Fatalf("insert %d level %d: %d spent arrays (must pair)", i, lvIdx, spent)
			}
		}
	}
}

func TestDeamortizedRange(t *testing.T) {
	for name, d := range deamortizedDicts(nil) {
		t.Run(name, func(t *testing.T) {
			const n = 2000
			for i := uint64(0); i < n; i += 2 {
				d.Insert(i, i*3)
			}
			var keys []uint64
			d.Range(100, 120, func(e core.Element) bool {
				keys = append(keys, e.Key)
				if e.Value != e.Key*3 {
					t.Fatalf("value for %d = %d", e.Key, e.Value)
				}
				return true
			})
			want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
			if len(keys) != len(want) {
				t.Fatalf("keys = %v, want %v", keys, want)
			}
			for i := range want {
				if keys[i] != want[i] {
					t.Fatalf("keys = %v, want %v", keys, want)
				}
			}
			// Early stop.
			count := 0
			d.Range(0, n, func(core.Element) bool { count++; return count < 3 })
			if count != 3 {
				t.Fatalf("early stop visited %d", count)
			}
		})
	}
}

// TestDeamortizedDifferential cross-checks both deamortized variants
// against the map oracle under a random insert/search stream (the
// deamortized structures support inserts and searches, the paper's
// scope).
func TestDeamortizedDifferential(t *testing.T) {
	for name, d := range deamortizedDicts(nil) {
		t.Run(name, func(t *testing.T) {
			ref := newRef()
			rng := workload.NewRNG(61)
			for i := 0; i < 6000; i++ {
				k := rng.Uint64() % 512
				if rng.Uint64()%3 != 0 {
					v := rng.Uint64()
					d.Insert(k, v)
					ref.Insert(k, v)
				} else {
					gv, gok := d.Search(k)
					wv, wok := ref.Search(k)
					if gok != wok || (gok && gv != wv) {
						t.Fatalf("op %d: Search(%d) = (%d,%v), want (%d,%v)", i, k, gv, gok, wv, wok)
					}
				}
			}
			for k := uint64(0); k < 512; k++ {
				gv, gok := d.Search(k)
				wv, wok := ref.Search(k)
				if gok != wok || (gok && gv != wv) {
					t.Fatalf("final Search(%d) = (%d,%v), want (%d,%v)", k, gv, gok, wv, wok)
				}
			}
		})
	}
}

// TestDeamortizedAmortizedTransfersStillLogOverB checks Theorem 22's
// second half: deamortization does not degrade the amortized transfer
// bound.
func TestDeamortizedAmortizedTransfersStillLogOverB(t *testing.T) {
	store := dam.NewStore(4096, 1<<17)
	d := NewDeamortized(store.Space("deam"))
	const n = 1 << 15
	seq := workload.NewRandomUnique(71)
	for i := 0; i < n; i++ {
		k := seq.Next()
		d.Insert(k, k)
	}
	perInsert := float64(store.Transfers()) / float64(n)
	elemsPerBlock := 4096.0 / 32.0
	bound := 15.0 / elemsPerBlock * 12 // log2 N / B with generous slack
	if perInsert > bound {
		t.Fatalf("amortized transfers/insert = %v, want <= %v", perInsert, bound)
	}
}

func TestDeamortizedEmpty(t *testing.T) {
	for name, d := range deamortizedDicts(nil) {
		t.Run(name, func(t *testing.T) {
			if _, ok := d.Search(1); ok {
				t.Fatal("empty search found a key")
			}
			if d.Len() != 0 {
				t.Fatal("empty Len != 0")
			}
			d.Range(0, ^uint64(0), func(core.Element) bool {
				t.Fatal("empty range yielded")
				return false
			})
		})
	}
}
