//go:build !race

package cola

const raceEnabled = false
