package cola

import (
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dam"
)

// Deamortized is the partially deamortized basic COLA of Theorem 22:
// level k holds two arrays of capacity 2^k; a level with both arrays
// occupied is "unsafe" and its arrays are merged incrementally into an
// empty array of level k+1, moving at most m = 2k+2 items per insert
// (k = number of levels), which bounds the worst case by O(log N) moves
// while the amortized cost stays O((log N)/B) transfers.
//
// Search correctness during merges follows the conservative discipline
// also used by the lookahead deamortization: a merge's destination stays
// invisible until the merge completes, at which point the destination
// becomes visible and both sources empty atomically. Queries therefore
// never observe a half-merged array.
//
// Update semantics: arrays at one level hold disjoint, adjacent dyadic
// blocks of the insert sequence, so the array completed later is
// elementwise newer; duplicate keys resolve to the newer array's value
// and the older copy is dropped during merges.
type Deamortized struct {
	levels []dlevel
	n      int
	epoch  uint64 // completion-order stamp generator
	stats  core.Stats
	space  *dam.Space

	// offsets[k] is the byte offset of level k's region (two arrays of
	// capacity 2^k each) in the DAM space.
	offsets []int64
}

// dlevel holds two array slots plus this level's incremental merge state.
type dlevel struct {
	arr   [2]darray
	merge *dmerge // non-nil while this level's arrays are being merged down
}

type darray struct {
	data  []core.Element // sorted; len = occupancy, cap = 2^k
	epoch uint64         // completion stamp; higher = newer
}

func (a *darray) occupied() bool { return len(a.data) > 0 }

// dmerge tracks an in-progress merge of level k's two arrays into a
// destination slot at level k+1. newer/older identify the source slots by
// epoch so duplicate keys resolve correctly.
type dmerge struct {
	newer, older int // source slot indices within this level
	i, j         int // read positions into newer/older
	dstSlot      int // destination slot index at level k+1
	out          []core.Element
}

var (
	_ core.Dictionary = (*Deamortized)(nil)
	_ core.Statser    = (*Deamortized)(nil)
)

// NewDeamortized returns an empty deamortized basic COLA charging its
// traffic to space (nil disables accounting).
func NewDeamortized(space *dam.Space) *Deamortized {
	return &Deamortized{space: space}
}

// Len implements core.Dictionary. The live count is exact for distinct
// keys; duplicate inserts reconcile as merges drop shadowed copies.
func (d *Deamortized) Len() int { return d.n }

// Stats implements core.Statser.
func (d *Deamortized) Stats() core.Stats { return d.stats }

// Levels reports the number of allocated levels.
func (d *Deamortized) Levels() int { return len(d.levels) }

func (d *Deamortized) ensureLevel(k int) {
	for len(d.levels) <= k {
		idx := len(d.levels)
		var off int64
		if idx > 0 {
			off = d.offsets[idx-1] + 2*int64(1<<(idx-1))*core.ElementBytes
		}
		d.levels = append(d.levels, dlevel{})
		d.offsets = append(d.offsets, off)
	}
}

// slotOffset is the byte offset of cell i of slot s at level k.
func (d *Deamortized) slotOffset(k, s, i int) int64 {
	return d.offsets[k] + int64(s)*int64(1<<k)*core.ElementBytes + int64(i)*core.ElementBytes
}

func (d *Deamortized) chargeRead(k, s, i, n int) {
	if n > 0 {
		d.space.Read(d.slotOffset(k, s, i), int64(n)*core.ElementBytes)
	}
}

func (d *Deamortized) chargeWrite(k, s, i, n int) {
	if n > 0 {
		d.space.Write(d.slotOffset(k, s, i), int64(n)*core.ElementBytes)
	}
}

// Insert implements core.Dictionary: place the item in level 0, then
// drain unsafe levels left to right under the 2k+2 move budget.
func (d *Deamortized) Insert(key, value uint64) {
	d.stats.Inserts++
	d.ensureLevel(0)
	lv0 := &d.levels[0]
	slot := -1
	for s := 0; s < 2; s++ {
		if !lv0.arr[s].occupied() {
			slot = s
			break
		}
	}
	if slot < 0 {
		// Lemma 21 guarantees level 0 drains every insert; reaching here
		// means the budget arithmetic is broken.
		panic("cola: deamortized level 0 overflow")
	}
	if cap(lv0.arr[slot].data) < 1 {
		lv0.arr[slot].data = make([]core.Element, 0, 1)
	}
	d.epoch++
	lv0.arr[slot].data = append(lv0.arr[slot].data[:0], core.Element{Key: key, Value: value})
	lv0.arr[slot].epoch = d.epoch
	d.chargeWrite(0, slot, 0, 1)
	d.n++

	budget := 2*len(d.levels) + 2
	moved := d.drain(budget)
	if uint64(moved) > d.stats.MaxMoves {
		d.stats.MaxMoves = uint64(moved)
	}
}

// drain scans levels left to right, starting or continuing merges from
// unsafe levels, moving at most budget items in total. It returns the
// number of items moved.
func (d *Deamortized) drain(budget int) int {
	moved := 0
	for k := 0; k < len(d.levels) && moved < budget; k++ {
		lv := &d.levels[k]
		if lv.merge == nil {
			if !(lv.arr[0].occupied() && lv.arr[1].occupied()) {
				continue // safe
			}
			d.startMerge(k)
		}
		moved += d.stepMerge(k, budget-moved)
	}
	d.stats.Moves += uint64(moved)
	return moved
}

// startMerge begins merging level k's two arrays into an empty slot of
// level k+1.
func (d *Deamortized) startMerge(k int) {
	d.ensureLevel(k + 1)
	lv := &d.levels[k]
	next := &d.levels[k+1]

	dst := -1
	for s := 0; s < 2; s++ {
		if !next.arr[s].occupied() && !d.isMergeDestination(k+1, s) {
			dst = s
			break
		}
	}
	if dst < 0 {
		// Violates "two adjacent levels are never simultaneously unsafe"
		// (Lemma 21); the budget must be set too low.
		panic("cola: no free destination array for deamortized merge")
	}
	newer, older := 0, 1
	if lv.arr[older].epoch > lv.arr[newer].epoch {
		newer, older = older, newer
	}
	capNext := 1 << (k + 1)
	lv.merge = &dmerge{
		newer:   newer,
		older:   older,
		dstSlot: dst,
		out:     make([]core.Element, 0, capNext),
	}
}

// isMergeDestination reports whether slot s of level k is the destination
// of the merge in progress at level k-1.
func (d *Deamortized) isMergeDestination(k, s int) bool {
	if k == 0 {
		return false
	}
	m := d.levels[k-1].merge
	return m != nil && m.dstSlot == s
}

// stepMerge advances level k's merge by at most budget item moves and
// returns the number moved. On completion the destination becomes
// visible and the sources empty.
func (d *Deamortized) stepMerge(k, budget int) int {
	lv := &d.levels[k]
	m := lv.merge
	a := lv.arr[m.newer].data
	b := lv.arr[m.older].data
	moved := 0
	for moved < budget && (m.i < len(a) || m.j < len(b)) {
		switch {
		case m.i >= len(a):
			m.out = append(m.out, b[m.j])
			d.chargeRead(k, m.older, m.j, 1)
			m.j++
		case m.j >= len(b):
			m.out = append(m.out, a[m.i])
			d.chargeRead(k, m.newer, m.i, 1)
			m.i++
		case a[m.i].Key < b[m.j].Key:
			m.out = append(m.out, a[m.i])
			d.chargeRead(k, m.newer, m.i, 1)
			m.i++
		case a[m.i].Key > b[m.j].Key:
			m.out = append(m.out, b[m.j])
			d.chargeRead(k, m.older, m.j, 1)
			m.j++
		default: // duplicate key: newer wins, older dropped
			m.out = append(m.out, a[m.i])
			d.chargeRead(k, m.newer, m.i, 1)
			d.chargeRead(k, m.older, m.j, 1)
			m.i++
			m.j++
			d.n--
		}
		d.chargeWrite(k+1, m.dstSlot, len(m.out)-1, 1)
		moved++
	}
	if m.i >= len(a) && m.j >= len(b) {
		// Complete: flip visibility atomically.
		d.epoch++
		next := &d.levels[k+1]
		next.arr[m.dstSlot] = darray{data: m.out, epoch: d.epoch}
		lv.arr[0].data = lv.arr[0].data[:0]
		lv.arr[1].data = lv.arr[1].data[:0]
		lv.merge = nil
	}
	return moved
}

// Search implements core.Dictionary: binary search every visible array,
// newest first within each level (levels themselves run newest to
// oldest). This is the basic COLA's O(log^2 N) probe profile.
func (d *Deamortized) Search(key uint64) (uint64, bool) {
	d.stats.Searches++
	for k := range d.levels {
		lv := &d.levels[k]
		first, second := 0, 1
		if lv.arr[second].epoch > lv.arr[first].epoch {
			first, second = second, first
		}
		for _, s := range [2]int{first, second} {
			if v, ok := d.searchArray(k, s, key); ok {
				return v, true
			}
		}
	}
	return 0, false
}

func (d *Deamortized) searchArray(k, s int, key uint64) (uint64, bool) {
	data := d.levels[k].arr[s].data
	if len(data) == 0 {
		return 0, false
	}
	// Probes are charged at their actual (key-dependent) positions so
	// the cache sees the real divergent probe paths of distinct
	// searches; see GCOLA.lowerBound.
	i := sort.Search(len(data), func(i int) bool {
		d.chargeRead(k, s, i, 1)
		return data[i].Key >= key
	})
	if i < len(data) && data[i].Key == key {
		return data[i].Value, true
	}
	return 0, false
}

// damCursor is one occupied array's position in a Range merge; the
// per-call cursor slices are pooled (see damCursorPool) like
// GCOLA.Range's.
type damCursor struct {
	data  []core.Element
	pos   int
	level int
	epoch uint64
}

type damCursorBuf struct {
	c []damCursor
}

var damCursorPool = sync.Pool{New: func() any { return new(damCursorBuf) }}

// Range implements core.Dictionary by k-way merging all visible arrays.
// Duplicate keys resolve exactly as Search does: the shallower level
// wins (a fresh insert sits in level 0 and shadows every merged copy
// below it), and within a level the higher-epoch array wins. Epochs are
// NOT comparable across levels — a deep array's epoch exceeds level 0's
// even though level 0 holds the newer entry.
func (d *Deamortized) Range(lo, hi uint64, fn func(core.Element) bool) {
	cb := damCursorPool.Get().(*damCursorBuf)
	defer func() {
		cb.c = cb.c[:0]
		damCursorPool.Put(cb)
	}()
	cursors := cb.c[:0]
	for k := range d.levels {
		for s := 0; s < 2; s++ {
			a := &d.levels[k].arr[s]
			if !a.occupied() {
				continue
			}
			p := sort.Search(len(a.data), func(i int) bool {
				d.chargeRead(k, s, i, 1)
				return a.data[i].Key >= lo
			})
			if p < len(a.data) {
				cursors = append(cursors, damCursor{data: a.data, pos: p, level: k, epoch: a.epoch})
			}
		}
	}
	cb.c = cursors
	newer := func(a, b *damCursor) bool {
		if a.level != b.level {
			return a.level < b.level
		}
		return a.epoch > b.epoch
	}
	for {
		best := -1
		var bestKey uint64
		for i := range cursors {
			cur := &cursors[i]
			if cur.pos >= len(cur.data) {
				continue
			}
			k := cur.data[cur.pos].Key
			if k > hi {
				continue
			}
			if best < 0 || k < bestKey ||
				(k == bestKey && newer(cur, &cursors[best])) {
				best = i
				bestKey = k
			}
		}
		if best < 0 {
			return
		}
		e := cursors[best].data[cursors[best].pos]
		for i := range cursors {
			cur := &cursors[i]
			for cur.pos < len(cur.data) && cur.data[cur.pos].Key == bestKey {
				cur.pos++
			}
		}
		if !fn(e) {
			return
		}
	}
}

// unsafeLevels reports which levels are currently unsafe (both arrays
// occupied or mid-merge); tests use it to verify Lemma 21's invariant
// that no two adjacent levels are simultaneously unsafe.
func (d *Deamortized) unsafeLevels() []bool {
	out := make([]bool, len(d.levels))
	for k := range d.levels {
		lv := &d.levels[k]
		out[k] = lv.merge != nil || (lv.arr[0].occupied() && lv.arr[1].occupied())
	}
	return out
}
