package cola

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Snapshot format: a little-endian binary stream
//
//	magic "COLA" | version u32 | growth u32 | density f64-bits u64 |
//	n i64 | levelCount u32 |
//	per level: start u32 | used u32 | used cells (key u64 | val u64 |
//	            ptr i32 | left i32 | kind u8)
//
// Lookahead entries are persisted verbatim, so a restored structure has
// identical layout, occupancy, and search behaviour — including
// transfer-count behaviour under the same DAM store parameters.
const (
	snapshotMagic   = "COLA"
	snapshotVersion = 1
)

// WriteTo serializes the structure. It implements io.WriterTo.
func (c *GCOLA) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return n, err
	}
	n += int64(len(snapshotMagic))
	if err := write(uint32(snapshotVersion)); err != nil {
		return n, err
	}
	if err := write(uint32(c.opt.Growth)); err != nil {
		return n, err
	}
	if err := write(uint64(floatBits(c.opt.PointerDensity))); err != nil {
		return n, err
	}
	if err := write(int64(c.n)); err != nil {
		return n, err
	}
	if err := write(uint32(len(c.levels))); err != nil {
		return n, err
	}
	for l := range c.levels {
		lv := &c.levels[l]
		if err := write(uint32(lv.start)); err != nil {
			return n, err
		}
		if err := write(uint32(lv.used())); err != nil {
			return n, err
		}
		for i := lv.start; i < len(lv.data); i++ {
			e := lv.data[i]
			if err := write(e.key); err != nil {
				return n, err
			}
			if err := write(e.val); err != nil {
				return n, err
			}
			if err := write(e.ptr); err != nil {
				return n, err
			}
			if err := write(e.left); err != nil {
				return n, err
			}
			if err := write(e.kind); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadFrom restores a snapshot into an empty structure created with the
// same Options (growth and pointer density are verified against the
// stream). It implements io.ReaderFrom.
func (c *GCOLA) ReadFrom(r io.Reader) (int64, error) {
	for l := range c.levels {
		if !c.levels[l].empty() {
			return 0, errors.New("cola: ReadFrom into a non-empty structure")
		}
	}
	br := bufio.NewReader(r)
	var n int64
	read := func(v any) error {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return n, err
	}
	n += int64(len(magic))
	if string(magic) != snapshotMagic {
		return n, errors.New("cola: bad snapshot magic")
	}
	var version, growth uint32
	var densityBits uint64
	var live int64
	var levelCount uint32
	if err := read(&version); err != nil {
		return n, err
	}
	if version != snapshotVersion {
		return n, fmt.Errorf("cola: unsupported snapshot version %d", version)
	}
	if err := read(&growth); err != nil {
		return n, err
	}
	if int(growth) != c.opt.Growth {
		return n, fmt.Errorf("cola: snapshot growth %d, structure configured with %d", growth, c.opt.Growth)
	}
	if err := read(&densityBits); err != nil {
		return n, err
	}
	if bitsFloat(densityBits) != c.opt.PointerDensity {
		return n, fmt.Errorf("cola: snapshot pointer density %v, structure configured with %v",
			bitsFloat(densityBits), c.opt.PointerDensity)
	}
	if err := read(&live); err != nil {
		return n, err
	}
	if err := read(&levelCount); err != nil {
		return n, err
	}
	c.ensureLevel(int(levelCount) - 1)
	for l := 0; l < int(levelCount); l++ {
		var start, used uint32
		if err := read(&start); err != nil {
			return n, err
		}
		if err := read(&used); err != nil {
			return n, err
		}
		lv := &c.levels[l]
		if int(start)+int(used) != len(lv.data) {
			return n, fmt.Errorf("cola: level %d occupancy %d+%d does not fit capacity %d",
				l, start, used, len(lv.data))
		}
		lv.start = int(start)
		lv.real = 0
		lv.la = 0
		for i := lv.start; i < len(lv.data); i++ {
			e := &lv.data[i]
			if err := read(&e.key); err != nil {
				return n, err
			}
			if err := read(&e.val); err != nil {
				return n, err
			}
			if err := read(&e.ptr); err != nil {
				return n, err
			}
			if err := read(&e.left); err != nil {
				return n, err
			}
			if err := read(&e.kind); err != nil {
				return n, err
			}
			switch e.kind {
			case kindLookahead:
				lv.la++
			case kindReal, kindTombstone:
				lv.real++
			default:
				return n, fmt.Errorf("cola: corrupt snapshot: entry kind %d", e.kind)
			}
		}
	}
	c.n = int(live)
	return n, nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
