package cola

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/extmem"
)

// Snapshot format (the GCOLA payload, a little-endian binary stream):
//
//	magic "COLA" | version u32 | growth u32 | density f64-bits u64 |
//	n i64 | levelCount u32 |
//	per level: start u32 | used u32 | used cells (key u64 | val u64 |
//	            ptr i32 | left i32 | kind u8)
//
// Lookahead entries are persisted verbatim, so a restored structure has
// identical layout, occupancy, and search behaviour — including
// transfer-count behaviour under the same DAM store parameters. This is
// the repository's one physical codec; see internal/core/snapshot.go
// for the physical/logical distinction.
const (
	snapshotMagic   = "COLA"
	snapshotVersion = 1
)

// Typed decode failures, aliased from core so errors.Is matches across
// the whole persistence stack (container, payloads, WAL).
var (
	ErrBadMagic   = core.ErrBadMagic
	ErrBadVersion = core.ErrBadVersion
	ErrCorrupt    = core.ErrCorrupt
)

// Decode limits. A level claiming more cells than maxSnapshotLevelCells
// (or a deeper ladder than maxSnapshotLevels) is rejected before any
// allocation. The cell ceiling must cover the largest level a supported
// structure produces: at the harness's -logn ceiling of 2^28 elements
// with growth 2, the top level holds 2^28 real cells plus up to
// 0.5 * 2^28 lookahead cells (the maximum pointer density) — about
// 1.5 * 2^28 = 4.0e8 < 1<<29. WriteTo enforces the same ceiling, so a
// snapshot that saves is always loadable; a forged level count beyond
// it fails before driving the hundreds-of-gigabyte make a deep-ladder
// level would demand. TestSnapshotLevelLimitCoversHarnessEnvelope pins
// the arithmetic.
const (
	maxSnapshotLevels     = 48
	maxSnapshotLevelCells = 1 << 29
)

var _ core.Snapshotter = (*GCOLA)(nil)

// entryBytes is the wire size of one persisted cell.
const entryBytes = 8 + 8 + 4 + 4 + 1

// WriteTo serializes the structure. It implements io.WriterTo.
//
//repro:allow damcharge snapshot serialization is a whole-structure sequential pass outside the per-op DAM cost model
func (c *GCOLA) WriteTo(w io.Writer) (int64, error) {
	// Mirror ReadFrom's decode ceilings so anything WriteTo emits is
	// guaranteed loadable: a structure beyond the supported envelope
	// fails the save loudly instead of producing a snapshot every
	// future load rejects as corrupt.
	if len(c.levels) > maxSnapshotLevels {
		return 0, fmt.Errorf("cola: %d levels exceed the snapshot format's %d-level limit", len(c.levels), maxSnapshotLevels)
	}
	for l := range c.levels {
		if c.levels[l].cells > maxSnapshotLevelCells {
			return 0, fmt.Errorf("cola: level %d holds %d cells, beyond the snapshot format's %d-cell limit",
				l, c.levels[l].cells, maxSnapshotLevelCells)
		}
	}
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return n, err
	}
	n += int64(len(snapshotMagic))
	if err := write(uint32(snapshotVersion)); err != nil {
		return n, err
	}
	if err := write(uint32(c.opt.Growth)); err != nil {
		return n, err
	}
	if err := write(uint64(floatBits(c.opt.PointerDensity))); err != nil {
		return n, err
	}
	if err := write(int64(c.n)); err != nil {
		return n, err
	}
	if err := write(uint32(len(c.levels))); err != nil {
		return n, err
	}
	writeEntry := func(e entry) error {
		if err := write(e.key); err != nil {
			return err
		}
		if err := write(e.val); err != nil {
			return err
		}
		if err := write(e.ptr); err != nil {
			return err
		}
		if err := write(e.left); err != nil {
			return err
		}
		return write(e.kind)
	}
	for l := range c.levels {
		lv := &c.levels[l]
		if err := write(uint32(lv.start)); err != nil {
			return n, err
		}
		if err := write(uint32(lv.used())); err != nil {
			return n, err
		}
		if lv.ext != nil {
			// A spilled level serializes straight from its chunk image,
			// one sequential pass, never materialized in RAM; the emitted
			// bytes are identical to the RAM path's.
			rd := lv.ext.NewReader(0)
			var raw [extmem.CellBytes]byte
			for rd.Remaining() > 0 {
				if err := rd.Next(raw[:]); err != nil {
					return n, fmt.Errorf("cola: level %d spilled snapshot read: %w", l, err)
				}
				if err := writeEntry(decodeCell(&raw)); err != nil {
					return n, err
				}
			}
			continue
		}
		for i := lv.start; i < len(lv.data); i++ {
			if err := writeEntry(lv.data[i]); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadFrom restores a snapshot into an empty structure created with the
// same Options (growth and pointer density are verified against the
// stream). It implements io.ReaderFrom.
//
// Decoding is defensive: magic, version, level occupancy, entry kinds,
// per-level key order, and lookahead pointer targets are all validated,
// failures are wrapped ErrBadMagic / ErrBadVersion / ErrCorrupt (or a
// plain configuration-mismatch error for a snapshot of a differently
// parameterized structure), and the receiver is mutated only after the
// entire stream has decoded — a failed ReadFrom leaves it empty and
// usable.
//
//repro:allow damcharge snapshot deserialization is a whole-structure sequential pass outside the per-op DAM cost model
func (c *GCOLA) ReadFrom(r io.Reader) (int64, error) {
	for l := range c.levels {
		if !c.levels[l].empty() {
			return 0, errors.New("cola: ReadFrom into a non-empty structure")
		}
	}
	br := bufio.NewReader(r)
	var n int64
	readFull := func(b []byte) error {
		if _, err := io.ReadFull(br, b); err != nil {
			return fmt.Errorf("cola: snapshot truncated at byte %d: %w", n, ErrCorrupt)
		}
		n += int64(len(b))
		return nil
	}
	var w8 [8]byte
	readU32 := func() (uint32, error) {
		err := readFull(w8[:4])
		return binary.LittleEndian.Uint32(w8[:4]), err
	}
	readU64 := func() (uint64, error) {
		err := readFull(w8[:8])
		return binary.LittleEndian.Uint64(w8[:8]), err
	}

	magic := make([]byte, len(snapshotMagic))
	if err := readFull(magic); err != nil {
		return n, err
	}
	if string(magic) != snapshotMagic {
		return n, fmt.Errorf("cola: snapshot magic %q, want %q: %w", magic, snapshotMagic, ErrBadMagic)
	}
	version, err := readU32()
	if err != nil {
		return n, err
	}
	if version != snapshotVersion {
		return n, fmt.Errorf("cola: snapshot version %d, this build reads %d: %w",
			version, snapshotVersion, ErrBadVersion)
	}
	growth, err := readU32()
	if err != nil {
		return n, err
	}
	if int(growth) != c.opt.Growth {
		return n, fmt.Errorf("cola: snapshot growth %d, structure configured with %d", growth, c.opt.Growth)
	}
	densityBits, err := readU64()
	if err != nil {
		return n, err
	}
	if bitsFloat(densityBits) != c.opt.PointerDensity {
		return n, fmt.Errorf("cola: snapshot pointer density %v, structure configured with %v",
			bitsFloat(densityBits), c.opt.PointerDensity)
	}
	liveBits, err := readU64()
	if err != nil {
		return n, err
	}
	live := int64(liveBits)
	levelCount, err := readU32()
	if err != nil {
		return n, err
	}
	if levelCount > maxSnapshotLevels {
		return n, fmt.Errorf("cola: snapshot claims %d levels, limit %d: %w",
			levelCount, maxSnapshotLevels, ErrCorrupt)
	}

	// Decode into fresh storage; the receiver is untouched until commit.
	// Spilled levels decode straight into chunk images without ever
	// materializing in RAM; on any failure the deferred cleanup aborts
	// the in-flight writer and removes every image committed so far, so
	// a failed ReadFrom leaves no spill files behind either.
	var (
		pendingWriter *extmem.LevelWriter
		committedIDs  []int
		committedOK   bool
	)
	defer func() {
		if committedOK {
			return
		}
		if pendingWriter != nil {
			pendingWriter.Abort()
		}
		for _, id := range committedIDs {
			_ = c.ext.RemoveLevel(id)
		}
	}()
	levels := make([]level, 0, levelCount)
	offsets := make([]int64, 0, levelCount)
	totalReal := 0
	var cell [entryBytes]byte
	for l := 0; l < int(levelCount); l++ {
		start, err := readU32()
		if err != nil {
			return n, err
		}
		used, err := readU32()
		if err != nil {
			return n, err
		}
		capTotal := c.totalCapacity(l)
		if capTotal > maxSnapshotLevelCells {
			return n, fmt.Errorf("cola: level %d capacity %d exceeds decode limit %d: %w",
				l, capTotal, maxSnapshotLevelCells, ErrCorrupt)
		}
		// Validate occupancy BEFORE allocating level storage, so a lying
		// header cannot drive an allocation the stream does not back.
		if int64(start)+int64(used) != int64(capTotal) {
			return n, fmt.Errorf("cola: level %d occupancy %d+%d does not fit capacity %d: %w",
				l, start, used, capTotal, ErrCorrupt)
		}
		lv := level{start: int(start), cells: capTotal}
		spilled := c.spilledLevel(l)
		if !spilled {
			lv.data = make([]entry, capTotal)
		} else if used > 0 {
			w, werr := c.ext.NewLevelWriter(l)
			if werr != nil {
				return n, fmt.Errorf("cola: level %d spill writer during load: %w", l, werr)
			}
			pendingWriter = w
		}
		// Lookahead entries point into level l+1, whose geometry is
		// deterministic even though it is not decoded yet. The deepest
		// level can carry none (pointers are only distributed into
		// levels with an allocated next level), so its bound is zero and
		// every cell there must have left == -1.
		nextCap := int32(0)
		if l < int(levelCount)-1 {
			nextCap = int32(min(c.totalCapacity(l+1), math.MaxInt32))
		}
		prevKey := uint64(0)
		var raw [extmem.CellBytes]byte
		for i := lv.start; i < lv.cells; i++ {
			if err := readFull(cell[:]); err != nil {
				return n, err
			}
			var e entry
			e.key = binary.LittleEndian.Uint64(cell[0:8])
			e.val = binary.LittleEndian.Uint64(cell[8:16])
			e.ptr = int32(binary.LittleEndian.Uint32(cell[16:20]))
			e.left = int32(binary.LittleEndian.Uint32(cell[20:24]))
			e.kind = cell[24]
			if i > lv.start && e.key < prevKey {
				return n, fmt.Errorf("cola: level %d not in key order at cell %d: %w", l, i, ErrCorrupt)
			}
			prevKey = e.key
			switch e.kind {
			case kindLookahead:
				if e.ptr < 0 || e.ptr >= nextCap {
					return n, fmt.Errorf("cola: level %d lookahead pointer %d outside next level capacity %d: %w",
						l, e.ptr, nextCap, ErrCorrupt)
				}
				lv.la++
			case kindReal, kindTombstone:
				lv.real++
			default:
				return n, fmt.Errorf("cola: level %d entry kind %d: %w", l, e.kind, ErrCorrupt)
			}
			if e.left < -1 || e.left >= nextCap {
				return n, fmt.Errorf("cola: level %d left pointer %d outside next level capacity %d: %w",
					l, e.left, nextCap, ErrCorrupt)
			}
			if spilled {
				encodeCell(&raw, e)
				if err := pendingWriter.Append(raw[:]); err != nil {
					return n, fmt.Errorf("cola: level %d spill write during load: %w", l, err)
				}
			} else {
				lv.data[i] = e
			}
		}
		if pendingWriter != nil {
			img, cerr := pendingWriter.Commit()
			pendingWriter = nil
			if cerr != nil {
				return n, fmt.Errorf("cola: level %d spill commit during load: %w", l, cerr)
			}
			committedIDs = append(committedIDs, l)
			lv.ext = img
		}
		totalReal += lv.real
		var off int64
		if l > 0 {
			off = offsets[l-1] + int64(c.totalCapacity(l-1))*core.ElementBytes
		}
		levels = append(levels, lv)
		offsets = append(offsets, off)
	}
	if live < 0 || live > int64(totalReal) {
		return n, fmt.Errorf("cola: snapshot live count %d inconsistent with %d stored entries: %w",
			live, totalReal, ErrCorrupt)
	}

	// Commit: everything validated, swap in atomically.
	c.levels = levels
	c.offsets = offsets
	c.n = int(live)
	committedOK = true
	return n, nil
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
