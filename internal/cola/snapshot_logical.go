package cola

import (
	"io"

	"repro/internal/core"
)

// Logical snapshot codecs for the deamortized variants. Unlike the
// GCOLA's physical codec (snapshot.go), the deamortized structures
// persist their live contents only: the shadow/visible array states and
// in-flight merge cursors are deliberately not serialized — a restored
// structure holds the same key/value set with a fresh (fully merged-in)
// deamortization schedule. See internal/core/snapshot.go for the
// physical/logical codec distinction.

const (
	deamortizedMagic   = "DCLA"
	deamortizedLAMagic = "DLAC"
)

var (
	_ core.Snapshotter = (*Deamortized)(nil)
	_ core.Snapshotter = (*DeamortizedLookahead)(nil)
)

// WriteTo implements io.WriterTo (logical codec).
func (d *Deamortized) WriteTo(w io.Writer) (int64, error) {
	return core.WriteLogicalSnapshot(w, deamortizedMagic, d)
}

// ReadFrom implements io.ReaderFrom; d must be empty.
func (d *Deamortized) ReadFrom(r io.Reader) (int64, error) {
	return core.ReadLogicalSnapshot(r, deamortizedMagic, d)
}

// WriteTo implements io.WriterTo (logical codec).
func (d *DeamortizedLookahead) WriteTo(w io.Writer) (int64, error) {
	return core.WriteLogicalSnapshot(w, deamortizedLAMagic, d)
}

// ReadFrom implements io.ReaderFrom; d must be empty.
func (d *DeamortizedLookahead) ReadFrom(r io.Reader) (int64, error) {
	return core.ReadLogicalSnapshot(r, deamortizedLAMagic, d)
}
