package cola

// The out-of-core half of GCOLA (ISSUE 9 / DESIGN.md E15): levels at or
// past Options.SpillDepth live in chunk-aligned extmem images instead
// of RAM slices. The code here preserves two contracts:
//
//   - The DAM charge stream is bit-identical to the in-RAM structure's:
//     charges are issued at the same logical cell offsets in the same
//     order, so predicted transfer counts do not depend on where a
//     level lives and the spill store's actual-I/O counters can be read
//     against the unchanged prediction.
//   - Merges remain sequential streams. A spilled merge never
//     materializes a spilled level in RAM: sources are read through
//     extmem.Reader, the output goes through an extmem.LevelWriter, and
//     only the sub-spill-depth RAM prefix (a geometrically negligible
//     fraction of the data) is merged by the in-RAM ladder first.
//
// I/O failures on the read and merge paths panic with the typed extmem
// error inside: core.Dictionary has no error returns, and a torn spill
// file under the structure is as unrecoverable as a corrupted RAM heap.
// Callers that need graceful degradation catch it at the API boundary.

import (
	"encoding/binary"
	"fmt"

	"repro/internal/extmem"
)

// encodeCell packs one entry into its 32-byte on-disk cell: key u64,
// val u64, ptr u32, left u32, kind u8, 7 bytes zero padding — the same
// field order as the snapshot codec, at core.ElementBytes so chunk
// geometry matches DAM block geometry.
func encodeCell(dst *[extmem.CellBytes]byte, e entry) {
	binary.LittleEndian.PutUint64(dst[0:8], e.key)
	binary.LittleEndian.PutUint64(dst[8:16], e.val)
	binary.LittleEndian.PutUint32(dst[16:20], uint32(e.ptr))
	binary.LittleEndian.PutUint32(dst[20:24], uint32(e.left))
	dst[24] = e.kind
	for i := 25; i < extmem.CellBytes; i++ {
		dst[i] = 0
	}
}

// decodeCell unpacks one on-disk cell.
func decodeCell(src *[extmem.CellBytes]byte) entry {
	return entry{
		key:  binary.LittleEndian.Uint64(src[0:8]),
		val:  binary.LittleEndian.Uint64(src[8:16]),
		ptr:  int32(binary.LittleEndian.Uint32(src[16:20])),
		left: int32(binary.LittleEndian.Uint32(src[20:24])),
		kind: src[24],
	}
}

// cellAt reads logical cell i of level l from whichever home the level
// lives in: the RAM array directly, or the spilled image through the
// page cache (one ReadCell is the actual-I/O analogue of one charged
// probe; consecutive same-chunk reads hit the cache, exactly as the
// DAM store coalesces same-block charges). The read path stays
// allocation-free: the cell buffer is a stack array and extmem copies
// into it.
//
//repro:charges caller:the read paths charge each probed range at the call site (lowerBound, searchLevel, Range, distributePointers)
func (c *GCOLA) cellAt(l, i int) entry {
	lv := &c.levels[l]
	if lv.ext == nil {
		return lv.data[i]
	}
	var raw [extmem.CellBytes]byte
	if err := lv.ext.ReadCell(i-lv.start, raw[:]); err != nil {
		panic(fmt.Sprintf("cola: level %d spilled read of cell %d: %v", l, i, err))
	}
	return decodeCell(&raw)
}

// clearLevel empties level l, removing its spill image if one exists.
func (c *GCOLA) clearLevel(l int) {
	lv := &c.levels[l]
	lv.start = lv.cells
	lv.real = 0
	lv.la = 0
	if lv.ext != nil {
		if err := c.ext.RemoveLevel(l); err != nil {
			panic(fmt.Sprintf("cola: removing level %d spill image: %v", l, err))
		}
		lv.ext = nil
	}
}

// installLevelSpilled is installLevel for a spilled, currently-empty
// level: it streams out (right-justified by construction — file cell j
// is logical cell start+j) into a fresh level image, recomputing left
// copies and the occupancy counters exactly as installLevel does.
//
//repro:charges caller:distributePointers and BulkLoad charge the level write
func (c *GCOLA) installLevelSpilled(l int, out []entry) {
	lv := &c.levels[l]
	if len(out) > lv.cells {
		panic("cola: merge output exceeds level capacity")
	}
	if lv.ext != nil {
		panic("cola: installLevelSpilled over an existing image")
	}
	if len(out) == 0 {
		return
	}
	w, err := c.ext.NewLevelWriter(l)
	if err != nil {
		panic(fmt.Sprintf("cola: level %d spill writer: %v", l, err))
	}
	real, la := 0, 0
	last := int32(-1)
	var raw [extmem.CellBytes]byte
	for _, e := range out {
		if e.kind == kindLookahead {
			last = e.ptr
			e.left = e.ptr
			la++
		} else {
			e.left = last
			real++
		}
		encodeCell(&raw, e)
		if err := w.Append(raw[:]); err != nil {
			w.Abort()
			panic(fmt.Sprintf("cola: level %d spill write: %v", l, err))
		}
	}
	img, err := w.Commit()
	if err != nil {
		panic(fmt.Sprintf("cola: level %d spill commit: %v", l, err))
	}
	lv.ext = img
	lv.start = lv.cells - len(out)
	lv.real = real
	lv.la = la
}

// spillCursor streams one spilled source run during an out-of-core
// merge, optionally dropping lookahead entries on the fly (the
// streaming analogue of stripLookaheadInPlace).
type spillCursor struct {
	rd     *extmem.Reader
	cur    entry
	ok     bool
	skipLA bool
}

func newSpillCursor(img *extmem.Level, skipLA bool) spillCursor {
	sc := spillCursor{rd: img.NewReader(0), skipLA: skipLA}
	sc.advance()
	return sc
}

func (sc *spillCursor) advance() {
	var raw [extmem.CellBytes]byte
	for sc.rd.Remaining() > 0 {
		if err := sc.rd.Next(raw[:]); err != nil {
			panic(fmt.Sprintf("cola: spilled merge read: %v", err))
		}
		e := decodeCell(&raw)
		if sc.skipLA && e.kind == kindLookahead {
			continue
		}
		sc.cur, sc.ok = e, true
		return
	}
	sc.ok = false
}

// mergeDownSpilled is mergeDown's out-of-core path, taken when the
// merge target t is a spilled level. The incoming entry and the RAM
// levels (all below the spill depth) are merged by the in-RAM ladder
// first — keeping tombstones, since annihilation against the spilled
// runs happens downstream — and the accumulator is then streamed
// against the spilled source levels and the target's existing image in
// one sequential k-way pass whose output goes straight to a new level
// image. Charges mirror mergeDown's exactly: one range read per
// non-empty source run, one range read for the target's old content,
// one range write for the installed output.
//
//repro:charges opt.Space (run reads + target write)
func (c *GCOLA) mergeDownSpilled(newEntry entry, t int) {
	target := &c.levels[t]

	ramTop := t
	if c.opt.SpillDepth < ramTop {
		ramTop = c.opt.SpillDepth
	}
	c.scratch.one[0] = newEntry
	runs := append(c.scratch.runs[:0], c.scratch.one[:])
	for l := 0; l < ramTop; l++ {
		lv := &c.levels[l]
		if !lv.empty() {
			c.chargeRead(l, lv.start, lv.used())
			runs = append(runs, stripLookaheadInPlace(lv.data[lv.start:]))
		}
	}
	c.scratch.runs = runs
	acc := c.mergeRuns(runs, false)

	atBottom := true
	for l := t + 1; l < len(c.levels); l++ {
		if !c.levels[l].empty() {
			atBottom = false
			break
		}
	}

	// Spilled cursors, newest (smallest level) first: source levels drop
	// their lookahead entries on the fly, the target's own image keeps
	// them (they point into level t+1, which is untouched) — the same
	// split mergeDown makes for RAM runs.
	cursors := make([]spillCursor, 0, t-ramTop+1)
	for l := ramTop; l < t; l++ {
		lv := &c.levels[l]
		if !lv.empty() {
			c.chargeRead(l, lv.start, lv.used())
			cursors = append(cursors, newSpillCursor(lv.ext, true))
		}
	}
	if !target.empty() {
		c.chargeRead(t, target.start, target.used())
		cursors = append(cursors, newSpillCursor(target.ext, false))
	}

	outLen := c.streamMergeInto(t, acc, cursors, atBottom)
	c.chargeWrite(t, target.start, outLen)
	c.stats.Moves += uint64(outLen)
	if atBottom {
		c.n = outLen
	}
	for l := 0; l < t; l++ {
		c.clearLevel(l)
	}
	c.distributePointers(t)
}

// compactSpilled is Compact's out-of-core tail: the same stream shape
// as mergeDownSpilled, except that every level — including the target's
// own content — is a lookahead-stripped source (Compact rebuilds all
// pointers afterwards) and the merge is always a bottom merge.
//
//repro:charges opt.Space (level reads + bottom write)
func (c *GCOLA) compactSpilled(t, bottom int) {
	ramTop := bottom + 1
	if c.opt.SpillDepth < ramTop {
		ramTop = c.opt.SpillDepth
	}
	runs := c.scratch.runs[:0]
	for l := 0; l < ramTop; l++ {
		lv := &c.levels[l]
		if !lv.empty() {
			c.chargeRead(l, lv.start, lv.used())
			runs = append(runs, stripLookaheadInPlace(lv.data[lv.start:]))
		}
	}
	c.scratch.runs = runs
	var acc []entry
	if len(runs) > 0 {
		acc = c.mergeRuns(runs, false)
	}
	cursors := make([]spillCursor, 0, bottom-ramTop+1)
	for l := ramTop; l <= bottom; l++ {
		lv := &c.levels[l]
		if !lv.empty() {
			c.chargeRead(l, lv.start, lv.used())
			cursors = append(cursors, newSpillCursor(lv.ext, true))
		}
	}
	outLen := c.streamMergeInto(t, acc, cursors, true)
	for l := 0; l <= bottom; l++ {
		if l != t {
			c.clearLevel(l)
		}
	}
	c.chargeWrite(t, c.levels[t].start, outLen)
	c.stats.Moves += uint64(outLen)
	c.n = outLen
	c.distributePointers(t)
}

// streamMergeInto k-way-merges acc (the newest run, produced by the
// in-RAM ladder and therefore lookahead-free and duplicate-free) with
// the spilled cursors (ordered newest first) into a fresh image of
// level t, applying the ladder's resolution rules in streaming form:
// lookahead entries pass through ahead of the real resolution for their
// key, the newest real/tombstone entry survives, each annihilated older
// real decrements the live count when the survivor is real (the
// mergeTwoInto reconciliation), and a bottom merge drops tombstones at
// emit time. Left copies and occupancy counters are recomputed inline
// (the installLevel forward scan), the target's metadata is updated in
// place, and the output length is returned.
//
// The target reads its own old image while the writer streams the new
// one: extmem writes to a temp file and swaps on Commit, so this is the
// classic LSM-style level rewrite, safe by construction.
func (c *GCOLA) streamMergeInto(t int, acc []entry, cursors []spillCursor, atBottom bool) int {
	lv := &c.levels[t]
	w, err := c.ext.NewLevelWriter(t)
	if err != nil {
		panic(fmt.Sprintf("cola: level %d spill writer: %v", t, err))
	}
	outLen, real, la := 0, 0, 0
	last := int32(-1)
	var raw [extmem.CellBytes]byte
	emit := func(e entry) {
		if atBottom && e.kind == kindTombstone {
			return
		}
		if e.kind == kindLookahead {
			last = e.ptr
			e.left = e.ptr
			la++
		} else {
			e.left = last
			real++
		}
		encodeCell(&raw, e)
		if err := w.Append(raw[:]); err != nil {
			w.Abort()
			panic(fmt.Sprintf("cola: level %d spill write: %v", t, err))
		}
		outLen++
	}
	accPos := 0
	for {
		var minKey uint64
		any := false
		if accPos < len(acc) {
			minKey, any = acc[accPos].key, true
		}
		for i := range cursors {
			if cursors[i].ok && (!any || cursors[i].cur.key < minKey) {
				minKey, any = cursors[i].cur.key, true
			}
		}
		if !any {
			break
		}
		// A lookahead entry at the head of a cursor passes through before
		// the real resolution for its key, exactly as mergeTwoInto emits
		// it; only the preserved target run ever carries them.
		emittedLA := false
		for i := range cursors {
			if cursors[i].ok && cursors[i].cur.key == minKey && cursors[i].cur.kind == kindLookahead {
				emit(cursors[i].cur)
				cursors[i].advance()
				emittedLA = true
				break
			}
		}
		if emittedLA {
			continue
		}
		// The newest real/tombstone entry for minKey survives (acc is
		// newest; cursors are ordered newest first)...
		var surv entry
		if accPos < len(acc) && acc[accPos].key == minKey {
			surv = acc[accPos]
			accPos++
		} else {
			for i := range cursors {
				if cursors[i].ok && cursors[i].cur.key == minKey {
					surv = cursors[i].cur
					cursors[i].advance()
					break
				}
			}
		}
		emit(surv)
		// ...and annihilates every older copy; trailing lookahead entries
		// at the same key still pass through.
		for i := range cursors {
			for cursors[i].ok && cursors[i].cur.key == minKey {
				e := cursors[i].cur
				if e.kind == kindLookahead {
					emit(e)
				} else if surv.kind != kindTombstone && e.kind != kindTombstone {
					c.n-- // duplicate insert reconciled
				}
				cursors[i].advance()
			}
		}
	}
	if outLen > lv.cells {
		w.Abort()
		panic("cola: merge output exceeds level capacity")
	}
	if outLen == 0 {
		// Everything annihilated (a bottom merge of tombstones against
		// their keys): the level ends empty, no image.
		w.Abort()
		if lv.ext != nil {
			if err := c.ext.RemoveLevel(t); err != nil {
				panic(fmt.Sprintf("cola: removing level %d spill image: %v", t, err))
			}
			lv.ext = nil
		}
		lv.start = lv.cells
		lv.real, lv.la = 0, 0
		return 0
	}
	img, err := w.Commit()
	if err != nil {
		panic(fmt.Sprintf("cola: level %d spill commit: %v", t, err))
	}
	lv.ext = img
	lv.start = lv.cells - outLen
	lv.real = real
	lv.la = la
	return outLen
}
