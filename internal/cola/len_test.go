package cola

import (
	"testing"

	"repro/internal/workload"
)

// occupiedLevels counts non-empty levels.
func occupiedLevels(c *GCOLA) int {
	n := 0
	for l := range c.levels {
		if !c.levels[l].empty() {
			n++
		}
	}
	return n
}

// TestLenExactAfterBottomMerge pins the reconciliation guarantee of the
// GCOLA type comment: a small keyspace drives constant duplicate-key
// updates and deletes (the workload that historically made Len drift
// until Compact), and at every state where the structure has
// consolidated into at most one occupied level — i.e. immediately after
// any merge whose target was the bottom-most occupied level — Len must
// equal the oracle exactly, with no Compact call.
func TestLenExactAfterBottomMerge(t *testing.T) {
	for _, g := range []int{2, 4} {
		c := New(Options{Growth: g, PointerDensity: DefaultPointerDensity})
		oracle := make(map[uint64]uint64)
		rng := workload.NewRNG(0xBADC0DE + uint64(g))
		bottomChecks, drifted := 0, false
		for i := 0; i < 20000; i++ {
			k := rng.Uint64() % 512
			if rng.Uint64()%8 == 7 {
				_, present := oracle[k]
				if got := c.Delete(k); got != present {
					t.Fatalf("g=%d op %d: Delete(%d) = %v, oracle present=%v", g, i, k, got, present)
				}
				delete(oracle, k)
			} else {
				v := rng.Uint64()
				c.Insert(k, v)
				oracle[k] = v
			}
			if occupiedLevels(c) <= 1 {
				bottomChecks++
				if c.Len() != len(oracle) {
					t.Fatalf("g=%d op %d: Len = %d after bottom merge, oracle has %d",
						g, i, c.Len(), len(oracle))
				}
			} else if c.Len() != len(oracle) {
				drifted = true // expected between bottom merges; see below
			}
		}
		if bottomChecks == 0 {
			t.Fatalf("g=%d: workload never consolidated into one level; the test checked nothing", g)
		}
		if !drifted {
			t.Logf("g=%d: Len never drifted between merges (workload too tame to exercise the caveat)", g)
		}
		// And Compact remains the anytime reconciliation.
		c.Compact()
		if c.Len() != len(oracle) {
			t.Fatalf("g=%d: Len after Compact = %d, oracle has %d", g, c.Len(), len(oracle))
		}
		c.checkInvariants()
	}
}

// TestLenExactDistinctKeys: with distinct keys Len is exact at every
// step, bottom merges or not — the counter path must not double-adjust
// now that the incoming entry is counted before the merge routes it.
func TestLenExactDistinctKeys(t *testing.T) {
	c := NewCOLA(nil)
	seq := workload.NewRandomUnique(99)
	for i := 1; i <= 1<<12; i++ {
		k := seq.Next()
		c.Insert(k, k)
		if c.Len() != i {
			t.Fatalf("Len = %d after %d distinct inserts", c.Len(), i)
		}
	}
}

// TestLenDeleteReinsertAcrossMerges drives the tombstone flows
// (delete, re-insert, delete again) through merges and checks the final
// reconciliation.
func TestLenDeleteReinsertAcrossMerges(t *testing.T) {
	c := NewCOLA(nil)
	const n = 1 << 10
	for i := uint64(0); i < n; i++ {
		c.Insert(i, i)
	}
	for i := uint64(0); i < n; i += 2 {
		if !c.Delete(i) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	for i := uint64(0); i < n; i += 4 {
		c.Insert(i, i+1)
	}
	c.Compact()
	want := n/2 + n/4
	if c.Len() != want {
		t.Fatalf("Len = %d, want %d", c.Len(), want)
	}
	c.checkInvariants()
}
