package cola

// distributePointers rebuilds the lookahead entries of every level below
// t after a merge into t, proceeding level by level exactly as Section 4
// describes: "The target level is scanned to copy pointers down one
// level, the next largest level is scanned to copy pointers down to the
// next level, and so on." Level l samples level l+1 at an even stride so
// that the sample fits level l's redundant budget; each sampled cell
// becomes a lookahead entry carrying its absolute index in level l+1.
//
// The scans are geometrically decreasing, so the total cost is dominated
// by the scan of level t, which the amortized analysis of Lemma 19
// already pays for.
//
//repro:charges opt.Space (one range read per source level)
func (c *GCOLA) distributePointers(t int) {
	if c.opt.PointerDensity == 0 {
		return
	}
	for l := t - 1; l >= 1; l-- {
		src := &c.levels[l+1]
		dst := &c.levels[l]
		if !dst.empty() {
			// Only rebuilt immediately after a merge emptied the level;
			// anything else indicates a bookkeeping bug.
			panic("cola: pointer distribution into non-empty level")
		}
		budget := c.lookaheadCapacity(l)
		if budget == 0 || src.empty() {
			continue
		}
		used := src.used()
		stride := (used + budget - 1) / budget
		if stride < 1 {
			stride = 1
		}
		// Scan the source level (charged as one range read) and emit a
		// sample every stride cells, preferring real cells so pointers
		// land on searchable keys; a lookahead cell is still a valid
		// anchor, so no cell type is skipped when the stride lands on it.
		c.chargeRead(l+1, src.start, used)
		out := c.scratch.la[:0]
		if cap(out) < budget {
			out = make([]entry, 0, budget)
		}
		for i := src.start + stride - 1; i < src.cells; i += stride {
			e := c.cellAt(l+1, i)
			out = append(out, entry{
				key:  e.key,
				ptr:  int32(i),
				left: int32(i),
				kind: kindLookahead,
			})
			if len(out) == budget {
				break
			}
		}
		if c.spilledLevel(l) {
			c.installLevelSpilled(l, out)
		} else {
			c.installLevel(l, out)
		}
		c.chargeWrite(l, dst.start, len(out))
		c.stats.Moves += uint64(len(out))
		c.scratch.la = out[:0]
	}
}

// checkInvariants validates the structural invariants of every level and
// panics with a description on violation. Tests call this; production
// paths do not. (It reads cells only through cellAt, so it needs no
// damcharge waiver since the out-of-core refactor.)
func (c *GCOLA) checkInvariants() {
	liveSeen := 0
	for l := range c.levels {
		lv := &c.levels[l]
		if lv.start < 0 || lv.start > lv.cells {
			panic("cola: level start out of range")
		}
		if lv.cells != c.totalCapacity(l) {
			panic("cola: level allocated with wrong capacity")
		}
		if c.spilledLevel(l) {
			if lv.data != nil {
				panic("cola: spilled level holds a RAM image")
			}
			if lv.empty() != (lv.ext == nil) {
				panic("cola: spilled level image/occupancy mismatch")
			}
			if lv.ext != nil && lv.ext.Cells() != lv.used() {
				panic("cola: spilled image size does not match occupancy")
			}
		} else {
			if lv.ext != nil {
				panic("cola: RAM level holds a spill image")
			}
			if len(lv.data) != lv.cells {
				panic("cola: RAM level storage does not match capacity")
			}
		}
		real := 0
		lastLA := int32(-1)
		var prevKey uint64
		first := true
		for i := lv.start; i < lv.cells; i++ {
			e := c.cellAt(l, i)
			if !first && e.key < prevKey {
				panic("cola: level not sorted")
			}
			prevKey = e.key
			first = false
			switch e.kind {
			case kindLookahead:
				if l+1 >= len(c.levels) {
					panic("cola: lookahead entry with no next level")
				}
				next := &c.levels[l+1]
				if int(e.ptr) < next.start || int(e.ptr) >= next.cells {
					panic("cola: lookahead pointer out of next level's occupied range")
				}
				if c.cellAt(l+1, int(e.ptr)).key != e.key {
					panic("cola: lookahead key does not match target cell")
				}
				if e.ptr < lastLA {
					panic("cola: lookahead pointers not monotone")
				}
				if e.left != e.ptr {
					panic("cola: lookahead left copy must be its own pointer")
				}
				lastLA = e.ptr
			case kindReal, kindTombstone:
				real++
				if e.left != lastLA {
					panic("cola: stale left copy")
				}
			default:
				panic("cola: unknown entry kind")
			}
		}
		if real != lv.real {
			panic("cola: real-count bookkeeping mismatch")
		}
		if real > c.realCapacity(l) {
			panic("cola: level real occupancy exceeds capacity")
		}
		liveSeen += real
	}
	_ = liveSeen
}
