package cola

import (
	"sync"

	"repro/internal/core"
)

// lowerBound is the first index in [lo, hi) whose key is >= target.
// Every probe is charged at its actual position: the probe path is
// key-dependent, so distinct searches diverge into distinct blocks
// after the first few (shared, cache-resident) midpoints — exactly the
// O(log(range/B)) uncached-transfer profile of a real binary search. A
// synthetic probe chain (e.g. always halving leftward) would charge the
// same cells for every search over the same window, and an LRU cache
// would then make all but the first binary search free, silently
// erasing the very cost lookahead pointers exist to avoid. A
// hand-rolled loop instead of sort.Search: the closure sort.Search
// needs would be heap-allocated on every call, and searches are a
// zero-allocation hot path (see the AllocsPerRun tests).
//
//repro:charges opt.Space (one cell per probe)
func (c *GCOLA) lowerBound(l, lo, hi int, target uint64) int {
	// The RAM fast path keeps the hot loop free of the cellAt call;
	// spilled levels probe through the page cache with the identical
	// charge sequence (the probe positions depend only on the window and
	// the keys, not on where the level lives).
	if data := c.levels[l].data; data != nil {
		i, j := lo, hi
		for i < j {
			mid := int(uint(i+j) >> 1)
			c.chargeRead(l, mid, 1)
			if data[mid].key >= target {
				j = mid
			} else {
				i = mid + 1
			}
		}
		return i
	}
	i, j := lo, hi
	for i < j {
		mid := int(uint(i+j) >> 1)
		c.chargeRead(l, mid, 1)
		if c.cellAt(l, mid).key >= target {
			j = mid
		} else {
			i = mid + 1
		}
	}
	return i
}

// Search implements core.Dictionary. Levels are probed smallest (newest)
// to largest; the first real or tombstone entry matching the key decides.
// When lookahead pointers are present, the window searched in level l+1
// is bounded by the pointers bracketing the key's position in level l
// (Lemma 20); when a level has no pointers (tiny levels, p = 0, or a gap
// of empty levels) the whole level is binary searched, which is the
// "basic COLA" fallback.
//
// Search mutates nothing but the atomic search counter and the DAM
// charge stream, so bracketed concurrent searches are safe (the
// core.SharedReader contract).
func (c *GCOLA) Search(key uint64) (uint64, bool) {
	c.searches.Add(1)
	lo, hi := -1, -1 // window into the upcoming level; -1 means unknown
	for l := 0; l < len(c.levels); l++ {
		lv := &c.levels[l]
		if lv.empty() {
			lo, hi = -1, -1
			continue
		}
		val, state, nlo, nhi := c.searchLevel(l, key, lo, hi)
		switch state {
		case foundReal:
			return val, true
		case foundTombstone:
			return 0, false
		}
		lo, hi = nlo, nhi
	}
	return 0, false
}

// Contains reports whether key is present.
func (c *GCOLA) Contains(key uint64) bool {
	_, ok := c.Search(key)
	return ok
}

type searchState uint8

const (
	notFound searchState = iota
	foundReal
	foundTombstone
)

// searchLevel searches level l for key within window [lo, hi) (absolute
// cell indices; -1 for unknown) and returns the match state plus the
// window for level l+1 derived from the bracketing lookahead pointers.
//
//repro:charges opt.Space (scan reads)
func (c *GCOLA) searchLevel(l int, key uint64, lo, hi int) (uint64, searchState, int, int) {
	lv := &c.levels[l]
	if lo < 0 || lo < lv.start {
		lo = lv.start
	}
	if hi < 0 || hi > lv.cells {
		hi = lv.cells
	}
	if lo > hi {
		lo = hi
	}

	// Binary search for the first cell with key >= target. Each probe is
	// charged as a one-cell read; the DAM store coalesces same-block
	// probes into one transfer, so the charge model matches a real
	// binary search's block behaviour.
	pos := c.lowerBound(l, lo, hi, key)

	// Scan forward over cells with the exact key: lookahead entries for
	// the key may precede the real entry (the merge emits them first).
	// The scan deliberately ignores the hi bound: a window's right edge
	// is "one past a lookahead anchor", and when the anchor's key equals
	// the target the real entry can sit just past it.
	state := notFound
	var val uint64
	scanEnd := pos
	for i := pos; i < lv.cells; i++ {
		e := c.cellAt(l, i)
		if e.key != key {
			break
		}
		scanEnd = i + 1
		if e.kind == kindLookahead {
			continue
		}
		if e.kind == kindReal {
			val, state = e.val, foundReal
		} else {
			state = foundTombstone
		}
		break
	}
	if scanEnd > pos {
		c.chargeRead(l, pos, scanEnd-pos)
	}
	if state != notFound {
		return val, state, -1, -1
	}
	if lv.la == 0 {
		// No lookahead entries: nothing to derive a window from (and no
		// point scanning for a right bound).
		return 0, notFound, -1, -1
	}

	// Derive the next level's window. Left bound: the left copy carried
	// by the predecessor cell (all its anchors have keys < target).
	nlo := -1
	if pos > lv.start {
		nlo = int(c.cellAt(l, pos-1).left)
	}
	// Right bound: scan forward for the first lookahead entry at or after
	// pos; everything at or after its target in level l+1 has keys >=
	// the lookahead's key >= target, so the window closes just past it.
	// This is the paper's "we compute right-hand lookahead pointers on
	// the fly by scanning subsequent levels".
	nhi := -1
	scanned := 0
	for i := pos; i < lv.cells; i++ {
		scanned++
		if e := c.cellAt(l, i); e.kind == kindLookahead {
			nhi = int(e.ptr) + 1
			break
		}
	}
	if scanned > 0 {
		c.chargeRead(l, pos, scanned)
	}
	return 0, notFound, nlo, nhi
}

// cursorBuf is the per-call cursor set of one Range; pooled (rather
// than per-tree scratch) so bracketed concurrent Ranges and reentrant
// Ranges from inside fn each get their own, while steady-state calls
// stay allocation-free. Capacity is retained across uses and is bounded
// by the level count, i.e. O(log N).
type cursorBuf struct {
	c []rangeCursor
}

var cursorPool = sync.Pool{New: func() any { return new(cursorBuf) }}

// Range implements core.Dictionary: a k-way merge across the occupied
// levels with newest-wins resolution, skipping lookahead entries and
// tombstoned keys. Like Search, Range is safe for bracketed concurrent
// use: its cursors are pooled per call and it mutates nothing else.
//
//repro:charges opt.Space (one cell per cursor advance)
func (c *GCOLA) Range(lo, hi uint64, fn func(core.Element) bool) {
	cb := cursorPool.Get().(*cursorBuf)
	defer func() {
		cb.c = cb.c[:0]
		cursorPool.Put(cb)
	}()
	cursors := cb.c[:0]
	for l := range c.levels {
		lv := &c.levels[l]
		if lv.empty() {
			continue
		}
		// Position each cursor at the first cell with key >= lo.
		p := c.lowerBound(l, lv.start, lv.cells, lo)
		if p < lv.cells {
			cursors = append(cursors, rangeCursor{level: l, pos: p})
		}
	}
	cb.c = cursors

	for {
		// Pick the smallest key among cursors; ties resolved by the
		// smallest (newest) level.
		best := -1
		var bestKey uint64
		for i := range cursors {
			cur := &cursors[i]
			lv := &c.levels[cur.level]
			// Skip lookahead cells.
			for cur.pos < lv.cells && c.cellAt(cur.level, cur.pos).kind == kindLookahead {
				cur.pos++
				c.chargeRead(cur.level, cur.pos-1, 1)
			}
			if cur.pos >= lv.cells {
				continue
			}
			k := c.cellAt(cur.level, cur.pos).key
			if k > hi {
				continue
			}
			if best < 0 || k < bestKey || (k == bestKey && cur.level < cursors[best].level) {
				best = i
				bestKey = k
			}
		}
		if best < 0 {
			return
		}
		// Emit the newest entry for bestKey and advance every cursor
		// past that key.
		e := c.cellAt(cursors[best].level, cursors[best].pos)
		c.chargeRead(cursors[best].level, cursors[best].pos, 1)
		for i := range cursors {
			cur := &cursors[i]
			lv := &c.levels[cur.level]
			for cur.pos < lv.cells && c.cellAt(cur.level, cur.pos).key == bestKey {
				cur.pos++
			}
		}
		if e.kind == kindTombstone {
			continue
		}
		if !fn(core.Element{Key: e.key, Value: e.val}) {
			return
		}
	}
}
